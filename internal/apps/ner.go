package apps

import (
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nlp"
)

// Mention is one recognised entity in running text, tagged with its
// fine-grained concept — the NER use case the paper's introduction
// motivates (fine-grained classes beat person/location for IR/IE/QA).
type Mention struct {
	Text    string // the surface span
	Start   int    // word offset, inclusive
	End     int    // word offset, exclusive
	Concept string // most typical concept (base label)
	Score   float64
}

// Recognizer tags known instances in text with their most typical
// concepts.
type Recognizer struct {
	pb       *core.Probase
	maxWords int
}

// NewRecognizer builds a recogniser over the taxonomy.
func NewRecognizer(pb *core.Probase) *Recognizer {
	max := 1
	for _, id := range pb.Graph.Instances() {
		if n := len(strings.Fields(pb.Graph.Label(id))); n > max {
			max = n
		}
	}
	if max > 5 {
		max = 5
	}
	return &Recognizer{pb: pb, maxWords: max}
}

// Recognize scans the text left to right, greedily matching the longest
// known instance at each position, and tags each mention with its top
// concept by T(x|i).
func (r *Recognizer) Recognize(text string) []Mention {
	words := strings.Fields(stripPunct(text))
	var out []Mention
	for i := 0; i < len(words); {
		matched := false
		maxN := r.maxWords
		if rest := len(words) - i; maxN > rest {
			maxN = rest
		}
		for n := maxN; n >= 1; n-- {
			span := strings.Join(words[i:i+n], " ")
			id := r.lookupInstance(span)
			if id == graph.NoNode {
				continue
			}
			m := Mention{Text: span, Start: i, End: i + n}
			if concepts := r.pb.ConceptsOf(r.pb.Graph.Label(id), 1); len(concepts) > 0 {
				m.Concept = core.BaseLabel(concepts[0].Label)
				m.Score = concepts[0].Score
			}
			out = append(out, m)
			i += n
			matched = true
			break
		}
		if !matched {
			i++
		}
	}
	return out
}

// lookupInstance resolves a span to a taxonomy node with at least one
// parent (so it can be conceptualised), trying the typed form, its case
// variants, and the singular of a plural common noun ("cats" -> "cat").
// Stop-word-only and single-letter spans never match.
func (r *Recognizer) lookupInstance(span string) graph.NodeID {
	if len(span) < 2 {
		return graph.NoNode
	}
	allStop := true
	for _, w := range strings.Fields(span) {
		if !nlp.IsStopWord(w) {
			allStop = false
			break
		}
	}
	if allStop {
		return graph.NoNode
	}
	usable := func(id graph.NodeID) bool {
		return id != graph.NoNode && len(r.pb.Graph.Parents(id)) > 0
	}
	for _, v := range caseVariants(span) {
		if id := r.pb.Graph.Lookup(v); usable(id) {
			return id
		}
	}
	n := nlp.Normalize(span)
	if nlp.IsPluralPhrase(n) {
		if id := r.pb.Graph.Lookup(nlp.SingularizePhrase(n)); usable(id) {
			return id
		}
	}
	return graph.NoNode
}
