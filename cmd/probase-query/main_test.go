package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

var (
	snapOnce sync.Once
	snapPath string
	snapErr  error
)

// snapshotPath builds one full snapshot for all query tests.
func snapshotPath(t *testing.T) string {
	t.Helper()
	snapOnce.Do(func() {
		w := corpus.DefaultWorld(1)
		c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 8000, Seed: 11}).Generate()
		inputs := make([]extraction.Input, len(c.Sentences))
		for i, s := range c.Sentences {
			inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
		}
		pb, err := core.Build(inputs, core.Config{})
		if err != nil {
			snapErr = err
			return
		}
		dir, err := os.MkdirTemp("", "probase-query-test")
		if err != nil {
			snapErr = err
			return
		}
		snapPath = filepath.Join(dir, "p.bin")
		f, err := os.Create(snapPath)
		if err != nil {
			snapErr = err
			return
		}
		defer f.Close()
		snapErr = pb.SaveFull(f)
	})
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	return snapPath
}

func query(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(append([]string{"-snapshot", snapshotPath(t)}, args...), &stdout, &stderr)
	return stdout.String(), err
}

func TestQueryInstances(t *testing.T) {
	out, err := query(t, "instances", "companies")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IBM") {
		t.Errorf("instances output missing IBM:\n%s", out)
	}
}

func TestQueryConcepts(t *testing.T) {
	out, err := query(t, "concepts", "IBM")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "company") {
		t.Errorf("concepts output missing company:\n%s", out)
	}
}

func TestQueryAbstract(t *testing.T) {
	out, err := query(t, "abstract", "China", "India", "Brazil")
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.TrimSpace(out)) == 0 {
		t.Error("abstract produced nothing")
	}
	if _, err := query(t, "abstract", "zzz-unknown-term"); err == nil {
		t.Error("unknown abstraction succeeded")
	}
}

func TestQuerySensesAndPlausibility(t *testing.T) {
	out, err := query(t, "senses", "plants")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plant") {
		t.Errorf("senses output:\n%s", out)
	}
	out, err = query(t, "plausibility", "companies", "IBM")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) == "0.0000" {
		t.Error("plausibility of (company, IBM) is zero")
	}
}

func TestQueryNER(t *testing.T) {
	out, err := query(t, "ner", "IBM", "opened", "in", "Singapore")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IBM") || !strings.Contains(out, "Singapore") {
		t.Errorf("ner output:\n%s", out)
	}
}

func TestQueryUsageErrors(t *testing.T) {
	if _, err := query(t, "instances"); err == nil {
		t.Error("missing args accepted")
	}
	if _, err := query(t, "bogus", "x"); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := query(t, "plausibility", "one-arg"); err == nil {
		t.Error("plausibility with one arg accepted")
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-snapshot", "/no/such.bin", "instances", "x"}, &stdout, &stderr); err == nil {
		t.Error("missing snapshot accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "probase-query version") {
		t.Errorf("stdout = %q", stdout.String())
	}
}
