// Command probase-loadgen drives a running probase-serve with the
// synthetic Zipf query workload from internal/querylog and reports
// coordinated-omission-aware latency percentiles — the macro-benchmark
// behind the CI capacity-smoke SLO gate. See the internal/loadgen
// package docs for the design.
//
// Usage:
//
//	probase-loadgen -target http://127.0.0.1:8080 -workers 8 -duration 10s \
//	    -report-interval 2s -json capacity.json -slo-file .github/capacity-slo.json
//
// The run prints interval progress lines on stderr, a per-endpoint
// summary table on stdout, and (with -json) writes a probase-bench/v1
// report the existing bench tooling validates and diffs unchanged.
// When any -slo-* gate (or -slo-file) is set, a violated threshold
// makes the process exit non-zero after the report is written.
//
// Offline gating: -check re-applies the SLO flags to a previously
// written report without generating load —
//
//	probase-loadgen -check capacity.json -slo-p99 150ms -slo-error-rate 0
//
// which is how CI proves the gate is live (a sub-measurement threshold
// must fail).
//
// With -trace-sample a fraction of requests carries a W3C traceparent
// header; the slowest traced requests appear in the report with their
// trace IDs, joinable against the server's /debug/traces.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "probase-loadgen:", err)
		os.Exit(1)
	}
}

// sloFile is the checked-in threshold document (-slo-file): the CI
// capacity gate reads .github/capacity-slo.json in this shape.
type sloFile struct {
	P99MS        float64 `json:"p99_ms"`
	MaxErrorRate float64 `json:"max_error_rate"`
	MinRequests  int64   `json:"min_requests"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("probase-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target      = fs.String("target", "http://127.0.0.1:8080", "base URL of the probase-serve under test")
		workers     = fs.Int("workers", 8, "closed-loop client goroutines")
		duration    = fs.Duration("duration", 10*time.Second, "run length")
		maxRequests = fs.Int64("max-requests", 0, "also stop after this many requests (0 = duration-bound only)")
		reportEvery = fs.Duration("report-interval", 2*time.Second, "progress-line cadence on stderr (0 disables)")
		seed        = fs.Int64("seed", 11, "request-plan seed; same seed and config replay the same URI stream")
		queries     = fs.Int("queries", 5000, "distinct-query pool generated from the Zipf query log")
		mixSpec     = fs.String("mix", loadgen.DefaultMixSpec, "per-endpoint traffic weights, endpoint=weight[,...]")
		timeout     = fs.Duration("timeout", 2*time.Second, "per-request deadline")
		interval    = fs.Duration("interval", 0, "per-worker pacing interval; >0 switches to open-loop arrivals with coordinated-omission-corrected recording")
		traceSample = fs.Float64("trace-sample", 0, "fraction of requests carrying an outbound traceparent")
		jsonOut     = fs.String("json", "", "write a probase-bench/v1 report to this file ('auto' = CAPACITY_<timestamp>.json, '-' = stdout)")
		sloP99      = fs.Duration("slo-p99", 0, "fail if aggregate p99 exceeds this (0 disables)")
		sloErrRate  = fs.Float64("slo-error-rate", -1, "fail if (errors+timeouts)/requests exceeds this (negative disables; 0 = no errors tolerated)")
		sloMinReqs  = fs.Int64("slo-min-requests", 0, "fail if fewer requests completed (guards against vacuous passes)")
		sloFilePath = fs.String("slo-file", "", "read SLO thresholds from this JSON file ({\"p99_ms\":..,\"max_error_rate\":..,\"min_requests\":..}); explicit -slo-* flags override")
		checkReport = fs.String("check", "", "apply the SLO flags to a previously written report and exit (no load generated)")
		version     = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(stdout, "probase-loadgen")
		return nil
	}

	slo := loadgen.SLO{P99: *sloP99, MaxErrorRate: *sloErrRate, MinRequests: *sloMinReqs}
	if *sloFilePath != "" {
		raw, err := os.ReadFile(*sloFilePath)
		if err != nil {
			return fmt.Errorf("slo file: %w", err)
		}
		var f sloFile
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("slo file %s: %w", *sloFilePath, err)
		}
		if slo.P99 == 0 {
			slo.P99 = time.Duration(f.P99MS * float64(time.Millisecond))
		}
		if slo.MaxErrorRate < 0 {
			slo.MaxErrorRate = f.MaxErrorRate
		}
		if slo.MinRequests == 0 {
			slo.MinRequests = f.MinRequests
		}
	}

	if *checkReport != "" {
		if !slo.Enabled() {
			return fmt.Errorf("-check needs at least one -slo-* flag or -slo-file")
		}
		raw, err := os.ReadFile(*checkReport)
		if err != nil {
			return err
		}
		if err := slo.CheckReport(*checkReport, raw); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: SLO satisfied\n", *checkReport)
		return nil
	}

	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "loadgen: target=%s workers=%d duration=%s seed=%d queries=%d mix=%s\n",
		*target, *workers, *duration, *seed, *queries, mix)

	res, err := loadgen.Run(ctx, loadgen.Config{
		Target:         *target,
		Workers:        *workers,
		Duration:       *duration,
		MaxRequests:    *maxRequests,
		ReportInterval: *reportEvery,
		Seed:           *seed,
		Queries:        *queries,
		Mix:            mix,
		Timeout:        *timeout,
		Interval:       *interval,
		TraceSample:    *traceSample,
		Progress:       stderr,
	})
	if err != nil {
		return err
	}

	printSummary(stdout, res)

	if *jsonOut != "" {
		path := *jsonOut
		if path == "auto" {
			path = "CAPACITY_" + time.Now().UTC().Format("20060102T150405Z") + ".json"
		}
		raw, err := json.MarshalIndent(res.Report(), "", "  ")
		if err != nil {
			return fmt.Errorf("encoding report: %w", err)
		}
		raw = append(raw, '\n')
		if path == "-" {
			_, err = stdout.Write(raw)
		} else {
			err = os.WriteFile(path, raw, 0o644)
		}
		if err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		if path != "-" {
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
	}

	if slo.Enabled() {
		if err := slo.CheckResult(res); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "SLO satisfied")
	}
	return nil
}

// printSummary renders the per-endpoint table a human reads first.
func printSummary(w io.Writer, res *loadgen.Result) {
	rr := res.ReportResult()
	fmt.Fprintf(w, "\n%d requests in %.2fs (%.1f req/s), fingerprint %s...\n",
		rr.Total.Requests, rr.DurationSeconds, rr.ThroughputRPS, res.Fingerprint[:16])
	fmt.Fprintf(w, "%-14s %9s %7s %6s %6s %9s %9s %9s %9s\n",
		"endpoint", "requests", "errors", "t/o", "4xx", "p50", "p90", "p99", "p99.9")
	row := func(e loadgen.EndpointReport) {
		fmt.Fprintf(w, "%-14s %9d %7d %6d %6d %8.2fms %8.2fms %8.2fms %8.2fms\n",
			e.Endpoint, e.Requests, e.Errors, e.Timeouts, e.HTTP4xx,
			e.P50MS, e.P90MS, e.P99MS, e.P999MS)
	}
	for _, e := range rr.Endpoints {
		row(e)
	}
	row(rr.Total)
}
