package experiments

import "testing"

// TestScaleUp runs the full pipeline on a 4x world with a 60k-sentence
// corpus — the closest this suite gets to the paper's web-scale run.
// Skipped under -short.
func TestScaleUp(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-up test skipped in -short mode")
	}
	s, err := NewSetup(Options{Scale: 4, Sentences: 60000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	extras, _ := s.Extras()
	if extras.Pairs < 8000 {
		t.Errorf("scale-4 run extracted only %d pairs", extras.Pairs)
	}
	if extras.Precision < 0.85 {
		t.Errorf("scale-4 precision = %.3f", extras.Precision)
	}
	// The concept space grows with the world (Table 1's mechanism).
	rows, _ := s.Table1()
	for _, r := range rows {
		if r.Name == "Probase" && r.Concepts < 220 {
			t.Errorf("scale-4 concept space = %d", r.Concepts)
		}
	}
	// Sense separation still holds at scale.
	if senses := s.PB.SensesOf("plants"); len(senses) < 2 {
		t.Errorf("plant senses at scale 4 = %v", senses)
	}
}
