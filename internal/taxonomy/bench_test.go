package taxonomy

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/extraction"
)

func benchGroups(n int) []extraction.Group {
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: n, Seed: 11}).Generate()
	inputs := make([]extraction.Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	return extraction.Run(inputs, extraction.DefaultConfig()).Groups
}

// BenchmarkBuild measures staged taxonomy construction (Algorithm 2 with
// fragment adoption) over real extraction groups.
func BenchmarkBuild(b *testing.B) {
	groups := benchGroups(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Build(groups, Config{})
		if res.Graph.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkBuildJaccard measures the ablation similarity.
func BenchmarkBuildJaccard(b *testing.B) {
	groups := benchGroups(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Build(groups, Config{Sim: Jaccard{Tau: 0.5}})
		if res.Graph.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkVertical measures the vertical merge stage alone, at several
// worker counts, on a horizontally merged engine. Vertical only adds
// links, so resetting the link set between iterations restores the
// pre-stage state exactly.
func BenchmarkVertical(b *testing.B) {
	groups := benchGroups(10000)
	locals := make([]*Local, 0, len(groups))
	for _, g := range groups {
		if g.Super == "" || len(g.Subs) == 0 {
			continue
		}
		locals = append(locals, NewLocal(g.Super, g.Subs))
	}
	e := newEngine(locals, AbsoluteOverlap{Delta: 2})
	e.runHorizontalParallel(1)
	e.adoptFragments()
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.links = make(map[[2]int]bool)
				e.runVerticalParallel(w)
				if len(e.links) == 0 {
					b.Fatal("no vertical links")
				}
			}
		})
	}
}

// BenchmarkMergeOrderStagedVsRandom measures the Theorem 2 effect on a
// subsample.
func BenchmarkMergeOrderStagedVsRandom(b *testing.B) {
	groups := benchGroups(2000)
	if len(groups) > 120 {
		groups = groups[:120]
	}
	locals := make([]*Local, 0, len(groups))
	for _, g := range groups {
		locals = append(locals, NewLocal(g.Super, g.Subs))
	}
	b.Run("staged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := newEngine(locals, AbsoluteOverlap{Delta: 2})
			e.runStaged()
		}
	})
	b.Run("random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			staged, random, _ := OrderExperiment(locals, AbsoluteOverlap{Delta: 2}, int64(i))
			if staged > random {
				b.Fatal("Theorem 2 violated")
			}
		}
	})
}
