#!/usr/bin/env python3
"""Gate the incremental-build speed SLO: a 1% delta build must finish in
at most half the wall time of a from-scratch build over the same
concatenated corpus.

Usage: check_delta_speed.py STATS.json [STATS.json ...]

The arguments are probase-build -stats-out reports, full and delta runs
mixed freely: a report carrying a "delta" object is a delta build,
anything else is a full build. Both sides need at least one report; the
gate compares min-of-runs wall times so a single scheduler hiccup on a
shared CI runner cannot flip the verdict (the same rationale as
check_storage_bench.py's min-of-reps timings).

The delta reports must also prove they actually ran incrementally: the
pipeline must not have fallen back to a full build, and the dirty-set
counters must be present and non-zero.

Exits non-zero on any violated gate. ci.yml re-runs this script on a
doctored report to prove the gate is live.
"""
import json
import sys

MAX_RATIO = 0.5

if len(sys.argv) < 2:
    sys.exit(f"usage: {sys.argv[0]} STATS.json [STATS.json ...]")

fulls, deltas = [], []
for path in sys.argv[1:]:
    report = json.load(open(path))
    (deltas if report.get("delta") else fulls).append((path, report))

if not fulls or not deltas:
    sys.exit(f"need at least one full and one delta report, got {len(fulls)} full / {len(deltas)} delta")

for path, report in deltas:
    d = report["delta"]
    if d["full_build"]:
        sys.exit(f"{path}: delta build fell back to a full rebuild")
    for counter in ("dirty_roots", "dirty_labels", "dirty_pairs"):
        if d.get(counter, 0) <= 0:
            sys.exit(f"{path}: delta counter {counter} is missing or zero")

full_wall = min(r["total_seconds"] for _, r in fulls)
delta_wall = min(r["total_seconds"] for _, r in deltas)
ratio = delta_wall / full_wall
print(
    f"full {full_wall:.3f}s (min of {len(fulls)}), "
    f"delta {delta_wall:.3f}s (min of {len(deltas)}), ratio {ratio:.3f}"
)
d = deltas[0][1]["delta"]
print(
    f"delta work: {d['dirty_roots']} dirty roots, {d['dirty_labels']} dirty labels "
    f"({d['reused_labels']} reused), {d['dirty_pairs']} dirty pairs, {d['dirty_seeds']} alg3 seeds"
)

if ratio > MAX_RATIO:
    sys.exit(f"delta build took {ratio:.3f}x of the full build wall time, budget is {MAX_RATIO}")
print(f"OK: delta/full ratio {ratio:.3f} <= {MAX_RATIO}")
