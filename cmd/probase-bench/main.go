// Command probase-bench regenerates every table and figure of the
// paper's evaluation (Section 5) plus the design-choice ablations, and
// prints them as text tables. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	probase-bench -exp all
//	probase-bench -exp table1,fig9,fig10 -sentences 20000 -scale 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

var experimentOrder = []string{
	"table1", "table4", "table5", "coverage", "fig8", "fig9", "fig10",
	"fig11", "fig12", "search", "shorttext", "webtables", "baseline",
	"jaccard", "mergeorder", "plausibility", "growth", "merge", "interpret", "extras",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "probase-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("probase-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "comma-separated experiments, or 'all' ("+strings.Join(experimentOrder, ",")+"); coverage = figs 5-7")
		sentences = fs.Int("sentences", 20000, "corpus size")
		scale     = fs.Float64("scale", 1, "world scale")
		seed      = fs.Int64("seed", 11, "corpus seed")
		queries   = fs.Int("queries", 50000, "query-log size for the coverage figures")
		version   = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(stdout, "probase-bench")
		return nil
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range experimentOrder {
			want[e] = true
		}
	} else {
		known := map[string]bool{}
		for _, e := range experimentOrder {
			known[e] = true
		}
		for _, e := range strings.Split(*exp, ",") {
			e = strings.TrimSpace(e)
			if e == "fig5" || e == "fig6" || e == "fig7" {
				e = "coverage"
			}
			if !known[e] {
				return fmt.Errorf("unknown experiment %q (have: %s)", e, strings.Join(experimentOrder, ","))
			}
			want[e] = true
		}
	}

	start := time.Now()
	setup, err := experiments.NewSetup(experiments.Options{
		Scale: *scale, Sentences: *sentences, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "setup: scale=%.1f sentences=%d seed=%d (built in %v)\n\n",
		*scale, *sentences, *seed, time.Since(start).Round(time.Millisecond))

	runOne := func(name string, fn func() string) {
		if !want[name] {
			return
		}
		t0 := time.Now()
		text := fn()
		fmt.Fprintln(stdout, text)
		fmt.Fprintf(stdout, "[%s: %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	runOne("table1", func() string { _, s := setup.Table1(); return s })
	runOne("table4", func() string {
		_, s, err := setup.Table4()
		if err != nil {
			return "table4 failed: " + err.Error()
		}
		return s
	})
	runOne("table5", func() string { _, s := setup.Table5(); return s })
	runOne("coverage", func() string { _, s := setup.Coverage(*queries); return s })
	runOne("fig8", func() string { _, s := setup.Fig8(); return s })
	runOne("fig9", func() string { _, s := setup.Fig9(); return s })
	runOne("fig10", func() string { _, s := setup.Fig10(); return s })
	runOne("fig11", func() string { _, s := setup.Fig11(); return s })
	runOne("fig12", func() string { _, s := setup.Fig12(); return s })
	runOne("search", func() string { _, s := setup.Search(); return s })
	runOne("shorttext", func() string { _, s := setup.ShortText(); return s })
	runOne("webtables", func() string { _, s := setup.WebTables(); return s })
	runOne("baseline", func() string { _, s := setup.Baseline(); return s })
	runOne("jaccard", func() string { _, s := setup.Jaccard(); return s })
	runOne("mergeorder", func() string { _, s := setup.MergeOrder(); return s })
	runOne("plausibility", func() string { _, s := setup.Plausibility(); return s })
	runOne("growth", func() string { _, s := setup.Growth(); return s })
	runOne("merge", func() string { _, s := setup.MergeFreebase(); return s })
	runOne("interpret", func() string { _, s := setup.InterpretExp(); return s })
	runOne("extras", func() string { _, s := setup.Extras(); return s })
	return nil
}
