package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// trackCloser stands in for an mmap region so tests can observe exactly
// when the serving layer releases it.
type trackCloser struct{ closed atomic.Bool }

func (c *trackCloser) Close() error { c.closed.Store(true); return nil }

// mappedTestProbase loads the shared test taxonomy through the mapped
// code path with an observable closer standing in for the mapping.
func mappedTestProbase(t *testing.T, tc *trackCloser) *core.Probase {
	t.Helper()
	var buf bytes.Buffer
	if err := testProbase(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadMapped(buf.Bytes(), tc)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := core.FromFrozen(g)
	if err != nil {
		t.Fatal(err)
	}
	pb.Format = "PBC2"
	return pb
}

// TestSwapUnmapsOnlyAfterDrain pins the drain-then-unmap contract
// deterministically: with a request still holding the old snapshot
// epoch, Swap must not release the old mapping; the release must happen
// the moment the last straggler finishes.
func TestSwapUnmapsOnlyAfterDrain(t *testing.T) {
	tc := &trackCloser{}
	pb := mappedTestProbase(t, tc)
	if !pb.Mapped() {
		t.Skip("host cannot zero-copy; the closer was already released at load")
	}
	s := New(pb, Config{})

	// An in-flight request: wrap() pins the epoch exactly like this.
	st := s.acquireState()

	if err := s.Swap(testProbase(t)); err != nil {
		t.Fatal(err)
	}
	if tc.closed.Load() {
		t.Fatal("old snapshot unmapped while a request was still in flight")
	}
	// The straggler can still answer queries from the old epoch.
	if got := st.pb.Graph.NumNodes(); got == 0 {
		t.Fatal("old epoch unreadable before release")
	}
	st.release()
	if !tc.closed.Load() {
		t.Fatal("old snapshot not unmapped after the last in-flight request drained")
	}
}

// TestReloadEndpoint covers the admin surface itself: method policy,
// the unconfigured case, and a successful reload's response body.
func TestReloadEndpoint(t *testing.T) {
	t.Run("unconfigured", func(t *testing.T) {
		s := newTestServer(t)
		req := httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotImplemented {
			t.Fatalf("status = %d, want 501", rec.Code)
		}
	})
	t.Run("GET is rejected", func(t *testing.T) {
		s := New(testProbase(t), Config{
			Reloader: func() (*core.Probase, error) { return testProbase(t), nil },
		})
		req := httptest.NewRequest(http.MethodGet, "/v1/admin/reload", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", rec.Code)
		}
	})
	t.Run("reload failure is a 500 and keeps serving", func(t *testing.T) {
		s := New(testProbase(t), Config{
			Reloader: func() (*core.Probase, error) { return nil, fmt.Errorf("disk gone") },
		})
		req := httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("status = %d, want 500", rec.Code)
		}
		if rec2, _ := get(t, s, "/v1/healthz"); rec2.Code != http.StatusOK {
			t.Fatalf("healthz after failed reload = %d", rec2.Code)
		}
	})
	t.Run("success", func(t *testing.T) {
		calls := 0
		s := New(testProbase(t), Config{
			Reloader: func() (*core.Probase, error) { calls++; return mappedTestProbase(t, &trackCloser{}), nil },
		})
		req := httptest.NewRequest(http.MethodPost, "/v1/admin/reload", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
		}
		if calls != 1 {
			t.Fatalf("reloader called %d times, want 1", calls)
		}
		body := rec.Body.String()
		for _, want := range []string{`"status":"reloaded"`, `"nodes":`, `"snapshot_format":"PBC2"`} {
			if !bytes.Contains([]byte(body), []byte(want)) {
				t.Errorf("reload body %s missing %s", body, want)
			}
		}
	})
}

// TestReloadUnderLoad is the zero-dropped-requests e2e: real HTTP
// clients hammer the query endpoints while /v1/admin/reload hot-swaps
// memory-mapped snapshots underneath them. Every query must succeed —
// no 5xx, no transport error, no torn response — and every retired
// mapping must be released by the time the load stops and the final
// epoch is closed. Run with -race this also proves the epoch handoff
// has no data races.
func TestReloadUnderLoad(t *testing.T) {
	var buf bytes.Buffer
	if err := testProbase(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.pbc2")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var closers sync.Map // *trackCloser -> struct{}
	nextPB := func() (*core.Probase, error) {
		// Each reload produces a fresh "mapping" with an observable
		// closer; snapshot.OpenMapped does the same with a real mmap.
		tc := &trackCloser{}
		closers.Store(tc, struct{}{})
		return mappedTestProbase(t, tc), nil
	}

	pb0, err := snapshot.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New(pb0, Config{Reloader: nextPB})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	queryPaths := []string{
		"/v1/instances?concept=companies&k=10",
		"/v1/concepts?term=IBM&k=5",
		"/v1/typicality?concept=companies&instance=IBM",
		"/v1/plausibility?x=companies&y=IBM",
		"/v1/healthz",
	}

	const (
		workers           = 8
		requestsPerWorker = 150
		reloads           = 12
	)
	var (
		wg      sync.WaitGroup
		dropped atomic.Int64
		served  atomic.Int64
	)
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requestsPerWorker; i++ {
				p := queryPaths[(w+i)%len(queryPaths)]
				resp, err := client.Get(ts.URL + p)
				if err != nil {
					dropped.Add(1)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode >= 500 || len(body) == 0 {
					dropped.Add(1)
					continue
				}
				served.Add(1)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			resp, err := client.Post(ts.URL+"/v1/admin/reload", "", nil)
			if err != nil {
				t.Errorf("reload %d: %v", i, err)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload %d: status %d", i, resp.StatusCode)
			}
		}
	}()
	wg.Wait()

	if d := dropped.Load(); d != 0 {
		t.Errorf("dropped %d requests across %d reloads (served %d)", d, reloads, served.Load())
	}
	if served.Load() != workers*requestsPerWorker {
		t.Errorf("served %d, want %d", served.Load(), workers*requestsPerWorker)
	}

	// Load has stopped: retire the live epoch too, then every mapping
	// ever served must have been released exactly once overall.
	st := s.state()
	st.release() // the server's own reference; no requests are in flight
	if !pb0.Mapped() {
		t.Logf("host cannot zero-copy; closer bookkeeping still verified")
	}
	leaked := 0
	closers.Range(func(k, _ any) bool {
		if !k.(*trackCloser).closed.Load() {
			leaked++
		}
		return true
	})
	// All but the final epoch must be closed; the final one was closed
	// by the release above (it may or may not be a trackCloser depending
	// on whether the last reload won the race with the last query).
	if leaked > 0 {
		t.Errorf("%d retired mappings never released", leaked)
	}
}
