package kb

import (
	"fmt"
	"testing"
)

func benchStore(n int) *Store {
	s := NewStore(32)
	for i := 0; i < n; i++ {
		x := fmt.Sprintf("concept%d", i%100)
		y := fmt.Sprintf("instance%d", i)
		s.Add(x, y, int64(i%7+1))
	}
	return s
}

func BenchmarkAdd(b *testing.B) {
	s := NewStore(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(fmt.Sprintf("c%d", i%100), fmt.Sprintf("i%d", i%10000), 1)
	}
}

func BenchmarkPYgivenX(b *testing.B) {
	s := benchStore(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PYgivenX(fmt.Sprintf("instance%d", i%10000), fmt.Sprintf("concept%d", i%100))
	}
}

func BenchmarkSubsOf(b *testing.B) {
	s := benchStore(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SubsOf(fmt.Sprintf("concept%d", i%100))
	}
}

func BenchmarkCoOccurrence(b *testing.B) {
	s := benchStore(1000)
	for i := 0; i < 1000; i++ {
		s.AddCo("concept1", fmt.Sprintf("a%d", i%50), fmt.Sprintf("b%d", i%50), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CoCount("concept1", fmt.Sprintf("a%d", i%50), fmt.Sprintf("b%d", i%50))
	}
}
