package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/extraction"
	"repro/internal/graph"
	"repro/internal/kb"
	"repro/internal/prob"
	"repro/internal/taxonomy"
)

// Full snapshot format: "PBFL", then two length-prefixed sections — the
// graph snapshot and the Γ snapshot (each carries its own checksum) —
// optionally followed by a third "PBCK" section holding the resumable
// BuildState (extraction checkpoint, taxonomy merge state, evidence
// model counts). Readers predating the third section stop after Γ;
// LoadFull treats its absence as a plain full snapshot.
const fullMagic = "PBFL"

// stateMagic heads the optional BuildState section.
const stateMagic = "PBCK"

// ErrBadFullSnapshot reports a structurally invalid full snapshot.
var ErrBadFullSnapshot = errors.New("core: bad full snapshot")

// SaveFull writes the taxonomy graph *and* Γ (counts, co-occurrence,
// evidence), so a reload supports evidence-based plausibility, not just
// the stored edge values.
func (p *Probase) SaveFull(w io.Writer) error {
	return p.SaveFullVersion(w, SnapshotVersionDefault)
}

// SaveFullVersion is SaveFull with an explicit graph-section format
// version (1 = "PBGR", 2 = "PBC2"); LoadFull reads both.
func (p *Probase) SaveFullVersion(w io.Writer, version int) error {
	if p.Store == nil {
		return errors.New("core: no Γ to save; use Save for graph-only snapshots")
	}
	var gbuf, kbuf bytes.Buffer
	if err := graph.WriteSnapshot(&gbuf, p.Graph, version); err != nil {
		return err
	}
	if err := p.Store.Save(&kbuf); err != nil {
		return err
	}
	if _, err := w.Write([]byte(fullMagic)); err != nil {
		return err
	}
	sections := []*bytes.Buffer{&gbuf, &kbuf}
	if s := p.State; s != nil && s.Checkpoint != nil && s.Taxonomy != nil && s.NB != nil {
		var sbuf bytes.Buffer
		if err := encodeBuildState(&sbuf, s); err != nil {
			return err
		}
		sections = append(sections, &sbuf)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, section := range sections {
		n := binary.PutUvarint(lenBuf[:], uint64(section.Len()))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := w.Write(section.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// encodeBuildState writes the "PBCK" section body: the magic, then the
// three state parts, each length-prefixed so a reader can skip or
// validate them independently.
func encodeBuildState(w io.Writer, s *BuildState) error {
	if _, err := w.Write([]byte(stateMagic)); err != nil {
		return err
	}
	parts := []func(io.Writer) error{
		func(w io.Writer) error { return extraction.EncodeCheckpoint(w, s.Checkpoint) },
		func(w io.Writer) error { return taxonomy.EncodeState(w, s.Taxonomy) },
		s.NB.Encode,
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, enc := range parts {
		var buf bytes.Buffer
		if err := enc(&buf); err != nil {
			return err
		}
		n := binary.PutUvarint(lenBuf[:], uint64(buf.Len()))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// decodeBuildState reads a "PBCK" section body written by
// encodeBuildState.
func decodeBuildState(data []byte) (*BuildState, error) {
	if len(data) < 4 || string(data[:4]) != stateMagic {
		return nil, fmt.Errorf("%w: build-state magic", ErrBadFullSnapshot)
	}
	r := bytes.NewReader(data[4:])
	next := func() (*bytes.Reader, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil || n > uint64(r.Len()) {
			return nil, fmt.Errorf("%w: build-state part length", ErrBadFullSnapshot)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: build-state part: %v", ErrBadFullSnapshot, err)
		}
		return bytes.NewReader(buf), nil
	}
	s := &BuildState{}
	part, err := next()
	if err != nil {
		return nil, err
	}
	if s.Checkpoint, err = extraction.DecodeCheckpoint(part); err != nil {
		return nil, err
	}
	if part, err = next(); err != nil {
		return nil, err
	}
	if s.Taxonomy, err = taxonomy.DecodeState(part); err != nil {
		return nil, err
	}
	if part, err = next(); err != nil {
		return nil, err
	}
	if s.NB, err = prob.DecodeNaiveBayes(part); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadFull reads a snapshot written by SaveFull. The evidence model is
// rebuilt untrained (training needs the oracle); plausibility queries use
// the stored evidence through the noisy-or with uninformative per-
// evidence probabilities, falling back to stored edge values and
// reachability.
func LoadFull(r io.Reader) (*Probase, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFullSnapshot, err)
	}
	if string(magic) != fullMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFullSnapshot, magic)
	}
	readSection := func() ([]byte, error) {
		br := byteReaderAdapter{r}
		n, err := binary.ReadUvarint(br)
		if errors.Is(err, io.EOF) {
			// No more sections: clean end of snapshot.
			return nil, io.EOF
		}
		if err != nil || n > 1<<32 {
			return nil, fmt.Errorf("%w: section length", ErrBadFullSnapshot)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: section body: %v", ErrBadFullSnapshot, err)
		}
		return buf, nil
	}
	gsec, err := readSection()
	if err != nil {
		return nil, err
	}
	ksec, err := readSection()
	if err != nil {
		return nil, err
	}
	// Optional third section: the resumable build state. A clean EOF here
	// is an old-style two-section snapshot, not an error.
	var state *BuildState
	if ssec, serr := readSection(); serr == nil {
		if state, err = decodeBuildState(ssec); err != nil {
			return nil, err
		}
	} else if !errors.Is(serr, io.EOF) {
		return nil, serr
	}
	g, err := graph.LoadFrozen(bytes.NewReader(gsec))
	if err != nil {
		return nil, err
	}
	store, err := kb.Load(bytes.NewReader(ksec))
	if err != nil {
		return nil, err
	}
	typ, err := prob.NewTypicality(g)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot is not a DAG: %w", err)
	}
	// With a saved build state the oracle-trained count tables come back
	// verbatim, so plausibility after reload equals plausibility before —
	// and a DeltaBuild from this snapshot advances the real model instead
	// of an uninformative one. Without one, fall back to the historical
	// unknown-oracle retrain.
	var model *prob.Model
	if state != nil {
		model = prob.NewModel(state.NB.Clone(), store)
	} else {
		model = prob.Train(store, func(x, y string) (bool, bool) { return false, false })
	}
	return &Probase{
		Store:  store,
		Graph:  g,
		Senses: sensesFromGraph(g),
		State:  state,
		typ:    typ,
		model:  model,
	}, nil
}

// byteReaderAdapter adds ReadByte on top of an io.Reader for
// binary.ReadUvarint without buffering past the varint.
type byteReaderAdapter struct{ r io.Reader }

func (b byteReaderAdapter) ReadByte() (byte, error) {
	var buf [1]byte
	_, err := io.ReadFull(b.r, buf[:])
	return buf[0], err
}
