// Package taxonomy implements the taxonomy-construction algorithm of
// Section 3 (Algorithm 2). Each extracted sentence yields a *local
// taxonomy* (Property 1: the super-concept of one sentence has a single
// sense). Local taxonomies with the same root label are merged
// horizontally when their child sets overlap enough (Property 2), and a
// parent's child slot is linked to another local taxonomy vertically when
// the child sets align (Property 3). The similarity is the absolute
// overlap |A ∩ B| >= δ of Section 3.5, whose monotonicity (Property 4)
// gives the confluence of Theorem 1; a Jaccard variant is provided for the
// ablation that the paper argues against.
//
// Build runs the two merge stages on the shared worker pool
// (internal/parallel): the horizontal stage fans out over root labels
// (labels merge independently, Section 3.4) and the vertical stage over
// sense clusters (link decisions read only merge-frozen child sets).
// Config.Workers sizes the pool; the built taxonomy is byte-identical
// at every worker count — ARCHITECTURE.md states the contract, and the
// determinism tests enforce it.
package taxonomy

import "sort"

// Local is one local taxonomy T_x^i: a root label with a multiset of
// child labels. The sense index i is implicit in the *Local identity.
type Local struct {
	Root     string
	Children map[string]int64 // child label -> occurrence count
}

// NewLocal builds a local taxonomy from one sentence's extraction group.
func NewLocal(root string, subs []string) *Local {
	l := &Local{Root: root, Children: make(map[string]int64, len(subs))}
	for _, s := range subs {
		l.Children[s]++
	}
	return l
}

// clone returns a deep copy.
func (l *Local) clone() *Local {
	c := &Local{Root: l.Root, Children: make(map[string]int64, len(l.Children))}
	for k, v := range l.Children {
		c.Children[k] = v
	}
	return c
}

// absorb merges other's children into l (a horizontal merge).
func (l *Local) absorb(other *Local) {
	for k, v := range other.Children {
		l.Children[k] += v
	}
}

// childLabels returns the sorted child labels.
func (l *Local) childLabels() []string {
	out := make([]string, 0, len(l.Children))
	for k := range l.Children {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Similarity decides whether two child sets are similar enough to merge.
type Similarity interface {
	// Similar reports Sim(A, B) for the two child multisets.
	Similar(a, b map[string]int64) bool
	// Name identifies the function in reports.
	Name() string
}

// overlap returns |A ∩ B| over the distinct child labels.
func overlap(a, b map[string]int64) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for k := range a {
		if _, ok := b[k]; ok {
			n++
		}
	}
	return n
}

// AbsoluteOverlap is the paper's similarity: f(A,B) = |A ∩ B| with a
// constant threshold δ. It satisfies Property 4 (monotone under set
// growth), which Theorem 1's confluence proof requires.
type AbsoluteOverlap struct {
	Delta int
}

// Similar implements Similarity.
func (s AbsoluteOverlap) Similar(a, b map[string]int64) bool {
	return overlap(a, b) >= s.Delta
}

// Name implements Similarity.
func (s AbsoluteOverlap) Name() string { return "absolute-overlap" }

// Jaccard is the relative similarity the paper rejects in Section 3.5:
// |A ∩ B| / |A ∪ B| >= Tau. It violates Property 4 — a set can be similar
// to a subset of C but not to C — so merge results become order-dependent.
// Provided for the ablation experiment.
type Jaccard struct {
	Tau float64
}

// Similar implements Similarity.
func (s Jaccard) Similar(a, b map[string]int64) bool {
	inter := overlap(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return false
	}
	return float64(inter)/float64(union) >= s.Tau
}

// Name implements Similarity.
func (s Jaccard) Name() string { return "jaccard" }
