package apps

import (
	"math"
	"math/rand"
	"sort"
)

// Vector is a sparse feature vector.
type Vector map[string]float64

func (v Vector) norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func cosine(a, b Vector) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for k, x := range a {
		dot += x * b[k]
	}
	na, nb := a.norm(), b.norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (na * nb)
}

// KMeans clusters sparse vectors with cosine similarity and deterministic
// seeded initialisation. It returns the cluster assignment per vector.
func KMeans(vectors []Vector, k int, iters int, seed int64) []int {
	n := len(vectors)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	centroids := make([]Vector, k)
	for i, p := range rng.Perm(n)[:k] {
		centroids[i] = cloneVec(vectors[p])
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vectors {
			best, bestSim := assign[i], -1.0
			for c := 0; c < k; c++ {
				if sim := cosine(v, centroids[c]); sim > bestSim {
					bestSim = sim
					best = c
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		// Recompute centroids as mean vectors.
		sums := make([]Vector, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = Vector{}
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for f, x := range v {
				sums[c][f] += x
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster deterministically.
				centroids[c] = cloneVec(vectors[rng.Intn(n)])
				continue
			}
			for f := range sums[c] {
				sums[c][f] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
	}
	return assign
}

func cloneVec(v Vector) Vector {
	out := make(Vector, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// Purity is the standard clustering purity: each cluster votes for its
// majority true label; purity is the fraction of points whose cluster
// vote matches their label.
func Purity(assign, labels []int) float64 {
	if len(assign) == 0 || len(assign) != len(labels) {
		return 0
	}
	counts := map[int]map[int]int{}
	for i, c := range assign {
		m := counts[c]
		if m == nil {
			m = map[int]int{}
			counts[c] = m
		}
		m[labels[i]]++
	}
	correct := 0
	clusters := make([]int, 0, len(counts))
	for c := range counts {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		best := 0
		for _, n := range counts[c] {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}
