package taxonomy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func example3Locals() []*Local {
	var out []*Local
	for _, g := range example3() {
		out = append(out, NewLocal(g.Super, g.Subs))
	}
	return out
}

// Theorem 1: any order of merge operations yields the same final graph.
func TestTheorem1ConfluenceExample3(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		staged, random, same := OrderExperiment(example3Locals(), AbsoluteOverlap{Delta: 2}, seed)
		if !same {
			t.Fatalf("seed %d: final graphs differ", seed)
		}
		if staged > random {
			t.Errorf("seed %d: staged ops %d > random ops %d (violates Theorem 2)", seed, staged, random)
		}
	}
}

// randomLocals builds a random local-taxonomy population over a small
// vocabulary so that overlaps actually occur.
func randomLocals(rng *rand.Rand) []*Local {
	rootVocab := []string{"a", "b", "c", "d"}
	childVocab := []string{"p", "q", "r", "s", "t", "u", "a", "b", "c"}
	n := 4 + rng.Intn(10)
	out := make([]*Local, 0, n)
	for i := 0; i < n; i++ {
		root := rootVocab[rng.Intn(len(rootVocab))]
		k := 2 + rng.Intn(4)
		subs := make([]string, 0, k)
		for j := 0; j < k; j++ {
			c := childVocab[rng.Intn(len(childVocab))]
			if c == root {
				continue
			}
			subs = append(subs, c)
		}
		if len(subs) == 0 {
			subs = append(subs, "p")
		}
		out = append(out, NewLocal(root, subs))
	}
	return out
}

// Theorem 1 as a property over random populations.
func TestTheorem1ConfluenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		locals := randomLocals(rng)
		_, _, same := OrderExperiment(locals, AbsoluteOverlap{Delta: 2}, seed+1)
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Theorem 2: the staged schedule never uses more operations than a random
// one.
func TestTheorem2MinimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		locals := randomLocals(rng)
		staged, random, _ := OrderExperiment(locals, AbsoluteOverlap{Delta: 2}, seed+1)
		return staged <= random
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Example 4 of the paper: vertical-first costs extra horizontal merges.
func TestExample4VerticalFirstCostsMore(t *testing.T) {
	locals := []*Local{
		NewLocal("A", []string{"B", "C", "D"}),
		NewLocal("A", []string{"B", "C", "D", "E"}),
		NewLocal("B", []string{"C", "D"}),
		NewLocal("B", []string{"C", "E"}),
	}
	foundCostlier := false
	for seed := int64(0); seed < 50; seed++ {
		staged, random, same := OrderExperiment(locals, AbsoluteOverlap{Delta: 2}, seed)
		if !same {
			t.Fatalf("seed %d: not confluent", seed)
		}
		if random > staged {
			foundCostlier = true
		}
		if random < staged {
			t.Fatalf("seed %d: random beat staged (%d < %d)", seed, random, staged)
		}
	}
	if !foundCostlier {
		t.Log("no random order was costlier; example may be too small to exhibit Theorem 2 strictly")
	}
}

// The Section 3.5 argument: Jaccard violates Property 4, so A similar to
// B does not imply A similar to a superset of B.
func TestJaccardViolatesProperty4(t *testing.T) {
	mk := func(items ...string) map[string]int64 {
		m := make(map[string]int64)
		for _, i := range items {
			m[i]++
		}
		return m
	}
	a := mk("Microsoft", "IBM", "HP")
	b := mk("Microsoft", "IBM", "Intel")
	c := mk("Microsoft", "IBM", "HP", "EMC", "Intel", "Google", "Apple")
	j := Jaccard{Tau: 0.5}
	if !j.Similar(a, b) {
		t.Error("J(A,B) = 0.5 should pass at tau 0.5")
	}
	if j.Similar(a, c) {
		t.Error("J(A,C) = 0.43 should fail at tau 0.5 (the absurdity: A ⊂ C)")
	}
	abs := AbsoluteOverlap{Delta: 2}
	if !abs.Similar(a, b) || !abs.Similar(a, c) {
		t.Error("absolute overlap must accept both (Property 4)")
	}
}

func TestSimilarityNames(t *testing.T) {
	if (AbsoluteOverlap{}).Name() != "absolute-overlap" || (Jaccard{}).Name() != "jaccard" {
		t.Error("similarity names changed")
	}
}

func TestEngineFingerprintStable(t *testing.T) {
	a := newEngine(example3Locals(), AbsoluteOverlap{Delta: 2})
	a.runStaged()
	b := newEngine(example3Locals(), AbsoluteOverlap{Delta: 2})
	b.runStaged()
	if a.fingerprint() != b.fingerprint() {
		t.Error("staged runs disagree")
	}
	if a.fingerprint() == "" {
		t.Error("empty fingerprint")
	}
}

func TestHorizontalMergeRetargetsLinks(t *testing.T) {
	// d links to one plant cluster; merging plant clusters must keep the
	// link pointing at the merged representative.
	locals := []*Local{
		NewLocal("plant", []string{"tree", "grass"}),
		NewLocal("plant", []string{"tree", "grass", "herb"}),
		NewLocal("organism", []string{"plant", "tree", "grass"}),
	}
	e := newEngine(locals, AbsoluteOverlap{Delta: 2})
	// Vertical first, against cluster 0.
	if !e.canVertical(2, 0) {
		t.Fatal("expected vertical candidate")
	}
	e.mergeVertical(2, 0)
	if !e.canHorizontal(0, 1) {
		t.Fatal("expected horizontal candidate")
	}
	e.mergeHorizontal(0, 1)
	fp := e.fingerprint()
	want := fmt.Sprintf("organism::grass=1;plant=1;tree=1; -> plant::grass=2;herb=1;tree=2;")
	if !containsLine(fp, want) {
		t.Errorf("fingerprint missing retargeted link:\n%s", fp)
	}
}

func containsLine(haystack, line string) bool {
	start := 0
	for start <= len(haystack) {
		end := start
		for end < len(haystack) && haystack[end] != '\n' {
			end++
		}
		if haystack[start:end] == line {
			return true
		}
		start = end + 1
	}
	return false
}
