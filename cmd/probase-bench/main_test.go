package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchSelectedExperiments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-exp", "table1,fig10,extras", "-sentences", "4000", "-queries", "2000"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"Table 1", "Figure 10", "Overall extraction quality"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "Figure 9") {
		t.Error("unselected experiment ran")
	}
}

func TestBenchFigAliases(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-exp", "fig5", "-sentences", "4000", "-queries", "2000"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Figure 5") {
		t.Error("fig5 alias did not run the coverage sweep")
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-exp", "nonsense"}, &stdout, &stderr); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBenchBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "probase-bench version") {
		t.Errorf("stdout = %q", stdout.String())
	}
}

// TestBenchJSONReport runs one experiment with -json and checks the
// machine-readable report round-trips through the binary's own
// validator, with the text tables unchanged alongside.
func TestBenchJSONReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-exp", "table1", "-sentences", "2000", "-json", path}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Table 1") {
		t.Error("-json must not suppress the text tables")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != benchSchema {
		t.Errorf("schema = %q", report.Schema)
	}
	if report.Options.Sentences != 2000 || report.Options.Seed != 11 {
		t.Errorf("options = %+v", report.Options)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].Name != "table1" {
		t.Fatalf("experiments = %+v", report.Experiments)
	}
	if report.Experiments[0].Result == nil {
		t.Error("table1 result missing from report")
	}
	if report.TotalSeconds <= 0 || report.SetupSeconds <= 0 {
		t.Errorf("timings not recorded: total=%v setup=%v", report.TotalSeconds, report.SetupSeconds)
	}

	// The binary's own validator accepts what the binary wrote.
	stdout.Reset()
	if err := run([]string{"-validate-json", path}, &stdout, &stderr); err != nil {
		t.Fatalf("self-validation failed: %v", err)
	}
	if !strings.Contains(stdout.String(), "valid") {
		t.Errorf("validator output: %q", stdout.String())
	}
}

// TestBenchJSONStdout routes the report to stdout with -json -.
func TestBenchJSONStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-exp", "table1", "-sentences", "2000", "-json", "-"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(stdout.String(), `{`)
	if idx < 0 {
		t.Fatal("no JSON on stdout")
	}
	// The report is the last thing printed; decode from the first brace
	// of the final block.
	tail := stdout.String()[strings.LastIndex(stdout.String(), "\n{"):]
	var report benchReport
	if err := json.Unmarshal([]byte(tail), &report); err != nil {
		t.Fatalf("stdout report invalid: %v\n%s", err, tail)
	}
	if report.Schema != benchSchema {
		t.Errorf("schema = %q", report.Schema)
	}
}

func TestValidateJSONRejectsBadReports(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"missing":        "",
		"not-json":       "not json",
		"wrong-schema":   `{"schema":"other/v9","build":{},"options":{"sentences":1},"experiments":[{"name":"x","seconds":1,"result":{}}],"total_seconds":1}`,
		"no-experiments": `{"schema":"probase-bench/v1","build":{},"options":{"sentences":1},"experiments":[],"total_seconds":1}`,
		"unknown-field":  `{"schema":"probase-bench/v1","bogus":1,"build":{},"options":{"sentences":1},"experiments":[{"name":"x","seconds":1,"result":{}}],"total_seconds":1}`,
		"unnamed":        `{"schema":"probase-bench/v1","build":{},"options":{"sentences":1},"experiments":[{"name":"","seconds":1,"result":{}}],"total_seconds":1}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".json")
		if name != "missing" {
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-validate-json", path}, &stdout, &stderr); err == nil {
			t.Errorf("%s: validator accepted a bad report", name)
		}
	}
}
