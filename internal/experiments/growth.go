package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/extraction"
	"repro/internal/querylog"
)

// GrowthPoint is one corpus size of the scaling sweep.
type GrowthPoint struct {
	Sentences int
	Pairs     int64
	Concepts  int
	Precision float64
	Recall    float64
	BuildMS   int64
}

// Growth sweeps corpus sizes and reports how the knowledge base and its
// quality grow — the laptop-scale analogue of the paper's central claim
// that the approach scales to web corpora while holding precision.
func (s *Setup) Growth() ([]GrowthPoint, string) {
	sizes := []int{5000, 10000, 20000, 40000}
	oracle := func(x, y string) (bool, bool) {
		if !s.World.KnownTerm(x) || !s.World.KnownTerm(y) {
			return false, false
		}
		return s.World.IsTrueIsA(x, y), true
	}
	var points []GrowthPoint
	var cells [][]string
	for _, n := range sizes {
		c := corpus.NewGenerator(s.World, corpus.GenConfig{Sentences: n, Seed: 11}).Generate()
		inputs := make([]extraction.Input, len(c.Sentences))
		for i, sent := range c.Sentences {
			inputs[i] = extraction.Input{Text: sent.Text, PageScore: sent.PageScore}
		}
		start := time.Now()
		pb, err := core.Build(inputs, core.Config{Oracle: oracle})
		if err != nil {
			continue
		}
		elapsed := time.Since(start)
		prec, _ := eval.StorePrecision(pb.Store, s.World)
		rec, _, _ := eval.Recall(pb.Store, s.World)
		p := GrowthPoint{
			Sentences: n,
			Pairs:     pb.Store.NumPairs(),
			Concepts:  len(pb.Graph.Concepts()),
			Precision: prec,
			Recall:    rec,
			BuildMS:   elapsed.Milliseconds(),
		}
		points = append(points, p)
		cells = append(cells, []string{
			itoa(p.Sentences), i64(p.Pairs), itoa(p.Concepts),
			pct(p.Precision), pct(p.Recall), fmt.Sprintf("%dms", p.BuildMS),
		})
	}
	return points, table("Scaling sweep: knowledge growth with corpus size",
		[]string{"Sentences", "Pairs", "Concepts", "Precision", "Recall", "Build"}, cells)
}

// MergeReport summarises the Section 5.2 Freebase-merge remark.
type MergeReport struct {
	InstancesBefore int
	InstancesAfter  int
	CoveredBefore   int64
	CoveredAfter    int64
	Queries         int
}

// MergeFreebase imports the Freebase reference's instance mass into the
// built Probase and measures the query-coverage gain.
func (s *Setup) MergeFreebase() (MergeReport, string) {
	fb := baseline.NewFreebaseRef(s.World)
	merged, err := s.PB.Merge(fb.Graph)
	if err != nil {
		return MergeReport{}, "merge failed: " + err.Error()
	}
	rep := MergeReport{
		InstancesBefore: len(s.PB.Graph.Instances()),
		InstancesAfter:  len(merged.Graph.Instances()),
	}
	queries := querylog.Generate(s.World, querylog.Config{Queries: 20000, Seed: 3})
	rep.Queries = len(queries)
	before := querylog.Analyze(queries, probaseVocabulary(s.PB), []int{len(queries)})
	after := querylog.Analyze(queries, probaseVocabulary(merged), []int{len(queries)})
	rep.CoveredBefore = before[0].Covered
	rep.CoveredAfter = after[0].Covered
	return rep, table("Section 5.2: merging Freebase instances into Probase",
		[]string{"Metric", "Before", "After"},
		[][]string{
			{"instances", itoa(rep.InstancesBefore), itoa(rep.InstancesAfter)},
			{"queries covered (of 20000)", i64(rep.CoveredBefore), i64(rep.CoveredAfter)},
		})
}
