package sketch

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestTopKExact(t *testing.T) {
	// Below capacity the sketch is exact: every count right, Err zero.
	s := New(10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Observe(fmt.Sprintf("k%d", i))
		}
	}
	got := s.Top(0)
	want := []Item{
		{Key: "k4", Count: 5}, {Key: "k3", Count: 4}, {Key: "k2", Count: 3},
		{Key: "k1", Count: 2}, {Key: "k0", Count: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Top = %+v, want %+v", got, want)
	}
	if s.Observed() != 15 {
		t.Fatalf("observed = %d, want 15", s.Observed())
	}
}

func TestTopKOrderTies(t *testing.T) {
	s := New(10)
	for _, k := range []string{"b", "a", "c"} {
		s.Observe(k)
	}
	got := s.Top(2)
	want := []Item{{Key: "a", Count: 1}, {Key: "b", Count: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Top(2) = %+v, want %+v", got, want)
	}
}

// TestTopKHeavyHitterGuarantee checks the Space-Saving invariant on an
// adversarial-ish stream: every key with true count > N/m is present,
// and every reported count brackets the truth within Err.
func TestTopKHeavyHitterGuarantee(t *testing.T) {
	const m = 16
	s := New(m)
	truth := map[string]int64{}
	rng := rand.New(rand.NewSource(42))

	record := func(key string, n int64) {
		s.ObserveN(key, n)
		truth[key] += n
	}
	// A few heavy keys buried in a long tail of singletons.
	for i := 0; i < 2000; i++ {
		switch {
		case i%10 == 0:
			record("hot-1", 1)
		case i%15 == 0:
			record("hot-2", 1)
		default:
			record(fmt.Sprintf("tail-%d", rng.Intn(1500)), 1)
		}
	}

	n := s.Observed()
	bound := n / m
	present := map[string]Item{}
	for _, it := range s.Top(0) {
		present[it.Key] = it
		if it.Err > bound {
			t.Errorf("%s: err %d exceeds N/m = %d", it.Key, it.Err, bound)
		}
		tc := truth[it.Key]
		if it.Count < tc || it.Count-it.Err > tc {
			t.Errorf("%s: reported %d (err %d) does not bracket true %d", it.Key, it.Count, it.Err, tc)
		}
	}
	for key, tc := range truth {
		if tc > bound {
			if _, ok := present[key]; !ok {
				t.Errorf("heavy hitter %s (true %d > N/m %d) evicted", key, tc, bound)
			}
		}
	}
	if len(s.Top(0)) > m {
		t.Fatalf("tracked %d keys, capacity %d", len(s.Top(0)), m)
	}
}

func TestTopKDeterministicEviction(t *testing.T) {
	// Two sketches fed the same stream in the same order must report
	// identically — the victim rule leaves no room for map-iteration
	// nondeterminism.
	stream := make([]string, 0, 1000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		stream = append(stream, fmt.Sprintf("k%d", rng.Intn(50)))
	}
	a, b := New(8), New(8)
	for _, k := range stream {
		a.Observe(k)
		b.Observe(k)
	}
	if !reflect.DeepEqual(a.Top(0), b.Top(0)) {
		t.Fatalf("same stream, different summaries:\n%+v\nvs\n%+v", a.Top(0), b.Top(0))
	}
}

func TestTopKMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(seed int64) *TopK {
		s := New(8)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			s.Observe(fmt.Sprintf("k%d", r.Intn(30)))
		}
		return s
	}
	for trial := 0; trial < 5; trial++ {
		s1, s2 := rng.Int63(), rng.Int63()
		ab, ba := mk(s1), mk(s2)
		ab.Merge(mk(s2))
		ba.Merge(mk(s1))
		if !reflect.DeepEqual(ab.Top(0), ba.Top(0)) {
			t.Fatalf("trial %d: Merge(a,b) != Merge(b,a):\n%+v\nvs\n%+v", trial, ab.Top(0), ba.Top(0))
		}
		if ab.Observed() != ba.Observed() {
			t.Fatalf("trial %d: observed %d vs %d", trial, ab.Observed(), ba.Observed())
		}
	}
}

func TestTopKMergeExactWhenDisjointFits(t *testing.T) {
	a, b := New(10), New(10)
	a.ObserveN("x", 5)
	a.ObserveN("y", 3)
	b.ObserveN("y", 2)
	b.ObserveN("z", 7)
	a.Merge(b)
	want := []Item{{Key: "z", Count: 7}, {Key: "x", Count: 5}, {Key: "y", Count: 5}}
	if got := a.Top(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %+v, want %+v", got, want)
	}
	if a.Observed() != 17 {
		t.Fatalf("observed = %d, want 17", a.Observed())
	}
	a.Merge(nil) // must not panic
}

func TestTopKReset(t *testing.T) {
	s := New(4)
	s.ObserveN("x", 9)
	s.Reset()
	if len(s.Top(0)) != 0 || s.Observed() != 0 {
		t.Fatalf("after Reset: %+v, observed %d", s.Top(0), s.Observed())
	}
	if s.Capacity() != 4 {
		t.Fatalf("capacity lost on Reset: %d", s.Capacity())
	}
}

func TestTopKDegenerateCapacity(t *testing.T) {
	s := New(0) // raised to 1
	s.Observe("a")
	s.Observe("b")
	s.ObserveN("b", 0)  // ignored
	s.ObserveN("c", -5) // ignored
	got := s.Top(0)
	if len(got) != 1 || got[0].Key != "b" || got[0].Count != 2 || got[0].Err != 1 {
		t.Fatalf("capacity-1 sketch = %+v", got)
	}
}
