package hearst

import (
	"reflect"
	"testing"
)

func wholes(segs []Segment) []string {
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = s.Whole
	}
	return out
}

func TestParseSuchAsSimple(t *testing.T) {
	m, ok := Parse("domestic animals such as cats, dogs and rabbits live with humans.")
	if !ok {
		t.Fatal("no match")
	}
	if m.Pattern != PatternSuchAs {
		t.Errorf("pattern = %v", m.Pattern)
	}
	if !reflect.DeepEqual(m.Supers, []string{"domestic animals"}) {
		t.Errorf("supers = %v", m.Supers)
	}
	got := wholes(m.Segments)
	want := []string{"cats", "dogs and rabbits"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("segments = %v, want %v", got, want)
	}
	if !m.Segments[1].Ambiguous() || !reflect.DeepEqual(m.Segments[1].Parts, []string{"dogs", "rabbits"}) {
		t.Errorf("last segment parts = %v", m.Segments[1].Parts)
	}
}

func TestParseOtherThanAmbiguity(t *testing.T) {
	// Example 2(1): both "animals" and "dogs" must be candidate supers.
	m, ok := Parse("animals other than dogs such as cats")
	if !ok {
		t.Fatal("no match")
	}
	if !reflect.DeepEqual(m.Supers, []string{"animals", "dogs"}) {
		t.Errorf("supers = %v", m.Supers)
	}
	if !reflect.DeepEqual(wholes(m.Segments), []string{"cats"}) {
		t.Errorf("segments = %v", m.Segments)
	}
}

func TestParseOtherThanSingularDecoy(t *testing.T) {
	// "Japan" is not plural, so it is not a candidate super-concept.
	m, ok := Parse("countries other than Japan such as USA")
	if !ok {
		t.Fatal("no match")
	}
	if !reflect.DeepEqual(m.Supers, []string{"countries"}) {
		t.Errorf("supers = %v", m.Supers)
	}
}

func TestParseCompoundName(t *testing.T) {
	// Example 2(3): "Proctor and Gamble" must keep both readings.
	m, ok := Parse("companies such as IBM, Nokia, Proctor and Gamble")
	if !ok {
		t.Fatal("no match")
	}
	got := wholes(m.Segments)
	want := []string{"IBM", "Nokia", "Proctor and Gamble"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("segments = %v, want %v", got, want)
	}
	last := m.Segments[2]
	if !last.Ambiguous() || !reflect.DeepEqual(last.Parts, []string{"Proctor", "Gamble"}) {
		t.Errorf("last parts = %v", last.Parts)
	}
}

func TestParseNonNPSubConcept(t *testing.T) {
	// Example 2(2): sub-concepts need not be noun phrases.
	m, ok := Parse("classic movies such as Gone with the Wind")
	if !ok {
		t.Fatal("no match")
	}
	if !reflect.DeepEqual(m.Supers, []string{"classic movies"}) {
		t.Errorf("supers = %v", m.Supers)
	}
	if !reflect.DeepEqual(wholes(m.Segments), []string{"Gone with the Wind"}) {
		t.Errorf("segments = %v", m.Segments)
	}
}

func TestParseAndOtherBackward(t *testing.T) {
	// Example 2(4): position 1 must be the element closest to the keyword.
	m, ok := Parse("representatives in North America, Europe, the Middle East, Australia, Mexico, Brazil, Japan, China, and other countries were present.")
	if !ok {
		t.Fatal("no match")
	}
	if m.Pattern != PatternAndOther {
		t.Errorf("pattern = %v", m.Pattern)
	}
	if !reflect.DeepEqual(m.Supers, []string{"countries"}) {
		t.Errorf("supers = %v", m.Supers)
	}
	got := wholes(m.Segments)
	want := []string{"China", "Japan", "Brazil", "Mexico", "Australia", "the Middle East", "Europe", "North America"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("segments = %v, want %v", got, want)
	}
}

func TestParseOrOther(t *testing.T) {
	m, ok := Parse("Linux, Solaris, or other operating systems")
	if !ok {
		t.Fatal("no match")
	}
	if m.Pattern != PatternOrOther {
		t.Errorf("pattern = %v", m.Pattern)
	}
	if !reflect.DeepEqual(m.Supers, []string{"operating systems"}) {
		t.Errorf("supers = %v", m.Supers)
	}
	if !reflect.DeepEqual(wholes(m.Segments), []string{"Solaris", "Linux"}) {
		t.Errorf("segments = %v", m.Segments)
	}
}

func TestParseSuchNPAs(t *testing.T) {
	m, ok := Parse("such tropical countries as Singapore, Malaysia")
	if !ok {
		t.Fatal("no match")
	}
	if m.Pattern != PatternSuchNPAs {
		t.Errorf("pattern = %v", m.Pattern)
	}
	if !reflect.DeepEqual(m.Supers, []string{"tropical countries"}) {
		t.Errorf("supers = %v", m.Supers)
	}
	if !reflect.DeepEqual(wholes(m.Segments), []string{"Singapore", "Malaysia"}) {
		t.Errorf("segments = %v", m.Segments)
	}
}

func TestParseIncluding(t *testing.T) {
	m, ok := Parse("large cities, including New York, Chicago and Los Angeles.")
	if !ok {
		t.Fatal("no match")
	}
	if m.Pattern != PatternIncluding {
		t.Errorf("pattern = %v", m.Pattern)
	}
	if !reflect.DeepEqual(m.Supers, []string{"large cities"}) {
		t.Errorf("supers = %v", m.Supers)
	}
	got := wholes(m.Segments)
	want := []string{"New York", "Chicago and Los Angeles"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("segments = %v, want %v", got, want)
	}
}

func TestParseEspecially(t *testing.T) {
	m, ok := Parse("european countries, especially France, Germany")
	if !ok {
		t.Fatal("no match")
	}
	if m.Pattern != PatternEspecially {
		t.Errorf("pattern = %v", m.Pattern)
	}
	if !reflect.DeepEqual(m.Supers, []string{"european countries"}) {
		t.Errorf("supers = %v", m.Supers)
	}
}

func TestParseNoMatch(t *testing.T) {
	for _, s := range []string{
		"the quick brown fox jumps over the lazy dog",
		"",
		"such as",      // keyword with nothing around it
		"cats such as", // no sub-concepts
	} {
		if _, ok := Parse(s); ok {
			t.Errorf("Parse(%q) matched, want no match", s)
		}
	}
}

func TestParseSingularSuperRejected(t *testing.T) {
	// Candidate super-concepts must be plural noun phrases.
	if _, ok := Parse("a cat such as Tom"); ok {
		t.Error("singular super-concept should not match")
	}
}

func TestParseClauseEndCut(t *testing.T) {
	m, ok := Parse("animals such as cats, dogs. They are cute and other things happen.")
	if !ok {
		t.Fatal("no match")
	}
	got := wholes(m.Segments)
	want := []string{"cats", "dogs"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("segments = %v, want %v", got, want)
	}
}

func TestPatternIDString(t *testing.T) {
	ids := map[PatternID]string{
		PatternSuchAs: "such as", PatternSuchNPAs: "such NP as",
		PatternIncluding: "including", PatternAndOther: "and other",
		PatternOrOther: "or other", PatternEspecially: "especially",
		PatternNone: "none",
	}
	for id, want := range ids {
		if id.String() != want {
			t.Errorf("%d.String() = %q, want %q", id, id.String(), want)
		}
	}
}
