package experiments

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/prob"
	"repro/internal/taxonomy"
)

// ParallelTiming is one (stage, worker count) wall-clock measurement.
type ParallelTiming struct {
	Stage   string  `json:"stage"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// Speedup is the stage's workers=1 time divided by this time.
	Speedup float64 `json:"speedup"`
}

// ParallelResult reports the worker-pool scaling of the parallelized
// build stages (see ARCHITECTURE.md): the Algorithm 3 reachability DP,
// the Algorithm 2 horizontal and vertical merges, and plausibility
// annotation.
type ParallelResult struct {
	Timings []ParallelTiming `json:"timings"`
	// Deterministic is true when every stage produced byte-identical
	// output at every measured worker count — the concurrency
	// contract's observable half. The CI bench-compare job gates on it.
	Deterministic bool `json:"deterministic"`
}

// parallelWorkerCounts are the pool sizes the experiment measures; the
// CI gate compares the first and the last.
var parallelWorkerCounts = []int{1, 2, 4}

// alg3BenchGraph builds a layered synthetic DAG sized so the Algorithm 3
// DP dominates measurement noise: `width` nodes per level, each wired to
// three parents of the previous level, giving wide per-level fan-out
// (the axis the DP parallelizes over) and deep ancestor sets.
func alg3BenchGraph(levels, width int) *graph.Store {
	rng := rand.New(rand.NewSource(7))
	g := graph.NewStore()
	prev := []graph.NodeID{g.Intern("root")}
	for l := 0; l < levels; l++ {
		cur := make([]graph.NodeID, width)
		for i := range cur {
			cur[i] = g.Intern(fmt.Sprintf("l%dn%d", l, i))
			parents := 3
			if parents > len(prev) {
				parents = len(prev)
			}
			for p := 0; p < parents; p++ {
				from := prev[rng.Intn(len(prev))]
				g.AddEdge(from, cur[i], int64(rng.Intn(9)+1), 0.9)
			}
		}
		prev = cur
	}
	return g
}

// reachFingerprint hashes P(x,y) over every node pair, so two DP runs
// agree iff their reach tables agree.
func reachFingerprint(g *graph.Store, t *prob.Typicality) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	n := graph.NodeID(g.NumNodes())
	for x := graph.NodeID(0); x < n; x++ {
		for y := graph.NodeID(0); y < n; y++ {
			p := t.Reach(x, y)
			if p == 0 {
				continue
			}
			key := uint64(x)<<32 | uint64(y)
			bits := math.Float64bits(p)
			for i := 0; i < 8; i++ {
				buf[i] = byte(key >> uint(8*i))
				buf[8+i] = byte(bits >> uint(8*i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// minSeconds times fn over reps runs and keeps the fastest, damping
// scheduler noise the way testing.B's -count min does.
func minSeconds(reps int, fn func()) float64 {
	best := math.MaxFloat64
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fn()
		if s := time.Since(t0).Seconds(); s < best {
			best = s
		}
	}
	return best
}

// ParallelExp measures the parallelized build stages at several worker
// counts and checks the determinism contract: output must be
// byte-identical at every count. Algorithm 3 runs on a synthetic
// layered DAG (controlled size, wide levels); the merge and annotation
// stages run on the corpus-derived build, timed through the stage
// telemetry seam.
func (s *Setup) ParallelExp() (*ParallelResult, string) {
	res := &ParallelResult{Deterministic: true}
	const reps = 3

	// Stage 1: Algorithm 3 reachability DP.
	ag := alg3BenchGraph(7, 160)
	var alg3Fp []uint64
	for _, w := range parallelWorkerCounts {
		var t *prob.Typicality
		secs := minSeconds(reps, func() {
			var err error
			t, err = prob.New(ag, prob.Options{Workers: w})
			if err != nil {
				panic(err)
			}
		})
		alg3Fp = append(alg3Fp, reachFingerprint(ag, t))
		res.Timings = append(res.Timings, ParallelTiming{Stage: "alg3", Workers: w, Seconds: secs})
	}

	// Stages 2+3: horizontal and vertical merges on the corpus build,
	// timed through the telemetry seam in one taxonomy.Build per rep.
	groups := s.PB.Extraction.Groups
	var taxSnapshots [][]byte
	for _, w := range parallelWorkerCounts {
		var hsecs, vsecs float64 = math.MaxFloat64, math.MaxFloat64
		var tax *taxonomy.Result
		for r := 0; r < reps; r++ {
			col := obs.NewStatsCollector()
			tax = taxonomy.Build(groups, taxonomy.Config{Workers: w, Reporter: col})
			for _, st := range col.Stages() {
				switch st.Name {
				case obs.StageTaxonomyHorizontal:
					if st.Seconds < hsecs {
						hsecs = st.Seconds
					}
				case obs.StageTaxonomyVertical:
					if st.Seconds < vsecs {
						vsecs = st.Seconds
					}
				}
			}
		}
		var buf bytes.Buffer
		if err := tax.Graph.Save(&buf); err != nil {
			panic(err)
		}
		taxSnapshots = append(taxSnapshots, buf.Bytes())
		res.Timings = append(res.Timings,
			ParallelTiming{Stage: "horizontal", Workers: w, Seconds: hsecs},
			ParallelTiming{Stage: "vertical", Workers: w, Seconds: vsecs})
	}

	// Stage 4: plausibility annotation over the built taxonomy.
	oracle := func(x, y string) (bool, bool) {
		if !s.World.KnownTerm(x) || !s.World.KnownTerm(y) {
			return false, false
		}
		return s.World.IsTrueIsA(x, y), true
	}
	model := prob.Train(s.PB.Store, oracle)
	base := taxonomy.Build(groups, taxonomy.Config{Workers: 1})
	var annSnapshots [][]byte
	for _, w := range parallelWorkerCounts {
		var g *graph.Store
		secs := minSeconds(reps, func() {
			g = base.Graph.Clone()
			core.AnnotatePlausibility(g, model, w, nil)
		})
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			panic(err)
		}
		annSnapshots = append(annSnapshots, buf.Bytes())
		res.Timings = append(res.Timings, ParallelTiming{Stage: "annotate", Workers: w, Seconds: secs})
	}

	// Determinism: every worker count must reproduce the workers=1 output.
	for _, fp := range alg3Fp {
		if fp != alg3Fp[0] {
			res.Deterministic = false
		}
	}
	for _, snap := range taxSnapshots {
		if !bytes.Equal(snap, taxSnapshots[0]) {
			res.Deterministic = false
		}
	}
	for _, snap := range annSnapshots {
		if !bytes.Equal(snap, annSnapshots[0]) {
			res.Deterministic = false
		}
	}

	// Speedup vs the stage's own workers=1 measurement.
	serial := make(map[string]float64)
	for _, t := range res.Timings {
		if t.Workers == 1 {
			serial[t.Stage] = t.Seconds
		}
	}
	for i := range res.Timings {
		if s1 := serial[res.Timings[i].Stage]; s1 > 0 && res.Timings[i].Seconds > 0 {
			res.Timings[i].Speedup = s1 / res.Timings[i].Seconds
		}
	}

	rows := make([][]string, 0, len(res.Timings))
	for _, t := range res.Timings {
		rows = append(rows, []string{
			t.Stage, itoa(t.Workers),
			fmt.Sprintf("%.1f", t.Seconds*1000),
			fmt.Sprintf("%.2fx", t.Speedup),
		})
	}
	title := fmt.Sprintf("Parallel stage scaling (deterministic=%v)", res.Deterministic)
	return res, table(title, []string{"stage", "workers", "ms", "speedup"}, rows)
}
