package core

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
	"repro/internal/extraction"
)

// TestBuildDeterministicAcrossWorkers asserts the end-to-end concurrency
// contract: a full pipeline run (extraction map phase, both merge
// stages, plausibility annotation, Algorithm 3) at workers=8 produces a
// snapshot byte-identical to the workers=1 run over the same seeded
// corpus, and identical plausibility scores on every graph edge. CI
// runs this under -race, exercising every fan-out for data races at
// once.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 8000, Seed: 11}).Generate()
	inputs := make([]extraction.Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	oracle := func(x, y string) (bool, bool) {
		if !w.KnownTerm(x) || !w.KnownTerm(y) {
			return false, false
		}
		return w.IsTrueIsA(x, y), true
	}
	build := func(workers int) (*Probase, []byte) {
		pb, err := Build(inputs, Config{Oracle: oracle, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := pb.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return pb, buf.Bytes()
	}
	refPB, refBytes := build(1)
	for _, workers := range []int{8} {
		pb, snap := build(workers)
		if !bytes.Equal(snap, refBytes) {
			t.Fatalf("workers=%d: snapshot differs from serial build (%d vs %d bytes)",
				workers, len(snap), len(refBytes))
		}
		// The snapshot encodes counts and plausibilities; double-check the
		// query surface agrees too (covers Γ and the typicality caches).
		for _, x := range []string{"companies", "countries", "animals"} {
			a, b := refPB.InstancesOf(x, 10), pb.InstancesOf(x, 10)
			if len(a) != len(b) {
				t.Fatalf("workers=%d: InstancesOf(%q) lengths differ", workers, x)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d: InstancesOf(%q)[%d] = %+v, serial %+v",
						workers, x, i, b[i], a[i])
				}
			}
		}
	}
}
