package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomDAG builds a layered random DAG big enough to exercise the hash
// lookup index and multi-level traversals, with edges only from lower
// to higher ids so it stays acyclic.
func randomDAG(nodes, edges int, seed int64) *Builder {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for i := 0; i < nodes; i++ {
		b.Intern(fmt.Sprintf("node %04d", i))
	}
	for i := 0; i < edges; i++ {
		from := NodeID(rng.Intn(nodes - 1))
		to := from + 1 + NodeID(rng.Intn(nodes-int(from)-1))
		b.AddEdge(from, to, int64(rng.Intn(50)+1), float64(rng.Intn(100))/100)
	}
	return b
}

// TestFrozenMatchesBuilder is the backend-equivalence contract at the
// graph layer: every Reader method must answer identically on the
// mutable store and its frozen CSR view.
func TestFrozenMatchesBuilder(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    *Builder
	}{
		{"diamond", func() *Builder { s, _ := diamond(); return s }()},
		{"random", randomDAG(300, 900, 1)},
		{"empty", NewBuilder()},
		{"edgeless", func() *Builder {
			b := NewBuilder()
			b.Intern("only")
			return b
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.b
			f := b.Freeze()
			assertReadersEqual(t, b, f)
		})
	}
}

// assertReadersEqual exhaustively compares two Reader implementations
// claimed to hold the same graph.
func assertReadersEqual(t *testing.T, want, got Reader) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape: got %d/%d nodes/edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	n := want.NumNodes()
	for id := 0; id < n; id++ {
		node := NodeID(id)
		label := want.Label(node)
		if got.Label(node) != label {
			t.Fatalf("Label(%d) = %q, want %q", id, got.Label(node), label)
		}
		if got.Lookup(label) != node {
			t.Errorf("Lookup(%q) = %d, want %d", label, got.Lookup(label), id)
		}
		if got.Kind(node) != want.Kind(node) {
			t.Errorf("Kind(%d) mismatch", id)
		}
		if !edgesEqual(got.Children(node), want.Children(node)) {
			t.Errorf("Children(%d) = %v, want %v", id, got.Children(node), want.Children(node))
		}
		if !edgesEqual(got.Parents(node), want.Parents(node)) {
			t.Errorf("Parents(%d) = %v, want %v", id, got.Parents(node), want.Parents(node))
		}
		if !idsEqual(got.Descendants(node), want.Descendants(node)) {
			t.Errorf("Descendants(%d) = %v, want %v", id, got.Descendants(node), want.Descendants(node))
		}
		if !idsEqual(got.Ancestors(node), want.Ancestors(node)) {
			t.Errorf("Ancestors(%d) = %v, want %v", id, got.Ancestors(node), want.Ancestors(node))
		}
	}
	if got.Lookup("no such label") != NoNode {
		t.Error("Lookup of unknown label != NoNode")
	}
	if !idsEqual(got.Roots(), want.Roots()) {
		t.Errorf("Roots = %v, want %v", got.Roots(), want.Roots())
	}
	if !idsEqual(got.Concepts(), want.Concepts()) {
		t.Errorf("Concepts = %v, want %v", got.Concepts(), want.Concepts())
	}
	if !idsEqual(got.Instances(), want.Instances()) {
		t.Errorf("Instances = %v, want %v", got.Instances(), want.Instances())
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200 && n > 0; i++ {
		x, y := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		ew, okw := want.EdgeBetween(x, y)
		eg, okg := got.EdgeBetween(x, y)
		if okw != okg || ew != eg {
			t.Errorf("EdgeBetween(%d,%d) = %v/%v, want %v/%v", x, y, eg, okg, ew, okw)
		}
		if got.HasPath(x, y) != want.HasPath(x, y) {
			t.Errorf("HasPath(%d,%d) mismatch", x, y)
		}
	}
	lw, errw := want.TopoLevels()
	lg, errg := got.TopoLevels()
	if (errw == nil) != (errg == nil) || !reflect.DeepEqual(lw, lg) {
		t.Errorf("TopoLevels mismatch: %v/%v vs %v/%v", lg, errg, lw, errw)
	}
	dw, errw := want.Level()
	dg, errg := got.Level()
	if (errw == nil) != (errg == nil) || !reflect.DeepEqual(dw, dg) {
		t.Errorf("Level mismatch: %v/%v vs %v/%v", dg, errg, dw, errw)
	}
}

func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func idsEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFrozenLookupWithoutIndex pins the binary-search fallback: below
// lookupIndexMin nodes no hash index is built, and Lookup must still
// answer through the sorted label table.
func TestFrozenLookupWithoutIndex(t *testing.T) {
	s, _ := diamond()
	f := s.Freeze()
	if f.idx != nil {
		t.Fatalf("tiny graph built a hash index (%d nodes >= %d?)", f.NumNodes(), lookupIndexMin)
	}
	for id := 0; id < s.NumNodes(); id++ {
		label := s.Label(NodeID(id))
		if got := f.Lookup(label); got != NodeID(id) {
			t.Errorf("Lookup(%q) = %d, want %d", label, got, id)
		}
	}
	if f.Lookup("zzz") != NoNode || f.Lookup("") != NoNode {
		t.Error("unknown labels must return NoNode")
	}
}

// TestFrozenLookupWithIndex pins the hash-index fast path on a graph
// large enough to build one.
func TestFrozenLookupWithIndex(t *testing.T) {
	b := randomDAG(100, 200, 2)
	f := b.Freeze()
	if f.idx == nil {
		t.Fatal("expected a hash index on a 100-node graph")
	}
	for id := 0; id < b.NumNodes(); id++ {
		label := b.Label(NodeID(id))
		if got := f.Lookup(label); got != NodeID(id) {
			t.Errorf("Lookup(%q) = %d, want %d", label, got, id)
		}
	}
	if f.Lookup("node 9999") != NoNode {
		t.Error("unknown label must return NoNode")
	}
}

// TestFreezeIsolation: mutating the builder after Freeze must not leak
// into the frozen view.
func TestFreezeIsolation(t *testing.T) {
	s, ids := diamond()
	f := s.Freeze()
	nodes, edges := f.NumNodes(), f.NumEdges()
	s.AddEdge(ids["pet"], s.Intern("goldfish"), 1, 0.5)
	s.AddEdge(ids["animal"], ids["cat"], 100, 0)
	if f.NumNodes() != nodes || f.NumEdges() != edges {
		t.Fatalf("frozen view changed shape after builder mutation: %d/%d -> %d/%d",
			nodes, edges, f.NumNodes(), f.NumEdges())
	}
	if e, _ := f.EdgeBetween(ids["animal"], ids["cat"]); e.Count != 10 {
		t.Errorf("frozen edge count = %d, want the pre-mutation 10", e.Count)
	}
}

// TestThawRoundTrip: Builder -> Frozen -> Builder preserves the graph
// and yields an independent, mutable copy.
func TestThawRoundTrip(t *testing.T) {
	orig := randomDAG(50, 120, 3)
	f := orig.Freeze()
	thawed := NewBuilderFrom(f)
	assertReadersEqual(t, orig, thawed)
	// The thaw is independent of the frozen view...
	thawed.AddEdge(thawed.Intern("brand new"), 0, 1, 0)
	if f.NumNodes() == thawed.NumNodes() {
		t.Error("thawed builder mutation leaked into frozen view")
	}
	// ...and mutable in the usual way.
	if thawed.Lookup("brand new") == NoNode {
		t.Error("thawed builder did not intern")
	}
}

// TestFrozenCycleError: freezing a cyclic graph succeeds (CSR does not
// care), but TopoLevels/Level must report the cycle exactly as the
// builder does.
func TestFrozenCycleError(t *testing.T) {
	b := NewBuilder()
	x, y := b.Intern("x"), b.Intern("y")
	b.AddEdge(x, y, 1, 0)
	b.AddEdge(y, x, 1, 0)
	f := b.Freeze()
	if _, err := f.TopoLevels(); err == nil {
		t.Error("frozen TopoLevels on cyclic graph should fail")
	}
	if _, err := f.Level(); err == nil {
		t.Error("frozen Level on cyclic graph should fail")
	}
	// Traversals still work on cyclic graphs.
	if !f.HasPath(x, x) || len(f.Descendants(x)) != 1 {
		t.Error("cyclic traversals broken")
	}
}
