//go:build (linux || darwin) && !probase_nommap

package mmap

import (
	"fmt"
	"os"
	"syscall"
)

// openFile maps size bytes of f with mmap(2), read-only and shared:
// every process serving the same snapshot file shares one copy of its
// pages in the page cache.
func openFile(f *os.File, size int) (*Mapping, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %s: %w", f.Name(), err)
	}
	return &Mapping{data: data, mapped: true}, nil
}

func unmap(data []byte) error { return syscall.Munmap(data) }
