package corpus

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/nlp"
)

// GenConfig controls the synthetic web corpus. Zero values select the
// defaults noted on each field.
type GenConfig struct {
	Sentences     int     // number of sentences to emit (default 10000)
	Seed          int64   // PRNG seed
	NoiseRate     float64 // fraction of pattern-free prose (default 0.15)
	ErrorRate     float64 // fraction of erroneous isA sentences (default 0.02)
	OtherThanRate float64 // fraction of pattern sentences with an "other than" decoy (default 0.08)
	JunkListRate  float64 // fraction of backward-pattern sentences with junk list prefixes (default 0.10)
	AttributeRate float64 // fraction of attribute sentences (default 0.10)
	PartOfRate    float64 // fraction of part-whole sentences (default 0.03)
	BasedInRate   float64 // fraction of location sentences (default 0.05)
	PageMean      int     // mean sentences per page (default 8)
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Sentences == 0 {
		c.Sentences = 10000
	}
	if c.NoiseRate == 0 {
		c.NoiseRate = 0.15
	}
	if c.ErrorRate == 0 {
		c.ErrorRate = 0.02
	}
	if c.OtherThanRate == 0 {
		c.OtherThanRate = 0.08
	}
	if c.JunkListRate == 0 {
		c.JunkListRate = 0.10
	}
	if c.AttributeRate == 0 {
		c.AttributeRate = 0.10
	}
	if c.PartOfRate == 0 {
		c.PartOfRate = 0.03
	}
	if c.BasedInRate == 0 {
		c.BasedInRate = 0.05
	}
	if c.PageMean == 0 {
		c.PageMean = 8
	}
	return c
}

// Sentence is one corpus sentence with its page provenance.
type Sentence struct {
	Text      string
	PageID    int32
	PageScore float64 // PageRank-like score in (0, 1]
}

// Corpus is a generated synthetic web corpus plus the world it came from.
type Corpus struct {
	Sentences []Sentence
	World     *World
}

// memberPool precomputes, for one concept, the renderable members
// (children rendered as plural labels, instances as-is) with Zipf-decaying
// weights so that ground-truth-typical members dominate.
type memberPool struct {
	key     string
	members []string // rendered surface forms
	isChild []bool
	cum     []float64 // cumulative weights
	total   float64
}

func newMemberPool(w *World, key string) *memberPool {
	c := w.Concept(key)
	p := &memberPool{key: key}
	// Rank order drives mention frequency (Zipf): the hand-ranked typical
	// instances come first, then the sub-concept labels, then the long
	// tail — text mentions "companies such as IBM" far more often than
	// "companies such as game publishers".
	head := 3
	if head > len(c.Instances) {
		head = len(c.Instances)
	}
	add := func(m string, child bool) {
		p.members = append(p.members, m)
		p.isChild = append(p.isChild, child)
	}
	for _, inst := range c.Instances[:head] {
		add(inst, false)
	}
	for _, ch := range c.Children {
		add(w.Concept(ch).PluralLabel(), true)
	}
	for _, inst := range c.Instances[head:] {
		add(inst, false)
	}
	p.cum = make([]float64, len(p.members))
	for i := range p.members {
		w := 1.0 / math.Pow(float64(i+1), 0.85)
		p.total += w
		p.cum[i] = p.total
	}
	return p
}

func (p *memberPool) sample(rng *rand.Rand) int {
	if len(p.members) == 0 {
		return -1
	}
	x := rng.Float64() * p.total
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sampleDistinct draws up to k distinct member indexes.
func (p *memberPool) sampleDistinct(rng *rand.Rand, k int) []int {
	if k > len(p.members) {
		k = len(p.members)
	}
	seen := make(map[int]bool, k)
	var out []int
	for tries := 0; len(out) < k && tries < 20*k+20; tries++ {
		i := p.sample(rng)
		if i < 0 {
			break
		}
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// Generator produces the synthetic corpus.
type Generator struct {
	cfg   GenConfig
	world *World
	rng   *rand.Rand
	pools []*memberPool
	// concept sampling weights (by member count).
	cumConcept []float64
	totConcept float64
	// concepts that have attributes, for attribute sentences.
	attrConcepts []string
	// concepts that have parts, for part-whole sentences.
	partConcepts []string
	// instances with a home country, for location sentences.
	homed []string
}

// NewGenerator prepares a generator over the given world.
func NewGenerator(w *World, cfg GenConfig) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg, world: w, rng: rand.New(rand.NewSource(cfg.Seed))}
	for _, key := range w.Keys() {
		pool := newMemberPool(w, key)
		if len(pool.members) == 0 {
			continue
		}
		g.pools = append(g.pools, pool)
		g.totConcept += float64(len(pool.members))
		g.cumConcept = append(g.cumConcept, g.totConcept)
		if len(w.Concept(key).Attributes) > 0 {
			g.attrConcepts = append(g.attrConcepts, key)
		}
		if len(w.Concept(key).Parts) > 0 {
			g.partConcepts = append(g.partConcepts, key)
		}
	}
	g.homed = w.HomedInstances()
	return g
}

func (g *Generator) pickPool() *memberPool {
	x := g.rng.Float64() * g.totConcept
	lo, hi := 0, len(g.cumConcept)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cumConcept[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.pools[lo]
}

// Generate emits the corpus.
func (g *Generator) Generate() *Corpus {
	sentences := make([]Sentence, 0, g.cfg.Sentences)
	pageID := int32(0)
	pageLeft := 0
	pageScore := 0.0
	for len(sentences) < g.cfg.Sentences {
		if pageLeft == 0 {
			pageID++
			pageLeft = 1 + g.rng.Intn(2*g.cfg.PageMean)
			// Skewed-low score distribution: few high-authority pages.
			pageScore = g.rng.Float64() * g.rng.Float64()
			if pageScore < 0.01 {
				pageScore = 0.01
			}
		}
		text := g.sentence()
		sentences = append(sentences, Sentence{Text: text, PageID: pageID, PageScore: pageScore})
		pageLeft--
	}
	return &Corpus{Sentences: sentences, World: g.world}
}

// sentence draws one sentence of a random kind.
func (g *Generator) sentence() string {
	r := g.rng.Float64()
	switch {
	case r < g.cfg.NoiseRate:
		return g.noiseSentence()
	case r < g.cfg.NoiseRate+g.cfg.AttributeRate:
		return g.attributeSentence()
	case r < g.cfg.NoiseRate+g.cfg.AttributeRate+g.cfg.ErrorRate:
		return g.errorSentence()
	case r < g.cfg.NoiseRate+g.cfg.AttributeRate+g.cfg.ErrorRate+g.cfg.PartOfRate:
		return g.partOfSentence()
	case r < g.cfg.NoiseRate+g.cfg.AttributeRate+g.cfg.ErrorRate+g.cfg.PartOfRate+g.cfg.BasedInRate:
		return g.basedInSentence()
	default:
		return g.patternSentence()
	}
}

// basedInSentence renders relational evidence ("IBM is based in USA."),
// the co-occurrence signal behind two-concept query interpretation.
func (g *Generator) basedInSentence() string {
	if len(g.homed) == 0 {
		return g.noiseSentence()
	}
	inst := g.homed[int(math.Pow(g.rng.Float64(), 2)*float64(len(g.homed)))%len(g.homed)]
	home := g.world.Home(inst)
	if g.rng.Intn(2) == 0 {
		return fmt.Sprintf("Everyone knows that %s is based in %s.", inst, home)
	}
	return fmt.Sprintf("%s is headquartered in %s.", inst, home)
}

// partOfSentence renders composition evidence ("trees are comprised of
// branches, leaves and roots"), the negative-evidence source of
// Section 4.1.
func (g *Generator) partOfSentence() string {
	if len(g.partConcepts) == 0 {
		return g.noiseSentence()
	}
	key := g.partConcepts[g.rng.Intn(len(g.partConcepts))]
	c := g.world.Concept(key)
	k := 2 + g.rng.Intn(2)
	if k > len(c.Parts) {
		k = len(c.Parts)
	}
	perm := g.rng.Perm(len(c.Parts))[:k]
	parts := make([]string, k)
	for i, j := range perm {
		parts[i] = nlp.PluralizePhrase(c.Parts[j])
	}
	if g.rng.Intn(2) == 0 {
		return fmt.Sprintf("%s are comprised of %s.", c.PluralLabel(), joinList(parts, "and"))
	}
	return fmt.Sprintf("%s consist of %s.", c.PluralLabel(), joinList(parts, "and"))
}

func (g *Generator) noiseSentence() string {
	a := junkVocabulary[g.rng.Intn(len(junkVocabulary))]
	b := junkVocabulary[g.rng.Intn(len(junkVocabulary))]
	return fmt.Sprintf("The meeting about %s covered %s in depth.", a, b)
}

// attributeSentence renders attribute evidence for Figure 12:
// "the <attr> of <Instance> is widely discussed."
func (g *Generator) attributeSentence() string {
	if len(g.attrConcepts) == 0 {
		return g.noiseSentence()
	}
	key := g.attrConcepts[g.rng.Intn(len(g.attrConcepts))]
	c := g.world.Concept(key)
	if len(c.Instances) == 0 {
		return g.noiseSentence()
	}
	// Typicality-skewed instance choice.
	idx := int(math.Pow(g.rng.Float64(), 2) * float64(len(c.Instances)))
	if idx >= len(c.Instances) {
		idx = len(c.Instances) - 1
	}
	inst := c.Instances[idx]
	attr := c.Attributes[g.rng.Intn(len(c.Attributes))]
	if g.rng.Float64() < 0.2 {
		attr = junkAttributes[g.rng.Intn(len(junkAttributes))]
	}
	if g.rng.Intn(2) == 0 {
		return fmt.Sprintf("The %s of %s is widely discussed.", attr, inst)
	}
	return fmt.Sprintf("Everyone knows %s's %s quite well.", inst, attr)
}

// errorSentence claims membership of members from an unrelated concept —
// the extraction noise that keeps precision below 100%. Half the time,
// when the concept has parts, the error confuses composition with
// membership ("trees such as branches") — the error class that part-of
// negative evidence (Section 4.1) exists to suppress.
func (g *Generator) errorSentence() string {
	x := g.pickPool()
	if c := g.world.Concept(x.key); len(c.Parts) > 0 && g.rng.Intn(2) == 0 {
		part := nlp.PluralizePhrase(c.Parts[g.rng.Intn(len(c.Parts))])
		return fmt.Sprintf("Some say %s such as %s matter most.", c.PluralLabel(), part)
	}
	y := g.pickPool()
	if x == y {
		return g.noiseSentence()
	}
	idxs := y.sampleDistinct(g.rng, 1+g.rng.Intn(2))
	if len(idxs) == 0 {
		return g.noiseSentence()
	}
	items := make([]string, len(idxs))
	for i, j := range idxs {
		items[i] = y.members[j]
	}
	label := g.world.Concept(x.key).PluralLabel()
	return fmt.Sprintf("Some say %s such as %s matter most.", label, joinList(items, "and"))
}

// patternSentence renders a truthful Hearst-pattern sentence with the
// configured ambiguity features.
func (g *Generator) patternSentence() string {
	pool := g.pickPool()
	c := g.world.Concept(pool.key)
	k := 1 + g.rng.Intn(5)
	idxs := pool.sampleDistinct(g.rng, k)
	if len(idxs) == 0 {
		return g.noiseSentence()
	}
	items := make([]string, len(idxs))
	for i, j := range idxs {
		items[i] = pool.members[j]
	}
	plural := c.PluralLabel()
	prefix := prosePrefixes[g.rng.Intn(len(prosePrefixes))]
	suffix := proseSuffixes[g.rng.Intn(len(proseSuffixes))]

	// Pattern choice: weights echo real Hearst-pattern frequency.
	p := g.rng.Float64()
	switch {
	case p < 0.40:
		return prefix + g.forwardPattern(plural, pool, items, "such as") + suffix
	case p < 0.55:
		return prefix + g.forwardPattern(plural, pool, items, "including") + suffix
	case p < 0.65:
		return prefix + g.forwardPattern(plural, pool, items, "especially") + suffix
	case p < 0.75:
		// such NP as ...
		return prefix + "such " + plural + " as " + joinList(items, "and") + suffix
	case p < 0.92:
		return prefix + g.backwardPattern(plural, items, "and other") + suffix
	default:
		return prefix + g.backwardPattern(plural, items, "or other") + suffix
	}
}

// forwardPattern renders "X [other than D] <kw> Y1, Y2 and Y3".
func (g *Generator) forwardPattern(plural string, pool *memberPool, items []string, kw string) string {
	head := plural
	if g.rng.Float64() < g.cfg.OtherThanRate {
		if decoy := g.decoyFor(pool, items); decoy != "" {
			head = plural + " other than " + decoy
		}
	}
	sep := "and"
	if kw == "including" && g.rng.Intn(4) == 0 {
		sep = "or"
	}
	body := head + " " + kw + " " + joinList(items, sep)
	if kw != "such as" && g.rng.Intn(2) == 0 {
		body = head + ", " + kw + " " + joinList(items, sep)
	}
	return body
}

// backwardPattern renders "[junk,] Y3, Y2, Y1, <kw> Xs". Items that embed
// stop words (e.g. "Gone with the Wind") are kept away from the first list
// slot, where real extractors also mangle them.
func (g *Generator) backwardPattern(plural string, items []string, kw string) string {
	// Move a stop-word-bearing item off the first slot when possible.
	for i := 1; i < len(items); i++ {
		if !containsInnerStopWord(items[0]) {
			break
		}
		items[0], items[i] = items[i], items[0]
	}
	list := make([]string, 0, len(items)+2)
	if g.rng.Float64() < g.cfg.JunkListRate {
		list = append(list, "representatives in "+g.junkItem())
		if g.rng.Intn(2) == 0 {
			list = append(list, g.junkItem())
		}
	}
	list = append(list, items...)
	return strings.Join(list, ", ") + ", " + kw + " " + plural
}

// decoyFor picks an "other than" decoy: a plural sub-concept label of the
// same concept when one exists (the paper's "animals other than dogs"),
// otherwise empty.
func (g *Generator) decoyFor(pool *memberPool, items []string) string {
	var childIdx []int
	for i, isc := range pool.isChild {
		if isc {
			childIdx = append(childIdx, i)
		}
	}
	if len(childIdx) == 0 {
		return ""
	}
	i := childIdx[g.rng.Intn(len(childIdx))]
	d := pool.members[i]
	for _, it := range items {
		if it == d {
			return ""
		}
	}
	return d
}

// junkItem picks a phrase that is not an instance of the super-concept:
// either prose junk or a member of an unrelated concept (continents before
// countries, per Example 2(4)).
func (g *Generator) junkItem() string {
	if g.rng.Intn(2) == 0 {
		return junkVocabulary[g.rng.Intn(len(junkVocabulary))]
	}
	p := g.pickPool()
	if i := p.sample(g.rng); i >= 0 {
		return p.members[i]
	}
	return junkVocabulary[0]
}

func containsInnerStopWord(s string) bool {
	fields := strings.Fields(s)
	for i, f := range fields {
		if i == 0 {
			continue
		}
		if nlp.IsStopWord(f) {
			return true
		}
	}
	return false
}

// joinList renders "A", "A and B", or "A, B and C" (Oxford comma
// randomly omitted is not needed for determinism; we always omit it).
func joinList(items []string, sep string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	default:
		return strings.Join(items[:len(items)-1], ", ") + " " + sep + " " + items[len(items)-1]
	}
}

// WriteTo streams the corpus as tab-separated lines: pageID, pageScore,
// text. It implements the on-disk format shared by cmd/corpusgen and
// cmd/probase-build.
func (c *Corpus) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, s := range c.Sentences {
		m, err := fmt.Fprintf(bw, "%d\t%.6f\t%s\n", s.PageID, s.PageScore, s.Text)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadSentences parses the on-disk corpus format produced by WriteTo.
func ReadSentences(r io.Reader) ([]Sentence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Sentence
	line := 0
	for sc.Scan() {
		line++
		parts := strings.SplitN(sc.Text(), "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("corpus: line %d: want 3 tab-separated fields, got %d", line, len(parts))
		}
		id, err := strconv.ParseInt(parts[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("corpus: line %d: bad page id: %v", line, err)
		}
		score, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("corpus: line %d: bad page score: %v", line, err)
		}
		out = append(out, Sentence{Text: parts[2], PageID: int32(id), PageScore: score})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
