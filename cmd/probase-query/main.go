// Command probase-query answers conceptualisation queries against a
// taxonomy snapshot built by probase-build. Both graph-only and full
// (graph + Γ) snapshots are accepted; the flavour is auto-detected.
//
// Usage:
//
//	probase-query -snapshot probase.bin instances companies
//	probase-query -snapshot probase.bin concepts IBM
//	probase-query -snapshot probase.bin abstract China India Brazil
//	probase-query -snapshot probase.bin senses plants
//	probase-query -snapshot probase.bin plausibility companies IBM
//	probase-query -snapshot probase.bin ner IBM opened an office in Singapore
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

const usageText = `usage: probase-query [-snapshot file] [-k n] <command> <args...>
commands:
  instances <concept>        typical instances by T(i|x)
  concepts <term>            typical concepts by T(x|i)
  abstract <term> <term>...  joint conceptualisation of a term set
  senses <label>             sense nodes of a concept label
  plausibility <x> <y>       P(x, y) of the isA claim
  ner <text...>              tag known entities with fine-grained concepts`

var errUsage = errors.New(usageText)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "probase-query:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("probase-query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		snapPath = fs.String("snapshot", "probase.bin", "taxonomy snapshot")
		k        = fs.Int("k", 10, "number of results")
		version  = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(stdout, "probase-query")
		return nil
	}
	rest := fs.Args()
	if len(rest) < 2 {
		return errUsage
	}

	pb, err := snapshot.Open(*snapPath)
	if err != nil {
		return err
	}

	cmd, cargs := rest[0], rest[1:]
	switch cmd {
	case "instances":
		for _, r := range pb.InstancesOf(strings.Join(cargs, " "), *k) {
			fmt.Fprintf(stdout, "%-40s %.4f\n", r.Label, r.Score)
		}
	case "concepts":
		for _, r := range pb.ConceptsOf(strings.Join(cargs, " "), *k) {
			fmt.Fprintf(stdout, "%-40s %.4f\n", r.Label, r.Score)
		}
	case "abstract":
		ranked, ok := pb.Conceptualize(cargs, *k)
		if !ok {
			return fmt.Errorf("no known terms in %v", cargs)
		}
		for _, r := range ranked {
			fmt.Fprintf(stdout, "%-40s %.4f\n", r.Label, r.Score)
		}
	case "senses":
		for _, s := range pb.SensesOf(strings.Join(cargs, " ")) {
			fmt.Fprintln(stdout, s)
		}
	case "plausibility":
		if len(cargs) < 2 {
			return errUsage
		}
		fmt.Fprintf(stdout, "%.4f\n", pb.Plausibility(cargs[0], strings.Join(cargs[1:], " ")))
	case "ner":
		recognizer := apps.NewRecognizer(pb)
		for _, m := range recognizer.Recognize(strings.Join(cargs, " ")) {
			fmt.Fprintf(stdout, "%-30s %-25s %.4f\n", m.Text, m.Concept, m.Score)
		}
	default:
		return errUsage
	}
	return nil
}
