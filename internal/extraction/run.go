package extraction

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/hearst"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// RoundStats summarises one iteration of Algorithm 1; the per-round series
// regenerate Figures 10 and 11.
type RoundStats struct {
	Round             int
	NewPairs          int64 // distinct pairs first discovered this round
	TotalPairs        int64 // accumulated distinct pairs
	TotalConcepts     int   // accumulated distinct super-concepts
	SentencesResolved int   // sentences fully decided during this round
	SentencesPending  int   // sentences still undecided after this round
	Candidates        int   // undecided sub-concept positions scanned this round
	Accepted          int   // positions accepted by the likelihood-ratio tests
	Rejected          int   // positions rejected by the likelihood-ratio tests
	Elapsed           time.Duration
}

// counters renders the round as the counter map reported to the
// StageReporter (and thence to probase-build's progress lines and
// stats.json).
func (r RoundStats) counters() map[string]int64 {
	return map[string]int64{
		"sentences_scanned":  int64(r.SentencesResolved + r.SentencesPending),
		"candidates":         int64(r.Candidates),
		"accepted":           int64(r.Accepted),
		"rejected":           int64(r.Rejected),
		"new_pairs":          r.NewPairs,
		"total_pairs":        r.TotalPairs,
		"total_concepts":     int64(r.TotalConcepts),
		"sentences_resolved": int64(r.SentencesResolved),
		"sentences_pending":  int64(r.SentencesPending),
	}
}

// Group is the set of isA pairs extracted from one sentence —
// s = {(x, y1), ..., (x, ym)} in the paper's notation. Per Property 1 all
// occurrences of x in a group share one sense, which makes groups the unit
// from which taxonomy construction builds its local taxonomies.
type Group struct {
	Super string
	Subs  []string
	// Order is the 1-based global corpus position of the group's sentence.
	// It gives taxonomy construction a resume-stable replay order; 0 means
	// unspecified (hand-built groups), in which case slice order rules.
	Order int
}

// Result is the output of a full extraction run.
type Result struct {
	Store      *kb.Store       // Γ
	Rounds     []RoundStats    // one entry per executed round
	FirstRound map[kb.Pair]int // round in which each pair was first found (0 = inherited from the base)
	Parsed     int             // sentences that matched a Hearst pattern (cumulative across resumes)
	Groups     []Group         // per-sentence pair groups, for taxonomy construction
	PartOf     int             // part-whole sentences recorded as negative evidence (cumulative)
	// Checkpoint is the resumable fixpoint state after this run; feed it
	// (with Store) back through Resume to extend the corpus incrementally.
	Checkpoint *Checkpoint
	// DirtyRoots lists, sorted, the super-concepts whose final group
	// records differ from the base run's (compared via the checkpoint's
	// per-root group-list hashes): changed, new, or vanished roots. On a
	// from-scratch run that is every root; on a resumed run it is the
	// delta's exact footprint, the seed of the taxonomy layer's dirty
	// label set.
	DirtyRoots []string
}

// PairsThroughRound returns the distinct pairs discovered in rounds
// 1..r, for per-iteration precision (Figure 11).
func (r *Result) PairsThroughRound(round int) []kb.Pair {
	var out []kb.Pair
	for p, fr := range r.FirstRound {
		if fr <= round {
			out = append(out, p)
		}
	}
	return out
}

// Run executes the iterative extraction over the corpus sentences.
// Each round reads an immutable snapshot of Γ (the store is only written
// in the single-threaded reduce step between rounds), so the result is
// independent of goroutine scheduling.
func Run(inputs []Input, cfg Config) *Result {
	// With a nil checkpoint there is no prior state to restore, so Resume
	// cannot fail.
	res, err := Resume(nil, inputs, cfg)
	if err != nil {
		panic("extraction: Run: " + err.Error())
	}
	return res
}

// Resume continues a previous extraction over a corpus delta. cp is the
// checkpoint of the base run (nil for a from-scratch run); inputs are the
// new sentences, numbered after the base corpus. The checkpoint's raw
// tail — the base sentences past the last chunk boundary, whose
// end-of-corpus settle was provisional — is replayed ahead of the delta,
// and pending boundary sentences are rehydrated, so the resumed fold
// settles at exactly the chunk boundaries a from-scratch run over the
// concatenated corpus would and makes bit-identical decisions.
//
// cp is not mutated: the boundary store is cloned before new evidence
// lands, so a base build can keep serving while its checkpoint seeds
// delta builds.
func Resume(cp *Checkpoint, inputs []Input, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	rep := obs.ReporterOrNop(cfg.Reporter)
	rep.StageStart(obs.StageExtraction)
	runStart := time.Now()

	var (
		store      *kb.Store
		baseIndex  int // global index of the first stream sentence
		doneGroups []Group
	)
	var states []*sentenceState
	stream := inputs
	if cp != nil {
		if cp.Store == nil {
			return nil, fmt.Errorf("%w: checkpoint has no store", ErrBadCheckpoint)
		}
		if cp.ChunkSize != cfg.ChunkSize {
			return nil, fmt.Errorf("%w: checkpoint chunk size %d, config %d",
				ErrBadCheckpoint, cp.ChunkSize, cfg.ChunkSize)
		}
		boundary := cp.NumInputs - len(cp.Tail)
		if boundary < 0 || boundary%cfg.ChunkSize != 0 {
			return nil, fmt.Errorf("%w: boundary %d not chunk-aligned", ErrBadCheckpoint, boundary)
		}
		store = cp.Store.Clone()
		// Serialised stores carry no cap; restore it so the kept evidence
		// set matches a from-scratch run at the same cap.
		store.SetMaxEvidence(cfg.MaxEvidencePerPair)
		baseIndex = boundary
		doneGroups = cp.Groups
		for _, ps := range cp.Pending {
			st, err := rehydrate(ps)
			if err != nil {
				return nil, err
			}
			states = append(states, st)
		}
		if len(cp.Tail) > 0 {
			stream = make([]Input, 0, len(cp.Tail)+len(inputs))
			stream = append(append(stream, cp.Tail...), inputs...)
		}
		rep.Count(obs.StageExtraction, "resumed_pending", int64(len(cp.Pending)))
		rep.Count(obs.StageExtraction, "resumed_tail", int64(len(cp.Tail)))
	} else {
		store = kb.NewStore(cfg.MaxEvidencePerPair)
	}

	res := &Result{
		Store:      store,
		FirstRound: make(map[kb.Pair]int),
	}
	parsed, partOf := 0, 0
	if cp != nil {
		parsed, partOf = cp.Parsed, cp.PartOf
		// Base pairs count as round 0 so a resumed run's new_pairs series
		// reports only genuinely new discoveries.
		store.ForEachPair(func(x, y string, _ int64) {
			res.FirstRound[kb.Pair{X: x, Y: y}] = 0
		})
	}
	rep.Count(obs.StageExtraction, "sentences_total", int64(len(inputs)))
	rep.Count(obs.StageExtraction, "workers", int64(cfg.Workers))

	// consume parses one sentence into the live state (or straight into Γ:
	// composition sentences — "trees are comprised of branches" — become
	// negative evidence against the corresponding isA claims, Section 4.1;
	// negatives never influence decisions, and the canonical seq ordering
	// makes their arrival time irrelevant to the stored lists).
	consume := func(in Input, index int) {
		if po, ok := hearst.ParsePartOf(in.Text); ok {
			x := CanonicalSuper(po.Whole)
			for j, part := range po.Parts {
				store.AddEvidence(x, CanonicalSub(part), kb.Evidence{
					PageScore: in.PageScore,
					ListLen:   len(po.Parts),
					Pos:       j + 1,
					Negative:  true,
					Seq:       evidenceSeq(index, j+1, 0),
				})
				partOf++
			}
			return
		}
		m, ok := hearst.Parse(in.Text)
		if !ok {
			return
		}
		states = append(states, &sentenceState{
			index:     index,
			text:      in.Text,
			match:     m,
			pageScore: in.PageScore,
			status:    make([]posState, len(m.Segments)),
			readings:  make([][]string, len(m.Segments)),
		})
		parsed++
	}

	// settle iterates the fixpoint over the undecided sentences until no
	// decision moves (or the per-settle round cap). The round counter is
	// global across settles so FirstRound and the Figure 10/11 series stay
	// monotone.
	round := 0
	settle := func() {
		var pending []int
		for i, st := range states {
			if !st.done {
				pending = append(pending, i)
			}
		}
		for r := 0; r < cfg.MaxRounds && len(pending) > 0; r++ {
			round++
			roundStart := time.Now()
			candidates := 0
			for _, idx := range pending {
				for _, ps := range states[idx].status {
					if ps == posUndecided {
						candidates++
					}
				}
			}
			decisions := mapPhase(states, pending, cfg, store)
			progress, resolved, newPairs, accepted, rejected := reducePhase(states, pending, decisions, res, round, cfg)

			var next []int
			for _, idx := range pending {
				if !states[idx].done {
					next = append(next, idx)
				}
			}
			pending = next

			st := store.Stats()
			rs := RoundStats{
				Round:             round,
				NewPairs:          newPairs,
				TotalPairs:        st.Pairs,
				TotalConcepts:     st.Supers,
				SentencesResolved: resolved,
				SentencesPending:  len(pending),
				Candidates:        candidates,
				Accepted:          accepted,
				Rejected:          rejected,
				Elapsed:           time.Since(roundStart),
			}
			res.Rounds = append(res.Rounds, rs)
			rep.Round(obs.StageExtraction, round, rs.counters(), rs.Elapsed)
			if !progress {
				break
			}
		}
	}

	// The fold: consume chunk, settle, repeat. The checkpoint is captured
	// at the last absolute chunk boundary the corpus crosses — the state
	// there is canonical (any longer corpus settles at the same points) —
	// with the sentences past it carried raw, to be re-decided on resume.
	end := baseIndex + len(stream)
	finalBoundary := end - end%cfg.ChunkSize
	var next *Checkpoint
	pos := 0
	for {
		if gidx := baseIndex + pos; gidx == finalBoundary && next == nil {
			next = captureCheckpoint(cfg, states, store, stream[pos:], end, parsed, partOf, doneGroups)
		}
		if pos == len(stream) {
			break
		}
		target := pos + cfg.ChunkSize - (baseIndex+pos)%cfg.ChunkSize
		if target > len(stream) {
			target = len(stream)
		}
		for ; pos < target; pos++ {
			consume(stream[pos], baseIndex+pos)
		}
		settle()
	}

	res.Parsed = parsed
	res.PartOf = partOf
	res.Checkpoint = next
	res.Groups = append(res.Groups, doneGroups...)
	for _, st := range states {
		if st.super != "" && len(st.accepted) > 0 {
			res.Groups = append(res.Groups, Group{
				Super: st.super,
				Subs:  append([]string(nil), st.accepted...),
				Order: st.index + 1,
			})
		}
	}
	sortGroupsByOrder(res.Groups)
	hashes := rootGroupHashes(res.Groups)
	next.RootHashes = hashes
	// The dirty set is exact: a root is dirty iff its final group list
	// differs from the base run's — changed hash, new root, or a root
	// whose groups all vanished (super detection can flip on replay).
	dirty := make(map[string]bool)
	var baseHashes map[string]uint64
	if cp != nil {
		baseHashes = cp.RootHashes
	}
	for r, h := range hashes {
		if ph, ok := baseHashes[r]; cp == nil || !ok || ph != h {
			dirty[r] = true
		}
	}
	for r := range baseHashes {
		if _, ok := hashes[r]; !ok {
			dirty[r] = true
		}
	}
	res.DirtyRoots = sortedKeys(dirty)
	rep.Count(obs.StageExtraction, "sentences_parsed", int64(parsed))
	rep.Count(obs.StageExtraction, "part_of_negatives", int64(partOf))
	rep.Count(obs.StageExtraction, "groups", int64(len(res.Groups)))
	rep.StageEnd(obs.StageExtraction, time.Since(runStart))
	return res, nil
}

// captureCheckpoint snapshots the fold state at the final chunk boundary.
// The store clone is taken before any tail evidence lands, so the
// checkpointed Γ is exactly the boundary Γ.
func captureCheckpoint(cfg Config, states []*sentenceState, store *kb.Store,
	tail []Input, numInputs, parsed, partOf int, doneGroups []Group) *Checkpoint {
	next := &Checkpoint{
		NumInputs: numInputs,
		ChunkSize: cfg.ChunkSize,
		Parsed:    parsed,
		PartOf:    partOf,
		Store:     store.Clone(),
		Groups:    append([]Group(nil), doneGroups...),
		Tail:      append([]Input(nil), tail...),
	}
	for _, st := range states {
		if st.done {
			if st.super != "" && len(st.accepted) > 0 {
				next.Groups = append(next.Groups, Group{
					Super: st.super,
					Subs:  append([]string(nil), st.accepted...),
					Order: st.index + 1,
				})
			}
		} else {
			next.Pending = append(next.Pending, dehydrate(st))
		}
	}
	sortGroupsByOrder(next.Groups)
	sort.Slice(next.Pending, func(i, j int) bool { return next.Pending[i].Index < next.Pending[j].Index })
	return next
}

func sortGroupsByOrder(gs []Group) {
	sort.SliceStable(gs, func(i, j int) bool { return gs[i].Order < gs[j].Order })
}

// rootGroupHashes fingerprints each root's final emitted group list with
// FNV-1a over the (Order, Subs) sequence of its groups in corpus order.
// Two runs give a root equal hashes exactly when its group records are
// identical — the reuse contract the taxonomy layer's MergeDelta needs.
func rootGroupHashes(groups []Group) map[string]uint64 {
	if len(groups) == 0 {
		return nil
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	hashes := make(map[string]uint64)
	for _, g := range groups {
		h, ok := hashes[g.Super]
		if !ok {
			h = fnvOffset
		}
		for v := uint64(g.Order); ; v >>= 8 {
			h = (h ^ (v & 0xff)) * fnvPrime
			if v < 1<<8 {
				break
			}
		}
		for _, s := range g.Subs {
			for i := 0; i < len(s); i++ {
				h = (h ^ uint64(s[i])) * fnvPrime
			}
			h = (h ^ 0xfe) * fnvPrime // sub separator
		}
		hashes[g.Super] = (h ^ 0xff) * fnvPrime // group separator
	}
	return hashes
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// rehydrate rebuilds a live sentence state from its checkpointed form.
// Parsing is pure, so re-parsing the stored text reproduces the match;
// the checkpoint only has to restore the decisions layered on top.
func rehydrate(ps PendingSentence) (*sentenceState, error) {
	m, ok := hearst.Parse(ps.Text)
	if !ok {
		return nil, fmt.Errorf("%w: pending sentence %d no longer parses", ErrBadCheckpoint, ps.Index)
	}
	if len(m.Segments) != len(ps.Status) {
		return nil, fmt.Errorf("%w: pending sentence %d has %d segments, checkpoint has %d",
			ErrBadCheckpoint, ps.Index, len(m.Segments), len(ps.Status))
	}
	st := &sentenceState{
		index:     ps.Index,
		text:      ps.Text,
		match:     m,
		pageScore: ps.PageScore,
		super:     ps.Super,
		superDone: ps.SuperDone,
		status:    make([]posState, len(ps.Status)),
		readings:  make([][]string, len(ps.Status)),
		accepted:  append([]string(nil), ps.Accepted...),
	}
	for i, s := range ps.Status {
		st.status[i] = posState(s)
	}
	return st, nil
}

// dehydrate converts a live undecided sentence into its checkpointed form.
func dehydrate(st *sentenceState) PendingSentence {
	ps := PendingSentence{
		Index:     st.index,
		Text:      st.text,
		PageScore: st.pageScore,
		Super:     st.super,
		SuperDone: st.superDone,
		Status:    make([]uint8, len(st.status)),
		Accepted:  append([]string(nil), st.accepted...),
	}
	for i, s := range st.status {
		ps.Status[i] = uint8(s)
	}
	return ps
}

// mapPhase resolves the pending sentences in parallel against the current
// Γ snapshot. Decisions are returned in pending order for a deterministic
// reduce.
//
// Sharing audit: a resolver holds only a Config value (copied, never
// written after withDefaults) and the *kb.Store, which is RWMutex-guarded
// and written exclusively by the single-threaded reduce phase — during
// the map fan-out every store access is a read. The resolve call graph
// (resolve, detectSuper, segmentChunks, pSub, pSuper, bestSegCount)
// keeps all mutable state in locals, and distinct items touch distinct
// sentenceStates. Each worker still gets its own resolver below, so a
// future scratch field (say, a memo table) cannot silently become shared
// state.
func mapPhase(states []*sentenceState, pending []int, cfg Config, store *kb.Store) []decision {
	decisions := make([]decision, len(pending))
	workers := parallel.Bound(cfg.Workers, len(pending))
	resolvers := make([]resolver, max(workers, 1))
	for w := range resolvers {
		resolvers[w] = resolver{cfg: cfg, store: store}
	}
	_ = parallel.ForEachWorker(context.Background(), workers, len(pending), func(w, i int) error {
		idx := pending[i]
		decisions[i] = resolvers[w].resolve(idx, states[idx])
		return nil
	})
	return decisions
}

// reducePhase applies decisions to Γ single-threaded, in pending order.
func reducePhase(states []*sentenceState, pending []int, decisions []decision, res *Result, round int, cfg Config) (progress bool, resolved int, newPairs int64, accepted, rejected int) {
	for i, idx := range pending {
		d := decisions[i]
		st := states[idx]
		if d.progress {
			progress = true
		}
		accepted += len(d.accepts)
		rejected += len(d.rejects)
		if d.super != "" {
			st.super = d.super
			st.superDone = true
		}
		counted := make(map[string]bool, len(st.accepted))
		for _, s := range st.accepted {
			counted[s] = true
		}
		for _, a := range d.accepts {
			st.status[a.pos] = posAccepted
			st.readings[a.pos] = a.reading
			for k, sub := range a.reading {
				if sub == "" || sub == st.super || counted[sub] {
					continue
				}
				pair := kb.Pair{X: st.super, Y: sub}
				if _, seen := res.FirstRound[pair]; !seen {
					res.FirstRound[pair] = round
					newPairs++
				}
				res.Store.Add(st.super, sub, 1)
				res.Store.AddEvidence(st.super, sub, kb.Evidence{
					Pattern:   int(st.match.Pattern),
					PageScore: st.pageScore,
					ListLen:   len(st.match.Segments),
					Pos:       a.pos + 1,
					Seq:       evidenceSeq(st.index, a.pos+1, k),
				})
				for _, prev := range st.accepted {
					res.Store.AddCo(st.super, sub, prev, 1)
				}
				st.accepted = append(st.accepted, sub)
				counted[sub] = true
			}
		}
		for _, j := range d.rejects {
			st.status[j] = posRejected
		}
		if d.done && !st.done {
			st.done = true
			resolved++
		}
	}
	return progress, resolved, newPairs, accepted, rejected
}
