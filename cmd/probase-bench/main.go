// Command probase-bench regenerates every table and figure of the
// paper's evaluation (Section 5) plus the design-choice ablations, and
// prints them as text tables. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	probase-bench -exp all
//	probase-bench -exp table1,fig9,fig10 -sentences 20000 -scale 1
//
// With -json the same run also emits a machine-readable report (schema
// "probase-bench/v1"): per-experiment structured results and timings,
// suitable for regression tracking across commits. -json auto picks a
// BENCH_<timestamp>.json name; the text tables are unchanged either
// way. -validate-json checks a previously written report against the
// schema and exits (the CI bench-smoke job gates on it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// The report format lives in internal/benchfmt so probase-loadgen can
// emit the same schema; the local names keep this file (and its tests)
// reading as before.
const benchSchema = benchfmt.Schema

type (
	benchReport     = benchfmt.Report
	benchOptions    = benchfmt.Options
	experimentEntry = benchfmt.Experiment
)

// validateBenchJSON checks that path holds a well-formed benchReport.
// It is the binary-side contract test the CI bench-smoke job runs on
// its artifact.
func validateBenchJSON(path string) error {
	return benchfmt.ValidateFile(path)
}

var experimentOrder = []string{
	"table1", "table4", "table5", "coverage", "fig8", "fig9", "fig10",
	"fig11", "fig12", "search", "shorttext", "webtables", "baseline",
	"jaccard", "mergeorder", "plausibility", "growth", "merge", "interpret", "extras",
	"parallel", "storage",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "probase-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("probase-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "comma-separated experiments, or 'all' ("+strings.Join(experimentOrder, ",")+"); coverage = figs 5-7")
		sentences = fs.Int("sentences", 20000, "corpus size")
		scale     = fs.Float64("scale", 1, "world scale")
		seed      = fs.Int64("seed", 11, "corpus seed")
		queries   = fs.Int("queries", 50000, "query-log size for the coverage figures")
		jsonOut   = fs.String("json", "", "also write a machine-readable report to this file ('auto' = BENCH_<timestamp>.json, '-' = stdout)")
		validate  = fs.String("validate-json", "", "validate a previously written -json report and exit")
		version   = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(stdout, "probase-bench")
		return nil
	}
	if *validate != "" {
		if err := validateBenchJSON(*validate); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: valid %s report\n", *validate, benchSchema)
		return nil
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range experimentOrder {
			want[e] = true
		}
	} else {
		known := map[string]bool{}
		for _, e := range experimentOrder {
			known[e] = true
		}
		for _, e := range strings.Split(*exp, ",") {
			e = strings.TrimSpace(e)
			if e == "fig5" || e == "fig6" || e == "fig7" {
				e = "coverage"
			}
			if !known[e] {
				return fmt.Errorf("unknown experiment %q (have: %s)", e, strings.Join(experimentOrder, ","))
			}
			want[e] = true
		}
	}

	start := time.Now()
	setup, err := experiments.NewSetup(experiments.Options{
		Scale: *scale, Sentences: *sentences, Seed: *seed,
	})
	if err != nil {
		return err
	}
	setupSeconds := time.Since(start).Seconds()
	fmt.Fprintf(stdout, "setup: scale=%.1f sentences=%d seed=%d (built in %v)\n\n",
		*scale, *sentences, *seed, time.Since(start).Round(time.Millisecond))

	report := benchReport{
		Schema: benchSchema,
		Build:  obs.Version(),
		Options: benchOptions{
			Scale: *scale, Sentences: *sentences, Seed: *seed, Queries: *queries,
		},
		SetupSeconds: setupSeconds,
	}

	// Each experiment yields both its structured result (for -json) and
	// the rendered text table (always printed, byte-for-byte as before).
	runOne := func(name string, fn func() (any, string, error)) {
		if !want[name] {
			return
		}
		t0 := time.Now()
		result, text, err := fn()
		secs := time.Since(t0).Seconds()
		if err != nil {
			text = name + " failed: " + err.Error()
			report.Experiments = append(report.Experiments,
				experimentEntry{Name: name, Seconds: secs, Error: err.Error()})
		} else {
			report.Experiments = append(report.Experiments,
				experimentEntry{Name: name, Seconds: secs, Result: result})
		}
		fmt.Fprintln(stdout, text)
		fmt.Fprintf(stdout, "[%s: %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	ok := func(fn func() (any, string)) func() (any, string, error) {
		return func() (any, string, error) { r, s := fn(); return r, s, nil }
	}

	runOne("table1", ok(func() (any, string) { return setup.Table1() }))
	runOne("table4", func() (any, string, error) { return setup.Table4() })
	runOne("table5", ok(func() (any, string) { return setup.Table5() }))
	runOne("coverage", ok(func() (any, string) { return setup.Coverage(*queries) }))
	runOne("fig8", ok(func() (any, string) { return setup.Fig8() }))
	runOne("fig9", ok(func() (any, string) { return setup.Fig9() }))
	runOne("fig10", ok(func() (any, string) { return setup.Fig10() }))
	runOne("fig11", ok(func() (any, string) { return setup.Fig11() }))
	runOne("fig12", ok(func() (any, string) { return setup.Fig12() }))
	runOne("search", ok(func() (any, string) { return setup.Search() }))
	runOne("shorttext", ok(func() (any, string) { return setup.ShortText() }))
	runOne("webtables", ok(func() (any, string) { return setup.WebTables() }))
	runOne("baseline", ok(func() (any, string) { return setup.Baseline() }))
	runOne("jaccard", ok(func() (any, string) { return setup.Jaccard() }))
	runOne("mergeorder", ok(func() (any, string) { return setup.MergeOrder() }))
	runOne("plausibility", ok(func() (any, string) { return setup.Plausibility() }))
	runOne("growth", ok(func() (any, string) { return setup.Growth() }))
	runOne("merge", ok(func() (any, string) { return setup.MergeFreebase() }))
	runOne("interpret", ok(func() (any, string) { return setup.InterpretExp() }))
	runOne("extras", ok(func() (any, string) { return setup.Extras() }))
	runOne("parallel", ok(func() (any, string) { return setup.ParallelExp() }))
	runOne("storage", ok(func() (any, string) { return setup.StorageExp() }))
	report.TotalSeconds = time.Since(start).Seconds()

	if *jsonOut != "" {
		path := *jsonOut
		if path == "auto" {
			path = "BENCH_" + time.Now().UTC().Format("20060102T150405Z") + ".json"
		}
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding bench report: %w", err)
		}
		raw = append(raw, '\n')
		if path == "-" {
			_, err = stdout.Write(raw)
		} else {
			err = os.WriteFile(path, raw, 0o644)
		}
		if err != nil {
			return fmt.Errorf("writing bench report: %w", err)
		}
		if path != "-" {
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
	}
	return nil
}
