package taxstats

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/prob"
)

// companyGraph builds the usual small taxonomy plus one orphan node:
//
//	company -> {IBM x50 p.99, Microsoft x40 p.99, Xyz Inc x1 p.5}
//	company -> it company (x20 p.95) -> {Microsoft x30 p.99, IBM x10 p.99}
//	company -> big company (x15 p.9) -> {Microsoft x20 p.95}
//	widget (isolated)
func companyGraph() *graph.Builder {
	g := graph.NewBuilder()
	ids := map[string]graph.NodeID{}
	for _, l := range []string{"company", "it company", "big company", "IBM", "Microsoft", "Xyz Inc", "widget"} {
		ids[l] = g.Intern(l)
	}
	g.AddEdge(ids["company"], ids["IBM"], 50, 0.99)
	g.AddEdge(ids["company"], ids["Microsoft"], 40, 0.99)
	g.AddEdge(ids["company"], ids["Xyz Inc"], 1, 0.5)
	g.AddEdge(ids["company"], ids["it company"], 20, 0.95)
	g.AddEdge(ids["it company"], ids["Microsoft"], 30, 0.99)
	g.AddEdge(ids["it company"], ids["IBM"], 10, 0.99)
	g.AddEdge(ids["company"], ids["big company"], 15, 0.9)
	g.AddEdge(ids["big company"], ids["Microsoft"], 20, 0.95)
	return g
}

// syntheticGraph builds a ~260-node three-layer taxonomy from a fixed
// formula — big enough that the parallel passes actually fan out.
func syntheticGraph() *graph.Builder {
	g := graph.NewBuilder()
	root := g.Intern("root")
	for c := 0; c < 20; c++ {
		concept := g.Intern(fmt.Sprintf("concept-%02d", c))
		g.AddEdge(root, concept, int64(c+1), float64(c%10)/10)
		for i := 0; i < 12; i++ {
			inst := g.Intern(fmt.Sprintf("inst-%02d-%02d", c, i))
			g.AddEdge(concept, inst, int64(i+1), float64((c+i)%11)/10)
			if i%3 == 0 {
				// Shared instances create ambiguity (nonzero entropy).
				other := g.Intern(fmt.Sprintf("inst-%02d-%02d", (c+1)%20, i))
				g.AddEdge(concept, other, 2, 0.8)
			}
		}
	}
	return g
}

func mustTypicality(t *testing.T, g graph.Reader) *prob.Typicality {
	t.Helper()
	ty, err := prob.NewTypicality(g)
	if err != nil {
		t.Fatal(err)
	}
	return ty
}

func TestComputeStructural(t *testing.T) {
	g := companyGraph()
	p, err := Compute(g, mustTypicality(t, g), Options{Workers: 2, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes != 7 || p.Edges != 8 {
		t.Errorf("nodes/edges = %d/%d, want 7/8", p.Nodes, p.Edges)
	}
	if p.Concepts != 3 {
		t.Errorf("concepts = %d, want 3", p.Concepts)
	}
	// The orphan widget is a leaf, so it counts as an instance too.
	if p.Instances != 4 {
		t.Errorf("instances = %d, want 4", p.Instances)
	}
	if p.Roots != 2 { // company + widget
		t.Errorf("roots = %d, want 2", p.Roots)
	}
	if p.Orphans != 1 {
		t.Errorf("orphans = %d, want 1", p.Orphans)
	}
	wantLabel := int64(len("company") + len("it company") + len("big company") +
		len("IBM") + len("Microsoft") + len("Xyz Inc") + len("widget"))
	if p.LabelBytes != wantLabel {
		t.Errorf("label bytes = %d, want %d", p.LabelBytes, wantLabel)
	}
	// Longest path to a leaf: company -> it company -> IBM.
	if p.MaxDepth != 2 {
		t.Errorf("max depth = %d, want 2", p.MaxDepth)
	}
	if want := []int64{4, 2, 1}; len(p.DepthCounts) != 3 ||
		p.DepthCounts[0] != want[0] || p.DepthCounts[1] != want[1] || p.DepthCounts[2] != want[2] {
		t.Errorf("depth counts = %v, want %v", p.DepthCounts, want)
	}
	if p.TopoLevels != 3 {
		t.Errorf("topo levels = %d, want 3", p.TopoLevels)
	}
	if p.OutDegree.Max != 5 || p.InDegree.Max != 3 {
		t.Errorf("degree max out/in = %d/%d, want 5/3", p.OutDegree.Max, p.InDegree.Max)
	}
	// 8 edges over 7 nodes, both directions.
	if math.Abs(p.OutDegree.Mean-8.0/7) > 1e-12 || math.Abs(p.InDegree.Mean-8.0/7) > 1e-12 {
		t.Errorf("degree means = %v/%v, want 8/7", p.OutDegree.Mean, p.InDegree.Mean)
	}
}

func TestComputeTopConcepts(t *testing.T) {
	g := companyGraph()
	p, err := Compute(g, nil, Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TopConcepts) != 2 {
		t.Fatalf("top concepts = %+v, want 2 entries", p.TopConcepts)
	}
	// company has 3 direct instances, it company 2, big company 1.
	if p.TopConcepts[0].Label != "company" || p.TopConcepts[0].Instances != 3 {
		t.Errorf("top concept = %+v, want company/3", p.TopConcepts[0])
	}
	if p.TopConcepts[1].Label != "it company" || p.TopConcepts[1].Instances != 2 {
		t.Errorf("second concept = %+v, want it company/2", p.TopConcepts[1])
	}
	if p.TopConcepts[0].OutDegree != 5 {
		t.Errorf("company out-degree = %d, want 5", p.TopConcepts[0].OutDegree)
	}
}

func TestComputeScoreDists(t *testing.T) {
	g := companyGraph()
	p, err := Compute(g, mustTypicality(t, g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Plausibility.Count != 8 {
		t.Errorf("plausibility count = %d, want 8 (one per edge)", p.Plausibility.Count)
	}
	if p.Plausibility.Min != 0.5 || p.Plausibility.Max != 0.99 {
		t.Errorf("plausibility min/max = %v/%v, want 0.5/0.99", p.Plausibility.Min, p.Plausibility.Max)
	}
	if p.Plausibility.ZeroMass != 0 {
		t.Errorf("plausibility zero mass = %v, want 0", p.Plausibility.ZeroMass)
	}
	// P50 over [.5 .9 .95 .95 .99 .99 .99 .99]: rank ceil(.5*8)=4 -> 0.95.
	if p.Plausibility.P50 != 0.95 {
		t.Errorf("plausibility p50 = %v, want 0.95", p.Plausibility.P50)
	}
	// All four instances were profiled; the orphan contributes no
	// typicality scores and is excluded from the entropy population.
	if p.SampledInstances != 4 {
		t.Errorf("sampled instances = %d, want 4", p.SampledInstances)
	}
	if p.Entropy.Count != 3 {
		t.Errorf("entropy count = %d, want 3 (orphan excluded)", p.Entropy.Count)
	}
	// Every T(x|i) vector is normalised, so scores lie in (0, 1].
	if p.Typicality.Count == 0 || p.Typicality.Min <= 0 || p.Typicality.Max > 1 {
		t.Errorf("typicality dist out of range: %+v", p.Typicality)
	}
	// Xyz Inc belongs to exactly one concept -> at least one zero-entropy
	// instance; IBM/Microsoft belong to several -> a positive max.
	if p.Entropy.Min != 0 || p.Entropy.Max <= 0 {
		t.Errorf("entropy min/max = %v/%v, want 0/positive", p.Entropy.Min, p.Entropy.Max)
	}
}

func TestComputeNilTypicality(t *testing.T) {
	g := companyGraph()
	p, err := Compute(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Typicality.Count != 0 || p.Entropy.Count != 0 || p.SampledInstances != 0 {
		t.Errorf("graph-only profile has score passes: %+v", p)
	}
	if p.Plausibility.Count != 8 {
		t.Errorf("plausibility still profiled without typ: %d", p.Plausibility.Count)
	}
}

func TestComputeSampleCap(t *testing.T) {
	g := syntheticGraph()
	full, err := Compute(g, mustTypicality(t, g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Compute(g, mustTypicality(t, g), Options{SampleInstances: 10})
	if err != nil {
		t.Fatal(err)
	}
	if full.SampledInstances != full.Instances {
		t.Errorf("uncapped sampled = %d, want %d", full.SampledInstances, full.Instances)
	}
	if capped.SampledInstances != 10 {
		t.Errorf("capped sampled = %d, want 10", capped.SampledInstances)
	}
	if capped.Typicality.Count >= full.Typicality.Count {
		t.Errorf("cap did not shrink the typicality population: %d vs %d",
			capped.Typicality.Count, full.Typicality.Count)
	}
}

// TestComputeDeterministic is the package's core contract: the profile
// is byte-identical at workers=1 and workers=8.
func TestComputeDeterministic(t *testing.T) {
	g := syntheticGraph()
	ty := mustTypicality(t, g)
	p1, err := Compute(g, ty, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p8, err := Compute(g, ty, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(p1)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.Marshal(p8)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j8) {
		t.Errorf("profiles differ between workers=1 and workers=8:\n%s\n%s", j1, j8)
	}
}

// TestComputeBackendIdentical pins that profiling the Builder and its
// Frozen view yields the same profile (shared fingerprint included).
func TestComputeBackendIdentical(t *testing.T) {
	b := syntheticGraph()
	f := b.Freeze()
	pb, err := Compute(b, mustTypicality(t, b), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Compute(f, mustTypicality(t, f), Options{})
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.Marshal(pb)
	jf, _ := json.Marshal(pf)
	if string(jb) != string(jf) {
		t.Errorf("profiles differ between Builder and Frozen:\n%s\n%s", jb, jf)
	}
}

func TestFingerprint(t *testing.T) {
	b := companyGraph()
	fp := Fingerprint(b)
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex digits", fp)
	}
	if got := Fingerprint(b.Freeze()); got != fp {
		t.Errorf("Frozen fingerprint %q != Builder %q", got, fp)
	}
	if got := Fingerprint(graph.NewBuilderFrom(b)); got != fp {
		t.Errorf("thawed fingerprint %q != original %q", got, fp)
	}
	// Any content change moves the digest: a new count...
	c1 := graph.NewBuilderFrom(b)
	c1.AddEdge(c1.Lookup("company"), c1.Lookup("IBM"), 1, 0)
	if Fingerprint(c1) == fp {
		t.Error("fingerprint unchanged after count bump")
	}
	// ...a new plausibility...
	c2 := graph.NewBuilderFrom(b)
	c2.AddEdge(c2.Lookup("company"), c2.Lookup("IBM"), 0, 0.42)
	if Fingerprint(c2) == fp {
		t.Error("fingerprint unchanged after plausibility change")
	}
	// ...or a new node.
	c3 := graph.NewBuilderFrom(b)
	c3.Intern("startup")
	if Fingerprint(c3) == fp {
		t.Error("fingerprint unchanged after node addition")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 5}, {0.90, 9}, {0.99, 10}, {0.10, 1}, {1.0, 10},
	}
	for _, c := range cases {
		if got := quantile(sorted, c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(empty) = %v, want 0", got)
	}
}

func TestScoreDistMasses(t *testing.T) {
	d := newScoreDist([]float64{0, 0, 0.5, 1, 1 - 1e-12}, unitBounds())
	if d.ZeroMass != 0.4 {
		t.Errorf("zero mass = %v, want 0.4", d.ZeroMass)
	}
	// Both the exact 1 and the saturated 1-1e-12 count as mass at one.
	if d.OneMass != 0.4 {
		t.Errorf("one mass = %v, want 0.4", d.OneMass)
	}
	if d.Count != 5 || d.Min != 0 || d.Max != 1 {
		t.Errorf("summary = %+v", d)
	}
}
