// Package obs is the shared observability layer: hand-rolled Prometheus
// metrics (no external deps), structured logging helpers on log/slog,
// HTTP middleware carrying a per-request ID and a sampled slow-query
// log, pipeline-stage reporting for the build pipeline, build-version
// introspection, and opt-in pprof wiring.
//
// The package intentionally depends only on the standard library so
// every layer of the repository (extraction, taxonomy, prob, server,
// the binaries) can import it without cycles.
//
// # Metrics
//
// A Registry holds metric families (counter, gauge, histogram) keyed by
// name, each with zero or more label sets. Rendering follows the
// Prometheus text exposition format version 0.0.4, so the output of
// Registry.WritePrometheus is directly scrapeable:
//
//	reg := obs.NewRegistry()
//	hits := reg.Counter("probase_cache_hits_total", "Cache hits.", obs.L("endpoint", "instances"))
//	lat := reg.Histogram("probase_http_request_duration_seconds", "Latency.", obs.DefBuckets)
//	hits.Inc()
//	lat.ObserveDuration(elapsed)
//	mux.Handle("/metrics", reg.Handler())
//
// # Pipeline stages
//
// StageReporter receives stage start/end events, named counters, and
// per-round counter snapshots from the build pipeline (Algorithm 1
// extraction rounds, Algorithm 2 merge stages, the Algorithm 3 DP).
// StatsCollector accumulates them into a machine-readable report;
// ProgressReporter renders them as live human progress lines with an
// ETA.
package obs
