package taxstats

import "repro/internal/obs"

// Register exposes a profile provider as probase_snapshot_* gauges.
// Every gauge evaluates get() at scrape time, so swapping the profile
// behind the provider (snapshot hot-swap, core.Probase.Rebind) is all
// it takes to refresh the whole series — no re-registration. get may
// return nil before the first profile lands; all gauges read 0 then.
//
// The node and edge counts are deliberately not registered here: the
// server already exposes probase_snapshot_nodes/_edges directly off the
// live graph.Reader, and double-registering the families would panic.
func Register(reg *obs.Registry, get func() *Profile) {
	p := func(f func(p *Profile) float64) func() float64 {
		return func() float64 {
			if pr := get(); pr != nil {
				return f(pr)
			}
			return 0
		}
	}
	reg.GaugeFunc("probase_snapshot_concepts",
		"Concept nodes in the served taxonomy snapshot.",
		p(func(pr *Profile) float64 { return float64(pr.Concepts) }))
	reg.GaugeFunc("probase_snapshot_instances",
		"Instance nodes in the served taxonomy snapshot.",
		p(func(pr *Profile) float64 { return float64(pr.Instances) }))
	reg.GaugeFunc("probase_snapshot_roots",
		"Root concepts (no parents) in the served snapshot.",
		p(func(pr *Profile) float64 { return float64(pr.Roots) }))
	reg.GaugeFunc("probase_snapshot_orphans",
		"Isolated nodes (no parents, no children) in the served snapshot.",
		p(func(pr *Profile) float64 { return float64(pr.Orphans) }))
	reg.GaugeFunc("probase_snapshot_label_bytes",
		"Total bytes of node labels in the served snapshot.",
		p(func(pr *Profile) float64 { return float64(pr.LabelBytes) }))
	reg.GaugeFunc("probase_snapshot_max_depth",
		"Deepest concept level in the served snapshot.",
		p(func(pr *Profile) float64 { return float64(pr.MaxDepth) }))
	reg.GaugeFunc("probase_snapshot_topo_levels",
		"Topological levels in the served snapshot's DAG.",
		p(func(pr *Profile) float64 { return float64(pr.TopoLevels) }))

	dists := []struct {
		name string
		sel  func(pr *Profile) *ScoreDist
		help string
	}{
		{"plausibility", func(pr *Profile) *ScoreDist { return &pr.Plausibility },
			"edge plausibility P(x,y)"},
		{"typicality", func(pr *Profile) *ScoreDist { return &pr.Typicality },
			"abstraction typicality T(x|i)"},
		{"entropy", func(pr *Profile) *ScoreDist { return &pr.Entropy },
			"per-instance ambiguity entropy (bits)"},
	}
	stats := []struct {
		name string
		sel  func(d *ScoreDist) float64
	}{
		{"count", func(d *ScoreDist) float64 { return float64(d.Count) }},
		{"mean", func(d *ScoreDist) float64 { return d.Mean }},
		{"p50", func(d *ScoreDist) float64 { return d.P50 }},
		{"p90", func(d *ScoreDist) float64 { return d.P90 }},
		{"p99", func(d *ScoreDist) float64 { return d.P99 }},
		{"zero_mass", func(d *ScoreDist) float64 { return d.ZeroMass }},
		{"one_mass", func(d *ScoreDist) float64 { return d.OneMass }},
	}
	for _, dist := range dists {
		for _, st := range stats {
			dist, st := dist, st
			reg.GaugeFunc("probase_snapshot_score",
				"Score-distribution summary statistics of the served snapshot, keyed by dist ("+
					"plausibility, typicality, entropy) and stat.",
				p(func(pr *Profile) float64 { return st.sel(dist.sel(pr)) }),
				obs.L("dist", dist.name), obs.L("stat", st.name))
		}
	}
}
