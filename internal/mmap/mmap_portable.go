//go:build !((linux || darwin) && !probase_nommap)

package mmap

import (
	"io"
	"os"
)

// openFile is the portable fallback: read the file into one heap
// allocation. The Mapping API and lifetime contract are identical; the
// pages simply live on the Go heap, so the zero-copy and shared-page
// benefits do not apply. Selected on platforms without the mmap wrapper
// or when built with -tags probase_nommap.
func openFile(f *os.File, size int) (*Mapping, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, err
	}
	return &Mapping{data: data, mapped: false}, nil
}

func unmap(data []byte) error { return nil }
