package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/kb"
	"repro/internal/prob"
)

// Full snapshot format: "PBFL", then two length-prefixed sections — the
// graph snapshot and the Γ snapshot (each carries its own checksum).
const fullMagic = "PBFL"

// ErrBadFullSnapshot reports a structurally invalid full snapshot.
var ErrBadFullSnapshot = errors.New("core: bad full snapshot")

// SaveFull writes the taxonomy graph *and* Γ (counts, co-occurrence,
// evidence), so a reload supports evidence-based plausibility, not just
// the stored edge values.
func (p *Probase) SaveFull(w io.Writer) error {
	return p.SaveFullVersion(w, SnapshotVersionDefault)
}

// SaveFullVersion is SaveFull with an explicit graph-section format
// version (1 = "PBGR", 2 = "PBC2"); LoadFull reads both.
func (p *Probase) SaveFullVersion(w io.Writer, version int) error {
	if p.Store == nil {
		return errors.New("core: no Γ to save; use Save for graph-only snapshots")
	}
	var gbuf, kbuf bytes.Buffer
	if err := graph.WriteSnapshot(&gbuf, p.Graph, version); err != nil {
		return err
	}
	if err := p.Store.Save(&kbuf); err != nil {
		return err
	}
	if _, err := w.Write([]byte(fullMagic)); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, section := range []*bytes.Buffer{&gbuf, &kbuf} {
		n := binary.PutUvarint(lenBuf[:], uint64(section.Len()))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := w.Write(section.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// LoadFull reads a snapshot written by SaveFull. The evidence model is
// rebuilt untrained (training needs the oracle); plausibility queries use
// the stored evidence through the noisy-or with uninformative per-
// evidence probabilities, falling back to stored edge values and
// reachability.
func LoadFull(r io.Reader) (*Probase, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFullSnapshot, err)
	}
	if string(magic) != fullMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFullSnapshot, magic)
	}
	readSection := func() ([]byte, error) {
		br := byteReaderAdapter{r}
		n, err := binary.ReadUvarint(br)
		if err != nil || n > 1<<32 {
			return nil, fmt.Errorf("%w: section length", ErrBadFullSnapshot)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: section body: %v", ErrBadFullSnapshot, err)
		}
		return buf, nil
	}
	gsec, err := readSection()
	if err != nil {
		return nil, err
	}
	ksec, err := readSection()
	if err != nil {
		return nil, err
	}
	g, err := graph.LoadFrozen(bytes.NewReader(gsec))
	if err != nil {
		return nil, err
	}
	store, err := kb.Load(bytes.NewReader(ksec))
	if err != nil {
		return nil, err
	}
	typ, err := prob.NewTypicality(g)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot is not a DAG: %w", err)
	}
	return &Probase{
		Store:  store,
		Graph:  g,
		Senses: sensesFromGraph(g),
		typ:    typ,
		model:  prob.Train(store, func(x, y string) (bool, bool) { return false, false }),
	}, nil
}

// byteReaderAdapter adds ReadByte on top of an io.Reader for
// binary.ReadUvarint without buffering past the varint.
type byteReaderAdapter struct{ r io.Reader }

func (b byteReaderAdapter) ReadByte() (byte, error) {
	var buf [1]byte
	_, err := io.ReadFull(b.r, buf[:])
	return buf[0], err
}
