// Package hdr holds the dependency-free HDR-style log-linear histogram
// shared by the measurement layers: internal/loadgen records
// client-side latencies into it, and internal/window aggregates
// server-side per-endpoint latencies into one Hist per time bucket.
// It lives in its own package so the serving stack never has to import
// the load generator (and its synthetic-corpus dependencies) just to
// reuse the bucketing.
package hdr

import (
	"fmt"
	"math/bits"
)

// Hist is a dependency-free HDR-style log-linear histogram of
// non-negative int64 values (latencies in nanoseconds, in this
// module's use). The value axis is split into octaves [2^e, 2^(e+1));
// each octave holds 2^(subBits-1) equal-width sub-buckets, and values
// below 2^subBits are recorded exactly in unit-width buckets. Bucket
// width therefore tracks magnitude, which gives the defining HDR
// guarantee:
//
//	quantiles are reported as bucket midpoints, and the midpoint of
//	the bucket holding a value v differs from v by at most
//	w/2 = 2^(e-subBits) ≤ v·2^-subBits — a relative error bounded by
//	2^-subBits at every scale.
//
// With the default subBits=7 that is ≤ 0.79% from 1ns to ~4.6 hours,
// over 3,712 buckets (~29KB). Hist is not safe for concurrent use;
// owners keep one per goroutine (loadgen workers) or guard it with the
// lock that already covers the surrounding aggregate (window buckets)
// and merge under that discipline.
//
// The coordinated-omission story: RecordCorrected backfills the
// samples a stalled closed-loop client never issued (one synthetic
// sample per missed expected interval), the classic HDR correction
// for the "a 10s stall records one 10s sample instead of a thousand
// slow ones" bias.
type Hist struct {
	subBits uint
	counts  []int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// DefaultSubBits gives a ≤ 2^-7 ≈ 0.79% relative quantile error.
const DefaultSubBits = 7

// maxExp is the largest representable octave exponent: values at or
// above 2^62 saturate into the top bucket (and Max still reports them
// exactly).
const maxExp = 62

// New builds a histogram with the given sub-bucket resolution;
// subBits outside [1, 20] falls back to DefaultSubBits. The relative
// quantile-error bound is 2^-subBits.
func New(subBits int) *Hist {
	if subBits < 1 || subBits > 20 {
		subBits = DefaultSubBits
	}
	sbc := 1 << subBits
	// One unit-width region plus (maxExp - subBits + 1) octaves of
	// sbc/2 sub-buckets each.
	n := sbc + (maxExp-subBits+1)*sbc/2
	return &Hist{
		subBits: uint(subBits),
		counts:  make([]int64, n),
		min:     int64(1) << 62,
	}
}

// RelativeError returns the documented worst-case relative quantile
// error, 2^-subBits.
func (h *Hist) RelativeError() float64 { return 1 / float64(int64(1)<<h.subBits) }

// index maps a value to its bucket. Negative values clamp to 0,
// values ≥ 2^62 to the last bucket.
func (h *Hist) index(v int64) int {
	if v < 0 {
		v = 0
	}
	sbc := int64(1) << h.subBits
	if v < sbc {
		return int(v)
	}
	e := uint(bits.Len64(uint64(v))) - 1 // 2^e <= v < 2^(e+1)
	if e > maxExp {
		return len(h.counts) - 1
	}
	shift := e - h.subBits + 1 // sub-bucket width 2^shift
	return int(sbc) + int(e-h.subBits)*int(sbc)/2 + int((v-int64(1)<<e)>>shift)
}

// valueAt returns the representative (midpoint) value of bucket i.
func (h *Hist) valueAt(i int) int64 {
	sbc := 1 << h.subBits
	if i < sbc {
		return int64(i) // unit-width: exact
	}
	octave := (i - sbc) / (sbc / 2)
	sub := (i - sbc) % (sbc / 2)
	e := h.subBits + uint(octave)
	width := int64(1) << (e - h.subBits + 1)
	lo := int64(1)<<e + int64(sub)*width
	return lo + width/2
}

// Record adds one sample.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[h.index(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordCorrected adds one sample and, when v exceeds the expected
// inter-sample interval, backfills the samples a coordinated-omission
// stall suppressed: v-interval, v-2·interval, ... down to interval.
// A non-positive interval degrades to plain Record.
func (h *Hist) RecordCorrected(v, expectedInterval int64) {
	h.Record(v)
	if expectedInterval <= 0 {
		return
	}
	for missed := v - expectedInterval; missed >= expectedInterval; missed -= expectedInterval {
		h.Record(missed)
	}
}

// Count returns the number of recorded samples (including corrected
// backfill samples).
func (h *Hist) Count() int64 { return h.count }

// Min returns the smallest recorded sample, exactly (0 when empty).
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, exactly (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Mean returns the arithmetic mean of the recorded samples, exactly.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the q-quantile (q in [0, 1]) as the midpoint of the
// bucket holding the sample of rank ceil(q·count), clamped to the
// exact observed [Min, Max]. The result is within RelativeError of the
// exact rank-order statistic.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := h.valueAt(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds other into h. The result is identical to a histogram
// that recorded both sample streams. Histograms must share a
// resolution.
func (h *Hist) Merge(other *Hist) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if other.subBits != h.subBits {
		return fmt.Errorf("merging histograms with subBits %d and %d", other.subBits, h.subBits)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// Reset zeroes the histogram in place, keeping the bucket allocation —
// the recycling path for ring buffers that reuse buckets as time
// windows rotate.
func (h *Hist) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = int64(1) << 62
	h.max = 0
}

// SubBits returns the configured resolution exponent.
func (h *Hist) SubBits() int { return int(h.subBits) }

// Clone returns an independent copy (for lock-scoped snapshots).
func (h *Hist) Clone() *Hist {
	c := *h
	c.counts = append([]int64(nil), h.counts...)
	return &c
}

// Equal reports whether two histograms hold identical distributions —
// same resolution, bucket counts, totals, and extrema.
func (h *Hist) Equal(other *Hist) bool {
	if h.subBits != other.subBits || h.count != other.count ||
		h.sum != other.sum || h.Min() != other.Min() || h.max != other.max {
		return false
	}
	for i, c := range h.counts {
		if other.counts[i] != c {
			return false
		}
	}
	return true
}
