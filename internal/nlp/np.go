package nlp

import (
	"strings"
	"unicode"
)

// stopWords are determiners, prepositions and auxiliaries that terminate a
// noun phrase when scanning leftwards from a head noun.
var stopWords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "in": true, "on": true,
	"at": true, "for": true, "to": true, "with": true, "by": true,
	"from": true, "is": true, "are": true, "was": true, "were": true,
	"be": true, "been": true, "and": true, "or": true, "but": true,
	"as": true, "than": true, "that": true, "this": true, "these": true,
	"those": true, "many": true, "some": true, "all": true, "most": true,
	"other": true, "such": true, "including": true, "especially": true,
	"like": true, "about": true, "into": true, "over": true, "under": true,
	"we": true, "they": true, "it": true, "he": true, "she": true,
	"his": true, "her": true, "its": true, "their": true, "our": true,
	"your": true, "my": true, "there": true, "here": true, "not": true,
	"no": true, "very": true, "so": true, "if": true, "when": true,
	"where": true, "which": true, "who": true, "how": true, "what": true,
	"do": true, "does": true, "did": true, "can": true, "could": true,
	"will": true, "would": true, "should": true, "may": true, "might": true,
	"have": true, "has": true, "had": true,
}

// verbBoundaries are frequent verbs that terminate a noun phrase in
// running text. They are kept apart from stopWords because verbs never
// occur *inside* a multi-word name ("Gone with the Wind" contains stop
// words but no verb), which lets TrimTrailingClause cut trailing prose
// without destroying such names.
var verbBoundaries = map[string]bool{
	"live": true, "exist": true, "thrive": true, "occur": true,
	"happen": true, "remain": true, "grow": true, "grew": true,
	"make": true, "made": true, "become": true, "became": true,
	"come": true, "came": true, "go": true, "went": true,
	"offer": true, "provide": true, "serve": true, "operate": true,
	"compete": true, "perform": true, "attract": true, "appear": true,
	"covers": true, "mentions": true, "discusses": true, "describes": true,
	"knows": true, "says": true, "say": true, "see": true, "sees": true,
	"visit": true, "matter": true, "matters": true, "belong": true,
}

// IsStopWord reports whether w (any case) is a noun-phrase boundary word.
func IsStopWord(w string) bool {
	lw := strings.ToLower(w)
	return stopWords[lw] || verbBoundaries[lw]
}

// TrimTrailingClause cuts a list element at the first verb boundary,
// removing trailing prose that the comma structure could not separate
// ("cats exist in many regions" -> "cats") while preserving names that
// contain mere stop words ("Gone with the Wind").
func TrimTrailingClause(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		if verbBoundaries[strings.ToLower(f)] {
			return strings.Join(fields[:i], " ")
		}
	}
	return s
}

// TrailingNounPhrase extracts the longest noun phrase ending at the last
// word of the fragment, scanning leftwards until a stop word or punctuation
// boundary. Used to find the super-concept NP immediately before pattern
// keywords ("... in tropical countries such as" -> "tropical countries").
func TrailingNounPhrase(fragment string) string {
	words := strings.Fields(fragment)
	i := len(words)
	for i > 0 {
		raw := words[i-1]
		w := strings.Trim(raw, ",.;:!?\"()")
		if w == "" || IsStopWord(w) {
			break
		}
		// A word carrying trailing punctuation ends the previous clause:
		// include nothing beyond it ("In recent years, domestic animals"
		// must yield "domestic animals").
		if i < len(words) && strings.IndexAny(raw, ",.;:!?") >= 0 {
			break
		}
		words[i-1] = w
		i--
	}
	if i == len(words) {
		return ""
	}
	return strings.Join(words[i:], " ")
}

// LeadingNounPhrase extracts the longest noun phrase starting at the first
// word of the fragment, scanning rightwards until a stop word.
func LeadingNounPhrase(fragment string) string {
	words := strings.Fields(fragment)
	i := 0
	for i < len(words) {
		w := strings.Trim(words[i], ",.;:!?\"()")
		if w == "" || IsStopWord(w) {
			break
		}
		words[i] = w
		i++
	}
	return strings.Join(words[:i], " ")
}

// IsProperNounPhrase reports whether every content word of the phrase is
// capitalised — the proper-noun heuristic used by the syntactic baseline
// (Section 2.1: state-of-the-art systems keep only proper-noun instances).
func IsProperNounPhrase(p string) bool {
	fields := strings.Fields(p)
	if len(fields) == 0 {
		return false
	}
	seen := false
	for _, f := range fields {
		lf := strings.ToLower(f)
		if lf == "and" || lf == "or" || lf == "of" || lf == "the" || lf == "de" {
			continue // connectives inside names: "Proctor and Gamble"
		}
		r := []rune(f)[0]
		if !unicode.IsUpper(r) && !unicode.IsDigit(r) {
			return false
		}
		seen = true
	}
	return seen
}

// HeadNoun returns the final word of a noun phrase, lower-cased:
// the head of "industrialized countries" is "countries".
func HeadNoun(p string) string {
	fields := strings.Fields(strings.ToLower(p))
	if len(fields) == 0 {
		return ""
	}
	return fields[len(fields)-1]
}

// StripModifier removes the leading modifier word of a noun phrase:
// "domestic animals" -> "animals". It returns the phrase unchanged when it
// is a single word. Used by super-concept detection (Section 2.3.2) to fall
// back to the more general concept when the modified one is not yet in Γ.
func StripModifier(p string) string {
	fields := strings.Fields(p)
	if len(fields) <= 1 {
		return p
	}
	return strings.Join(fields[1:], " ")
}
