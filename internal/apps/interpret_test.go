package apps

import (
	"strings"
	"testing"
)

func TestInterpretQueryFindsGroundedPairs(t *testing.T) {
	pb, w, c := fixture(t)
	idx := NewSentenceIndex(c.Sentences)
	pairs := InterpretQuery(pb, idx, "companies", "countries", 15, 10)
	if len(pairs) == 0 {
		t.Fatal("no interpretations")
	}
	grounded := 0
	for _, p := range pairs {
		if p.Pages <= 0 {
			t.Fatalf("pair without co-occurrence returned: %+v", p)
		}
		if w.Home(p.A) == p.B {
			grounded++
		}
	}
	if grounded == 0 {
		t.Errorf("no returned pair matches the ground-truth relation: %+v", pairs)
	}
	// Ranking is sorted by score.
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Score > pairs[i-1].Score {
			t.Error("pairs not sorted")
		}
	}
}

func TestInterpretQueryUnknownConcept(t *testing.T) {
	pb, _, c := fixture(t)
	idx := NewSentenceIndex(c.Sentences)
	if pairs := InterpretQuery(pb, idx, "no such things", "countries", 10, 5); len(pairs) != 0 {
		t.Errorf("unknown concept interpreted: %v", pairs)
	}
}

func TestEvaluateInterpretation(t *testing.T) {
	pb, w, c := fixture(t)
	idx := NewSentenceIndex(c.Sentences)
	rep := EvaluateInterpretation(pb, idx, w,
		[]string{"companies", "IT companies"},
		[]string{"countries", "european countries"}, 5)
	if rep.Queries != 4 {
		t.Fatalf("queries = %d", rep.Queries)
	}
	if rep.Pairs == 0 {
		t.Fatal("no pairs evaluated")
	}
	t.Logf("interpretation precision = %.2f over %d pairs", rep.Precision(), rep.Pairs)
	if rep.Precision() < 0.5 {
		t.Errorf("interpretation precision %.2f too low", rep.Precision())
	}
}

func TestFirstToken(t *testing.T) {
	if firstToken("New York") != "new" || firstToken("  IBM") != "ibm" || firstToken("") != "" {
		t.Error("firstToken wrong")
	}
}

func TestBasedInSentencesExist(t *testing.T) {
	_, _, c := fixture(t)
	n := 0
	for _, s := range c.Sentences {
		if strings.Contains(s.Text, "is based in") || strings.Contains(s.Text, "is headquartered in") {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no location sentences in the corpus")
	}
}
