package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// StageReporter receives pipeline telemetry from the build stages:
// Algorithm 1's extraction rounds, Algorithm 2's merge passes, and the
// Algorithm 3 reachability DP. Implementations must be safe for
// concurrent use; the pipeline reports from its single-threaded reduce
// steps, but nothing in the contract forbids parallel reporters.
//
// Stage names are dotted paths ("extraction", "taxonomy.horizontal",
// "prob.algorithm3"); counter names are snake_case. By convention every
// stage that fans out over the internal/parallel pool reports its
// resolved pool size once as the counter "workers", so stats.json and
// the Prometheus counters record the parallelism each stage actually
// ran with (workers=1 means the stage executed serially).
type StageReporter interface {
	// StageStart marks the beginning of a named stage.
	StageStart(stage string)
	// StageEnd marks stage completion with its wall time.
	StageEnd(stage string, elapsed time.Duration)
	// Count adds delta to one of the stage's named counters.
	Count(stage, counter string, delta int64)
	// Round reports one iteration of an iterative stage (round is
	// 1-based) with the round's counters and wall time.
	Round(stage string, round int, counters map[string]int64, elapsed time.Duration)
}

// NopReporter discards all telemetry.
type NopReporter struct{}

func (NopReporter) StageStart(string)                                  {}
func (NopReporter) StageEnd(string, time.Duration)                     {}
func (NopReporter) Count(string, string, int64)                        {}
func (NopReporter) Round(string, int, map[string]int64, time.Duration) {}

// ReporterOrNop substitutes a NopReporter for nil, so pipeline code
// can call the reporter unconditionally.
func ReporterOrNop(r StageReporter) StageReporter {
	if r == nil {
		return NopReporter{}
	}
	return r
}

// MultiReporter fans every event out to each member.
type MultiReporter []StageReporter

func (m MultiReporter) StageStart(stage string) {
	for _, r := range m {
		r.StageStart(stage)
	}
}

func (m MultiReporter) StageEnd(stage string, elapsed time.Duration) {
	for _, r := range m {
		r.StageEnd(stage, elapsed)
	}
}

func (m MultiReporter) Count(stage, counter string, delta int64) {
	for _, r := range m {
		r.Count(stage, counter, delta)
	}
}

func (m MultiReporter) Round(stage string, round int, counters map[string]int64, elapsed time.Duration) {
	for _, r := range m {
		r.Round(stage, round, counters, elapsed)
	}
}

// RoundRecord is one iteration of an iterative stage in a StatsReport.
type RoundRecord struct {
	Round    int              `json:"round"`
	Seconds  float64          `json:"seconds"`
	Counters map[string]int64 `json:"counters"`
}

// StageStats aggregates one stage for the machine-readable report.
type StageStats struct {
	Name     string           `json:"name"`
	Seconds  float64          `json:"seconds"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Rounds   []RoundRecord    `json:"rounds,omitempty"`
}

// StatsCollector accumulates stage telemetry into a report, preserving
// the order in which stages first appeared. Safe for concurrent use.
type StatsCollector struct {
	mu     sync.Mutex
	stages map[string]*StageStats
	order  []string
}

// NewStatsCollector returns an empty collector.
func NewStatsCollector() *StatsCollector {
	return &StatsCollector{stages: make(map[string]*StageStats)}
}

func (c *StatsCollector) stage(name string) *StageStats {
	s, ok := c.stages[name]
	if !ok {
		s = &StageStats{Name: name}
		c.stages[name] = s
		c.order = append(c.order, name)
	}
	return s
}

func (c *StatsCollector) StageStart(stage string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stage(stage)
}

func (c *StatsCollector) StageEnd(stage string, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stage(stage).Seconds = elapsed.Seconds()
}

func (c *StatsCollector) Count(stage, counter string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stage(stage)
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	s.Counters[counter] += delta
}

func (c *StatsCollector) Round(stage string, round int, counters map[string]int64, elapsed time.Duration) {
	cp := make(map[string]int64, len(counters))
	for k, v := range counters {
		cp[k] = v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stage(stage)
	s.Rounds = append(s.Rounds, RoundRecord{Round: round, Seconds: elapsed.Seconds(), Counters: cp})
}

// Stages returns a deep copy of the accumulated stages in first-seen
// order, ready for JSON encoding.
func (c *StatsCollector) Stages() []StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StageStats, 0, len(c.order))
	for _, name := range c.order {
		s := c.stages[name]
		cp := StageStats{Name: s.Name, Seconds: s.Seconds}
		if s.Counters != nil {
			cp.Counters = make(map[string]int64, len(s.Counters))
			for k, v := range s.Counters {
				cp.Counters[k] = v
			}
		}
		cp.Rounds = append(cp.Rounds, s.Rounds...)
		out = append(out, cp)
	}
	return out
}

// ProgressReporter renders stage telemetry as human progress lines,
// one per round and one per completed stage. For iterative stages it
// estimates an ETA from the observed resolution rate, using the
// pipeline's "sentences_resolved" / "sentences_pending" counters.
type ProgressReporter struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	// per-stage round accumulators for the ETA estimate
	elapsed  map[string]time.Duration
	resolved map[string]int64
}

// NewProgressReporter writes progress lines to w, each prefixed with
// "<prefix>: ".
func NewProgressReporter(w io.Writer, prefix string) *ProgressReporter {
	return &ProgressReporter{
		w:        w,
		prefix:   prefix,
		elapsed:  make(map[string]time.Duration),
		resolved: make(map[string]int64),
	}
}

func (p *ProgressReporter) StageStart(stage string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "%s: stage %s started\n", p.prefix, stage)
}

func (p *ProgressReporter) StageEnd(stage string, elapsed time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "%s: stage %s done in %v\n", p.prefix, stage, elapsed.Round(time.Millisecond))
}

func (p *ProgressReporter) Count(string, string, int64) {}

func (p *ProgressReporter) Round(stage string, round int, counters map[string]int64, elapsed time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.elapsed[stage] += elapsed
	p.resolved[stage] += counters["sentences_resolved"]

	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	line := fmt.Sprintf("%s: %s round %d (%v):", p.prefix, stage, round, elapsed.Round(time.Millisecond))
	for _, k := range keys {
		line += fmt.Sprintf(" %s=%d", k, counters[k])
	}
	// Linear ETA from the cumulative resolution rate; rough, but enough
	// to tell a 10-second build from a 10-minute one.
	if pending, ok := counters["sentences_pending"]; ok && pending > 0 && p.resolved[stage] > 0 {
		rate := p.elapsed[stage].Seconds() / float64(p.resolved[stage])
		eta := time.Duration(rate * float64(pending) * float64(time.Second))
		line += fmt.Sprintf(" eta~%v", eta.Round(10*time.Millisecond))
	}
	fmt.Fprintln(p.w, line)
}
