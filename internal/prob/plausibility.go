package prob

import (
	"math"

	"repro/internal/kb"
)

// EvidenceFeatures maps one extraction evidence record and its pair's
// aggregate statistics to the discrete feature vector of Section 4.1:
// the Hearst pattern used, the PageRank bucket of the source page, the
// number of sub-concepts in the sentence, the position of y, and the
// log-bucketed corpus frequencies of x as a super-concept and y as a
// sub-concept.
func EvidenceFeatures(ev kb.Evidence, superFreq, subFreq int64) []Feature {
	return []Feature{
		{Name: "pattern", Value: ev.Pattern},
		{Name: "pagerank", Value: bucketScore(ev.PageScore)},
		{Name: "listlen", Value: clampInt(ev.ListLen, 1, 6)},
		{Name: "pos", Value: clampInt(ev.Pos, 1, 4)},
		{Name: "superfreq", Value: logBucket(superFreq)},
		{Name: "subfreq", Value: logBucket(subFreq)},
	}
}

func bucketScore(s float64) int {
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return int(s * 10)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func logBucket(n int64) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return clampInt(b, 0, 16)
}

// Oracle labels a pair for training: ok=false when the oracle does not
// know both terms (the pair is skipped, exactly as the paper skips pairs
// not fully covered by WordNet).
type Oracle func(x, y string) (isTrue, ok bool)

// Model scores evidence and computes plausibilities.
type Model struct {
	nb    *NaiveBayes
	store *kb.Store
}

// Train builds the plausibility model from Γ, labelling training pairs
// with the oracle (the paper uses WordNet: positive when a path connects
// x and y, negative when both are known but unconnected — Section 4.1).
func Train(store *kb.Store, oracle Oracle) *Model {
	m := &Model{nb: NewNaiveBayes(), store: store}
	store.ForEachPair(func(x, y string, n int64) {
		isTrue, known := oracle(x, y)
		if !known {
			return
		}
		sf, yf := store.SuperTotal(x), store.SubMass(y)
		for _, ev := range store.Evidence(x, y) {
			m.nb.Train(EvidenceFeatures(ev, sf, yf), isTrue)
		}
	})
	return m
}

// EvidenceProb returns p_i for one evidence record (Eq. 2), clamped away
// from 0 and 1 so a single sentence can never saturate the noisy-or.
func (m *Model) EvidenceProb(x, y string, ev kb.Evidence) float64 {
	p := m.nb.Prob(EvidenceFeatures(ev, m.store.SuperTotal(x), m.store.SubMass(y)))
	return clampProb(p)
}

func clampProb(p float64) float64 {
	const lo, hi = 0.02, 0.95
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}

// Plausibility returns P(x, y) = 1 - Π (1 - p_i), the noisy-or of Eq. 1.
// Negative evidence contributes its factor as p_i instead of 1 - p_i.
// Pairs without recorded evidence fall back to a count-based estimate so
// that capped evidence lists stay meaningful.
func (m *Model) Plausibility(x, y string) float64 {
	evs := m.store.Evidence(x, y)
	if len(evs) == 0 {
		n := m.store.Count(x, y)
		if n == 0 {
			return 0
		}
		// Count-only fallback: each sighting is a median-quality evidence.
		return 1 - math.Pow(1-0.5, float64(minInt64(n, 16)))
	}
	q := 1.0 // probability that every evidence is false
	for _, ev := range evs {
		p := m.EvidenceProb(x, y, ev)
		if ev.Negative {
			q *= p
		} else {
			q *= 1 - p
		}
	}
	// Sightings beyond the evidence cap still count, at the average
	// strength of the recorded ones.
	if extra := m.store.Count(x, y) - int64(len(evs)); extra > 0 {
		var sum float64
		for _, ev := range evs {
			sum += m.EvidenceProb(x, y, ev)
		}
		avg := sum / float64(len(evs))
		q *= math.Pow(1-avg, float64(minInt64(extra, 32)))
	}
	return 1 - q
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
