package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// NewLogger builds a slog.Logger writing to w. format selects the
// handler: "json" for machine-shippable logs, anything else (including
// "text") for the human-readable form. level is parsed with ParseLevel.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if strings.EqualFold(format, "json") {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive) to a slog.Level; unknown values mean Info.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	}
	return slog.LevelInfo
}

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyLogger
)

// reqSeq disambiguates request IDs if the random source ever fails.
var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degrade to a process-unique counter; never fail a request
		// over an ID.
		n := reqSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID stores a request ID in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// WithLogger stores a logger in the context; handlers retrieve it with
// Logger to emit records already tagged with the request ID.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxKeyLogger, l)
}

// Logger returns the context's logger, falling back to slog.Default.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(ctxKeyLogger).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}
