package kb

import "sort"

// EvidenceDiff describes how a delta extraction changed Γ relative to a
// base store — the seed material for the build pipeline's dirty sets.
// The incremental plausibility trainer (prob.TrainDelta) turns it into
// the exact set of pairs whose training features changed: a pair's
// feature vector depends on its own evidence list plus the log-bucketed
// totals of its super- and sub-concept, so those three change channels
// are reported separately.
type EvidenceDiff struct {
	// ChangedPairs lists, in deterministic (X, Y) order, every pair whose
	// evidence list differs between base and next (new pairs included).
	ChangedPairs []Pair
	// SuperTotals maps each super-concept whose total discovery mass
	// changed to its {base, next} totals. Supers new in next appear with
	// a zero base total.
	SuperTotals map[string][2]int64
	// SubTotals is the same for sub-concept mass.
	SubTotals map[string][2]int64
}

// DiffEvidence compares two Γ stores, where next is an evolved
// superset of base (a delta extraction only ever adds mass), and
// returns the change sets. Evidence lists are compared record by
// record: the canonical Seq ordering makes the comparison independent
// of discovery order.
func DiffEvidence(base, next *Store) *EvidenceDiff {
	d := &EvidenceDiff{
		SuperTotals: make(map[string][2]int64),
		SubTotals:   make(map[string][2]int64),
	}
	base.mu.RLock()
	next.mu.RLock()
	defer base.mu.RUnlock()
	defer next.mu.RUnlock()

	for p, evs := range next.evidence {
		if !evidenceEqual(base.evidence[p], evs) {
			d.ChangedPairs = append(d.ChangedPairs, p)
		}
	}
	// A base pair losing evidence cannot happen in a delta run, but a
	// caller comparing arbitrary stores still deserves the truth.
	for p := range base.evidence {
		if _, ok := next.evidence[p]; !ok {
			d.ChangedPairs = append(d.ChangedPairs, p)
		}
	}
	sort.Slice(d.ChangedPairs, func(i, j int) bool {
		if d.ChangedPairs[i].X != d.ChangedPairs[j].X {
			return d.ChangedPairs[i].X < d.ChangedPairs[j].X
		}
		return d.ChangedPairs[i].Y < d.ChangedPairs[j].Y
	})
	for x, n := range next.superTotal {
		if b := base.superTotal[x]; b != n {
			d.SuperTotals[x] = [2]int64{b, n}
		}
	}
	for y, n := range next.subTotal {
		if b := base.subTotal[y]; b != n {
			d.SubTotals[y] = [2]int64{b, n}
		}
	}
	return d
}

func evidenceEqual(a, b []Evidence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PairsOfSuper returns every (x, y) pair of the given super-concept in
// sorted sub order — the expansion step when a super's frequency bucket
// drift dirties all of its pairs.
func (s *Store) PairsOfSuper(x string) []Pair {
	s.mu.RLock()
	ys := make([]string, 0, len(s.bySuper[x]))
	for y := range s.bySuper[x] {
		ys = append(ys, y)
	}
	s.mu.RUnlock()
	sort.Strings(ys)
	out := make([]Pair, len(ys))
	for i, y := range ys {
		out[i] = Pair{X: x, Y: y}
	}
	return out
}

// PairsOfSub returns every (x, y) pair of the given sub-concept in
// sorted super order.
func (s *Store) PairsOfSub(y string) []Pair {
	s.mu.RLock()
	xs := make([]string, 0, len(s.bySub[y]))
	for x := range s.bySub[y] {
		xs = append(xs, x)
	}
	s.mu.RUnlock()
	sort.Strings(xs)
	out := make([]Pair, len(xs))
	for i, x := range xs {
		out[i] = Pair{X: x, Y: y}
	}
	return out
}
