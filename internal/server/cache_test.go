package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(4, 2)
	if c.Shards() != 4 {
		t.Errorf("shards = %d, want 4", c.Shards())
	}
	if _, ok := c.Get("missing"); ok {
		t.Error("empty cache reported a hit")
	}
	c.Put("a", []byte("1"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Errorf("Get(a) = %q, %v", v, ok)
	}
	c.Put("a", []byte("2")) // overwrite, not duplicate
	if v, _ := c.Get("a"); string(v) != "2" {
		t.Errorf("overwrite lost: %q", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCacheShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {3, 4}, {4, 4}, {5, 8}, {16, 16},
	} {
		if got := NewCache(tc.in, 1).Shards(); got != tc.want {
			t.Errorf("NewCache(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// A single-shard cache must evict its least recently used entry.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 2)
	c.Put("a", []byte("a"))
	c.Put("b", []byte("b"))
	c.Get("a") // bump a; b is now LRU
	c.Put("c", []byte("c"))
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("fresh entry c missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

// Concurrent mixed traffic over many keys; run with -race.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8, 64)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key-%d", (w*31+i)%200)
				if v, ok := c.Get(key); ok && len(v) == 0 {
					t.Error("empty value from cache")
					return
				}
				c.Put(key, []byte(key))
			}
		}(w)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Error("cache empty after concurrent writes")
	}
}
