// Short-text understanding (Section 5.3.2): conceptualise tweets and
// cluster them by concept vectors, beating bag-of-words clustering.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

func main() {
	world := corpus.DefaultWorld(1)
	web := corpus.NewGenerator(world, corpus.GenConfig{Sentences: 15000, Seed: 11}).Generate()
	inputs := make([]extraction.Input, len(web.Sentences))
	for i, s := range web.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	pb, err := core.Build(inputs, core.Config{
		Oracle: func(x, y string) (bool, bool) {
			if !world.KnownTerm(x) || !world.KnownTerm(y) {
				return false, false
			}
			return world.IsTrueIsA(x, y), true
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Conceptualise a few short texts term by term, as the paper does
	// with "India" -> country; "India, China" -> asian country; adding
	// "Brazil" -> BRIC/emerging market.
	sets := [][]string{
		{"India"},
		{"India", "China"},
		{"India", "China", "Brazil"},
		{"oak", "basil"},
		{"pump", "boiler"},
	}
	for _, terms := range sets {
		fmt.Printf("%v ->", terms)
		if ranked, ok := pb.Conceptualize(terms, 3); ok {
			for _, r := range ranked {
				fmt.Printf(" %s(%.2f)", r.Label, r.Score)
			}
		} else {
			fmt.Print(" (unknown)")
		}
		fmt.Println()
	}

	// Tweet clustering: concept vectors vs bag of words.
	topics := []string{"company", "city", "animal", "disease", "movie", "food"}
	rep := apps.EvaluateShortText(pb, world, topics, 40, 5)
	fmt.Printf("\nclustering %d tweets into %d topics:\n", rep.Tweets, rep.Topics)
	fmt.Printf("  bag-of-words purity:   %.1f%%\n", 100*rep.BoWPurity)
	fmt.Printf("  concept-vector purity: %.1f%%\n", 100*rep.ConceptPurity)
}
