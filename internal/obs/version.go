package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo describes how the running binary was built, extracted from
// the Go build metadata embedded by the toolchain.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for plain go build).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit hash, when built inside a checkout.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit timestamp (RFC 3339), when available.
	Time string `json:"time,omitempty"`
	// Modified reports uncommitted local changes at build time.
	Modified bool `json:"modified,omitempty"`
}

var versionOnce = sync.OnceValue(func() BuildInfo {
	v := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.Time = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
})

// Version returns the binary's build information (computed once).
func Version() BuildInfo { return versionOnce() }

// String renders the build info on one line, e.g.
// "(devel) go1.24.0 rev 1a2b3c4 (modified)".
func (b BuildInfo) String() string {
	s := b.Version + " " + b.GoVersion
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
	}
	if b.Modified {
		s += " (modified)"
	}
	return s
}

// PrintVersion writes "<binary> version <info>" to w; binaries call it
// for their -version flag.
func PrintVersion(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s version %s\n", binary, Version())
}
