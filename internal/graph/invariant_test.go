package graph

import (
	"math/rand"
	"testing"
)

// TestAddEdgeMirrorRegression pins the historical AddEdge bug: after an
// out-edge already existed, an update arriving when the matching
// in-edge was absent returned without touching `in`, so the two
// directions drifted apart. With the unconditional dual upsert the
// mirror can no longer be skipped.
func TestAddEdgeMirrorRegression(t *testing.T) {
	s := NewStore()
	a, b := s.Intern("a"), s.Intern("b")
	s.AddEdge(a, b, 2, 0)
	s.AddEdge(a, b, 3, 0.7) // the update path that used to be able to bail out
	assertMirror(t, s)
	e, ok := s.EdgeBetween(a, b)
	if !ok || e.Count != 5 || e.Plausibility != 0.7 {
		t.Fatalf("out edge = %+v ok=%v", e, ok)
	}
	in := s.Parents(b)
	if len(in) != 1 || in[0].Count != 5 || in[0].Plausibility != 0.7 {
		t.Fatalf("in edge = %+v — transpose did not receive the update", in)
	}
}

// TestAddEdgeMirrorInvariantRandom hammers AddEdge with random inserts
// and updates and asserts after every operation that `in` is exactly
// the transpose of `out` and both stay sorted.
func TestAddEdgeMirrorInvariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewStore()
	const nodes = 20
	for i := 0; i < nodes; i++ {
		s.Intern(string(rune('a' + i)))
	}
	for op := 0; op < 500; op++ {
		from := NodeID(rng.Intn(nodes))
		to := NodeID(rng.Intn(nodes))
		var p float64
		if rng.Intn(2) == 0 {
			p = rng.Float64()
		}
		s.AddEdge(from, to, int64(rng.Intn(10)+1), p)
	}
	assertMirror(t, s)
}

// assertMirror checks the AddEdge invariant: in is the exact transpose
// of out (same counts and plausibilities), and every adjacency row is
// strictly To-sorted.
func assertMirror(t *testing.T, s *Store) {
	t.Helper()
	type key struct{ from, to NodeID }
	out := map[key]Edge{}
	for id := 0; id < s.NumNodes(); id++ {
		row := s.Children(NodeID(id))
		for i, e := range row {
			if i > 0 && row[i-1].To >= e.To {
				t.Fatalf("out row of node %d not strictly sorted: %v", id, row)
			}
			out[key{NodeID(id), e.To}] = e
		}
	}
	seen := 0
	for id := 0; id < s.NumNodes(); id++ {
		row := s.Parents(NodeID(id))
		for i, e := range row {
			if i > 0 && row[i-1].To >= e.To {
				t.Fatalf("in row of node %d not strictly sorted: %v", id, row)
			}
			o, ok := out[key{e.To, NodeID(id)}]
			if !ok {
				t.Fatalf("in edge %d<-%d has no out counterpart", id, e.To)
			}
			if o.Count != e.Count || o.Plausibility != e.Plausibility {
				t.Fatalf("edge %d->%d disagrees across directions: out %+v, in %+v", e.To, id, o, e)
			}
			seen++
		}
	}
	if seen != len(out) {
		t.Fatalf("edge counts disagree: %d out edges, %d in edges", len(out), seen)
	}
}

// TestTraversalAllocations pins the allocation contract of the hot
// read-path traversals on both backends: HasPath allocates nothing and
// the closures allocate only their result slice (amortised over the
// pooled scratch).
func TestTraversalAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race")
	}
	b := randomDAG(200, 600, 5)
	f := b.Freeze()
	root := NodeID(0)
	leaf := NodeID(199)
	// Warm the pools so steady-state is measured, not first use.
	for i := 0; i < 4; i++ {
		b.Descendants(root)
		b.HasPath(root, leaf)
		f.Descendants(root)
		f.HasPath(root, leaf)
	}
	// Limits leave headroom for a rare GC evicting the sync.Pool mid-run;
	// steady state is 0 allocs for HasPath and 1 (the result) for the
	// closures.
	cases := []struct {
		name string
		max  float64
		fn   func()
	}{
		{"Builder.HasPath", 0.1, func() { b.HasPath(root, leaf) }},
		{"Builder.Descendants", 1.1, func() { b.Descendants(root) }},
		{"Builder.Ancestors", 1.1, func() { b.Ancestors(leaf) }},
		{"Frozen.HasPath", 0.1, func() { f.HasPath(root, leaf) }},
		{"Frozen.Descendants", 1.1, func() { f.Descendants(root) }},
		{"Frozen.Ancestors", 1.1, func() { f.Ancestors(leaf) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := testing.AllocsPerRun(100, tc.fn); got > tc.max {
				t.Errorf("%s allocates %.1f per run, want <= %.0f", tc.name, got, tc.max)
			}
		})
	}
}
