// Package parallel is the build pipeline's shared fork-join primitive:
// a bounded worker pool that fans a fixed index range out over
// goroutines and collects results deterministically.
//
// Every parallel stage of the pipeline (the Algorithm 1 map phase, the
// Algorithm 2 horizontal and vertical merges, the Section 4.1
// plausibility annotation, and the Algorithm 3 reachability DP) runs on
// this package rather than on ad-hoc goroutine code, so the concurrency
// contract is stated once:
//
//   - Bounded workers. At most `workers` goroutines run fn at a time;
//     workers <= 1 (or n <= 1) degenerates to a plain serial loop on the
//     calling goroutine, so a serial run is always available for
//     differential testing.
//   - Deterministic collection. Work item i is identified by its index;
//     results are written to slot i of a caller- or Map-owned slice, so
//     the assembled output is independent of goroutine scheduling. Any
//     cross-item reduction is the caller's job and must happen after
//     ForEach returns, in index order.
//   - Deterministic errors. When several items fail, the error of the
//     lowest-indexed failing item is returned, so a parallel run reports
//     the same error a serial run would.
//   - Cancellation. A context cancellation or the first error stops the
//     pool from starting new items; items already running finish.
//   - Panic propagation. A panic inside fn is captured (with its stack)
//     and re-raised on the calling goroutine once all workers have
//     drained, instead of crashing the process from a nameless worker.
//
// The determinism contract every caller must itself uphold is documented
// in ARCHITECTURE.md: fn(i) may read state shared with other in-flight
// items only if no in-flight item writes it, and all writes must land in
// per-index slots.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: values <= 0 mean
// runtime.GOMAXPROCS(0), anything else passes through. The pipeline
// configs use 0 as "let the hardware decide", and this is the single
// place that decision is made.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Bound clamps a resolved worker count to the number of work items, so
// a tiny input never spawns idle goroutines. It preserves the serial
// degenerate case: Bound(w, n) <= 1 runs inline.
func Bound(workers, n int) int {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	return workers
}

// panicError carries a recovered panic from a worker to the caller.
type panicError struct {
	value any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.value, p.stack)
}

// ForEach runs fn(0), fn(1), ..., fn(n-1) on at most `workers`
// goroutines and waits for all of them. See the package comment for the
// full contract; in short: items are handed out in index order, the
// lowest-indexed error wins, ctx cancellation stops new items, and a
// panicking fn re-panics here.
//
// With workers <= 1 or n <= 1 the items run inline on the calling
// goroutine in index order — byte-identical to a plain loop.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachWorker(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the executing worker's id
// (0..workers-1) passed to fn, so callers can maintain per-worker
// scratch state (a private resolver, a reusable buffer) without locks.
// The mapping of items to workers is scheduling-dependent; only the
// per-index outputs may carry results.
func ForEachWorker(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Bound(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next index to hand out
		stop     atomic.Bool  // set on first error / panic / cancellation
		mu       sync.Mutex
		firstIdx = n + 1 // index of the lowest failing item
		firstErr error
		panicIdx = n + 1 // index of the lowest panicking item
		panicked *panicError
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if pe, ok := err.(*panicError); ok {
			// A panic is never masked by a plain error; the lowest
			// panicking index wins among panics, for determinism.
			if i < panicIdx {
				panicIdx, panicked = i, pe
			}
		} else if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for !stop.Load() {
				if err := ctx.Err(); err != nil {
					// Cancellation outranks any later item's error but
					// must not mask an earlier one: record it at the
					// next unclaimed index.
					fail(int(next.Load()), err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runItem(worker, i, fn); err != nil {
					fail(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked.Error())
	}
	return firstErr
}

// runItem invokes one work item, converting a panic into a panicError
// so the pool can drain before re-raising it.
func runItem(worker, i int, fn func(worker, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{value: r, stack: stack()}
		}
	}()
	return fn(worker, i)
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// Map runs fn over 0..n-1 on at most `workers` goroutines and returns
// the results in index order — the fork-join shape of the pipeline's
// "compute rows concurrently, merge in node order" stages. On error the
// partial results are discarded and the lowest-indexed error returned.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
