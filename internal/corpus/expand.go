package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/nlp"
)

// ExpandOptions controls the procedural growth of the seed world.
// Scale=1 yields a world of a few hundred concepts and a couple of
// thousand instances; larger scales grow both roughly linearly, mirroring
// the paper's long-tailed concept-size distribution (Figure 8): "company"
// stays the largest concept by far.
type ExpandOptions struct {
	Scale float64 // growth multiplier; <= 0 means 1
	Seed  int64   // PRNG seed for the synthetic names
}

// instanceWeights sets the relative synthetic-instance budget of each
// benchmark concept at Scale=1, echoing the relative concept sizes of
// Table 5 (company 85391 ... aircraft model 21).
var instanceWeights = map[string]int{
	"company":              400,
	"artist":               280,
	"city":                 120,
	"book":                 90,
	"disease":              80,
	"celebrity":            80,
	"movie":                70,
	"film":                 60,
	"drug":                 50,
	"food":                 45,
	"restaurant":           40,
	"website":              35,
	"actor":                34,
	"festival":             30,
	"river":                30,
	"chemical compound":    28,
	"museum":               24,
	"university":           20,
	"album":                20,
	"country":              16,
	"airline":              12,
	"politician":           10,
	"religion":             10,
	"architect":            9,
	"mountain":             8,
	"airport":              8,
	"file format":          7,
	"theater":              6,
	"programming language": 5,
	"political party":      3,
	"web browser":          2,
	"internet protocol":    2,
	"skyscraper":           1,
	"operating system":     1,
	"cancer center":        1,
	"game publisher":       1,
	"olympic sport":        1,
	"public library":       1,
	"tennis player":        1,
	"football team":        1,
	"digital camera":       1,
	"aircraft model":       0,
}

// conceptModifiers generate synthetic modified sub-concepts
// ("famous artists", "regional airlines", ...), growing the concept space
// the way the web's long tail of fine-grained concepts does.
var conceptModifiers = []string{
	"famous", "popular", "major", "regional", "modern", "traditional",
	"leading", "independent", "historic", "local", "well-known",
	"influential", "award-winning", "international", "emerging",
}

// Expand grows the seed world: synthetic instances are appended to each
// weighted concept, and synthetic modified sub-concepts are carved out of
// the larger ones. The result is a fresh World; the input is not mutated.
func Expand(seed []*Concept, opts ExpandOptions) (*World, error) {
	scale := opts.Scale
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	names := newNameGen(rng)

	out := make([]*Concept, 0, len(seed)*2)
	for _, c := range seed {
		cc := *c
		cc.Instances = append([]string(nil), c.Instances...)
		out = append(out, &cc)
	}
	byKey := make(map[string]*Concept, len(out))
	for _, c := range out {
		byKey[c.Key] = c
	}

	// Synthetic instances.
	for _, c := range out {
		w := instanceWeights[c.Key]
		extra := int(float64(w) * scale)
		if w > 0 && extra == 0 {
			extra = 1
		}
		for i := 0; i < extra; i++ {
			c.Instances = append(c.Instances, names.instance(c.Key))
		}
	}

	// Synthetic modified sub-concepts on concepts that have enough
	// instances to share.
	var synth []*Concept
	for _, c := range out {
		if len(c.Instances) < 12 {
			continue
		}
		nmods := 2 + rng.Intn(4)
		if scale > 4 {
			nmods += 2
		}
		perm := rng.Perm(len(conceptModifiers))
		for m := 0; m < nmods && m < len(perm); m++ {
			mod := conceptModifiers[perm[m]]
			label := mod + " " + c.Label
			key := label
			if byKey[key] != nil {
				continue
			}
			// Members: a random subset of the parent's instances.
			k := 4 + rng.Intn(len(c.Instances)/3+1)
			if k > len(c.Instances) {
				k = len(c.Instances)
			}
			// A random subset of the parent's instances, keeping the
			// parent's typicality order so that mention frequency under
			// the sub-concept does not promote arbitrary tail instances.
			idxs := make([]int, 0, k)
			seen := make(map[int]bool)
			for len(idxs) < k {
				idx := rng.Intn(len(c.Instances))
				if seen[idx] {
					continue
				}
				seen[idx] = true
				idxs = append(idxs, idx)
			}
			sort.Ints(idxs)
			members := make([]string, 0, k)
			for _, idx := range idxs {
				members = append(members, c.Instances[idx])
			}
			sc := &Concept{Key: key, Label: label, Parents: []string{c.Key}, Instances: members}
			synth = append(synth, sc)
			byKey[key] = sc
		}
	}
	out = append(out, synth...)
	w, err := NewWorld(out)
	if err != nil {
		return nil, err
	}
	// Relational ground truth: every organisation is based in a country
	// (drives the two-concept query-interpretation experiment). Seed
	// organisations get their real homes; synthetic ones draw at random.
	for inst, home := range seedHomes {
		w.SetHome(inst, home)
	}
	countries := w.Concept("country").Instances
	for _, key := range []string{"company", "it company", "software company", "oil company", "airline", "game publisher", "restaurant", "university"} {
		c := w.Concept(key)
		if c == nil {
			continue
		}
		for _, inst := range c.Instances {
			if w.Home(inst) == "" {
				w.SetHome(inst, countries[rng.Intn(len(countries))])
			}
		}
	}
	return w, nil
}

// seedHomes are the real home countries of the hand-written seed
// organisations.
var seedHomes = map[string]string{
	"IBM": "USA", "Microsoft": "USA", "Google": "USA", "Apple": "USA",
	"Intel": "USA", "HP": "USA", "Oracle": "USA", "Amazon": "USA",
	"Nokia": "Sweden", "Samsung": "South Korea", "Sony": "Japan",
	"Toyota": "Japan", "Siemens": "Germany", "Boeing": "USA",
	"Shell": "UK", "ExxonMobil": "USA", "Walmart": "USA",
	"Proctor and Gamble": "USA", "Johnson and Johnson": "USA",
	"China Mobile": "China", "Tata Group": "India", "PetroBras": "Brazil",
	"General Electric": "USA", "Ford": "USA", "Honda": "Japan",
	"Nestle": "France", "Unilever": "UK", "Pfizer": "USA",
	"Cisco": "USA", "Dell": "USA", "SAP": "Germany", "Adobe": "USA",
	"British Airways": "UK", "Delta": "USA", "Lufthansa": "Germany",
	"Emirates": "UK", "Qantas": "Australia", "Air France": "France",
	"KLM": "France", "Singapore Airlines": "Singapore",
	"Cathay Pacific": "China", "Harvard": "USA", "Stanford": "USA",
	"Yale": "USA", "MIT": "USA", "Oxford": "UK", "Cambridge": "UK",
	"Tsinghua": "China", "BP": "UK", "Chevron": "USA", "Total": "France",
}

// DefaultWorld returns the seed world expanded at the given scale with a
// fixed seed, the standard fixture used by tests and benchmarks.
func DefaultWorld(scale float64) *World {
	w, err := Expand(SeedConcepts(), ExpandOptions{Scale: scale, Seed: 42})
	if err != nil {
		panic(err)
	}
	return w
}

// nameGen produces deterministic synthetic proper names and common nouns.
type nameGen struct {
	rng  *rand.Rand
	used map[string]bool
}

func newNameGen(rng *rand.Rand) *nameGen {
	return &nameGen{rng: rng, used: make(map[string]bool)}
}

var (
	nameOnsets  = []string{"b", "br", "c", "cl", "d", "dr", "f", "g", "gr", "h", "j", "k", "kr", "l", "m", "n", "p", "pr", "qu", "r", "s", "st", "t", "tr", "v", "w", "z"}
	nameVowels  = []string{"a", "e", "i", "o", "u", "ia", "ea", "io"}
	nameCodas   = []string{"", "n", "r", "l", "s", "x", "th", "m", "nd", "rk"}
	companySfx  = []string{"Systems", "Corp", "Industries", "Group", "Technologies", "Holdings", "Labs", "Partners", "Dynamics", "Solutions"}
	personFirst = []string{"Alan", "Bruno", "Carla", "Dmitri", "Elena", "Felix", "Greta", "Hugo", "Irene", "Jonas", "Karin", "Lars", "Mira", "Nadia", "Oscar", "Petra", "Quentin", "Rosa", "Stefan", "Tanya"}
	citySfx     = []string{"ville", "burg", "ton", " City", "port", "field", "haven", "dale"}
	commonAdj   = []string{"red", "silver", "northern", "golden", "twin", "ancient", "coastal", "royal"}
	commonNoun  = []string{"fever", "syndrome", "stew", "salad", "sonata", "gazette", "quartet", "crossing", "harvest", "remedy"}
)

func (g *nameGen) syllable() string {
	return nameOnsets[g.rng.Intn(len(nameOnsets))] +
		nameVowels[g.rng.Intn(len(nameVowels))] +
		nameCodas[g.rng.Intn(len(nameCodas))]
}

func (g *nameGen) properWord() string {
	n := 2
	if g.rng.Intn(3) == 0 {
		n = 3
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(g.syllable())
	}
	s := b.String()
	return strings.ToUpper(s[:1]) + s[1:]
}

// instance produces a fresh synthetic instance name styled for the given
// concept key.
func (g *nameGen) instance(conceptKey string) string {
	for attempt := 0; ; attempt++ {
		var s string
		switch conceptKey {
		case "company", "it company", "software company", "airline", "game publisher", "restaurant":
			s = g.properWord() + " " + companySfx[g.rng.Intn(len(companySfx))]
		case "actor", "artist", "architect", "celebrity", "politician", "tennis player", "person":
			s = personFirst[g.rng.Intn(len(personFirst))] + " " + g.properWord()
		case "city", "asian city", "european city", "large city":
			s = g.properWord() + citySfx[g.rng.Intn(len(citySfx))]
		case "disease", "drug", "food", "chemical compound", "olympic sport":
			s = strings.ToLower(g.properWord())
			if g.rng.Intn(3) == 0 {
				s = commonAdj[g.rng.Intn(len(commonAdj))] + " " + commonNoun[g.rng.Intn(len(commonNoun))]
			}
		default:
			s = g.properWord()
			if g.rng.Intn(4) == 0 {
				s += " " + g.properWord()
			}
		}
		key := strings.ToLower(s)
		if !g.used[key] && !nlp.IsStopWord(s) {
			g.used[key] = true
			return s
		}
		if attempt > 50 {
			// Guaranteed-unique fallback.
			s = fmt.Sprintf("%s %d", s, g.rng.Intn(1_000_000))
			g.used[strings.ToLower(s)] = true
			return s
		}
	}
}
