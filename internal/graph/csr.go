package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Snapshot format v2 "PBC2" (little-endian) serialises the Frozen CSR
// layout directly. The container carries an internal layout revision
// (the uvarint after the magic) with two revisions in the wild — both
// fully specified byte-by-byte in FORMATS.md:
//
// Revision 2 (legacy, read-only today): varint-framed and unaligned.
//
//	magic    [4]byte  "PBC2"
//	revision uvarint  (2)
//	nodes    uvarint
//	edges    uvarint
//	labels   nodes x (uvarint len, bytes)
//	outOff   (nodes+1) x uint32
//	outEdges edges x (uint32 to, uint64 count, float64 bits plausibility)
//	inOff    (nodes+1) x uint32
//	inEdges  edges x (uint32 to, uint64 count, float64 bits plausibility)
//	crc32    uint32 (IEEE, over everything before it)
//
// Revision 3 (current, what Save writes) is the memory-mappable layout:
// a fixed-width header, a section table, and 8-byte-aligned sections —
// a length-prefixed label arena plus the four CSR arrays — so a loader
// may use the on-disk bytes directly as its in-memory arrays
// (LoadMapped) instead of decoding them. See mapped.go for the layout
// constants and the parser shared by the zero-copy and copying paths.
//
// The derived tables (label index, node classes, topo levels, depths)
// are recomputed at load in every revision: they are cheap relative to
// parsing and keeping them out of the file means the format cannot
// disagree with itself about them.
const (
	csrMagic = "PBC2"
	// csrRevLegacy is the unaligned varint-framed layout (read-only).
	csrRevLegacy = 2
	// csrRevArena is the aligned, arena-bearing, mappable layout.
	csrRevArena = 3

	maxSnapshotNodes = 1 << 28
	maxSnapshotEdges = 1 << 28
	maxLabelLen      = 1 << 20

	edgeRecordSize = 4 + 8 + 8
)

// errBadSnapshotf wraps ErrBadSnapshot with a formatted detail message.
func errBadSnapshotf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadSnapshot}, args...)...)
}

// WriteSnapshot writes a checksummed binary snapshot of g in the given
// format version: 1 is the adjacency-list "PBGR" format readable by
// Load, 2 the CSR "PBC2" format readable only by LoadFrozen.
func WriteSnapshot(w io.Writer, g Reader, version int) error {
	switch version {
	case snapshotVersion:
		return saveV1(w, g)
	case csrRevLegacy:
		// External "version 2" selects the PBC2 container; inside it we
		// write the current layout revision (3, the mappable one).
		return saveV3(w, frozenView(g))
	default:
		return fmt.Errorf("graph: unsupported snapshot version %d", version)
	}
}

// frozenView returns g's CSR form, freezing (via a thaw for foreign
// Reader implementations) only when g is not already Frozen.
func frozenView(g Reader) *Frozen {
	switch v := g.(type) {
	case *Frozen:
		return v
	case *Builder:
		return v.Freeze()
	default:
		return NewBuilderFrom(g).Freeze()
	}
}

// Save writes the frozen view as a v2 "PBC2" snapshot (layout
// revision 3, the mappable one).
func (f *Frozen) Save(w io.Writer) error { return saveV3(w, f) }

// saveV2Legacy writes the unaligned revision-2 layout. The production
// writer moved to revision 3; this stays so tests can pin that old
// revision-2 artifacts remain loadable.
func saveV2Legacy(w io.Writer, f *Frozen) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(csrMagic)); err != nil {
		return err
	}
	if err := writeUvarint(cw, csrRevLegacy); err != nil {
		return err
	}
	n := f.NumNodes()
	if err := writeUvarint(cw, uint64(n)); err != nil {
		return err
	}
	if err := writeUvarint(cw, uint64(len(f.outEdges))); err != nil {
		return err
	}
	for id := 0; id < n; id++ {
		l := f.Label(NodeID(id))
		if err := writeUvarint(cw, uint64(len(l))); err != nil {
			return err
		}
		if _, err := cw.Write([]byte(l)); err != nil {
			return err
		}
	}
	if err := writeUint32s(cw, f.outOff); err != nil {
		return err
	}
	if err := writeEdges(cw, f.outEdges); err != nil {
		return err
	}
	if err := writeUint32s(cw, f.inOff); err != nil {
		return err
	}
	if err := writeEdges(cw, f.inEdges); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

func writeUint32s(w io.Writer, vs []uint32) error {
	var buf [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func writeEdges(w io.Writer, es []Edge) error {
	var buf [edgeRecordSize]byte
	for _, e := range es {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(e.To))
		binary.LittleEndian.PutUint64(buf[4:12], uint64(e.Count))
		binary.LittleEndian.PutUint64(buf[12:20], math.Float64bits(e.Plausibility))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// LoadFrozen reads a snapshot in any supported format and returns the
// CSR view: "PBC2" decodes straight into the flat arrays (both layout
// revisions), while legacy "PBGR" loads through the mutable store and
// freezes (freeze-on-load). The format is sniffed from buffered magic
// bytes, so r need not be seekable. This is the copying loader; for
// the zero-copy path over a memory-mapped file, see LoadMapped.
func LoadFrozen(r io.Reader) (*Frozen, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("%w: %d-byte input is too short for a snapshot magic: %v",
			ErrBadSnapshot, len(magic), err)
	}
	switch string(magic) {
	case csrMagic:
		// The layout revision directly follows the magic (one uvarint
		// byte for every known revision). Revision 3 is a fixed-width
		// random-access layout, so it parses from a byte slice; the
		// varint-framed revision 2 streams through the bufio reader.
		if head, err := br.Peek(5); err == nil && head[4] == csrRevArena {
			data, err := io.ReadAll(br)
			if err != nil {
				return nil, fmt.Errorf("%w: reading stream: %v", ErrBadSnapshot, err)
			}
			return parseV3(data, false)
		}
		return loadCSR(br)
	case snapshotMagic:
		b, err := Load(br)
		if err != nil {
			return nil, err
		}
		return b.Freeze(), nil
	default:
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
}

func loadCSR(br *bufio.Reader) (*Frozen, error) {
	cr := &crcReader{r: br}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrBadSnapshot, err)
	}
	if string(magic) != csrMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
	version, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: version: %v", ErrBadSnapshot, err)
	}
	if version != csrRevLegacy {
		return nil, fmt.Errorf("%w: unsupported PBC2 layout revision %d", ErrBadSnapshot, version)
	}
	nodes, err := binary.ReadUvarint(cr)
	if err != nil || nodes > maxSnapshotNodes {
		return nil, fmt.Errorf("%w: node count", ErrBadSnapshot)
	}
	edges, err := binary.ReadUvarint(cr)
	if err != nil || edges > maxSnapshotEdges {
		return nil, fmt.Errorf("%w: edge count", ErrBadSnapshot)
	}
	// Labels stream straight into an owned arena: offsets first, bytes
	// appended — the same representation a mapped view gets for free.
	arena := labelArena{off: make([]uint32, 1, nodes+1)}
	for i := uint64(0); i < nodes; i++ {
		ln, err := binary.ReadUvarint(cr)
		if err != nil || ln > maxLabelLen {
			return nil, fmt.Errorf("%w: label length", ErrBadSnapshot)
		}
		start := len(arena.data)
		arena.data = append(arena.data, make([]byte, ln)...)
		if _, err := io.ReadFull(cr, arena.data[start:]); err != nil {
			return nil, fmt.Errorf("%w: label bytes: %v", ErrBadSnapshot, err)
		}
		arena.off = append(arena.off, uint32(len(arena.data)))
	}
	f := &Frozen{arena: arena}
	if f.outOff, err = readUint32s(cr, nodes+1); err != nil {
		return nil, fmt.Errorf("%w: out offsets: %v", ErrBadSnapshot, err)
	}
	if f.outEdges, err = readEdges(cr, edges); err != nil {
		return nil, fmt.Errorf("%w: out edges: %v", ErrBadSnapshot, err)
	}
	if f.inOff, err = readUint32s(cr, nodes+1); err != nil {
		return nil, fmt.Errorf("%w: in offsets: %v", ErrBadSnapshot, err)
	}
	if f.inEdges, err = readEdges(cr, edges); err != nil {
		return nil, fmt.Errorf("%w: in edges: %v", ErrBadSnapshot, err)
	}
	want := cr.crc
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr.r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: trailer: %v", ErrBadSnapshot, err)
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != want {
		return nil, ErrChecksum
	}
	return finishLoadedCSR(f)
}

// finishLoadedCSR runs the structural validation and derived-table
// computation shared by every CSR loader (streaming rev2, copying rev3,
// zero-copy mapped rev3): offsets/sortedness, transpose cross-check,
// finish, and the duplicate-label scan over the sorted table.
func finishLoadedCSR(f *Frozen) (*Frozen, error) {
	if err := validateCSR(f, "out", f.outOff, f.outEdges); err != nil {
		return nil, err
	}
	if err := validateCSR(f, "in", f.inOff, f.inEdges); err != nil {
		return nil, err
	}
	if err := validateTranspose(f); err != nil {
		return nil, err
	}
	f.finish()
	for i := 1; i < len(f.sorted); i++ {
		if f.Label(f.sorted[i-1]) == f.Label(f.sorted[i]) {
			return nil, fmt.Errorf("%w: duplicate label %q", ErrBadSnapshot, f.Label(f.sorted[i]))
		}
	}
	return f, nil
}

// validateCSR checks one direction's offset table and edge array before
// anything slices into them: offsets must start at 0, be nondecreasing,
// fit the edge array exactly, and every row must be strictly
// To-ascending with in-range targets.
func validateCSR(f *Frozen, dir string, off []uint32, edges []Edge) error {
	n := f.NumNodes()
	if off[0] != 0 || off[n] != uint32(len(edges)) {
		return fmt.Errorf("%w: %s offsets do not span edge array", ErrBadSnapshot, dir)
	}
	for i := 0; i < n; i++ {
		lo, hi := off[i], off[i+1]
		if lo > hi {
			return fmt.Errorf("%w: %s offsets decrease at node %d", ErrBadSnapshot, dir, i)
		}
		for j := lo; j < hi; j++ {
			if edges[j].To >= NodeID(n) {
				return fmt.Errorf("%w: %s edge target out of range at node %d", ErrBadSnapshot, dir, i)
			}
			if j > lo && edges[j].To <= edges[j-1].To {
				return fmt.Errorf("%w: %s row of node %d not sorted", ErrBadSnapshot, dir, i)
			}
		}
	}
	return nil
}

// validateTranspose cross-checks the two directions cheaply: per-node
// indegree derived from the out array must match the in offsets, and
// the total edge counts must agree (full mirror equality is asserted by
// tests, not re-derived on every load).
func validateTranspose(f *Frozen) error {
	n := f.NumNodes()
	indeg := make([]uint32, n)
	for _, e := range f.outEdges {
		indeg[e.To]++
	}
	for i := 0; i < n; i++ {
		if f.inOff[i+1]-f.inOff[i] != indeg[i] {
			return fmt.Errorf("%w: in-degree of node %d disagrees with out edges", ErrBadSnapshot, i)
		}
	}
	return nil
}

func readUint32s(cr *crcReader, count uint64) ([]uint32, error) {
	const chunk = 16384
	out := make([]uint32, 0, minU64(count, chunk))
	buf := make([]byte, 4*chunk)
	for count > 0 {
		k := minU64(count, chunk)
		b := buf[:4*k]
		if _, err := io.ReadFull(cr, b); err != nil {
			return nil, err
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, binary.LittleEndian.Uint32(b[4*i:]))
		}
		count -= k
	}
	return out, nil
}

func readEdges(cr *crcReader, count uint64) ([]Edge, error) {
	const chunk = 3276 // ~64 KiB of records per read
	out := make([]Edge, 0, minU64(count, chunk))
	buf := make([]byte, edgeRecordSize*chunk)
	for count > 0 {
		k := minU64(count, chunk)
		b := buf[:edgeRecordSize*k]
		if _, err := io.ReadFull(cr, b); err != nil {
			return nil, err
		}
		for i := uint64(0); i < k; i++ {
			rec := b[edgeRecordSize*i:]
			out = append(out, Edge{
				To:           NodeID(binary.LittleEndian.Uint32(rec[0:4])),
				Count:        int64(binary.LittleEndian.Uint64(rec[4:12])),
				Plausibility: math.Float64frombits(binary.LittleEndian.Uint64(rec[12:20])),
			})
		}
		count -= k
	}
	return out, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
