package extraction

import (
	"context"
	"time"

	"repro/internal/hearst"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// RoundStats summarises one iteration of Algorithm 1; the per-round series
// regenerate Figures 10 and 11.
type RoundStats struct {
	Round             int
	NewPairs          int64 // distinct pairs first discovered this round
	TotalPairs        int64 // accumulated distinct pairs
	TotalConcepts     int   // accumulated distinct super-concepts
	SentencesResolved int   // sentences fully decided during this round
	SentencesPending  int   // sentences still undecided after this round
	Candidates        int   // undecided sub-concept positions scanned this round
	Accepted          int   // positions accepted by the likelihood-ratio tests
	Rejected          int   // positions rejected by the likelihood-ratio tests
	Elapsed           time.Duration
}

// counters renders the round as the counter map reported to the
// StageReporter (and thence to probase-build's progress lines and
// stats.json).
func (r RoundStats) counters() map[string]int64 {
	return map[string]int64{
		"sentences_scanned":  int64(r.SentencesResolved + r.SentencesPending),
		"candidates":         int64(r.Candidates),
		"accepted":           int64(r.Accepted),
		"rejected":           int64(r.Rejected),
		"new_pairs":          r.NewPairs,
		"total_pairs":        r.TotalPairs,
		"total_concepts":     int64(r.TotalConcepts),
		"sentences_resolved": int64(r.SentencesResolved),
		"sentences_pending":  int64(r.SentencesPending),
	}
}

// Group is the set of isA pairs extracted from one sentence —
// s = {(x, y1), ..., (x, ym)} in the paper's notation. Per Property 1 all
// occurrences of x in a group share one sense, which makes groups the unit
// from which taxonomy construction builds its local taxonomies.
type Group struct {
	Super string
	Subs  []string
}

// Result is the output of a full extraction run.
type Result struct {
	Store      *kb.Store       // Γ
	Rounds     []RoundStats    // one entry per executed round
	FirstRound map[kb.Pair]int // round in which each pair was first found
	Parsed     int             // sentences that matched a Hearst pattern
	Groups     []Group         // per-sentence pair groups, for taxonomy construction
	PartOf     int             // part-whole sentences recorded as negative evidence
}

// PairsThroughRound returns the distinct pairs discovered in rounds
// 1..r, for per-iteration precision (Figure 11).
func (r *Result) PairsThroughRound(round int) []kb.Pair {
	var out []kb.Pair
	for p, fr := range r.FirstRound {
		if fr <= round {
			out = append(out, p)
		}
	}
	return out
}

// Run executes the iterative extraction over the corpus sentences.
// Each round reads an immutable snapshot of Γ (the store is only written
// in the single-threaded reduce step between rounds), so the result is
// independent of goroutine scheduling.
func Run(inputs []Input, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rep := obs.ReporterOrNop(cfg.Reporter)
	rep.StageStart(obs.StageExtraction)
	runStart := time.Now()

	// Syntactic pass: parse every sentence once. Composition sentences
	// ("trees are comprised of branches") become negative evidence
	// against the corresponding isA claims (Section 4.1).
	states := make([]*sentenceState, 0, len(inputs))
	type negEvidence struct {
		x, y string
		ev   kb.Evidence
	}
	var negatives []negEvidence
	for _, in := range inputs {
		if po, ok := hearst.ParsePartOf(in.Text); ok {
			x := CanonicalSuper(po.Whole)
			for i, part := range po.Parts {
				negatives = append(negatives, negEvidence{
					x: x, y: CanonicalSub(part),
					ev: kb.Evidence{
						PageScore: in.PageScore,
						ListLen:   len(po.Parts),
						Pos:       i + 1,
						Negative:  true,
					},
				})
			}
			continue
		}
		m, ok := hearst.Parse(in.Text)
		if !ok {
			continue
		}
		states = append(states, &sentenceState{
			match:     m,
			pageScore: in.PageScore,
			status:    make([]posState, len(m.Segments)),
			readings:  make([][]string, len(m.Segments)),
		})
	}

	res := &Result{
		Store:      kb.NewStore(cfg.MaxEvidencePerPair),
		FirstRound: make(map[kb.Pair]int),
		Parsed:     len(states),
		PartOf:     len(negatives),
	}
	rep.Count(obs.StageExtraction, "sentences_total", int64(len(inputs)))
	rep.Count(obs.StageExtraction, "sentences_parsed", int64(len(states)))
	rep.Count(obs.StageExtraction, "part_of_negatives", int64(len(negatives)))
	rep.Count(obs.StageExtraction, "workers", int64(cfg.Workers))

	pending := make([]int, len(states))
	for i := range states {
		pending[i] = i
	}

	for round := 1; round <= cfg.MaxRounds && len(pending) > 0; round++ {
		roundStart := time.Now()
		candidates := 0
		for _, idx := range pending {
			for _, ps := range states[idx].status {
				if ps == posUndecided {
					candidates++
				}
			}
		}
		decisions := mapPhase(states, pending, cfg, res.Store)
		progress, resolved, newPairs, accepted, rejected := reducePhase(states, pending, decisions, res, round, cfg)

		var next []int
		for _, idx := range pending {
			if !states[idx].done {
				next = append(next, idx)
			}
		}
		pending = next

		st := res.Store.Stats()
		rs := RoundStats{
			Round:             round,
			NewPairs:          newPairs,
			TotalPairs:        st.Pairs,
			TotalConcepts:     st.Supers,
			SentencesResolved: resolved,
			SentencesPending:  len(pending),
			Candidates:        candidates,
			Accepted:          accepted,
			Rejected:          rejected,
			Elapsed:           time.Since(roundStart),
		}
		res.Rounds = append(res.Rounds, rs)
		rep.Round(obs.StageExtraction, round, rs.counters(), rs.Elapsed)
		if !progress {
			break
		}
	}
	for _, st := range states {
		if st.super != "" && len(st.accepted) > 0 {
			res.Groups = append(res.Groups, Group{
				Super: st.super,
				Subs:  append([]string(nil), st.accepted...),
			})
		}
	}
	for _, n := range negatives {
		res.Store.AddEvidence(n.x, n.y, n.ev)
	}
	rep.Count(obs.StageExtraction, "groups", int64(len(res.Groups)))
	rep.StageEnd(obs.StageExtraction, time.Since(runStart))
	return res
}

// mapPhase resolves the pending sentences in parallel against the current
// Γ snapshot. Decisions are returned in pending order for a deterministic
// reduce.
//
// Sharing audit: a resolver holds only a Config value (copied, never
// written after withDefaults) and the *kb.Store, which is RWMutex-guarded
// and written exclusively by the single-threaded reduce phase — during
// the map fan-out every store access is a read. The resolve call graph
// (resolve, detectSuper, segmentChunks, pSub, pSuper, bestSegCount)
// keeps all mutable state in locals, and distinct items touch distinct
// sentenceStates. Each worker still gets its own resolver below, so a
// future scratch field (say, a memo table) cannot silently become shared
// state.
func mapPhase(states []*sentenceState, pending []int, cfg Config, store *kb.Store) []decision {
	decisions := make([]decision, len(pending))
	workers := parallel.Bound(cfg.Workers, len(pending))
	resolvers := make([]resolver, max(workers, 1))
	for w := range resolvers {
		resolvers[w] = resolver{cfg: cfg, store: store}
	}
	_ = parallel.ForEachWorker(context.Background(), workers, len(pending), func(w, i int) error {
		idx := pending[i]
		decisions[i] = resolvers[w].resolve(idx, states[idx])
		return nil
	})
	return decisions
}

// reducePhase applies decisions to Γ single-threaded, in pending order.
func reducePhase(states []*sentenceState, pending []int, decisions []decision, res *Result, round int, cfg Config) (progress bool, resolved int, newPairs int64, accepted, rejected int) {
	for i, idx := range pending {
		d := decisions[i]
		st := states[idx]
		if d.progress {
			progress = true
		}
		accepted += len(d.accepts)
		rejected += len(d.rejects)
		if d.super != "" {
			st.super = d.super
			st.superDone = true
		}
		counted := make(map[string]bool, len(st.accepted))
		for _, s := range st.accepted {
			counted[s] = true
		}
		for _, a := range d.accepts {
			st.status[a.pos] = posAccepted
			st.readings[a.pos] = a.reading
			for _, sub := range a.reading {
				if sub == "" || sub == st.super || counted[sub] {
					continue
				}
				pair := kb.Pair{X: st.super, Y: sub}
				if _, seen := res.FirstRound[pair]; !seen {
					res.FirstRound[pair] = round
					newPairs++
				}
				res.Store.Add(st.super, sub, 1)
				res.Store.AddEvidence(st.super, sub, kb.Evidence{
					Pattern:   int(st.match.Pattern),
					PageScore: st.pageScore,
					ListLen:   len(st.match.Segments),
					Pos:       a.pos + 1,
				})
				for _, prev := range st.accepted {
					res.Store.AddCo(st.super, sub, prev, 1)
				}
				st.accepted = append(st.accepted, sub)
				counted[sub] = true
			}
		}
		for _, j := range d.rejects {
			st.status[j] = posRejected
		}
		if d.done && !st.done {
			st.done = true
			resolved++
		}
	}
	return progress, resolved, newPairs, accepted, rejected
}
