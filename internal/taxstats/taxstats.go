// Package taxstats computes a deterministic health profile over a
// taxonomy — the data-plane complement to internal/obs's runtime
// telemetry. Where /metrics answers "is the process healthy", a
// Profile answers "is the *taxonomy* healthy": structural shape
// (node/edge/concept/instance counts, degree and depth histograms,
// roots and orphans, label-arena bytes, top concepts by instance
// count) and the statistical shape of the paper's core claim — the
// plausibility and typicality score distributions of Sections 4-5,
// plus the per-instance ambiguity entropy of P(concept|instance).
//
// Profiles drive three consumers:
//
//   - Register exposes a profile as probase_snapshot_* gauges in an
//     obs.Registry, refreshed whenever the provider swaps snapshots.
//   - probase-inspect renders profiles as probase-inspect/v1 reports.
//   - DiffProfiles + Thresholds.Gate turn two profiles into a drift
//     verdict — the machine-checkable "is this new snapshot safe to
//     serve?" gate the snapshot hot-swap path needs.
//
// Compute fans its expensive passes out on internal/parallel under the
// repository-wide determinism contract: per-item results land in
// per-index slots and every reduction runs serially in index order, so
// the profile is byte-identical at any worker count.
package taxstats

import (
	"context"
	"math"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prob"
)

// Options tunes Compute. The zero value profiles everything at
// GOMAXPROCS workers with the top 10 concepts reported.
type Options struct {
	// Workers bounds the worker pool of the per-node and per-instance
	// passes; <= 0 means GOMAXPROCS. The profile is byte-identical at
	// every worker count.
	Workers int
	// TopK is how many top concepts (by direct instance count) to
	// report; <= 0 means 10.
	TopK int
	// SampleInstances caps how many instances the typicality and
	// entropy passes score; 0 means all. When a cap applies, the first
	// SampleInstances instances in the Reader's deterministic
	// Instances() order (sorted by label) are profiled and
	// Profile.SampledInstances records the cap, so a capped profile is
	// never mistaken for an exhaustive one.
	SampleInstances int
}

func (o Options) withDefaults() Options {
	o.Workers = parallel.Workers(o.Workers)
	if o.TopK <= 0 {
		o.TopK = 10
	}
	return o
}

// ConceptStat is one entry of the top-concepts table.
type ConceptStat struct {
	Label string `json:"label"`
	// Instances is the number of direct instance (leaf) children.
	Instances int `json:"instances"`
	// OutDegree is the node's total fan-out (instances + sub-concepts).
	OutDegree int `json:"out_degree"`
}

// Profile is the deterministic health profile of one taxonomy.
type Profile struct {
	// Fingerprint identifies the logical graph content: labels in node
	// order plus every out-edge with its count and plausibility bits.
	// Two Readers with the same content (e.g. a Builder and its Frozen
	// view) produce the same fingerprint.
	Fingerprint string `json:"fingerprint"`

	Nodes     int `json:"nodes"`
	Edges     int `json:"edges"`
	Concepts  int `json:"concepts"`
	Instances int `json:"instances"`
	Roots     int `json:"roots"`
	// Orphans counts isolated nodes: no parents and no children.
	Orphans    int   `json:"orphans"`
	LabelBytes int64 `json:"label_bytes"`
	MaxDepth   int   `json:"max_depth"`
	TopoLevels int   `json:"topo_levels"`

	OutDegree Degrees `json:"out_degree"`
	InDegree  Degrees `json:"in_degree"`
	// DepthCounts[d] is the number of nodes at level d (longest path
	// down to a leaf, the paper's concept level).
	DepthCounts []int64 `json:"depth_counts"`

	TopConcepts []ConceptStat `json:"top_concepts"`

	// Plausibility is the distribution of the stored edge plausibility
	// P(x,y) over every edge. ZeroMass is the fraction of edges never
	// scored by the evidence model.
	Plausibility ScoreDist `json:"plausibility"`
	// Typicality is the distribution of all abstraction scores T(x|i)
	// over the profiled instances (every concept's score for every
	// instance, not just the top one).
	Typicality ScoreDist `json:"typicality"`
	// Entropy is the distribution of the per-instance ambiguity signal:
	// the Shannon entropy (bits) of P(concept|instance). ZeroMass is
	// the fraction of unambiguous instances (single concept).
	Entropy ScoreDist `json:"entropy"`
	// SampledInstances is how many instances the typicality and entropy
	// passes actually scored (== Instances unless Options capped it).
	SampledInstances int `json:"sampled_instances"`
}

// Compute profiles g. typ supplies the typicality engine for the
// score-distribution passes; with a nil typ the Typicality and Entropy
// sections stay zero (graph-only profile). The only error source is a
// cyclic graph, which a built or loaded taxonomy cannot be.
func Compute(g graph.Reader, typ *prob.Typicality, opts Options) (*Profile, error) {
	opts = opts.withDefaults()
	levels, err := g.TopoLevels()
	if err != nil {
		return nil, err
	}
	depth, err := g.Level()
	if err != nil {
		return nil, err
	}

	p := &Profile{
		Fingerprint: Fingerprint(g),
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Concepts:    len(g.Concepts()),
		Instances:   len(g.Instances()),
		Roots:       len(g.Roots()),
		TopoLevels:  len(levels),
	}

	// Serial structural pass: cheap per-node counters.
	maxDepth := 0
	outDeg := newDegrees()
	inDeg := newDegrees()
	for id := 0; id < p.Nodes; id++ {
		node := graph.NodeID(id)
		p.LabelBytes += int64(len(g.Label(node)))
		nOut, nIn := len(g.Children(node)), len(g.Parents(node))
		outDeg.add(nOut)
		inDeg.add(nIn)
		if nOut == 0 && nIn == 0 {
			p.Orphans++
		}
		if depth[id] > maxDepth {
			maxDepth = depth[id]
		}
	}
	p.MaxDepth = maxDepth
	outDeg.finish(p.Nodes)
	inDeg.finish(p.Nodes)
	p.OutDegree, p.InDegree = outDeg.Degrees, inDeg.Degrees
	p.DepthCounts = make([]int64, maxDepth+1)
	for _, d := range depth {
		p.DepthCounts[d]++
	}

	ctx := context.Background()
	concepts := g.Concepts()

	// Parallel per-concept pass: plausibility rows and direct instance
	// counts, one slot per concept, reduced serially in Concepts()
	// order.
	type conceptRow struct {
		plaus     []float64
		instances int
	}
	rows := make([]conceptRow, len(concepts))
	if err := parallel.ForEach(ctx, opts.Workers, len(concepts), func(i int) error {
		children := g.Children(concepts[i])
		row := conceptRow{plaus: make([]float64, 0, len(children))}
		for _, e := range children {
			row.plaus = append(row.plaus, e.Plausibility)
			if g.Kind(e.To) == graph.KindInstance {
				row.instances++
			}
		}
		rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	plaus := make([]float64, 0, p.Edges)
	stats := make([]ConceptStat, len(concepts))
	for i, row := range rows {
		plaus = append(plaus, row.plaus...)
		stats[i] = ConceptStat{
			// Clone: g.Label may be a zero-copy view into a memory-mapped
			// snapshot, and the profile (served on /v1/admin/stats, read by
			// metrics gauges) can be inspected after that snapshot is
			// swapped out and unmapped.
			Label:     strings.Clone(g.Label(concepts[i])),
			Instances: row.instances,
			OutDegree: len(row.plaus),
		}
	}
	p.Plausibility = newScoreDist(plaus, unitBounds())
	p.TopConcepts = topConcepts(stats, opts.TopK)

	// Parallel per-instance pass: the full T(x|i) score vector and its
	// ambiguity entropy, one slot per instance, reduced in Instances()
	// order. The typicality engine memoises T(i|x) tables internally
	// and is safe for concurrent use; the scores themselves never
	// depend on cache warmth or scheduling.
	if typ != nil {
		instances := g.Instances()
		if opts.SampleInstances > 0 && opts.SampleInstances < len(instances) {
			instances = instances[:opts.SampleInstances]
		}
		p.SampledInstances = len(instances)
		type instRow struct {
			scores  []float64
			entropy float64
		}
		irows := make([]instRow, len(instances))
		if err := parallel.ForEach(ctx, opts.Workers, len(instances), func(i int) error {
			ranked := typ.ConceptsOf(instances[i])
			row := instRow{scores: make([]float64, len(ranked))}
			for j, r := range ranked {
				row.scores[j] = r.Score
			}
			row.entropy = prob.Entropy(ranked)
			irows[i] = row
			return nil
		}); err != nil {
			return nil, err
		}
		var tscores, entropies []float64
		for _, row := range irows {
			tscores = append(tscores, row.scores...)
			if len(row.scores) > 0 {
				entropies = append(entropies, row.entropy)
			}
		}
		p.Typicality = newScoreDist(tscores, unitBounds())
		p.Entropy = newScoreDist(entropies, entropyBounds())
	}
	return p, nil
}

// topConcepts selects the k concepts with the most direct instances,
// ties broken by label, from the per-concept stats (already in
// Concepts() order, i.e. sorted by label — so the tie-break is a
// stable sort away).
func topConcepts(stats []ConceptStat, k int) []ConceptStat {
	sort.SliceStable(stats, func(i, j int) bool {
		return stats[i].Instances > stats[j].Instances
	})
	if k > len(stats) {
		k = len(stats)
	}
	return append([]ConceptStat(nil), stats[:k]...)
}

// degreeBounds are the upper bounds of the degree histograms.
var degreeBoundsTemplate = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

type degrees struct {
	Degrees
	sum int64
}

func newDegrees() *degrees {
	return &degrees{Degrees: Degrees{Hist: Hist{
		Bounds: append([]float64(nil), degreeBoundsTemplate...),
		Counts: make([]int64, len(degreeBoundsTemplate)+1),
	}}}
}

func (d *degrees) add(deg int) {
	d.Hist.observe(float64(deg))
	d.sum += int64(deg)
	if deg > d.Max {
		d.Max = deg
	}
}

func (d *degrees) finish(nodes int) {
	if nodes > 0 {
		d.Mean = float64(d.sum) / float64(nodes)
	}
}

// Degrees summarises a node-degree distribution.
type Degrees struct {
	Mean float64 `json:"mean"`
	Max  int     `json:"max"`
	Hist Hist    `json:"histogram"`
}

// Hist is a fixed-bucket histogram: Counts[i] holds observations with
// value <= Bounds[i] (and > Bounds[i-1]); the final count is the
// implicit +Inf bucket.
type Hist struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

func (h *Hist) observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
}

// unitBounds buckets scores in [0, 1].
func unitBounds() []float64 {
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
}

// entropyBounds buckets ambiguity entropies in bits.
func entropyBounds() []float64 {
	return []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 4, 6, 8}
}

// oneEps is the tolerance under which a score counts as "mass at 1":
// the noisy-or saturates asymptotically, so exact equality would
// undercount saturated edges.
const oneEps = 1e-9

// ScoreDist summarises a score distribution: exact nearest-rank
// quantiles, the mass concentrated at the distribution's degenerate
// ends, and a fixed-bucket histogram.
type ScoreDist struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// ZeroMass is the fraction of values == 0; OneMass the fraction
	// >= 1-1e-9.
	ZeroMass float64 `json:"zero_mass"`
	OneMass  float64 `json:"one_mass"`
	Hist     Hist    `json:"histogram"`
}

// newScoreDist summarises values (consumed: sorted in place). Quantiles
// are exact nearest-rank over the sorted values; the summation order
// for Mean is the sorted order, so the result is independent of how
// the values were collected.
func newScoreDist(values []float64, bounds []float64) ScoreDist {
	d := ScoreDist{Hist: Hist{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}}
	d.Count = int64(len(values))
	if len(values) == 0 {
		return d
	}
	sort.Float64s(values)
	var sum float64
	var zeros, ones int64
	for _, v := range values {
		sum += v
		d.Hist.observe(v)
		if v == 0 {
			zeros++
		}
		if v >= 1-oneEps {
			ones++
		}
	}
	d.Mean = sum / float64(len(values))
	d.Min, d.Max = values[0], values[len(values)-1]
	d.P50 = quantile(values, 0.50)
	d.P90 = quantile(values, 0.90)
	d.P99 = quantile(values, 0.99)
	d.ZeroMass = float64(zeros) / float64(len(values))
	d.OneMass = float64(ones) / float64(len(values))
	return d
}

// quantile is the nearest-rank quantile of sorted values: the smallest
// value v such that at least ceil(q*n) values are <= v.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
