package kb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleStore() *Store {
	s := NewStore(0)
	s.Add("animal", "cat", 12)
	s.Add("animal", "dog", 9)
	s.Add("company", "IBM", 30)
	s.Add("company", "Proctor and Gamble", 4)
	s.AddCo("animal", "cat", "dog", 6)
	s.AddCo("company", "IBM", "Proctor and Gamble", 2)
	s.AddEvidence("animal", "cat", Evidence{Pattern: 1, PageScore: 0.75, ListLen: 3, Pos: 1})
	s.AddEvidence("animal", "cat", Evidence{Pattern: 4, PageScore: 0.25, ListLen: 5, Pos: 2, Negative: true})
	// Evidence-only pair (negative evidence without an isA count).
	s.AddEvidence("tree", "branch", Evidence{PageScore: 0.5, ListLen: 2, Pos: 1, Negative: true})
	return s
}

func storesEqual(t *testing.T, a, b *Store) {
	t.Helper()
	if a.NumPairs() != b.NumPairs() || a.Total() != b.Total() {
		t.Fatalf("shape mismatch: %v vs %v", a.Stats(), b.Stats())
	}
	a.ForEachPair(func(x, y string, n int64) {
		if b.Count(x, y) != n {
			t.Errorf("count (%s,%s) = %d vs %d", x, y, b.Count(x, y), n)
		}
		ae, be := a.Evidence(x, y), b.Evidence(x, y)
		if len(ae) != len(be) {
			t.Fatalf("evidence length (%s,%s): %d vs %d", x, y, len(ae), len(be))
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Errorf("evidence (%s,%s)[%d]: %+v vs %+v", x, y, i, ae[i], be[i])
			}
		}
	})
}

func TestKBSnapshotRoundTrip(t *testing.T) {
	s := sampleStore()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, s, got)
	if got.CoCount("animal", "dog", "cat") != 6 {
		t.Error("co-occurrence lost")
	}
	evs := got.Evidence("tree", "branch")
	if len(evs) != 1 || !evs[0].Negative {
		t.Errorf("evidence-only pair lost: %v", evs)
	}
	if got.Count("tree", "branch") != 0 {
		t.Error("evidence-only pair gained a count")
	}
}

func TestKBSnapshotEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore(0).Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != 0 {
		t.Error("empty snapshot not empty")
	}
}

func TestKBLoadRejectsCorruption(t *testing.T) {
	s := sampleStore()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte(nil), data...)
	copy(bad, "XXXX")
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrBadKBSnapshot) {
		t.Errorf("bad magic err = %v", err)
	}
	if _, err := Load(bytes.NewReader(data[:len(data)-8])); err == nil {
		t.Error("truncated snapshot accepted")
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)-1] ^= 1
	if _, err := Load(bytes.NewReader(flip)); !errors.Is(err, ErrKBChecksum) {
		t.Errorf("flipped checksum err = %v", err)
	}
	mid := append([]byte(nil), data...)
	mid[len(mid)/2] ^= 0xFF
	if _, err := Load(bytes.NewReader(mid)); err == nil {
		t.Error("corrupted body accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

// Property: random stores survive the round trip.
func TestKBSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(0)
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			x := fmt.Sprintf("c%d", rng.Intn(8))
			y := fmt.Sprintf("i%d", rng.Intn(30))
			s.Add(x, y, int64(rng.Intn(10)+1))
			if rng.Intn(2) == 0 {
				s.AddEvidence(x, y, Evidence{
					Pattern:   rng.Intn(6) + 1,
					PageScore: float64(rng.Intn(100)) / 100,
					ListLen:   rng.Intn(6) + 1,
					Pos:       rng.Intn(4) + 1,
					Negative:  rng.Intn(5) == 0,
				})
			}
			if rng.Intn(3) == 0 {
				s.AddCo(x, y, fmt.Sprintf("i%d", rng.Intn(30)), 1)
			}
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		if got.NumPairs() != s.NumPairs() || got.Total() != s.Total() {
			return false
		}
		okAll := true
		s.ForEachPair(func(x, y string, cnt int64) {
			if got.Count(x, y) != cnt || len(got.Evidence(x, y)) != len(s.Evidence(x, y)) {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
