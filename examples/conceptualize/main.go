// Fine-grained entity recognition and mixed-term abstraction: tag known
// instances in running text with their most typical concepts (the NER
// motivation of the paper's introduction), and conceptualise mixed
// instance/attribute term sets (footnote 1: "headquarters, apple" should
// mean company, not fruit).
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

func main() {
	world := corpus.DefaultWorld(1)
	web := corpus.NewGenerator(world, corpus.GenConfig{Sentences: 15000, Seed: 11}).Generate()
	inputs := make([]extraction.Input, len(web.Sentences))
	for i, s := range web.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	pb, err := core.Build(inputs, core.Config{
		Oracle: func(x, y string) (bool, bool) {
			if !world.KnownTerm(x) || !world.KnownTerm(y) {
				return false, false
			}
			return world.IsTrueIsA(x, y), true
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fine-grained NER over running text.
	recognizer := apps.NewRecognizer(pb)
	texts := []string{
		"Yesterday IBM and Samsung opened offices in New York and Singapore.",
		"She flew from Heathrow to Changi reading Harry Potter.",
		"The vet treated cats, dogs and a parrot for influenza.",
	}
	for _, text := range texts {
		fmt.Println(text)
		for _, m := range recognizer.Recognize(text) {
			fmt.Printf("  %-22s -> %s (%.2f)\n", m.Text, m.Concept, m.Score)
		}
		fmt.Println()
	}

	// Mixed abstraction: attributes disambiguate instances.
	mixed := apps.NewMixedAbstractor(pb, web.Sentences)
	for _, terms := range [][]string{
		{"apple"},
		{"headquarters", "apple"},
		{"apple", "banana"},
	} {
		fmt.Printf("%v ->", terms)
		for _, r := range mixed.Abstract(terms, 3) {
			fmt.Printf(" %s(%.2f)", r.Label, r.Score)
		}
		fmt.Println()
	}
}
