package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/eval"
	"repro/internal/extraction"
	"repro/internal/taxonomy"
)

// searchConcepts are the fine-grained concepts used as semantic queries.
var searchConcepts = []string{
	"tropical country", "it company", "domestic animal",
	"european city", "bric country", "oil company", "wild animal",
	"developing country", "asian city", "classic movie",
}

// Search runs the Section 5.3.1 semantic-search comparison.
func (s *Setup) Search() (apps.SearchReport, string) {
	idx := apps.NewPageIndex(s.Corpus.Sentences)
	rep := apps.EvaluateSearch(s.PB, idx, s.World, searchConcepts, 10)
	return rep, table("Semantic web search (Section 5.3.1): relevance of top-10 results",
		[]string{"Engine", "Relevance"},
		[][]string{
			{"keyword (word-for-word)", pct(rep.KeywordRelevance)},
			{"semantic (Probase rewrite)", pct(rep.SemanticRelevance)},
		})
}

// Fig12 runs the attribute-seeding comparison.
func (s *Setup) Fig12() (apps.AttributeReport, string) {
	keys := []string{
		"company", "city", "country", "disease", "book", "university",
		"river", "festival", "airline", "museum", "actor", "drug",
		"film", "restaurant", "mountain", "website",
	}
	rep := apps.EvaluateAttributes(s.PB, s.World, s.Corpus.Sentences, keys, 5, 5)
	return rep, table("Figure 12: attribute precision by seed policy",
		[]string{"Seeds", "Precision"},
		[][]string{
			{"Pasca (manual seeds)", pct(rep.PascaPrecision)},
			{"Probase (typicality seeds)", pct(rep.ProbasePrecision)},
		})
}

// ShortText runs the tweet-clustering comparison of Section 5.3.2.
func (s *Setup) ShortText() (apps.ShortTextReport, string) {
	topics := []string{"company", "city", "animal", "disease", "movie", "food"}
	rep := apps.EvaluateShortText(s.PB, s.World, topics, 40, 5)
	return rep, table("Short-text clustering (Section 5.3.2): purity",
		[]string{"Representation", "Purity"},
		[][]string{
			{"bag of words", pct(rep.BoWPurity)},
			{"Probase concepts", pct(rep.ConceptPurity)},
		})
}

// WebTables runs the column-header inference of Section 5.3.2.
func (s *Setup) WebTables() (apps.TableReport, string) {
	rep := apps.EvaluateTables(s.PB, s.World, 200, 9)
	return rep, table("Web tables (Section 5.3.2): header inference",
		[]string{"Metric", "Value"},
		[][]string{
			{"tables", itoa(rep.Tables)},
			{"headers inferred", itoa(rep.Inferred)},
			{"precision", pct(rep.Precision())},
		})
}

// BaselineReport compares semantic and syntactic extraction.
type BaselineReport struct {
	SyntacticPrecision float64
	SyntacticPairs     int
	SyntacticRecall    float64
	SemanticPrecision  float64
	SemanticPairs      int
	SemanticRecall     float64
}

// Baseline runs the Section 2.1 comparison on the shared corpus.
func (s *Setup) Baseline() (BaselineReport, string) {
	synStore := baseline.SyntacticExtractor{}.Run(s.Inputs)
	var rep BaselineReport
	rep.SyntacticPrecision, rep.SyntacticPairs = eval.StorePrecision(synStore, s.World)
	rep.SyntacticRecall, _, _ = eval.Recall(synStore, s.World)
	rep.SemanticPrecision, rep.SemanticPairs = eval.StorePrecision(s.PB.Store, s.World)
	rep.SemanticRecall, _, _ = eval.Recall(s.PB.Store, s.World)
	return rep, table("Section 2.1: semantic vs syntactic iteration",
		[]string{"Extractor", "Pairs", "Precision", "Recall"},
		[][]string{
			{"syntactic (KnowItAll-style)", itoa(rep.SyntacticPairs), pct(rep.SyntacticPrecision), pct(rep.SyntacticRecall)},
			{"semantic (Probase)", itoa(rep.SemanticPairs), pct(rep.SemanticPrecision), pct(rep.SemanticRecall)},
		})
}

// JaccardReport is the Section 3.5 similarity ablation. The builds run
// without the fragment-adoption pass so the similarity function alone
// determines the merges (pure Algorithm 2).
type JaccardReport struct {
	AbsSenses, AbsMulti   int
	AbsHorizontal         int
	JacSenses, JacMulti   int
	JacHorizontal         int
	JacConfluenceFailures int // seeds (of 20) where merge order changed the result
	PaperExampleFails     bool
}

// Jaccard rebuilds the taxonomy with the rejected relative similarity and
// measures the order-dependence the paper predicts (Section 3.5: Jaccard
// violates Property 4, so merge results depend on operation order).
func (s *Setup) Jaccard() (JaccardReport, string) {
	groups := s.PB.Extraction.Groups
	abs := taxonomy.Build(groups, taxonomy.Config{DisableAdoption: true})
	jac := taxonomy.Build(groups, taxonomy.Config{Sim: taxonomy.Jaccard{Tau: 0.5}, DisableAdoption: true})
	rep := JaccardReport{
		AbsSenses: abs.Stats.Senses, AbsMulti: abs.Stats.MultiSense,
		AbsHorizontal: abs.Stats.HorizontalOps,
		JacSenses:     jac.Stats.Senses, JacMulti: jac.Stats.MultiSense,
		JacHorizontal: jac.Stats.HorizontalOps,
	}
	// Confluence probes. First a constructed witness of Property 4's
	// violation: A can merge with either C or D, but whichever union
	// forms first dilutes the Jaccard score below τ for the other — the
	// final partition depends on merge order.
	witness := []*taxonomy.Local{
		taxonomy.NewLocal("it company", []string{"Microsoft", "IBM"}),
		taxonomy.NewLocal("it company", []string{"Microsoft", "IBM", "HP"}),
		taxonomy.NewLocal("it company", []string{"Microsoft", "IBM", "Intel", "Google"}),
	}
	for seed := int64(0); seed < 20; seed++ {
		if _, _, same := taxonomy.OrderExperiment(witness, taxonomy.Jaccard{Tau: 0.5}, seed); !same {
			rep.PaperExampleFails = true
		}
	}
	// Then a subsample of real groups under busy super-concepts.
	locals := busyLocals(groups, 120)
	for seed := int64(0); seed < 20; seed++ {
		if _, _, same := taxonomy.OrderExperiment(locals, taxonomy.Jaccard{Tau: 0.5}, seed); !same {
			rep.JacConfluenceFailures++
		}
	}
	return rep, table("Section 3.5 ablation: absolute overlap vs Jaccard (no adoption pass)",
		[]string{"Similarity", "Horizontal merges", "Senses", "Multi-sense labels", "Order-dependent"},
		[][]string{
			{"absolute overlap (paper)", itoa(rep.AbsHorizontal), itoa(rep.AbsSenses), itoa(rep.AbsMulti), "no (Theorem 1)"},
			{"Jaccard tau=0.5", itoa(rep.JacHorizontal), itoa(rep.JacSenses), itoa(rep.JacMulti),
				fmt.Sprintf("paper example: %s; corpus sample: %d/20 seeds", boolStr(rep.PaperExampleFails), rep.JacConfluenceFailures)},
		})
}

// busyLocals selects up to n groups belonging to the three most frequent
// super-concepts, so merge candidates actually overlap.
func busyLocals(groups []extraction.Group, n int) []*taxonomy.Local {
	freq := map[string]int{}
	for _, g := range groups {
		freq[g.Super]++
	}
	top := make([]string, 0, 3)
	for len(top) < 3 {
		best, bestN := "", 0
		for s, c := range freq {
			if c > bestN {
				best, bestN = s, c
			}
		}
		if best == "" {
			break
		}
		top = append(top, best)
		delete(freq, best)
	}
	busy := make(map[string]bool, len(top))
	for _, s := range top {
		busy[s] = true
	}
	var locals []*taxonomy.Local
	for _, g := range groups {
		if busy[g.Super] && len(g.Subs) >= 2 {
			locals = append(locals, taxonomy.NewLocal(g.Super, g.Subs))
			if len(locals) == n {
				break
			}
		}
	}
	return locals
}

// MergeOrderReport is the Theorem 2 operation-count experiment.
type MergeOrderReport struct {
	StagedOps    int
	RandomOpsMin int
	RandomOpsMax int
	Confluent    bool
}

// MergeOrder compares the staged schedule against random schedules on a
// subsample of the real extraction groups under busy super-concepts,
// where merges are frequent.
func (s *Setup) MergeOrder() (MergeOrderReport, string) {
	locals := busyLocals(s.PB.Extraction.Groups, 120)
	rep := MergeOrderReport{Confluent: true}
	for seed := int64(0); seed < 10; seed++ {
		staged, random, same := taxonomy.OrderExperiment(locals, taxonomy.AbsoluteOverlap{Delta: 2}, seed)
		rep.StagedOps = staged
		if !same {
			rep.Confluent = false
		}
		if seed == 0 || random < rep.RandomOpsMin {
			rep.RandomOpsMin = random
		}
		if random > rep.RandomOpsMax {
			rep.RandomOpsMax = random
		}
	}
	return rep, table("Theorems 1-2: merge-order experiment (150-sentence subsample)",
		[]string{"Schedule", "Operations"},
		[][]string{
			{"horizontal-first (staged)", itoa(rep.StagedOps)},
			{"random order (min over 10 seeds)", itoa(rep.RandomOpsMin)},
			{"random order (max over 10 seeds)", itoa(rep.RandomOpsMax)},
			{"confluent", boolStr(rep.Confluent)},
		})
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Extras reports overall corpus-level quality used in EXPERIMENTS.md.
type ExtrasReport struct {
	Precision float64
	Pairs     int
	Recall    float64
	Nodes     int
	Edges     int
}

// Extras summarises Γ quality and taxonomy size.
func (s *Setup) Extras() (ExtrasReport, string) {
	var rep ExtrasReport
	rep.Precision, rep.Pairs = eval.StorePrecision(s.PB.Store, s.World)
	rep.Recall, _, _ = eval.Recall(s.PB.Store, s.World)
	rep.Nodes = s.PB.Graph.NumNodes()
	rep.Edges = s.PB.Graph.NumEdges()
	return rep, table("Overall extraction quality",
		[]string{"Metric", "Value"},
		[][]string{
			{"distinct pairs", itoa(rep.Pairs)},
			{"precision (all pairs judged)", pct(rep.Precision)},
			{"recall (world direct pairs)", pct(rep.Recall)},
			{"taxonomy nodes", itoa(rep.Nodes)},
			{"taxonomy edges", itoa(rep.Edges)},
		})
}

// InterpretExp runs the two-concept query-interpretation prototype of
// Section 5.3.1 ("database conferences in asian cities"): both concepts
// rewrite into typical instances, and instance pairs are ranked by
// PMI-style word association at sentence granularity.
func (s *Setup) InterpretExp() (apps.InterpretReport, string) {
	idx := apps.NewSentenceIndex(s.Corpus.Sentences)
	rep := apps.EvaluateInterpretation(s.PB, idx, s.World,
		[]string{"companies", "IT companies", "airlines"},
		[]string{"countries", "european countries"}, 5)
	return rep, table("Two-concept query interpretation (Section 5.3.1)",
		[]string{"Metric", "Value"},
		[][]string{
			{"queries", itoa(rep.Queries)},
			{"instance pairs returned", itoa(rep.Pairs)},
			{"pairs matching ground truth", itoa(rep.Correct)},
			{"precision", pct(rep.Precision())},
		})
}
