package extraction

import (
	"testing"

	"repro/internal/hearst"
	"repro/internal/kb"
)

func TestCanonicalSuper(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Tropical Countries", "tropical country"},
		{"animals", "animal"},
		{"IT companies", "it company"},
		{"company", "company"},
	}
	for _, tt := range tests {
		if got := CanonicalSuper(tt.in); got != tt.want {
			t.Errorf("CanonicalSuper(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestCanonicalSub(t *testing.T) {
	tests := []struct{ in, want string }{
		{"cats", "cat"},
		{"steam turbines", "steam turbine"},
		{"New York", "New York"},
		{"Gone with the Wind", "Gone with the Wind"},
		{"Proctor and Gamble", "Proctor and Gamble"},
		{"  IBM ", "IBM"},
		{"oak", "oak"},
	}
	for _, tt := range tests {
		if got := CanonicalSub(tt.in); got != tt.want {
			t.Errorf("CanonicalSub(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// seedStore builds a Γ with animal/dog knowledge mirroring the paper's
// Example 2(1) discussion.
func seedStore() *kb.Store {
	s := kb.NewStore(0)
	for i := 0; i < 20; i++ {
		s.Add("animal", "cat", 1)
		s.Add("animal", "dog", 1)
	}
	s.Add("animal", "rabbit", 5)
	s.Add("dog", "poodle", 3) // dogs exist as a super, but never with cat
	return s
}

func TestDetectSuperPrefersSemanticReading(t *testing.T) {
	cfg := DefaultConfig()
	r := &resolver{cfg: cfg.withDefaults(), store: seedStore()}
	m, ok := hearst.Parse("animals other than dogs such as cats")
	if !ok {
		t.Fatal("parse failed")
	}
	st := &sentenceState{match: m, status: make([]posState, len(m.Segments))}
	super, ok := r.detectSuper(st)
	if !ok {
		t.Fatal("detectSuper undecided despite strong evidence")
	}
	if super != "animal" {
		t.Errorf("super = %q, want animal", super)
	}
}

func TestDetectSuperUndecidedOnEmptyStore(t *testing.T) {
	cfg := DefaultConfig()
	r := &resolver{cfg: cfg.withDefaults(), store: kb.NewStore(0)}
	m, _ := hearst.Parse("animals other than dogs such as cats")
	st := &sentenceState{match: m, status: make([]posState, len(m.Segments))}
	if _, ok := r.detectSuper(st); ok {
		t.Error("detectSuper decided with no knowledge")
	}
}

func TestDetectSuperModifierStripping(t *testing.T) {
	// "domestic animals" is unknown, but stripping the modifier reaches
	// "animal", which vouches for cats (Section 2.3.2).
	cfg := DefaultConfig()
	r := &resolver{cfg: cfg.withDefaults(), store: seedStore()}
	m, ok := hearst.Parse("domestic animals other than dogs such as cats")
	if !ok {
		t.Fatal("parse failed")
	}
	st := &sentenceState{match: m, status: make([]posState, len(m.Segments))}
	super, ok := r.detectSuper(st)
	if !ok {
		t.Fatal("detectSuper undecided")
	}
	if super != "domestic animal" {
		t.Errorf("super = %q, want domestic animal", super)
	}
}

func TestSegmentChunksCompoundName(t *testing.T) {
	s := kb.NewStore(0)
	for i := 0; i < 10; i++ {
		s.Add("company", "Proctor and Gamble", 1)
		s.Add("company", "IBM", 1)
		s.AddCo("company", "IBM", "Proctor and Gamble", 1)
	}
	cfg := DefaultConfig()
	r := &resolver{cfg: cfg.withDefaults(), store: s}
	reading, ok := r.segmentChunks([]string{"Proctor", "Gamble"}, "company", []string{"IBM"})
	if !ok {
		t.Fatal("undecided despite evidence")
	}
	if len(reading) != 1 || reading[0] != "Proctor and Gamble" {
		t.Errorf("reading = %v, want the compound name", reading)
	}
}

func TestSegmentChunksSplitsRealLists(t *testing.T) {
	s := kb.NewStore(0)
	for i := 0; i < 10; i++ {
		s.Add("animal", "cat", 1)
		s.Add("animal", "dog", 1)
		s.AddCo("animal", "cat", "dog", 1)
	}
	cfg := DefaultConfig()
	r := &resolver{cfg: cfg.withDefaults(), store: s}
	reading, ok := r.segmentChunks([]string{"cat", "dog"}, "animal", nil)
	if !ok {
		t.Fatal("undecided despite evidence")
	}
	if len(reading) != 2 || reading[0] != "cat" || reading[1] != "dog" {
		t.Errorf("reading = %v, want [cat dog]", reading)
	}
}

func TestSegmentChunksDefaults(t *testing.T) {
	cfg := DefaultConfig()
	r := &resolver{cfg: cfg.withDefaults(), store: kb.NewStore(0)}
	// With an empty Γ and capitalised fragments, the compound-name
	// default applies (Downey-style association).
	reading, ok := r.segmentChunks([]string{"Proctor", "Gamble"}, "company", nil)
	if !ok || len(reading) != 1 || reading[0] != "Proctor and Gamble" {
		t.Errorf("reading = %v ok=%v, want compound default", reading, ok)
	}
	// Common-noun chunks with no evidence stay undecided.
	if _, ok := r.segmentChunks([]string{"cat", "dog"}, "animal", nil); ok {
		t.Error("decided common-noun split with empty Γ")
	}
}

func TestResolveScopeRejectsTrailingJunk(t *testing.T) {
	s := kb.NewStore(0)
	for i := 0; i < 5; i++ {
		s.Add("country", "China", 1)
		s.Add("country", "Japan", 1)
		s.Add("country", "Australia", 1)
	}
	cfg := DefaultConfig()
	r := &resolver{cfg: cfg.withDefaults(), store: s}
	m, ok := hearst.Parse("representatives in North America, Europe, Australia, Japan, China, and other countries")
	if !ok {
		t.Fatal("parse failed")
	}
	st := &sentenceState{match: m, status: make([]posState, len(m.Segments)), readings: make([][]string, len(m.Segments))}
	d := r.resolve(0, st)
	if !d.done {
		t.Fatalf("sentence not finalized: %+v", d)
	}
	accepted := map[string]bool{}
	for _, a := range d.accepts {
		for _, y := range a.reading {
			accepted[y] = true
		}
	}
	for _, want := range []string{"China", "Japan", "Australia"} {
		if !accepted[want] {
			t.Errorf("%s not accepted: %v", want, accepted)
		}
	}
	for _, junk := range []string{"Europe", "North America"} {
		if accepted[junk] {
			t.Errorf("junk %s accepted", junk)
		}
	}
}

func TestResolveFallbackFirstPosition(t *testing.T) {
	// Empty Γ: only the well-formed first candidate is accepted
	// (Observation 1), the rest stays undecided.
	cfg := DefaultConfig()
	r := &resolver{cfg: cfg.withDefaults(), store: kb.NewStore(0)}
	m, ok := hearst.Parse("companies such as IBM, Nokia, Samsung")
	if !ok {
		t.Fatal("parse failed")
	}
	st := &sentenceState{match: m, status: make([]posState, len(m.Segments)), readings: make([][]string, len(m.Segments))}
	d := r.resolve(0, st)
	if d.done {
		t.Error("sentence should stay pending")
	}
	if len(d.accepts) != 1 || d.accepts[0].pos != 0 || d.accepts[0].reading[0] != "IBM" {
		t.Errorf("accepts = %+v, want IBM at position 0", d.accepts)
	}
}

func TestResolveFallbackRejectsMalformedFirst(t *testing.T) {
	cfg := DefaultConfig()
	r := &resolver{cfg: cfg.withDefaults(), store: kb.NewStore(0)}
	m, ok := hearst.Parse("companies such as Proctor and Gamble")
	if !ok {
		t.Fatal("parse failed")
	}
	st := &sentenceState{match: m, status: make([]posState, len(m.Segments)), readings: make([][]string, len(m.Segments))}
	d := r.resolve(0, st)
	if len(d.accepts) != 0 {
		t.Errorf("ambiguous first candidate accepted with empty Γ: %+v", d.accepts)
	}
	if d.done {
		t.Error("sentence should stay pending")
	}
}
