package extraction

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/kb"
)

// runOnCorpus generates a deterministic corpus and extracts from it.
func runOnCorpus(t testing.TB, sentences int, cfg Config) (*Result, *corpus.World) {
	t.Helper()
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: sentences, Seed: 11}).Generate()
	inputs := make([]Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = Input{Text: s.Text, PageScore: s.PageScore}
	}
	return Run(inputs, cfg), w
}

func precisionOf(res *Result, w *corpus.World) (float64, int) {
	total, correct := 0, 0
	res.Store.ForEachPair(func(x, y string, n int64) {
		total++
		if w.IsTrueIsA(x, y) {
			correct++
		}
	})
	if total == 0 {
		return 0, 0
	}
	return float64(correct) / float64(total), total
}

func TestRunEndToEndPrecisionAndRecall(t *testing.T) {
	res, w := runOnCorpus(t, 12000, DefaultConfig())
	if res.Parsed == 0 {
		t.Fatal("nothing parsed")
	}
	prec, total := precisionOf(res, w)
	if total < 300 {
		t.Fatalf("only %d pairs extracted", total)
	}
	if prec < 0.85 {
		t.Errorf("precision = %.3f over %d pairs, want >= 0.85", prec, total)
	}
	// Core pairs from the paper's examples must be present.
	if res.Store.Count("animal", "cat") == 0 {
		t.Error("(animal, cat) missing")
	}
	if res.Store.Count("company", "IBM") == 0 {
		t.Error("(company, IBM) missing")
	}
	// The classic wrong reading must not dominate.
	if bad := res.Store.Count("dog", "cat"); bad > res.Store.Count("animal", "cat")/5 {
		t.Errorf("(dog, cat) count %d too high", bad)
	}
}

func TestRunCompoundNameResolved(t *testing.T) {
	res, _ := runOnCorpus(t, 12000, DefaultConfig())
	pg := res.Store.Count("company", "Proctor and Gamble")
	proctor := res.Store.Count("company", "Proctor")
	if pg == 0 {
		t.Error("(company, Proctor and Gamble) missing")
	}
	if proctor > 0 && proctor >= pg {
		t.Errorf("split reading won: Proctor=%d, P&G=%d", proctor, pg)
	}
}

func TestRunIterationDynamics(t *testing.T) {
	res, _ := runOnCorpus(t, 12000, DefaultConfig())
	if len(res.Rounds) < 2 {
		t.Fatalf("only %d rounds", len(res.Rounds))
	}
	r1, r2 := res.Rounds[0], res.Rounds[1]
	if r2.TotalPairs <= r1.TotalPairs {
		t.Errorf("round 2 added nothing: %d -> %d", r1.TotalPairs, r2.TotalPairs)
	}
	// Figure 10's signature: with ambiguity in the corpus, round 2 brings
	// a large share of the later gains because round 1 could not resolve
	// ambiguous sentences.
	if r2.NewPairs == 0 {
		t.Error("round 2 discovered no new pairs")
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.TotalPairs != res.Store.NumPairs() {
		t.Errorf("final stats inconsistent: %d vs %d", last.TotalPairs, res.Store.NumPairs())
	}
	// Monotone accumulation.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].TotalPairs < res.Rounds[i-1].TotalPairs {
			t.Errorf("pair count regressed at round %d", i+1)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg1 := DefaultConfig()
	cfg1.Workers = 1
	cfgN := DefaultConfig()
	cfgN.Workers = 8
	res1, _ := runOnCorpus(t, 4000, cfg1)
	resN, _ := runOnCorpus(t, 4000, cfgN)
	if res1.Store.NumPairs() != resN.Store.NumPairs() {
		t.Fatalf("pair counts differ: %d vs %d", res1.Store.NumPairs(), resN.Store.NumPairs())
	}
	mismatch := false
	res1.Store.ForEachPair(func(x, y string, n int64) {
		if resN.Store.Count(x, y) != n {
			mismatch = true
		}
	})
	if mismatch {
		t.Error("pair counts differ between worker counts")
	}
}

func TestRunFirstRoundTracking(t *testing.T) {
	res, _ := runOnCorpus(t, 6000, DefaultConfig())
	if len(res.FirstRound) != int(res.Store.NumPairs()) {
		t.Errorf("FirstRound has %d entries, store %d pairs", len(res.FirstRound), res.Store.NumPairs())
	}
	for p, r := range res.FirstRound {
		if r < 1 || r > len(res.Rounds) {
			t.Fatalf("pair %v has round %d outside [1,%d]", p, r, len(res.Rounds))
		}
	}
	through1 := len(res.PairsThroughRound(1))
	throughAll := len(res.PairsThroughRound(len(res.Rounds)))
	if through1 >= throughAll {
		t.Errorf("round 1 already had all pairs: %d vs %d", through1, throughAll)
	}
	if throughAll != int(res.Store.NumPairs()) {
		t.Errorf("PairsThroughRound(last) = %d, want %d", throughAll, res.Store.NumPairs())
	}
}

func TestRunEmptyAndNoiseInputs(t *testing.T) {
	res := Run(nil, DefaultConfig())
	if res.Parsed != 0 || res.Store.NumPairs() != 0 {
		t.Errorf("empty input produced output: %+v", res.Store.Stats())
	}
	res = Run([]Input{
		{Text: "no patterns here at all", PageScore: 0.5},
		{Text: "another plain sentence", PageScore: 0.5},
	}, DefaultConfig())
	if res.Parsed != 0 {
		t.Errorf("noise parsed as patterns: %d", res.Parsed)
	}
}

func TestRunRecordsEvidence(t *testing.T) {
	res, _ := runOnCorpus(t, 6000, DefaultConfig())
	evs := res.Store.Evidence("company", "IBM")
	if len(evs) == 0 {
		t.Fatal("no evidence recorded for (company, IBM)")
	}
	for _, ev := range evs {
		if ev.Pattern < 1 || ev.Pattern > 6 {
			t.Errorf("bad pattern id %d", ev.Pattern)
		}
		if ev.PageScore <= 0 || ev.PageScore > 1 {
			t.Errorf("bad page score %v", ev.PageScore)
		}
		if ev.Pos < 1 {
			t.Errorf("bad position %d", ev.Pos)
		}
	}
}

func TestRunModifiedConceptsHarvested(t *testing.T) {
	// Section 2.3.2's recall claim: modified concepts like "tropical
	// country" are harvested even though they are rarer.
	res, _ := runOnCorpus(t, 12000, DefaultConfig())
	found := 0
	for _, x := range []string{"tropical country", "developing country", "domestic animal", "it company"} {
		if res.Store.HasSuper(x) {
			found++
		}
	}
	if found < 3 {
		t.Errorf("only %d/4 modified concepts harvested", found)
	}
}

func TestPairsThroughRoundEmpty(t *testing.T) {
	res := &Result{FirstRound: map[kb.Pair]int{}}
	if got := res.PairsThroughRound(3); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}
