package nlp

import "testing"

func TestTrailingNounPhrase(t *testing.T) {
	tests := []struct{ in, want string }{
		{"we compete with the largest companies", "largest companies"},
		{"in tropical countries", "tropical countries"},
		{"representatives in North America", "North America"},
		{"such as", ""},
		{"the", ""},
		{"domestic animals", "domestic animals"},
	}
	for _, tt := range tests {
		if got := TrailingNounPhrase(tt.in); got != tt.want {
			t.Errorf("TrailingNounPhrase(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestLeadingNounPhrase(t *testing.T) {
	tests := []struct{ in, want string }{
		{"classic movies such as", "classic movies"},
		{"cats and dogs", "cats"},
		{"the movies", ""},
	}
	for _, tt := range tests {
		if got := LeadingNounPhrase(tt.in); got != tt.want {
			t.Errorf("LeadingNounPhrase(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestIsProperNounPhrase(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"IBM", true},
		{"Proctor and Gamble", true},
		{"New York", true},
		{"cats", false},
		{"Gone with the Wind", false}, // "with" is lower-case and not a connective
		{"the Louvre", true},          // leading article skipped as connective
		{"", false},
		{"and", false}, // connectives alone are not a proper noun
	}
	for _, tt := range tests {
		if got := IsProperNounPhrase(tt.in); got != tt.want {
			t.Errorf("IsProperNounPhrase(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestHeadNounAndStripModifier(t *testing.T) {
	if got := HeadNoun("industrialized countries"); got != "countries" {
		t.Errorf("HeadNoun = %q", got)
	}
	if got := StripModifier("domestic animals"); got != "animals" {
		t.Errorf("StripModifier = %q", got)
	}
	if got := StripModifier("animals"); got != "animals" {
		t.Errorf("StripModifier single word = %q", got)
	}
	if got := StripModifier("very large software companies"); got != "large software companies" {
		t.Errorf("StripModifier multi = %q", got)
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("The") || IsStopWord("companies") {
		t.Error("IsStopWord misclassifies")
	}
}

func TestTrimTrailingClause(t *testing.T) {
	tests := []struct{ in, want string }{
		{"cats exist in many regions", "cats"},
		{"Gone with the Wind", "Gone with the Wind"},
		{"dogs and rabbits live with humans", "dogs and rabbits"},
		{"IBM", "IBM"},
		{"", ""},
		{"say what", ""},
	}
	for _, tt := range tests {
		if got := TrimTrailingClause(tt.in); got != tt.want {
			t.Errorf("TrimTrailingClause(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
