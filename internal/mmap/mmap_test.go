package mmap

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenReadsFileContents(t *testing.T) {
	want := bytes.Repeat([]byte("probase snapshot bytes "), 1024)
	m, err := Open(writeTemp(t, want))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !bytes.Equal(m.Bytes(), want) {
		t.Fatalf("mapped %d bytes differ from file contents (%d bytes)", len(m.Bytes()), len(want))
	}
}

func TestOpenEmptyFile(t *testing.T) {
	m, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Bytes()) != 0 {
		t.Fatalf("empty file mapped to %d bytes", len(m.Bytes()))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Fatal("Open succeeded on a missing file")
	}
}

// Close must be idempotent: the snapshot lifetime machinery (refcounted
// epochs, error paths that both close) may reach it more than once.
func TestCloseIdempotent(t *testing.T) {
	m, err := Open(writeTemp(t, []byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if m.Bytes() != nil {
		t.Fatal("Bytes non-nil after Close")
	}
}
