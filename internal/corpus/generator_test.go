package corpus

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hearst"
)

func testCorpus(t *testing.T, n int) *Corpus {
	t.Helper()
	w := DefaultWorld(1)
	g := NewGenerator(w, GenConfig{Sentences: n, Seed: 7})
	return g.Generate()
}

func TestGenerateDeterministic(t *testing.T) {
	w := DefaultWorld(1)
	a := NewGenerator(w, GenConfig{Sentences: 500, Seed: 7}).Generate()
	b := NewGenerator(w, GenConfig{Sentences: 500, Seed: 7}).Generate()
	if len(a.Sentences) != len(b.Sentences) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Sentences), len(b.Sentences))
	}
	for i := range a.Sentences {
		if a.Sentences[i] != b.Sentences[i] {
			t.Fatalf("sentence %d differs:\n%q\n%q", i, a.Sentences[i].Text, b.Sentences[i].Text)
		}
	}
	c := NewGenerator(w, GenConfig{Sentences: 500, Seed: 8}).Generate()
	same := 0
	for i := range a.Sentences {
		if a.Sentences[i].Text == c.Sentences[i].Text {
			same++
		}
	}
	if same == len(a.Sentences) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenerateShape(t *testing.T) {
	c := testCorpus(t, 2000)
	if len(c.Sentences) != 2000 {
		t.Fatalf("got %d sentences", len(c.Sentences))
	}
	pages := map[int32]float64{}
	matched := 0
	for _, s := range c.Sentences {
		if s.PageScore <= 0 || s.PageScore > 1 {
			t.Fatalf("page score out of range: %v", s.PageScore)
		}
		if prev, ok := pages[s.PageID]; ok && prev != s.PageScore {
			t.Fatalf("page %d has inconsistent scores", s.PageID)
		}
		pages[s.PageID] = s.PageScore
		if _, ok := hearst.Parse(s.Text); ok {
			matched++
		}
	}
	if len(pages) < 50 {
		t.Errorf("only %d pages", len(pages))
	}
	frac := float64(matched) / float64(len(c.Sentences))
	if frac < 0.5 || frac > 0.9 {
		t.Errorf("hearst match rate = %.2f, want within [0.5, 0.9]", frac)
	}
}

// Most pattern sentences must parse to a candidate super set containing a
// surface form whose ground truth validates at least one extracted pair.
func TestGeneratedSentencesMostlyTruthful(t *testing.T) {
	c := testCorpus(t, 3000)
	w := c.World
	total, truthful := 0, 0
	for _, s := range c.Sentences {
		m, ok := hearst.Parse(s.Text)
		if !ok {
			continue
		}
		total++
		found := false
		for _, x := range m.Supers {
			for _, seg := range m.Segments {
				if w.IsTrueIsA(x, seg.Whole) {
					found = true
				}
				for _, p := range seg.Parts {
					if w.IsTrueIsA(x, p) {
						found = true
					}
				}
			}
		}
		if found {
			truthful++
		}
	}
	if total == 0 {
		t.Fatal("no pattern sentences")
	}
	frac := float64(truthful) / float64(total)
	if frac < 0.80 {
		t.Errorf("truthful fraction = %.3f, want >= 0.80", frac)
	}
	if frac > 0.995 {
		t.Errorf("truthful fraction = %.3f; error injection seems inactive", frac)
	}
}

func TestGeneratorCoversAllPatterns(t *testing.T) {
	c := testCorpus(t, 5000)
	seen := map[hearst.PatternID]int{}
	for _, s := range c.Sentences {
		if m, ok := hearst.Parse(s.Text); ok {
			seen[m.Pattern]++
		}
	}
	for _, p := range []hearst.PatternID{
		hearst.PatternSuchAs, hearst.PatternSuchNPAs, hearst.PatternIncluding,
		hearst.PatternAndOther, hearst.PatternOrOther, hearst.PatternEspecially,
	} {
		if seen[p] == 0 {
			t.Errorf("pattern %v never generated", p)
		}
	}
}

func TestGeneratorEmitsAmbiguityFeatures(t *testing.T) {
	c := testCorpus(t, 8000)
	otherThan, compounds, junkLists := 0, 0, 0
	for _, s := range c.Sentences {
		if strings.Contains(s.Text, " other than ") {
			otherThan++
		}
		if strings.Contains(s.Text, "Proctor and Gamble") || strings.Contains(s.Text, "Tom and Jerry") ||
			strings.Contains(s.Text, "War and Peace") || strings.Contains(s.Text, "Johnson and Johnson") {
			compounds++
		}
		if strings.Contains(s.Text, "representatives in ") {
			junkLists++
		}
	}
	if otherThan == 0 {
		t.Error("no 'other than' decoys generated")
	}
	if compounds == 0 {
		t.Error("no compound-name instances generated")
	}
	if junkLists == 0 {
		t.Error("no junk-prefixed lists generated")
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	c := testCorpus(t, 300)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSentences(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(c.Sentences) {
		t.Fatalf("round trip length %d != %d", len(got), len(c.Sentences))
	}
	for i := range got {
		if got[i].Text != c.Sentences[i].Text || got[i].PageID != c.Sentences[i].PageID {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, got[i], c.Sentences[i])
		}
		if d := got[i].PageScore - c.Sentences[i].PageScore; d > 1e-6 || d < -1e-6 {
			t.Fatalf("row %d score mismatch", i)
		}
	}
}

func TestReadSentencesRejectsGarbage(t *testing.T) {
	if _, err := ReadSentences(strings.NewReader("only one field\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadSentences(strings.NewReader("x\t0.5\ttext\n")); err == nil {
		t.Error("bad page id accepted")
	}
	if _, err := ReadSentences(strings.NewReader("1\tnope\ttext\n")); err == nil {
		t.Error("bad score accepted")
	}
	got, err := ReadSentences(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %v, %v", got, err)
	}
}
