// Web-table understanding (Section 5.3.2): infer the hidden header of a
// table column by jointly abstracting its cells with T(x|i).
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

func main() {
	world := corpus.DefaultWorld(1)
	web := corpus.NewGenerator(world, corpus.GenConfig{Sentences: 15000, Seed: 11}).Generate()
	inputs := make([]extraction.Input, len(web.Sentences))
	for i, s := range web.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	pb, err := core.Build(inputs, core.Config{
		Oracle: func(x, y string) (bool, bool) {
			if !world.KnownTerm(x) || !world.KnownTerm(y) {
				return false, false
			}
			return world.IsTrueIsA(x, y), true
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A few hand-written columns with hidden headers.
	columns := [][]string{
		{"Heathrow", "Gatwick", "Changi", "Narita"},
		{"Linux", "Solaris", "FreeBSD"},
		{"Everest", "Kilimanjaro", "Mont Blanc", "K2"},
		{"Harvard", "Stanford", "Yale", "Oxford"},
	}
	for _, col := range columns {
		header, ok := apps.InferHeader(pb, col)
		if !ok {
			header = "(unknown)"
		}
		fmt.Printf("%-45s -> header: %s\n", strings.Join(col, ", "), header)
	}

	// Aggregate evaluation over generated tables.
	rep := apps.EvaluateTables(pb, world, 200, 9)
	fmt.Printf("\nheader inference over %d generated tables: %d inferred, precision %.1f%% (paper: 96%%)\n",
		rep.Tables, rep.Inferred, 100*rep.Precision())
}
