package core

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
	"repro/internal/extraction"
)

// buildFixture builds a Probase over a deterministic synthetic corpus,
// with the world itself as the training oracle (standing in for WordNet).
func buildFixture(t testing.TB, sentences int) (*Probase, *corpus.World) {
	t.Helper()
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: sentences, Seed: 11}).Generate()
	inputs := make([]extraction.Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	oracle := func(x, y string) (bool, bool) {
		if !w.KnownTerm(x) || !w.KnownTerm(y) {
			return false, false
		}
		return w.IsTrueIsA(x, y), true
	}
	pb, err := Build(inputs, Config{Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	return pb, w
}

func TestBuildEndToEnd(t *testing.T) {
	pb, _ := buildFixture(t, 10000)
	if pb.Graph.NumNodes() < 200 {
		t.Fatalf("taxonomy too small: %d nodes", pb.Graph.NumNodes())
	}
	if len(pb.Info.Rounds) < 2 {
		t.Errorf("rounds = %d", len(pb.Info.Rounds))
	}
	if pb.Info.Parsed == 0 {
		t.Error("nothing parsed")
	}
}

func TestInstantiation(t *testing.T) {
	pb, w := buildFixture(t, 10000)
	top := pb.InstancesOf("companies", 10)
	if len(top) == 0 {
		t.Fatal("no instances of companies")
	}
	correct := 0
	for _, r := range top {
		if w.IsTrueIsA("companies", r.Label) {
			correct++
		}
	}
	if correct < len(top)*7/10 {
		t.Errorf("only %d/%d top companies are true", correct, len(top))
	}
	// Scores descend.
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Error("ranking not sorted")
		}
	}
	if got := pb.InstancesOf("no such concept", 5); got != nil {
		t.Errorf("unknown concept returned %v", got)
	}
}

func TestAbstraction(t *testing.T) {
	pb, _ := buildFixture(t, 10000)
	concepts := pb.ConceptsOf("IBM", 10)
	if len(concepts) == 0 {
		t.Fatal("no concepts for IBM")
	}
	found := false
	for _, r := range concepts {
		if BaseLabel(r.Label) == "company" || BaseLabel(r.Label) == "it company" {
			found = true
		}
	}
	if !found {
		t.Errorf("IBM's concepts miss company: %v", concepts)
	}
}

func TestConceptualizeSet(t *testing.T) {
	pb, _ := buildFixture(t, 10000)
	ranked, ok := pb.Conceptualize([]string{"China", "India", "Brazil"}, 8)
	if !ok || len(ranked) == 0 {
		t.Fatal("set conceptualisation failed")
	}
	// The tight concepts should outrank plain "country" (Example 1).
	pos := map[string]int{}
	for i, r := range ranked {
		pos[BaseLabel(r.Label)] = i + 1
	}
	tight := -1
	for _, c := range []string{"bric country", "developing country", "emerging market"} {
		if p, ok := pos[c]; ok && (tight == -1 || p < tight) {
			tight = p
		}
	}
	if tight == -1 {
		t.Fatalf("no tight concept in %v", ranked)
	}
	if p, ok := pos["country"]; ok && p < tight {
		t.Errorf("plain country (rank %d) beats tight concept (rank %d): %v", p, tight, ranked)
	}
	if _, ok := pb.Conceptualize([]string{"zzz unknown"}, 5); ok {
		t.Error("unknown set conceptualised")
	}
}

func TestSenseSeparationSurvivesPipeline(t *testing.T) {
	pb, _ := buildFixture(t, 14000)
	senses := pb.SensesOf("plants")
	if len(senses) < 2 {
		t.Fatalf("plant senses = %v, want 2", senses)
	}
	organic := pb.InstancesOfSense(senses[0], 50)
	industrial := pb.InstancesOfSense(senses[1], 50)
	if len(organic) == 0 || len(industrial) == 0 {
		t.Fatal("a sense has no instances")
	}
	org := map[string]bool{}
	for _, r := range organic {
		org[r.Label] = true
	}
	ind := map[string]bool{}
	for _, r := range industrial {
		ind[r.Label] = true
	}
	// One sense is botanical, the other industrial; they must not both
	// contain the same marker instances.
	botMarkers := []string{"moss", "ivy", "bamboo"}
	indMarkers := []string{"pump", "boiler", "generator"}
	botIn := func(m map[string]bool) int {
		n := 0
		for _, b := range botMarkers {
			if m[b] {
				n++
			}
		}
		return n
	}
	indIn := func(m map[string]bool) int {
		n := 0
		for _, b := range indMarkers {
			if m[b] {
				n++
			}
		}
		return n
	}
	// Whichever sense is botanical should dominate botanical markers, and
	// vice versa.
	if botIn(org)+indIn(ind) > 0 && botIn(ind)+indIn(org) >= botIn(org)+indIn(ind) {
		t.Errorf("senses not separated: org(bot=%d,ind=%d) ind(bot=%d,ind=%d)",
			botIn(org), indIn(org), botIn(ind), indIn(ind))
	}
}

func TestPlausibilityQueries(t *testing.T) {
	pb, _ := buildFixture(t, 10000)
	good := pb.Plausibility("companies", "IBM")
	if good < 0.5 {
		t.Errorf("P(company, IBM) = %v, want >= 0.5", good)
	}
	if got := pb.Plausibility("companies", "zzz never seen"); got != 0 {
		t.Errorf("unknown pair plausibility = %v", got)
	}
	if good <= pb.Plausibility("dogs", "cat") {
		t.Error("true pair not more plausible than the classic error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	pb, _ := buildFixture(t, 8000)
	var buf bytes.Buffer
	if err := pb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph.NumNodes() != pb.Graph.NumNodes() || loaded.Graph.NumEdges() != pb.Graph.NumEdges() {
		t.Fatal("snapshot changed graph shape")
	}
	a := pb.InstancesOf("companies", 5)
	b := loaded.InstancesOf("companies", 5)
	if len(a) != len(b) {
		t.Fatalf("rankings differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Errorf("rank %d: %q vs %q", i, a[i].Label, b[i].Label)
		}
	}
	// Loaded snapshots answer plausibility from edges.
	if loaded.Plausibility("companies", a[0].Label) <= 0 {
		t.Error("loaded plausibility is zero for a top instance")
	}
}

func TestBaseLabel(t *testing.T) {
	if BaseLabel("plant#2") != "plant" || BaseLabel("plant") != "plant" || BaseLabel("#weird") != "#weird" {
		t.Error("BaseLabel wrong")
	}
}
