// Package snapshot loads taxonomy snapshots produced by probase-build.
// Every snapshot flavour is accepted and auto-detected by magic:
// graph-only ("PBGR" v1 adjacency lists or "PBC2" v2 CSR, written by
// Probase.Save/SaveVersion) and full ("PBFL", written by
// Probase.SaveFull, carrying Γ alongside the graph). The loader is
// shared by every binary that consumes snapshots (probase-query,
// probase-serve) so the flavour-sniffing logic lives in exactly one
// place.
package snapshot

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

// fullMagic marks a full (graph + Γ) snapshot; anything else is handed
// to the graph-only loader, which validates its own magic.
const fullMagic = "PBFL"

// Open reads the snapshot file at path, auto-detecting its flavour.
func Open(path string) (*core.Probase, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pb, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	return pb, nil
}

// Load reads a snapshot from r, auto-detecting its flavour. The magic
// bytes are sniffed through a buffered reader that then hands the whole
// stream (sniffed bytes included) to the flavour's loader, so r can be
// any stream — a pipe or a network body, not just a seekable file.
func Load(r io.Reader) (*core.Probase, error) {
	br := bufio.NewReader(r)
	peeked, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	// Peek returns a view into the bufio buffer, which the load below
	// overwrites — copy the magic out before reading on.
	magic := string(peeked)
	var pb *core.Probase
	if magic == fullMagic {
		pb, err = core.LoadFull(br)
	} else {
		pb, err = core.Load(br)
	}
	if err != nil {
		return nil, err
	}
	// Record which on-disk format the snapshot used; the serving layer
	// surfaces it on /v1/healthz as part of the snapshot identity.
	pb.Format = magic
	return pb, nil
}
