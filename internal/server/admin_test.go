package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/taxstats"
)

func TestAdminStatsEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec, _ := get(t, s, "/v1/admin/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		SnapshotFormat string            `json:"snapshot_format"`
		UptimeMS       int64             `json:"uptime_ms"`
		Profile        *taxstats.Profile `json:"profile"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Profile == nil {
		t.Fatal("no profile in admin stats")
	}
	pb := testProbase(t)
	if resp.Profile.Nodes != pb.Graph.NumNodes() || resp.Profile.Edges != pb.Graph.NumEdges() {
		t.Errorf("profile shape %d/%d, graph %d/%d",
			resp.Profile.Nodes, resp.Profile.Edges, pb.Graph.NumNodes(), pb.Graph.NumEdges())
	}
	if resp.Profile.Fingerprint != taxstats.Fingerprint(pb.Graph) {
		t.Error("profile fingerprint does not match the served graph")
	}
	if resp.Profile.Typicality.Count == 0 || resp.Profile.Plausibility.Count == 0 {
		t.Errorf("score distributions not profiled: %+v", resp.Profile)
	}
	// In-memory build: no snapshot format.
	if resp.SnapshotFormat != "" {
		t.Errorf("snapshot format = %q for an in-memory build", resp.SnapshotFormat)
	}
	// Method discipline matches the other endpoints.
	req := httptest.NewRequest(http.MethodPost, "/v1/admin/stats", nil)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rr.Code)
	}
}

// gaugeValue extracts one plain (unlabelled or exact-labelled) gauge
// sample from a /metrics exposition.
func gaugeValue(t *testing.T, exposition, series string) string {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (.+)$`)
	m := re.FindStringSubmatch(exposition)
	if m == nil {
		t.Fatalf("series %q not found in exposition:\n%s", series, exposition)
	}
	return m[1]
}

func scrape(t *testing.T, s *Server) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	return rec.Body.String()
}

// TestSwapRefreshesStats is the Rebind acceptance criterion: after
// swapping in a rebound snapshot with different content, the same
// /metrics registry scrapes the new probase_snapshot_* values, healthz
// reports the new identity, and the hot-query cache is purged.
func TestSwapRefreshesStats(t *testing.T) {
	pb := testProbase(t)
	s := New(pb, Config{})

	// Warm the cache so the purge is observable.
	if rec, _ := get(t, s, "/v1/instances?concept=companies&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("warmup failed: %d", rec.Code)
	}
	if s.cache.Len() == 0 {
		t.Fatal("cache not warmed")
	}

	before := scrape(t, s)
	nodesBefore := gaugeValue(t, before, "probase_snapshot_nodes")
	conceptsBefore := gaugeValue(t, before, "probase_snapshot_concepts")
	_, health := get(t, s, "/v1/healthz")
	fpBefore, _ := health["fingerprint"].(string)
	if fpBefore == "" {
		t.Fatal("healthz has no fingerprint")
	}

	// Grow the taxonomy and swap the rebound engine in.
	g := graph.NewBuilderFrom(pb.Graph)
	sc := g.Intern("swapped-concept")
	for _, inst := range []string{"swapped-a", "swapped-b", "swapped-c"} {
		g.AddEdge(sc, g.Intern(inst), 5, 0.9)
	}
	npb, err := pb.Rebind(g.Freeze())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Swap(npb); err != nil {
		t.Fatal(err)
	}

	if s.cache.Len() != 0 {
		t.Errorf("cache holds %d stale entries after swap", s.cache.Len())
	}
	after := scrape(t, s)
	if nodesAfter := gaugeValue(t, after, "probase_snapshot_nodes"); nodesAfter == nodesBefore {
		t.Errorf("probase_snapshot_nodes did not refresh: still %s", nodesAfter)
	}
	if conceptsAfter := gaugeValue(t, after, "probase_snapshot_concepts"); conceptsAfter == conceptsBefore {
		t.Errorf("probase_snapshot_concepts did not refresh: still %s", conceptsAfter)
	}
	if !strings.Contains(after, `probase_snapshot_score{dist="plausibility",stat="count"}`) {
		t.Error("score-distribution gauges missing after swap")
	}
	_, health = get(t, s, "/v1/healthz")
	if fpAfter, _ := health["fingerprint"].(string); fpAfter == fpBefore {
		t.Error("healthz fingerprint did not change after swap")
	}

	// The new taxonomy answers queries.
	rec, body := get(t, s, "/v1/instances?concept=swapped-concept&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-swap query failed: %d %s", rec.Code, rec.Body.String())
	}
	if results, _ := body["results"].([]any); len(results) != 3 {
		t.Errorf("post-swap results = %v, want the 3 swapped instances", body["results"])
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(4, 8)
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		c.Put(k, []byte(k))
	}
	if c.Len() == 0 {
		t.Fatal("cache empty before purge")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("cache holds %d entries after purge", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("purged key still readable")
	}
	// The cache stays usable after a purge.
	c.Put("x", []byte("y"))
	if v, ok := c.Get("x"); !ok || string(v) != "y" {
		t.Error("cache unusable after purge")
	}
}
