package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/extraction"
	"repro/internal/taxstats"
)

// buildSnapshot writes a small taxonomy snapshot to a temp file.
func buildSnapshot(t *testing.T, extra ...string) string {
	t.Helper()
	sentences := append([]string{
		"animals such as cats, dogs and rabbits live here.",
		"domestic animals such as cats and dogs are popular.",
		"companies such as IBM, Microsoft and Google compete.",
		"large companies such as IBM and Microsoft hire.",
		"pets such as cats and dogs need care.",
	}, extra...)
	inputs := make([]extraction.Input, len(sentences))
	for i, s := range sentences {
		inputs[i] = extraction.Input{Text: s, PageScore: 0.9}
	}
	pb, err := core.Build(inputs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runTool(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

func TestProfileText(t *testing.T) {
	snap := buildSnapshot(t)
	out, err := runTool(t, snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fingerprint", "PBC2", "nodes", "plausibility", "top concepts"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestProfileJSONValidates(t *testing.T) {
	snap := buildSnapshot(t)
	out, err := runTool(t, "-json", snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := benchfmt.ValidateBytesAs("out", []byte(out), InspectSchema); err != nil {
		t.Fatalf("emitted report fails validation: %v", err)
	}
	var r benchfmt.Report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatal(err)
	}
	exp, ok := r.Experiment("profile")
	if !ok {
		t.Fatal("no profile experiment")
	}
	raw, _ := json.Marshal(exp.Result)
	var p taxstats.Profile
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatal(err)
	}
	if p.Nodes == 0 || p.Nodes != r.Options.Sentences {
		t.Errorf("profile nodes %d, options.sentences %d", p.Nodes, r.Options.Sentences)
	}
	if p.Fingerprint == "" || p.Plausibility.Count == 0 {
		t.Errorf("profile incomplete: %+v", p)
	}

	// Round-trip through -validate-json.
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runTool(t, "-validate-json", path); err != nil {
		t.Errorf("-validate-json rejected our own report: %v", err)
	}
	if _, err := runTool(t, "-validate-json", snap); err == nil {
		t.Error("-validate-json accepted a binary snapshot")
	}
}

func TestDiffIdenticalPasses(t *testing.T) {
	snap := buildSnapshot(t)
	out, err := runTool(t, "-diff", snap, snap)
	if err != nil {
		t.Fatalf("self-diff failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "no drift") {
		t.Errorf("self-diff output:\n%s", out)
	}
}

func TestDiffPerturbedFails(t *testing.T) {
	old := buildSnapshot(t)
	new := buildSnapshot(t,
		"vehicles such as cars, trucks and bikes move.",
		"fast vehicles such as cars and planes race.",
	)
	out, err := runTool(t, "-diff", old, new)
	if err == nil {
		t.Fatalf("perturbed diff passed without thresholds:\n%s", out)
	}
	ee, ok := err.(*exitError)
	if !ok || ee.code != 1 {
		t.Errorf("err = %v, want exit-1 gate failure", err)
	}
}

func writeThresholds(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "thresholds.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffGate(t *testing.T) {
	old := buildSnapshot(t)
	new := buildSnapshot(t,
		"vehicles such as cars, trucks and bikes move.",
		"fast vehicles such as cars and planes race.",
	)
	loose := writeThresholds(t, `{
		"schema": "probase-inspect-thresholds/v1",
		"metrics": {"nodes": {"max_rel": 100.0}}
	}`)
	if out, err := runTool(t, "-diff", "-thresholds", loose, old, new); err != nil {
		t.Errorf("loose gate failed: %v\n%s", err, out)
	}
	tight := writeThresholds(t, `{
		"schema": "probase-inspect-thresholds/v1",
		"metrics": {"nodes": {"max_abs": 0.5}}
	}`)
	out, err := runTool(t, "-diff", "-thresholds", tight, old, new)
	if err == nil {
		t.Fatalf("tight gate passed:\n%s", out)
	}
	if ee, ok := err.(*exitError); !ok || ee.code != 1 {
		t.Errorf("err = %v, want exit-1 gate failure", err)
	}
	if !strings.Contains(out, "BREACH") {
		t.Errorf("breach not reported:\n%s", out)
	}
	// A malformed budget is a usage error (exit 2), not a gate verdict.
	bad := writeThresholds(t, `{"schema": "probase-inspect-thresholds/v1", "metrics": {"nodez": {"max_abs": 1}}}`)
	if _, err := runTool(t, "-diff", "-thresholds", bad, old, new); err == nil {
		t.Error("unknown-metric thresholds accepted")
	} else if _, ok := err.(*exitError); ok {
		t.Errorf("thresholds parse error returned a gate exit: %v", err)
	}
}

func TestDiffJSONReport(t *testing.T) {
	snap := buildSnapshot(t)
	out, err := runTool(t, "-diff", "-json", snap, snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := benchfmt.ValidateBytesAs("out", []byte(out), InspectSchema); err != nil {
		t.Fatalf("diff report fails validation: %v", err)
	}
	var r benchfmt.Report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"profile_old", "profile_new", "drift"} {
		if _, ok := r.Experiment(name); !ok {
			t.Errorf("report missing experiment %q", name)
		}
	}
	exp, _ := r.Experiment("drift")
	raw, _ := json.Marshal(exp.Result)
	var drift taxstats.DriftReport
	if err := json.Unmarshal(raw, &drift); err != nil {
		t.Fatal(err)
	}
	if drift.FingerprintChanged {
		t.Error("self-diff reports a fingerprint change")
	}
}

func TestUsageErrors(t *testing.T) {
	if _, err := runTool(t); err == nil {
		t.Error("no-args run succeeded")
	}
	if _, err := runTool(t, "-diff", "only-one"); err == nil {
		t.Error("-diff with one arg succeeded")
	}
	if _, err := runTool(t, filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("missing snapshot succeeded")
	}
}
