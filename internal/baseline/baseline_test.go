package baseline

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/extraction"
)

func TestReferenceScalesMatchPaperOrdering(t *testing.T) {
	w := corpus.DefaultWorld(1)
	wn := NewWordNetRef(w)
	wiki := NewWikiTaxonomyRef(w)
	yago := NewYAGORef(w)
	fb := NewFreebaseRef(w)

	// Table 1 ordering (scaled): Freebase tiny concept space; WordNet <
	// WikiTaxonomy < YAGO.
	if fb.NumConcepts() >= wn.NumConcepts() {
		t.Errorf("Freebase concepts %d >= WordNet %d", fb.NumConcepts(), wn.NumConcepts())
	}
	if wn.NumConcepts() >= wiki.NumConcepts() {
		t.Errorf("WordNet %d >= WikiTaxonomy %d", wn.NumConcepts(), wiki.NumConcepts())
	}
	if wiki.NumConcepts() >= yago.NumConcepts() {
		t.Errorf("WikiTaxonomy %d >= YAGO %d", wiki.NumConcepts(), yago.NumConcepts())
	}
}

func TestFreebaseCharacteristics(t *testing.T) {
	w := corpus.DefaultWorld(1)
	fb := NewFreebaseRef(w)
	m, err := eval.Hierarchy("Freebase", fb.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if m.IsAPairs != 0 {
		t.Errorf("Freebase has %d concept-subconcept pairs, want 0 (Table 4)", m.IsAPairs)
	}
	// Huge flat instance sets: far more instances per concept than YAGO.
	yago := NewYAGORef(w)
	fbAvg := float64(len(fb.Instances)) / float64(fb.NumConcepts())
	yagoAvg := float64(len(yago.Instances)) / float64(yago.NumConcepts())
	if fbAvg <= yagoAvg {
		t.Errorf("Freebase instance density %.1f <= YAGO %.1f", fbAvg, yagoAvg)
	}
}

func TestWordNetHierarchyIsDeep(t *testing.T) {
	w := corpus.DefaultWorld(1)
	wn := NewWordNetRef(w)
	m, err := eval.Hierarchy("WordNet", wn.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if m.IsAPairs == 0 {
		t.Fatal("WordNet reference has no hierarchy")
	}
	if m.MaxLevel < 3 {
		t.Errorf("WordNet max level = %d, want >= 3", m.MaxLevel)
	}
}

func TestSyntacticBaselineLimitations(t *testing.T) {
	inputs := []extraction.Input{
		{Text: "animals other than dogs such as cats"},
		{Text: "animals such as cats and horses"},
		{Text: "industrialized countries such as USA and Germany"},
		{Text: "companies such as IBM, Nokia, Proctor and Gamble"},
	}
	store := SyntacticExtractor{}.Run(inputs)
	// Limitation 1: wrong super-concept under "other than" — and since
	// "cats" is not a proper noun, nothing at all is extracted there.
	if store.Count("animal", "cats") > 0 {
		t.Error("baseline should not learn (animal, cats): common nouns are skipped")
	}
	// Limitation 2: proper nouns only.
	if store.Count("country", "USA") == 0 {
		t.Error("baseline missed (country, USA)")
	}
	// Limitation 3: head noun only — the modified concept is lost.
	if store.Count("industrialized country", "USA") > 0 {
		t.Error("baseline should not keep modified concepts")
	}
	// Limitation 4: compounds are always split.
	if store.Count("company", "Proctor and Gamble") > 0 {
		t.Error("baseline should split Proctor and Gamble")
	}
	if store.Count("company", "Proctor") == 0 {
		t.Error("baseline should extract the split fragment Proctor")
	}
}

// The Section 2.1 comparison on a real corpus: the semantic extractor
// beats the syntactic baseline on recall at comparable-or-better
// precision.
func TestSemanticBeatsSyntacticOnCorpus(t *testing.T) {
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 10000, Seed: 11}).Generate()
	inputs := make([]extraction.Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	synStore := SyntacticExtractor{}.Run(inputs)
	semRes := extraction.Run(inputs, extraction.DefaultConfig())

	synPrec, synTotal := eval.StorePrecision(synStore, w)
	semPrec, semTotal := eval.StorePrecision(semRes.Store, w)
	synRec, _, _ := eval.Recall(synStore, w)
	semRec, _, _ := eval.Recall(semRes.Store, w)

	t.Logf("syntactic: precision=%.3f pairs=%d recall=%.3f", synPrec, synTotal, synRec)
	t.Logf("semantic:  precision=%.3f pairs=%d recall=%.3f", semPrec, semTotal, semRec)
	if semRec <= synRec {
		t.Errorf("semantic recall %.3f <= syntactic %.3f", semRec, synRec)
	}
	if semPrec < synPrec-0.03 {
		t.Errorf("semantic precision %.3f clearly below syntactic %.3f", semPrec, synPrec)
	}
}
