package kb

import (
	"bytes"
	"testing"
)

// fuzzSeedStore builds a small Γ with counts, evidence and
// co-occurrence entries whose snapshot seeds the fuzz corpus.
func fuzzSeedStore() *Store {
	s := NewStore(8)
	s.Add("company", "IBM", 12)
	s.Add("company", "Microsoft", 9)
	s.Add("animal", "cat", 4)
	s.AddEvidence("company", "IBM", Evidence{Pattern: 1, PageScore: 0.8, ListLen: 3, Pos: 1})
	s.AddEvidence("company", "IBM", Evidence{Pattern: 2, PageScore: 0.4, ListLen: 5, Pos: 4, Negative: true})
	s.AddCo("company", "IBM", "Microsoft", 3)
	return s
}

// FuzzLoad feeds arbitrary bytes to the Γ snapshot loader. Corrupt or
// truncated input must produce an error — never a panic or an
// implausible allocation. A successful load must round-trip.
func FuzzLoad(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedStore().Save(&valid); err != nil {
		f.Fatal(err)
	}
	snap := valid.Bytes()
	f.Add(snap)
	f.Add(snap[:len(snap)/2])           // truncated
	f.Add(snap[:4])                     // magic only
	f.Add([]byte{})                     // empty
	f.Add([]byte("PBKBxxxxxxxxxxxxxx")) // magic + garbage
	f.Add([]byte("XXXX"))               // wrong magic
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)-1] ^= 0xFF // broken checksum
	f.Add(corrupt)
	bigStrings := append([]byte("PBKB\x01"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // huge string count
	f.Add(bigStrings)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("accepted snapshot fails to save: %v", err)
		}
		s2, err := Load(&buf)
		if err != nil {
			t.Fatalf("round-trip load failed: %v", err)
		}
		a, b := s.Stats(), s2.Stats()
		if a.Pairs != b.Pairs || a.Supers != b.Supers {
			t.Fatalf("round-trip changed shape: %+v -> %+v", a, b)
		}
	})
}
