// Command probase-build runs the full Probase pipeline over a corpus file
// (iterative extraction -> taxonomy construction -> probabilistic
// annotation) and writes a binary taxonomy snapshot.
//
// Usage:
//
//	probase-build -corpus corpus.tsv -o probase.bin [-scale 1] [-rounds 12] [-full]
//	probase-build -base probase.bin -corpus delta.tsv -o probase.bin   (incremental)
//
// The -scale flag must match the scale the corpus was generated with; the
// expanded world is used as the plausibility model's training oracle (the
// role WordNet plays in the paper). With -full, Γ (evidence and
// co-occurrence statistics) is persisted alongside the graph, together
// with the resumable build state a later -base run extends from.
//
// With -base, the corpus file is treated as a *delta* — only the
// sentences appended since the base snapshot was built — and the
// pipeline re-scores just the dirty set the delta touches. The output is
// byte-identical to a from-scratch build over the concatenated corpus.
// The base must be a -full snapshot (it carries the extraction
// checkpoint, merge state and model counts); -scale and the taxonomy
// settings must match the base build's.
// -snapshot-version selects the binary format: 2 (default) writes the
// CSR "PBC2" layout that probase-serve loads with a single sequential
// read; 1 writes the legacy "PBGR" adjacency-list format.
//
// Human progress (per-round extraction counters with an ETA, merge-stage
// timings, the final summary) goes to stderr so stdout stays clean for
// piping; -quiet suppresses it. With -stats-out the same telemetry is
// written as a machine-readable JSON report ("-" for stdout).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "probase-build:", err)
		os.Exit(1)
	}
}

// statsReport is the -stats-out document: per-stage pipeline telemetry
// plus the build's inputs and outputs, so one file answers "what did
// this build do and how long did each algorithm take".
type statsReport struct {
	Build         obs.BuildInfo    `json:"build"`
	Corpus        string           `json:"corpus"`
	Sentences     int              `json:"sentences"`
	Parsed        int              `json:"parsed"`
	Rounds        int              `json:"rounds"`
	Pairs         int64            `json:"pairs"`
	Concepts      int64            `json:"concepts"`
	GraphNodes    int              `json:"graph_nodes"`
	GraphEdges    int              `json:"graph_edges"`
	TotalSeconds  float64          `json:"total_seconds"`
	Stages        []obs.StageStats `json:"stages"`
	Trace         *traceSummary    `json:"trace,omitempty"`
	SnapshotPath  string           `json:"snapshot_path"`
	SnapshotBytes int64            `json:"snapshot_bytes"`
	// Delta is present on -base builds: the incremental work actually
	// done (dirty roots/labels/pairs, reused state, Algorithm 3 seeds).
	Delta *core.DeltaStats `json:"delta,omitempty"`
	Base  string           `json:"base,omitempty"`
}

// traceSummary is the build trace rendered for the report: every stage
// and round as a span, tagged with the paper algorithm it implements,
// so the report joins span timings to Algorithms 1-3 directly.
type traceSummary struct {
	TraceID    string      `json:"trace_id"`
	DurationUS int64       `json:"duration_us"`
	Spans      []traceSpan `json:"spans"`
}

type traceSpan struct {
	Name       string            `json:"name"`
	Algorithm  string            `json:"algorithm,omitempty"`
	OffsetUS   int64             `json:"offset_us"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// summarizeTrace flattens a finished build trace into the report shape.
func summarizeTrace(td obs.TraceData) *traceSummary {
	ts := &traceSummary{
		TraceID:    td.TraceID,
		DurationUS: td.DurationUS,
		Spans:      make([]traceSpan, 0, len(td.Spans)),
	}
	for _, sp := range td.Spans {
		ts.Spans = append(ts.Spans, traceSpan{
			Name:       sp.Name,
			Algorithm:  obs.AlgorithmForStage(sp.Name),
			OffsetUS:   sp.OffsetUS,
			DurationUS: sp.DurationUS,
			Attrs:      sp.Attrs,
		})
	}
	return ts
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("probase-build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		corpusPath = fs.String("corpus", "corpus.tsv", "corpus file from corpusgen")
		out        = fs.String("o", "probase.bin", "output snapshot path")
		scale      = fs.Float64("scale", 1, "world scale used when generating the corpus")
		rounds     = fs.Int("rounds", 0, "max extraction rounds (0 = default)")
		workers    = fs.Int("workers", 0, "worker pool size for all parallel build stages (0 = GOMAXPROCS)")
		full       = fs.Bool("full", false, "also persist Γ (evidence, co-occurrence) and the resumable build state")
		basePath   = fs.String("base", "", "delta mode: extend this -full snapshot over the (delta-only) corpus")
		snapVer    = fs.Int("snapshot-version", core.SnapshotVersionDefault, "snapshot format version: 1 = legacy PBGR adjacency lists, 2 = PBC2 CSR (fast load)")
		quiet      = fs.Bool("quiet", false, "suppress progress output on stderr")
		statsOut   = fs.String("stats-out", "", "write a JSON build report to this file ('-' for stdout)")
		version    = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(stdout, "probase-build")
		return nil
	}

	progress := func(format string, a ...any) {
		if !*quiet {
			fmt.Fprintf(stderr, format, a...)
		}
	}
	stats := obs.NewStatsCollector()
	reporters := obs.MultiReporter{stats}
	if !*quiet {
		reporters = append(reporters, obs.NewProgressReporter(stderr, "probase-build"))
	}
	// A build is one trace: the -stats-out report includes every stage
	// and round as spans tagged with the algorithm they implement.
	var spanRep *obs.SpanReporter
	if *statsOut != "" {
		tracer := obs.NewTracer(obs.TracerConfig{SampleRate: 1, BufferSize: 4})
		spanRep = obs.NewSpanReporter(tracer, "probase-build")
		reporters = append(reporters, spanRep)
	}
	var reporter obs.StageReporter = reporters
	progress("probase-build: %s\n", obs.Version())

	f, err := os.Open(*corpusPath)
	if err != nil {
		return err
	}
	sentences, err := corpus.ReadSentences(f)
	f.Close()
	if err != nil {
		return err
	}
	inputs := make([]extraction.Input, len(sentences))
	for i, s := range sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}

	w := corpus.DefaultWorld(*scale)
	cfg := core.Config{
		Oracle: func(x, y string) (bool, bool) {
			if !w.KnownTerm(x) || !w.KnownTerm(y) {
				return false, false
			}
			return w.IsTrueIsA(x, y), true
		},
		Reporter: reporter,
	}
	cfg.Extraction.MaxRounds = *rounds
	cfg.Workers = *workers

	start := time.Now()
	var pb *core.Probase
	if *basePath != "" {
		bf, err := os.Open(*basePath)
		if err != nil {
			return err
		}
		base, err := core.LoadFull(bf)
		bf.Close()
		if err != nil {
			return fmt.Errorf("loading base snapshot: %w", err)
		}
		pb, err = core.DeltaBuild(base, inputs, cfg)
		if err != nil {
			return fmt.Errorf("delta build: %w", err)
		}
	} else {
		var err error
		pb, err = core.Build(inputs, cfg)
		if err != nil {
			return err
		}
	}

	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	save := func(w io.Writer) error { return pb.SaveVersion(w, *snapVer) }
	if *full {
		save = func(w io.Writer) error { return pb.SaveFullVersion(w, *snapVer) }
	}
	saveStart := time.Now()
	reporter.StageStart(obs.StageSnapshotSave)
	if err := save(of); err != nil {
		of.Close()
		return err
	}
	err = of.Close()
	reporter.StageEnd(obs.StageSnapshotSave, time.Since(saveStart))
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	st := pb.Store.Stats()
	if *basePath != "" {
		d := pb.Info.Delta
		progress(
			"probase-build: delta over %s: %d dirty roots, %d/%d labels re-merged, %d pairs retrained, %d alg3 seeds\n",
			*basePath, d.DirtyRoots, d.DirtyLabels, d.DirtyLabels+d.ReusedLabels, d.DirtyPairs, d.DirtySeeds)
	}
	progress(
		"probase-build: %d sentences parsed, %d rounds, %d pairs, %d concepts; taxonomy %d nodes / %d edges; %v\n",
		pb.Info.Parsed, len(pb.Info.Rounds), st.Pairs, st.Supers,
		pb.Graph.NumNodes(), pb.Graph.NumEdges(), elapsed.Round(time.Millisecond))

	if *statsOut != "" {
		report := statsReport{
			Build:        obs.Version(),
			Corpus:       *corpusPath,
			Sentences:    len(sentences),
			Parsed:       pb.Info.Parsed,
			Rounds:       len(pb.Info.Rounds),
			Pairs:        st.Pairs,
			Concepts:     int64(st.Supers),
			GraphNodes:   pb.Graph.NumNodes(),
			GraphEdges:   pb.Graph.NumEdges(),
			TotalSeconds: elapsed.Seconds(),
			Stages:       stats.Stages(),
			SnapshotPath: *out,
		}
		if *basePath != "" {
			d := pb.Info.Delta
			report.Delta = &d
			report.Base = *basePath
		}
		if spanRep != nil {
			if td, ok := spanRep.Finish(); ok {
				report.Trace = summarizeTrace(td)
			}
		}
		if fi, err := os.Stat(*out); err == nil {
			report.SnapshotBytes = fi.Size()
		}
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding stats report: %w", err)
		}
		raw = append(raw, '\n')
		if *statsOut == "-" {
			_, err = stdout.Write(raw)
		} else {
			err = os.WriteFile(*statsOut, raw, 0o644)
		}
		if err != nil {
			return fmt.Errorf("writing stats report: %w", err)
		}
	}
	return nil
}
