package apps

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nlp"
)

// Tweet is one short text with its hidden topic label.
type Tweet struct {
	Text  string
	Terms []string // the entity mentions inside the text
	Topic int      // ground-truth topic index
}

// tweetTemplates phrase the mentions; none contains the topic concept
// label, so bag-of-words clustering cannot see the topic directly.
var tweetTemplates = []string{
	"just read about %s and %s today",
	"cannot stop thinking about %s, also %s",
	"%s vs %s — thoughts?",
	"my weekend: %s, %s, coffee",
	"hot take: %s is better than %s",
}

// GenerateTweets emits tweets whose mentions are drawn from one topic
// concept each — the clustering workload of Section 5.3.2.
func GenerateTweets(w *corpus.World, topics []string, perTopic int, seed int64) []Tweet {
	rng := rand.New(rand.NewSource(seed))
	var out []Tweet
	for topicIdx, key := range topics {
		insts := w.InstancesOf(key)
		if len(insts) < 4 {
			continue
		}
		for i := 0; i < perTopic; i++ {
			a := insts[rng.Intn(len(insts)/2)] // bias to typical mentions
			b := insts[rng.Intn(len(insts))]
			for b == a {
				b = insts[rng.Intn(len(insts))]
			}
			tmpl := tweetTemplates[rng.Intn(len(tweetTemplates))]
			out = append(out, Tweet{
				Text:  fmt.Sprintf(tmpl, a, b),
				Terms: []string{a, b},
				Topic: topicIdx,
			})
		}
	}
	// Shuffle deterministically so clusters are not trivially ordered.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// BoWVector is the bag-of-words representation (the LDA-era baseline's
// input: text as a bag of words, Section 5.3.2).
func BoWVector(text string) Vector {
	v := Vector{}
	for _, tok := range strings.Fields(strings.ToLower(stripPunct(text))) {
		if nlp.IsStopWord(tok) {
			continue
		}
		v[tok]++
	}
	return v
}

// ConceptVector represents a tweet by its most typical concepts with
// their typicality scores, via Probase conceptualisation.
func ConceptVector(pb *core.Probase, terms []string, k int) Vector {
	v := Vector{}
	if ranked, ok := pb.Conceptualize(terms, k); ok {
		for _, r := range ranked {
			v["c:"+core.BaseLabel(r.Label)] += r.Score
		}
	}
	// Per-term abstraction fills in when the joint set is unknown.
	if len(v) == 0 {
		for _, term := range terms {
			for _, r := range pb.ConceptsOf(term, k) {
				v["c:"+core.BaseLabel(r.Label)] += r.Score
			}
		}
	}
	return v
}

// ShortTextReport compares concept-vector clustering against
// bag-of-words clustering.
type ShortTextReport struct {
	Tweets        int
	Topics        int
	BoWPurity     float64
	ConceptPurity float64
}

// EvaluateShortText runs both clusterings and reports purity.
func EvaluateShortText(pb *core.Probase, w *corpus.World, topics []string, perTopic int, seed int64) ShortTextReport {
	tweets := GenerateTweets(w, topics, perTopic, seed)
	labels := make([]int, len(tweets))
	bow := make([]Vector, len(tweets))
	con := make([]Vector, len(tweets))
	for i, tw := range tweets {
		labels[i] = tw.Topic
		bow[i] = BoWVector(tw.Text)
		con[i] = ConceptVector(pb, tw.Terms, 8)
	}
	k := len(topics)
	return ShortTextReport{
		Tweets:        len(tweets),
		Topics:        k,
		BoWPurity:     Purity(KMeans(bow, k, 25, seed+1), labels),
		ConceptPurity: Purity(KMeans(con, k, 25, seed+1), labels),
	}
}
