package taxonomy

import (
	"reflect"
	"testing"

	"repro/internal/extraction"
	"repro/internal/graph"
)

// example3 reproduces the paper's running example (Example 3):
//
//	a) plants such as trees and grass
//	b) plants such as trees, grass and herbs
//	c) plants such as steam turbines, pumps, and boilers
//	d) organisms such as plants, trees, grass and animals
//	e) things such as plants, trees, grass, pumps, and boilers
func example3() []extraction.Group {
	return []extraction.Group{
		{Super: "plant", Subs: []string{"tree", "grass"}},
		{Super: "plant", Subs: []string{"tree", "grass", "herb"}},
		{Super: "plant", Subs: []string{"steam turbine", "pump", "boiler"}},
		{Super: "organism", Subs: []string{"plant", "tree", "grass", "animal"}},
		{Super: "thing", Subs: []string{"plant", "tree", "grass", "pump", "boiler"}},
	}
}

func TestBuildSeparatesSenses(t *testing.T) {
	res := Build(example3(), Config{})
	senses := res.Senses["plant"]
	if len(senses) != 2 {
		t.Fatalf("plant senses = %v, want 2", senses)
	}
	if !reflect.DeepEqual(senses, []string{"plant#1", "plant#2"}) {
		t.Errorf("sense names = %v", senses)
	}
	g := res.Graph
	organic := g.Lookup("plant#1")
	industrial := g.Lookup("plant#2")
	if organic == 0xFFFFFFFF || industrial == 0xFFFFFFFF {
		t.Fatal("sense nodes missing")
	}
	// The organic sense (larger mass: sentences a+b) holds herb, the
	// industrial one holds boiler.
	if _, ok := g.EdgeBetween(organic, g.Lookup("herb")); !ok {
		t.Error("plant#1 -> herb missing")
	}
	if _, ok := g.EdgeBetween(industrial, g.Lookup("boiler")); !ok {
		t.Error("plant#2 -> boiler missing")
	}
	if _, ok := g.EdgeBetween(organic, g.Lookup("boiler")); ok {
		t.Error("organic sense absorbed industrial child")
	}
}

func TestBuildVerticalLinks(t *testing.T) {
	res := Build(example3(), Config{})
	g := res.Graph
	organism := g.Lookup("organism")
	thing := g.Lookup("thing")
	organic := g.Lookup("plant#1")
	industrial := g.Lookup("plant#2")

	// Property 3 (single alignment): organism's plant slot resolves to the
	// organic sense only.
	if _, ok := g.EdgeBetween(organism, organic); !ok {
		t.Error("organism -> plant#1 missing")
	}
	if _, ok := g.EdgeBetween(organism, industrial); ok {
		t.Error("organism linked to industrial plants")
	}
	// Figure 3(b) (multiple alignment): thing's plant slot matches both.
	if _, ok := g.EdgeBetween(thing, organic); !ok {
		t.Error("thing -> plant#1 missing")
	}
	if _, ok := g.EdgeBetween(thing, industrial); !ok {
		t.Error("thing -> plant#2 missing")
	}
}

func TestBuildHorizontalMergeCounts(t *testing.T) {
	res := Build(example3(), Config{})
	// Sentences a and b merge (one horizontal op); c, d, e stay separate.
	if res.Stats.HorizontalOps != 1 {
		t.Errorf("horizontal ops = %d, want 1", res.Stats.HorizontalOps)
	}
	// Links: organism->plant#1, thing->plant#1, thing->plant#2.
	if res.Stats.VerticalOps != 3 {
		t.Errorf("vertical ops = %d, want 3", res.Stats.VerticalOps)
	}
	if res.Stats.MultiSense != 1 {
		t.Errorf("multi-sense labels = %d, want 1", res.Stats.MultiSense)
	}
}

func TestBuildAggregatesCounts(t *testing.T) {
	res := Build(example3(), Config{})
	g := res.Graph
	e, ok := g.EdgeBetween(g.Lookup("plant#1"), g.Lookup("tree"))
	if !ok || e.Count != 2 { // sentences a and b both said (plant, tree)
		t.Errorf("plant#1->tree = %+v ok=%v, want count 2", e, ok)
	}
}

func TestBuildSingleSenseKeepsBareLabel(t *testing.T) {
	groups := []extraction.Group{
		{Super: "animal", Subs: []string{"cat", "dog"}},
		{Super: "animal", Subs: []string{"cat", "dog", "horse"}},
		{Super: "organism", Subs: []string{"animal", "cat", "dog"}},
	}
	res := Build(groups, Config{})
	if !reflect.DeepEqual(res.Senses["animal"], []string{"animal"}) {
		t.Errorf("animal senses = %v", res.Senses["animal"])
	}
	g := res.Graph
	if _, ok := g.EdgeBetween(g.Lookup("organism"), g.Lookup("animal")); !ok {
		t.Error("organism -> animal missing")
	}
}

func TestBuildProducesDAG(t *testing.T) {
	// Mutually recursive evidence that would create a cycle must be refused.
	groups := []extraction.Group{
		{Super: "a", Subs: []string{"b", "x", "y"}},
		{Super: "b", Subs: []string{"a", "x", "y"}},
	}
	res := Build(groups, Config{})
	if _, err := res.Graph.TopoLevels(); err != nil {
		t.Fatalf("graph has a cycle: %v", err)
	}
	if res.Stats.SkippedCycles == 0 {
		t.Error("no cycle was refused, expected at least one")
	}
}

func TestBuildEmptyAndDegenerate(t *testing.T) {
	res := Build(nil, Config{})
	if res.Graph.NumNodes() != 0 {
		t.Error("empty input produced nodes")
	}
	res = Build([]extraction.Group{{Super: "", Subs: []string{"x"}}, {Super: "a"}}, Config{})
	if res.Graph.NumNodes() != 0 {
		t.Error("degenerate groups produced nodes")
	}
}

func TestBuildMinSenseEvidence(t *testing.T) {
	groups := append(example3(),
		// A noise fragment sense of "plant" from a single bad sentence.
		extraction.Group{Super: "plant", Subs: []string{"weird thing", "odd item"}},
	)
	strict := Build(groups, Config{MinSenseEvidence: 3})
	if len(strict.Senses["plant"]) != 2 {
		t.Errorf("senses after dropping = %v", strict.Senses["plant"])
	}
	if strict.Stats.DroppedClusters != 1 {
		t.Errorf("dropped = %d, want 1", strict.Stats.DroppedClusters)
	}
	loose := Build(groups, Config{})
	if len(loose.Senses["plant"]) != 3 {
		t.Errorf("senses without dropping = %v", loose.Senses["plant"])
	}
}

func TestSenseLabel(t *testing.T) {
	if SenseLabel("plant", 0, 1) != "plant" {
		t.Error("single sense should keep bare label")
	}
	if SenseLabel("plant", 1, 2) != "plant#2" {
		t.Error("multi sense should suffix")
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	groups := append(example3(),
		extraction.Group{Super: "animal", Subs: []string{"cat", "dog"}},
		extraction.Group{Super: "animal", Subs: []string{"cat", "dog", "horse"}},
		extraction.Group{Super: "company", Subs: []string{"IBM", "Microsoft"}},
		extraction.Group{Super: "company", Subs: []string{"IBM", "Microsoft", "Google"}},
		extraction.Group{Super: "organism", Subs: []string{"animal", "cat", "dog"}},
	)
	serial := Build(groups, Config{Workers: 1})
	parallel := Build(groups, Config{Workers: 8})
	if serial.Graph.NumNodes() != parallel.Graph.NumNodes() ||
		serial.Graph.NumEdges() != parallel.Graph.NumEdges() {
		t.Fatalf("shapes differ: %d/%d vs %d/%d",
			serial.Graph.NumNodes(), serial.Graph.NumEdges(),
			parallel.Graph.NumNodes(), parallel.Graph.NumEdges())
	}
	if serial.Stats.HorizontalOps != parallel.Stats.HorizontalOps {
		t.Errorf("hops differ: %d vs %d", serial.Stats.HorizontalOps, parallel.Stats.HorizontalOps)
	}
	for id := 0; id < serial.Graph.NumNodes(); id++ {
		label := serial.Graph.Label(graph.NodeID(id))
		if parallel.Graph.Lookup(label) == graph.NoNode {
			t.Errorf("parallel build missing node %q", label)
		}
	}
}
