// Package baseline provides the comparators of the paper's evaluation:
// scaled reference taxonomies with the characteristic limitations of
// WordNet, WikiTaxonomy, YAGO and Freebase (Tables 1 and 4, Figures 5-8),
// and the syntactic-iteration extractor of Section 2.1 (the
// KnowItAll/TextRunner-style baseline). Each reference is derived from
// the ground-truth world so that coverage comparisons measure the
// modelled limitation, not vocabulary mismatch.
package baseline

import (
	"math/rand"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/graph"
)

// Reference is a comparator taxonomy.
type Reference struct {
	Name      string
	Graph     *graph.Store
	Concepts  []string // singular concept labels
	Instances []string
}

// NewWordNetRef models WordNet: only unmodified (single-word) concepts, a
// deep clean hierarchy, and few instances per concept — lexicographers
// curate words, not entities.
func NewWordNetRef(w *corpus.World) *Reference {
	r := &Reference{Name: "WordNet", Graph: graph.NewStore()}
	include := func(c *corpus.Concept) bool {
		return !strings.Contains(c.Label, " ")
	}
	r.build(w, include, 5, true)
	return r
}

// NewWikiTaxonomyRef models WikiTaxonomy: mid-scale category tree with
// thematic topics, moderate instances.
func NewWikiTaxonomyRef(w *corpus.World) *Reference {
	rng := rand.New(rand.NewSource(7))
	r := &Reference{Name: "WikiTaxonomy", Graph: graph.NewStore()}
	include := func(c *corpus.Concept) bool {
		if !strings.Contains(c.Label, " ") {
			return true
		}
		return rng.Float64() < 0.35
	}
	r.build(w, include, 12, true)
	return r
}

// NewYAGORef models YAGO: larger concept inventory (Wikipedia categories
// mapped into WordNet) and many instances, still well below web scale.
func NewYAGORef(w *corpus.World) *Reference {
	rng := rand.New(rand.NewSource(11))
	r := &Reference{Name: "YAGO", Graph: graph.NewStore()}
	include := func(c *corpus.Concept) bool {
		if !strings.Contains(c.Label, " ") {
			return true
		}
		return rng.Float64() < 0.6
	}
	r.build(w, include, 40, true)
	return r
}

// freebaseDomains are the community-curated verticals with near-complete
// coverage (Section 1: "books, music and movies").
var freebaseDomains = map[string]bool{
	"book": true, "album": true, "movie": true, "film": true,
	"company": true, "actor": true, "artist": true, "city": true,
	"website": true, "celebrity": true,
}

// NewFreebaseRef models Freebase: very few concepts, zero
// concept-subconcept edges (Table 4's all-zero row), and huge flat
// instance sets inside its curated domains.
func NewFreebaseRef(w *corpus.World) *Reference {
	r := &Reference{Name: "Freebase", Graph: graph.NewStore()}
	include := func(c *corpus.Concept) bool { return freebaseDomains[c.Key] }
	r.build(w, include, 1<<30, false)
	return r
}

// build fills the reference: included concepts keep up to maxInstances
// instances; withHierarchy wires concept-subconcept edges between
// included concepts.
func (r *Reference) build(w *corpus.World, include func(*corpus.Concept) bool, maxInstances int, withHierarchy bool) {
	included := make(map[string]bool)
	for _, key := range w.Keys() {
		c := w.Concept(key)
		if include(c) {
			included[key] = true
		}
	}
	// Node per included concept; sense-sharing labels collapse (references
	// do not model senses — a real WordNet does, but its instance space is
	// so small the distinction does not matter for coverage).
	keys := make([]string, 0, len(included))
	for k := range included {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seenLabel := make(map[string]bool)
	for _, key := range keys {
		c := w.Concept(key)
		id := r.Graph.Intern(c.Label)
		if !seenLabel[c.Label] {
			seenLabel[c.Label] = true
			r.Concepts = append(r.Concepts, c.Label)
		}
		n := len(c.Instances)
		if n > maxInstances {
			n = maxInstances
		}
		for _, inst := range c.Instances[:n] {
			r.Graph.AddEdge(id, r.Graph.Intern(inst), 1, 1)
			r.Instances = append(r.Instances, inst)
		}
		if withHierarchy {
			for _, pk := range c.Parents {
				if included[pk] {
					p := w.Concept(pk)
					from := r.Graph.Intern(p.Label)
					if from != id && !r.Graph.HasPath(id, from) {
						r.Graph.AddEdge(from, id, 1, 1)
					}
				}
			}
		}
	}
	sort.Strings(r.Instances)
	r.Instances = dedupeSorted(r.Instances)
}

func dedupeSorted(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// NumConcepts returns the concept-label count (Table 1's metric).
func (r *Reference) NumConcepts() int { return len(r.Concepts) }
