package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/snapshot"
)

// TestBackendsByteIdentical is the storage-refactor acceptance bar,
// three ways: one taxonomy snapshot served from (1) the heap-decoded
// frozen CSR view, (2) a mutable Builder rebind of it, and (3) the
// memory-mapped zero-copy view, must answer every endpoint with
// byte-identical JSON. Any divergence means a Reader implementation
// disagrees on iteration order, scores, or tie-breaks — or that the
// mapped arrays are misinterpreting the on-disk bytes.
func TestBackendsByteIdentical(t *testing.T) {
	var buf bytes.Buffer
	if err := testProbase(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.pbc2")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	pb, err := snapshot.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pb.Graph.(*graph.Frozen); !ok {
		t.Fatalf("Open produced %T, want the frozen CSR backend", pb.Graph)
	}
	bpb, err := pb.Rebind(graph.NewBuilderFrom(pb.Graph))
	if err != nil {
		t.Fatal(err)
	}
	mpb, err := snapshot.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mpb.Close()

	servers := map[string]*Server{
		"frozen":  New(pb, Config{}),
		"builder": New(bpb, Config{}),
		"mapped":  New(mpb, Config{}),
	}

	paths := []string{
		"/v1/instances?concept=companies&k=10",
		"/v1/instances?concept=animals&k=25",
		"/v1/instances?concept=zzz-not-a-concept",
		"/v1/concepts?term=IBM&k=10",
		"/v1/concepts?term=China&k=3",
		"/v1/typicality?concept=companies&instance=IBM",
		"/v1/plausibility?x=companies&y=IBM",
		"/v1/plausibility?x=animals&y=IBM",
		"/v1/conceptualize?terms=China,India,Brazil&k=5",
		"/v1/conceptualize?text=IBM+opened+an+office&k=5",
	}
	for _, p := range paths {
		want := fetchBody(t, servers["frozen"], p)
		for _, name := range []string{"builder", "mapped"} {
			if got := fetchBody(t, servers[name], p); got != want {
				t.Errorf("%s diverges across backends:\nfrozen: %s\n%s: %s", p, want, name, got)
			}
		}
	}

	// healthz carries uptime, cache occupancy and the storage mode
	// (mapped is expected to differ there), so compare just the logical
	// snapshot identity. The fingerprint hashes graph content, so all
	// three storage backends must agree on it.
	type identity struct {
		Status      string `json:"status"`
		Nodes       int    `json:"nodes"`
		Edges       int    `json:"edges"`
		Format      string `json:"snapshot_format"`
		Fingerprint string `json:"fingerprint"`
	}
	ids := map[string]identity{}
	for name, srv := range servers {
		var id identity
		if err := json.Unmarshal([]byte(fetchBody(t, srv, "/v1/healthz")), &id); err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	if ids["frozen"].Fingerprint == "" {
		t.Error("healthz fingerprint is empty")
	}
	for _, name := range []string{"builder", "mapped"} {
		if ids[name] != ids["frozen"] {
			t.Errorf("healthz identity diverges: frozen %+v, %s %+v", ids["frozen"], name, ids[name])
		}
	}

	// The mapped server must actually be serving zero-copy (on hosts
	// where the platform supports it) and say so on healthz.
	var mh struct {
		Mapped bool `json:"snapshot_mapped"`
	}
	if err := json.Unmarshal([]byte(fetchBody(t, servers["mapped"], "/v1/healthz")), &mh); err != nil {
		t.Fatal(err)
	}
	if mh.Mapped != mpb.Mapped() {
		t.Errorf("healthz snapshot_mapped = %v, engine says %v", mh.Mapped, mpb.Mapped())
	}

	// And the full health profiles (admin stats) must agree as well;
	// uptime naturally differs, so compare only the profile payload.
	profiles := map[string]string{}
	for name, srv := range servers {
		var ps struct {
			Profile json.RawMessage `json:"profile"`
		}
		if err := json.Unmarshal([]byte(fetchBody(t, srv, "/v1/admin/stats")), &ps); err != nil {
			t.Fatal(err)
		}
		profiles[name] = string(ps.Profile)
	}
	for _, name := range []string{"builder", "mapped"} {
		if profiles[name] != profiles["frozen"] {
			t.Errorf("health profiles diverge across backends:\nfrozen: %s\n%s: %s",
				profiles["frozen"], name, profiles[name])
		}
	}
}

// fetchBody performs one in-process request and returns the raw body.
func fetchBody(t *testing.T, s *Server, path string) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: status = %d, body %s", path, rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}
