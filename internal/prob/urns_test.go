package prob

import (
	"testing"

	"repro/internal/kb"
)

// urnsStore: true pairs sighted often, false pairs rarely.
func urnsStore() (*kb.Store, Oracle) {
	s := kb.NewStore(0)
	truths := map[kb.Pair]bool{}
	for i := 0; i < 20; i++ {
		x, y := "animal", string(rune('a'+i))
		s.Add(x, y, int64(8+i%5))
		truths[kb.Pair{X: x, Y: y}] = true
	}
	for i := 0; i < 10; i++ {
		x, y := "animal", "junk"+string(rune('a'+i))
		s.Add(x, y, 1)
		truths[kb.Pair{X: x, Y: y}] = false
	}
	oracle := func(x, y string) (bool, bool) {
		v, ok := truths[kb.Pair{X: x, Y: y}]
		return v, ok
	}
	return s, oracle
}

func TestFitUrnsSeparates(t *testing.T) {
	s, oracle := urnsStore()
	u := FitUrns(s, oracle)
	if u.PC <= u.PE {
		t.Fatalf("fit did not find pc > pe: %+v", u)
	}
	many := u.Plausibility(10)
	once := u.Plausibility(1)
	if many <= once {
		t.Errorf("urns not monotone: P(10)=%v <= P(1)=%v", many, once)
	}
	if many < 0.99 {
		t.Errorf("P(10 sightings) = %v, want >= 0.99", many)
	}
	if once > many-0.02 {
		t.Errorf("P(1 sighting) = %v not clearly below P(10) = %v", once, many)
	}
	if got := u.Plausibility(0); got != 0 {
		t.Errorf("P(0) = %v", got)
	}
}

func TestFitUrnsDegenerate(t *testing.T) {
	// No labelled data: parameters stay at their uninformative defaults.
	s := kb.NewStore(0)
	s.Add("a", "b", 3)
	u := FitUrns(s, func(x, y string) (bool, bool) { return false, false })
	if u.C != 1 || u.E != 1 {
		t.Errorf("degenerate fit = %+v", u)
	}
	p := u.Plausibility(5)
	if p < 0.4 || p > 0.6 {
		t.Errorf("uninformative plausibility = %v, want ~0.5", p)
	}
}

func TestUrnsMonotoneInK(t *testing.T) {
	s, oracle := urnsStore()
	u := FitUrns(s, oracle)
	prev := 0.0
	for k := int64(1); k <= 20; k++ {
		p := u.Plausibility(k)
		if p < prev {
			t.Fatalf("P(%d)=%v < P(%d)=%v", k, p, k-1, prev)
		}
		prev = p
	}
}
