package graph

import (
	"bytes"
	"testing"
)

// fuzzSeedStore builds a small valid store whose snapshot seeds the
// fuzz corpus.
func fuzzSeedStore() *Store {
	s := NewStore()
	company := s.Intern("company")
	it := s.Intern("it company")
	ibm := s.Intern("IBM")
	msft := s.Intern("Microsoft")
	s.AddEdge(company, it, 20, 0.95)
	s.AddEdge(company, ibm, 50, 0.99)
	s.AddEdge(it, ibm, 10, 0.9)
	s.AddEdge(it, msft, 30, 0.99)
	return s
}

// FuzzLoad feeds arbitrary bytes to the snapshot loader. Corrupt or
// truncated input must produce an error — never a panic, a hang, or an
// implausible allocation. A successful load must round-trip.
func FuzzLoad(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedStore().Save(&valid); err != nil {
		f.Fatal(err)
	}
	snap := valid.Bytes()
	f.Add(snap)
	f.Add(snap[:len(snap)/2])           // truncated
	f.Add(snap[:4])                     // magic only
	f.Add([]byte{})                     // empty
	f.Add([]byte("PBGRxxxxxxxxxxxxxx")) // magic + garbage
	f.Add([]byte("XXXX"))               // wrong magic
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)-1] ^= 0xFF // broken checksum
	f.Add(corrupt)
	bigNodes := append([]byte("PBGR\x01"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // huge node count
	f.Add(bigNodes)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A snapshot the loader accepts must itself re-save and re-load.
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("accepted snapshot fails to save: %v", err)
		}
		s2, err := Load(&buf)
		if err != nil {
			t.Fatalf("round-trip load failed: %v", err)
		}
		if s2.NumNodes() != s.NumNodes() || s2.NumEdges() != s.NumEdges() {
			t.Fatalf("round-trip changed shape: %d/%d -> %d/%d nodes/edges",
				s.NumNodes(), s.NumEdges(), s2.NumNodes(), s2.NumEdges())
		}
	})
}

// FuzzLoadFrozen feeds arbitrary bytes to the CSR-aware loader, which
// accepts both the v2 "PBC2" section and legacy v1 "PBGR" snapshots.
// Truncation, corrupt offsets and mismatched counts must error — never
// panic, hang or allocate implausibly. Accepted input must round-trip
// through the v2 writer.
func FuzzLoadFrozen(f *testing.F) {
	fz := fuzzSeedStore().Freeze()
	var v2 bytes.Buffer
	if err := fz.Save(&v2); err != nil {
		f.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := fuzzSeedStore().Save(&v1); err != nil {
		f.Fatal(err)
	}
	var rev2 bytes.Buffer
	if err := saveV2Legacy(&rev2, fz); err != nil {
		f.Fatal(err)
	}
	snap := v2.Bytes() // revision 3 (arena-bearing): what Save writes today
	f.Add(snap)
	f.Add(rev2.Bytes())        // legacy revision-2 layout
	f.Add(v1.Bytes())          // legacy format through freeze-on-load
	f.Add(snap[:len(snap)/2])  // truncated mid-arena
	f.Add(snap[:4])            // magic only
	f.Add([]byte{})            // empty
	f.Add([]byte("PBC2xxxxx")) // magic + garbage
	f.Add([]byte("XXXX"))      // wrong magic
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)-1] ^= 0xFF // broken checksum
	f.Add(corrupt)
	offsets := append([]byte(nil), snap...)
	offsets[len(offsets)/2] ^= 0x55 // corrupt offsets / edge region
	f.Add(offsets)
	table := append([]byte(nil), snap...)
	table[40] ^= 0x01 // corrupt the rev-3 section table
	f.Add(table)
	header := append([]byte(nil), snap...)
	header[9] = 0xFF // implausible fixed-width node count
	f.Add(header)
	bigNodes := append([]byte("PBC2\x02"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // huge varint node count
	f.Add(bigNodes)
	bigEdges := append([]byte("PBC2\x02\x01"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // huge varint edge count
	f.Add(bigEdges)
	f.Add([]byte("PBC2\x03\x00\x00\x00")) // rev-3 header cut before the counts

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		// The mapped loader sees the same adversarial bytes as the
		// streaming one and must agree on accept/reject.
		fm, errM := LoadMapped(append([]byte(nil), data...), nil)
		fz, err := LoadFrozen(bytes.NewReader(data))
		if (err == nil) != (errM == nil) {
			t.Fatalf("loaders disagree: LoadFrozen err=%v, LoadMapped err=%v", err, errM)
		}
		if err != nil {
			return
		}
		if fm.NumNodes() != fz.NumNodes() || fm.NumEdges() != fz.NumEdges() {
			t.Fatalf("mapped loader shape %d/%d != streamed %d/%d",
				fm.NumNodes(), fm.NumEdges(), fz.NumNodes(), fz.NumEdges())
		}
		var buf bytes.Buffer
		if err := fz.Save(&buf); err != nil {
			t.Fatalf("accepted snapshot fails to save: %v", err)
		}
		fz2, err := LoadFrozen(&buf)
		if err != nil {
			t.Fatalf("round-trip load failed: %v", err)
		}
		if fz2.NumNodes() != fz.NumNodes() || fz2.NumEdges() != fz.NumEdges() {
			t.Fatalf("round-trip changed shape: %d/%d -> %d/%d nodes/edges",
				fz.NumNodes(), fz.NumEdges(), fz2.NumNodes(), fz2.NumEdges())
		}
	})
}
