// Package apps implements the four Probase applications of Section 5.3:
// semantic web search and attribute-extraction seeding (instantiation),
// and short-text conceptualisation and web-table understanding
// (abstraction).
package apps

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
)

// PageIndex is a toy web-search index over the synthetic corpus: one
// document per page, with token and phrase lookup.
type PageIndex struct {
	ids   []int32
	texts []string // lower-cased page text
	// token -> page positions (indexes into ids/texts)
	postings map[string][]int
}

// NewPageIndex groups corpus sentences into page documents.
func NewPageIndex(sentences []corpus.Sentence) *PageIndex {
	idx := &PageIndex{postings: make(map[string][]int)}
	var cur int32 = -1
	var b strings.Builder
	flush := func() {
		if cur < 0 {
			return
		}
		text := strings.ToLower(b.String())
		pos := len(idx.ids)
		idx.ids = append(idx.ids, cur)
		idx.texts = append(idx.texts, text)
		seen := map[string]bool{}
		for _, tok := range strings.Fields(stripPunct(text)) {
			if !seen[tok] {
				seen[tok] = true
				idx.postings[tok] = append(idx.postings[tok], pos)
			}
		}
		b.Reset()
	}
	for _, s := range sentences {
		if s.PageID != cur {
			flush()
			cur = s.PageID
		}
		b.WriteString(s.Text)
		b.WriteString(" ")
	}
	flush()
	return idx
}

func stripPunct(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ',', '.', ';', ':', '!', '?', '\'', '"', '(', ')':
			return ' '
		}
		return r
	}, s)
}

// NumPages returns the document count.
func (idx *PageIndex) NumPages() int { return len(idx.ids) }

// PageText returns a page document's text by result position.
func (idx *PageIndex) PageText(pos int) string { return idx.texts[pos] }

// ContainsPhrase reports whether the page contains the phrase with token
// boundaries.
func (idx *PageIndex) ContainsPhrase(pos int, phrase string) bool {
	t := " " + stripPunct(idx.texts[pos]) + " "
	return strings.Contains(t, " "+strings.ToLower(stripPunct(phrase))+" ")
}

// KeywordSearch is the word-for-word baseline: pages matching all query
// tokens first, then pages ranked by the number of matched tokens.
func (idx *PageIndex) KeywordSearch(query string, limit int) []int {
	tokens := strings.Fields(strings.ToLower(stripPunct(query)))
	if len(tokens) == 0 {
		return nil
	}
	hits := make(map[int]int)
	for _, tok := range tokens {
		for _, pos := range idx.postings[tok] {
			hits[pos]++
		}
	}
	type scored struct {
		pos, n int
	}
	out := make([]scored, 0, len(hits))
	for pos, n := range hits {
		out = append(out, scored{pos, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		return out[i].pos < out[j].pos
	})
	if len(out) > limit {
		out = out[:limit]
	}
	res := make([]int, len(out))
	for i, s := range out {
		res[i] = s.pos
	}
	return res
}

// SemanticSearch implements the Section 5.3.1 prototype: identify the
// concept in the query, rewrite it into its most typical instances by
// typicality score, and return pages matching any rewritten instance.
func SemanticSearch(pb *core.Probase, idx *PageIndex, conceptQuery string, rewriteK, limit int) []int {
	instances := pb.InstancesOf(conceptQuery, rewriteK)
	type scored struct {
		pos   int
		score float64
	}
	best := make(map[int]float64)
	for _, inst := range instances {
		phrase := strings.ToLower(stripPunct(inst.Label))
		head := strings.Fields(phrase)
		if len(head) == 0 {
			continue
		}
		for _, pos := range idx.postings[head[0]] {
			if !idx.ContainsPhrase(pos, inst.Label) {
				continue
			}
			if inst.Score > best[pos] {
				best[pos] = inst.Score
			}
		}
	}
	out := make([]scored, 0, len(best))
	for pos, sc := range best {
		out = append(out, scored{pos, sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].pos < out[j].pos
	})
	if len(out) > limit {
		out = out[:limit]
	}
	res := make([]int, len(out))
	for i, s := range out {
		res[i] = s.pos
	}
	return res
}

// SearchReport compares the two engines over a query workload.
type SearchReport struct {
	Queries           int
	KeywordRelevance  float64 // fraction of returned results that are relevant
	SemanticRelevance float64
}

// EvaluateSearch runs the Section 5.3.1 comparison: each query asks for a
// fine-grained concept phrased in words that pages rarely contain
// verbatim ("best tropical countries guide"). A result is relevant when
// the page mentions a ground-truth instance of the queried concept.
func EvaluateSearch(pb *core.Probase, idx *PageIndex, w *corpus.World, conceptKeys []string, limit int) SearchReport {
	var rep SearchReport
	var kwRel, kwTot, semRel, semTot int
	relevant := func(pos int, key string) bool {
		for _, inst := range w.InstancesOf(key) {
			if idx.ContainsPhrase(pos, inst) {
				return true
			}
		}
		return false
	}
	for _, key := range conceptKeys {
		c := w.Concept(key)
		if c == nil {
			continue
		}
		rep.Queries++
		query := "best " + c.PluralLabel() + " guide"
		for _, pos := range idx.KeywordSearch(query, limit) {
			kwTot++
			if relevant(pos, key) {
				kwRel++
			}
		}
		for _, pos := range SemanticSearch(pb, idx, c.PluralLabel(), 10, limit) {
			semTot++
			if relevant(pos, key) {
				semRel++
			}
		}
	}
	if kwTot > 0 {
		rep.KeywordRelevance = float64(kwRel) / float64(kwTot)
	}
	if semTot > 0 {
		rep.SemanticRelevance = float64(semRel) / float64(semTot)
	}
	return rep
}
