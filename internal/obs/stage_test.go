package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStatsCollector(t *testing.T) {
	c := NewStatsCollector()
	c.StageStart("extraction")
	c.Round("extraction", 1, map[string]int64{"new_pairs": 100, "sentences_pending": 50}, 200*time.Millisecond)
	c.Round("extraction", 2, map[string]int64{"new_pairs": 20, "sentences_pending": 0}, 100*time.Millisecond)
	c.StageEnd("extraction", 300*time.Millisecond)
	c.StageStart("taxonomy")
	c.Count("taxonomy", "horizontal_ops", 40)
	c.Count("taxonomy", "horizontal_ops", 2)
	c.StageEnd("taxonomy", time.Second)

	stages := c.Stages()
	if len(stages) != 2 || stages[0].Name != "extraction" || stages[1].Name != "taxonomy" {
		t.Fatalf("stages = %+v, want extraction then taxonomy", stages)
	}
	ex := stages[0]
	if len(ex.Rounds) != 2 || ex.Rounds[0].Counters["new_pairs"] != 100 || ex.Rounds[1].Round != 2 {
		t.Errorf("extraction rounds wrong: %+v", ex.Rounds)
	}
	if ex.Seconds != 0.3 {
		t.Errorf("extraction seconds = %v, want 0.3", ex.Seconds)
	}
	if stages[1].Counters["horizontal_ops"] != 42 {
		t.Errorf("counter accumulation wrong: %+v", stages[1].Counters)
	}
	// The report must be JSON-encodable as-is.
	if _, err := json.Marshal(stages); err != nil {
		t.Fatalf("stages not JSON-encodable: %v", err)
	}
	// Mutating the caller's counters map after Round must not leak in.
	m := map[string]int64{"x": 1}
	c.Round("taxonomy", 1, m, 0)
	m["x"] = 999
	if got := c.Stages()[1].Rounds[0].Counters["x"]; got != 1 {
		t.Errorf("Round aliased the caller's map: %d", got)
	}
}

func TestStatsCollectorConcurrent(t *testing.T) {
	c := NewStatsCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Count("stage", "n", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Stages()[0].Counters["n"]; got != 4000 {
		t.Errorf("concurrent counts = %d, want 4000", got)
	}
}

func TestProgressReporter(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressReporter(&buf, "probase-build")
	p.StageStart("extraction")
	p.Round("extraction", 1, map[string]int64{
		"new_pairs": 120, "sentences_resolved": 300, "sentences_pending": 100,
	}, time.Second)
	p.StageEnd("extraction", 2*time.Second)
	out := buf.String()
	for _, want := range []string{
		"probase-build: stage extraction started",
		"extraction round 1",
		"new_pairs=120",
		"eta~",
		"stage extraction done in 2s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	// Nothing pending -> no ETA clause.
	buf.Reset()
	p.Round("extraction", 2, map[string]int64{"sentences_resolved": 100, "sentences_pending": 0}, time.Second)
	if strings.Contains(buf.String(), "eta~") {
		t.Errorf("ETA printed with nothing pending:\n%s", buf.String())
	}
}

func TestMultiAndNopReporter(t *testing.T) {
	if ReporterOrNop(nil) == nil {
		t.Fatal("ReporterOrNop(nil) returned nil")
	}
	// A Nop must absorb everything without blowing up.
	n := ReporterOrNop(nil)
	n.StageStart("x")
	n.Count("x", "y", 1)
	n.Round("x", 1, nil, 0)
	n.StageEnd("x", 0)

	a, b := NewStatsCollector(), NewStatsCollector()
	m := MultiReporter{a, b}
	m.StageStart("s")
	m.Count("s", "c", 2)
	m.Round("s", 1, map[string]int64{"v": 1}, time.Millisecond)
	m.StageEnd("s", time.Second)
	for i, c := range []*StatsCollector{a, b} {
		st := c.Stages()
		if len(st) != 1 || st[0].Counters["c"] != 2 || len(st[0].Rounds) != 1 || st[0].Seconds != 1 {
			t.Errorf("collector %d missed fan-out: %+v", i, st)
		}
	}
}

func TestVersionInfo(t *testing.T) {
	v := Version()
	if v.GoVersion == "" {
		t.Error("GoVersion empty")
	}
	if !strings.Contains(v.String(), v.GoVersion) {
		t.Errorf("String() = %q missing go version", v.String())
	}
	var buf bytes.Buffer
	PrintVersion(&buf, "probase-test")
	if !strings.HasPrefix(buf.String(), "probase-test version ") {
		t.Errorf("PrintVersion output %q", buf.String())
	}
}
