// Command probase-top is "top" for a running Probase server: it polls
// /v1/admin/traffic and renders the live per-endpoint picture — qps,
// p50/p99 latency, error rate, cache-hit rate over a rolling window —
// plus the heavy-hitter query keys and the SLO burn-rate verdict that
// drives the server's ok|degraded health status.
//
// Usage:
//
//	probase-top -target http://127.0.0.1:8080            # live, redraws every 2s
//	probase-top -target ... -once                        # one text frame
//	probase-top -target ... -once -json                  # raw probase-traffic/v1 report
//
// -once -json validates the payload against the probase-traffic/v1
// schema and emits it verbatim, which is what scripts and the CI
// traffic-smoke job consume; the exit status is non-zero on an invalid
// payload, so the pipe is also the validation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/obs"
	"repro/internal/sketch"
	"repro/internal/window"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "probase-top:", err)
		os.Exit(1)
	}
}

// trafficSchema mirrors server.TrafficSchema; probase-top deliberately
// does not import internal/server (the client of an HTTP contract
// should compile without the server).
const trafficSchema = "probase-traffic/v1"

// endpointTraffic mirrors the per-experiment result payload of
// /v1/admin/traffic.
type endpointTraffic struct {
	Endpoint string         `json:"endpoint"`
	Windows  []window.Stats `json:"windows"`
	HotKeys  []sketch.Item  `json:"hot_keys,omitempty"`
}

// frame is one decoded poll of /v1/admin/traffic.
type frame struct {
	raw       []byte
	total     endpointTraffic
	endpoints []endpointTraffic
	slo       window.SLOEval
	uptime    float64
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("probase-top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target   = fs.String("target", "http://127.0.0.1:8080", "base URL of the probase-serve instance")
		interval = fs.Duration("interval", 2*time.Second, "poll/redraw cadence in live mode")
		windowN  = fs.String("window", "1m", "rolling window to display (1m, 5m, 30m)")
		hotK     = fs.Int("k", 5, "hot keys shown per endpoint")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-poll request deadline")
		once     = fs.Bool("once", false, "render one frame and exit")
		asJSON   = fs.Bool("json", false, "with -once: emit the raw validated probase-traffic/v1 report")
		version  = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(stderr, "probase-top")
		return nil
	}
	if *asJSON && !*once {
		return fmt.Errorf("-json requires -once (live mode is for terminals)")
	}

	client := &http.Client{}
	poll := func() (*frame, error) {
		return fetch(ctx, client, strings.TrimRight(*target, "/"), *timeout)
	}

	if *once {
		f, err := poll()
		if err != nil {
			return err
		}
		if *asJSON {
			stdout.Write(f.raw)
			if len(f.raw) > 0 && f.raw[len(f.raw)-1] != '\n' {
				io.WriteString(stdout, "\n")
			}
			return nil
		}
		render(stdout, f, *target, *windowN, *hotK, false)
		return nil
	}

	// Live mode: redraw on every tick until interrupted.
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		f, err := poll()
		if err != nil {
			fmt.Fprintln(stderr, "poll failed:", err)
		} else {
			render(stdout, f, *target, *windowN, *hotK, true)
		}
		select {
		case <-ctx.Done():
			io.WriteString(stdout, "\n")
			return nil
		case <-ticker.C:
		}
	}
}

// fetch polls /v1/admin/traffic once, validates the envelope, and
// decodes the typed payload.
func fetch(ctx context.Context, client *http.Client, target string, timeout time.Duration) (*frame, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/admin/traffic", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %s", req.URL, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if err := benchfmt.ValidateBytesAs(req.URL.String(), raw, trafficSchema); err != nil {
		return nil, err
	}
	// Decode a second time with typed experiment results (Report.Result
	// is any; the envelope was already validated above).
	var typed struct {
		Experiments []struct {
			Name   string          `json:"name"`
			Result json.RawMessage `json:"result"`
		} `json:"experiments"`
		TotalSeconds float64 `json:"total_seconds"`
	}
	if err := json.Unmarshal(raw, &typed); err != nil {
		return nil, err
	}
	f := &frame{raw: raw, uptime: typed.TotalSeconds}
	for _, e := range typed.Experiments {
		switch {
		case e.Name == "total":
			if err := json.Unmarshal(e.Result, &f.total); err != nil {
				return nil, fmt.Errorf("total experiment: %w", err)
			}
		case e.Name == "slo":
			if err := json.Unmarshal(e.Result, &f.slo); err != nil {
				return nil, fmt.Errorf("slo experiment: %w", err)
			}
		case strings.HasPrefix(e.Name, "traffic:"):
			var et endpointTraffic
			if err := json.Unmarshal(e.Result, &et); err != nil {
				return nil, fmt.Errorf("%s experiment: %w", e.Name, err)
			}
			f.endpoints = append(f.endpoints, et)
		}
	}
	sort.Slice(f.endpoints, func(i, j int) bool { return f.endpoints[i].Endpoint < f.endpoints[j].Endpoint })
	return f, nil
}

// pick returns the named window's stats (zero value when absent).
func pick(ws []window.Stats, name string) window.Stats {
	for _, w := range ws {
		if w.Window == name {
			return w
		}
	}
	return window.Stats{Window: name}
}

// render draws one frame. In live mode the screen is cleared first
// (ANSI home+clear, the top idiom).
func render(out io.Writer, f *frame, target, windowName string, hotK int, live bool) {
	var b strings.Builder
	if live {
		b.WriteString("\x1b[H\x1b[2J")
	}
	tot := pick(f.total.Windows, windowName)
	status := strings.ToUpper(f.slo.Status)
	fmt.Fprintf(&b, "probase-top  %s  up %s  window %s  slo %s (max burn %.1fx, target %.3f%%)\n",
		target, (time.Duration(f.uptime) * time.Second).String(), windowName,
		status, f.slo.MaxBurnRate, 100*f.slo.AvailabilityTarget)
	for _, r := range f.slo.Reasons {
		fmt.Fprintf(&b, "  !! %s\n", r)
	}
	fmt.Fprintf(&b, "\n%-14s %8s %9s %9s %7s %7s  %s\n",
		"ENDPOINT", "QPS", "P50(ms)", "P99(ms)", "ERR%", "HIT%", "HOT KEYS")
	row := func(name string, st window.Stats, hot []sketch.Item) {
		keys := make([]string, 0, hotK)
		for i, h := range hot {
			if i >= hotK {
				break
			}
			keys = append(keys, fmt.Sprintf("%s(%d)", h.Key, h.Count))
		}
		fmt.Fprintf(&b, "%-14s %8.1f %9.2f %9.2f %6.1f%% %6.1f%%  %s\n",
			name, st.RPS, st.P50MS, st.P99MS,
			100*st.ErrorRate, 100*st.CacheHitRate, strings.Join(keys, " "))
	}
	row("TOTAL", tot, nil)
	for _, ep := range f.endpoints {
		row(ep.Endpoint, pick(ep.Windows, windowName), ep.HotKeys)
	}
	io.WriteString(out, b.String())
}
