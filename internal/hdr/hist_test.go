package hdr

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile returns the rank-order statistic the histogram
// approximates: the sample of rank ceil(q*n) in the sorted slice.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// checkQuantiles records samples and asserts every tested quantile is
// within the histogram's documented relative-error bound of the exact
// rank-order statistic.
func checkQuantiles(t *testing.T, name string, samples []int64) {
	t.Helper()
	h := New(0)
	for _, v := range samples {
		h.Record(v)
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	bound := h.RelativeError()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := exactQuantile(sorted, q)
		got := h.Quantile(q)
		if exact == 0 {
			if got != 0 {
				t.Errorf("%s q%.3f: got %d, exact 0", name, q, got)
			}
			continue
		}
		rel := math.Abs(float64(got-exact)) / float64(exact)
		if rel > bound {
			t.Errorf("%s q%.3f: got %d, exact %d, relative error %.4f > bound %.4f",
				name, q, got, exact, rel, bound)
		}
	}
	if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
		t.Errorf("%s: min/max %d/%d, want %d/%d",
			name, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
	}
	var sum float64
	for _, v := range samples {
		sum += float64(v)
	}
	if mean := sum / float64(len(samples)); math.Abs(h.Mean()-mean) > 1e-6*mean {
		t.Errorf("%s: mean %.2f, want %.2f", name, h.Mean(), mean)
	}
}

func TestHistQuantilesKnownDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000

	uniform := make([]int64, n)
	for i := range uniform {
		uniform[i] = 1 + rng.Int63n(5_000_000) // 1ns..5ms
	}
	checkQuantiles(t, "uniform", uniform)

	exponential := make([]int64, n)
	for i := range exponential {
		exponential[i] = int64(rng.ExpFloat64() * 800_000) // mean 0.8ms
	}
	checkQuantiles(t, "exponential", exponential)

	// Bimodal: a fast cache-hit mode and a slow miss mode three orders
	// of magnitude apart — the shape that defeats fixed-width buckets.
	bimodal := make([]int64, n)
	for i := range bimodal {
		if rng.Float64() < 0.85 {
			bimodal[i] = 20_000 + rng.Int63n(30_000) // 20-50µs
		} else {
			bimodal[i] = 40_000_000 + rng.Int63n(20_000_000) // 40-60ms
		}
	}
	checkQuantiles(t, "bimodal", bimodal)
}

func TestHistSmallValuesExact(t *testing.T) {
	h := New(7)
	for v := int64(0); v < 128; v++ {
		h.Record(v)
	}
	// Below 2^subBits the buckets have unit width: quantiles are exact.
	for _, q := range []float64{0.25, 0.5, 0.75, 1} {
		want := int64(math.Ceil(q*128)) - 1
		if got := h.Quantile(q); got != want {
			t.Errorf("q%.2f = %d, want %d", q, got, want)
		}
	}
}

func TestHistMergeEqualsConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]int64, 5000)
	b := make([]int64, 3000)
	for i := range a {
		a[i] = rng.Int63n(10_000_000)
	}
	for i := range b {
		b[i] = int64(rng.ExpFloat64() * 2_000_000)
	}

	ha, hb, hall := New(0), New(0), New(0)
	for _, v := range a {
		ha.Record(v)
	}
	for _, v := range b {
		hb.Record(v)
	}
	for _, v := range append(append([]int64(nil), a...), b...) {
		hall.Record(v)
	}
	if err := ha.Merge(hb); err != nil {
		t.Fatal(err)
	}
	if !ha.Equal(hall) {
		t.Error("merge(a, b) differs from histogram of concatenated samples")
	}
	// Merging histograms of different resolution must refuse.
	if err := New(5).Merge(ha); err == nil {
		t.Error("mixed-resolution merge accepted")
	}
}

func TestHistRecordCorrected(t *testing.T) {
	h := New(7)
	// A 100ms response under a 25ms expected interval hides three
	// requests that would have been issued at 75, 50, and 25ms.
	h.RecordCorrected(100, 25)
	if h.Count() != 4 {
		t.Fatalf("corrected count = %d, want 4", h.Count())
	}
	for _, want := range []int64{25, 50, 75, 100} {
		if h.counts[h.index(want)] != 1 {
			t.Errorf("backfill sample %d not recorded", want)
		}
	}
	// Values at or below the interval backfill nothing.
	h2 := New(7)
	h2.RecordCorrected(25, 25)
	if h2.Count() != 1 {
		t.Errorf("no-stall corrected count = %d, want 1", h2.Count())
	}
	// Zero interval degrades to plain Record.
	h3 := New(7)
	h3.RecordCorrected(100, 0)
	if h3.Count() != 1 {
		t.Errorf("zero-interval count = %d, want 1", h3.Count())
	}
}

func TestHistEdgeCases(t *testing.T) {
	h := New(7)
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Record(-5) // clamps to 0
	if h.Min() != 0 || h.Count() != 1 {
		t.Errorf("negative record: min=%d count=%d", h.Min(), h.Count())
	}
	huge := int64(1) << 62
	h.Record(huge + 12345)
	if h.Max() != huge+12345 {
		t.Errorf("max = %d", h.Max())
	}
	if got := h.Quantile(1); got != huge+12345 {
		t.Errorf("q1 = %d, want clamped max", got)
	}
	// Clone is independent of the original.
	c := h.Clone()
	h.Record(77)
	if c.Count() != 2 {
		t.Errorf("clone count changed to %d", c.Count())
	}
}
