package graph

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Frozen is the immutable compressed-sparse-row (CSR) view of a
// taxonomy — the read-optimised layout the serving path queries, the
// laptop-scale analogue of deploying the finished taxonomy on Trinity.
// All edges live in two flat arrays (out and in) indexed by per-node
// offset tables; Children/Parents are O(1) subslices of those arrays.
// Roots, concepts, instances, topological levels and per-node depth are
// precomputed once at freeze (or load) time, and the closure traversals
// use pooled bitset scratch so Descendants/Ancestors allocate only
// their result and HasPath allocates nothing.
//
// Frozen is safe for concurrent use. Obtain one with Builder.Freeze,
// LoadFrozen or LoadMapped; there is no way to mutate it afterwards.
//
// A Frozen's labels, offset tables and edge arrays are either owned
// heap slices (Freeze, the copying loaders) or zero-copy views into a
// memory-mapped snapshot (LoadMapped). Both backings sit behind the
// same accessors, so nothing downstream can tell them apart — except
// that a mapped Frozen must be Closed once the last reader is done,
// after which every slice or label string it handed out is invalid.
type Frozen struct {
	// arena holds all node labels in one contiguous region (owned or
	// mapped); label strings are zero-copy views into it.
	arena labelArena

	// sorted is the label table: all node ids ordered by label. It
	// drives the binary-search Lookup fallback and is also the sorted
	// iteration order reused by the precomputed node-class slices.
	sorted []NodeID
	// idx accelerates Lookup on non-trivial graphs: an open-addressed
	// hash table whose slots hold id+1 (0 = empty), sized to a power of
	// two >= 4*NumNodes (load factor <= 0.25 keeps probe chains short).
	// Nil for tiny graphs, where the sorted-table binary search wins
	// outright.
	idx []uint32

	// CSR adjacency: edges of node i are xxEdges[xxOff[i]:xxOff[i+1]],
	// sorted by Edge.To (copied verbatim from the Builder's sorted rows,
	// so traversal order matches the mutable store exactly).
	outOff   []uint32
	outEdges []Edge
	inOff    []uint32
	inEdges  []Edge

	// outTo/inTo duplicate just the target ids of the edge arrays at a
	// 4-byte stride — the closure traversals only need targets, and the
	// dense layout keeps 6x more of the frontier in cache than stepping
	// through 20-byte Edge records.
	outTo []NodeID
	inTo  []NodeID

	roots     []NodeID
	concepts  []NodeID
	instances []NodeID

	// levels/depth are the TopoLevels/Level results computed once at
	// freeze time; topoErr holds the cycle error, if any, so the frozen
	// view reports it exactly where the mutable store would.
	levels  [][]NodeID
	depth   []int
	topoErr error

	scratch sync.Pool // *csrScratch, reused across traversals

	// closer releases the backing store of a mapped view (the mmap
	// region); nil for owned slices. Swapped to nil on Close so the
	// release happens exactly once.
	closer atomic.Pointer[io.Closer]
	mapped bool
}

// lookupIndexMin is the node count below which Frozen skips building
// the hash index: a binary search over a handful of labels beats the
// hash on such graphs, and the sorted table is already there.
const lookupIndexMin = 16

// Freeze converts the builder into its immutable CSR view. The builder
// remains usable afterwards; the frozen view shares nothing with it.
func (b *Builder) Freeze() *Frozen {
	f := &Frozen{arena: arenaFromLabels(b.labels)}
	f.outOff, f.outEdges = flattenAdjacency(b.out)
	f.inOff, f.inEdges = flattenAdjacency(b.in)
	f.finish()
	return f
}

// flattenAdjacency packs per-node edge rows into one flat array plus an
// offset table of length n+1.
func flattenAdjacency(rows [][]Edge) ([]uint32, []Edge) {
	off := make([]uint32, len(rows)+1)
	total := 0
	for i, row := range rows {
		off[i] = uint32(total)
		total += len(row)
	}
	off[len(rows)] = uint32(total)
	flat := make([]Edge, 0, total)
	for _, row := range rows {
		flat = append(flat, row...)
	}
	return off, flat
}

// finish derives everything beyond labels and CSR arrays: the lookup
// tables and the precomputed node classes, levels and depths. Shared by
// Freeze and the v2 snapshot loader.
func (f *Frozen) finish() {
	n := f.arena.count()
	f.outTo = targetsOf(f.outEdges)
	f.inTo = targetsOf(f.inEdges)
	f.sorted = make([]NodeID, n)
	for i := range f.sorted {
		f.sorted[i] = NodeID(i)
	}
	sort.Slice(f.sorted, func(i, j int) bool {
		return f.arena.label(f.sorted[i]) < f.arena.label(f.sorted[j])
	})
	if n >= lookupIndexMin {
		size := uint32(1)
		for size < uint32(4*n) {
			size <<= 1
		}
		f.idx = make([]uint32, size)
		mask := size - 1
		for id := 0; id < n; id++ {
			i := labelHash(f.arena.label(NodeID(id))) & mask
			for f.idx[i] != 0 {
				i = (i + 1) & mask
			}
			f.idx[i] = uint32(id) + 1
		}
	}
	f.roots = rootsOf(f)
	f.concepts = conceptsOf(f)
	f.instances = instancesOf(f)
	f.levels, f.topoErr = topoLevels(f)
	if f.topoErr == nil {
		f.depth = levelDepth(f, f.levels)
	}
}

func targetsOf(edges []Edge) []NodeID {
	to := make([]NodeID, len(edges))
	for i := range edges {
		to[i] = edges[i].To
	}
	return to
}

// labelHash is FNV-1a over the label bytes.
func labelHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// NumNodes returns the node count.
func (f *Frozen) NumNodes() int { return f.arena.count() }

// Mapped reports whether the view's arrays alias a memory-mapped
// snapshot (true only for LoadMapped on a compatible platform).
func (f *Frozen) Mapped() bool { return f.mapped }

// LabelBytes returns the total size of the label arena in bytes.
func (f *Frozen) LabelBytes() int { return len(f.arena.data) }

// Close releases the mapped backing store, if any. Idempotent, and a
// no-op for owned views. After Close on a mapped view, every slice and
// label string obtained from the Frozen is invalid: callers must
// guarantee the last reader has drained first (the serving layer does
// this with a refcounted snapshot epoch).
func (f *Frozen) Close() error {
	cp := f.closer.Swap(nil)
	if cp == nil {
		return nil
	}
	return (*cp).Close()
}

// NumEdges returns the edge count.
func (f *Frozen) NumEdges() int { return len(f.outEdges) }

// Lookup returns the node for the label, or NoNode. Large graphs probe
// the open-addressed hash index; tiny graphs binary-search the sorted
// label table directly.
func (f *Frozen) Lookup(label string) NodeID {
	if f.idx != nil {
		mask := uint32(len(f.idx) - 1)
		for i := labelHash(label) & mask; ; i = (i + 1) & mask {
			slot := f.idx[i]
			if slot == 0 {
				return NoNode
			}
			if id := NodeID(slot - 1); f.arena.label(id) == label {
				return id
			}
		}
	}
	i := sort.Search(len(f.sorted), func(k int) bool { return f.arena.label(f.sorted[k]) >= label })
	if i < len(f.sorted) && f.arena.label(f.sorted[i]) == label {
		return f.sorted[i]
	}
	return NoNode
}

// Label returns the label of a node. The string is a zero-copy view
// into the label arena: valid until the Frozen is Closed (mapped views
// only; owned views live as long as the Frozen itself).
func (f *Frozen) Label(id NodeID) string { return f.arena.label(id) }

// Kind classifies the node: out-edges make a concept, none an instance.
func (f *Frozen) Kind(id NodeID) Kind {
	if f.outOff[id+1] > f.outOff[id] {
		return KindConcept
	}
	return KindInstance
}

// Children returns the out-edges of a node, sorted by Edge.To. The
// slice aliases the CSR array and must not be modified.
func (f *Frozen) Children(id NodeID) []Edge {
	lo, hi := f.outOff[id], f.outOff[id+1]
	if lo == hi {
		return nil
	}
	return f.outEdges[lo:hi:hi]
}

// Parents returns the in-edges of a node (Edge.To is the parent),
// sorted by Edge.To. The slice aliases the CSR array and must not be
// modified.
func (f *Frozen) Parents(id NodeID) []Edge {
	lo, hi := f.inOff[id], f.inOff[id+1]
	if lo == hi {
		return nil
	}
	return f.inEdges[lo:hi:hi]
}

// EdgeBetween returns the edge from -> to by binary search of the CSR
// row.
func (f *Frozen) EdgeBetween(from, to NodeID) (Edge, bool) {
	lo, hi := int(f.outOff[from]), int(f.outOff[from+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.outEdges[mid].To < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(f.outOff[from+1]) && f.outEdges[lo].To == to {
		return f.outEdges[lo], true
	}
	return Edge{}, false
}

// Roots returns all nodes without parents, sorted by label. The slice
// is shared; callers must not modify it.
func (f *Frozen) Roots() []NodeID { return f.roots }

// Concepts returns all concept nodes, sorted by label. The slice is
// shared; callers must not modify it.
func (f *Frozen) Concepts() []NodeID { return f.concepts }

// Instances returns all instance (leaf) nodes, sorted by label. The
// slice is shared; callers must not modify it.
func (f *Frozen) Instances() []NodeID { return f.instances }

// csrScratch is the pooled traversal state for Frozen BFS: a visited
// bitset plus the BFS queue. After a traversal only the words touched
// by queued nodes are dirty, so release clears by queue instead of
// wiping the whole bitset.
type csrScratch struct {
	bits  []uint64
	queue []NodeID
}

func (sc *csrScratch) reset(n int) {
	words := (n + 63) / 64
	if len(sc.bits) < words {
		sc.bits = make([]uint64, words)
	}
	sc.queue = sc.queue[:0]
}

func (sc *csrScratch) seen(id NodeID) bool { return sc.bits[id>>6]&(1<<(id&63)) != 0 }
func (sc *csrScratch) mark(id NodeID)      { sc.bits[id>>6] |= 1 << (id & 63) }

// release zeroes exactly the bits set during the traversal (every
// marked node is on the queue) and returns the scratch to the pool.
func (f *Frozen) release(sc *csrScratch) {
	for _, id := range sc.queue {
		sc.bits[id>>6] = 0
	}
	f.scratch.Put(sc)
}

func (f *Frozen) getScratch(n int) *csrScratch {
	sc, ok := f.scratch.Get().(*csrScratch)
	if !ok {
		sc = &csrScratch{}
	}
	sc.reset(n)
	return sc
}

// closure runs a bitset BFS from id over one CSR direction (given by
// its offset and dense-target arrays) and returns the visited nodes
// excluding id, in visit order.
func (f *Frozen) closure(id NodeID, off []uint32, targets []NodeID) []NodeID {
	sc := f.getScratch(f.NumNodes())
	sc.mark(id)
	sc.queue = append(sc.queue, id)
	for head := 0; head < len(sc.queue); head++ {
		n := sc.queue[head]
		for _, to := range targets[off[n]:off[n+1]] {
			if !sc.seen(to) {
				sc.mark(to)
				sc.queue = append(sc.queue, to)
			}
		}
	}
	var out []NodeID
	if len(sc.queue) > 1 {
		out = make([]NodeID, len(sc.queue)-1)
		// Copy the result and clear the visited bits in one pass over the
		// queue, then return the scratch without a separate release walk.
		for i, id := range sc.queue[1:] {
			out[i] = id
			sc.bits[id>>6] = 0
		}
	}
	sc.bits[id>>6] = 0
	f.scratch.Put(sc)
	return out
}

// Descendants returns the descendant closure of id (excluding id),
// deduplicated, in BFS order. The only allocation is the result slice.
func (f *Frozen) Descendants(id NodeID) []NodeID { return f.closure(id, f.outOff, f.outTo) }

// Ancestors returns the ancestor closure of id (excluding id) in BFS
// order. The only allocation is the result slice.
func (f *Frozen) Ancestors(id NodeID) []NodeID { return f.closure(id, f.inOff, f.inTo) }

// HasPath reports whether to is reachable from from along out-edges.
// Allocates nothing once the pooled scratch is warm.
func (f *Frozen) HasPath(from, to NodeID) bool {
	if from == to {
		return true
	}
	sc := f.getScratch(f.NumNodes())
	sc.mark(from)
	sc.queue = append(sc.queue, from)
	found := false
	for head := 0; head < len(sc.queue) && !found; head++ {
		n := sc.queue[head]
		for _, next := range f.outTo[f.outOff[n]:f.outOff[n+1]] {
			if next == to {
				found = true
				break
			}
			if !sc.seen(next) {
				sc.mark(next)
				sc.queue = append(sc.queue, next)
			}
		}
	}
	f.release(sc)
	return found
}

// TopoLevels returns the precomputed Algorithm 3 level partition (or
// the cycle error recorded at freeze time). The slices are shared;
// callers must not modify them.
func (f *Frozen) TopoLevels() ([][]NodeID, error) {
	if f.topoErr != nil {
		return nil, f.topoErr
	}
	return f.levels, nil
}

// Level returns the precomputed longest-path-to-leaf depth per node (or
// the cycle error recorded at freeze time). The slice is shared;
// callers must not modify it.
func (f *Frozen) Level() ([]int, error) {
	if f.topoErr != nil {
		return nil, f.topoErr
	}
	return f.depth, nil
}
