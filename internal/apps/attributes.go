package apps

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
)

// AttributeMention is one harvested (instance, attribute) pair.
type AttributeMention struct {
	Instance  string
	Attribute string
}

// ParseAttributeMentions extracts attribute evidence from the corpus's
// two attribute sentence shapes:
//
//	"The <attr> of <Instance> is widely discussed."
//	"Everyone knows <Instance>'s <attr> quite well."
//
// This is the weakly-supervised harvester of Pasca's framework ([25],
// Figure 12), reduced to the patterns our corpus substrate emits.
func ParseAttributeMentions(sentences []corpus.Sentence) []AttributeMention {
	var out []AttributeMention
	for _, s := range sentences {
		t := s.Text
		if strings.HasPrefix(t, "The ") {
			rest := t[len("The "):]
			i := strings.Index(rest, " of ")
			j := strings.Index(rest, " is widely discussed.")
			if i > 0 && j > i+4 {
				out = append(out, AttributeMention{
					Instance:  rest[i+4 : j],
					Attribute: rest[:i],
				})
			}
			continue
		}
		if strings.HasPrefix(t, "Everyone knows ") {
			rest := t[len("Everyone knows "):]
			i := strings.Index(rest, "'s ")
			j := strings.Index(rest, " quite well.")
			if i > 0 && j > i+3 {
				out = append(out, AttributeMention{
					Instance:  rest[:i],
					Attribute: rest[i+3 : j],
				})
			}
		}
	}
	return out
}

// HarvestAttributes aggregates attribute counts over the seed instances
// and returns the top-k attributes by support.
func HarvestAttributes(mentions []AttributeMention, seeds []string, k int) []string {
	seedSet := make(map[string]bool, len(seeds))
	for _, s := range seeds {
		seedSet[strings.ToLower(s)] = true
	}
	counts := map[string]int{}
	for _, m := range mentions {
		if seedSet[strings.ToLower(m.Instance)] {
			counts[m.Attribute]++
		}
	}
	attrs := make([]string, 0, len(counts))
	for a := range counts {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool {
		if counts[attrs[i]] != counts[attrs[j]] {
			return counts[attrs[i]] > counts[attrs[j]]
		}
		return attrs[i] < attrs[j]
	})
	if len(attrs) > k {
		attrs = attrs[:k]
	}
	return attrs
}

// PascaSeeds emulates the manually selected seeds of [25]: a human picks
// a handful of instances they happen to know — plausible members, but
// not the ones with the richest corpus support. We model this as a fixed
// mid-typicality slice of the ground-truth instance list.
func PascaSeeds(w *corpus.World, conceptKey string, n int) []string {
	insts := w.Concept(conceptKey).Instances
	lo := 4
	if lo >= len(insts) {
		lo = 0
	}
	hi := lo + n
	if hi > len(insts) {
		hi = len(insts)
	}
	return insts[lo:hi]
}

// ProbaseSeeds selects seeds automatically: the instances with the
// highest typicality T(i|x) — the paper's replacement for manual seeding.
func ProbaseSeeds(pb *core.Probase, concept string, n int) []string {
	ranked := pb.InstancesOf(concept, n)
	out := make([]string, len(ranked))
	for i, r := range ranked {
		out[i] = r.Label
	}
	return out
}

// AttributeReport compares seed policies for one concept set (Fig. 12).
type AttributeReport struct {
	Concepts         int
	PascaPrecision   float64
	ProbasePrecision float64
}

// EvaluateAttributes runs the Figure 12 comparison over concepts that
// have ground-truth attributes: harvest top-k attributes with Pasca
// seeds and with Probase seeds, judging an attribute correct when the
// concept's ground truth lists it.
func EvaluateAttributes(pb *core.Probase, w *corpus.World, sentences []corpus.Sentence, conceptKeys []string, seedN, topK int) AttributeReport {
	mentions := ParseAttributeMentions(sentences)
	var rep AttributeReport
	var pSum, prSum float64
	for _, key := range conceptKeys {
		c := w.Concept(key)
		if c == nil || len(c.Attributes) == 0 {
			continue
		}
		truth := make(map[string]bool, len(c.Attributes))
		for _, a := range c.Attributes {
			truth[a] = true
		}
		judge := func(attrs []string) float64 {
			if len(attrs) == 0 {
				return 0
			}
			good := 0
			for _, a := range attrs {
				if truth[a] {
					good++
				}
			}
			return float64(good) / float64(len(attrs))
		}
		rep.Concepts++
		pSum += judge(HarvestAttributes(mentions, PascaSeeds(w, key, seedN), topK))
		prSum += judge(HarvestAttributes(mentions, ProbaseSeeds(pb, c.PluralLabel(), seedN), topK))
	}
	if rep.Concepts > 0 {
		rep.PascaPrecision = pSum / float64(rep.Concepts)
		rep.ProbasePrecision = prSum / float64(rep.Concepts)
	}
	return rep
}
