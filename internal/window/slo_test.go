package window

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newTestEngine(t *testing.T, clk *fakeClock, cfg SLOConfig) (*Engine, *Series) {
	t.Helper()
	s := NewSeries(testOpts(clk))
	e, err := NewEngine(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return e, s
}

func TestDefaultSLOConfigValid(t *testing.T) {
	if err := DefaultSLOConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSLOConfigValidate(t *testing.T) {
	base := DefaultSLOConfig()
	cases := []struct {
		name   string
		mutate func(*SLOConfig)
		want   string
	}{
		{"bad schema", func(c *SLOConfig) { c.Schema = "nope/v1" }, "schema"},
		{"target too high", func(c *SLOConfig) { c.AvailabilityTarget = 1 }, "availability_target"},
		{"target zero", func(c *SLOConfig) { c.AvailabilityTarget = 0 }, "availability_target"},
		{"no rules", func(c *SLOConfig) { c.BurnRules = nil }, "no burn_rules"},
		{"bad short window", func(c *SLOConfig) { c.BurnRules[0].ShortWindow = "fast" }, "short_window"},
		{"short >= long", func(c *SLOConfig) { c.BurnRules[0].LongWindow = "1m" }, "short < long"},
		{"zero burn rate", func(c *SLOConfig) { c.BurnRules[0].BurnRate = 0 }, "burn_rate"},
		{"negative min requests", func(c *SLOConfig) { c.MinRequests = -1 }, "min_requests"},
	}
	for _, tc := range cases {
		c := base
		c.BurnRules = append([]BurnRule(nil), base.BurnRules...)
		tc.mutate(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadSLOConfig(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(good, []byte(`{
		"schema": "probase-traffic-slo/v1",
		"availability_target": 0.99,
		"min_requests": 5,
		"burn_rules": [{"short_window": "1m", "long_window": "5m", "burn_rate": 10}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadSLOConfig(good)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AvailabilityTarget != 0.99 || len(cfg.BurnRules) != 1 {
		t.Fatalf("loaded config mismatch: %+v", cfg)
	}

	unknown := filepath.Join(dir, "unknown.json")
	os.WriteFile(unknown, []byte(`{"schema": "probase-traffic-slo/v1", "availability_target": 0.99, "min_requests": 5, "burn_rules": [{"short_window": "1m", "long_window": "5m", "burn_rate": 10}], "surprise": 1}`), 0o644)
	if _, err := LoadSLOConfig(unknown); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := LoadSLOConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEngineWindowNames(t *testing.T) {
	clk := newFakeClock()
	e, _ := newTestEngine(t, clk, DefaultSLOConfig())
	got := e.WindowNames()
	want := []string{"1m", "5m", "30m"}
	if len(got) != len(want) {
		t.Fatalf("windows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("windows = %v, want %v", got, want)
		}
	}
}

func TestEngineHealthyTraffic(t *testing.T) {
	clk := newFakeClock()
	e, s := newTestEngine(t, clk, DefaultSLOConfig())
	for i := 0; i < 100; i++ {
		s.Record(ok(time.Millisecond))
	}
	ev := e.Eval()
	if ev.Status != HealthOK {
		t.Fatalf("status = %q, want ok: %+v", ev.Status, ev)
	}
	if ev.MaxBurnRate != 0 {
		t.Fatalf("max burn = %v, want 0", ev.MaxBurnRate)
	}
}

func TestEngineBurnMath(t *testing.T) {
	clk := newFakeClock()
	e, s := newTestEngine(t, clk, DefaultSLOConfig())
	// 10% errors against a 0.1% budget = 100x burn.
	for i := 0; i < 100; i++ {
		if i < 10 {
			s.Record(errOut())
		} else {
			s.Record(ok(time.Millisecond))
		}
	}
	ev := e.Eval()
	for _, wb := range ev.Windows {
		if wb.ErrorRate != 0.1 {
			t.Fatalf("%s error rate = %v, want 0.1", wb.Window, wb.ErrorRate)
		}
		if wb.BurnRate < 99.9 || wb.BurnRate > 100.1 {
			t.Fatalf("%s burn = %v, want ~100", wb.Window, wb.BurnRate)
		}
	}
	if ev.Status != HealthDegraded {
		t.Fatalf("status = %q, want degraded", ev.Status)
	}
	if len(ev.Reasons) == 0 {
		t.Fatal("degraded verdict carries no reasons")
	}
	firing := 0
	for _, r := range ev.Rules {
		if r.Firing {
			firing++
		}
	}
	if firing == 0 {
		t.Fatal("no rule marked firing")
	}
}

func TestEngineMinRequestsGuard(t *testing.T) {
	cfg := DefaultSLOConfig()
	cfg.MinRequests = 50
	clk := newFakeClock()
	e, s := newTestEngine(t, clk, cfg)
	// 10 requests, all errors — a catastrophic rate but below the
	// evaluation floor, so the verdict must stay ok (vacuous-evaluation
	// guard).
	for i := 0; i < 10; i++ {
		s.Record(errOut())
	}
	if ev := e.Eval(); ev.Status != HealthOK {
		t.Fatalf("status below min_requests = %q, want ok", ev.Status)
	}
}

func TestEngineRequiresBothWindows(t *testing.T) {
	cfg := SLOConfig{
		Schema:             SLOSchema,
		AvailabilityTarget: 0.999,
		MinRequests:        1,
		BurnRules:          []BurnRule{{ShortWindow: "1m", LongWindow: "5m", BurnRate: 14.4}},
	}
	clk := newFakeClock()
	e, s := newTestEngine(t, clk, cfg)

	// An old error burst that has left the 1m window but still sits in
	// the 5m one: long burn high, short burn zero → must NOT fire.
	for i := 0; i < 50; i++ {
		s.Record(errOut())
	}
	clk.advance(2 * time.Minute)
	for i := 0; i < 50; i++ {
		s.Record(ok(time.Millisecond))
	}
	ev := e.Eval()
	if ev.Rules[0].LongBurn <= ev.Rules[0].Threshold {
		t.Fatalf("test setup: long burn %v should exceed threshold", ev.Rules[0].LongBurn)
	}
	if ev.Status != HealthOK {
		t.Fatalf("stale burst fired the rule: %+v", ev)
	}
}

func TestEngineLatencyGate(t *testing.T) {
	cfg := DefaultSLOConfig()
	cfg.LatencyP99MS = 5
	cfg.MinRequests = 1
	clk := newFakeClock()
	e, s := newTestEngine(t, clk, cfg)
	for i := 0; i < 100; i++ {
		s.Record(ok(50 * time.Millisecond)) // no errors, but way over the latency objective
	}
	ev := e.Eval()
	if ev.Status != HealthDegraded {
		t.Fatalf("status = %q, want degraded on latency: %+v", ev.Status, ev)
	}
	found := false
	for _, r := range ev.Reasons {
		if strings.Contains(r, "p99") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons %v missing latency explanation", ev.Reasons)
	}
}

func TestEngineEvalTTLCache(t *testing.T) {
	clk := newFakeClock()
	e, s := newTestEngine(t, clk, DefaultSLOConfig())
	for i := 0; i < 100; i++ {
		s.Record(errOut())
	}
	first := e.Eval()
	if first.Status != HealthDegraded {
		t.Fatalf("setup: want degraded, got %q", first.Status)
	}
	// Within the TTL the cached verdict is served even after the rings
	// change...
	s.Reset()
	if got := e.Eval(); got.Status != HealthDegraded {
		t.Fatalf("cached eval within TTL = %q, want degraded", got.Status)
	}
	// ...and after the TTL the engine re-evaluates.
	clk.advance(2 * time.Second)
	if got := e.Eval(); got.Status != HealthOK {
		t.Fatalf("eval after TTL = %q, want ok", got.Status)
	}
	// A backwards clock step forces re-evaluation instead of pinning the
	// future-stamped cache forever.
	for i := 0; i < 100; i++ {
		s.Record(errOut())
	}
	clk.advance(-time.Hour)
	if got := e.Eval(); got.Status != HealthDegraded {
		t.Fatalf("eval after backwards step = %q, want degraded", got.Status)
	}
}

func TestEngineBurnRateAccessor(t *testing.T) {
	clk := newFakeClock()
	e, s := newTestEngine(t, clk, DefaultSLOConfig())
	for i := 0; i < 100; i++ {
		s.Record(errOut()) // 100% errors: burn saturates at the finite cap? No — budget 0.001 → burn 1000.
	}
	if got := e.BurnRate("1m"); got < 999 || got > 1001 {
		t.Fatalf("BurnRate(1m) = %v, want ~1000", got)
	}
	if got := e.BurnRate("2h"); got != 0 {
		t.Fatalf("BurnRate(unknown) = %v, want 0", got)
	}
}

func TestNewEngineRejectsBadConfig(t *testing.T) {
	if _, err := NewEngine(SLOConfig{}, NewSeries(Options{})); err == nil {
		t.Fatal("zero config accepted")
	}
}
