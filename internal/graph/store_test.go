package graph

import (
	"reflect"
	"testing"
)

// diamond builds: thing -> {animal, company}; animal -> {cat, dog};
// company -> {IBM}; pet -> {cat}.
func diamond() (*Store, map[string]NodeID) {
	s := NewStore()
	ids := map[string]NodeID{}
	for _, l := range []string{"thing", "animal", "company", "pet", "cat", "dog", "IBM"} {
		ids[l] = s.Intern(l)
	}
	s.AddEdge(ids["thing"], ids["animal"], 5, 0.9)
	s.AddEdge(ids["thing"], ids["company"], 4, 0.9)
	s.AddEdge(ids["animal"], ids["cat"], 10, 0.95)
	s.AddEdge(ids["animal"], ids["dog"], 8, 0.95)
	s.AddEdge(ids["company"], ids["IBM"], 7, 0.99)
	s.AddEdge(ids["pet"], ids["cat"], 3, 0.8)
	return s, ids
}

func TestInternAndLookup(t *testing.T) {
	s := NewStore()
	a := s.Intern("alpha")
	if got := s.Intern("alpha"); got != a {
		t.Error("re-intern returned different id")
	}
	if s.Lookup("alpha") != a {
		t.Error("lookup failed")
	}
	if s.Lookup("missing") != NoNode {
		t.Error("missing label found")
	}
	if s.Label(a) != "alpha" {
		t.Error("label mismatch")
	}
	if s.NumNodes() != 1 {
		t.Errorf("NumNodes = %d", s.NumNodes())
	}
}

func TestAddEdgeAccumulates(t *testing.T) {
	s := NewStore()
	a, b := s.Intern("a"), s.Intern("b")
	s.AddEdge(a, b, 2, 0)
	s.AddEdge(a, b, 3, 0.5)
	e, ok := s.EdgeBetween(a, b)
	if !ok || e.Count != 5 || e.Plausibility != 0.5 {
		t.Errorf("edge = %+v ok=%v", e, ok)
	}
	if s.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", s.NumEdges())
	}
	// in-edge mirrors out-edge
	par := s.Parents(b)
	if len(par) != 1 || par[0].To != a || par[0].Count != 5 {
		t.Errorf("parents = %+v", par)
	}
}

func TestKindRootsConceptsInstances(t *testing.T) {
	s, ids := diamond()
	if s.Kind(ids["animal"]) != KindConcept || s.Kind(ids["cat"]) != KindInstance {
		t.Error("Kind misclassifies")
	}
	roots := s.Roots()
	if len(roots) != 2 || s.Label(roots[0]) != "pet" || s.Label(roots[1]) != "thing" {
		got := make([]string, len(roots))
		for i, r := range roots {
			got[i] = s.Label(r)
		}
		t.Errorf("roots = %v", got)
	}
	if len(s.Concepts()) != 4 {
		t.Errorf("concepts = %d, want 4", len(s.Concepts()))
	}
	if len(s.Instances()) != 3 {
		t.Errorf("instances = %d, want 3", len(s.Instances()))
	}
}

func TestTraversals(t *testing.T) {
	s, ids := diamond()
	desc := s.Descendants(ids["thing"])
	if len(desc) != 5 {
		t.Errorf("descendants of thing = %d, want 5", len(desc))
	}
	anc := s.Ancestors(ids["cat"])
	labels := map[string]bool{}
	for _, a := range anc {
		labels[s.Label(a)] = true
	}
	if !labels["animal"] || !labels["pet"] || !labels["thing"] {
		t.Errorf("ancestors of cat = %v", labels)
	}
	if !s.HasPath(ids["thing"], ids["cat"]) {
		t.Error("path thing->cat missing")
	}
	if s.HasPath(ids["cat"], ids["thing"]) {
		t.Error("reverse path found")
	}
	if !s.HasPath(ids["cat"], ids["cat"]) {
		t.Error("self path missing")
	}
}

func TestTopoLevelsAndLevel(t *testing.T) {
	s, ids := diamond()
	levels, err := s.TopoLevels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if got := len(levels[0]); got != 2 { // pet, thing
		t.Errorf("level 1 size = %d", got)
	}
	depth, err := s.Level()
	if err != nil {
		t.Fatal(err)
	}
	if depth[ids["cat"]] != 0 || depth[ids["animal"]] != 1 || depth[ids["thing"]] != 2 {
		t.Errorf("depths: cat=%d animal=%d thing=%d", depth[ids["cat"]], depth[ids["animal"]], depth[ids["thing"]])
	}
}

func TestTopoLevelsDetectsCycle(t *testing.T) {
	s := NewStore()
	a, b := s.Intern("a"), s.Intern("b")
	s.AddEdge(a, b, 1, 0)
	s.AddEdge(b, a, 1, 0)
	if _, err := s.TopoLevels(); err == nil {
		t.Error("cycle not detected")
	}
	if _, err := s.Level(); err == nil {
		t.Error("Level on cyclic graph should fail")
	}
}

func TestEdgeBetweenMissing(t *testing.T) {
	s, ids := diamond()
	if _, ok := s.EdgeBetween(ids["cat"], ids["thing"]); ok {
		t.Error("found nonexistent edge")
	}
}

func TestDescendantsOfLeafEmpty(t *testing.T) {
	s, ids := diamond()
	if d := s.Descendants(ids["IBM"]); len(d) != 0 {
		t.Errorf("leaf descendants = %v", d)
	}
}

func TestDiamondDedup(t *testing.T) {
	// a -> b, a -> c, b -> d, c -> d: d appears once in Descendants(a).
	s := NewStore()
	a, b, c, d := s.Intern("a"), s.Intern("b"), s.Intern("c"), s.Intern("d")
	s.AddEdge(a, b, 1, 0)
	s.AddEdge(a, c, 1, 0)
	s.AddEdge(b, d, 1, 0)
	s.AddEdge(c, d, 1, 0)
	if got := s.Descendants(a); len(got) != 3 {
		t.Errorf("descendants = %d, want 3", len(got))
	}
	if got := s.Ancestors(d); len(got) != 3 {
		t.Errorf("ancestors = %d, want 3", len(got))
	}
	if !reflect.DeepEqual(s.Roots(), []NodeID{a}) {
		t.Errorf("roots = %v", s.Roots())
	}
}
