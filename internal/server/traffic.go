package server

import (
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/obs"
	"repro/internal/sketch"
	"repro/internal/window"
)

// TrafficSchema names the /v1/admin/traffic payload layout (a
// benchfmt.Report envelope, like probase-inspect/v1); bump on breaking
// changes.
const TrafficSchema = "probase-traffic/v1"

// hotKeyCapacity is the per-endpoint Space-Saving capacity: hot keys
// reported with count ≫ observed/64 are genuinely hot (see
// internal/sketch for the bound).
const hotKeyCapacity = 64

// defaultHotKeys is how many heavy hitters /v1/admin/traffic reports
// per endpoint.
const defaultHotKeys = 10

// traffic is the server's live analytics state: per-endpoint rolling
// RED windows, per-endpoint heavy-hitter sketches over query
// arguments, and the SLO burn-rate engine over the aggregate window.
type traffic struct {
	windows *window.Set
	engine  *window.Engine

	mu  sync.Mutex
	hot map[string]*sketch.TopK
}

// newTraffic wires the analytics layer for the given endpoints. The
// injected clock steers rings and engine alike — the determinism seam
// the tests and the fake-clock acceptance criterion rely on.
func newTraffic(endpoints []string, slo window.SLOConfig, now func() time.Time) (*traffic, error) {
	set := window.NewSet(endpoints, window.Options{Now: now})
	engine, err := window.NewEngine(slo, set.Total())
	if err != nil {
		return nil, err
	}
	hot := make(map[string]*sketch.TopK, len(endpoints))
	for _, ep := range endpoints {
		hot[ep] = sketch.New(hotKeyCapacity)
	}
	return &traffic{windows: set, engine: engine, hot: hot}, nil
}

// record books one finished request; hotKey is the request's query
// argument ("" for endpoints without one).
func (t *traffic) record(endpoint string, o window.Outcome, hotKey string) {
	t.windows.Record(endpoint, o)
	if hotKey == "" {
		return
	}
	t.mu.Lock()
	if s, ok := t.hot[endpoint]; ok {
		s.Observe(hotKey)
	}
	t.mu.Unlock()
}

// hotKeys reports up to k heavy hitters for one endpoint.
func (t *traffic) hotKeys(endpoint string, k int) []sketch.Item {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.hot[endpoint]
	if !ok {
		return nil
	}
	return s.Top(k)
}

// reset clears windows and sketches — the snapshot hot-swap path: the
// new snapshot starts with a clean traffic history (its latencies and
// hit rates are a different population).
func (t *traffic) reset() {
	t.windows.Reset()
	t.mu.Lock()
	for _, s := range t.hot {
		s.Reset()
	}
	t.mu.Unlock()
}

// hotKeyFor extracts the query argument a request is "about" — what
// the heavy-hitter sketches aggregate. Endpoints without a natural key
// (healthz, admin) return "".
func hotKeyFor(endpoint string, r *http.Request) string {
	switch endpoint {
	case epInstances:
		return strings.TrimSpace(r.FormValue("concept"))
	case epConcepts:
		return strings.TrimSpace(r.FormValue("term"))
	case epTypicality:
		c := strings.TrimSpace(r.FormValue("concept"))
		i := strings.TrimSpace(r.FormValue("instance"))
		if c == "" && i == "" {
			return ""
		}
		return c + "/" + i
	case epPlausibility:
		x := strings.TrimSpace(r.FormValue("x"))
		y := strings.TrimSpace(r.FormValue("y"))
		if x == "" && y == "" {
			return ""
		}
		return x + "/" + y
	case epConceptualize:
		if terms := strings.TrimSpace(r.FormValue("terms")); terms != "" {
			return terms
		}
		if text := strings.TrimSpace(r.FormValue("text")); text != "" {
			return "text:" + text
		}
	}
	return ""
}

// endpointTraffic is one endpoint's live analytics in the
// probase-traffic/v1 payload.
type endpointTraffic struct {
	Endpoint string         `json:"endpoint"`
	Windows  []window.Stats `json:"windows"`
	HotKeys  []sketch.Item  `json:"hot_keys,omitempty"`
}

// handleAdminTraffic serves the live traffic analytics as a
// probase-traffic/v1 report: one experiment per endpoint (rolling
// windows + hot keys), one "total" aggregate, and one "slo" experiment
// carrying the burn-rate evaluation that also drives /v1/healthz.
func (s *Server) handleAdminTraffic(st *snapState, r *http.Request) (string, any, error) {
	uptime := time.Since(s.start).Seconds()
	if uptime <= 0 {
		uptime = 1e-9 // monotonic clock cannot actually go backwards; guard for tests with frozen clocks
	}
	totalStats := s.traffic.windows.Total().Stats(window.DefaultWindows...)
	report := benchfmt.Report{
		Schema: TrafficSchema,
		Build:  obs.Version(),
		Options: benchfmt.Options{
			Scale: 1,
			// Sentences carries the snapshot node count (the
			// probase-inspect convention for reusing the envelope);
			// Queries is the request count in the longest window.
			Sentences: st.pb.Graph.NumNodes(),
			Queries:   int(totalStats[len(totalStats)-1].Requests),
		},
		TotalSeconds: uptime,
	}
	report.Experiments = append(report.Experiments, benchfmt.Experiment{
		Name:   "total",
		Result: endpointTraffic{Endpoint: "total", Windows: totalStats},
	})
	for _, ep := range s.traffic.windows.Endpoints() {
		report.Experiments = append(report.Experiments, benchfmt.Experiment{
			Name: "traffic:" + ep,
			Result: endpointTraffic{
				Endpoint: ep,
				Windows:  s.traffic.windows.Series(ep).Stats(window.DefaultWindows...),
				HotKeys:  s.traffic.hotKeys(ep, defaultHotKeys),
			},
		})
	}
	report.Experiments = append(report.Experiments, benchfmt.Experiment{
		Name:   "slo",
		Result: s.traffic.engine.Eval(),
	})
	return "", report, nil
}
