package prob

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Ranked is a label with a probability score, sorted descending in all
// APIs that return slices of it.
type Ranked struct {
	Label string
	Score float64
}

// Typicality computes T(i|x) (instantiation) and T(x|i) (abstraction)
// over a plausibility-annotated taxonomy DAG, per Section 4.2.
//
// A Typicality is safe for concurrent use by multiple goroutines once
// NewTypicality returns: the reachability table is immutable after
// construction and the memoised T(i|x) tables are guarded by a lock.
type Typicality struct {
	g graph.Reader
	// reach holds P(x,y): the probability that at least one path connects
	// x down to y, from Algorithm 3. Keyed by x<<32|y. P(x,x)=1 implicit.
	reach map[uint64]float64
	// instMu guards instCache; queries memoise lazily, so concurrent
	// readers race on the map without it.
	instMu sync.RWMutex
	// instCache memoises the normalised T(i|x) table per concept.
	instCache map[graph.NodeID][]Ranked
	// conceptMass is the prior weight of each concept (its outgoing
	// evidence mass), used by the Bayes inversion for T(x|i).
	conceptMass map[graph.NodeID]float64
	totalMass   float64
}

func key(x, y graph.NodeID) uint64 { return uint64(x)<<32 | uint64(y) }

// Options configures Algorithm 3 and the typicality caches. The zero
// value runs the DP at GOMAXPROCS workers with telemetry discarded.
type Options struct {
	// Workers bounds the per-level fan-out of the reachability DP;
	// <= 0 means GOMAXPROCS. The reach table is byte-identical at every
	// worker count (see ARCHITECTURE.md for the determinism argument).
	Workers int
	// Reporter receives stage telemetry: the DP is timed and its table
	// size reported under stage "prob.algorithm3". Nil discards it.
	Reporter obs.StageReporter
	// Prev enables the incremental DP: reach rows of nodes outside the
	// dirty closure are copied from this previously built engine (node
	// identity resolved by label) instead of recomputed. Requires Seeds.
	Prev *Typicality
	// Seeds are the nodes of the *new* graph whose incoming edge multiset
	// (parent label, count, plausibility) differs from Prev's graph —
	// including nodes Prev's graph lacks. The dirty closure is the seeds
	// plus all their descendants: a node outside it has an unchanged
	// ancestor cone, so its P(·,y) row is provably identical and safe to
	// copy. Ignored when Prev is nil.
	Seeds []graph.NodeID
}

// NewTypicality runs Algorithm 3 over the DAG and prepares the caches.
// The graph's edges must carry counts; plausibilities default to a
// count-saturating estimate when absent (0).
func NewTypicality(g graph.Reader) (*Typicality, error) {
	return New(g, Options{})
}

// NewTypicalityObserved is NewTypicality with stage telemetry: the
// Algorithm 3 reachability DP is timed and its table size reported
// under stage "prob.algorithm3". A nil reporter discards it.
func NewTypicalityObserved(g graph.Reader, reporter obs.StageReporter) (*Typicality, error) {
	return New(g, Options{Reporter: reporter})
}

// reachEntry is one computed P(x,y) for a fixed y — the per-node row
// buffer the parallel DP fills before the serial merge.
type reachEntry struct {
	x graph.NodeID
	p float64
}

// New runs Algorithm 3 with explicit options.
//
// Within one topological level every node's P(·,y) row depends only on
// rows from strictly earlier levels (TopoLevels places all of y's
// parents before y), so rows of one level are computed concurrently
// into per-node buffers and merged into the reach table in node order
// between levels. No goroutine writes state another reads, and the
// per-row float arithmetic is the serial code unchanged, so the table
// is byte-identical to a workers=1 run.
func New(g graph.Reader, opts Options) (*Typicality, error) {
	rep := obs.ReporterOrNop(opts.Reporter)
	workers := parallel.Workers(opts.Workers)
	rep.StageStart(obs.StageProbAlgorithm3)
	dpStart := time.Now()
	t := &Typicality{
		g:           g,
		reach:       make(map[uint64]float64),
		instCache:   make(map[graph.NodeID][]Ranked),
		conceptMass: make(map[graph.NodeID]float64),
	}
	levels, err := g.TopoLevels()
	if err != nil {
		return nil, err
	}
	// Incremental mode: mark the dirty closure (seeds plus descendants)
	// and seed the table with the previous build's rows for every clean
	// node. A clean node's entire ancestor cone is clean — were any
	// ancestor dirty, the node would be its descendant and dirty too —
	// so the copied row is exactly what the full DP would recompute.
	var dirtyRows, reusedEntries int64
	var dirty map[graph.NodeID]bool
	if opts.Prev != nil {
		dirty = make(map[graph.NodeID]bool, len(opts.Seeds))
		for _, s := range opts.Seeds {
			if dirty[s] {
				continue
			}
			dirty[s] = true
			for _, d := range g.Descendants(s) {
				dirty[d] = true
			}
		}
		prev := opts.Prev
		for k, p := range prev.reach {
			x, y := graph.NodeID(k>>32), graph.NodeID(k&0xFFFFFFFF)
			ny := g.Lookup(prev.g.Label(y))
			if ny == graph.NoNode || dirty[ny] {
				continue
			}
			nx := g.Lookup(prev.g.Label(x))
			if nx == graph.NoNode {
				continue
			}
			t.reach[key(nx, ny)] = p
			reusedEntries++
		}
	}
	// Algorithm 3: traverse top-down; when a node y is reached, every
	// ancestor x of its parents already has P(x, parent) computed.
	//
	//	P(x,y) = 1 - Π_{z ∈ Parent(y)} (1 - P(z,y) · P(x,z))
	ctx := context.Background()
	for _, level := range levels {
		rows := make([][]reachEntry, len(level))
		// Fan out: each node of the level computes its row reading only
		// prior-level entries of t.reach; writes go to rows[i]. In
		// incremental mode clean nodes keep their copied rows.
		if err := parallel.ForEach(ctx, workers, len(level), func(i int) error {
			if dirty == nil || dirty[level[i]] {
				rows[i] = t.reachRow(level[i])
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// Serial merge in node order. Map insertion order is irrelevant
		// to lookups, but merging here (not in the workers) keeps every
		// write single-threaded between fan-outs.
		for i, row := range rows {
			y := level[i]
			if dirty != nil && dirty[y] {
				dirtyRows++
			}
			for _, e := range row {
				t.reach[key(e.x, y)] = e.p
			}
		}
	}
	// The concept-mass prior accumulates totalMass in Concepts() order;
	// kept serial so the float summation order (and thus the snapshot's
	// derived scores) never depends on scheduling.
	for _, x := range g.Concepts() {
		var m float64
		for _, e := range g.Children(x) {
			m += float64(e.Count) * edgePlausibility(e)
		}
		t.conceptMass[x] = m
		t.totalMass += m
	}
	rep.Count(obs.StageProbAlgorithm3, "reach_entries", int64(len(t.reach)))
	rep.Count(obs.StageProbAlgorithm3, "topo_levels", int64(len(levels)))
	rep.Count(obs.StageProbAlgorithm3, "concepts", int64(len(t.conceptMass)))
	rep.Count(obs.StageProbAlgorithm3, "workers", int64(workers))
	if opts.Prev != nil {
		rep.Count(obs.StageProbAlgorithm3, "dirty_rows", dirtyRows)
		rep.Count(obs.StageProbAlgorithm3, "reused_entries", reusedEntries)
	}
	rep.StageEnd(obs.StageProbAlgorithm3, time.Since(dpStart))
	return t, nil
}

// reachRow computes P(x, y) for every candidate ancestor x of one node,
// reading only reach entries of strictly earlier topological levels.
// The candidate set is sorted so the row — and any iteration over it —
// is deterministic.
func (t *Typicality) reachRow(y graph.NodeID) []reachEntry {
	parents := t.g.Parents(y)
	if len(parents) == 0 {
		return nil
	}
	// Candidate ancestors: parents plus every x with P(x,z) known.
	anc := make(map[graph.NodeID]bool)
	for _, pe := range parents {
		anc[pe.To] = true
	}
	for _, pe := range parents {
		for _, x := range t.g.Ancestors(pe.To) {
			anc[x] = true
		}
	}
	xs := make([]graph.NodeID, 0, len(anc))
	for x := range anc {
		xs = append(xs, x)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	row := make([]reachEntry, 0, len(xs))
	for _, x := range xs {
		q := 1.0
		for _, pe := range parents {
			pxz := 1.0
			if x != pe.To {
				pxz = t.reach[key(x, pe.To)]
			}
			q *= 1 - edgePlausibility(pe)*pxz
		}
		if p := 1 - q; p > 0 {
			row = append(row, reachEntry{x: x, p: p})
		}
	}
	return row
}

// edgePlausibility returns the edge's plausibility, substituting a
// count-saturating estimate when the edge was never scored.
func edgePlausibility(e graph.Edge) float64 {
	if e.Plausibility > 0 {
		return e.Plausibility
	}
	// 1 - 2^-n, capped: repeated sightings make a claim plausible.
	n := e.Count
	if n > 10 {
		n = 10
	}
	p := 1.0
	for i := int64(0); i < n; i++ {
		p *= 0.5
	}
	return 1 - p
}

// DirtySeeds compares two taxonomy graphs and returns, sorted, the nodes
// of next whose incoming edge multiset (parent label, count, plausibility
// bits) differs from prev's node of the same label — including nodes prev
// lacks entirely. These are the seeds of the incremental DP's dirty
// closure (Options.Seeds).
func DirtySeeds(prev, next graph.Reader) []graph.NodeID {
	inSig := func(g graph.Reader, id graph.NodeID) []string {
		parents := g.Parents(id)
		sig := make([]string, len(parents))
		for i, pe := range parents {
			sig[i] = fmt.Sprintf("%s\x00%d\x00%x", g.Label(pe.To), pe.Count, math.Float64bits(pe.Plausibility))
		}
		sort.Strings(sig)
		return sig
	}
	var seeds []graph.NodeID
	for id := 0; id < next.NumNodes(); id++ {
		nid := graph.NodeID(id)
		pid := prev.Lookup(next.Label(nid))
		if pid == graph.NoNode {
			seeds = append(seeds, nid)
			continue
		}
		a, b := inSig(next, nid), inSig(prev, pid)
		if len(a) != len(b) {
			seeds = append(seeds, nid)
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				seeds = append(seeds, nid)
				break
			}
		}
	}
	return seeds
}

// Reach returns P(x, y), the probability that some path connects x to y.
func (t *Typicality) Reach(x, y graph.NodeID) float64 {
	if x == y {
		return 1
	}
	return t.reach[key(x, y)]
}

// InstancesOf returns the instances of concept x ranked by typicality
// T(i|x) (Eq. 4): evidence from x itself and from every descendant
// concept y, weighted by P(x,y) · n(y,i) · P(y,i), normalised over Ix.
func (t *Typicality) InstancesOf(x graph.NodeID) []Ranked {
	t.instMu.RLock()
	cached, ok := t.instCache[x]
	t.instMu.RUnlock()
	if ok {
		return cached
	}
	scores := make(map[graph.NodeID]float64)
	concepts := append([]graph.NodeID{x}, t.g.Descendants(x)...)
	for _, y := range concepts {
		if t.g.Kind(y) != graph.KindConcept {
			continue
		}
		pxy := t.Reach(x, y)
		if pxy == 0 {
			continue
		}
		for _, e := range t.g.Children(y) {
			if t.g.Kind(e.To) != graph.KindInstance {
				continue
			}
			scores[e.To] += pxy * float64(e.Count) * edgePlausibility(e)
		}
	}
	// Sum and emit in node order: map iteration order varies per run,
	// and float addition is not associative, so normalising in a random
	// order would make scores differ in their last bits between runs —
	// breaking the contract that two builds of the same corpus answer
	// queries bit-identically.
	ids := make([]graph.NodeID, 0, len(scores))
	for i := range scores {
		ids = append(ids, i)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var total float64
	for _, i := range ids {
		total += scores[i]
	}
	out := make([]Ranked, 0, len(ids))
	for _, i := range ids {
		score := scores[i]
		if total > 0 {
			score /= total
		}
		out = append(out, Ranked{Label: t.g.Label(i), Score: score})
	}
	sortRanked(out)
	t.instMu.Lock()
	t.instCache[x] = out
	t.instMu.Unlock()
	return out
}

// ConceptsOf returns the concepts an instance belongs to, ranked by the
// abstraction typicality T(x|i) obtained from T(i|x) by Bayes' rule with
// the concept-mass prior.
func (t *Typicality) ConceptsOf(i graph.NodeID) []Ranked {
	type cand struct {
		x graph.NodeID
		p float64
	}
	var cands []cand
	var norm float64
	for _, x := range t.g.Ancestors(i) {
		if t.g.Kind(x) != graph.KindConcept {
			continue
		}
		tix := t.instanceScore(x, i)
		if tix <= 0 {
			continue
		}
		prior := t.conceptMass[x] / t.totalMass
		p := tix * prior
		cands = append(cands, cand{x, p})
		norm += p
	}
	out := make([]Ranked, 0, len(cands))
	for _, c := range cands {
		p := c.p
		if norm > 0 {
			p = c.p / norm
		}
		out = append(out, Ranked{Label: t.g.Label(c.x), Score: p})
	}
	sortRanked(out)
	return out
}

// instanceScore returns T(i|x) for one instance from the cached table.
func (t *Typicality) instanceScore(x, i graph.NodeID) float64 {
	label := t.g.Label(i)
	for _, r := range t.InstancesOf(x) {
		if r.Label == label {
			return r.Score
		}
	}
	return 0
}

// ConceptsOfSet conceptualises a set of instances jointly: assuming the
// instances are independently drawn from one concept (the Bayesian
// reading of Section 5.3.2), score(x) ∝ prior(x) · Π_i T(i|x). Instances
// unknown to the taxonomy are ignored; ok=false when none is known.
func (t *Typicality) ConceptsOfSet(instances []graph.NodeID) ([]Ranked, bool) {
	known := instances[:0:0]
	for _, i := range instances {
		if i != graph.NoNode {
			known = append(known, i)
		}
	}
	if len(known) == 0 {
		return nil, false
	}
	// Candidate concepts: ancestors of every known instance.
	counts := make(map[graph.NodeID]int)
	for _, i := range known {
		for _, x := range t.g.Ancestors(i) {
			if t.g.Kind(x) == graph.KindConcept {
				counts[x]++
			}
		}
	}
	var cands []graph.NodeID
	for x, c := range counts {
		if c == len(known) {
			cands = append(cands, x)
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
	var out []Ranked
	var norm float64
	for _, x := range cands {
		score := t.conceptMass[x] / t.totalMass
		for _, i := range known {
			score *= t.instanceScore(x, i)
		}
		if score > 0 {
			out = append(out, Ranked{Label: t.g.Label(x), Score: score})
			norm += score
		}
	}
	for i := range out {
		out[i].Score /= norm
	}
	sortRanked(out)
	return out, len(out) > 0
}

func sortRanked(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Label < rs[j].Label
	})
}

// TopK truncates a ranked list to its first k entries.
func TopK(rs []Ranked, k int) []Ranked {
	if k < len(rs) {
		return rs[:k]
	}
	return rs
}
