package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func writeCorpus(t *testing.T, n int) string {
	t.Helper()
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: n, Seed: 11}).Generate()
	path := filepath.Join(t.TempDir(), "c.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestBuildGraphSnapshot(t *testing.T) {
	corpusPath := writeCorpus(t, 4000)
	out := filepath.Join(t.TempDir(), "p.bin")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-corpus", corpusPath, "-o", out}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pb, err := core.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Graph.NumNodes() == 0 {
		t.Error("snapshot has no nodes")
	}
	if !strings.Contains(stderr.String(), "pairs") {
		t.Errorf("stderr = %q", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout not clean for piping: %q", stdout.String())
	}
}

func TestBuildFullSnapshot(t *testing.T) {
	corpusPath := writeCorpus(t, 4000)
	out := filepath.Join(t.TempDir(), "p.bin")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-corpus", corpusPath, "-o", out, "-full"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pb, err := core.LoadFull(f)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Store == nil || pb.Store.NumPairs() == 0 {
		t.Error("full snapshot lost Γ")
	}
}

func TestBuildMissingCorpus(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-corpus", "/no/such/file.tsv"}, &stdout, &stderr); err == nil {
		t.Error("missing corpus accepted")
	}
}

func TestBuildMalformedCorpus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.tsv")
	if err := os.WriteFile(path, []byte("not a corpus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-corpus", path}, &stdout, &stderr); err == nil {
		t.Error("malformed corpus accepted")
	}
}

func TestBuildQuiet(t *testing.T) {
	corpusPath := writeCorpus(t, 1000)
	out := filepath.Join(t.TempDir(), "p.bin")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-corpus", corpusPath, "-o", out, "-quiet"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stderr.Len() != 0 {
		t.Errorf("-quiet still wrote to stderr: %q", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("-quiet wrote to stdout: %q", stdout.String())
	}
}

func TestBuildStatsOut(t *testing.T) {
	corpusPath := writeCorpus(t, 2000)
	dir := t.TempDir()
	out := filepath.Join(dir, "p.bin")
	statsPath := filepath.Join(dir, "stats.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-corpus", corpusPath, "-o", out, "-quiet", "-stats-out", statsPath}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var report statsReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("stats report is not valid JSON: %v", err)
	}
	if report.Pairs == 0 || report.Rounds == 0 {
		t.Errorf("empty report: %+v", report)
	}
	if report.SnapshotBytes == 0 {
		t.Error("snapshot size missing from report")
	}
	stages := make(map[string]bool)
	for _, s := range report.Stages {
		stages[s.Name] = true
	}
	for _, want := range []string{"extraction", "taxonomy", "prob.algorithm3"} {
		if !stages[want] {
			t.Errorf("stage %q missing from report (have %v)", want, report.Stages)
		}
	}

	// The trace section maps every span onto the paper's algorithms.
	if report.Trace == nil {
		t.Fatal("trace section missing from report")
	}
	if report.Trace.TraceID == "" || report.Trace.DurationUS <= 0 {
		t.Errorf("trace header incomplete: %+v", report.Trace)
	}
	spans := map[string]traceSpan{}
	for _, sp := range report.Trace.Spans {
		spans[sp.Name] = sp
	}
	if sp, ok := spans["probase-build"]; !ok || sp.Algorithm != "" {
		t.Errorf("root span wrong: %+v", sp)
	}
	for name, wantAlgo := range map[string]string{
		"extraction":         "algorithm1",
		"extraction.round.1": "algorithm1",
		"taxonomy":           "algorithm2",
		"prob.algorithm3":    "algorithm3",
		"prob.train":         "section4.1",
		"snapshot.save":      "",
	} {
		sp, ok := spans[name]
		if !ok {
			t.Errorf("trace missing span %q", name)
			continue
		}
		if sp.Algorithm != wantAlgo {
			t.Errorf("span %q algorithm = %q, want %q", name, sp.Algorithm, wantAlgo)
		}
	}
	if rs := spans["extraction.round.1"]; rs.Attrs["accepted"] == "" {
		t.Errorf("round span lost its counters: %+v", rs)
	}
}

func TestBuildStatsToStdout(t *testing.T) {
	corpusPath := writeCorpus(t, 1000)
	out := filepath.Join(t.TempDir(), "p.bin")
	var stdout, stderr bytes.Buffer
	args := []string{"-corpus", corpusPath, "-o", out, "-quiet", "-stats-out", "-"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var report statsReport
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout stats are not valid JSON: %v\n%s", err, stdout.String())
	}
}

func TestBuildVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "probase-build version") {
		t.Errorf("stdout = %q", stdout.String())
	}
}
