package graph

import (
	"bytes"
	"testing"
)

// snapBytes writes g as a v2 "PBC2" snapshot and returns the bytes.
func snapBytes(t *testing.T, g Reader) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestThawRefreezeRoundTrip: NewBuilderFrom over a frozen graph, then a
// re-freeze, must reproduce the snapshot byte for byte — same nodes,
// same edge counts, and the same plausibility bits. Delta builds thaw
// the previous taxonomy to extend it, so any loss here would silently
// corrupt every incremental snapshot.
func TestThawRefreezeRoundTrip(t *testing.T) {
	s := benchGraph()
	want := snapBytes(t, s)

	fz, err := LoadFrozen(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	thawed := NewBuilderFrom(fz)
	if thawed.NumNodes() != fz.NumNodes() || thawed.NumEdges() != fz.NumEdges() {
		t.Fatalf("thaw changed shape: %d/%d nodes, %d/%d edges",
			thawed.NumNodes(), fz.NumNodes(), thawed.NumEdges(), fz.NumEdges())
	}
	if got := snapBytes(t, thawed); !bytes.Equal(got, want) {
		t.Fatal("thaw -> refreeze produced different snapshot bytes")
	}
	// Spot-check that plausibility survived bit for bit through the
	// Builder representation, not only through the re-encoded bytes.
	for id := 0; id < fz.NumNodes(); id++ {
		a, b := fz.Children(NodeID(id)), thawed.Children(NodeID(id))
		if len(a) != len(b) {
			t.Fatalf("node %d: %d vs %d children", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d edge %d: %+v vs %+v", id, i, a[i], b[i])
			}
		}
	}
}

// TestThawFromMappedSourceOutlivesMapping: a Builder thawed from a
// memory-mapped Frozen must stay valid after the mapping closes. Mapped
// labels are zero-copy views into the arena bytes; NewBuilderFrom must
// copy them out, or every label in the thawed Builder dangles the
// moment the base snapshot's mmap is released.
func TestThawFromMappedSourceOutlivesMapping(t *testing.T) {
	s := benchGraph()
	want := snapBytes(t, s)

	// Give LoadMapped its own buffer so we can poison it afterwards and
	// prove the thawed Builder holds no views into it.
	data := append([]byte(nil), want...)
	fz, err := LoadMapped(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fz.Mapped() {
		t.Skip("snapshot did not map zero-copy on this host")
	}
	thawed := NewBuilderFrom(fz)
	if err := fz.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0xFF
	}

	if got, wantLbl := thawed.Label(thawed.Lookup("root0")), "root0"; got != wantLbl {
		t.Fatalf("label after unmap = %q, want %q", got, wantLbl)
	}
	if got := snapBytes(t, thawed); !bytes.Equal(got, want) {
		t.Fatal("thaw from mapped source lost data after unmap")
	}
}
