package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// RequestIDHeader is echoed on every response and honoured on requests
// so IDs propagate across proxies and retries.
const RequestIDHeader = "X-Request-ID"

// maxInboundRequestID bounds what we accept from the client header; a
// longer value is replaced rather than truncated (it is attacker
// controlled and lands in logs).
const maxInboundRequestID = 64

// MiddlewareConfig tunes the HTTP observability middleware.
type MiddlewareConfig struct {
	// Logger receives the access and slow-query records; nil means
	// slog.Default().
	Logger *slog.Logger
	// SlowThreshold marks a request as slow when its wall time reaches
	// the threshold. Zero or negative disables the slow-query log.
	SlowThreshold time.Duration
	// SlowEvery samples the slow-query log: the first slow request and
	// then every SlowEvery-th one are logged. Values <= 1 log every
	// slow request.
	SlowEvery int
	// Tracer, when non-nil, opens a root span per request: an inbound
	// W3C traceparent is continued (same trace ID, caller span as
	// parent), the response carries the server span's traceparent, and
	// log records gain trace_id/span_id fields. With a nil Tracer a
	// valid inbound traceparent is still passed through on the response
	// and into the logs — disabled tracing must not break a caller's
	// trace. A malformed traceparent is ignored either way; it is
	// advisory metadata, never a request error.
	Tracer *Tracer
}

// Middleware wraps next with the per-request observability pipeline:
// it assigns (or propagates) a request ID, echoes it as X-Request-ID,
// extracts/injects the W3C traceparent and opens the request's root
// span, stores a request-scoped logger in the context, emits a
// debug-level access record per request, and a sampled warn-level
// record for requests slower than SlowThreshold. The root span ends —
// and its trace is flushed to the tracer's ring buffer — before the
// middleware returns, so a graceful server shutdown that waits for
// in-flight handlers also waits for their traces.
func Middleware(next http.Handler, cfg MiddlewareConfig) http.Handler {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	var slowSeen atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > maxInboundRequestID {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		reqLog := logger.With(slog.String("request_id", id))
		ctx := r.Context()

		// Trace context: continue the caller's trace when the header
		// parses, start a fresh one otherwise. rawParent != "" with a
		// parse error means a malformed header, which is dropped.
		var span *Span
		rawParent := r.Header.Get(TraceparentHeader)
		remote, perr := ParseTraceparent(rawParent)
		hasRemote := rawParent != "" && perr == nil
		switch {
		case cfg.Tracer != nil && hasRemote:
			ctx, span = cfg.Tracer.StartRootRemote(ctx, r.Method+" "+r.URL.Path, remote)
		case cfg.Tracer != nil:
			ctx, span = cfg.Tracer.StartRoot(ctx, r.Method+" "+r.URL.Path)
		case hasRemote:
			// Tracing disabled: pass the caller's context through
			// untouched so the trace survives this hop.
			w.Header().Set(TraceparentHeader, rawParent)
			reqLog = reqLog.With(slog.String("trace_id", remote.TraceID.String()))
		}
		if span != nil {
			span.SetAttr("http.method", r.Method)
			span.SetAttr("http.path", r.URL.Path)
			w.Header().Set(TraceparentHeader, span.Traceparent())
			reqLog = reqLog.With(
				slog.String("trace_id", span.TraceID()),
				slog.String("span_id", span.SpanID()))
		}
		ctx = WithLogger(WithRequestID(ctx, id), reqLog)

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))

		if span != nil {
			span.SetAttr("http.status", strconv.Itoa(sw.status()))
			if sw.status() >= http.StatusInternalServerError {
				span.SetError(http.StatusText(sw.status()))
			}
			span.End()
		}
		elapsed := time.Since(started)
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("query", r.URL.RawQuery),
			slog.Int("status", sw.status()),
			slog.Duration("elapsed", elapsed),
		}
		reqLog.Debug("request", attrs...)
		if cfg.SlowThreshold > 0 && elapsed >= cfg.SlowThreshold {
			n := slowSeen.Add(1)
			if cfg.SlowEvery <= 1 || (n-1)%int64(cfg.SlowEvery) == 0 {
				reqLog.Warn("slow query", append(attrs,
					slog.Duration("threshold", cfg.SlowThreshold),
					slog.Int64("slow_seen", n))...)
			}
		}
	})
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (s *statusWriter) WriteHeader(code int) {
	if s.code == 0 {
		s.code = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

func (s *statusWriter) status() int {
	if s.code == 0 {
		return http.StatusOK
	}
	return s.code
}
