package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func writeCorpus(t *testing.T, n int) string {
	t.Helper()
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: n, Seed: 11}).Generate()
	path := filepath.Join(t.TempDir(), "c.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestBuildGraphSnapshot(t *testing.T) {
	corpusPath := writeCorpus(t, 4000)
	out := filepath.Join(t.TempDir(), "p.bin")
	var stderr bytes.Buffer
	if err := run([]string{"-corpus", corpusPath, "-o", out}, &stderr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pb, err := core.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Graph.NumNodes() == 0 {
		t.Error("snapshot has no nodes")
	}
	if !strings.Contains(stderr.String(), "pairs") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestBuildFullSnapshot(t *testing.T) {
	corpusPath := writeCorpus(t, 4000)
	out := filepath.Join(t.TempDir(), "p.bin")
	var stderr bytes.Buffer
	if err := run([]string{"-corpus", corpusPath, "-o", out, "-full"}, &stderr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pb, err := core.LoadFull(f)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Store == nil || pb.Store.NumPairs() == 0 {
		t.Error("full snapshot lost Γ")
	}
}

func TestBuildMissingCorpus(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-corpus", "/no/such/file.tsv"}, &stderr); err == nil {
		t.Error("missing corpus accepted")
	}
}

func TestBuildMalformedCorpus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.tsv")
	if err := os.WriteFile(path, []byte("not a corpus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	if err := run([]string{"-corpus", path}, &stderr); err == nil {
		t.Error("malformed corpus accepted")
	}
}
