package prob

import (
	"math"
	"sort"

	"repro/internal/kb"
)

// EvidenceFeatures maps one extraction evidence record and its pair's
// aggregate statistics to the discrete feature vector of Section 4.1:
// the Hearst pattern used, the PageRank bucket of the source page, the
// number of sub-concepts in the sentence, the position of y, and the
// log-bucketed corpus frequencies of x as a super-concept and y as a
// sub-concept.
func EvidenceFeatures(ev kb.Evidence, superFreq, subFreq int64) []Feature {
	return []Feature{
		{Name: "pattern", Value: ev.Pattern},
		{Name: "pagerank", Value: bucketScore(ev.PageScore)},
		{Name: "listlen", Value: clampInt(ev.ListLen, 1, 6)},
		{Name: "pos", Value: clampInt(ev.Pos, 1, 4)},
		{Name: "superfreq", Value: logBucket(superFreq)},
		{Name: "subfreq", Value: logBucket(subFreq)},
	}
}

func bucketScore(s float64) int {
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return int(s * 10)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func logBucket(n int64) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return clampInt(b, 0, 16)
}

// Oracle labels a pair for training: ok=false when the oracle does not
// know both terms (the pair is skipped, exactly as the paper skips pairs
// not fully covered by WordNet).
type Oracle func(x, y string) (isTrue, ok bool)

// Model scores evidence and computes plausibilities.
type Model struct {
	nb    *NaiveBayes
	store *kb.Store
}

// Train builds the plausibility model from Γ, labelling training pairs
// with the oracle (the paper uses WordNet: positive when a path connects
// x and y, negative when both are known but unconnected — Section 4.1).
func Train(store *kb.Store, oracle Oracle) *Model {
	m := &Model{nb: NewNaiveBayes(), store: store}
	store.ForEachPair(func(x, y string, n int64) {
		trainPair(m.nb, store, oracle, x, y, false)
	})
	return m
}

// trainPair adds (or, with untrain, removes) one pair's full training
// contribution: one example per stored evidence record, labelled by the
// oracle. NB count updates are integral and commutative, so any order of
// pair contributions produces the same model.
func trainPair(nb *NaiveBayes, store *kb.Store, oracle Oracle, x, y string, untrain bool) {
	if !store.HasPair(x, y) {
		// Train enumerates ForEachPair's domain; evidence-only pairs
		// (negative part-whole records with no isA sighting) sit outside
		// it and must stay outside for the delta to match a full retrain.
		return
	}
	isTrue, known := oracle(x, y)
	if !known {
		return
	}
	sf, yf := store.SuperTotal(x), store.SubMass(y)
	for _, ev := range store.Evidence(x, y) {
		if untrain {
			nb.Untrain(EvidenceFeatures(ev, sf, yf), isTrue)
		} else {
			nb.Train(EvidenceFeatures(ev, sf, yf), isTrue)
		}
	}
}

// NewModel wires an already-trained Naive Bayes to a Γ store — the path
// a delta build or a snapshot restore enters through.
func NewModel(nb *NaiveBayes, store *kb.Store) *Model {
	return &Model{nb: nb, store: store}
}

// NB exposes the trained evidence model for persistence.
func (m *Model) NB() *NaiveBayes { return m.nb }

// DeltaTrainStats reports the incremental trainer's work.
type DeltaTrainStats struct {
	// DirtyPairs is the number of pairs untrained and retrained.
	DirtyPairs int
	// BucketDrift counts the pairs dirtied only because their super- or
	// sub-concept's log-bucketed corpus frequency crossed a bucket edge.
	BucketDrift int
	// Retrained is the number of evidence examples trained into the model
	// (after untraining their base-side counterparts).
	Retrained int
}

// TrainDelta advances a trained model from the base Γ to the delta Γ by
// untraining the contributions of changed pairs and retraining them from
// next. A pair's feature vectors depend on its own evidence list and on
// the log-bucketed totals of its super- and sub-concept, so the dirty
// set is the diff's changed pairs plus every pair of a concept whose
// frequency bucket drifted. Because Naive Bayes counts are integral and
// commutative, the result equals Train(next, oracle) bit for bit —
// provided oracle matches the one the base model was trained with.
func TrainDelta(prev *NaiveBayes, base, next *kb.Store, oracle Oracle) (*Model, DeltaTrainStats) {
	diff := kb.DiffEvidence(base, next)
	dirty := make(map[kb.Pair]bool, len(diff.ChangedPairs))
	for _, p := range diff.ChangedPairs {
		dirty[p] = true
	}
	var stats DeltaTrainStats
	addDrift := func(pairs []kb.Pair) {
		for _, p := range pairs {
			if !dirty[p] {
				dirty[p] = true
				stats.BucketDrift++
			}
		}
	}
	for x, totals := range diff.SuperTotals {
		if logBucket(totals[0]) != logBucket(totals[1]) {
			addDrift(base.PairsOfSuper(x))
			addDrift(next.PairsOfSuper(x))
		}
	}
	for y, totals := range diff.SubTotals {
		if logBucket(totals[0]) != logBucket(totals[1]) {
			addDrift(base.PairsOfSub(y))
			addDrift(next.PairsOfSub(y))
		}
	}
	nb := prev.Clone()
	pairs := make([]kb.Pair, 0, len(dirty))
	for p := range dirty {
		pairs = append(pairs, p)
	}
	sortPairs(pairs)
	for _, p := range pairs {
		trainPair(nb, base, oracle, p.X, p.Y, true)
		trainPair(nb, next, oracle, p.X, p.Y, false)
		if _, known := oracle(p.X, p.Y); known && next.HasPair(p.X, p.Y) {
			stats.Retrained += len(next.Evidence(p.X, p.Y))
		}
	}
	stats.DirtyPairs = len(pairs)
	return &Model{nb: nb, store: next}, stats
}

func sortPairs(ps []kb.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
}

// EvidenceProb returns p_i for one evidence record (Eq. 2), clamped away
// from 0 and 1 so a single sentence can never saturate the noisy-or.
func (m *Model) EvidenceProb(x, y string, ev kb.Evidence) float64 {
	p := m.nb.Prob(EvidenceFeatures(ev, m.store.SuperTotal(x), m.store.SubMass(y)))
	return clampProb(p)
}

func clampProb(p float64) float64 {
	const lo, hi = 0.02, 0.95
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}

// Plausibility returns P(x, y) = 1 - Π (1 - p_i), the noisy-or of Eq. 1.
// Negative evidence contributes its factor as p_i instead of 1 - p_i.
// Pairs without recorded evidence fall back to a count-based estimate so
// that capped evidence lists stay meaningful.
func (m *Model) Plausibility(x, y string) float64 {
	evs := m.store.Evidence(x, y)
	if len(evs) == 0 {
		n := m.store.Count(x, y)
		if n == 0 {
			return 0
		}
		// Count-only fallback: each sighting is a median-quality evidence.
		return 1 - math.Pow(1-0.5, float64(minInt64(n, 16)))
	}
	q := 1.0 // probability that every evidence is false
	for _, ev := range evs {
		p := m.EvidenceProb(x, y, ev)
		if ev.Negative {
			q *= p
		} else {
			q *= 1 - p
		}
	}
	// Sightings beyond the evidence cap still count, at the average
	// strength of the recorded ones.
	if extra := m.store.Count(x, y) - int64(len(evs)); extra > 0 {
		var sum float64
		for _, ev := range evs {
			sum += m.EvidenceProb(x, y, ev)
		}
		avg := sum / float64(len(evs))
		q *= math.Pow(1-avg, float64(minInt64(extra, 32)))
	}
	return 1 - q
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
