package obs

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testClock is a deterministic time source: every call advances by
// step, so span durations are stable across runs.
type testClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newTestClock(step time.Duration) *testClock {
	return &testClock{
		now:  time.Date(2024, 1, 2, 3, 4, 5, 0, time.UTC),
		step: step,
	}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// deterministicTracer keeps every trace and stamps deterministic IDs
// and times.
func deterministicTracer(buf int) *Tracer {
	return NewTracer(TracerConfig{
		SampleRate: 1,
		BufferSize: buf,
		Seed:       42,
		Clock:      newTestClock(time.Millisecond).Now,
	})
}

func TestRingBufferEvictsOldestFirst(t *testing.T) {
	tr := deterministicTracer(3)
	for i := 0; i < 5; i++ {
		_, span := tr.StartRoot(context.Background(), fmt.Sprintf("req-%d", i))
		span.End()
	}
	got := tr.Traces()
	if len(got) != 3 {
		t.Fatalf("ring held %d traces, want 3", len(got))
	}
	// Newest first: req-4, req-3, req-2; req-0 and req-1 evicted.
	for i, want := range []string{"req-4", "req-3", "req-2"} {
		if got[i].Root != want {
			t.Errorf("Traces()[%d].Root = %q, want %q", i, got[i].Root, want)
		}
	}
}

func TestSamplerDeterministicWithSeed(t *testing.T) {
	decisions := func() []bool {
		tr := NewTracer(TracerConfig{SampleRate: 0.5, Seed: 7, BufferSize: 4})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, tr.headSample())
		}
		return out
	}
	a, b := decisions(), decisions()
	kept := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically seeded tracers", i)
		}
		if a[i] {
			kept++
		}
	}
	// With rate 0.5 over 64 draws, both extremes would mean the rate is
	// ignored.
	if kept == 0 || kept == 64 {
		t.Errorf("kept %d/64 at rate 0.5; sampler ignores the rate", kept)
	}
}

func TestSampleRateExtremes(t *testing.T) {
	always := NewTracer(TracerConfig{SampleRate: 1, Seed: 1})
	never := NewTracer(TracerConfig{SampleRate: 0, Seed: 1})
	for i := 0; i < 16; i++ {
		if !always.headSample() {
			t.Fatal("rate 1 must always sample")
		}
		if never.headSample() {
			t.Fatal("rate 0 must never head-sample")
		}
	}
}

func TestTailRuleKeepsSlowAndErrored(t *testing.T) {
	// Head sampling off; only the tail rules retain traces.
	clock := newTestClock(10 * time.Millisecond)
	tr := NewTracer(TracerConfig{
		SampleRate:    0,
		SlowThreshold: 15 * time.Millisecond,
		BufferSize:    8,
		Seed:          3,
		Clock:         clock.Now,
	})

	// Fast, clean: dropped. (Root start + end = 10ms < 15ms.)
	_, fast := tr.StartRoot(context.Background(), "fast")
	fast.End()
	if n := len(tr.Traces()); n != 0 {
		t.Fatalf("fast clean trace kept; ring has %d", n)
	}

	// Slow: kept. Two extra clock ticks push the root past the threshold.
	ctx, slow := tr.StartRoot(context.Background(), "slow")
	_, child := StartSpan(ctx, "work")
	child.End()
	slow.End()
	got := tr.Traces()
	if len(got) != 1 || !got[0].Slow || got[0].HeadSampled {
		t.Fatalf("slow trace not kept via tail rule: %+v", got)
	}

	// Errored: kept even though fast.
	_, errSpan := tr.StartRoot(context.Background(), "err")
	errSpan.SetError("boom")
	errSpan.End()
	got = tr.Traces()
	if len(got) != 2 || !got[0].Errored {
		t.Fatalf("errored trace not kept via tail rule: %+v", got)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, BufferSize: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ctx, root := tr.StartRoot(context.Background(), fmt.Sprintf("root-%d-%d", g, i))
				var inner sync.WaitGroup
				for c := 0; c < 4; c++ {
					inner.Add(1)
					go func(c int) {
						defer inner.Done()
						_, sp := StartSpan(ctx, fmt.Sprintf("child-%d", c))
						sp.SetAttr("c", fmt.Sprint(c))
						sp.End()
					}(c)
				}
				inner.Wait()
				root.End()
			}
		}(g)
	}
	wg.Wait()
	got := tr.Traces()
	if len(got) != 64 {
		t.Fatalf("ring held %d traces, want full 64", len(got))
	}
	for _, td := range got {
		if len(td.Spans) != 5 {
			t.Fatalf("trace %s has %d spans, want 5 (root + 4 children)", td.TraceID, len(td.Spans))
		}
		if td.Spans[0].Name != td.Root {
			t.Errorf("spans not sorted: first span %q != root %q", td.Spans[0].Name, td.Root)
		}
	}
}

func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.SetError("x")
	sp.End()
	if sp.TraceID() != "" || sp.SpanID() != "" || sp.Traceparent() != "" {
		t.Error("nil span must render empty identifiers")
	}
	ctx, child := StartSpan(context.Background(), "orphan")
	if child != nil {
		t.Error("StartSpan without a parent span must return nil")
	}
	if SpanFromContext(ctx) != nil || TraceIDFromContext(ctx) != "" {
		t.Error("context without a span must yield nil/empty")
	}
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if _, root := tr.StartRoot(context.Background(), "x"); root != nil {
		t.Error("nil tracer must hand out nil spans")
	}
}

// TestDebugTracesGolden locks the /debug/traces JSON shape: a seeded
// tracer with a fixed clock must render byte-identically to
// testdata/traces.golden.
func TestDebugTracesGolden(t *testing.T) {
	tr := deterministicTracer(4)

	// One clean request with a cache miss and a snapshot query.
	ctx, root := tr.StartRoot(context.Background(), "GET /v1/instances")
	root.SetAttr("http.method", "GET")
	cctx, lookup := StartSpan(ctx, "cache.lookup")
	lookup.SetAttr("hit", "false")
	lookup.End()
	_, q := StartSpan(cctx, "snapshot.query")
	q.SetAttr("op", "instances_of")
	q.End()
	root.SetAttr("http.status", "200")
	root.End()

	// One errored request continuing a remote trace.
	remote, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	_, bad := tr.StartRootRemote(context.Background(), "GET /v1/concepts", remote)
	bad.SetError("Internal Server Error")
	bad.End()

	req := httptest.NewRequest("GET", "/debug/traces", nil)
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}

	golden := filepath.Join("testdata", "traces.golden")
	if *update {
		if err := os.WriteFile(golden, rec.Body.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("/debug/traces drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", rec.Body.Bytes(), want)
	}
}

func TestTraceHandlerHTMLAndFilter(t *testing.T) {
	tr := deterministicTracer(4)
	_, a := tr.StartRoot(context.Background(), "GET /a")
	a.End()
	_, b := tr.StartRoot(context.Background(), "GET /b")
	b.End()
	wantID := b.TraceID()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=html", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Errorf("html Content-Type = %q", ct)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("GET /a")) {
		t.Error("waterfall missing root name")
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+wantID, nil))
	body := rec.Body.String()
	if !bytes.Contains([]byte(body), []byte(wantID)) || bytes.Contains([]byte(body), []byte(a.TraceID())) {
		t.Errorf("?trace= filter returned wrong set:\n%s", body)
	}
}

func TestSpanReporterBuildsNestedTrace(t *testing.T) {
	clock := newTestClock(time.Millisecond)
	tr := NewTracer(TracerConfig{SampleRate: 1, BufferSize: 2, Seed: 9, Clock: clock.Now})
	rep := NewSpanReporter(tr, "probase-build")

	rep.StageStart(StageExtraction)
	rep.Count(StageExtraction, "pairs", 40)
	rep.Count(StageExtraction, "pairs", 2)
	rep.Round(StageExtraction, 1, map[string]int64{"accepted": 40}, 2*time.Millisecond)
	rep.StageEnd(StageExtraction, 5*time.Millisecond)
	rep.StageStart(StageTaxonomy)
	rep.StageStart(StageTaxonomyHorizontal)
	rep.StageEnd(StageTaxonomyHorizontal, time.Millisecond)
	rep.StageEnd(StageTaxonomy, 2*time.Millisecond)

	td, ok := rep.Finish()
	if !ok {
		t.Fatal("Finish did not return the trace")
	}
	if td.Root != "probase-build" {
		t.Errorf("root = %q", td.Root)
	}
	byName := map[string]SpanData{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	root := byName["probase-build"]
	ext, ok := byName[StageExtraction]
	if !ok || ext.ParentID != root.SpanID {
		t.Errorf("extraction not a child of root: %+v", ext)
	}
	if ext.Attrs["pairs"] != "42" {
		t.Errorf("extraction counter attr = %q, want 42", ext.Attrs["pairs"])
	}
	round, ok := byName[StageExtraction+".round.1"]
	if !ok || round.ParentID != ext.SpanID {
		t.Errorf("round not a child of extraction: %+v", round)
	}
	if round.Attrs["accepted"] != "40" {
		t.Errorf("round attrs = %v", round.Attrs)
	}
	hz, ok := byName[StageTaxonomyHorizontal]
	if !ok || hz.ParentID != byName[StageTaxonomy].SpanID {
		t.Errorf("taxonomy.horizontal not nested under taxonomy: %+v", hz)
	}
}

func TestAlgorithmForStage(t *testing.T) {
	cases := map[string]string{
		StageExtraction:              "algorithm1",
		StageExtraction + ".round.3": "algorithm1",
		StageTaxonomy:                "algorithm2",
		StageTaxonomyHorizontal:      "algorithm2",
		StageTaxonomyVertical:        "algorithm2",
		StageTaxonomyAssemble:        "algorithm2",
		StageProbAlgorithm3:          "algorithm3",
		StageProbTrain:               "section4.1",
		StageProbAnnotate:            "section4.1",
		StageSnapshotSave:            "",
		"probase-build":              "",
	}
	for stage, want := range cases {
		if got := AlgorithmForStage(stage); got != want {
			t.Errorf("AlgorithmForStage(%q) = %q, want %q", stage, got, want)
		}
	}
}
