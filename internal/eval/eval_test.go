package eval

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/graph"
	"repro/internal/kb"
)

func TestSampleConceptPrecision(t *testing.T) {
	w := corpus.DefaultWorld(1)
	s := kb.NewStore(0)
	s.Add("company", "IBM", 5)
	s.Add("company", "Microsoft", 5)
	s.Add("company", "not a company at all", 1)
	s.Add("city", "Paris", 2)
	cps := SampleConceptPrecision(s, w, []string{"company", "city", "river"}, 50, 1)
	if len(cps) != 3 {
		t.Fatalf("got %d results", len(cps))
	}
	byName := map[string]ConceptPrecision{}
	for _, cp := range cps {
		byName[cp.Concept] = cp
	}
	if got := byName["company"]; got.Sampled != 3 || got.Correct != 2 {
		t.Errorf("company = %+v", got)
	}
	if got := byName["city"]; got.Precision() != 1 {
		t.Errorf("city = %+v", got)
	}
	if got := byName["river"]; got.Sampled != 0 {
		t.Errorf("river = %+v", got)
	}
	avg := Average(cps)
	want := (2.0/3.0 + 1.0) / 2 // river unsampled, excluded
	if diff := avg - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("average = %v, want %v", avg, want)
	}
}

func TestSamplingCap(t *testing.T) {
	w := corpus.DefaultWorld(1)
	s := kb.NewStore(0)
	for _, inst := range w.InstancesOf("company") {
		s.Add("company", inst, 1)
	}
	cps := SampleConceptPrecision(s, w, []string{"company"}, 50, 1)
	if cps[0].Sampled != 50 {
		t.Errorf("sampled = %d, want 50", cps[0].Sampled)
	}
}

func TestPairSetPrecision(t *testing.T) {
	w := corpus.DefaultWorld(1)
	pairs := []kb.Pair{
		{X: "company", Y: "IBM"},
		{X: "company", Y: "Paris"},
	}
	if got := PairSetPrecision(pairs, w); got != 0.5 {
		t.Errorf("precision = %v, want 0.5", got)
	}
	if got := PairSetPrecision(nil, w); got != 0 {
		t.Errorf("empty precision = %v", got)
	}
}

func TestHierarchy(t *testing.T) {
	g := graph.NewStore()
	thing := g.Intern("thing")
	animal := g.Intern("animal")
	pet := g.Intern("pet")
	cat := g.Intern("cat")
	g.AddEdge(thing, animal, 1, 1)
	g.AddEdge(animal, pet, 1, 1)
	g.AddEdge(pet, cat, 1, 1)
	m, err := Hierarchy("test", g)
	if err != nil {
		t.Fatal(err)
	}
	if m.IsAPairs != 2 { // thing->animal, animal->pet
		t.Errorf("isA pairs = %d, want 2", m.IsAPairs)
	}
	if m.MaxLevel != 3 {
		t.Errorf("max level = %d, want 3", m.MaxLevel)
	}
	// levels: thing 3, animal 2, pet 1 -> avg 2 over 3 concepts
	if m.AvgLevel != 2 {
		t.Errorf("avg level = %v, want 2", m.AvgLevel)
	}
}

func TestHierarchyEmptyAndCycle(t *testing.T) {
	g := graph.NewStore()
	if m, err := Hierarchy("empty", g); err != nil || m.IsAPairs != 0 {
		t.Errorf("empty: %+v %v", m, err)
	}
	a, b := g.Intern("a"), g.Intern("b")
	g.AddEdge(a, b, 1, 1)
	g.AddEdge(b, a, 1, 1)
	if _, err := Hierarchy("cyclic", g); err == nil {
		t.Error("cycle accepted")
	}
}

func TestDistribution(t *testing.T) {
	g := graph.NewStore()
	big := g.Intern("big")
	small := g.Intern("small")
	for i := 0; i < 150; i++ {
		g.AddEdge(big, g.Intern(string(rune('A'))+string(rune('0'+i%10))+string(rune('a'+i/10))), 1, 1)
	}
	g.AddEdge(small, g.Intern("only one"), 1, 1)
	d := Distribution("test", g)
	var b100, bLt5 int
	for _, b := range d.Buckets {
		switch b.Label {
		case "[100,1K)":
			b100 = b.Count
		case "<5":
			bLt5 = b.Count
		}
	}
	if b100 != 1 || bLt5 != 1 {
		t.Errorf("buckets wrong: %+v", d.Buckets)
	}
	if d.Top10Share != 1.0 { // only two concepts, both in top 10
		t.Errorf("top10 share = %v", d.Top10Share)
	}
	if d.TotalPairs != 151 {
		t.Errorf("total pairs = %d", d.TotalPairs)
	}
}

func TestStorePrecisionAndRecall(t *testing.T) {
	w := corpus.DefaultWorld(1)
	s := kb.NewStore(0)
	s.Add("company", "IBM", 1)
	s.Add("company", "Microsoft", 1)
	s.Add("dog", "cat", 1)
	p, total := StorePrecision(s, w)
	if total != 3 || p < 0.6 || p > 0.7 {
		t.Errorf("precision = %v over %d", p, total)
	}
	r, found, all := Recall(s, w)
	if found < 2 || all == 0 || r <= 0 {
		t.Errorf("recall = %v (%d/%d)", r, found, all)
	}
	if p, total := StorePrecision(kb.NewStore(0), w); p != 0 || total != 0 {
		t.Error("empty store precision wrong")
	}
}

func TestBenchmarkConceptsCoveredByWorld(t *testing.T) {
	w := corpus.DefaultWorld(1)
	for _, c := range BenchmarkConcepts {
		if len(w.KeysForLabel(c)) == 0 {
			t.Errorf("benchmark concept %q missing from world", c)
		}
	}
	if len(BenchmarkConcepts) != 40 {
		t.Errorf("benchmark concepts = %d, want 40 (Table 5)", len(BenchmarkConcepts))
	}
}
