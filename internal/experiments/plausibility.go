package experiments

import (
	"fmt"

	"repro/internal/prob"
)

// FilterPoint is one threshold of the error-detection sweep.
type FilterPoint struct {
	Threshold float64
	Kept      int
	Precision float64
}

// PlausibilityReport compares error detection by three scorers: the
// paper's Naive-Bayes + noisy-or plausibility, the Urns redundancy model
// the paper cites as the sophisticated alternative, and a raw-frequency
// baseline. Section 4's claim under test: "plausibility is useful for
// detecting errors".
type PlausibilityReport struct {
	NoisyOr       []FilterPoint
	Urns          []FilterPoint
	RawCount      []FilterPoint // threshold interpreted as a minimum count quantile
	BasePrecision float64
	Pairs         int
}

// Plausibility sweeps retention thresholds over all extracted pairs and
// reports precision of the retained subset under each scorer.
func (s *Setup) Plausibility() (PlausibilityReport, string) {
	oracle := func(x, y string) (bool, bool) {
		if !s.World.KnownTerm(x) || !s.World.KnownTerm(y) {
			return false, false
		}
		return s.World.IsTrueIsA(x, y), true
	}
	model := prob.Train(s.PB.Store, oracle)
	urns := prob.FitUrns(s.PB.Store, oracle)

	type scored struct {
		x, y    string
		noisyOr float64
		urns    float64
		count   int64
		isTrue  bool
	}
	var pairs []scored
	s.PB.Store.ForEachPair(func(x, y string, n int64) {
		pairs = append(pairs, scored{
			x: x, y: y,
			noisyOr: model.Plausibility(x, y),
			urns:    urns.Plausibility(n),
			count:   n,
			isTrue:  s.World.IsTrueIsA(x, y),
		})
	})

	thresholds := []float64{0, 0.5, 0.7, 0.9, 0.95}
	sweep := func(score func(scored) float64) []FilterPoint {
		var out []FilterPoint
		for _, th := range thresholds {
			kept, correct := 0, 0
			for _, p := range pairs {
				if score(p) >= th {
					kept++
					if p.isTrue {
						correct++
					}
				}
			}
			fp := FilterPoint{Threshold: th, Kept: kept}
			if kept > 0 {
				fp.Precision = float64(correct) / float64(kept)
			}
			out = append(out, fp)
		}
		return out
	}

	rep := PlausibilityReport{
		NoisyOr: sweep(func(p scored) float64 { return p.noisyOr }),
		Urns:    sweep(func(p scored) float64 { return p.urns }),
		// Raw-count baseline: map counts to [0,1] via 1 - 1/(1+n) so the
		// same thresholds apply.
		RawCount: sweep(func(p scored) float64 { return 1 - 1/float64(1+p.count) }),
		Pairs:    len(pairs),
	}
	correct := 0
	for _, p := range pairs {
		if p.isTrue {
			correct++
		}
	}
	if len(pairs) > 0 {
		rep.BasePrecision = float64(correct) / float64(len(pairs))
	}

	header := []string{"Threshold", "noisy-or kept/prec", "urns kept/prec", "raw-count kept/prec"}
	var cells [][]string
	for i, th := range thresholds {
		cells = append(cells, []string{
			fmt.Sprintf("%.2f", th),
			fmt.Sprintf("%d / %s", rep.NoisyOr[i].Kept, pct(rep.NoisyOr[i].Precision)),
			fmt.Sprintf("%d / %s", rep.Urns[i].Kept, pct(rep.Urns[i].Precision)),
			fmt.Sprintf("%d / %s", rep.RawCount[i].Kept, pct(rep.RawCount[i].Precision)),
		})
	}
	title := fmt.Sprintf("Section 4 ablation: error detection by plausibility (base precision %s over %d pairs)",
		pct(rep.BasePrecision), rep.Pairs)
	return rep, table(title, header, cells)
}
