package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/window"
)

// Metric family names exported on /metrics. Kept as constants so the
// exposition tests and the README stay in sync with the code.
const (
	famRequests  = "probase_http_requests_total"
	famErrors    = "probase_http_errors_total"
	famCacheHit  = "probase_cache_hits_total"
	famCacheMiss = "probase_cache_misses_total"
	famLatency   = "probase_http_request_duration_seconds"
	famInflight  = "probase_http_inflight_requests"
	famShardLen  = "probase_cache_shard_entries"
	famNodes     = "probase_snapshot_nodes"
	famEdges     = "probase_snapshot_edges"
	famMapped    = "probase_snapshot_mapped"
	famPurges    = "probase_cache_purges_total"
	famPurged    = "probase_cache_purged_entries"
	famSLOBurn   = "probase_slo_burn_rate"
	famSLOBad    = "probase_slo_degraded"
	famSLOTarget = "probase_slo_availability_target"
)

// endpointMetrics aggregates one endpoint's counters and latency.
type endpointMetrics struct {
	requests  *obs.Counter
	errors    *obs.Counter // responses with status >= 400
	cacheHits *obs.Counter
	cacheMiss *obs.Counter
	latency   *obs.Histogram
}

// Metrics is the server's observability surface, backed by a private
// obs.Registry (multiple servers in one process, as in tests, must not
// collide on global names). It renders two ways: the Prometheus text
// exposition on /metrics (PrometheusHandler) and the legacy expvar-
// style JSON tree on /debug/vars (Handler).
type Metrics struct {
	reg       *obs.Registry
	endpoints map[string]*endpointMetrics
	names     []string
	inflight  *obs.Gauge
	// Snapshot hot-swap cache purges: how many swaps have purged the
	// hot-query cache, and how many entries the latest purge evicted.
	cachePurges *obs.Counter
	cachePurged *obs.Gauge
}

// newMetrics prepares per-endpoint metric families plus the process
// gauges for the given endpoint names.
func newMetrics(endpoints []string) *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg:       reg,
		endpoints: make(map[string]*endpointMetrics, len(endpoints)),
		names:     endpoints,
		inflight:  reg.Gauge(famInflight, "Requests currently being served."),
		cachePurges: reg.Counter(famPurges,
			"Hot-query cache purges (one per snapshot hot-swap)."),
		cachePurged: reg.Gauge(famPurged,
			"Entries evicted by the most recent cache purge."),
	}
	for _, name := range endpoints {
		l := obs.L("endpoint", name)
		m.endpoints[name] = &endpointMetrics{
			requests:  reg.Counter(famRequests, "Requests received, by endpoint.", l),
			errors:    reg.Counter(famErrors, "Responses with status >= 400, by endpoint.", l),
			cacheHits: reg.Counter(famCacheHit, "Hot-query cache hits, by endpoint.", l),
			cacheMiss: reg.Counter(famCacheMiss, "Hot-query cache misses, by endpoint.", l),
			latency: reg.Histogram(famLatency,
				"Request latency in seconds, by endpoint.", obs.DefBuckets, l),
		}
	}
	obs.RegisterProcessGauges(reg)
	return m
}

// observeCache registers per-shard occupancy gauges for the hot-query
// cache, evaluated at scrape time.
func (m *Metrics) observeCache(c *Cache) {
	for i := 0; i < c.Shards(); i++ {
		shard := i
		m.reg.GaugeFunc(famShardLen, "Entries per hot-query cache shard.",
			func() float64 { return float64(c.ShardLen(shard)) },
			obs.L("shard", strconv.Itoa(shard)))
	}
}

// observeSLO registers the burn-rate engine's verdict as gauges,
// evaluated at scrape time (the engine's internal TTL cache keeps a
// scrape storm from re-merging the rings per gauge).
func (m *Metrics) observeSLO(e *window.Engine) {
	for _, name := range e.WindowNames() {
		w := name
		m.reg.GaugeFunc(famSLOBurn,
			"Error-budget burn rate over the rolling window (1.0 = budget exactly exhausted at period end).",
			func() float64 { return e.BurnRate(w) },
			obs.L("window", w))
	}
	m.reg.GaugeFunc(famSLOBad,
		"1 when a multi-window burn rule is firing and /v1/healthz reports degraded, else 0.",
		func() float64 {
			if e.Eval().Status == window.HealthDegraded {
				return 1
			}
			return 0
		})
	target := e.Config().AvailabilityTarget
	m.reg.GaugeFunc(famSLOTarget,
		"Configured availability target (fraction of requests that must not be 5xx).",
		func() float64 { return target })
}

// observeSnapshot registers the loaded taxonomy's shape and storage
// mode as gauges.
func (m *Metrics) observeSnapshot(nodes, edges func() int, mapped func() bool) {
	m.reg.GaugeFunc(famNodes, "Nodes in the loaded taxonomy snapshot.",
		func() float64 { return float64(nodes()) })
	m.reg.GaugeFunc(famEdges, "Edges in the loaded taxonomy snapshot.",
		func() float64 { return float64(edges()) })
	m.reg.GaugeFunc(famMapped,
		"1 when the graph is served zero-copy out of a memory-mapped snapshot, else 0.",
		func() float64 {
			if mapped() {
				return 1
			}
			return 0
		})
}

func (m *Metrics) endpoint(name string) *endpointMetrics { return m.endpoints[name] }

// Registry exposes the underlying registry so binaries can attach
// their own gauges (snapshot file size, ...).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// PrometheusHandler serves the Prometheus text exposition.
func (m *Metrics) PrometheusHandler() http.Handler { return m.reg.Handler() }

// Handler serves the metrics tree as JSON, like the stdlib's
// /debug/vars but scoped to this server instance. Retained for
// human-friendly inspection; Prometheus scrapers use /metrics.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tree := map[string]any{"inflight": m.inflight.Value()}
		for _, name := range m.names {
			em := m.endpoints[name]
			s := em.latency.Snapshot()
			lat := make(map[string]any, len(s.Bounds)+4)
			cum := int64(0)
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				lat["le_"+strconv.FormatFloat(b, 'g', -1, 64)] = cum
			}
			lat["le_+Inf"] = cum + s.Counts[len(s.Bounds)]
			lat["count"] = s.Count
			lat["sum_seconds"] = s.Sum
			// Latest exemplar per bucket: trace IDs joining slow buckets
			// to /debug/traces waterfalls.
			exemplars := map[string]any{}
			for i, ex := range s.Exemplars {
				if ex == nil {
					continue
				}
				le := "+Inf"
				if i < len(s.Bounds) {
					le = strconv.FormatFloat(s.Bounds[i], 'g', -1, 64)
				}
				exemplars["le_"+le] = ex
			}
			if len(exemplars) > 0 {
				lat["exemplars"] = exemplars
			}
			tree[name] = map[string]any{
				"requests":     em.requests.Value(),
				"errors":       em.errors.Value(),
				"cache_hits":   em.cacheHits.Value(),
				"cache_misses": em.cacheMiss.Value(),
				"latency":      lat,
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		if err := enc.Encode(tree); err != nil {
			fmt.Fprintf(w, `{"error": %q}`, err.Error())
		}
	})
}
