package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math/rand"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// Endpoints lists the probase-serve query surface in canonical order.
// The order matters: the request generator walks cumulative mix
// weights in this order, so it is part of the deterministic-replay
// contract.
var Endpoints = []string{
	"instances", "concepts", "typicality", "plausibility", "conceptualize", "healthz",
}

// Mix assigns each endpoint a relative traffic weight, in the
// canonical Endpoints order. Construct with ParseMix or DefaultMix.
type Mix struct {
	weights []float64 // parallel to Endpoints
	total   float64
}

// DefaultMixSpec weights the read-heavy endpoints the way a
// search-style tenant would: abstraction and instance lookups
// dominate, scoring pairs and conceptualisation follow, health checks
// trickle.
const DefaultMixSpec = "instances=25,concepts=25,typicality=15,plausibility=15,conceptualize=15,healthz=5"

// DefaultMix returns the mix behind DefaultMixSpec.
func DefaultMix() Mix {
	m, err := ParseMix(DefaultMixSpec)
	if err != nil {
		panic(err) // the constant must parse
	}
	return m
}

// ParseMix parses "endpoint=weight,..." into a Mix. Endpoints absent
// from the spec get weight 0; at least one weight must be positive.
func ParseMix(spec string) (Mix, error) {
	idx := make(map[string]int, len(Endpoints))
	for i, ep := range Endpoints {
		idx[ep] = i
	}
	m := Mix{weights: make([]float64, len(Endpoints))}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, raw, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("mix entry %q is not endpoint=weight", part)
		}
		name = strings.TrimSpace(name)
		i, known := idx[name]
		if !known {
			return Mix{}, fmt.Errorf("unknown endpoint %q (have: %s)", name, strings.Join(Endpoints, ","))
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("endpoint %s: weight %q must be a non-negative number", name, raw)
		}
		m.weights[i] = w
	}
	for _, w := range m.weights {
		m.total += w
	}
	if m.total <= 0 {
		return Mix{}, fmt.Errorf("mix %q has no positive weight", spec)
	}
	return m, nil
}

// Share returns the endpoint's normalised traffic fraction.
func (m Mix) Share(endpoint string) float64 {
	for i, ep := range Endpoints {
		if ep == endpoint {
			return m.weights[i] / m.total
		}
	}
	return 0
}

// Shares returns every endpoint's normalised fraction, keyed by name.
func (m Mix) Shares() map[string]float64 {
	out := make(map[string]float64, len(Endpoints))
	for _, ep := range Endpoints {
		out[ep] = m.Share(ep)
	}
	return out
}

// String renders the mix in the spec syntax (canonical order, zero
// weights omitted).
func (m Mix) String() string {
	var parts []string
	for i, ep := range Endpoints {
		if m.weights[i] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", ep, m.weights[i]))
		}
	}
	return strings.Join(parts, ",")
}

// pick chooses an endpoint index from the cumulative weights using one
// uniform draw.
func (m Mix) pick(r float64) int {
	target := r * m.total
	var cum float64
	for i, w := range m.weights {
		cum += w
		if w > 0 && target < cum {
			return i
		}
	}
	// Float round-off at the top edge: last positive weight.
	for i := len(m.weights) - 1; i >= 0; i-- {
		if m.weights[i] > 0 {
			return i
		}
	}
	return 0
}

// request is one planned HTTP call: the endpoint family (for stats)
// and the path+query, target-independent so the stream fingerprint is
// a property of the configuration alone.
type request struct {
	endpoint string
	uri      string
}

// requestGen deterministically turns a seed, a mix, and a query-text
// pool into an endless request stream. All randomness flows from one
// seeded source consumed in a fixed order, so the stream — and its
// fingerprint — depends only on (seed, mix, pool), never on worker
// count or timing. Queries are drawn rank-Zipf (s≈1.07) over the
// frequency-sorted pool, reproducing the head-heavy replay the paper's
// Bing log analysis assumes.
type requestGen struct {
	mix   Mix
	pool  []string
	rng   *rand.Rand
	zipf  *rand.Zipf
	hash  hash.Hash
	count int64
}

func newRequestGen(seed int64, mix Mix, pool []string) *requestGen {
	rng := rand.New(rand.NewSource(seed))
	return &requestGen{
		mix:  mix,
		pool: pool,
		rng:  rng,
		zipf: rand.NewZipf(rng, 1.07, 1, uint64(len(pool)-1)),
		hash: sha256.New(),
	}
}

// text draws one query text by Zipf rank.
func (g *requestGen) text() string { return g.pool[g.zipf.Uint64()] }

// next produces the following request in the stream and folds it into
// the running fingerprint.
func (g *requestGen) next() request {
	ep := Endpoints[g.mix.pick(g.rng.Float64())]
	var uri string
	switch ep {
	case "instances":
		uri = "/v1/instances?" + url.Values{"concept": {g.text()}, "k": {"10"}}.Encode()
	case "concepts":
		uri = "/v1/concepts?" + url.Values{"term": {g.text()}, "k": {"10"}}.Encode()
	case "typicality":
		uri = "/v1/typicality?" + url.Values{"concept": {g.text()}, "instance": {g.text()}}.Encode()
	case "plausibility":
		uri = "/v1/plausibility?" + url.Values{"x": {g.text()}, "y": {g.text()}}.Encode()
	case "conceptualize":
		terms := g.text()
		if g.rng.Intn(2) == 0 {
			terms += "," + g.text()
		}
		uri = "/v1/conceptualize?" + url.Values{"terms": {terms}, "k": {"5"}}.Encode()
	case "healthz":
		uri = "/v1/healthz"
	}
	g.count++
	g.hash.Write([]byte(uri))
	g.hash.Write([]byte{'\n'})
	return request{endpoint: ep, uri: uri}
}

// fingerprint returns the sha256 over the newline-joined URIs emitted
// so far — the deterministic-replay witness.
func (g *requestGen) fingerprint() string {
	return hex.EncodeToString(g.hash.Sum(nil))
}

// sortedEndpoints returns the keys of a per-endpoint map in canonical
// order (anything non-canonical goes last, alphabetically).
func sortedEndpoints(present map[string]*Stats) []string {
	canonical := make(map[string]bool, len(Endpoints))
	var out []string
	for _, ep := range Endpoints {
		canonical[ep] = true
		if _, ok := present[ep]; ok {
			out = append(out, ep)
		}
	}
	var extra []string
	for ep := range present {
		if !canonical[ep] {
			extra = append(extra, ep)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
