package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

var (
	snapOnce sync.Once
	snapPath string
	snapErr  error
)

// snapshotPath builds one snapshot shared by all probase-serve tests —
// produced exactly the way probase-build produces it (core.Build +
// Save), so the binary is exercised against a real artefact.
func snapshotPath(t *testing.T) string {
	t.Helper()
	snapOnce.Do(func() {
		w := corpus.DefaultWorld(1)
		c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 8000, Seed: 11}).Generate()
		inputs := make([]extraction.Input, len(c.Sentences))
		for i, s := range c.Sentences {
			inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
		}
		pb, err := core.Build(inputs, core.Config{})
		if err != nil {
			snapErr = err
			return
		}
		dir, err := os.MkdirTemp("", "probase-serve-test")
		if err != nil {
			snapErr = err
			return
		}
		snapPath = filepath.Join(dir, "p.bin")
		f, err := os.Create(snapPath)
		if err != nil {
			snapErr = err
			return
		}
		defer f.Close()
		snapErr = pb.Save(f)
	})
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	return snapPath
}

// startServer runs the binary's run() on a random port and returns its
// base URL, a cancel triggering shutdown, and the exit channel.
func startServer(t *testing.T, ctx context.Context) (string, chan error, *bytes.Buffer) {
	t.Helper()
	return startServerArgs(t, ctx)
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("%s: invalid JSON %q: %v", url, raw, err)
	}
	return resp.StatusCode, body
}

// TestServeEndToEnd starts the server from a built snapshot, answers
// all six endpoints, and shuts down cleanly on context cancellation
// (the code path SIGTERM takes through signal.NotifyContext).
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, exit, stderr := startServer(t, ctx)

	endpoints := []string{
		"/v1/instances?concept=companies&k=5",
		"/v1/concepts?term=IBM&k=5",
		"/v1/typicality?concept=companies&instance=IBM",
		"/v1/plausibility?x=companies&y=IBM",
		"/v1/conceptualize?terms=China,India,Brazil&k=5",
		"/v1/healthz",
	}
	for _, ep := range endpoints {
		status, body := getJSON(t, base+ep)
		if status != http.StatusOK {
			t.Errorf("%s: status %d, body %v", ep, status, body)
		}
	}
	// The metrics endpoint reflects the traffic.
	status, vars := getJSON(t, base+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status %d", status)
	}
	inst, ok := vars["instances"].(map[string]any)
	if !ok {
		t.Fatalf("instances metrics missing: %v", vars)
	}
	if req, _ := inst["requests"].(float64); req == 0 {
		t.Error("request counter is zero after traffic")
	}

	cancel()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("shutdown error: %v\n%s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not drain within 10s\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "stopped") {
		t.Errorf("missing clean-stop log:\n%s", stderr.String())
	}
}

// TestServeSIGTERM delivers a real SIGTERM to the process and expects
// the server (whose context comes from signal.NotifyContext, as in
// main) to drain and exit cleanly.
func TestServeSIGTERM(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	base, exit, stderr := startServer(t, ctx)

	if status, _ := getJSON(t, base+"/v1/healthz"); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("SIGTERM shutdown error: %v\n%s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not exit on SIGTERM\n%s", stderr.String())
	}
}

func TestServeErrors(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(context.Background(), []string{"-snapshot", "/no/such.bin"}, &stderr, nil); err == nil {
		t.Error("missing snapshot accepted")
	}
	if err := run(context.Background(), []string{"-bogus-flag"}, &stderr, nil); err == nil {
		t.Error("bad flag accepted")
	}
	// A corrupt snapshot must fail at startup, not at first query.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("XXXXnot a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-snapshot", bad}, &stderr, nil); err == nil {
		t.Error("corrupt snapshot accepted")
	}
	// An unusable listen address errors out rather than hanging.
	if err := run(context.Background(), []string{"-snapshot", snapshotPath(t), "-addr", "256.0.0.1:99999"}, &stderr, nil); err == nil {
		t.Error("bad listen address accepted")
	}
}

// TestServeDrainsInflight verifies the graceful path: a request racing
// the shutdown still completes with 200.
func TestServeDrainsInflight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, exit, stderr := startServer(t, ctx)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _ := getJSONquiet(base + fmt.Sprintf("/v1/instances?concept=companies&k=%d", i+1))
			if status != http.StatusOK {
				errs <- fmt.Errorf("in-flight request got status %d", status)
			}
		}(i)
	}
	// Cancel while the requests are (likely) in flight; Shutdown must let
	// them finish.
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("drain error: %v\n%s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain timed out")
	}
}

// TestServeTracingEndToEnd drives the full traceability loop: a request
// carrying a W3C traceparent is answered with the server span's
// traceparent on the same trace, the trace (with per-stage child spans)
// is browsable on the pprof listener's /debug/traces, and the latency
// histogram's OpenMetrics exposition carries the trace ID as an
// exemplar.
func TestServeTracingEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, exit, stderr := startServerArgs(t, ctx,
		"-pprof-addr", "127.0.0.1:0", "-trace-sample", "1", "-trace-buf", "16")

	// The pprof listener port is random; it is announced on stderr
	// before the ready signal, so reading here does not race the server.
	m := regexp.MustCompile(`pprof listening.*addr=([0-9.]+:[0-9]+)`).FindStringSubmatch(stderr.String())
	if m == nil {
		t.Fatalf("pprof listener address not logged:\n%s", stderr.String())
	}
	debugBase := "http://" + m[1]

	const inbound = "00-af7651916cd43dd8448eb211c80319c3-b7ad6b7169203331-01"
	req, err := http.NewRequest(http.MethodGet, base+"/v1/instances?concept=companies&k=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := resp.Header.Get("traceparent")
	wantTrace := "af7651916cd43dd8448eb211c80319c3"
	if !strings.Contains(out, wantTrace) {
		t.Fatalf("response traceparent %q does not continue trace %s", out, wantTrace)
	}

	// The OpenMetrics exposition carries the trace ID as an exemplar on
	// the latency histogram; the plain Prometheus exposition does not.
	// Scraped before any further traffic: exemplars keep the latest
	// trace per bucket, so a later request landing in the same bucket
	// would legitimately replace this one.
	mreq, _ := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	mreq.Header.Set("Accept", "application/openmetrics-text")
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(om), `trace_id="`+wantTrace) {
		t.Error("OpenMetrics exposition has no exemplar for the traced request")
	}
	plain, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	plainBody, _ := io.ReadAll(plain.Body)
	plain.Body.Close()
	if strings.Contains(string(plainBody), "trace_id=") {
		t.Error("plain Prometheus exposition leaks exemplars (breaks strict 0.0.4 parsers)")
	}

	// Same query again: the second request must be answered from cache
	// and traced as a hit.
	status, _ := getJSON(t, base+"/v1/instances?concept=companies&k=3")
	if status != http.StatusOK {
		t.Fatalf("second request status %d", status)
	}

	// The trace is on /debug/traces with the request's child spans.
	tresp, err := http.Get(debugBase + "/debug/traces?trace=" + wantTrace)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var tdoc struct {
		Traces []struct {
			TraceID      string `json:"trace_id"`
			Root         string `json:"root"`
			RemoteParent string `json:"remote_parent"`
			Spans        []struct {
				Name  string            `json:"name"`
				Attrs map[string]string `json:"attrs"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&tdoc); err != nil {
		t.Fatal(err)
	}
	if len(tdoc.Traces) != 1 {
		t.Fatalf("want exactly the propagated trace, got %d traces", len(tdoc.Traces))
	}
	td := tdoc.Traces[0]
	if td.RemoteParent != "b7ad6b7169203331" {
		t.Errorf("remote parent = %q", td.RemoteParent)
	}
	spans := map[string]map[string]string{}
	for _, sp := range td.Spans {
		spans[sp.Name] = sp.Attrs
	}
	for _, want := range []string{"GET /v1/instances", "server.instances", "cache.lookup", "snapshot.query"} {
		if _, ok := spans[want]; !ok {
			t.Errorf("trace missing span %q (have %v)", want, td.Spans)
		}
	}
	if got := spans["cache.lookup"]["hit"]; got != "false" {
		t.Errorf("first request cache.lookup hit = %q, want false", got)
	}
	if got := spans["snapshot.query"]["op"]; got != "instances_of" {
		t.Errorf("snapshot.query op = %q", got)
	}

	// The waterfall renders.
	hreq, _ := http.NewRequest(http.MethodGet, debugBase+"/debug/traces?format=html", nil)
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(html), wantTrace) {
		t.Errorf("HTML waterfall missing trace %s", wantTrace)
	}

	cancel()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("shutdown error: %v\n%s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
}

// getJSONquiet is getJSON without a testing.T: in the drain test a
// request may legally race the listener close, and a connection refused
// after shutdown completes is not a failure of draining.
func getJSONquiet(url string) (int, map[string]any) {
	resp, err := http.Get(url)
	if err != nil {
		return http.StatusOK, nil // listener already closed: nothing was in flight
	}
	defer resp.Body.Close()
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body
}

// TestServeMmapSIGHUPReload drives the full storage lifecycle on the
// binary: serve a PBC2 snapshot zero-copy via -mmap, verify healthz
// reports the mapped storage mode, hot-reload it twice — once over POST
// /v1/admin/reload, once over a real SIGHUP — and confirm queries keep
// answering throughout with the snapshot still memory-mapped.
func TestServeMmapSIGHUPReload(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, exit, stderr := startServerArgs(t, ctx, "-mmap")

	status, health := getJSON(t, base+"/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if mapped, _ := health["snapshot_mapped"].(bool); !mapped {
		t.Fatalf("-mmap serving but healthz says snapshot_mapped=%v: %v", health["snapshot_mapped"], health)
	}

	// Reload #1: the admin endpoint.
	resp, err := http.Post(base+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin reload status %d: %s", resp.StatusCode, raw)
	}
	var reload struct {
		Status string `json:"status"`
		Mapped bool   `json:"snapshot_mapped"`
	}
	if err := json.Unmarshal(raw, &reload); err != nil {
		t.Fatalf("reload body %q: %v", raw, err)
	}
	if reload.Status != "reloaded" || !reload.Mapped {
		t.Fatalf("reload = %+v, want status=reloaded mapped=true", reload)
	}

	// Reload #2: a real SIGHUP. Each successful reload purges the
	// hot-query cache, so the purge counter on /metrics is the race-free
	// signal that the swap completed.
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if strings.Contains(string(text), "probase_cache_purges_total 2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload never completed; metrics:\n%s", text)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Still serving, still mapped.
	if status, _ := getJSON(t, base+"/v1/instances?concept=companies&k=5"); status != http.StatusOK {
		t.Errorf("query after reloads: status %d", status)
	}
	status, health = getJSON(t, base+"/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz after reloads: status %d", status)
	}
	if mapped, _ := health["snapshot_mapped"].(bool); !mapped {
		t.Errorf("snapshot no longer mapped after reloads: %v", health)
	}

	cancel()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("shutdown error: %v\n%s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after reloads")
	}
	logs := stderr.String()
	if !strings.Contains(logs, "snapshot reloaded") || !strings.Contains(logs, "SIGHUP") {
		t.Errorf("missing SIGHUP reload log:\n%s", logs)
	}
}
