// Command probase-inspect reports the taxstats health profile of a
// taxonomy snapshot — the data-plane inspection tool. It answers two
// questions: "what does this snapshot look like?" (structural counts,
// degree/depth shape, plausibility/typicality/entropy distributions)
// and "how far has this snapshot drifted from the one it replaces?"
// (per-metric deltas gated against a checked-in drift budget — the
// pre-swap validation the snapshot hot-swap path runs in CI).
//
// Usage:
//
//	probase-inspect [-json] [-top k] [-sample n] <snapshot>
//	    Profile one snapshot. -json emits a probase-inspect/v1 report.
//
//	probase-inspect -diff [-json] [-thresholds file] <old> <new>
//	    Profile both snapshots and report per-metric drift. Without
//	    -thresholds any drift at all fails (strict identity check);
//	    with -thresholds only budget breaches fail.
//
//	probase-inspect -validate-json <report>
//	    Validate a previously emitted -json report file.
//
// Exit status: 0 on success, 1 on drift-gate failure, 2 on usage or
// I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/taxstats"
)

// InspectSchema names the -json report layout: the benchfmt.Report
// envelope under probase-inspect's own marker.
const InspectSchema = "probase-inspect/v1"

// exitcode pairs an error with the process exit status; run returns it
// so gate failures (1) are distinguishable from usage errors (2).
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }

func gateFailure(format string, args ...any) error {
	return &exitError{code: 1, err: fmt.Errorf(format, args...)}
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "probase-inspect:", err)
		code := 2
		if ee, ok := err.(*exitError); ok {
			code = ee.code
		}
		os.Exit(code)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("probase-inspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		diff         = fs.Bool("diff", false, "compare two snapshots: -diff <old> <new>")
		jsonOut      = fs.Bool("json", false, "emit a probase-inspect/v1 JSON report")
		thresholds   = fs.String("thresholds", "", "drift-budget file for -diff (breach exits 1)")
		top          = fs.Int("top", 10, "top concepts to report")
		workers      = fs.Int("workers", 0, "profile workers (0 = GOMAXPROCS; result is identical at any count)")
		sample       = fs.Int("sample", 0, "cap instances scored by the typicality/entropy passes (0 = all)")
		validateJSON = fs.String("validate-json", "", "validate a report file and exit")
		version      = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(stdout, "probase-inspect")
		return nil
	}
	if *validateJSON != "" {
		if err := benchfmt.ValidateFileAs(*validateJSON, InspectSchema); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: valid %s report\n", *validateJSON, InspectSchema)
		return nil
	}

	opts := taxstats.Options{Workers: *workers, TopK: *top, SampleInstances: *sample}
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("usage: probase-inspect -diff <old> <new>")
		}
		return runDiff(fs.Arg(0), fs.Arg(1), *thresholds, *jsonOut, opts, stdout)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: probase-inspect [flags] <snapshot>")
	}
	return runProfile(fs.Arg(0), *jsonOut, opts, stdout)
}

// profileSnapshot loads one snapshot and computes its health profile.
func profileSnapshot(path string, opts taxstats.Options) (*core.Probase, *taxstats.Profile, error) {
	pb, err := snapshot.Open(path)
	if err != nil {
		return nil, nil, err
	}
	p, err := taxstats.Compute(pb.Graph, pb.Typicality(), opts)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return pb, p, nil
}

// report wraps experiments in the probase-inspect/v1 envelope. The
// benchfmt options block is repurposed: Sentences carries the profiled
// node count and Queries the edge count (the report's natural "size"),
// Scale is always 1 — the same convention probase-loadgen set for
// non-corpus reports.
func report(p *taxstats.Profile, setup time.Duration, total time.Duration, exps []benchfmt.Experiment) benchfmt.Report {
	return benchfmt.Report{
		Schema:       InspectSchema,
		Build:        obs.Version(),
		Options:      benchfmt.Options{Scale: 1, Sentences: p.Nodes, Queries: p.Edges},
		SetupSeconds: setup.Seconds(),
		Experiments:  exps,
		TotalSeconds: total.Seconds(),
	}
}

func emitJSON(w io.Writer, r benchfmt.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func runProfile(path string, jsonOut bool, opts taxstats.Options, stdout io.Writer) error {
	start := time.Now()
	pb, p, err := profileSnapshot(path, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if jsonOut {
		return emitJSON(stdout, report(p, 0, elapsed, []benchfmt.Experiment{
			{Name: "profile", Seconds: elapsed.Seconds(), Result: p},
		}))
	}
	printProfile(stdout, path, pb.Format, p)
	return nil
}

func printProfile(w io.Writer, path, format string, p *taxstats.Profile) {
	if format == "" {
		format = "in-memory"
	}
	fmt.Fprintf(w, "%s (%s, fingerprint %s)\n", path, format, p.Fingerprint)
	fmt.Fprintf(w, "  nodes %d  edges %d  concepts %d  instances %d\n",
		p.Nodes, p.Edges, p.Concepts, p.Instances)
	fmt.Fprintf(w, "  roots %d  orphans %d  max depth %d  topo levels %d  label bytes %d\n",
		p.Roots, p.Orphans, p.MaxDepth, p.TopoLevels, p.LabelBytes)
	fmt.Fprintf(w, "  out-degree mean %.2f max %d   in-degree mean %.2f max %d\n",
		p.OutDegree.Mean, p.OutDegree.Max, p.InDegree.Mean, p.InDegree.Max)
	printDist(w, "plausibility", p.Plausibility)
	printDist(w, "typicality", p.Typicality)
	printDist(w, "entropy", p.Entropy)
	if len(p.TopConcepts) > 0 {
		fmt.Fprintf(w, "  top concepts by direct instances:\n")
		for _, c := range p.TopConcepts {
			fmt.Fprintf(w, "    %-30s %6d instances  %6d out-degree\n", c.Label, c.Instances, c.OutDegree)
		}
	}
}

func printDist(w io.Writer, name string, d taxstats.ScoreDist) {
	fmt.Fprintf(w, "  %-12s n=%-8d mean %.4f  p50 %.4f  p90 %.4f  p99 %.4f  zero %.3f  one %.3f\n",
		name, d.Count, d.Mean, d.P50, d.P90, d.P99, d.ZeroMass, d.OneMass)
}

func runDiff(oldPath, newPath, thresholdsPath string, jsonOut bool, opts taxstats.Options, stdout io.Writer) error {
	start := time.Now()
	_, oldP, err := profileSnapshot(oldPath, opts)
	if err != nil {
		return err
	}
	setup := time.Since(start)
	_, newP, err := profileSnapshot(newPath, opts)
	if err != nil {
		return err
	}
	drift := taxstats.DiffProfiles(oldP, newP)

	var th *taxstats.Thresholds
	if thresholdsPath != "" {
		th, err = taxstats.LoadThresholds(thresholdsPath)
		if err != nil {
			return err
		}
		th.Gate(drift)
	}
	elapsed := time.Since(start)

	if jsonOut {
		if err := emitJSON(stdout, report(newP, setup, elapsed, []benchfmt.Experiment{
			{Name: "profile_old", Seconds: setup.Seconds(), Result: oldP},
			{Name: "profile_new", Seconds: (elapsed - setup).Seconds(), Result: newP},
			{Name: "drift", Seconds: elapsed.Seconds(), Result: drift},
		})); err != nil {
			return err
		}
	} else {
		printDrift(stdout, oldPath, newPath, drift)
	}

	switch {
	case th != nil:
		if len(drift.Breaches) > 0 {
			return gateFailure("drift gate: %d breach(es), first: %s",
				len(drift.Breaches), drift.Breaches[0])
		}
	case drift.Drifted():
		// No budget file: any drift at all fails (strict identity check).
		return gateFailure("snapshots differ (no -thresholds budget given)")
	}
	return nil
}

func printDrift(w io.Writer, oldPath, newPath string, r *taxstats.DriftReport) {
	fmt.Fprintf(w, "drift %s -> %s (fingerprint changed: %v)\n", oldPath, newPath, r.FingerprintChanged)
	for _, d := range r.Deltas {
		if d.Abs == 0 {
			continue
		}
		rel := "n/a"
		if d.Rel != nil {
			rel = fmt.Sprintf("%+.2f%%", *d.Rel*100)
		}
		fmt.Fprintf(w, "  %-26s %12.4f -> %12.4f  (abs %+.4f, rel %s)\n",
			d.Metric, d.Old, d.New, d.Abs, rel)
	}
	if !r.Drifted() {
		fmt.Fprintln(w, "  no drift: profiles are identical")
	}
	for _, b := range r.Breaches {
		fmt.Fprintf(w, "  BREACH %s\n", b)
	}
}
