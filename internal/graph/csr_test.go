package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestSaveV2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    *Builder
	}{
		{"diamond", func() *Builder { s, _ := diamond(); return s }()},
		{"random", randomDAG(120, 400, 9)},
		{"empty", NewBuilder()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.b.Freeze()
			var buf bytes.Buffer
			if err := f.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadFrozen(&buf)
			if err != nil {
				t.Fatal(err)
			}
			assertReadersEqual(t, f, loaded)
		})
	}
}

// TestLoadFrozenReadsV1 is the freeze-on-load path: a legacy "PBGR"
// snapshot must load into a Frozen equal to loading it mutably and
// freezing.
func TestLoadFrozenReadsV1(t *testing.T) {
	b := randomDAG(80, 250, 11)
	var v1 bytes.Buffer
	if err := b.Save(&v1); err != nil {
		t.Fatal(err)
	}
	f, err := LoadFrozen(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertReadersEqual(t, b.Freeze(), f)
}

// TestWriteSnapshotVersions: both versions written through the generic
// entry point load back to the same graph; unknown versions error.
func TestWriteSnapshotVersions(t *testing.T) {
	b := randomDAG(60, 150, 13)
	want := b.Freeze()
	for _, version := range []int{1, 2} {
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, b, version); err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		got, err := LoadFrozen(&buf)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		assertReadersEqual(t, want, got)
	}
	if err := WriteSnapshot(&bytes.Buffer{}, b, 3); err == nil {
		t.Error("unknown snapshot version accepted")
	}
}

// TestSnapshotsAgreeAcrossVersions: v1 and v2 snapshots of one graph
// answer every Reader query identically after loading.
func TestSnapshotsAgreeAcrossVersions(t *testing.T) {
	b := randomDAG(100, 300, 17)
	var v1, v2 bytes.Buffer
	if err := WriteSnapshot(&v1, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&v2, b, 2); err != nil {
		t.Fatal(err)
	}
	f1, err := LoadFrozen(&v1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := LoadFrozen(&v2)
	if err != nil {
		t.Fatal(err)
	}
	assertReadersEqual(t, f1, f2)
}

// validV2 returns a valid v2 snapshot to corrupt in the rejection
// tests.
func validV2(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	f := randomDAG(30, 80, 19).Freeze()
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadFrozenRejectsCorruption(t *testing.T) {
	snap := validV2(t)
	cases := map[string][]byte{
		"empty":       {},
		"magic only":  snap[:4],
		"wrong magic": []byte("XXXX garbage"),
		"truncated":   snap[:len(snap)/2],
		"missing crc": snap[:len(snap)-4],
	}
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)-1] ^= 0xFF
	cases["bad checksum"] = flipped
	// Corrupt a byte in the middle (offsets / edges region): must fail
	// the checksum or the structural validation, never panic.
	middle := append([]byte(nil), snap...)
	middle[len(middle)/2] ^= 0x55
	cases["corrupt middle"] = middle
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadFrozen(bytes.NewReader(data)); err == nil {
				t.Fatalf("corrupt snapshot accepted")
			}
		})
	}
}

func TestLoadFrozenBadChecksumError(t *testing.T) {
	snap := validV2(t)
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)-1] ^= 0xFF
	if _, err := LoadFrozen(bytes.NewReader(flipped)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

// TestLoadFrozenRejectsHugeCounts: implausible node/edge counts must be
// rejected before any large allocation is attempted.
func TestLoadFrozenRejectsHugeCounts(t *testing.T) {
	var huge bytes.Buffer
	huge.WriteString(csrMagic)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], csrRevLegacy)
	huge.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], 1<<40) // nodes
	huge.Write(tmp[:n])
	if _, err := LoadFrozen(bytes.NewReader(huge.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
}

// TestLoadFrozenNonSeekable: LoadFrozen must work on a pure stream
// (no Seek, no ReadByte) for both formats.
func TestLoadFrozenNonSeekable(t *testing.T) {
	b := randomDAG(40, 100, 23)
	for _, version := range []int{1, 2} {
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, b, version); err != nil {
			t.Fatal(err)
		}
		f, err := LoadFrozen(onlyReader{&buf})
		if err != nil {
			t.Fatalf("v%d from stream: %v", version, err)
		}
		if f.NumNodes() != b.NumNodes() {
			t.Fatalf("v%d: nodes = %d, want %d", version, f.NumNodes(), b.NumNodes())
		}
	}
}

// onlyReader hides every interface except io.Reader.
type onlyReader struct{ r *bytes.Buffer }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }
