package prob

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Feature is one discrete extraction feature of an evidence sentence
// (the set F_i of Eq. 2).
type Feature struct {
	Name  string
	Value int
}

// NaiveBayes is a two-class Naive Bayes model over discrete features with
// Laplace smoothing. The positive class means "this evidence supports a
// true isA claim".
//
// The model is exactly reversible: counts are integral, Train and
// Untrain adjust them by whole units, and the per-feature value
// inventory (the smoothing denominator) is derived from the live count
// tables — so untraining a batch of examples and training a replacement
// batch yields the same model a from-scratch training over the final
// example set would, bit for bit. Incremental builds rest on that.
type NaiveBayes struct {
	classCounts [2]float64
	// counts[name][value][class]; entries are removed when both classes
	// reach zero so len(counts[name]) is the distinct-value count used
	// for Laplace smoothing.
	counts map[string]map[int][2]float64
}

// NewNaiveBayes returns an empty model.
func NewNaiveBayes() *NaiveBayes {
	return &NaiveBayes{
		counts: make(map[string]map[int][2]float64),
	}
}

// Train adds one example with the given label.
func (nb *NaiveBayes) Train(features []Feature, positive bool) {
	cls := 0
	if positive {
		cls = 1
	}
	nb.classCounts[cls]++
	for _, f := range features {
		m := nb.counts[f.Name]
		if m == nil {
			m = make(map[int][2]float64)
			nb.counts[f.Name] = m
		}
		c := m[f.Value]
		c[cls]++
		m[f.Value] = c
	}
}

// Untrain removes one example previously added with Train under the same
// label. Counts never go negative: untraining an example that was not
// trained is a caller bug and panics rather than corrupting the model.
func (nb *NaiveBayes) Untrain(features []Feature, positive bool) {
	cls := 0
	if positive {
		cls = 1
	}
	if nb.classCounts[cls] < 1 {
		panic("prob: Untrain without matching Train")
	}
	nb.classCounts[cls]--
	for _, f := range features {
		m := nb.counts[f.Name]
		c, ok := m[f.Value]
		if !ok || c[cls] < 1 {
			panic(fmt.Sprintf("prob: Untrain of unseen feature %s=%d", f.Name, f.Value))
		}
		c[cls]--
		if c[0] == 0 && c[1] == 0 {
			delete(m, f.Value)
			if len(m) == 0 {
				delete(nb.counts, f.Name)
			}
		} else {
			m[f.Value] = c
		}
	}
}

// Clone returns a deep copy.
func (nb *NaiveBayes) Clone() *NaiveBayes {
	c := &NaiveBayes{
		classCounts: nb.classCounts,
		counts:      make(map[string]map[int][2]float64, len(nb.counts)),
	}
	for name, m := range nb.counts {
		cm := make(map[int][2]float64, len(m))
		for v, cc := range m {
			cm[v] = cc
		}
		c.counts[name] = cm
	}
	return c
}

// Trained reports whether both classes have examples.
func (nb *NaiveBayes) Trained() bool {
	return nb.classCounts[0] > 0 && nb.classCounts[1] > 0
}

// Prob returns the posterior probability of the positive class given the
// features (Eq. 2 with Laplace smoothing).
func (nb *NaiveBayes) Prob(features []Feature) float64 {
	if !nb.Trained() {
		// An untrained model is uninformative.
		return 0.5
	}
	total := nb.classCounts[0] + nb.classCounts[1]
	logP := [2]float64{
		math.Log(nb.classCounts[0] / total),
		math.Log(nb.classCounts[1] / total),
	}
	for _, f := range features {
		vals := float64(len(nb.counts[f.Name]))
		if vals == 0 {
			continue // unseen feature name: uninformative
		}
		c := nb.counts[f.Name][f.Value]
		for cls := 0; cls < 2; cls++ {
			logP[cls] += math.Log((c[cls] + 1) / (nb.classCounts[cls] + vals))
		}
	}
	// Normalise in log space.
	m := math.Max(logP[0], logP[1])
	p0 := math.Exp(logP[0] - m)
	p1 := math.Exp(logP[1] - m)
	return p1 / (p0 + p1)
}

// ErrBadModel reports a structurally invalid serialised model.
var ErrBadModel = errors.New("prob: bad naive bayes encoding")

// Encode writes the model's count tables (all integral) in a canonical
// sorted layout, so equal models encode to equal bytes.
func (nb *NaiveBayes) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	putUv := func(v uint64) {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	putUv(uint64(nb.classCounts[0]))
	putUv(uint64(nb.classCounts[1]))
	names := make([]string, 0, len(nb.counts))
	for name := range nb.counts {
		names = append(names, name)
	}
	sort.Strings(names)
	putUv(uint64(len(names)))
	for _, name := range names {
		putUv(uint64(len(name)))
		bw.WriteString(name)
		m := nb.counts[name]
		vals := make([]int, 0, len(m))
		for v := range m {
			vals = append(vals, v)
		}
		sort.Ints(vals)
		putUv(uint64(len(vals)))
		for _, v := range vals {
			putUv(uint64(v))
			c := m[v]
			putUv(uint64(c[0]))
			putUv(uint64(c[1]))
		}
	}
	return bw.Flush()
}

// DecodeNaiveBayes reads a model written by Encode.
func DecodeNaiveBayes(r io.Reader) (*NaiveBayes, error) {
	br := bufio.NewReader(r)
	getUv := func(max uint64, what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil || v > max {
			return 0, fmt.Errorf("%w: %s", ErrBadModel, what)
		}
		return v, nil
	}
	nb := NewNaiveBayes()
	for cls := 0; cls < 2; cls++ {
		v, err := getUv(1<<50, "class count")
		if err != nil {
			return nil, err
		}
		nb.classCounts[cls] = float64(v)
	}
	nnames, err := getUv(1<<20, "feature count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nnames; i++ {
		nlen, err := getUv(1<<16, "name length")
		if err != nil {
			return nil, err
		}
		buf := make([]byte, nlen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: name bytes: %v", ErrBadModel, err)
		}
		nvals, err := getUv(1<<24, "value count")
		if err != nil {
			return nil, err
		}
		m := make(map[int][2]float64, nvals)
		for j := uint64(0); j < nvals; j++ {
			v, err := getUv(1<<40, "feature value")
			if err != nil {
				return nil, err
			}
			var c [2]float64
			for cls := 0; cls < 2; cls++ {
				cc, err := getUv(1<<50, "feature count")
				if err != nil {
					return nil, err
				}
				c[cls] = float64(cc)
			}
			m[int(v)] = c
		}
		nb.counts[string(buf)] = m
	}
	return nb, nil
}
