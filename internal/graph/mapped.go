package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// PBC2 layout revision 3 — the memory-mappable encoding. Unlike the
// varint-framed revision 2, every structure here has a fixed width and
// lives at an 8-byte-aligned offset, so a loader can point its
// in-memory arrays straight at the file bytes instead of decoding them:
//
//	offset 0    magic            [4]byte "PBC2"
//	offset 4    revision         byte    0x03 (uvarint-compatible)
//	offset 5    pad              [3]byte zero
//	offset 8    nodes            uint64
//	offset 16   edges            uint64
//	offset 24   section count    uint64  (6)
//	offset 32   section table    6 x { offset uint64, length uint64 }
//	offset 128  sections, each zero-padded to an 8-byte boundary:
//	              0 labelOff   (nodes+1) x uint32
//	              1 labelData  labels back-to-back, no terminators
//	              2 outOff     (nodes+1) x uint32
//	              3 outEdges   edges x edge record
//	              4 inOff      (nodes+1) x uint32
//	              5 inEdges    edges x edge record
//	trailer     crc32           uint32 (IEEE, over everything before it)
//
// An edge record is 24 bytes: to uint32, reserved uint32 (zero),
// count uint64, plausibility float64 bits — deliberately the memory
// layout of graph.Edge on a 64-bit little-endian host, so the on-disk
// array IS the in-memory array there. All integers little-endian. The
// section table is canonical: offsets and lengths are fully determined
// by (nodes, edges, label bytes), and the parser rejects any table that
// deviates, so there is exactly one valid encoding of a given graph.
// The full byte-level specification with a worked example is in
// FORMATS.md.
const (
	v3HeaderSize     = 128
	v3SectionCount   = 6
	v3EdgeRecordSize = 24
)

type v3Section struct{ off, length uint64 }

func align8(pos uint64) uint64 { return (pos + 7) &^ 7 }

// v3Layout computes the canonical section table for a graph with the
// given node count, edge count and label-arena size.
func v3Layout(nodes, edges, labelBytes uint64) [v3SectionCount]v3Section {
	lengths := [v3SectionCount]uint64{
		4 * (nodes + 1),
		labelBytes,
		4 * (nodes + 1),
		v3EdgeRecordSize * edges,
		4 * (nodes + 1),
		v3EdgeRecordSize * edges,
	}
	var secs [v3SectionCount]v3Section
	pos := uint64(v3HeaderSize)
	for i, l := range lengths {
		pos = align8(pos)
		secs[i] = v3Section{off: pos, length: l}
		pos += l
	}
	return secs
}

// saveV3 writes f in the revision-3 mappable layout.
func saveV3(w io.Writer, f *Frozen) error {
	nodes := uint64(f.NumNodes())
	edges := uint64(len(f.outEdges))
	secs := v3Layout(nodes, edges, uint64(len(f.arena.data)))

	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}

	var hdr [v3HeaderSize]byte
	copy(hdr[0:4], csrMagic)
	hdr[4] = csrRevArena
	binary.LittleEndian.PutUint64(hdr[8:16], nodes)
	binary.LittleEndian.PutUint64(hdr[16:24], edges)
	binary.LittleEndian.PutUint64(hdr[24:32], v3SectionCount)
	for i, s := range secs {
		binary.LittleEndian.PutUint64(hdr[32+16*i:], s.off)
		binary.LittleEndian.PutUint64(hdr[40+16*i:], s.length)
	}
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}

	pos := uint64(v3HeaderSize)
	section := func(i int, emit func() error) error {
		if pad := secs[i].off - pos; pad > 0 {
			var zeros [8]byte
			if _, err := cw.Write(zeros[:pad]); err != nil {
				return err
			}
		}
		if err := emit(); err != nil {
			return err
		}
		pos = secs[i].off + secs[i].length
		return nil
	}
	emitters := []func() error{
		func() error { return writeUint32s(cw, f.arena.off) },
		func() error { _, err := cw.Write(f.arena.data); return err },
		func() error { return writeUint32s(cw, f.outOff) },
		func() error { return writeEdgeRecords(cw, f.outEdges) },
		func() error { return writeUint32s(cw, f.inOff) },
		func() error { return writeEdgeRecords(cw, f.inEdges) },
	}
	for i, emit := range emitters {
		if err := section(i, emit); err != nil {
			return err
		}
	}

	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// writeEdgeRecords writes the 24-byte revision-3 edge records with the
// reserved word zeroed, so a given graph always produces identical
// bytes.
func writeEdgeRecords(w io.Writer, es []Edge) error {
	var buf [v3EdgeRecordSize]byte
	for _, e := range es {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(e.To))
		binary.LittleEndian.PutUint32(buf[4:8], 0)
		binary.LittleEndian.PutUint64(buf[8:16], uint64(e.Count))
		binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(e.Plausibility))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// parseV3 decodes a revision-3 snapshot held entirely in data. With
// zeroCopy set (and a compatible host — see canZeroCopy) the returned
// Frozen's arrays are views into data and the caller must keep data
// valid until the Frozen is Closed; otherwise everything is copied onto
// the heap and data may be discarded.
func parseV3(data []byte, zeroCopy bool) (*Frozen, error) {
	if len(data) < v3HeaderSize+4 {
		return nil, errBadSnapshotf("%d bytes is too short for a revision-3 snapshot", len(data))
	}
	if string(data[0:4]) != csrMagic || data[4] != csrRevArena {
		return nil, errBadSnapshotf("revision-3 header mismatch")
	}
	if data[5] != 0 || data[6] != 0 || data[7] != 0 {
		return nil, errBadSnapshotf("nonzero header padding")
	}
	nodes := binary.LittleEndian.Uint64(data[8:16])
	edges := binary.LittleEndian.Uint64(data[16:24])
	if nodes > maxSnapshotNodes {
		return nil, errBadSnapshotf("node count %d exceeds limit", nodes)
	}
	if edges > maxSnapshotEdges {
		return nil, errBadSnapshotf("edge count %d exceeds limit", edges)
	}
	if got := binary.LittleEndian.Uint64(data[24:32]); got != v3SectionCount {
		return nil, errBadSnapshotf("section count %d, want %d", got, v3SectionCount)
	}
	var secs [v3SectionCount]v3Section
	for i := range secs {
		secs[i].off = binary.LittleEndian.Uint64(data[32+16*i:])
		secs[i].length = binary.LittleEndian.Uint64(data[40+16*i:])
	}
	// The table must be the canonical one for (nodes, edges, label
	// bytes): recompute it and require byte equality, so sections cannot
	// overlap, stray outside the file, or hide slack space.
	if secs[1].length > uint64(len(data)) {
		return nil, errBadSnapshotf("label arena length %d exceeds file size", secs[1].length)
	}
	if want := v3Layout(nodes, edges, secs[1].length); secs != want {
		return nil, errBadSnapshotf("non-canonical section table")
	}
	end := secs[v3SectionCount-1].off + secs[v3SectionCount-1].length
	if uint64(len(data)) != end+4 {
		return nil, errBadSnapshotf("file size %d does not match layout (want %d)", len(data), end+4)
	}
	if crc32.ChecksumIEEE(data[:len(data)-4]) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, ErrChecksum
	}

	sec := func(i int) []byte { return data[secs[i].off : secs[i].off+secs[i].length] }
	f := &Frozen{}
	if zeroCopy && canZeroCopy(data) {
		f.arena = labelArena{off: u32View(sec(0)), data: sec(1)}
		f.outOff = u32View(sec(2))
		f.outEdges = edgeView(sec(3))
		f.inOff = u32View(sec(4))
		f.inEdges = edgeView(sec(5))
		f.mapped = true
	} else {
		f.arena = labelArena{off: decodeUint32s(sec(0)), data: append([]byte(nil), sec(1)...)}
		f.outOff = decodeUint32s(sec(2))
		f.outEdges = decodeEdgeRecords(sec(3))
		f.inOff = decodeUint32s(sec(4))
		f.inEdges = decodeEdgeRecords(sec(5))
	}
	if err := f.arena.validate(); err != nil {
		return nil, err
	}
	return finishLoadedCSR(f)
}

// canZeroCopy reports whether pointing Go slices at the raw snapshot
// bytes is sound on this host: the integers must be little-endian, the
// in-memory Edge struct must match the 24-byte disk record field for
// field, and the mapping base must be 8-byte aligned (mmap hands back
// page-aligned memory; an arbitrary caller-provided buffer may not be).
// When any guard fails, parseV3 silently decodes by copying instead —
// same graph, no zero-copy.
func canZeroCopy(data []byte) bool {
	if !hostLittleEndian() {
		return false
	}
	if unsafe.Sizeof(Edge{}) != v3EdgeRecordSize ||
		unsafe.Offsetof(Edge{}.To) != 0 ||
		unsafe.Offsetof(Edge{}.Count) != 8 ||
		unsafe.Offsetof(Edge{}.Plausibility) != 16 {
		return false
	}
	return uintptr(unsafe.Pointer(&data[0]))%8 == 0
}

func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// u32View reinterprets b as a []uint32 without copying. b must be
// 4-byte aligned and a multiple of 4 long; parseV3's canonical-layout
// check guarantees both for section bytes.
func u32View(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// edgeView reinterprets b as a []Edge without copying. Only valid when
// canZeroCopy held for the enclosing mapping.
func edgeView(b []byte) []Edge {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*Edge)(unsafe.Pointer(&b[0])), len(b)/v3EdgeRecordSize)
}

func decodeUint32s(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func decodeEdgeRecords(b []byte) []Edge {
	out := make([]Edge, len(b)/v3EdgeRecordSize)
	for i := range out {
		rec := b[v3EdgeRecordSize*i:]
		out[i] = Edge{
			To:           NodeID(binary.LittleEndian.Uint32(rec[0:4])),
			Count:        int64(binary.LittleEndian.Uint64(rec[8:16])),
			Plausibility: math.Float64frombits(binary.LittleEndian.Uint64(rec[16:24])),
		}
	}
	return out
}

// LoadMapped parses a snapshot held entirely in data — typically the
// bytes of a memory-mapped file — and returns its Frozen view. For a
// revision-3 "PBC2" snapshot on a compatible host the view's label
// arena, offset tables and edge arrays alias data directly (zero-copy:
// load cost is page faults, the graph stays off the Go heap, and the
// page cache is shared across processes). Any other format, or an
// incompatible host/unaligned buffer, falls back to the copying
// decoders transparently.
//
// LoadMapped takes ownership of closer (which may be nil): it is closed
// immediately on error or when the fallback copied everything out, and
// otherwise retained and closed by Frozen.Close. Callers must not close
// it themselves, and when the returned view reports Mapped() they must
// keep every label string and edge slice obtained from it from
// outliving Frozen.Close.
func LoadMapped(data []byte, closer io.Closer) (*Frozen, error) {
	f, err := loadFromBytes(data)
	if err != nil {
		if closer != nil {
			closer.Close()
		}
		return nil, err
	}
	if f.mapped && closer != nil {
		c := closer
		f.closer.Store(&c)
		return f, nil
	}
	if closer != nil {
		if err := closer.Close(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func loadFromBytes(data []byte) (*Frozen, error) {
	if len(data) >= 5 && string(data[:4]) == csrMagic && data[4] == csrRevArena {
		return parseV3(data, true)
	}
	return LoadFrozen(bytes.NewReader(data))
}
