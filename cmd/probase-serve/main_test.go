package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

var (
	snapOnce sync.Once
	snapPath string
	snapErr  error
)

// snapshotPath builds one snapshot shared by all probase-serve tests —
// produced exactly the way probase-build produces it (core.Build +
// Save), so the binary is exercised against a real artefact.
func snapshotPath(t *testing.T) string {
	t.Helper()
	snapOnce.Do(func() {
		w := corpus.DefaultWorld(1)
		c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 8000, Seed: 11}).Generate()
		inputs := make([]extraction.Input, len(c.Sentences))
		for i, s := range c.Sentences {
			inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
		}
		pb, err := core.Build(inputs, core.Config{})
		if err != nil {
			snapErr = err
			return
		}
		dir, err := os.MkdirTemp("", "probase-serve-test")
		if err != nil {
			snapErr = err
			return
		}
		snapPath = filepath.Join(dir, "p.bin")
		f, err := os.Create(snapPath)
		if err != nil {
			snapErr = err
			return
		}
		defer f.Close()
		snapErr = pb.Save(f)
	})
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	return snapPath
}

// startServer runs the binary's run() on a random port and returns its
// base URL, a cancel triggering shutdown, and the exit channel.
func startServer(t *testing.T, ctx context.Context) (string, chan error, *bytes.Buffer) {
	t.Helper()
	stderr := &bytes.Buffer{}
	ready := make(chan net.Addr, 1)
	exit := make(chan error, 1)
	go func() {
		exit <- run(ctx, []string{"-snapshot", snapshotPath(t), "-addr", "127.0.0.1:0"}, stderr, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), exit, stderr
	case err := <-exit:
		t.Fatalf("server exited before ready: %v\n%s", err, stderr.String())
		return "", nil, nil
	}
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("%s: invalid JSON %q: %v", url, raw, err)
	}
	return resp.StatusCode, body
}

// TestServeEndToEnd starts the server from a built snapshot, answers
// all six endpoints, and shuts down cleanly on context cancellation
// (the code path SIGTERM takes through signal.NotifyContext).
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, exit, stderr := startServer(t, ctx)

	endpoints := []string{
		"/v1/instances?concept=companies&k=5",
		"/v1/concepts?term=IBM&k=5",
		"/v1/typicality?concept=companies&instance=IBM",
		"/v1/plausibility?x=companies&y=IBM",
		"/v1/conceptualize?terms=China,India,Brazil&k=5",
		"/v1/healthz",
	}
	for _, ep := range endpoints {
		status, body := getJSON(t, base+ep)
		if status != http.StatusOK {
			t.Errorf("%s: status %d, body %v", ep, status, body)
		}
	}
	// The metrics endpoint reflects the traffic.
	status, vars := getJSON(t, base+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status %d", status)
	}
	inst, ok := vars["instances"].(map[string]any)
	if !ok {
		t.Fatalf("instances metrics missing: %v", vars)
	}
	if req, _ := inst["requests"].(float64); req == 0 {
		t.Error("request counter is zero after traffic")
	}

	cancel()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("shutdown error: %v\n%s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not drain within 10s\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "stopped") {
		t.Errorf("missing clean-stop log:\n%s", stderr.String())
	}
}

// TestServeSIGTERM delivers a real SIGTERM to the process and expects
// the server (whose context comes from signal.NotifyContext, as in
// main) to drain and exit cleanly.
func TestServeSIGTERM(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	base, exit, stderr := startServer(t, ctx)

	if status, _ := getJSON(t, base+"/v1/healthz"); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("SIGTERM shutdown error: %v\n%s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not exit on SIGTERM\n%s", stderr.String())
	}
}

func TestServeErrors(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(context.Background(), []string{"-snapshot", "/no/such.bin"}, &stderr, nil); err == nil {
		t.Error("missing snapshot accepted")
	}
	if err := run(context.Background(), []string{"-bogus-flag"}, &stderr, nil); err == nil {
		t.Error("bad flag accepted")
	}
	// A corrupt snapshot must fail at startup, not at first query.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("XXXXnot a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-snapshot", bad}, &stderr, nil); err == nil {
		t.Error("corrupt snapshot accepted")
	}
	// An unusable listen address errors out rather than hanging.
	if err := run(context.Background(), []string{"-snapshot", snapshotPath(t), "-addr", "256.0.0.1:99999"}, &stderr, nil); err == nil {
		t.Error("bad listen address accepted")
	}
}

// TestServeDrainsInflight verifies the graceful path: a request racing
// the shutdown still completes with 200.
func TestServeDrainsInflight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, exit, stderr := startServer(t, ctx)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _ := getJSONquiet(base + fmt.Sprintf("/v1/instances?concept=companies&k=%d", i+1))
			if status != http.StatusOK {
				errs <- fmt.Errorf("in-flight request got status %d", status)
			}
		}(i)
	}
	// Cancel while the requests are (likely) in flight; Shutdown must let
	// them finish.
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("drain error: %v\n%s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain timed out")
	}
}

// getJSONquiet is getJSON without a testing.T: in the drain test a
// request may legally race the listener close, and a connection refused
// after shutdown completes is not a failure of draining.
func getJSONquiet(url string) (int, map[string]any) {
	resp, err := http.Get(url)
	if err != nil {
		return http.StatusOK, nil // listener already closed: nothing was in flight
	}
	defer resp.Body.Close()
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body
}
