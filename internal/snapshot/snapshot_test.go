package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/extraction"
	"repro/internal/graph"
)

// buildProbase constructs a tiny Probase with Γ from handcrafted
// sentences, enough to exercise both snapshot flavours.
func buildProbase(t *testing.T) *core.Probase {
	t.Helper()
	sentences := []string{
		"animals such as cats, dogs and rabbits live here.",
		"domestic animals such as cats and dogs are popular.",
		"companies such as IBM, Microsoft and Google compete.",
		"large companies such as IBM and Microsoft hire.",
		"pets such as cats and dogs need care.",
	}
	inputs := make([]extraction.Input, len(sentences))
	for i, s := range sentences {
		inputs[i] = extraction.Input{Text: s, PageScore: 0.9}
	}
	pb, err := core.Build(inputs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

func graphOnlyBytes(t *testing.T, pb *core.Probase) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func fullBytes(t *testing.T, pb *core.Probase) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pb.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenFlavours(t *testing.T) {
	pb := buildProbase(t)
	for _, tc := range []struct {
		name string
		data []byte
		full bool
	}{
		{"graph-only", graphOnlyBytes(t, pb), false},
		{"full", fullBytes(t, pb), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Open(writeTemp(t, tc.data))
			if err != nil {
				t.Fatal(err)
			}
			if got.Graph.NumNodes() != pb.Graph.NumNodes() {
				t.Errorf("nodes = %d, want %d", got.Graph.NumNodes(), pb.Graph.NumNodes())
			}
			if (got.Store != nil) != tc.full {
				t.Errorf("Store presence = %v, want %v", got.Store != nil, tc.full)
			}
			if rs := got.InstancesOf("animals", 5); len(rs) == 0 {
				t.Error("loaded snapshot answers no queries")
			}
		})
	}
}

// TestLoadRecordsFormat pins the snapshot-identity contract: Load
// stamps the Probase with the on-disk format magic it sniffed, for
// every format version and flavour, while in-memory builds stay blank.
func TestLoadRecordsFormat(t *testing.T) {
	pb := buildProbase(t)
	if pb.Format != "" {
		t.Errorf("in-memory build has format %q, want empty", pb.Format)
	}

	var v1 bytes.Buffer
	if err := pb.SaveVersion(&v1, 1); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
		want string
	}{
		{"v1 adjacency", v1.Bytes(), "PBGR"},
		{"v2 csr", graphOnlyBytes(t, pb), "PBC2"},
		{"full", fullBytes(t, pb), "PBFL"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Open(writeTemp(t, tc.data))
			if err != nil {
				t.Fatal(err)
			}
			if got.Format != tc.want {
				t.Errorf("format = %q, want %q", got.Format, tc.want)
			}
			// The format survives a backend rebind (hot-swap path).
			reb, err := got.Rebind(graph.NewBuilderFrom(got.Graph))
			if err != nil {
				t.Fatal(err)
			}
			if reb.Format != tc.want {
				t.Errorf("format after rebind = %q, want %q", reb.Format, tc.want)
			}
		})
	}
}

// TestLoadRecordsFormatLargeSnapshot guards the magic-aliasing trap:
// Peek returns a view into the bufio buffer, so a snapshot big enough
// to refill the buffer overwrites the peeked bytes mid-load. The format
// must be copied out before reading on, or it comes back as garbage —
// which a sub-buffer-sized test snapshot can never catch.
func TestLoadRecordsFormatLargeSnapshot(t *testing.T) {
	var sentences []string
	for i := 0; i < 400; i++ {
		tag := fmt.Sprintf("%c%c%c", 'a'+i/100, 'a'+(i/10)%10, 'a'+i%10)
		s := fmt.Sprintf(
			"category%ss such as item%salpha, item%sbeta and item%sgamma exist.",
			tag, tag, tag, tag)
		// Each pair needs repeated evidence to survive extraction.
		sentences = append(sentences, s, s, s)
	}
	inputs := make([]extraction.Input, len(sentences))
	for i, s := range sentences {
		inputs[i] = extraction.Input{Text: s, PageScore: 0.9}
	}
	pb, err := core.Build(inputs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := graphOnlyBytes(t, pb)
	if len(data) < 8192 {
		t.Fatalf("snapshot only %d bytes; too small to exercise a buffer refill", len(data))
	}
	got, err := Open(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Format != "PBC2" {
		t.Errorf("format = %q, want %q", got.Format, "PBC2")
	}
}

func TestOpenErrors(t *testing.T) {
	pb := buildProbase(t)
	gsnap := graphOnlyBytes(t, pb)
	fsnap := fullBytes(t, pb)

	corruptCRC := append([]byte(nil), gsnap...)
	corruptCRC[len(corruptCRC)-1] ^= 0xFF

	fullCorrupt := append([]byte(nil), fsnap...)
	fullCorrupt[len(fullCorrupt)-1] ^= 0xFF

	cases := []struct {
		name    string
		data    []byte // nil means: use a missing path instead
		wantErr error  // nil means: any error is fine
	}{
		{name: "missing file", data: nil},
		{name: "empty stream", data: []byte{}},
		{name: "short magic", data: []byte("PB")},
		{name: "bad magic", data: []byte("XXXXgarbage")},
		{name: "truncated graph stream", data: gsnap[:len(gsnap)/2]},
		{name: "truncated full stream", data: fsnap[:len(fsnap)/2]},
		{name: "full magic only", data: []byte("PBFL")},
		{name: "bad graph checksum", data: corruptCRC, wantErr: graph.ErrChecksum},
		{name: "bad checksum inside full snapshot", data: fullCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "does-not-exist.bin")
			if tc.data != nil {
				path = writeTemp(t, tc.data)
			}
			_, err := Open(path)
			if err == nil {
				t.Fatal("Open succeeded on invalid input")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want errors.Is(…, %v)", err, tc.wantErr)
			}
		})
	}
}

// TestOpenShortFileError pins the error contract for inputs too short
// to carry a magic: a clear "not a snapshot" diagnosis wrapping
// ErrBadSnapshot, never a bare EOF out of the sniffing machinery.
func TestOpenShortFileError(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"zero-byte file", []byte{}},
		{"one byte", []byte("P")},
		{"three bytes", []byte("PBC")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(writeTemp(t, tc.data))
			if err == nil {
				t.Fatal("Open accepted a short file")
			}
			if !errors.Is(err, graph.ErrBadSnapshot) {
				t.Errorf("err = %v, want errors.Is(…, ErrBadSnapshot)", err)
			}
			if !strings.Contains(err.Error(), "too short to be a snapshot") {
				t.Errorf("err = %q, want a 'too short to be a snapshot' diagnosis", err)
			}
		})
	}
}

// TestOpenMappedFlavours: the mapped entry point accepts every snapshot
// flavour and answers identically to the copying loader; only the
// current CSR format actually maps.
func TestOpenMappedFlavours(t *testing.T) {
	pb := buildProbase(t)
	var v1 bytes.Buffer
	if err := pb.SaveVersion(&v1, 1); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		data     []byte
		format   string
		mappable bool
	}{
		{"v2 csr", graphOnlyBytes(t, pb), "PBC2", true},
		{"v1 adjacency", v1.Bytes(), "PBGR", false},
		{"full", fullBytes(t, pb), "PBFL", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, tc.data)
			want, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			got, err := OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			defer got.Close()
			if got.Format != tc.format {
				t.Errorf("format = %q, want %q", got.Format, tc.format)
			}
			if !tc.mappable && got.Mapped() {
				t.Errorf("%s claims to be mapped", tc.name)
			}
			if got.Graph.NumNodes() != want.Graph.NumNodes() ||
				got.Graph.NumEdges() != want.Graph.NumEdges() {
				t.Errorf("mapped shape %d/%d != copied %d/%d",
					got.Graph.NumNodes(), got.Graph.NumEdges(),
					want.Graph.NumNodes(), want.Graph.NumEdges())
			}
			if rs := got.InstancesOf("animals", 5); len(rs) == 0 {
				t.Error("mapped snapshot answers no queries")
			}
			if err := got.Close(); err != nil {
				t.Fatal(err)
			}
			if err := got.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
		})
	}
}

// TestOpenMappedErrors: corrupt inputs — including a file truncated in
// the middle of the label arena — are rejected with the same error
// taxonomy as the copying loader, and never leak the mapping (verified
// indirectly: Close of a failed open is unreachable, so rejection must
// have closed it; the race detector would flag a leaked unmapped read).
func TestOpenMappedErrors(t *testing.T) {
	pb := buildProbase(t)
	gsnap := graphOnlyBytes(t, pb)

	// Section 1 of the rev-3 table is the label arena; cut inside it.
	arenaOff := int(le64(gsnap[32+16:]))
	arenaLen := int(le64(gsnap[40+16:]))
	midArena := gsnap[:arenaOff+arenaLen/2]

	corrupt := append([]byte(nil), gsnap...)
	corrupt[len(corrupt)-1] ^= 0xFF

	cases := []struct {
		name    string
		data    []byte
		wantErr error
	}{
		{name: "empty file", data: []byte{}, wantErr: graph.ErrBadSnapshot},
		{name: "short magic", data: []byte("PB"), wantErr: graph.ErrBadSnapshot},
		{name: "truncated mid-arena", data: midArena, wantErr: graph.ErrBadSnapshot},
		{name: "bad checksum", data: corrupt, wantErr: graph.ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := OpenMapped(writeTemp(t, tc.data))
			if err == nil {
				t.Fatal("OpenMapped accepted invalid input")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want errors.Is(…, %v)", err, tc.wantErr)
			}
		})
	}
	t.Run("missing file", func(t *testing.T) {
		if _, err := OpenMapped(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
			t.Fatal("OpenMapped accepted a missing file")
		}
	})
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Load sniffs the magic through a buffered reader, so it must accept a
// pure one-way stream (no Seek, no ReadByte) for every flavour, read
// each byte exactly once, and still route graph-only streams away from
// LoadFull.
func TestLoadFromNonSeekableStream(t *testing.T) {
	pb := buildProbase(t)
	for _, tc := range []struct {
		name string
		data []byte
		full bool
	}{
		{"graph-only", graphOnlyBytes(t, pb), false},
		{"full", fullBytes(t, pb), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Load(streamOnly{bytes.NewReader(tc.data)})
			if err != nil {
				t.Fatal(err)
			}
			if (got.Store != nil) != tc.full {
				t.Errorf("Store presence = %v, want %v", got.Store != nil, tc.full)
			}
			if got.Graph.NumNodes() != pb.Graph.NumNodes() {
				t.Errorf("nodes = %d, want %d", got.Graph.NumNodes(), pb.Graph.NumNodes())
			}
		})
	}
}

// streamOnly hides every interface of the wrapped reader except
// io.Reader, modelling a network stream or pipe.
type streamOnly struct{ r *bytes.Reader }

func (s streamOnly) Read(p []byte) (int, error) { return s.r.Read(p) }
