package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strconv"
	"sync"
	"time"
)

// gcPauseMetric is the runtime/metrics histogram of stop-the-world GC
// pause durations since process start.
const gcPauseMetric = "/sched/pauses/total/gc:seconds"

// gcPauseQuantiles are the quantile labels exposed for GC pauses.
var gcPauseQuantiles = []float64{0.5, 0.99, 1.0}

// RegisterProcessGauges adds the standard process-health gauges to the
// registry: goroutine count, heap usage, GC activity, and GC pause
// quantiles. runtime.ReadMemStats briefly stops the world, so the heap
// gauges share one cached sample per scrape window instead of paying
// that pause once per gauge.
func RegisterProcessGauges(r *Registry) {
	registerProcessGauges(r, newProcSampler())
}

func registerProcessGauges(r *Registry, s *procSampler) {
	r.GaugeFunc("probase_process_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("probase_process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(s.memStats().HeapAlloc) })
	r.GaugeFunc("probase_process_heap_objects",
		"Number of allocated heap objects.",
		func() float64 { return float64(s.memStats().HeapObjects) })
	r.GaugeFunc("probase_process_sys_bytes",
		"Total bytes of memory obtained from the OS.",
		func() float64 { return float64(s.memStats().Sys) })
	r.GaugeFunc("probase_process_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() float64 { return float64(s.memStats().NumGC) })
	for _, q := range gcPauseQuantiles {
		q := q
		r.GaugeFunc("probase_process_gc_pause_seconds",
			"Quantiles of the cumulative GC stop-the-world pause distribution.",
			func() float64 { return histQuantile(s.gcPauses(), q) },
			L("quantile", strconv.FormatFloat(q, 'g', -1, 64)))
	}
}

// procSampler amortises runtime introspection across the gauges of one
// scrape: the first gauge to ask within a TTL window pays for the
// runtime.ReadMemStats stop-the-world and the metrics.Read, every other
// gauge reuses the cached sample. The read and clock functions are
// injectable so tests can count reads and steer the window.
type procSampler struct {
	ttl       time.Duration
	now       func() time.Time
	readMem   func(*runtime.MemStats)
	readPause func() *metrics.Float64Histogram

	mu    sync.Mutex
	at    time.Time
	ms    runtime.MemStats
	pause *metrics.Float64Histogram
	reads int
}

func newProcSampler() *procSampler {
	return &procSampler{
		ttl:       time.Second,
		now:       time.Now,
		readMem:   runtime.ReadMemStats,
		readPause: readGCPauses,
	}
}

// refresh re-reads the runtime if the cached sample is stale. Callers
// hold s.mu.
func (s *procSampler) refresh() {
	now := s.now()
	if !s.at.IsZero() && now.Sub(s.at) < s.ttl && !now.Before(s.at) {
		return
	}
	s.readMem(&s.ms)
	s.pause = s.readPause()
	s.at = now
	s.reads++
}

func (s *procSampler) memStats() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refresh()
	return s.ms
}

func (s *procSampler) gcPauses() *metrics.Float64Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refresh()
	return s.pause
}

// readGCPauses samples the GC pause histogram from runtime/metrics. A
// nil return means the running runtime does not publish the metric (the
// KindBad guard); the quantile gauges then report 0 rather than lying.
func readGCPauses() *metrics.Float64Histogram {
	samples := []metrics.Sample{{Name: gcPauseMetric}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return samples[0].Value.Float64Histogram()
}

// histQuantile reads a nearest-rank quantile out of a runtime/metrics
// histogram: the upper bound of the bucket holding the target rank, or
// the bucket's lower bound when that edge is +Inf (the open-ended top
// bucket has no finite upper edge to report).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if upper := h.Buckets[i+1]; !math.IsInf(upper, 1) {
				return upper
			}
			return h.Buckets[i]
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
