package prob

import "math"

// Entropy returns the Shannon entropy, in bits, of a ranked score
// distribution — the ambiguity signal of Section 5: H of
// P(concept|instance) is 0 when an instance belongs unambiguously to
// one concept and grows as its membership spreads across concepts
// (maximal, log2 n, when all n scores are equal).
//
// The scores are treated as an unnormalised distribution and
// renormalised over their sum, so callers may pass any ranked slice
// whether or not it sums to exactly 1. Zero scores contribute nothing
// (lim p→0 of -p·log2 p = 0). An empty or all-zero slice has entropy 0.
func Entropy(rs []Ranked) float64 {
	var total float64
	for _, r := range rs {
		if r.Score > 0 {
			total += r.Score
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, r := range rs {
		if r.Score <= 0 {
			continue
		}
		p := r.Score / total
		h -= p * math.Log2(p)
	}
	if h < 0 {
		// Rounding can push a one-entry distribution a hair below zero.
		h = 0
	}
	return h
}
