// Package window brings the time dimension of observability
// in-process: lock-cheap sliding time-bucket rings that aggregate
// per-endpoint RED stats (request/error counts, cache hits, and
// log-linear latency histograms from internal/hdr) over rolling
// windows, plus the SLO burn-rate engine (slo.go) that evaluates a
// checked-in multi-window error-budget config against those windows.
//
// Every cumulative-since-start counter the server already exports only
// turns into a rate if an external Prometheus is scraping; the rings
// here are what lets the server itself answer "what is my qps / p99 /
// error rate right now" — the substrate /v1/admin/traffic, probase-top,
// the healthz ok|degraded status, and any future load shedder read.
//
// # Design
//
//	      ┌ bucket (10s) ┐
//	ring: [b0][b1][b2] ... [b179]   180 × 10s = the 30m retention
//	                 ▲cur
//
// One Series per endpoint (plus one for the aggregate) owns a ring of
// fixed-width buckets covering the longest window. Recording is O(1):
// take the series mutex, rotate the ring to the current wall-clock
// bucket, bump four counters, record one histogram sample. Rotation
// reuses bucket allocations (hdr.Hist.Reset), so a steady-state server
// allocates nothing per request. A rolling window of width W is read
// by merging the trailing ceil(W/bucket) buckets — the window slides at
// bucket granularity, the standard time-series trade of exactness for
// bounded memory, and the bucket width bounds the error.
//
// # Determinism
//
// The clock is injectable (Options.Now). Under a fake clock the whole
// pipeline — rotation, idle-gap recycling, window selection, histogram
// quantiles — is a pure function of the recorded event sequence, and
// Stats snapshots marshal to byte-identical JSON however the events
// were interleaved across goroutines within a bucket (histogram merge
// is commutative; counters are order-free). Backwards clock steps
// never rotate the ring (the internal/obs procSampler guard idiom):
// events during the step land in the current bucket and time resumes
// once the clock passes the bucket's start again.
package window

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/hdr"
)

// DefaultWindows are the rolling spans the traffic layer reports:
// 1m (is the spike now), 5m (is it sustained), 30m (the long burn-rate
// window). Canonical order: shortest first.
var DefaultWindows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}

// Options tunes a Set (and every Series in it). The zero value is
// usable.
type Options struct {
	// BucketWidth is the ring's rotation granularity. Default 10s.
	BucketWidth time.Duration
	// Retention is the longest readable window; the ring holds
	// Retention/BucketWidth buckets. Default 30m.
	Retention time.Duration
	// SubBits is the per-bucket latency-histogram resolution
	// (hdr.New); the default 5 gives a ≤ 2^-5 ≈ 3.2% relative
	// quantile error at ~7.7KB per active bucket — window quantiles
	// feed dashboards and SLO gates, not microbenchmarks.
	SubBits int
	// Now is the injectable clock. Default time.Now.
	Now func() time.Time
}

// defaultWindowSubBits trades histogram memory for a 3.2% quantile
// error: a fully warm 30m ring across nine series stays under ~13MB.
const defaultWindowSubBits = 5

func (o Options) withDefaults() Options {
	if o.BucketWidth <= 0 {
		o.BucketWidth = 10 * time.Second
	}
	if o.Retention < o.BucketWidth {
		o.Retention = 30 * time.Minute
	}
	if o.SubBits == 0 {
		o.SubBits = defaultWindowSubBits
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Outcome is one finished request as the ring records it.
type Outcome struct {
	// Latency is the served duration (negative clamps to 0).
	Latency time.Duration
	// Error marks a server fault: a 5xx response (including deadline
	// 503s). 4xx responses are valid negative answers on this API and
	// are deliberately NOT errors here — the SLO engine burns budget
	// on faults, not on clients asking about unknown concepts.
	Error bool
	// CacheHit / CacheMiss report the hot-query cache outcome;
	// both false on uncacheable endpoints.
	CacheHit  bool
	CacheMiss bool
}

// bucket is one time slot of the ring.
type bucket struct {
	requests  int64
	errors    int64
	cacheHits int64
	cacheMiss int64
	lat       *hdr.Hist // allocated on first use, recycled by Reset
}

func (b *bucket) reset() {
	b.requests, b.errors, b.cacheHits, b.cacheMiss = 0, 0, 0, 0
	if b.lat != nil {
		b.lat.Reset()
	}
}

// Series is one endpoint's sliding ring. Safe for concurrent use; the
// critical section per Record is four increments and one histogram
// sample under a single mutex.
type Series struct {
	opts  Options
	width time.Duration

	mu       sync.Mutex
	buckets  []bucket
	cur      int
	curStart time.Time // aligned start of buckets[cur]; zero until first event
}

// NewSeries builds an empty ring.
func NewSeries(opts Options) *Series {
	opts = opts.withDefaults()
	n := int(opts.Retention / opts.BucketWidth)
	if n < 1 {
		n = 1
	}
	return &Series{
		opts:    opts,
		width:   opts.BucketWidth,
		buckets: make([]bucket, n),
	}
}

// rotate advances the ring to the bucket containing now, zeroing every
// slot stepped over — which is exactly what expires data older than the
// retention: a gap longer than the whole ring clears it wholesale.
// A now before the current bucket's start (backwards clock step) is a
// no-op: the ring never moves backwards, the event simply lands in the
// bucket the clock last confirmed. Callers hold s.mu.
func (s *Series) rotate(now time.Time) {
	aligned := now.Truncate(s.width)
	if s.curStart.IsZero() {
		s.curStart = aligned
		return
	}
	if !aligned.After(s.curStart) {
		return
	}
	steps := int64(aligned.Sub(s.curStart) / s.width)
	if steps >= int64(len(s.buckets)) {
		for i := range s.buckets {
			s.buckets[i].reset()
		}
	} else {
		for i := int64(0); i < steps; i++ {
			s.cur = (s.cur + 1) % len(s.buckets)
			s.buckets[s.cur].reset()
		}
	}
	s.curStart = aligned
}

// Record books one outcome into the bucket current at the clock's now.
func (s *Series) Record(o Outcome) {
	now := s.opts.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotate(now)
	b := &s.buckets[s.cur]
	b.requests++
	if o.Error {
		b.errors++
	}
	if o.CacheHit {
		b.cacheHits++
	}
	if o.CacheMiss {
		b.cacheMiss++
	}
	if b.lat == nil {
		b.lat = hdr.New(s.opts.SubBits)
	}
	b.lat.Record(o.Latency.Nanoseconds())
}

// Reset empties the ring (snapshot hot-swap: the new snapshot starts
// with a clean traffic history).
func (s *Series) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.buckets {
		s.buckets[i].reset()
	}
	s.cur = 0
	s.curStart = time.Time{}
}

// Stats is one rolling window's RED summary, shaped for JSON (the
// probase-traffic/v1 payload) and for the SLO engine. Rates use the
// nominal window span, so a fresh series under-reports RPS until the
// window fills — by design: "qps over the last minute" is a property
// of the minute, not of however long the server has been up.
type Stats struct {
	Window       string  `json:"window"` // canonical name, e.g. "1m"
	Seconds      float64 `json:"seconds"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	RPS          float64 `json:"rps"`
	ErrorRate    float64 `json:"error_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	P50MS        float64 `json:"p50_ms"`
	P90MS        float64 `json:"p90_ms"`
	P99MS        float64 `json:"p99_ms"`
	MaxMS        float64 `json:"max_ms"`
}

// Stats reads the trailing windows in one pass under the lock. Each
// window merges its trailing buckets (including the current partial
// one) into counters and one scratch histogram; merge order cannot
// matter because histogram merge and integer addition commute.
func (s *Series) Stats(windows ...time.Duration) []Stats {
	now := s.opts.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotate(now)
	out := make([]Stats, len(windows))
	scratch := hdr.New(s.opts.SubBits)
	for wi, w := range windows {
		n := int(w / s.width)
		if n < 1 {
			n = 1
		}
		if n > len(s.buckets) {
			n = len(s.buckets)
		}
		scratch.Reset()
		st := Stats{Window: Name(w), Seconds: w.Seconds()}
		for i := 0; i < n; i++ {
			b := &s.buckets[(s.cur-i+len(s.buckets))%len(s.buckets)]
			st.Requests += b.requests
			st.Errors += b.errors
			st.CacheHits += b.cacheHits
			st.CacheMisses += b.cacheMiss
			if b.lat != nil {
				// Same resolution by construction; Merge cannot fail.
				scratch.Merge(b.lat)
			}
		}
		if w > 0 {
			st.RPS = float64(st.Requests) / w.Seconds()
		}
		if st.Requests > 0 {
			st.ErrorRate = float64(st.Errors) / float64(st.Requests)
		}
		if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
			st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
		}
		if scratch.Count() > 0 {
			st.P50MS = ms(scratch.Quantile(0.5))
			st.P90MS = ms(scratch.Quantile(0.9))
			st.P99MS = ms(scratch.Quantile(0.99))
			st.MaxMS = ms(scratch.Max())
		}
		out[wi] = st
	}
	return out
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// Name renders a window span the way the config files and JSON
// payloads spell it: "1m", "5m", "30m", "1h" — not time.Duration's
// "1m0s".
func Name(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	case d >= time.Second && d%time.Second == 0:
		return fmt.Sprintf("%ds", d/time.Second)
	}
	return d.String()
}

// Set is the per-endpoint fan-out: one Series per endpoint plus one
// aggregate Series recorded in lockstep (cheaper than merging rings on
// every read, and the aggregate is what the SLO engine polls).
type Set struct {
	opts   Options
	names  []string
	series map[string]*Series
	total  *Series
}

// NewSet builds a Set for a fixed endpoint list (unknown endpoints are
// recorded into the aggregate only).
func NewSet(endpoints []string, opts Options) *Set {
	opts = opts.withDefaults()
	st := &Set{
		opts:   opts,
		names:  append([]string(nil), endpoints...),
		series: make(map[string]*Series, len(endpoints)),
		total:  NewSeries(opts),
	}
	for _, ep := range endpoints {
		st.series[ep] = NewSeries(opts)
	}
	return st
}

// Record books one outcome under its endpoint and into the aggregate.
func (st *Set) Record(endpoint string, o Outcome) {
	if s, ok := st.series[endpoint]; ok {
		s.Record(o)
	}
	st.total.Record(o)
}

// Endpoints returns the fixed endpoint list in registration order.
func (st *Set) Endpoints() []string { return st.names }

// Series returns one endpoint's ring (nil when unknown).
func (st *Set) Series(endpoint string) *Series { return st.series[endpoint] }

// Total returns the aggregate ring across all endpoints.
func (st *Set) Total() *Series { return st.total }

// Reset empties every ring — the snapshot hot-swap path.
func (st *Set) Reset() {
	for _, s := range st.series {
		s.Reset()
	}
	st.total.Reset()
}
