package nlp

import (
	"testing"
	"testing/quick"
)

func TestPluralizeWord(t *testing.T) {
	tests := []struct{ in, want string }{
		{"cat", "cats"},
		{"company", "companies"},
		{"country", "countries"},
		{"city", "cities"},
		{"box", "boxes"},
		{"church", "churches"},
		{"bush", "bushes"},
		{"person", "people"},
		{"child", "children"},
		{"wolf", "wolves"},
		{"sheep", "sheep"},
		{"hero", "heroes"},
		{"day", "days"}, // vowel before y
		{"bus", "buses"},
	}
	for _, tt := range tests {
		if got := PluralizeWord(tt.in); got != tt.want {
			t.Errorf("PluralizeWord(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestSingularizeWord(t *testing.T) {
	tests := []struct{ in, want string }{
		{"cats", "cat"},
		{"companies", "company"},
		{"countries", "country"},
		{"boxes", "box"},
		{"churches", "church"},
		{"people", "person"},
		{"children", "child"},
		{"wolves", "wolf"},
		{"sheep", "sheep"},
		{"heroes", "hero"},
		{"glass", "glass"}, // -ss is singular
		{"classes", "class"},
		{"buses", "bus"},
	}
	for _, tt := range tests {
		if got := SingularizeWord(tt.in); got != tt.want {
			t.Errorf("SingularizeWord(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestIsPluralWord(t *testing.T) {
	plurals := []string{"cats", "companies", "countries", "people", "children", "boxes", "wolves", "sheep", "movies"}
	for _, w := range plurals {
		if !IsPluralWord(w) {
			t.Errorf("IsPluralWord(%q) = false, want true", w)
		}
	}
	singulars := []string{"cat", "company", "country", "person", "child", "box", "wolf", "glass", "bus"}
	for _, w := range singulars {
		if IsPluralWord(w) {
			t.Errorf("IsPluralWord(%q) = true, want false", w)
		}
	}
}

func TestPhraseMorphology(t *testing.T) {
	if got := PluralizePhrase("tropical country"); got != "tropical countries" {
		t.Errorf("PluralizePhrase = %q", got)
	}
	if got := SingularizePhrase("tropical countries"); got != "tropical country" {
		t.Errorf("SingularizePhrase = %q", got)
	}
	if !IsPluralPhrase("domestic animals") {
		t.Error("IsPluralPhrase(domestic animals) = false")
	}
	if IsPluralPhrase("domestic animal") {
		t.Error("IsPluralPhrase(domestic animal) = true")
	}
	if PluralizePhrase("") != "" || SingularizePhrase("") != "" {
		t.Error("empty phrase must round-trip to empty")
	}
}

// Property: for the regular noun shapes the generator below produces,
// singularize(pluralize(w)) == w.
func TestPluralRoundTripProperty(t *testing.T) {
	letters := []rune("bcdfglmnprt")
	vowels := []rune("aeiou")
	gen := func(seed int64) string {
		// Build a small CVC(+suffix) pseudo-noun deterministically from seed.
		s := seed
		next := func(n int64) int64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := s >> 33
			if v < 0 {
				v = -v
			}
			return v % n
		}
		w := string(letters[next(int64(len(letters)))]) +
			string(vowels[next(int64(len(vowels)))]) +
			string(letters[next(int64(len(letters)))])
		switch next(4) {
		case 1:
			w += "y"
		case 2:
			w += "ch"
		case 3:
			w += "x"
		}
		return w
	}
	f := func(seed int64) bool {
		w := gen(seed)
		return SingularizeWord(PluralizeWord(w)) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: PluralizeWord output always satisfies IsPluralWord.
func TestPluralDetectionProperty(t *testing.T) {
	words := []string{"cat", "company", "box", "church", "wolf", "person", "festival", "drug", "museum", "river", "website", "browser", "protocol", "airline", "airport", "album", "artist", "book", "camera", "disease"}
	for _, w := range words {
		if !IsPluralWord(PluralizeWord(w)) {
			t.Errorf("IsPluralWord(PluralizeWord(%q)) = false", w)
		}
	}
}
