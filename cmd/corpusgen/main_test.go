package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
)

func TestRunWritesCorpusFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.tsv")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-sentences", "500", "-o", out}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sents, err := corpus.ReadSentences(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(sents) != 500 {
		t.Errorf("wrote %d sentences", len(sents))
	}
	if !strings.Contains(stderr.String(), "500 sentences") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sentences", "50", "-o", "-"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	sents, err := corpus.ReadSentences(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(sents) != 50 {
		t.Errorf("stdout had %d sentences", len(sents))
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-nope"}, &stdout, &stderr); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunUnwritablePath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sentences", "10", "-o", "/nonexistent-dir/x.tsv"}, &stdout, &stderr); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "corpusgen version") {
		t.Errorf("stdout = %q", stdout.String())
	}
}
