package apps

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
)

// InstancePair is one interpretation of a two-concept query: a concrete
// instance pair substituted for the two concepts, scored by word
// association (page co-occurrence weighted by typicality) — the
// mechanism the paper describes for queries like "database conferences
// in asian cities" (Section 5.3.1: "we use word association between
// instances ... to determine the best pair of instances for
// substitution").
type InstancePair struct {
	A, B  string
	Pages int // pages where both appear
	Score float64
}

// NewSentenceIndex indexes every sentence as its own document. Relational
// word association ("IBM is based in USA") lives at sentence granularity;
// page-level co-occurrence is dominated by chance.
func NewSentenceIndex(sentences []corpus.Sentence) *PageIndex {
	docs := make([]corpus.Sentence, len(sentences))
	for i, s := range sentences {
		docs[i] = corpus.Sentence{Text: s.Text, PageID: int32(i)}
	}
	return NewPageIndex(docs)
}

// InterpretQuery rewrites the two concepts into their top rewriteK
// typical instances and ranks the instance pairs by co-occurrence lift
// (observed over expected under independence — PMI-style word
// association) and joint typicality. Pairs that never co-occur are
// dropped. Pass a sentence-granularity index (NewSentenceIndex) for
// relational queries.
func InterpretQuery(pb *core.Probase, idx *PageIndex, conceptA, conceptB string, rewriteK, topK int) []InstancePair {
	as := pb.InstancesOf(conceptA, rewriteK)
	bs := pb.InstancesOf(conceptB, rewriteK)
	total := float64(idx.NumPages())
	if total == 0 {
		return nil
	}
	// Longest-match discipline: an occurrence of "China" inside the
	// longer entity "China Mobile" must not count as a mention of China.
	// Collect, per candidate, the longer candidate phrases that contain
	// it, and mask those before testing.
	var vocab []string
	for _, r := range as {
		vocab = append(vocab, r.Label)
	}
	for _, r := range bs {
		vocab = append(vocab, r.Label)
	}
	longer := func(phrase string) []string {
		var out []string
		lp := " " + lowerASCII(stripPunct(phrase)) + " "
		for _, v := range vocab {
			lv := " " + lowerASCII(stripPunct(v)) + " "
			if len(lv) > len(lp) && strings.Contains(lv, lp) {
				out = append(out, v)
			}
		}
		return out
	}
	contains := func(pos int, phrase string, mask []string) bool {
		text := " " + lowerASCII(stripPunct(idx.PageText(pos))) + " "
		for _, m := range mask {
			text = strings.ReplaceAll(text, " "+lowerASCII(stripPunct(m))+" ", " # ")
		}
		return strings.Contains(text, " "+lowerASCII(stripPunct(phrase))+" ")
	}
	bPages := make(map[string]int, len(bs))
	bMask := make(map[string][]string, len(bs))
	for _, b := range bs {
		bMask[b.Label] = longer(b.Label)
		n := 0
		for _, pos := range idx.pagesWithPhrase(b.Label) {
			if contains(pos, b.Label, bMask[b.Label]) {
				n++
			}
		}
		bPages[b.Label] = n
	}
	var out []InstancePair
	for _, a := range as {
		aMask := longer(a.Label)
		var pagesA []int
		for _, pos := range idx.pagesWithPhrase(a.Label) {
			if contains(pos, a.Label, aMask) {
				pagesA = append(pagesA, pos)
			}
		}
		if len(pagesA) == 0 {
			continue
		}
		for _, b := range bs {
			nb := bPages[b.Label]
			if nb == 0 {
				continue
			}
			co := 0
			for _, pos := range pagesA {
				if contains(pos, b.Label, bMask[b.Label]) {
					co++
				}
			}
			if co == 0 {
				continue
			}
			// Word association à la PMI: observed co-occurrence against
			// the independence expectation, weighted by joint typicality.
			// Raw counts would reward globally frequent instances.
			expected := float64(len(pagesA)) * float64(nb) / total
			out = append(out, InstancePair{
				A:     a.Label,
				B:     b.Label,
				Pages: co,
				Score: float64(co) / expected * (a.Score + b.Score),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out
}

// pagesWithPhrase returns the page positions containing the phrase.
func (idx *PageIndex) pagesWithPhrase(phrase string) []int {
	head := firstToken(phrase)
	if head == "" {
		return nil
	}
	var out []int
	for _, pos := range idx.postings[head] {
		if idx.ContainsPhrase(pos, phrase) {
			out = append(out, pos)
		}
	}
	return out
}

func firstToken(phrase string) string {
	f := []rune(stripPunct(phrase))
	start := 0
	for start < len(f) && f[start] == ' ' {
		start++
	}
	end := start
	for end < len(f) && f[end] != ' ' {
		end++
	}
	if start == end {
		return ""
	}
	return lowerASCII(string(f[start:end]))
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// InterpretReport evaluates interpretation quality over organisation-in-
// country queries: a returned pair (org, country) is correct when the
// ground truth places the organisation in that country and the country
// belongs to the queried country concept.
type InterpretReport struct {
	Queries int
	Pairs   int
	Correct int
}

// Precision returns Correct/Pairs.
func (r InterpretReport) Precision() float64 {
	if r.Pairs == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Pairs)
}

// EvaluateInterpretation runs "X in Y" queries (organisation concept X,
// country concept Y) and judges the returned pairs against the world's
// relational ground truth.
func EvaluateInterpretation(pb *core.Probase, idx *PageIndex, w *corpus.World, orgConcepts, countryConcepts []string, topK int) InterpretReport {
	var rep InterpretReport
	for _, oc := range orgConcepts {
		for _, cc := range countryConcepts {
			rep.Queries++
			for _, pair := range InterpretQuery(pb, idx, oc, cc, 15, topK) {
				rep.Pairs++
				if w.Home(pair.A) == pair.B && w.IsTrueIsA(cc, pair.B) && w.IsTrueIsA(oc, pair.A) {
					rep.Correct++
				}
			}
		}
	}
	return rep
}
