// Command probase-serve exposes a taxonomy snapshot as a long-lived
// HTTP query service. The snapshot (either flavour written by
// probase-build) is loaded once at startup; every request is answered
// from memory through a sharded hot-query cache. See the package docs
// of internal/server for the endpoint contract.
//
// Usage:
//
//	probase-serve -snapshot probase.bin -addr :8080
//
// Then:
//
//	curl 'localhost:8080/v1/instances?concept=companies&k=5'
//	curl 'localhost:8080/v1/conceptualize?terms=China,India,Brazil'
//	curl 'localhost:8080/debug/vars'
//
// On SIGINT/SIGTERM the listener closes and in-flight requests drain
// (bounded by -drain) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/snapshot"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "probase-serve:", err)
		os.Exit(1)
	}
}

// run loads the snapshot and serves until ctx is cancelled (or the
// listener fails). When ready is non-nil, the bound address is sent on
// it once the server accepts connections — tests bind to port 0 and
// need to learn the port.
func run(ctx context.Context, args []string, stderr io.Writer, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("probase-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		snapPath = fs.String("snapshot", "probase.bin", "taxonomy snapshot from probase-build")
		addr     = fs.String("addr", ":8080", "listen address")
		shards   = fs.Int("cache-shards", 16, "hot-query cache shards (rounded up to a power of two)")
		perShard = fs.Int("cache-per-shard", 512, "max cached responses per shard")
		reqTO    = fs.Duration("request-timeout", 5*time.Second, "per-request deadline")
		drain    = fs.Duration("drain", 10*time.Second, "shutdown drain window for in-flight requests")
		maxK     = fs.Int("max-k", 1000, "cap on the k query parameter")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	start := time.Now()
	pb, err := snapshot.Open(*snapPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "probase-serve: loaded %s in %v: %d nodes, %d edges\n",
		*snapPath, time.Since(start).Round(time.Millisecond),
		pb.Graph.NumNodes(), pb.Graph.NumEdges())

	srv := server.New(pb, server.Config{
		CacheShards:          *shards,
		CacheEntriesPerShard: *perShard,
		RequestTimeout:       *reqTO,
		MaxK:                 *maxK,
	})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// The handler enforces its own per-request deadline; these bound
		// pathological clients.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "probase-serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stderr, "probase-serve: shutdown requested, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	// Serve returns ErrServerClosed after a clean Shutdown.
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stderr, "probase-serve: stopped")
	return nil
}
