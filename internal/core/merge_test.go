package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/graph"
	"repro/internal/obs"
)

func TestMergeFreebaseInstances(t *testing.T) {
	pb, w := buildFixture(t, 10000)
	fb := baseline.NewFreebaseRef(corpus.DefaultWorld(1))

	before := len(pb.Graph.Instances())
	merged, err := pb.Merge(fb.Graph)
	if err != nil {
		t.Fatal(err)
	}
	after := len(merged.Graph.Instances())
	if after <= before {
		t.Errorf("merge added no instances: %d -> %d", before, after)
	}
	// The original is untouched.
	if len(pb.Graph.Instances()) != before {
		t.Error("merge mutated the original graph")
	}
	// Every Freebase instance is now reachable under its concept.
	missing := 0
	for _, inst := range fb.Instances {
		if merged.Graph.Lookup(inst) == graph.NoNode {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d Freebase instances missing after merge", missing)
	}
	// Typicality queries keep working and see the merged mass.
	top := merged.InstancesOf("companies", 20)
	if len(top) == 0 {
		t.Fatal("merged taxonomy lost company instances")
	}
	// Plausibility on a merged-only pair falls back to reachability.
	var mergedOnly string
	for _, inst := range fb.Instances {
		if w.IsTrueIsA("companies", inst) && pb.Store.Count("company", inst) == 0 {
			mergedOnly = inst
			break
		}
	}
	if mergedOnly != "" {
		if got := merged.Plausibility("companies", mergedOnly); got <= 0 {
			t.Errorf("plausibility of merged-only pair (company, %s) = %v", mergedOnly, got)
		}
	}
}

func TestMergeIsDAGSafe(t *testing.T) {
	pb, _ := buildFixture(t, 8000)
	// An adversarial source that tries to invert an existing edge.
	adv := graph.NewStore()
	cat := adv.Intern("cat")
	animal := adv.Intern("animal")
	adv.AddEdge(cat, animal, 5, 0.9) // cat -> animal would close a cycle
	merged, err := pb.Merge(adv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merged.Graph.TopoLevels(); err != nil {
		t.Fatalf("merge produced a cycle: %v", err)
	}
}

func TestMergeEmptySource(t *testing.T) {
	pb, _ := buildFixture(t, 8000)
	merged, err := pb.Merge(graph.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Graph.NumNodes() != pb.Graph.NumNodes() || merged.Graph.NumEdges() != pb.Graph.NumEdges() {
		t.Error("empty merge changed the graph")
	}
}

// TestMergeObservedReannotates: with a live evidence model, the merged
// graph's edges carry freshly computed plausibilities — an imported edge
// that duplicates a Γ-known pair is rescored by the model, while pairs
// unknown to Γ keep the plausibility the source shipped. The stage
// reporter sees the annotation pass.
func TestMergeObservedReannotates(t *testing.T) {
	pb, _ := buildFixture(t, 8000)

	// Find a real edge of the built taxonomy whose pair is in Γ.
	var fromLabel, toLabel string
	var want float64
	for _, c := range pb.Graph.Concepts() {
		x := BaseLabel(pb.Graph.Label(c))
		for _, e := range pb.Graph.Children(c) {
			y := BaseLabel(pb.Graph.Label(e.To))
			if e.Plausibility > 0 && pb.Store.Count(x, y) > 0 {
				fromLabel, toLabel = pb.Graph.Label(c), pb.Graph.Label(e.To)
				want = e.Plausibility
				break
			}
		}
		if fromLabel != "" {
			break
		}
	}
	if fromLabel == "" {
		t.Fatal("no annotated edge with Γ backing found")
	}

	src := graph.NewStore()
	// Duplicate the known pair with a bogus imported plausibility...
	src.AddEdge(src.Intern(BaseLabel(fromLabel)), src.Intern(toLabel), 1, 0.123)
	// ...and bring one pair Γ knows nothing about.
	src.AddEdge(src.Intern("martian vehicle"), src.Intern("rover x-99"), 3, 0.777)

	col := obs.NewStatsCollector()
	merged, err := pb.MergeObserved(src, 2, col)
	if err != nil {
		t.Fatal(err)
	}
	from, to := merged.Graph.Lookup(fromLabel), merged.Graph.Lookup(toLabel)
	e, ok := merged.Graph.EdgeBetween(from, to)
	if !ok {
		t.Fatal("merged edge vanished")
	}
	if e.Plausibility != want {
		t.Errorf("Γ-known edge plausibility = %v after merge, want model value %v", e.Plausibility, want)
	}
	mf, mt := merged.Graph.Lookup("martian vehicle"), merged.Graph.Lookup("rover x-99")
	if me, ok := merged.Graph.EdgeBetween(mf, mt); !ok || me.Plausibility != 0.777 {
		t.Errorf("imported-only edge = %+v, want stored plausibility 0.777", me)
	}
	seen := map[string]bool{}
	for _, s := range col.Stages() {
		seen[s.Name] = true
	}
	if !seen[obs.StageProbAnnotate] {
		t.Error("reporter saw no annotation stage during merge")
	}
}
