package prob

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/kb"
)

func benchTaxonomy() *graph.Store {
	rng := rand.New(rand.NewSource(1))
	g := graph.NewStore()
	root := g.Intern("thing")
	for c := 0; c < 60; c++ {
		concept := g.Intern(fmt.Sprintf("concept%d", c))
		g.AddEdge(root, concept, int64(rng.Intn(10)+1), 0.9)
		for s := 0; s < 3; s++ {
			sub := g.Intern(fmt.Sprintf("concept%d/sub%d", c, s))
			g.AddEdge(concept, sub, int64(rng.Intn(8)+1), 0.9)
			for i := 0; i < 20; i++ {
				inst := g.Intern(fmt.Sprintf("inst%d-%d-%d", c, s, i))
				g.AddEdge(sub, inst, int64(rng.Intn(30)+1), 0.95)
				if rng.Intn(3) == 0 {
					g.AddEdge(concept, inst, int64(rng.Intn(30)+1), 0.95)
				}
			}
		}
	}
	return g
}

func BenchmarkNewTypicality(b *testing.B) {
	g := benchTaxonomy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewTypicality(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstancesOf(b *testing.B) {
	g := benchTaxonomy()
	ty, err := NewTypicality(g)
	if err != nil {
		b.Fatal(err)
	}
	ids := g.Concepts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ty.InstancesOf(ids[i%len(ids)])
	}
}

func BenchmarkConceptsOf(b *testing.B) {
	g := benchTaxonomy()
	ty, err := NewTypicality(g)
	if err != nil {
		b.Fatal(err)
	}
	insts := g.Instances()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ty.ConceptsOf(insts[i%len(insts)])
	}
}

func BenchmarkPlausibility(b *testing.B) {
	s := kb.NewStore(32)
	for i := 0; i < 5000; i++ {
		x := fmt.Sprintf("c%d", i%50)
		y := fmt.Sprintf("i%d", i%1000)
		s.Add(x, y, 1)
		s.AddEvidence(x, y, kb.Evidence{Pattern: i%6 + 1, PageScore: 0.5, ListLen: 3, Pos: i%4 + 1})
	}
	m := Train(s, func(x, y string) (bool, bool) { return len(y)%2 == 0, true })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Plausibility(fmt.Sprintf("c%d", i%50), fmt.Sprintf("i%d", i%1000))
	}
}
