package kb

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestAddAndCount(t *testing.T) {
	s := NewStore(0)
	s.Add("animals", "cats", 3)
	s.Add("animals", "dogs", 1)
	s.Add("companies", "IBM", 2)
	if got := s.Count("animals", "cats"); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := s.Count("animals", "birds"); got != 0 {
		t.Errorf("Count missing = %d, want 0", got)
	}
	if got := s.NumPairs(); got != 3 {
		t.Errorf("NumPairs = %d, want 3", got)
	}
	if got := s.NumSupers(); got != 2 {
		t.Errorf("NumSupers = %d, want 2", got)
	}
	if got := s.Total(); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
	if got := s.SuperTotal("animals"); got != 4 {
		t.Errorf("SuperTotal = %d, want 4", got)
	}
}

func TestAddIgnoresInvalid(t *testing.T) {
	s := NewStore(0)
	s.Add("", "y", 1)
	s.Add("x", "", 1)
	s.Add("x", "y", 0)
	s.Add("x", "y", -5)
	if s.NumPairs() != 0 || s.Total() != 0 {
		t.Errorf("invalid adds changed store: %v", s)
	}
}

func TestProbabilities(t *testing.T) {
	s := NewStore(0)
	s.Add("animals", "cats", 6)
	s.Add("animals", "dogs", 2)
	s.Add("companies", "IBM", 2)
	if got := s.PX("animals"); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("PX = %v, want 0.8", got)
	}
	if got := s.PYgivenX("cats", "animals"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("PYgivenX = %v, want 0.75", got)
	}
	if got := s.PYgivenX("cats", "companies"); got != 0 {
		t.Errorf("PYgivenX unseen = %v, want 0", got)
	}
	if got := s.PX("unknown"); got != 0 {
		t.Errorf("PX unknown = %v, want 0", got)
	}
	empty := NewStore(0)
	if got := empty.PX("x"); got != 0 {
		t.Errorf("PX on empty = %v, want 0", got)
	}
	if got := empty.PYgivenX("y", "x"); got != 0 {
		t.Errorf("PYgivenX on empty = %v, want 0", got)
	}
}

func TestCoOccurrence(t *testing.T) {
	s := NewStore(0)
	s.Add("companies", "IBM", 1)
	s.Add("companies", "Proctor and Gamble", 1)
	s.AddCo("companies", "IBM", "Proctor and Gamble", 1)
	if got := s.CoCount("companies", "IBM", "Proctor and Gamble"); got != 1 {
		t.Errorf("CoCount = %d, want 1", got)
	}
	// symmetric
	if got := s.CoCount("companies", "Proctor and Gamble", "IBM"); got != 1 {
		t.Errorf("CoCount reversed = %d, want 1", got)
	}
	if got := s.PYgivenCX("IBM", "Proctor and Gamble", "companies"); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("PYgivenCX = %v, want 1", got)
	}
	if got := s.PYgivenCX("IBM", "unseen", "companies"); got != 0 {
		t.Errorf("PYgivenCX unseen c = %v, want 0", got)
	}
	s.AddCo("x", "a", "a", 5) // self co-occurrence ignored
	if got := s.CoCount("x", "a", "a"); got != 0 {
		t.Errorf("self CoCount = %d, want 0", got)
	}
}

func TestSortedAccessors(t *testing.T) {
	s := NewStore(0)
	s.Add("animals", "cats", 5)
	s.Add("animals", "dogs", 5)
	s.Add("animals", "birds", 9)
	want := []string{"birds", "cats", "dogs"} // count desc, then lexicographic
	if got := s.SubsOf("animals"); !reflect.DeepEqual(got, want) {
		t.Errorf("SubsOf = %v, want %v", got, want)
	}
	s.Add("pets", "cats", 50)
	if got := s.SupersOf("cats"); !reflect.DeepEqual(got, []string{"pets", "animals"}) {
		t.Errorf("SupersOf = %v", got)
	}
	if got := s.SubsOf("nothing"); len(got) != 0 {
		t.Errorf("SubsOf missing = %v", got)
	}
}

func TestEvidenceCap(t *testing.T) {
	s := NewStore(2)
	for i := 0; i < 5; i++ {
		s.AddEvidence("x", "y", Evidence{Pattern: i})
	}
	if got := len(s.Evidence("x", "y")); got != 2 {
		t.Errorf("capped evidence = %d, want 2", got)
	}
	unlimited := NewStore(0)
	for i := 0; i < 5; i++ {
		unlimited.AddEvidence("x", "y", Evidence{Pattern: i})
	}
	if got := len(unlimited.Evidence("x", "y")); got != 5 {
		t.Errorf("uncapped evidence = %d, want 5", got)
	}
}

func TestForEachPairDeterministic(t *testing.T) {
	s := NewStore(0)
	s.Add("b", "z", 1)
	s.Add("a", "y", 2)
	s.Add("a", "x", 3)
	var got []Pair
	s.ForEachPair(func(x, y string, n int64) {
		got = append(got, Pair{x, y})
	})
	want := []Pair{{"a", "x"}, {"a", "y"}, {"b", "z"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestMerge(t *testing.T) {
	a := NewStore(3)
	a.Add("animals", "cats", 1)
	a.AddEvidence("animals", "cats", Evidence{Pattern: 1})
	b := NewStore(3)
	b.Add("animals", "cats", 2)
	b.Add("animals", "dogs", 1)
	b.AddCo("animals", "cats", "dogs", 1)
	b.AddEvidence("animals", "cats", Evidence{Pattern: 2})
	a.Merge(b)
	if got := a.Count("animals", "cats"); got != 3 {
		t.Errorf("merged count = %d, want 3", got)
	}
	if got := a.NumPairs(); got != 2 {
		t.Errorf("merged pairs = %d, want 2", got)
	}
	if got := a.CoCount("animals", "dogs", "cats"); got != 1 {
		t.Errorf("merged co = %d, want 1", got)
	}
	if got := len(a.Evidence("animals", "cats")); got != 2 {
		t.Errorf("merged evidence = %d, want 2", got)
	}
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	s := NewStore(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			s.Add("x", "y", 1)
			s.AddCo("x", "y", "z", 1)
			s.AddEvidence("x", "y", Evidence{})
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Count("x", "y")
				s.PX("x")
				s.PYgivenX("y", "x")
				s.SubsOf("x")
				s.Stats()
			}
		}()
	}
	wg.Wait()
	if got := s.Count("x", "y"); got != 1000 {
		t.Errorf("final count = %d, want 1000", got)
	}
}

// Property: total always equals the sum of per-super totals, and
// per-super totals the sum of their pair counts.
func TestStoreInvariantsProperty(t *testing.T) {
	f := func(ops []struct {
		X, Y uint8
		N    int8
	}) bool {
		s := NewStore(0)
		for _, op := range ops {
			x := string(rune('a' + op.X%5))
			y := string(rune('m' + op.Y%7))
			s.Add(x, y, int64(op.N))
		}
		var mass int64
		var pairs int64
		for _, x := range []string{"a", "b", "c", "d", "e"} {
			var st int64
			for _, y := range s.SubsOf(x) {
				st += s.Count(x, y)
				pairs++
			}
			if st != s.SuperTotal(x) {
				return false
			}
			mass += st
		}
		return mass == s.Total() && pairs == s.NumPairs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStoreString(t *testing.T) {
	s := NewStore(0)
	s.Add("a", "b", 2)
	if got := s.String(); got != "kb.Store{pairs=1 supers=1 mass=2}" {
		t.Errorf("String = %q", got)
	}
}
