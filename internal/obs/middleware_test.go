package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

func mwRequest(t *testing.T, h http.Handler, header map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/test?x=1", nil)
	for k, v := range header {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	var seenCtxID string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenCtxID = RequestID(r.Context())
		w.WriteHeader(http.StatusNoContent)
	})
	h := Middleware(inner, MiddlewareConfig{Logger: slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))})

	rec := mwRequest(t, h, nil)
	got := rec.Header().Get(RequestIDHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("generated request ID %q, want 16 hex chars", got)
	}
	if seenCtxID != got {
		t.Errorf("context ID %q != echoed header %q", seenCtxID, got)
	}
}

func TestRequestIDPropagated(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Handlers log through the context logger and inherit the ID.
		Logger(r.Context()).Info("inside handler")
		w.Write([]byte("ok"))
	})
	h := Middleware(inner, MiddlewareConfig{Logger: logger})

	rec := mwRequest(t, h, map[string]string{RequestIDHeader: "upstream-id-42"})
	if got := rec.Header().Get(RequestIDHeader); got != "upstream-id-42" {
		t.Errorf("inbound ID not propagated: got %q", got)
	}
	var record map[string]any
	line, _, _ := strings.Cut(logBuf.String(), "\n")
	if err := json.Unmarshal([]byte(line), &record); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, logBuf.String())
	}
	if record["request_id"] != "upstream-id-42" {
		t.Errorf("handler log lost the request ID: %v", record)
	}
	// Oversized inbound IDs are replaced, not trusted.
	rec = mwRequest(t, h, map[string]string{RequestIDHeader: strings.Repeat("x", 200)})
	if got := rec.Header().Get(RequestIDHeader); len(got) > maxInboundRequestID {
		t.Errorf("oversized inbound ID accepted: %q", got)
	}
}

// slowHandler answers after d.
func slowHandler(d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(d)
		w.WriteHeader(http.StatusOK)
	})
}

func TestSlowQueryLogThreshold(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))

	// Below threshold: no slow record.
	h := Middleware(slowHandler(0), MiddlewareConfig{Logger: logger, SlowThreshold: time.Hour})
	mwRequest(t, h, nil)
	if strings.Contains(logBuf.String(), "slow query") {
		t.Errorf("fast request logged as slow:\n%s", logBuf.String())
	}

	// Above (or at) threshold: logged with status and elapsed.
	logBuf.Reset()
	h = Middleware(slowHandler(2*time.Millisecond), MiddlewareConfig{Logger: logger, SlowThreshold: time.Millisecond})
	mwRequest(t, h, nil)
	out := logBuf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "path=/v1/test") || !strings.Contains(out, "status=200") {
		t.Errorf("slow record missing or incomplete:\n%s", out)
	}

	// Threshold zero disables the slow log entirely.
	logBuf.Reset()
	h = Middleware(slowHandler(time.Millisecond), MiddlewareConfig{Logger: logger, SlowThreshold: 0})
	mwRequest(t, h, nil)
	if strings.Contains(logBuf.String(), "slow query") {
		t.Errorf("slow log not disabled at threshold 0:\n%s", logBuf.String())
	}
}

func TestSlowQueryLogSampling(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := Middleware(slowHandler(time.Millisecond), MiddlewareConfig{
		Logger:        logger,
		SlowThreshold: time.Microsecond,
		SlowEvery:     3,
	})
	for i := 0; i < 7; i++ {
		mwRequest(t, h, nil)
	}
	// 7 slow requests sampled 1-in-3 -> records for #1, #4, #7.
	if got := strings.Count(logBuf.String(), "slow query"); got != 3 {
		t.Errorf("sampled slow records = %d, want 3:\n%s", got, logBuf.String())
	}
}

func TestStatusWriterCapturesHandlerStatus(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	})
	mwRequest(t, Middleware(inner, MiddlewareConfig{Logger: logger}), nil)
	if !strings.Contains(logBuf.String(), "status=418") {
		t.Errorf("access record lost the status:\n%s", logBuf.String())
	}
}

func TestLoggerFallsBackToDefault(t *testing.T) {
	ctx := context.Background()
	if Logger(ctx) == nil {
		t.Error("Logger returned nil for a bare context")
	}
	if RequestID(ctx) != "" {
		t.Error("bare context carries a request ID")
	}
}
