package graph

import (
	"sort"
	"strings"
	"sync"
)

// Builder is the mutable graph store the construction pipeline writes
// into. Adjacency lists are kept sorted by Edge.To at all times, which
// turns the edge upsert and EdgeBetween into binary searches and gives
// Freeze a layout it can copy verbatim into the CSR arrays. The zero
// value is not usable; call NewBuilder.
//
// Reads (the Reader methods) are safe for concurrent use with each
// other; mutations (Intern, AddEdge) require external synchronisation
// and must not race with reads.
type Builder struct {
	labels  []string
	byLabel map[string]NodeID
	out     [][]Edge
	in      [][]Edge

	scratch sync.Pool // *bfsScratch, reused across traversals
}

// Store is the historical name of the mutable graph store; kept as an
// alias so construction-side code reads naturally either way.
type Store = Builder

// NewBuilder returns an empty mutable graph store.
func NewBuilder() *Builder {
	return &Builder{byLabel: make(map[string]NodeID)}
}

// NewStore returns an empty graph store. Alias of NewBuilder.
func NewStore() *Builder { return NewBuilder() }

// NewBuilderFrom returns a mutable copy of any Reader — the thaw
// direction of Builder.Freeze, used when edges must be added to an
// already-frozen taxonomy (merging, delta builds). Both implementations
// keep adjacency sorted by Edge.To, so the copied rows are valid Builder
// rows as-is. Labels are copied out of the source: a mapped Frozen's
// Label returns zero-copy views into the mmap arena, which dangle once
// the mapping closes, and the thawed Builder must outlive the source.
func NewBuilderFrom(r Reader) *Builder {
	b := NewBuilder()
	n := r.NumNodes()
	for id := 0; id < n; id++ {
		b.Intern(strings.Clone(r.Label(NodeID(id))))
	}
	for id := 0; id < n; id++ {
		b.out[id] = append([]Edge(nil), r.Children(NodeID(id))...)
		b.in[id] = append([]Edge(nil), r.Parents(NodeID(id))...)
	}
	return b
}

// Intern returns the node for the label, creating it if needed.
func (b *Builder) Intern(label string) NodeID {
	if id, ok := b.byLabel[label]; ok {
		return id
	}
	id := NodeID(len(b.labels))
	b.labels = append(b.labels, label)
	b.byLabel[label] = id
	b.out = append(b.out, nil)
	b.in = append(b.in, nil)
	return id
}

// Clone returns a deep copy of the store.
func (b *Builder) Clone() *Builder { return NewBuilderFrom(b) }

// Lookup returns the node for the label, or NoNode.
func (b *Builder) Lookup(label string) NodeID {
	if id, ok := b.byLabel[label]; ok {
		return id
	}
	return NoNode
}

// Label returns the label of a node.
func (b *Builder) Label(id NodeID) string { return b.labels[id] }

// NumNodes returns the node count.
func (b *Builder) NumNodes() int { return len(b.labels) }

// NumEdges returns the edge count.
func (b *Builder) NumEdges() int {
	n := 0
	for _, es := range b.out {
		n += len(es)
	}
	return n
}

// upsertEdge inserts or accumulates an edge in a To-sorted adjacency
// row: counts add up, a non-zero plausibility overwrites.
func upsertEdge(adj []Edge, to NodeID, count int64, plausibility float64) []Edge {
	i := sort.Search(len(adj), func(k int) bool { return adj[k].To >= to })
	if i < len(adj) && adj[i].To == to {
		adj[i].Count += count
		if plausibility != 0 {
			adj[i].Plausibility = plausibility
		}
		return adj
	}
	adj = append(adj, Edge{})
	copy(adj[i+1:], adj[i:])
	adj[i] = Edge{To: to, Count: count, Plausibility: plausibility}
	return adj
}

// AddEdge inserts or accumulates the edge (from -> to). Counts add up;
// a non-zero plausibility overwrites. Both adjacency directions go
// through the same upsert on every call, so out and in cannot drift
// apart (historically, an existing out-edge with no matching in-edge
// returned early and left the transpose stale).
func (b *Builder) AddEdge(from, to NodeID, count int64, plausibility float64) {
	b.out[from] = upsertEdge(b.out[from], to, count, plausibility)
	b.in[to] = upsertEdge(b.in[to], from, count, plausibility)
}

// EdgeBetween returns the edge from -> to.
func (b *Builder) EdgeBetween(from, to NodeID) (Edge, bool) {
	adj := b.out[from]
	i := sort.Search(len(adj), func(k int) bool { return adj[k].To >= to })
	if i < len(adj) && adj[i].To == to {
		return adj[i], true
	}
	return Edge{}, false
}

// Children returns the out-edges of a node, sorted by Edge.To.
func (b *Builder) Children(id NodeID) []Edge { return b.out[id] }

// Parents returns the in-edges of a node (Edge.To is the parent),
// sorted by Edge.To.
func (b *Builder) Parents(id NodeID) []Edge { return b.in[id] }

// Kind classifies the node: out-edges make a concept, none an instance.
func (b *Builder) Kind(id NodeID) Kind {
	if len(b.out[id]) > 0 {
		return KindConcept
	}
	return KindInstance
}

// Roots returns all nodes without parents, sorted by label.
func (b *Builder) Roots() []NodeID { return rootsOf(b) }

// Concepts returns all concept nodes, sorted by label.
func (b *Builder) Concepts() []NodeID { return conceptsOf(b) }

// Instances returns all instance (leaf) nodes, sorted by label.
func (b *Builder) Instances() []NodeID { return instancesOf(b) }

// bfsScratch is the reusable traversal state for Builder BFS. The
// visited slice is keyed by NodeID and stamped with an epoch instead of
// being cleared between runs; the queue doubles as the visit-order
// record. Pooled so concurrent readers each get their own.
type bfsScratch struct {
	visited []uint32
	epoch   uint32
	queue   []NodeID
}

func (sc *bfsScratch) reset(n int) {
	if len(sc.visited) < n {
		sc.visited = make([]uint32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // epoch wrapped: stale stamps could collide, clear
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 1
	}
	sc.queue = sc.queue[:0]
}

func (sc *bfsScratch) seen(id NodeID) bool { return sc.visited[id] == sc.epoch }
func (sc *bfsScratch) mark(id NodeID)      { sc.visited[id] = sc.epoch }

func (b *Builder) getScratch() *bfsScratch {
	if sc, ok := b.scratch.Get().(*bfsScratch); ok {
		return sc
	}
	return &bfsScratch{}
}

// closure runs a BFS from id over the given adjacency and returns the
// visited nodes excluding id, in visit order.
func (b *Builder) closure(id NodeID, adj [][]Edge) []NodeID {
	sc := b.getScratch()
	sc.reset(len(b.labels))
	sc.mark(id)
	sc.queue = append(sc.queue, id)
	for head := 0; head < len(sc.queue); head++ {
		for _, e := range adj[sc.queue[head]] {
			if !sc.seen(e.To) {
				sc.mark(e.To)
				sc.queue = append(sc.queue, e.To)
			}
		}
	}
	var out []NodeID
	if len(sc.queue) > 1 {
		out = make([]NodeID, len(sc.queue)-1)
		copy(out, sc.queue[1:])
	}
	b.scratch.Put(sc)
	return out
}

// Descendants returns the descendant closure of id (excluding id),
// deduplicated, in BFS order.
func (b *Builder) Descendants(id NodeID) []NodeID { return b.closure(id, b.out) }

// Ancestors returns the ancestor closure of id (excluding id) in BFS
// order.
func (b *Builder) Ancestors(id NodeID) []NodeID { return b.closure(id, b.in) }

// HasPath reports whether to is reachable from from along out-edges.
func (b *Builder) HasPath(from, to NodeID) bool {
	if from == to {
		return true
	}
	sc := b.getScratch()
	sc.reset(len(b.labels))
	sc.mark(from)
	sc.queue = append(sc.queue, from)
	found := false
	for head := 0; head < len(sc.queue) && !found; head++ {
		for _, e := range b.out[sc.queue[head]] {
			if e.To == to {
				found = true
				break
			}
			if !sc.seen(e.To) {
				sc.mark(e.To)
				sc.queue = append(sc.queue, e.To)
			}
		}
	}
	b.scratch.Put(sc)
	return found
}

// TopoLevels partitions the nodes into the levels of Algorithm 3:
// L1 holds nodes with no parents; L(k) holds nodes all of whose parents
// lie in L1..L(k-1). An error is returned when the graph has a cycle.
func (b *Builder) TopoLevels() ([][]NodeID, error) { return topoLevels(b) }

// Level returns, for every node, the length of the longest path from the
// node down to a leaf — the paper's definition of a concept's level
// (Table 4): instances have level 0, their direct concepts level >= 1.
func (b *Builder) Level() ([]int, error) {
	levels, err := b.TopoLevels()
	if err != nil {
		return nil, err
	}
	return levelDepth(b, levels), nil
}
