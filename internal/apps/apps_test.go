package apps

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

// The apps fixture is expensive (full pipeline); build it once.
var (
	fixOnce sync.Once
	fixPB   *core.Probase
	fixW    *corpus.World
	fixC    *corpus.Corpus
)

func fixture(t testing.TB) (*core.Probase, *corpus.World, *corpus.Corpus) {
	t.Helper()
	fixOnce.Do(func() {
		fixW = corpus.DefaultWorld(1)
		fixC = corpus.NewGenerator(fixW, corpus.GenConfig{Sentences: 14000, Seed: 11}).Generate()
		inputs := make([]extraction.Input, len(fixC.Sentences))
		for i, s := range fixC.Sentences {
			inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
		}
		oracle := func(x, y string) (bool, bool) {
			if !fixW.KnownTerm(x) || !fixW.KnownTerm(y) {
				return false, false
			}
			return fixW.IsTrueIsA(x, y), true
		}
		pb, err := core.Build(inputs, core.Config{Oracle: oracle})
		if err != nil {
			panic(err)
		}
		fixPB = pb
	})
	return fixPB, fixW, fixC
}

func TestPageIndex(t *testing.T) {
	_, _, c := fixture(t)
	idx := NewPageIndex(c.Sentences)
	if idx.NumPages() < 100 {
		t.Fatalf("pages = %d", idx.NumPages())
	}
	res := idx.KeywordSearch("companies such as", 10)
	if len(res) == 0 {
		t.Fatal("keyword search found nothing")
	}
	if !idx.ContainsPhrase(res[0], "companies") {
		t.Error("top hit does not contain query word")
	}
	if got := idx.KeywordSearch("", 10); got != nil {
		t.Errorf("empty query returned %v", got)
	}
}

func TestSemanticSearchBeatsKeyword(t *testing.T) {
	pb, w, c := fixture(t)
	idx := NewPageIndex(c.Sentences)
	// Fine-grained concepts as in the paper's example queries.
	keys := []string{"tropical country", "it company", "domestic animal", "european city", "bric country"}
	rep := EvaluateSearch(pb, idx, w, keys, 10)
	if rep.Queries != len(keys) {
		t.Fatalf("queries = %d", rep.Queries)
	}
	t.Logf("keyword=%.2f semantic=%.2f", rep.KeywordRelevance, rep.SemanticRelevance)
	if rep.SemanticRelevance <= rep.KeywordRelevance {
		t.Errorf("semantic %.2f <= keyword %.2f", rep.SemanticRelevance, rep.KeywordRelevance)
	}
	if rep.SemanticRelevance < 0.6 {
		t.Errorf("semantic relevance %.2f, want >= 0.6 (paper: ~0.8)", rep.SemanticRelevance)
	}
}

func TestKMeansAndPurity(t *testing.T) {
	vectors := []Vector{
		{"a": 1, "b": 1}, {"a": 1, "b": 0.8}, {"a": 0.9},
		{"x": 1, "y": 1}, {"x": 0.8, "y": 1}, {"y": 0.9},
	}
	labels := []int{0, 0, 0, 1, 1, 1}
	assign := KMeans(vectors, 2, 20, 1)
	if p := Purity(assign, labels); p != 1 {
		t.Errorf("purity = %v, want 1 on separable data", p)
	}
	if got := KMeans(nil, 2, 5, 1); got != nil {
		t.Error("empty kmeans returned assignments")
	}
	if got := KMeans(vectors, 10, 5, 1); len(got) != len(vectors) {
		t.Error("k > n failed")
	}
	if p := Purity(nil, nil); p != 0 {
		t.Error("empty purity wrong")
	}
}

func TestShortTextConceptClusteringWins(t *testing.T) {
	pb, w, _ := fixture(t)
	topics := []string{"company", "city", "animal", "disease"}
	rep := EvaluateShortText(pb, w, topics, 30, 5)
	t.Logf("bow=%.2f concept=%.2f over %d tweets", rep.BoWPurity, rep.ConceptPurity, rep.Tweets)
	if rep.Tweets == 0 {
		t.Fatal("no tweets")
	}
	if rep.ConceptPurity <= rep.BoWPurity {
		t.Errorf("concept purity %.2f <= bow purity %.2f", rep.ConceptPurity, rep.BoWPurity)
	}
	if rep.ConceptPurity < 0.6 {
		t.Errorf("concept purity %.2f too low", rep.ConceptPurity)
	}
}

func TestWebTables(t *testing.T) {
	pb, w, _ := fixture(t)
	rep := EvaluateTables(pb, w, 120, 9)
	t.Logf("tables=%d inferred=%d correct=%d precision=%.2f",
		rep.Tables, rep.Inferred, rep.Correct, rep.Precision())
	if rep.Tables != 120 {
		t.Fatalf("tables = %d", rep.Tables)
	}
	if rep.Inferred < rep.Tables/2 {
		t.Errorf("inferred only %d/%d", rep.Inferred, rep.Tables)
	}
	if rep.Precision() < 0.7 {
		t.Errorf("precision = %.2f, want >= 0.7 (paper: 0.96)", rep.Precision())
	}
}

func TestParseAttributeMentions(t *testing.T) {
	sents := []corpus.Sentence{
		{Text: "The capital of China is widely discussed."},
		{Text: "Everyone knows IBM's revenue quite well."},
		{Text: "companies such as IBM and Nokia."},
		{Text: "The malformed of"},
	}
	ms := ParseAttributeMentions(sents)
	if len(ms) != 2 {
		t.Fatalf("mentions = %v", ms)
	}
	if ms[0].Instance != "China" || ms[0].Attribute != "capital" {
		t.Errorf("mention 0 = %+v", ms[0])
	}
	if ms[1].Instance != "IBM" || ms[1].Attribute != "revenue" {
		t.Errorf("mention 1 = %+v", ms[1])
	}
}

func TestHarvestAttributes(t *testing.T) {
	ms := []AttributeMention{
		{"IBM", "revenue"}, {"IBM", "revenue"}, {"IBM", "CEO"},
		{"Nokia", "revenue"}, {"Paris", "population"},
	}
	attrs := HarvestAttributes(ms, []string{"IBM", "Nokia"}, 2)
	if len(attrs) != 2 || attrs[0] != "revenue" {
		t.Errorf("attrs = %v", attrs)
	}
	if got := HarvestAttributes(ms, []string{"Unknown"}, 5); len(got) != 0 {
		t.Errorf("unknown seeds harvested %v", got)
	}
}

func TestAttributeSeedingComparison(t *testing.T) {
	pb, w, c := fixture(t)
	keys := []string{"company", "city", "country", "disease", "book", "university", "river", "festival"}
	rep := EvaluateAttributes(pb, w, c.Sentences, keys, 5, 5)
	t.Logf("pasca=%.3f probase=%.3f over %d concepts", rep.PascaPrecision, rep.ProbasePrecision, rep.Concepts)
	if rep.Concepts == 0 {
		t.Fatal("no concepts evaluated")
	}
	if rep.ProbasePrecision < 0.5 {
		t.Errorf("probase-seeded precision %.2f too low", rep.ProbasePrecision)
	}
	// Figure 12's claim is comparability (88.3% vs 86.2%), with the
	// manual seeding replaced by an automatic one.
	if rep.ProbasePrecision < rep.PascaPrecision-0.15 {
		t.Errorf("probase seeding %.2f clearly below pasca %.2f", rep.ProbasePrecision, rep.PascaPrecision)
	}
}

func TestGenerateTweetsShape(t *testing.T) {
	_, w, _ := fixture(t)
	tweets := GenerateTweets(w, []string{"company", "city"}, 10, 3)
	if len(tweets) != 20 {
		t.Fatalf("tweets = %d", len(tweets))
	}
	for _, tw := range tweets {
		if len(tw.Terms) != 2 || tw.Text == "" {
			t.Fatalf("bad tweet %+v", tw)
		}
		if tw.Terms[0] == tw.Terms[1] {
			t.Fatalf("duplicate terms in %+v", tw)
		}
	}
}

func TestBoWVector(t *testing.T) {
	v := BoWVector("The quick companies, such as IBM!")
	if v["the"] != 0 || v["as"] != 0 {
		t.Error("stop words not removed")
	}
	if v["ibm"] != 1 || v["companies"] != 1 {
		t.Errorf("vector = %v", v)
	}
}
