package prob

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/kb"
)

func nbBytes(t *testing.T, nb *NaiveBayes) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := nb.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestUntrainReversesTrain: training a batch and untraining part of it
// must leave the model a from-scratch training of the remainder would
// produce, bit for bit — including the smoothing denominators, which
// depend on the live distinct-value inventory.
func TestUntrainReversesTrain(t *testing.T) {
	keep := [][]Feature{
		{{Name: "pattern", Value: 1}, {Name: "pos", Value: 1}},
		{{Name: "pattern", Value: 2}, {Name: "pos", Value: 3}},
	}
	drop := [][]Feature{
		{{Name: "pattern", Value: 7}, {Name: "pos", Value: 2}},
		{{Name: "pagerank", Value: 5}},
	}
	full := NewNaiveBayes()
	for _, f := range keep {
		full.Train(f, true)
	}
	for i, f := range drop {
		full.Train(f, i%2 == 0)
	}
	for i, f := range drop {
		full.Untrain(f, i%2 == 0)
	}
	want := NewNaiveBayes()
	for _, f := range keep {
		want.Train(f, true)
	}
	if !bytes.Equal(nbBytes(t, full), nbBytes(t, want)) {
		t.Fatal("untrain left residue: models differ")
	}
	// The dropped feature value 7 must no longer shrink the smoothing
	// denominator of "pattern".
	if got, wantP := full.Prob(keep[0]), want.Prob(keep[0]); got != wantP {
		t.Fatalf("Prob after untrain = %v, want %v", got, wantP)
	}
}

func TestUntrainUnseenPanics(t *testing.T) {
	nb := NewNaiveBayes()
	nb.Train([]Feature{{Name: "pattern", Value: 1}}, true)
	defer func() {
		if recover() == nil {
			t.Fatal("Untrain of unseen example did not panic")
		}
	}()
	nb.Untrain([]Feature{{Name: "pattern", Value: 9}}, true)
}

func TestNaiveBayesEncodeRoundTrip(t *testing.T) {
	nb := NewNaiveBayes()
	nb.Train([]Feature{{Name: "pattern", Value: 1}, {Name: "listlen", Value: 3}}, true)
	nb.Train([]Feature{{Name: "pattern", Value: 4}}, false)
	data := nbBytes(t, nb)
	got, err := DecodeNaiveBayes(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, nb) {
		t.Fatal("round trip mismatch")
	}
	if !bytes.Equal(nbBytes(t, got), data) {
		t.Fatal("re-encode differs")
	}
	if _, err := DecodeNaiveBayes(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Fatal("truncated model decoded without error")
	}
}

func TestNaiveBayesClone(t *testing.T) {
	nb := NewNaiveBayes()
	nb.Train([]Feature{{Name: "pattern", Value: 1}}, true)
	c := nb.Clone()
	c.Train([]Feature{{Name: "pattern", Value: 2}}, false)
	if len(nb.counts["pattern"]) != 1 {
		t.Fatal("clone shares count tables with original")
	}
}

// TestTrainDeltaMatchesFullTrain: advancing a base model over an evolved
// Γ must equal training from scratch on the evolved Γ — with changed
// evidence lists, brand-new pairs, and a super whose frequency crosses a
// log-bucket edge (dirtying even its untouched pairs).
func TestTrainDeltaMatchesFullTrain(t *testing.T) {
	base := trainingStore()
	next := base.Clone()
	// New pair under an existing super.
	for i := 0; i < 4; i++ {
		next.Add("animal", "dog", 1)
		next.AddEvidence("animal", "dog", kb.Evidence{Pattern: 1, PageScore: 0.6, ListLen: 2, Pos: 2, Seq: int64(1000 + i)})
	}
	// Extra evidence on an existing pair; pushes animal's super total
	// (30 -> 42) across the 32 log-bucket edge, so ("animal","cat")'s
	// features drift even where its own evidence list kept its prefix.
	for i := 0; i < 8; i++ {
		next.Add("animal", "cat", 1)
		next.AddEvidence("animal", "cat", kb.Evidence{Pattern: 2, PageScore: 0.4, ListLen: 4, Pos: 3, Seq: int64(2000 + i)})
	}
	// A brand-new super-concept.
	for i := 0; i < 3; i++ {
		next.Add("fruit", "apple", 1)
		next.AddEvidence("fruit", "apple", kb.Evidence{Pattern: 1, PageScore: 0.9, ListLen: 2, Pos: 1, Seq: int64(3000 + i)})
	}
	oracle := func(x, y string) (bool, bool) {
		if x == "fruit" || y == "dog" {
			return x == "fruit" || x == "animal", true
		}
		return trainingOracle(x, y)
	}

	prev := Train(base, oracle)
	deltaModel, stats := TrainDelta(prev.NB(), base, next, oracle)
	fullModel := Train(next, oracle)
	if !bytes.Equal(nbBytes(t, deltaModel.NB()), nbBytes(t, fullModel.NB())) {
		t.Fatal("delta-trained model differs from full retrain")
	}
	if stats.DirtyPairs == 0 || stats.Retrained == 0 {
		t.Fatalf("implausible delta stats: %+v", stats)
	}
	// Plausibility must agree everywhere, including untouched pairs.
	for _, p := range [][2]string{{"animal", "cat"}, {"animal", "dog"}, {"company", "IBM"}, {"fruit", "apple"}} {
		if got, want := deltaModel.Plausibility(p[0], p[1]), fullModel.Plausibility(p[0], p[1]); got != want {
			t.Errorf("Plausibility(%s,%s) = %v, want %v", p[0], p[1], got, want)
		}
	}
}

func deltaGraphs() (*graph.Builder, *graph.Builder) {
	build := func(withDelta bool) *graph.Builder {
		g := graph.NewStore()
		id := func(l string) graph.NodeID { return g.Intern(l) }
		g.AddEdge(id("thing"), id("company"), 30, 0.9)
		g.AddEdge(id("thing"), id("animal"), 25, 0.9)
		g.AddEdge(id("company"), id("it company"), 20, 0.95)
		g.AddEdge(id("company"), id("IBM"), 50, 0.99)
		g.AddEdge(id("it company"), id("Microsoft"), 30, 0.99)
		g.AddEdge(id("animal"), id("cat"), 40, 0.98)
		g.AddEdge(id("animal"), id("dog"), 35, 0.97)
		if withDelta {
			// New edge under "company" and a brand-new concept branch.
			g.AddEdge(id("it company"), id("Google"), 10, 0.9)
			g.AddEdge(id("thing"), id("plant"), 5, 0.8)
			g.AddEdge(id("plant"), id("tree"), 12, 0.95)
			// Changed plausibility on an existing edge.
			g.AddEdge(id("animal"), id("cat"), 0, 0.99)
		}
		return g
	}
	return build(false), build(true)
}

// TestIncrementalAlgorithm3MatchesFull: the incremental DP seeded with
// the changed-in-edge nodes must reproduce the full DP's reach table
// exactly, while recomputing only the dirty closure.
func TestIncrementalAlgorithm3MatchesFull(t *testing.T) {
	g1, g2 := deltaGraphs()
	prev, err := New(g1, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seeds := DirtySeeds(g1, g2)
	if len(seeds) == 0 {
		t.Fatal("no dirty seeds found between differing graphs")
	}
	// "IBM" has unchanged in-edges and must not be a seed.
	for _, s := range seeds {
		if g2.Label(s) == "IBM" {
			t.Fatal("clean node reported dirty")
		}
	}
	full, err := New(g2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := New(g2, Options{Workers: 1, Prev: prev, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc.reach, full.reach) {
		t.Fatalf("incremental reach table differs: %d vs %d entries", len(inc.reach), len(full.reach))
	}
	// Query-level agreement.
	for _, label := range []string{"thing", "company", "it company", "animal", "plant"} {
		x := g2.Lookup(label)
		if !reflect.DeepEqual(inc.InstancesOf(x), full.InstancesOf(x)) {
			t.Errorf("InstancesOf(%s) diverges", label)
		}
	}
}
