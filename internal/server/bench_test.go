package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServe drives the handler directly (no network hop), the same way
// the endpoint tests do.
func benchServe(b *testing.B, s *Server, path string) int {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code
}

// BenchmarkServeCold measures the cache-miss path: every iteration asks
// a distinct query (the key varies with k), so the engine computes and
// the JSON is marshalled fresh each time.
func BenchmarkServeCold(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping serve benchmark in -short mode")
	}
	s := New(testProbase(b), Config{MaxK: 1 << 30})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A unique k per iteration defeats the cache by construction.
		path := fmt.Sprintf("/v1/instances?concept=companies&k=%d", i+1)
		if code := benchServe(b, s, path); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServeHot measures the cache-hit path: one warmed query,
// repeated. The gap to BenchmarkServeCold is what the sharded LRU buys.
func BenchmarkServeHot(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping serve benchmark in -short mode")
	}
	s := New(testProbase(b), Config{})
	const path = "/v1/instances?concept=companies&k=10"
	if code := benchServe(b, s, path); code != http.StatusOK {
		b.Fatalf("warmup status %d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchServe(b, s, path); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServeHotParallel stresses the sharded cache from all cores —
// the concurrency the shard-per-mutex design exists for.
func BenchmarkServeHotParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping serve benchmark in -short mode")
	}
	s := New(testProbase(b), Config{})
	paths := []string{
		"/v1/instances?concept=companies&k=10",
		"/v1/instances?concept=animals&k=10",
		"/v1/concepts?term=IBM&k=10",
		"/v1/plausibility?x=companies&y=IBM",
	}
	for _, p := range paths {
		if code := benchServe(b, s, p); code != http.StatusOK {
			b.Fatalf("warmup status %d", code)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			path := paths[i%len(paths)]
			i++
			if code := benchServe(b, s, path); code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
		}
	})
}
