// Command corpusgen generates a synthetic web corpus (the 1.68-billion-
// page substitute) and writes it in the tab-separated format consumed by
// probase-build.
//
// Usage:
//
//	corpusgen -sentences 50000 -scale 1 -seed 11 -o corpus.tsv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/corpus"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sentences = fs.Int("sentences", 50000, "number of sentences to generate")
		scale     = fs.Float64("scale", 1, "world expansion scale")
		seed      = fs.Int64("seed", 11, "PRNG seed")
		out       = fs.String("o", "corpus.tsv", "output file ('-' for stdout)")
		version   = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(stdout, "corpusgen")
		return nil
	}

	w := corpus.DefaultWorld(*scale)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: *sentences, Seed: *seed}).Generate()

	var dst io.Writer = stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if _, err := c.WriteTo(dst); err != nil {
		return err
	}
	st := w.Stats()
	fmt.Fprintf(stderr, "corpusgen: %d sentences over world with %d concepts, %d instances\n",
		len(c.Sentences), st.Concepts, st.Instances)
	return nil
}
