package kb

import (
	"bytes"
	"reflect"
	"testing"
)

func TestAddEvidenceSeqOrdering(t *testing.T) {
	s := NewStore(0)
	s.AddEvidence("x", "y", Evidence{Pos: 3, Seq: 30})
	s.AddEvidence("x", "y", Evidence{Pos: 1, Seq: 10})
	s.AddEvidence("x", "y", Evidence{Pos: 2, Seq: 20})
	evs := s.Evidence("x", "y")
	if len(evs) != 3 || evs[0].Seq != 10 || evs[1].Seq != 20 || evs[2].Seq != 30 {
		t.Fatalf("evidence not seq-sorted: %+v", evs)
	}
}

// The kept set under the cap must be the lowest-seq records regardless
// of arrival order — that is what makes a resumed run's evidence lists
// identical to a from-scratch run's.
func TestAddEvidenceCapKeepsLowestSeqs(t *testing.T) {
	arrivals := [][]int64{
		{10, 20, 30, 40},
		{40, 30, 20, 10},
		{30, 10, 40, 20},
	}
	var want []Evidence
	for i, order := range arrivals {
		s := NewStore(3)
		for _, seq := range order {
			s.AddEvidence("x", "y", Evidence{Seq: seq})
		}
		evs := s.Evidence("x", "y")
		if len(evs) != 3 {
			t.Fatalf("order %v: got %d records, want 3", order, len(evs))
		}
		if evs[0].Seq != 10 || evs[1].Seq != 20 || evs[2].Seq != 30 {
			t.Fatalf("order %v: kept %+v, want seqs 10,20,30", order, evs)
		}
		if i == 0 {
			want = evs
		} else if !reflect.DeepEqual(evs, want) {
			t.Fatalf("order %v: kept set differs from first arrival order", order)
		}
	}
}

// Zero-seq records must behave exactly like the legacy path: append in
// arrival order, reject new records once the cap is reached.
func TestAddEvidenceLegacyZeroSeq(t *testing.T) {
	s := NewStore(2)
	s.AddEvidence("x", "y", Evidence{Pos: 1})
	s.AddEvidence("x", "y", Evidence{Pos: 2})
	s.AddEvidence("x", "y", Evidence{Pos: 3})
	evs := s.Evidence("x", "y")
	if len(evs) != 2 || evs[0].Pos != 1 || evs[1].Pos != 2 {
		t.Fatalf("legacy cap changed: %+v", evs)
	}
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	s := NewStore(4)
	s.Add("animal", "cat", 3)
	s.Add("animal", "dog", 1)
	s.AddCo("animal", "cat", "dog", 2)
	s.AddEvidence("animal", "cat", Evidence{Pattern: 1, PageScore: 0.5, Seq: 7})
	c := s.Clone()

	if c.Count("animal", "cat") != 3 || c.SubMass("dog") != 1 ||
		c.CoCount("animal", "cat", "dog") != 2 {
		t.Fatalf("clone lost counts")
	}
	if !reflect.DeepEqual(c.Evidence("animal", "cat"), s.Evidence("animal", "cat")) {
		t.Fatalf("clone lost evidence")
	}
	// Mutating the clone must not leak into the original.
	c.Add("animal", "cat", 5)
	c.AddEvidence("animal", "cat", Evidence{Seq: 9})
	if s.Count("animal", "cat") != 3 || len(s.Evidence("animal", "cat")) != 1 {
		t.Fatalf("clone mutation leaked into original")
	}
}

func TestDiffEvidence(t *testing.T) {
	base := NewStore(0)
	base.Add("animal", "cat", 2)
	base.AddEvidence("animal", "cat", Evidence{Seq: 1})
	next := base.Clone()
	next.Add("animal", "dog", 1)
	next.AddEvidence("animal", "dog", Evidence{Seq: 5})
	next.Add("plant", "tree", 1)
	next.AddEvidence("plant", "tree", Evidence{Seq: 6})

	d := DiffEvidence(base, next)
	wantPairs := []Pair{{X: "animal", Y: "dog"}, {X: "plant", Y: "tree"}}
	if !reflect.DeepEqual(d.ChangedPairs, wantPairs) {
		t.Fatalf("changed pairs = %v, want %v", d.ChangedPairs, wantPairs)
	}
	if got := d.SuperTotals["animal"]; got != [2]int64{2, 3} {
		t.Fatalf("animal super totals = %v", got)
	}
	if _, ok := d.SuperTotals["plant"]; !ok {
		t.Fatalf("new super missing from totals diff")
	}
	if got := d.SubTotals["dog"]; got != [2]int64{0, 1} {
		t.Fatalf("dog sub totals = %v", got)
	}
	if _, ok := d.SubTotals["cat"]; ok {
		t.Fatalf("unchanged sub reported dirty")
	}
}

func TestPairsOfSuperAndSub(t *testing.T) {
	s := NewStore(0)
	s.Add("animal", "dog", 1)
	s.Add("animal", "cat", 1)
	s.Add("pet", "cat", 1)
	if got := s.PairsOfSuper("animal"); !reflect.DeepEqual(got,
		[]Pair{{X: "animal", Y: "cat"}, {X: "animal", Y: "dog"}}) {
		t.Fatalf("PairsOfSuper = %v", got)
	}
	if got := s.PairsOfSub("cat"); !reflect.DeepEqual(got,
		[]Pair{{X: "animal", Y: "cat"}, {X: "pet", Y: "cat"}}) {
		t.Fatalf("PairsOfSub = %v", got)
	}
}

func TestBinaryRoundTripPreservesSeq(t *testing.T) {
	s := NewStore(8)
	s.Add("animal", "cat", 2)
	s.AddEvidence("animal", "cat", Evidence{Pattern: 1, PageScore: 0.25, ListLen: 3, Pos: 2, Seq: 42})
	s.AddEvidence("animal", "cat", Evidence{Pattern: 2, PageScore: 0.75, ListLen: 1, Pos: 1, Negative: true, Seq: 17})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := got.Evidence("animal", "cat")
	if len(evs) != 2 || evs[0].Seq != 17 || evs[1].Seq != 42 || !evs[0].Negative {
		t.Fatalf("round trip lost seqs: %+v", evs)
	}
}
