//go:build race

package graph

// raceEnabled reports whether the binary was built with the race
// detector; its instrumentation allocates, which breaks
// testing.AllocsPerRun assertions.
const raceEnabled = true
