package server

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// expositionLine matches one Prometheus text-format sample:
// name{labels} value. Label values are quoted strings with escapes.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (?:[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$`)

func scrapeMetrics(t *testing.T, s *Server) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	return rec.Body.String()
}

// TestMetricsExpositionParses validates every line of /metrics against
// the text exposition grammar and checks that traffic is reflected in
// the right families.
func TestMetricsExpositionParses(t *testing.T) {
	s := newTestServer(t)
	get(t, s, "/v1/instances?concept=companies&k=3") // miss
	get(t, s, "/v1/instances?concept=companies&k=3") // hit
	get(t, s, "/v1/instances")                       // 400

	body := scrapeMetrics(t, s)
	values := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("unexpected comment line: %q", line)
			}
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
			continue
		}
		key, raw, _ := strings.Cut(line, " ")
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
		values[key] = v
	}

	checks := map[string]float64{
		`probase_http_requests_total{endpoint="instances"}`:                            3,
		`probase_http_errors_total{endpoint="instances"}`:                              1,
		`probase_cache_misses_total{endpoint="instances"}`:                             1,
		`probase_cache_hits_total{endpoint="instances"}`:                               1,
		`probase_http_request_duration_seconds_count{endpoint="instances"}`:            3,
		`probase_http_request_duration_seconds_bucket{endpoint="instances",le="+Inf"}`: 3,
	}
	for key, want := range checks {
		if got, ok := values[key]; !ok || got < want {
			t.Errorf("%s = %v, want >= %v (present %v)", key, got, want, ok)
		}
	}
	// The 10s bucket the old expvar histogram was missing.
	if _, ok := values[`probase_http_request_duration_seconds_bucket{endpoint="instances",le="10"}`]; !ok {
		t.Error("latency histogram missing the le=\"10\" bucket")
	}
	if v, ok := values["probase_snapshot_nodes"]; !ok || v <= 0 {
		t.Errorf("probase_snapshot_nodes = %v, want > 0", v)
	}
	if v, ok := values["probase_process_goroutines"]; !ok || v <= 0 {
		t.Errorf("probase_process_goroutines = %v, want > 0", v)
	}
	// Sum is in seconds: three sub-second requests cannot add to >10.
	if v := values[`probase_http_request_duration_seconds_sum{endpoint="instances"}`]; v <= 0 || v > 10 {
		t.Errorf("latency sum = %v, want (0, 10] seconds", v)
	}
	// Per-shard cache occupancy totals the cache length.
	var shardTotal float64
	for key, v := range values {
		if strings.HasPrefix(key, "probase_cache_shard_entries{") {
			shardTotal += v
		}
	}
	if int(shardTotal) != s.cache.Len() {
		t.Errorf("shard gauges total %v, cache holds %d", shardTotal, s.cache.Len())
	}
}

// TestMetricsGolden locks the structure of the exposition — the exact
// set of families, label sets, and their order — with values masked
// (latencies and process stats are nondeterministic).
func TestMetricsGolden(t *testing.T) {
	s := newTestServer(t)
	get(t, s, "/v1/healthz")
	body := scrapeMetrics(t, s)

	var masked []string
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			masked = append(masked, line)
			continue
		}
		key, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("sample line without value: %q", line)
		}
		masked = append(masked, key+" V")
	}
	got := []byte(strings.Join(masked, "\n") + "\n")

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("masked /metrics drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
