package hearst

import (
	"reflect"
	"testing"
)

func TestParsePartOf(t *testing.T) {
	po, ok := ParsePartOf("trees are comprised of branches, leaves and roots.")
	if !ok {
		t.Fatal("no match")
	}
	if po.Whole != "trees" {
		t.Errorf("whole = %q", po.Whole)
	}
	if !reflect.DeepEqual(po.Parts, []string{"branches", "leaves", "roots"}) {
		t.Errorf("parts = %v", po.Parts)
	}
}

func TestParsePartOfVariants(t *testing.T) {
	for _, s := range []string{
		"companies consist of departments and subsidiaries.",
		"a country is made up of provinces and regions.",
		"the engine is comprised of pistons, valves",
	} {
		if _, ok := ParsePartOf(s); !ok {
			t.Errorf("no match for %q", s)
		}
	}
}

func TestParsePartOfNoMatch(t *testing.T) {
	for _, s := range []string{
		"animals such as cats",
		"trees are green",
		"",
		"are comprised of things", // no whole NP
	} {
		if _, ok := ParsePartOf(s); ok {
			t.Errorf("false match for %q", s)
		}
	}
}

func TestPartOfDoesNotShadowIsA(t *testing.T) {
	// A sentence with both patterns is rare; isA parsing still works on
	// ordinary pattern sentences after the part-of check.
	if _, ok := ParsePartOf("animals such as cats and dogs"); ok {
		t.Error("isA sentence matched part-of")
	}
}
