package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// benchGraph builds a layered DAG: 50 roots -> 500 mid concepts -> 5000
// leaves, roughly the shape of a built taxonomy.
func benchGraph() *Store {
	rng := rand.New(rand.NewSource(1))
	s := NewStore()
	var roots, mids, leaves []NodeID
	for i := 0; i < 50; i++ {
		roots = append(roots, s.Intern(fmt.Sprintf("root%d", i)))
	}
	for i := 0; i < 500; i++ {
		mids = append(mids, s.Intern(fmt.Sprintf("mid%d", i)))
	}
	for i := 0; i < 5000; i++ {
		leaves = append(leaves, s.Intern(fmt.Sprintf("leaf%d", i)))
	}
	for _, m := range mids {
		s.AddEdge(roots[rng.Intn(len(roots))], m, int64(rng.Intn(20)+1), rng.Float64())
	}
	for _, l := range leaves {
		s.AddEdge(mids[rng.Intn(len(mids))], l, int64(rng.Intn(20)+1), rng.Float64())
		if rng.Intn(4) == 0 {
			s.AddEdge(roots[rng.Intn(len(roots))], l, 1, rng.Float64())
		}
	}
	return s
}

func BenchmarkDescendants(b *testing.B) {
	s := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Descendants(NodeID(i % 50))
	}
}

func BenchmarkTopoLevels(b *testing.B) {
	s := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopoLevels(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSave(b *testing.B) {
	s := benchGraph()
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := s.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkLoad(b *testing.B) {
	s := benchGraph()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
