package core

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/extraction"
	"repro/internal/prob"
)

// deltaCorpus returns a seeded synthetic corpus plus the world-backed
// training oracle — the same fixture shape buildFixture uses, but with
// the raw inputs exposed so tests can split them.
func deltaCorpus(t testing.TB, sentences int) ([]extraction.Input, prob.Oracle) {
	t.Helper()
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: sentences, Seed: 11}).Generate()
	inputs := make([]extraction.Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	oracle := func(x, y string) (bool, bool) {
		if !w.KnownTerm(x) || !w.KnownTerm(y) {
			return false, false
		}
		return w.IsTrueIsA(x, y), true
	}
	return inputs, oracle
}

// snapshot returns the default-version snapshot bytes — the fingerprint
// probase-inspect hashes.
func snapshot(t testing.TB, pb *Probase) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// probeQueries exercises all six public query endpoints over a fixed
// probe set and returns the answers in one comparable value.
func probeQueries(pb *Probase) map[string]any {
	concepts := []string{"companies", "countries", "animals", "fruits", "plants"}
	terms := []string{"IBM", "cat", "china", "apple", "microsoft"}
	out := make(map[string]any)
	for _, x := range concepts {
		out["instances:"+x] = pb.InstancesOf(x, 10)
		out["senses:"+x] = pb.SensesOf(x)
		for _, s := range pb.SensesOf(x) {
			out["sense-instances:"+s] = pb.InstancesOfSense(s, 10)
		}
		for _, y := range terms {
			out["plausibility:"+x+":"+y] = pb.Plausibility(x, y)
		}
	}
	for _, y := range terms {
		out["concepts:"+y] = pb.ConceptsOf(y, 10)
	}
	if ranked, ok := pb.Conceptualize([]string{"IBM", "microsoft"}, 10); ok {
		out["conceptualize:ibm+microsoft"] = ranked
	}
	if ranked, ok := pb.Conceptualize(terms, 10); ok {
		out["conceptualize:all"] = ranked
	}
	return out
}

// TestDeltaBuildMatchesFullBuild is the end-to-end equivalence property:
// split the corpus at random points, Build the prefix, DeltaBuild the
// suffix, and the result must match the from-scratch Build over the
// whole corpus — snapshot bytes (the fingerprint) and every query
// endpoint's answers.
func TestDeltaBuildMatchesFullBuild(t *testing.T) {
	const n = 6000
	inputs, oracle := deltaCorpus(t, n)
	cfg := Config{Oracle: oracle}
	full, err := Build(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSnap := snapshot(t, full)
	wantAnswers := probeQueries(full)

	rng := rand.New(rand.NewSource(7))
	splits := []int{1024, n - 60} // a chunk boundary and a tiny 1% delta
	for i := 0; i < 3; i++ {
		splits = append(splits, 1+rng.Intn(n-1))
	}
	for _, split := range splits {
		base, err := Build(inputs[:split], cfg)
		if err != nil {
			t.Fatalf("split %d: base build: %v", split, err)
		}
		delta, err := DeltaBuild(base, inputs[split:], cfg)
		if err != nil {
			t.Fatalf("split %d: delta build: %v", split, err)
		}
		if !bytes.Equal(snapshot(t, delta), wantSnap) {
			t.Errorf("split %d: delta snapshot differs from full build", split)
			continue
		}
		if got := probeQueries(delta); !reflect.DeepEqual(got, wantAnswers) {
			t.Errorf("split %d: query answers differ from full build", split)
		}
		if delta.State == nil || delta.State.Checkpoint == nil {
			t.Errorf("split %d: delta build lost its own build state", split)
		}
		if delta.Info.Delta.FullBuild {
			t.Errorf("split %d: delta build flagged as full", split)
		}
	}
}

// TestDeltaBuildChains: two stacked deltas equal one full build — the
// state a DeltaBuild emits is itself a valid base.
func TestDeltaBuildChains(t *testing.T) {
	const n = 5000
	inputs, oracle := deltaCorpus(t, n)
	cfg := Config{Oracle: oracle}
	full, err := Build(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Build(inputs[:n/2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3 * n / 4, n} {
		next, err := DeltaBuild(pb, inputs[consumed(pb):cut], cfg)
		if err != nil {
			t.Fatal(err)
		}
		pb = next
	}
	if !bytes.Equal(snapshot(t, pb), snapshot(t, full)) {
		t.Fatal("chained delta builds diverge from full build")
	}
}

// consumed recovers how many corpus sentences a Probase has consumed,
// from its extraction checkpoint's global numbering.
func consumed(pb *Probase) int {
	return pb.State.Checkpoint.NumInputs
}

// TestDeltaBuildThroughFullSnapshot: the save/load cycle preserves the
// build state well enough that a delta from the reloaded base is
// byte-identical to a delta from the in-memory base.
func TestDeltaBuildThroughFullSnapshot(t *testing.T) {
	const n = 5000
	inputs, oracle := deltaCorpus(t, n)
	cfg := Config{Oracle: oracle}
	base, err := Build(inputs[:n-200], cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := base.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFull(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.State == nil {
		t.Fatal("full snapshot dropped the build state")
	}
	want, err := DeltaBuild(base, inputs[n-200:], cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DeltaBuild(loaded, inputs[n-200:], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshot(t, got), snapshot(t, want)) {
		t.Fatal("delta from reloaded base differs from delta from live base")
	}
	// And the reloaded model answers plausibility like the live one.
	if a, b := loaded.Plausibility("companies", "IBM"), base.Plausibility("companies", "IBM"); a != b {
		t.Fatalf("reloaded plausibility %v, live %v", a, b)
	}
}

// TestDeltaBuildRequiresState: graph-only bases are rejected with a
// sentinel the CLI can explain.
func TestDeltaBuildRequiresState(t *testing.T) {
	inputs, oracle := deltaCorpus(t, 2000)
	base, err := Build(inputs[:1000], Config{Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := base.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeltaBuild(loaded, inputs[1000:], Config{Oracle: oracle}); !errors.Is(err, ErrNoBuildState) {
		t.Fatalf("err = %v, want ErrNoBuildState", err)
	}
	if _, err := DeltaBuild(nil, nil, Config{}); !errors.Is(err, ErrNoBuildState) {
		t.Fatalf("nil base: err = %v", err)
	}
}
