package taxstats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ThresholdsSchema names the drift-thresholds file layout; bump on
// breaking changes.
const ThresholdsSchema = "probase-inspect-thresholds/v1"

// Delta is one metric's movement between two profiles.
type Delta struct {
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Abs is New - Old.
	Abs float64 `json:"abs"`
	// Rel is (New-Old)/Old; nil when Old == 0 and the ratio is
	// undefined (a 0 -> nonzero move breaches any relative limit, see
	// Thresholds.Gate).
	Rel *float64 `json:"rel,omitempty"`
}

// Breach is one threshold violation found by Gate.
type Breach struct {
	Metric string `json:"metric"`
	// Kind is "abs" or "rel".
	Kind string `json:"kind"`
	// Limit is the configured bound, Value the |drift| that broke it.
	// A 0 -> nonzero move under a relative limit reports Value as +Inf
	// rendered via its JSON-safe sentinel (see infRel).
	Limit float64 `json:"limit"`
	Value float64 `json:"value"`
}

func (b Breach) String() string {
	return fmt.Sprintf("%s: |%s drift| %g exceeds limit %g", b.Metric, b.Kind, b.Value, b.Limit)
}

// DriftReport is the outcome of diffing two profiles, optionally gated
// against thresholds.
type DriftReport struct {
	FingerprintChanged bool     `json:"fingerprint_changed"`
	Deltas             []Delta  `json:"deltas"`
	Breaches           []Breach `json:"breaches,omitempty"`
}

// Drifted reports whether any metric moved at all (fingerprint changes
// on identical content are impossible, so identical snapshots report
// false everywhere).
func (r *DriftReport) Drifted() bool {
	if r.FingerprintChanged {
		return true
	}
	for _, d := range r.Deltas {
		if d.Abs != 0 {
			return true
		}
	}
	return false
}

// metric is one named scalar extracted from a profile for diffing.
type metric struct {
	name  string
	value float64
}

// metricsOf flattens the profile's drift-relevant scalars in a fixed,
// documented order. Adding a metric here automatically makes it
// diffable and gateable (and rejects stale threshold files that name
// metrics which no longer exist).
func metricsOf(p *Profile) []metric {
	return []metric{
		{"nodes", float64(p.Nodes)},
		{"edges", float64(p.Edges)},
		{"concepts", float64(p.Concepts)},
		{"instances", float64(p.Instances)},
		{"roots", float64(p.Roots)},
		{"orphans", float64(p.Orphans)},
		{"label_bytes", float64(p.LabelBytes)},
		{"max_depth", float64(p.MaxDepth)},
		{"topo_levels", float64(p.TopoLevels)},
		{"out_degree_mean", p.OutDegree.Mean},
		{"out_degree_max", float64(p.OutDegree.Max)},
		{"in_degree_mean", p.InDegree.Mean},
		{"in_degree_max", float64(p.InDegree.Max)},
		{"plausibility_mean", p.Plausibility.Mean},
		{"plausibility_p50", p.Plausibility.P50},
		{"plausibility_p90", p.Plausibility.P90},
		{"plausibility_p99", p.Plausibility.P99},
		{"plausibility_zero_mass", p.Plausibility.ZeroMass},
		{"plausibility_one_mass", p.Plausibility.OneMass},
		{"typicality_mean", p.Typicality.Mean},
		{"typicality_p50", p.Typicality.P50},
		{"typicality_p90", p.Typicality.P90},
		{"typicality_p99", p.Typicality.P99},
		{"entropy_mean", p.Entropy.Mean},
		{"entropy_p50", p.Entropy.P50},
		{"entropy_p90", p.Entropy.P90},
		{"entropy_p99", p.Entropy.P99},
		{"entropy_zero_mass", p.Entropy.ZeroMass},
	}
}

// topConceptChurnMetric is the one cross-profile metric: the fraction
// of old top-k concepts that fell out of the new top-k.
const topConceptChurnMetric = "top_concept_churn"

// KnownMetrics lists every metric name DiffProfiles emits, sorted —
// the vocabulary a thresholds file may gate on.
func KnownMetrics() []string {
	ms := metricsOf(&Profile{})
	names := make([]string, 0, len(ms)+1)
	for _, m := range ms {
		names = append(names, m.name)
	}
	names = append(names, topConceptChurnMetric)
	sort.Strings(names)
	return names
}

// DiffProfiles computes the per-metric drift from old to new, in the
// fixed metricsOf order plus the top-concept churn. Identical profiles
// produce all-zero deltas.
func DiffProfiles(old, new *Profile) *DriftReport {
	oldMs, newMs := metricsOf(old), metricsOf(new)
	r := &DriftReport{FingerprintChanged: old.Fingerprint != new.Fingerprint}
	for i, om := range oldMs {
		d := Delta{Metric: om.name, Old: om.value, New: newMs[i].value}
		d.Abs = d.New - d.Old
		if d.Old != 0 {
			rel := d.Abs / d.Old
			d.Rel = &rel
		}
		r.Deltas = append(r.Deltas, d)
	}
	churn := topChurn(old.TopConcepts, new.TopConcepts)
	r.Deltas = append(r.Deltas, Delta{
		Metric: topConceptChurnMetric, Old: 0, New: churn, Abs: churn,
	})
	return r
}

// topChurn is the fraction of old top concepts missing from the new
// top list; 0 when the old list is empty.
func topChurn(old, new []ConceptStat) float64 {
	if len(old) == 0 {
		return 0
	}
	kept := make(map[string]bool, len(new))
	for _, c := range new {
		kept[c.Label] = true
	}
	missing := 0
	for _, c := range old {
		if !kept[c.Label] {
			missing++
		}
	}
	return float64(missing) / float64(len(old))
}

// Limit bounds one metric's drift; nil fields are unbounded.
type Limit struct {
	// MaxAbs bounds |new - old|.
	MaxAbs *float64 `json:"max_abs,omitempty"`
	// MaxRel bounds |new - old| / |old|. A move from 0 to nonzero has
	// no defined ratio and breaches any MaxRel.
	MaxRel *float64 `json:"max_rel,omitempty"`
}

// Thresholds is the checked-in drift budget a new snapshot must stay
// inside to be considered safe to serve.
type Thresholds struct {
	Schema  string           `json:"schema"`
	Metrics map[string]Limit `json:"metrics"`
}

// ParseThresholds strictly decodes a thresholds document: unknown JSON
// fields, a wrong schema marker, or a metric name DiffProfiles never
// emits are all errors — a typo must not silently disarm the gate.
func ParseThresholds(raw []byte) (*Thresholds, error) {
	var t Thresholds
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("taxstats: thresholds: %w", err)
	}
	if t.Schema != ThresholdsSchema {
		return nil, fmt.Errorf("taxstats: thresholds schema %q, want %q", t.Schema, ThresholdsSchema)
	}
	if len(t.Metrics) == 0 {
		return nil, fmt.Errorf("taxstats: thresholds gate no metrics")
	}
	known := make(map[string]bool)
	for _, name := range KnownMetrics() {
		known[name] = true
	}
	for name, lim := range t.Metrics {
		if !known[name] {
			return nil, fmt.Errorf("taxstats: thresholds name unknown metric %q", name)
		}
		if lim.MaxAbs == nil && lim.MaxRel == nil {
			return nil, fmt.Errorf("taxstats: thresholds metric %q has no bound", name)
		}
	}
	return &t, nil
}

// LoadThresholds reads and parses a thresholds file.
func LoadThresholds(path string) (*Thresholds, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseThresholds(raw)
}

// infRel is the JSON-safe stand-in for an infinite relative drift (a
// metric that moved off zero under a relative limit): encoding/json
// cannot represent +Inf.
const infRel = 1e308

// Gate checks the report's deltas against the thresholds, records any
// breaches on the report, and returns them. No breaches means the new
// snapshot is inside the drift budget.
func (t *Thresholds) Gate(r *DriftReport) []Breach {
	byName := make(map[string]Delta, len(r.Deltas))
	for _, d := range r.Deltas {
		byName[d.Metric] = d
	}
	// Iterate the deltas (fixed order), not the map, so the breach
	// list is deterministic.
	var breaches []Breach
	for _, d := range r.Deltas {
		lim, ok := t.Metrics[d.Metric]
		if !ok {
			continue
		}
		abs := d.Abs
		if abs < 0 {
			abs = -abs
		}
		if lim.MaxAbs != nil && abs > *lim.MaxAbs {
			breaches = append(breaches, Breach{Metric: d.Metric, Kind: "abs", Limit: *lim.MaxAbs, Value: abs})
		}
		if lim.MaxRel != nil {
			switch {
			case d.Rel != nil:
				rel := *d.Rel
				if rel < 0 {
					rel = -rel
				}
				if rel > *lim.MaxRel {
					breaches = append(breaches, Breach{Metric: d.Metric, Kind: "rel", Limit: *lim.MaxRel, Value: rel})
				}
			case d.Abs != 0:
				// 0 -> nonzero: infinite relative drift.
				breaches = append(breaches, Breach{Metric: d.Metric, Kind: "rel", Limit: *lim.MaxRel, Value: infRel})
			}
		}
	}
	r.Breaches = breaches
	return breaches
}
