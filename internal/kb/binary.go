package kb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Binary snapshot format for Γ (little-endian):
//
//	magic    "PBKB"
//	version  uvarint (1)
//	strings  uvarint count, then per string: uvarint len + bytes
//	pairs    uvarint count, then per pair:
//	           uvarint xRef, uvarint yRef, uvarint n,
//	           uvarint evidence count, then per evidence:
//	             uvarint pattern, float64 pageScore, uvarint listLen,
//	             uvarint pos, byte negative
//	co       uvarint count, then per entry:
//	           uvarint xRef, uvarint aRef, uvarint bRef, uvarint n
//	crc32    uint32 (IEEE, over everything before it)
//
// Strings are interned once and referenced by index.
const (
	kbMagic   = "PBKB"
	kbVersion = 1
)

var (
	// ErrBadKBSnapshot reports a structurally invalid Γ snapshot.
	ErrBadKBSnapshot = errors.New("kb: bad snapshot")
	// ErrKBChecksum reports Γ snapshot corruption.
	ErrKBChecksum = errors.New("kb: snapshot checksum mismatch")
)

type kbCRCWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *kbCRCWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

func putUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// Save writes a checksummed binary snapshot of Γ, including evidence and
// co-occurrence statistics.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()

	// Intern all strings deterministically.
	refs := make(map[string]uint64)
	var strs []string
	intern := func(v string) uint64 {
		if id, ok := refs[v]; ok {
			return id
		}
		id := uint64(len(strs))
		refs[v] = id
		strs = append(strs, v)
		return id
	}
	type pairRow struct {
		x, y string
	}
	var pairs []pairRow
	xs := make([]string, 0, len(s.bySuper))
	for x := range s.bySuper {
		xs = append(xs, x)
	}
	sort.Strings(xs)
	for _, x := range xs {
		ys := make([]string, 0, len(s.bySuper[x]))
		for y := range s.bySuper[x] {
			ys = append(ys, y)
		}
		sort.Strings(ys)
		for _, y := range ys {
			intern(x)
			intern(y)
			pairs = append(pairs, pairRow{x, y})
		}
	}
	// Evidence can reference pairs without counts; include those too.
	evOnly := make([]Pair, 0)
	for p := range s.evidence {
		if s.bySuper[p.X][p.Y] == 0 {
			evOnly = append(evOnly, p)
		}
	}
	sort.Slice(evOnly, func(i, j int) bool {
		if evOnly[i].X != evOnly[j].X {
			return evOnly[i].X < evOnly[j].X
		}
		return evOnly[i].Y < evOnly[j].Y
	})
	for _, p := range evOnly {
		intern(p.X)
		intern(p.Y)
		pairs = append(pairs, pairRow{p.X, p.Y})
	}
	coKeys := make([]string, 0, len(s.co))
	for k := range s.co {
		coKeys = append(coKeys, k)
	}
	sort.Strings(coKeys)
	coParts := make([][3]string, len(coKeys))
	for i, k := range coKeys {
		var fields [3]string
		start, fi := 0, 0
		for j := 0; j < len(k) && fi < 2; j++ {
			if k[j] == '\x1f' {
				fields[fi] = k[start:j]
				start = j + 1
				fi++
			}
		}
		fields[2] = k[start:]
		for _, f := range fields {
			intern(f)
		}
		coParts[i] = fields
	}

	bw := bufio.NewWriter(w)
	cw := &kbCRCWriter{w: bw}
	if _, err := cw.Write([]byte(kbMagic)); err != nil {
		return err
	}
	if err := putUvarint(cw, kbVersion); err != nil {
		return err
	}
	if err := putUvarint(cw, uint64(len(strs))); err != nil {
		return err
	}
	for _, v := range strs {
		if err := putUvarint(cw, uint64(len(v))); err != nil {
			return err
		}
		if _, err := cw.Write([]byte(v)); err != nil {
			return err
		}
	}
	if err := putUvarint(cw, uint64(len(pairs))); err != nil {
		return err
	}
	var f64 [8]byte
	for _, pr := range pairs {
		if err := putUvarint(cw, refs[pr.x]); err != nil {
			return err
		}
		if err := putUvarint(cw, refs[pr.y]); err != nil {
			return err
		}
		if err := putUvarint(cw, uint64(s.bySuper[pr.x][pr.y])); err != nil {
			return err
		}
		evs := s.evidence[Pair{X: pr.x, Y: pr.y}]
		if err := putUvarint(cw, uint64(len(evs))); err != nil {
			return err
		}
		for _, ev := range evs {
			if err := putUvarint(cw, uint64(ev.Pattern)); err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(ev.PageScore))
			if _, err := cw.Write(f64[:]); err != nil {
				return err
			}
			if err := putUvarint(cw, uint64(ev.ListLen)); err != nil {
				return err
			}
			if err := putUvarint(cw, uint64(ev.Pos)); err != nil {
				return err
			}
			neg := byte(0)
			if ev.Negative {
				neg = 1
			}
			if _, err := cw.Write([]byte{neg}); err != nil {
				return err
			}
		}
	}
	if err := putUvarint(cw, uint64(len(coKeys))); err != nil {
		return err
	}
	for i, k := range coKeys {
		for _, f := range coParts[i] {
			if err := putUvarint(cw, refs[f]); err != nil {
				return err
			}
		}
		if err := putUvarint(cw, uint64(s.co[k])); err != nil {
			return err
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

type kbCRCReader struct {
	r   *bufio.Reader
	crc uint32
}

func (cr *kbCRCReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (cr *kbCRCReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc = crc32.Update(cr.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

// Load reads a snapshot written by Save. The evidence cap of the
// returned store is unlimited.
func Load(r io.Reader) (*Store, error) {
	cr := &kbCRCReader{r: bufio.NewReader(r)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadKBSnapshot, err)
	}
	if string(magic) != kbMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadKBSnapshot, magic)
	}
	version, err := binary.ReadUvarint(cr)
	if err != nil || version != kbVersion {
		return nil, fmt.Errorf("%w: version", ErrBadKBSnapshot)
	}
	nstrs, err := binary.ReadUvarint(cr)
	if err != nil || nstrs > 1<<28 {
		return nil, fmt.Errorf("%w: string count", ErrBadKBSnapshot)
	}
	// Grow incrementally rather than pre-allocating nstrs entries: a
	// corrupt header must not be able to demand gigabytes up front.
	strs := make([]string, 0, minUint64(nstrs, 1<<16))
	for i := uint64(0); i < nstrs; i++ {
		ln, err := binary.ReadUvarint(cr)
		if err != nil || ln > 1<<20 {
			return nil, fmt.Errorf("%w: string length", ErrBadKBSnapshot)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, fmt.Errorf("%w: string bytes: %v", ErrBadKBSnapshot, err)
		}
		strs = append(strs, string(buf))
	}
	ref := func() (string, error) {
		id, err := binary.ReadUvarint(cr)
		if err != nil || id >= nstrs {
			return "", fmt.Errorf("%w: string ref", ErrBadKBSnapshot)
		}
		return strs[id], nil
	}
	s := NewStore(0)
	npairs, err := binary.ReadUvarint(cr)
	if err != nil || npairs > 1<<30 {
		return nil, fmt.Errorf("%w: pair count", ErrBadKBSnapshot)
	}
	var f64 [8]byte
	for i := uint64(0); i < npairs; i++ {
		x, err := ref()
		if err != nil {
			return nil, err
		}
		y, err := ref()
		if err != nil {
			return nil, err
		}
		n, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: pair count field", ErrBadKBSnapshot)
		}
		s.Add(x, y, int64(n))
		nev, err := binary.ReadUvarint(cr)
		if err != nil || nev > 1<<20 {
			return nil, fmt.Errorf("%w: evidence count", ErrBadKBSnapshot)
		}
		for j := uint64(0); j < nev; j++ {
			var ev Evidence
			pat, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("%w: evidence pattern", ErrBadKBSnapshot)
			}
			ev.Pattern = int(pat)
			if _, err := io.ReadFull(cr, f64[:]); err != nil {
				return nil, fmt.Errorf("%w: evidence score: %v", ErrBadKBSnapshot, err)
			}
			ev.PageScore = math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))
			ll, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("%w: evidence listlen", ErrBadKBSnapshot)
			}
			ev.ListLen = int(ll)
			pos, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("%w: evidence pos", ErrBadKBSnapshot)
			}
			ev.Pos = int(pos)
			neg, err := cr.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("%w: evidence flag: %v", ErrBadKBSnapshot, err)
			}
			ev.Negative = neg == 1
			s.AddEvidence(x, y, ev)
		}
	}
	nco, err := binary.ReadUvarint(cr)
	if err != nil || nco > 1<<30 {
		return nil, fmt.Errorf("%w: co count", ErrBadKBSnapshot)
	}
	for i := uint64(0); i < nco; i++ {
		x, err := ref()
		if err != nil {
			return nil, err
		}
		a, err := ref()
		if err != nil {
			return nil, err
		}
		b, err := ref()
		if err != nil {
			return nil, err
		}
		n, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: co count field", ErrBadKBSnapshot)
		}
		s.AddCo(x, a, b, int64(n))
	}
	want := cr.crc
	var crcBuf [4]byte
	if _, err := io.ReadFull(cr.r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: trailer: %v", ErrBadKBSnapshot, err)
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != want {
		return nil, ErrKBChecksum
	}
	return s, nil
}

func minUint64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
