// Package sketch holds the Space-Saving heavy-hitter summary (Metwally,
// Agrawal, El Abbadi, "Efficient computation of frequent and top-k
// elements in data streams", ICDT 2005) the traffic layer uses to track
// hot query arguments per endpoint in O(capacity) memory.
//
// # Guarantees
//
// A TopK of capacity m observing a stream of N (weighted) events keeps
// every key whose true count exceeds N/m — a heavy hitter cannot be
// evicted, because eviction replaces the minimum counter and the
// minimum counter is ≤ N/m. Each tracked key's Count overestimates its
// true count by at most its Err field (the minimum counter's value at
// the moment the key was adopted), so
//
//	true count ∈ [Count-Err, Count]   and   Err ≤ N/m.
//
// Smaller streams or larger capacities tighten the bound; with the
// traffic layer's defaults (m=64 per endpoint) a key reported hot with
// Count ≫ N/64 is genuinely hot.
//
// # Determinism
//
// Replacement victims and report order are deterministic: the eviction
// victim is the entry with the minimum count, ties broken by the
// lexically greatest key (so among equals the newest-alphabet key is
// recycled first and the report order — count descending, then key
// ascending — is stable). Merge sums counts symmetrically and re-evicts
// down to capacity with the same rule, so Merge(a,b) and Merge(b,a)
// summarize identically.
package sketch

import "sort"

type entry struct {
	key   string
	count int64
	err   int64
}

// Item is one reported heavy hitter. The true count lies in
// [Count-Err, Count].
type Item struct {
	Key   string `json:"key"`
	Count int64  `json:"count"`
	Err   int64  `json:"err,omitempty"`
}

// TopK is a Space-Saving summary. Not safe for concurrent use; callers
// guard it with the lock covering the surrounding aggregate.
type TopK struct {
	cap      int
	entries  map[string]*entry
	observed int64 // N: total observed weight, for the N/m bound
}

// New builds a sketch tracking at most capacity keys; capacity < 1 is
// raised to 1.
func New(capacity int) *TopK {
	if capacity < 1 {
		capacity = 1
	}
	return &TopK{cap: capacity, entries: make(map[string]*entry, capacity)}
}

// Capacity returns the maximum number of tracked keys (the m of the
// N/m error bound).
func (t *TopK) Capacity() int { return t.cap }

// Observed returns the total observed weight N.
func (t *TopK) Observed() int64 { return t.observed }

// Observe counts one occurrence of key.
func (t *TopK) Observe(key string) { t.ObserveN(key, 1) }

// ObserveN counts n occurrences of key (n ≤ 0 is ignored).
func (t *TopK) ObserveN(key string, n int64) {
	if n <= 0 {
		return
	}
	t.observed += n
	if e, ok := t.entries[key]; ok {
		e.count += n
		return
	}
	if len(t.entries) < t.cap {
		t.entries[key] = &entry{key: key, count: n}
		return
	}
	// Space-Saving replacement: adopt the minimum counter. The new key
	// inherits the victim's count as its overestimate bound.
	v := t.victim()
	delete(t.entries, v.key)
	t.entries[key] = &entry{key: key, count: v.count + n, err: v.count}
}

// victim returns the eviction candidate: minimum count, ties broken by
// the lexically greatest key.
func (t *TopK) victim() *entry {
	var v *entry
	for _, e := range t.entries {
		if v == nil || e.count < v.count || (e.count == v.count && e.key > v.key) {
			v = e
		}
	}
	return v
}

// Top returns up to k items ordered by count descending, ties by key
// ascending. k ≤ 0 returns every tracked key.
func (t *TopK) Top(k int) []Item {
	out := make([]Item, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, Item{Key: e.key, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Merge folds other into t (mergeable-summaries style: counts and
// error bounds sum for shared keys; keys only in other are adopted
// with their counts, then the union is re-evicted down to capacity by
// the standard victim rule). Merging summaries of two disjoint stream
// halves preserves the combined N/m guarantee, and the operation is
// symmetric: Merge(a,b) and Merge(b,a) produce identical summaries.
func (t *TopK) Merge(other *TopK) {
	if other == nil {
		return
	}
	t.observed += other.observed
	for key, oe := range other.entries {
		if e, ok := t.entries[key]; ok {
			e.count += oe.count
			e.err += oe.err
		} else {
			t.entries[key] = &entry{key: key, count: oe.count, err: oe.err}
		}
	}
	for len(t.entries) > t.cap {
		delete(t.entries, t.victim().key)
	}
}

// Reset empties the sketch, keeping its capacity.
func (t *TopK) Reset() {
	t.entries = make(map[string]*entry, t.cap)
	t.observed = 0
}
