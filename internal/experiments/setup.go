// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the synthetic substrate. Each experiment
// returns a typed result plus a formatted table; cmd/probase-bench prints
// them and the root benchmarks time them. The per-experiment index lives
// in DESIGN.md; measured-vs-paper numbers in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

// Setup fixes the shared inputs of all experiments: the expanded world,
// the generated corpus, the comparator references, and a fully built
// Probase.
type Setup struct {
	World     *corpus.World
	Corpus    *corpus.Corpus
	Inputs    []extraction.Input
	PB        *core.Probase
	WordNet   *baseline.Reference
	WikiTax   *baseline.Reference
	YAGO      *baseline.Reference
	Freebase  *baseline.Reference
	Scale     float64
	Sentences int
}

// Options sizes a Setup. The zero value selects the standard evaluation
// configuration (scale 1, 20000 sentences).
type Options struct {
	Scale     float64
	Sentences int
	Seed      int64
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Sentences == 0 {
		o.Sentences = 20000
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	return o
}

// NewSetup builds everything once. The world doubles as the training
// oracle for the plausibility model (the WordNet role of Section 4.1).
func NewSetup(o Options) (*Setup, error) {
	o = o.withDefaults()
	w := corpus.DefaultWorld(o.Scale)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: o.Sentences, Seed: o.Seed}).Generate()
	inputs := make([]extraction.Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}
	oracle := func(x, y string) (bool, bool) {
		if !w.KnownTerm(x) || !w.KnownTerm(y) {
			return false, false
		}
		return w.IsTrueIsA(x, y), true
	}
	// The figure experiments reproduce the paper's global Algorithm 1
	// fixpoint (every sentence iterated together), so disable the chunked
	// incremental-build fold by making the corpus a single chunk.
	cfg := core.Config{Oracle: oracle}
	cfg.Extraction.ChunkSize = len(inputs)
	pb, err := core.Build(inputs, cfg)
	if err != nil {
		return nil, err
	}
	return &Setup{
		World:     w,
		Corpus:    c,
		Inputs:    inputs,
		PB:        pb,
		WordNet:   baseline.NewWordNetRef(w),
		WikiTax:   baseline.NewWikiTaxonomyRef(w),
		YAGO:      baseline.NewYAGORef(w),
		Freebase:  baseline.NewFreebaseRef(w),
		Scale:     o.Scale,
		Sentences: o.Sentences,
	}, nil
}

// table renders rows as a fixed-width text table with a title.
func table(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func i64(v int64) string   { return fmt.Sprintf("%d", v) }
