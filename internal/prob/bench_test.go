package prob

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/kb"
)

func benchTaxonomy() *graph.Store {
	rng := rand.New(rand.NewSource(1))
	g := graph.NewStore()
	root := g.Intern("thing")
	for c := 0; c < 60; c++ {
		concept := g.Intern(fmt.Sprintf("concept%d", c))
		g.AddEdge(root, concept, int64(rng.Intn(10)+1), 0.9)
		for s := 0; s < 3; s++ {
			sub := g.Intern(fmt.Sprintf("concept%d/sub%d", c, s))
			g.AddEdge(concept, sub, int64(rng.Intn(8)+1), 0.9)
			for i := 0; i < 20; i++ {
				inst := g.Intern(fmt.Sprintf("inst%d-%d-%d", c, s, i))
				g.AddEdge(sub, inst, int64(rng.Intn(30)+1), 0.95)
				if rng.Intn(3) == 0 {
					g.AddEdge(concept, inst, int64(rng.Intn(30)+1), 0.95)
				}
			}
		}
	}
	return g
}

// layeredBenchGraph builds a deep layered DAG whose wide topological
// levels are the axis the Algorithm 3 DP parallelizes over.
func layeredBenchGraph(levels, width int) *graph.Store {
	rng := rand.New(rand.NewSource(7))
	g := graph.NewStore()
	prev := []graph.NodeID{g.Intern("root")}
	for l := 0; l < levels; l++ {
		cur := make([]graph.NodeID, width)
		for i := range cur {
			cur[i] = g.Intern(fmt.Sprintf("l%dn%d", l, i))
			parents := 3
			if parents > len(prev) {
				parents = len(prev)
			}
			for p := 0; p < parents; p++ {
				g.AddEdge(prev[rng.Intn(len(prev))], cur[i], int64(rng.Intn(9)+1), 0.9)
			}
		}
		prev = cur
	}
	return g
}

// BenchmarkAlg3 measures the reachability DP at several worker counts;
// the CI bench-compare job asserts the multi-worker runs get faster on
// a multi-core runner (the reach table stays byte-identical either way).
func BenchmarkAlg3(b *testing.B) {
	g := layeredBenchGraph(7, 160)
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := New(g, Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNewTypicality(b *testing.B) {
	g := benchTaxonomy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewTypicality(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstancesOf(b *testing.B) {
	g := benchTaxonomy()
	ty, err := NewTypicality(g)
	if err != nil {
		b.Fatal(err)
	}
	ids := g.Concepts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ty.InstancesOf(ids[i%len(ids)])
	}
}

func BenchmarkConceptsOf(b *testing.B) {
	g := benchTaxonomy()
	ty, err := NewTypicality(g)
	if err != nil {
		b.Fatal(err)
	}
	insts := g.Instances()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ty.ConceptsOf(insts[i%len(insts)])
	}
}

func BenchmarkPlausibility(b *testing.B) {
	s := kb.NewStore(32)
	for i := 0; i < 5000; i++ {
		x := fmt.Sprintf("c%d", i%50)
		y := fmt.Sprintf("i%d", i%1000)
		s.Add(x, y, 1)
		s.AddEvidence(x, y, kb.Evidence{Pattern: i%6 + 1, PageScore: 0.5, ListLen: 3, Pos: i%4 + 1})
	}
	m := Train(s, func(x, y string) (bool, bool) { return len(y)%2 == 0, true })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Plausibility(fmt.Sprintf("c%d", i%50), fmt.Sprintf("i%d", i%1000))
	}
}
