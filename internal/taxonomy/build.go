package taxonomy

import (
	"fmt"
	"time"

	"repro/internal/extraction"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Config controls taxonomy construction.
type Config struct {
	// Sim is the child-set similarity; defaults to AbsoluteOverlap{Delta: 2}.
	Sim Similarity
	// MinSenseEvidence drops sense clusters backed by fewer than this many
	// sentences *when the label has a dominant cluster*; tiny fragment
	// clusters are usually extraction noise. 0 keeps everything.
	MinSenseEvidence int
	// DisableAdoption skips the fragment-adoption pass between the
	// horizontal and vertical stages (see engine.adoptFragments); mainly
	// for the merge-order experiments, which study the pure Algorithm 2.
	DisableAdoption bool
	// Workers parallelises the horizontal stage over root labels and
	// the vertical stage over sense clusters (both via internal/parallel).
	// The built taxonomy is byte-identical at every worker count;
	// 0 means GOMAXPROCS.
	Workers int
	// Reporter receives merge-stage telemetry (stages "taxonomy",
	// "taxonomy.horizontal", "taxonomy.vertical", "taxonomy.assemble");
	// nil discards it.
	Reporter obs.StageReporter
}

func (c Config) withDefaults() Config {
	if c.Sim == nil {
		c.Sim = AbsoluteOverlap{Delta: 2}
	}
	c.Workers = parallel.Workers(c.Workers)
	return c
}

// BuildStats reports construction work, for the Theorem 2 benchmarks and
// the cycle-refusal audit.
type BuildStats struct {
	Locals          int // input local taxonomies (sentences)
	HorizontalOps   int
	VerticalOps     int
	Adoptions       int // fragment adoptions (reproduction-scale pass)
	Senses          int // sense clusters after merging
	MultiSense      int // labels with more than one sense
	SkippedCycles   int // candidate edges refused to keep the DAG acyclic
	DroppedClusters int // clusters dropped by MinSenseEvidence
}

// Result is a constructed taxonomy. State is the merge state the graph
// was assembled from; delta builds feed it back through MergeDelta.
type Result struct {
	Graph  *graph.Store
	Senses map[string][]string // root label -> node labels of its senses
	Stats  BuildStats
	State  *State
}

// SenseLabel names the i-th sense (0-based) of a label: the bare label
// when the label has a single sense, otherwise "label#i+1".
func SenseLabel(label string, i, total int) string {
	if total <= 1 {
		return label
	}
	return fmt.Sprintf("%s#%d", label, i+1)
}

// Build assembles the taxonomy DAG from per-sentence extraction groups:
// Merge (horizontal fixpoint + fragment adoption, per label) followed by
// Assemble (vertical linking + DAG assembly). The two stages communicate
// through the persistable State so that delta builds can replay Merge
// only for dirty labels (MergeDelta) and still share this assembly path.
func Build(groups []extraction.Group, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rep := obs.ReporterOrNop(cfg.Reporter)
	rep.StageStart(obs.StageTaxonomy)
	buildStart := time.Now()
	state := mergeLabels(collectLabels(groups), cfg, rep)
	res := assembleState(state, cfg, rep)
	rep.StageEnd(obs.StageTaxonomy, time.Since(buildStart))
	return res
}

// BuildDelta is Build with merge-state reuse: labels outside dirtyRoots
// keep their clusters from prev (see MergeDelta for the soundness
// contract), and the shared assembly path recomputes vertical links and
// the DAG. The result equals Build over the same groups.
func BuildDelta(prev *State, groups []extraction.Group, dirtyRoots []string, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rep := obs.ReporterOrNop(cfg.Reporter)
	rep.StageStart(obs.StageTaxonomy)
	buildStart := time.Now()
	state := MergeDelta(prev, groups, dirtyRoots, cfg)
	res := assembleState(state, cfg, rep)
	rep.StageEnd(obs.StageTaxonomy, time.Since(buildStart))
	return res
}
