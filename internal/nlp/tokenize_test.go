package nlp

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []Token
	}{
		{"animals such as cats", []Token{{Text: "animals"}, {Text: "such"}, {Text: "as"}, {Text: "cats"}}},
		{"IBM, Nokia, Proctor and Gamble", []Token{
			{Text: "IBM"}, {Text: ",", Punct: true}, {Text: "Nokia"},
			{Text: ",", Punct: true}, {Text: "Proctor"}, {Text: "and"}, {Text: "Gamble"},
		}},
		{"  spaced   out.", []Token{{Text: "spaced"}, {Text: "out"}, {Text: ".", Punct: true}}},
		{"", nil},
	}
	for _, tt := range tests {
		if got := Tokenize(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWords(t *testing.T) {
	got := Words(Tokenize("a, b and c."))
	want := []string{"a", "b", "and", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  Tropical   Countries "); got != "tropical countries" {
		t.Errorf("Normalize = %q", got)
	}
}

func TestCollapseSpaces(t *testing.T) {
	if got := CollapseSpaces("  New   York "); got != "New York" {
		t.Errorf("CollapseSpaces = %q", got)
	}
}

func TestSplitList(t *testing.T) {
	got := SplitList("IBM, Nokia, , Proctor and Gamble")
	want := []string{"IBM", "Nokia", "Proctor and Gamble"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitList = %v, want %v", got, want)
	}
}

func TestContainsDelimiterWord(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"Proctor and Gamble", true},
		{"cats or dogs", true},
		{"Portland", false},
		{"android phones", false}, // "and" must be a standalone word
		{"oregon", false},
	}
	for _, tt := range tests {
		if got := ContainsDelimiterWord(tt.in); got != tt.want {
			t.Errorf("ContainsDelimiterWord(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
