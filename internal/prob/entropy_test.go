package prob

import (
	"math"
	"testing"
)

func TestEntropy(t *testing.T) {
	cases := []struct {
		name string
		rs   []Ranked
		want float64
	}{
		{"empty", nil, 0},
		{"single", []Ranked{{"a", 1}}, 0},
		{"uniform2", []Ranked{{"a", 0.5}, {"b", 0.5}}, 1},
		{"uniform4", []Ranked{{"a", 0.25}, {"b", 0.25}, {"c", 0.25}, {"d", 0.25}}, 2},
		// Unnormalised scores renormalise over their sum.
		{"unnormalised", []Ranked{{"a", 3}, {"b", 3}}, 1},
		{"zeros ignored", []Ranked{{"a", 0.5}, {"b", 0.5}, {"c", 0}}, 1},
		{"all zero", []Ranked{{"a", 0}, {"b", 0}}, 0},
		// H(0.9, 0.1) = -(0.9 log2 0.9 + 0.1 log2 0.1).
		{"skewed", []Ranked{{"a", 0.9}, {"b", 0.1}},
			-(0.9*math.Log2(0.9) + 0.1*math.Log2(0.1))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Entropy(c.rs); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("Entropy = %v, want %v", got, c.want)
			}
		})
	}
}

func TestEntropyNeverNegative(t *testing.T) {
	// A lone score whose self-division rounds to slightly over 1 could
	// push -p log2 p below zero; the clamp keeps the signal a valid
	// entropy.
	if got := Entropy([]Ranked{{"a", 0.1}}); got != 0 {
		t.Errorf("Entropy(single) = %v, want exactly 0", got)
	}
}
