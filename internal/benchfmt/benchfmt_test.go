package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func validReport() Report {
	return Report{
		Schema:       Schema,
		Build:        obs.Version(),
		Options:      Options{Scale: 1, Sentences: 100, Seed: 11, Queries: 100},
		SetupSeconds: 0.01,
		Experiments: []Experiment{
			{Name: "loadgen", Seconds: 1.5, Result: map[string]any{"requests": 10}},
		},
		TotalSeconds: 1.6,
	}
}

func TestValidateRoundTrip(t *testing.T) {
	raw, err := json.Marshal(validReport())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBytes("mem", raw); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	path := filepath.Join(t.TempDir(), "r.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFile(path); err != nil {
		t.Fatalf("ValidateFile: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutate := func(fn func(*Report)) []byte {
		r := validReport()
		fn(&r)
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	cases := map[string]struct {
		raw  []byte
		want string
	}{
		"not-json":      {[]byte("nope"), "invalid"},
		"unknown-field": {[]byte(`{"schema":"probase-bench/v1","bogus":1}`), "bogus"},
		"wrong-schema":  {mutate(func(r *Report) { r.Schema = "other/v9" }), "schema"},
		"no-experiments": {mutate(func(r *Report) { r.Experiments = nil }),
			"no experiments"},
		"bad-total": {mutate(func(r *Report) { r.TotalSeconds = 0 }), "total_seconds"},
		"bad-sentences": {mutate(func(r *Report) { r.Options.Sentences = 0 }),
			"sentences"},
		"unnamed-experiment": {mutate(func(r *Report) { r.Experiments[0].Name = "" }),
			"no name"},
		"negative-seconds": {mutate(func(r *Report) { r.Experiments[0].Seconds = -1 }),
			"negative seconds"},
		"empty-experiment": {mutate(func(r *Report) { r.Experiments[0].Result = nil }),
			"neither result nor error"},
	}
	for name, tc := range cases {
		err := ValidateBytes(name, tc.raw)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

func TestValidateAs(t *testing.T) {
	r := validReport()
	r.Schema = "probase-inspect/v1"
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBytesAs("mem", raw, "probase-inspect/v1"); err != nil {
		t.Fatalf("report rejected under its own schema: %v", err)
	}
	// The default validator still insists on the bench schema...
	if err := ValidateBytes("mem", raw); err == nil {
		t.Error("foreign schema accepted by ValidateBytes")
	}
	// ...and the structural rules apply unchanged under any schema.
	r.Experiments = nil
	raw, _ = json.Marshal(r)
	if err := ValidateBytesAs("mem", raw, "probase-inspect/v1"); err == nil {
		t.Error("experiment-free report accepted")
	}

	path := filepath.Join(t.TempDir(), "r.json")
	r = validReport()
	r.Schema = "probase-inspect/v1"
	raw, _ = json.Marshal(r)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFileAs(path, "probase-inspect/v1"); err != nil {
		t.Fatalf("ValidateFileAs: %v", err)
	}
}

func TestExperimentLookup(t *testing.T) {
	r := validReport()
	if _, ok := r.Experiment("loadgen"); !ok {
		t.Error("loadgen experiment not found")
	}
	if _, ok := r.Experiment("missing"); ok {
		t.Error("missing experiment found")
	}
}
