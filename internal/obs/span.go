package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// SpanData is one completed span as retained in a trace. Offsets are
// relative to the trace's root start, so a list of SpanData renders
// directly as a waterfall.
type SpanData struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	OffsetUS   int64             `json:"offset_us"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Status     string            `json:"status,omitempty"` // "" (ok) or "error"
	Error      string            `json:"error,omitempty"`

	start time.Time
}

// TraceData is one finalised trace: the root span's identity and
// outcome plus every recorded span, ordered by start offset.
type TraceData struct {
	TraceID      string     `json:"trace_id"`
	Root         string     `json:"root"`
	Start        time.Time  `json:"start"`
	DurationUS   int64      `json:"duration_us"`
	HeadSampled  bool       `json:"head_sampled"`
	Slow         bool       `json:"slow,omitempty"`
	Errored      bool       `json:"errored,omitempty"`
	RemoteParent string     `json:"remote_parent,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// traceRec accumulates the spans of one in-flight trace. Child spans
// append themselves on End; the root span's End finalises the record
// and offers it to the tracer's ring buffer.
type traceRec struct {
	tracer   *Tracer
	id       TraceID
	start    time.Time
	rootName string
	sampled  bool   // head-sampling decision, made at root start
	remote   SpanID // inbound traceparent parent, zero when local

	// mu guards the accumulation; sibling spans may end concurrently.
	mu      sync.Mutex
	spans   []SpanData
	errored bool
	done    bool
}

func newTraceRec(t *Tracer, id TraceID, start time.Time, sampled bool) *traceRec {
	return &traceRec{tracer: t, id: id, start: start, sampled: sampled}
}

// Span is one timed operation inside a trace. A span is owned by the
// goroutine that started it (SetAttr/SetError/End are not safe for
// concurrent use on one span); sibling spans of the same trace may
// start and end concurrently. All methods are no-ops on a nil span, so
// call sites never need to check whether tracing is enabled.
type Span struct {
	rec   *traceRec
	data  SpanData
	root  bool
	ended bool
}

// SetAttr attaches a key=value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
}

// SetError marks the span (and thus its trace) as errored; errored
// traces are always kept by the tail rule.
func (s *Span) SetError(msg string) {
	if s == nil || s.ended {
		return
	}
	s.data.Status = "error"
	s.data.Error = msg
}

// TraceID returns the span's trace ID in hex, or "" on a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID returns the span's own ID in hex, or "" on a nil span.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// End completes the span, recording its duration. Ending the root span
// finalises the trace: the keep decision (head sample, slow, errored)
// is made and the trace becomes visible in Tracer.Traces —
// synchronously, so a request's trace is flushed the moment its
// handler returns.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.endAt(s.rec.tracer.now())
}

// endAt is End with an explicit end time (SpanReporter backdates round
// spans from reported elapsed times).
func (s *Span) endAt(end time.Time) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	rec := s.rec
	s.data.OffsetUS = s.data.start.Sub(rec.start).Microseconds()
	s.data.DurationUS = end.Sub(s.data.start).Microseconds()

	rec.mu.Lock()
	if !rec.done {
		rec.spans = append(rec.spans, s.data)
		if s.data.Status == "error" {
			rec.errored = true
		}
	}
	rec.mu.Unlock()

	if s.root {
		rec.finalize(end)
	}
}

// finalize closes the trace record and offers it to the ring buffer
// when the sampling rules keep it.
func (rec *traceRec) finalize(end time.Time) {
	t := rec.tracer
	dur := end.Sub(rec.start)
	slow := t.cfg.SlowThreshold > 0 && dur >= t.cfg.SlowThreshold

	rec.mu.Lock()
	rec.done = true
	errored := rec.errored
	spans := rec.spans
	rec.spans = nil
	rec.mu.Unlock()

	if !rec.sampled && !slow && !errored {
		return
	}
	// Waterfall order: by start offset; on ties the longer span first,
	// so a parent precedes children started in the same microsecond.
	// (End order is insertion order, which has children before parents.)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].OffsetUS != spans[j].OffsetUS {
			return spans[i].OffsetUS < spans[j].OffsetUS
		}
		return spans[i].DurationUS > spans[j].DurationUS
	})
	td := TraceData{
		TraceID:     rec.id.String(),
		Root:        rec.rootName,
		Start:       rec.start,
		DurationUS:  dur.Microseconds(),
		HeadSampled: rec.sampled,
		Slow:        slow,
		Errored:     errored,
		Spans:       spans,
	}
	if rec.remote.IsValid() {
		td.RemoteParent = rec.remote.String()
	}
	t.keep(td)
}

// ctxKeySpan carries the active span through a context.
const ctxKeySpan ctxKey = 100

// StartRoot begins a new trace with a fresh trace ID and returns its
// root span in a derived context. On a nil tracer it returns ctx and a
// nil (no-op) span.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	return t.startRoot(ctx, name, SpanContext{})
}

// StartRootRemote begins a trace continuing a remote caller's trace
// context (an inbound W3C traceparent): the trace keeps the caller's
// trace ID and the root span links to the caller's span ID.
func (t *Tracer) StartRootRemote(ctx context.Context, name string, remote SpanContext) (context.Context, *Span) {
	return t.startRoot(ctx, name, remote)
}

func (t *Tracer) startRoot(ctx context.Context, name string, remote SpanContext) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	traceID := remote.TraceID
	if !traceID.IsValid() {
		traceID = t.newTraceID()
	}
	rec := newTraceRec(t, traceID, t.now(), t.headSample())
	rec.rootName = name
	rec.remote = remote.SpanID
	span := &Span{
		rec:  rec,
		root: true,
		data: SpanData{
			TraceID: traceID.String(),
			SpanID:  t.newSpanID().String(),
			Name:    name,
			start:   rec.start,
		},
	}
	if remote.SpanID.IsValid() {
		span.data.ParentID = remote.SpanID.String()
	}
	return context.WithValue(ctx, ctxKeySpan, span), span
}

// StartSpan begins a child of the span carried by ctx. When ctx holds
// no span (tracing disabled, or a code path outside a traced request)
// it returns ctx and a nil span, whose methods are all no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.startChild(ctx, name, parent.rec.tracer.now())
}

func (parent *Span) startChild(ctx context.Context, name string, start time.Time) (context.Context, *Span) {
	rec := parent.rec
	span := &Span{
		rec: rec,
		data: SpanData{
			TraceID:  parent.data.TraceID,
			SpanID:   rec.tracer.newSpanID().String(),
			ParentID: parent.data.SpanID,
			Name:     name,
			start:    start,
		},
	}
	return context.WithValue(ctx, ctxKeySpan, span), span
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKeySpan).(*Span)
	return s
}

// TraceIDFromContext returns the active trace ID in hex, or "". This is
// the join key across the three pillars: the same string appears in
// log records, histogram exemplars, and /debug/traces.
func TraceIDFromContext(ctx context.Context) string {
	return SpanFromContext(ctx).TraceID()
}
