package experiments

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/mmap"
	"repro/internal/prob"
)

// StorageResult compares the two storage backends of the graph layer —
// the mutable Builder and the frozen CSR view — plus the two snapshot
// formats. The CI bench-compare job gates on the speedups being > 1 and
// on ResultsIdentical: the frozen view must be strictly faster AND
// answer every query exactly like the builder it was frozen from.
type StorageResult struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`

	// ns/op over the same operation mix on each backend.
	LookupBuilderNs      float64 `json:"lookup_builder_ns"`
	LookupFrozenNs       float64 `json:"lookup_frozen_ns"`
	DescendantsBuilderNs float64 `json:"descendants_builder_ns"`
	DescendantsFrozenNs  float64 `json:"descendants_frozen_ns"`
	HasPathBuilderNs     float64 `json:"haspath_builder_ns"`
	HasPathFrozenNs      float64 `json:"haspath_frozen_ns"`

	// Snapshot formats: bytes on disk and load wall time (both formats
	// loaded through the same LoadFrozen entry point).
	SaveV1Bytes  int     `json:"save_v1_bytes"`
	SaveV2Bytes  int     `json:"save_v2_bytes"`
	LoadV1Millis float64 `json:"load_v1_ms"`
	LoadV2Millis float64 `json:"load_v2_ms"`

	LookupSpeedup      float64 `json:"lookup_speedup"`
	DescendantsSpeedup float64 `json:"descendants_speedup"`
	HasPathSpeedup     float64 `json:"haspath_speedup"`
	LoadSpeedup        float64 `json:"load_speedup"`

	// Memory-mapped serving (FORMATS.md rev-3 layout): the copying
	// loader decodes the same file onto the heap; the mapped loader
	// validates the header and points the CSR arrays and label arena
	// into the mapping. First-query cost is the cold batch right after
	// each load — the page-fault bill mmap defers from load time to
	// first touch. The GC numbers show what each resident graph costs a
	// forced collection: the mapped arrays are off-heap, so the
	// collector neither scans nor retains them.
	LoadCopyMillis       float64 `json:"load_copy_ms"`
	LoadMmapMillis       float64 `json:"load_mmap_ms"`
	MmapLoadSpeedup      float64 `json:"mmap_load_speedup"`
	MmapZeroCopy         bool    `json:"mmap_zero_copy"`
	FirstQueryCopyMicros float64 `json:"first_query_copy_us"`
	FirstQueryMmapMicros float64 `json:"first_query_mmap_us"`
	GCPauseCopyMicros    float64 `json:"gc_pause_copy_us"`
	GCPauseMmapMicros    float64 `json:"gc_pause_mmap_us"`
	HeapCopyBytes        uint64  `json:"heap_copy_bytes"`
	HeapMmapBytes        uint64  `json:"heap_mmap_bytes"`

	// ResultsIdentical is true when the frozen CSR view and the builder
	// answer the whole Reader surface plus the ranked query surfaces
	// identically on the corpus-built taxonomy.
	ResultsIdentical bool `json:"results_identical"`
}

// storageBenchGraph is the measurement substrate: a taxonomy-shaped DAG
// large enough (≈105k nodes) that the working set outgrows L1/L2, the
// regime the CSR layout exists for. The corpus-built graph stays the
// witness for ResultsIdentical; timings need the bigger graph to be
// insensitive to cache luck.
func storageBenchGraph() *graph.Builder {
	rng := rand.New(rand.NewSource(3))
	b := graph.NewBuilder()
	var roots, mids []graph.NodeID
	for i := 0; i < 200; i++ {
		roots = append(roots, b.Intern(fmt.Sprintf("root%d", i)))
	}
	for i := 0; i < 5000; i++ {
		m := b.Intern(fmt.Sprintf("mid%d", i))
		mids = append(mids, m)
		b.AddEdge(roots[rng.Intn(len(roots))], m, int64(rng.Intn(20)+1), rng.Float64())
	}
	for i := 0; i < 100000; i++ {
		l := b.Intern(fmt.Sprintf("leaf%d", i))
		b.AddEdge(mids[rng.Intn(len(mids))], l, int64(rng.Intn(20)+1), rng.Float64())
		if rng.Intn(4) == 0 {
			b.AddEdge(roots[rng.Intn(len(roots))], l, 1, rng.Float64())
		}
	}
	return b
}

// nsPerOp times fn (which performs ops operations) over reps runs and
// returns the fastest per-op time in nanoseconds.
func nsPerOp(reps, ops int, fn func()) float64 {
	return minSeconds(reps, fn) * 1e9 / float64(ops)
}

// readerFingerprint renders the full Reader surface of g into one
// comparable string: shape, per-node adjacency, closures and paths on a
// deterministic node sample, and the derived node classes and levels.
func readerFingerprint(g graph.Reader, sample int) string {
	var sb strings.Builder
	n := g.NumNodes()
	fmt.Fprintf(&sb, "nodes=%d edges=%d\n", n, g.NumEdges())
	fmt.Fprintf(&sb, "roots=%v\nconcepts=%d\ninstances=%d\n",
		idLabels(g, g.Roots()), len(g.Concepts()), len(g.Instances()))
	levels, err := g.TopoLevels()
	fmt.Fprintf(&sb, "levels=%d err=%v\n", len(levels), err)
	if n == 0 {
		return sb.String()
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < sample; i++ {
		id := graph.NodeID(rng.Intn(n))
		other := graph.NodeID(rng.Intn(n))
		fmt.Fprintf(&sb, "%d:%s kind=%v out=%v in=%v desc=%v anc=%v path(%d)=%v\n",
			id, g.Label(id), g.Kind(id), g.Children(id), g.Parents(id),
			g.Descendants(id), g.Ancestors(id), other, g.HasPath(id, other))
	}
	return sb.String()
}

func idLabels(g graph.Reader, ids []graph.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Label(id)
	}
	return out
}

// rankedFingerprint renders the ranked query surfaces of a typicality
// engine bound to g: top instances per concept, top concepts per
// instance sample.
func rankedFingerprint(g graph.Reader, t *prob.Typicality, sample int) string {
	var sb strings.Builder
	concepts := g.Concepts()
	for i := 0; i < len(concepts) && i < sample; i++ {
		fmt.Fprintf(&sb, "inst(%s)=%v\n", g.Label(concepts[i]), prob.TopK(t.InstancesOf(concepts[i]), 10))
	}
	instances := g.Instances()
	stride := 1
	if len(instances) > sample {
		stride = len(instances) / sample
	}
	for i := 0; i < len(instances); i += stride {
		fmt.Fprintf(&sb, "conc(%s)=%v\n", g.Label(instances[i]), prob.TopK(t.ConceptsOf(instances[i]), 10))
	}
	return sb.String()
}

// StorageExp measures the Builder-vs-Frozen read path and the v1-vs-v2
// snapshot formats, and verifies the two backends are observably
// identical on the corpus-built taxonomy.
func (s *Setup) StorageExp() (*StorageResult, string) {
	res := &StorageResult{}
	const reps = 5

	b := storageBenchGraph()
	f := b.Freeze()
	res.Nodes, res.Edges = f.NumNodes(), f.NumEdges()

	// Lookup: the same label mix (presents plus misses) on each backend.
	rng := rand.New(rand.NewSource(2))
	labels := make([]string, 1024)
	for i := range labels {
		if i%8 == 7 {
			labels[i] = fmt.Sprintf("miss%d", i)
			continue
		}
		labels[i] = f.Label(graph.NodeID(rng.Intn(f.NumNodes())))
	}
	const lookupOps = 200000
	res.LookupBuilderNs = nsPerOp(reps, lookupOps, func() {
		for i := 0; i < lookupOps; i++ {
			b.Lookup(labels[i%len(labels)])
		}
	})
	res.LookupFrozenNs = nsPerOp(reps, lookupOps, func() {
		for i := 0; i < lookupOps; i++ {
			f.Lookup(labels[i%len(labels)])
		}
	})

	// Closure traversal from the wide roots, and reachability probes
	// root -> random node (hits and misses mixed).
	const closureOps = 400
	res.DescendantsBuilderNs = nsPerOp(reps, closureOps, func() {
		for i := 0; i < closureOps; i++ {
			b.Descendants(graph.NodeID(i % 200))
		}
	})
	res.DescendantsFrozenNs = nsPerOp(reps, closureOps, func() {
		for i := 0; i < closureOps; i++ {
			f.Descendants(graph.NodeID(i % 200))
		}
	})
	targets := make([]graph.NodeID, 512)
	for i := range targets {
		targets[i] = graph.NodeID(rng.Intn(f.NumNodes()))
	}
	const pathOps = 512
	res.HasPathBuilderNs = nsPerOp(reps, pathOps, func() {
		for i := 0; i < pathOps; i++ {
			b.HasPath(graph.NodeID(i%200), targets[i%len(targets)])
		}
	})
	res.HasPathFrozenNs = nsPerOp(reps, pathOps, func() {
		for i := 0; i < pathOps; i++ {
			f.HasPath(graph.NodeID(i%200), targets[i%len(targets)])
		}
	})

	// Snapshot formats, both loaded through LoadFrozen.
	var v1, v2 bytes.Buffer
	if err := graph.WriteSnapshot(&v1, b, 1); err != nil {
		panic(err)
	}
	if err := graph.WriteSnapshot(&v2, f, 2); err != nil {
		panic(err)
	}
	res.SaveV1Bytes, res.SaveV2Bytes = v1.Len(), v2.Len()
	res.LoadV1Millis = minSeconds(reps, func() {
		if _, err := graph.LoadFrozen(bytes.NewReader(v1.Bytes())); err != nil {
			panic(err)
		}
	}) * 1e3
	res.LoadV2Millis = minSeconds(reps, func() {
		if _, err := graph.LoadFrozen(bytes.NewReader(v2.Bytes())); err != nil {
			panic(err)
		}
	}) * 1e3

	// Mmap vs copy, measured from a real file so the mapped loader takes
	// its production path (page cache, not a bytes.Reader).
	dir, err := os.MkdirTemp("", "probase-storage-bench")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	benchPath := filepath.Join(dir, "bench.pbc2")
	if err := os.WriteFile(benchPath, v2.Bytes(), 0o644); err != nil {
		panic(err)
	}
	res.LoadCopyMillis = minSeconds(reps, func() {
		fh, err := os.Open(benchPath)
		if err != nil {
			panic(err)
		}
		if _, err := graph.LoadFrozen(bufio.NewReader(fh)); err != nil {
			panic(err)
		}
		fh.Close()
	}) * 1e3
	res.LoadMmapMillis = minSeconds(reps, func() {
		m, err := mmap.Open(benchPath)
		if err != nil {
			panic(err)
		}
		g, err := graph.LoadMapped(m.Bytes(), m)
		if err != nil {
			panic(err)
		}
		g.Close()
	}) * 1e3

	// Cold first-query batch and GC cost, one fresh load per mode. The
	// copy graph is measured first and dropped before the mapped
	// measurements so the heap numbers describe one resident graph each.
	firstQueryMicros := func(g graph.Reader) float64 {
		start := time.Now()
		touched := 0
		for i := 0; i < closureOps; i++ {
			touched += len(g.Descendants(graph.NodeID(i % 200)))
		}
		if touched == 0 {
			panic("cold query batch traversed nothing")
		}
		return time.Since(start).Seconds() * 1e6
	}
	gcCost := func(g graph.Reader) (heap uint64, pauseMicros float64) {
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		runtime.KeepAlive(g)
		return m1.HeapAlloc, float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e3
	}
	fh, err := os.Open(benchPath)
	if err != nil {
		panic(err)
	}
	gcopy, err := graph.LoadFrozen(bufio.NewReader(fh))
	if err != nil {
		panic(err)
	}
	fh.Close()
	res.FirstQueryCopyMicros = firstQueryMicros(gcopy)
	res.HeapCopyBytes, res.GCPauseCopyMicros = gcCost(gcopy)
	gcopy = nil
	_ = gcopy
	m, err := mmap.Open(benchPath)
	if err != nil {
		panic(err)
	}
	gm, err := graph.LoadMapped(m.Bytes(), m)
	if err != nil {
		panic(err)
	}
	res.MmapZeroCopy = gm.Mapped()
	res.FirstQueryMmapMicros = firstQueryMicros(gm)
	res.HeapMmapBytes, res.GCPauseMmapMicros = gcCost(gm)
	gm.Close()

	res.LookupSpeedup = res.LookupBuilderNs / res.LookupFrozenNs
	res.DescendantsSpeedup = res.DescendantsBuilderNs / res.DescendantsFrozenNs
	res.HasPathSpeedup = res.HasPathBuilderNs / res.HasPathFrozenNs
	res.LoadSpeedup = res.LoadV1Millis / res.LoadV2Millis
	res.MmapLoadSpeedup = res.LoadCopyMillis / res.LoadMmapMillis

	// Equivalence on the corpus-built taxonomy: thaw the frozen graph
	// back into a builder and compare the whole Reader surface plus the
	// ranked query surfaces through a rebound typicality engine.
	fg := s.PB.Graph
	bg := graph.NewBuilderFrom(fg)
	res.ResultsIdentical = readerFingerprint(fg, 300) == readerFingerprint(bg, 300)
	if res.ResultsIdentical {
		rebound, err := s.PB.Rebind(bg)
		if err != nil {
			panic(err)
		}
		res.ResultsIdentical =
			rankedFingerprint(fg, s.PB.Typicality(), 100) == rankedFingerprint(bg, rebound.Typicality(), 100)
	}

	rows := [][]string{
		{"lookup ns/op", fmt.Sprintf("%.1f", res.LookupBuilderNs), fmt.Sprintf("%.1f", res.LookupFrozenNs), fmt.Sprintf("%.2fx", res.LookupSpeedup)},
		{"descendants ns/op", fmt.Sprintf("%.0f", res.DescendantsBuilderNs), fmt.Sprintf("%.0f", res.DescendantsFrozenNs), fmt.Sprintf("%.2fx", res.DescendantsSpeedup)},
		{"haspath ns/op", fmt.Sprintf("%.0f", res.HasPathBuilderNs), fmt.Sprintf("%.0f", res.HasPathFrozenNs), fmt.Sprintf("%.2fx", res.HasPathSpeedup)},
		{"snapshot bytes", itoa(res.SaveV1Bytes), itoa(res.SaveV2Bytes), "-"},
		{"load ms", fmt.Sprintf("%.2f", res.LoadV1Millis), fmt.Sprintf("%.2f", res.LoadV2Millis), fmt.Sprintf("%.2fx", res.LoadSpeedup)},
		{"load ms (copy vs mmap)", fmt.Sprintf("%.2f", res.LoadCopyMillis), fmt.Sprintf("%.2f", res.LoadMmapMillis), fmt.Sprintf("%.2fx", res.MmapLoadSpeedup)},
		{"first-query µs", fmt.Sprintf("%.0f", res.FirstQueryCopyMicros), fmt.Sprintf("%.0f", res.FirstQueryMmapMicros), "-"},
		{"gc pause µs", fmt.Sprintf("%.0f", res.GCPauseCopyMicros), fmt.Sprintf("%.0f", res.GCPauseMmapMicros), "-"},
		{"heap bytes", fmt.Sprintf("%d", res.HeapCopyBytes), fmt.Sprintf("%d", res.HeapMmapBytes), "-"},
	}
	title := fmt.Sprintf("Storage backends: builder vs frozen CSR on %d nodes / %d edges (results_identical=%v)",
		res.Nodes, res.Edges, res.ResultsIdentical)
	return res, table(title, []string{"metric", "builder/v1", "frozen/v2", "speedup"}, rows)
}
