package obs

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"net/http"
	"strings"
)

// TraceparentHeader is the W3C trace-context header carrying
// "version-traceid-spanid-flags" across process boundaries.
const TraceparentHeader = "traceparent"

// FlagSampled is the traceparent flag bit meaning "the caller sampled
// this trace".
const FlagSampled byte = 0x01

// SpanContext is the wire identity of a span: what a traceparent
// header encodes.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// Traceparent renders the context as a W3C traceparent header value,
// version 00.
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceID, sc.SpanID, sc.Flags)
}

// errMalformedTraceparent is returned for any header that does not
// parse; callers treat it as "no inbound trace context" — never as a
// request error, since the header is advisory.
var errMalformedTraceparent = errors.New("malformed traceparent")

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). Unknown future versions are
// accepted if the version-00 prefix fields parse (per the spec's
// forward-compatibility rule); all-zero trace or span IDs are invalid.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return sc, errMalformedTraceparent
	}
	ver, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isHex(ver) || ver == "ff" {
		return sc, errMalformedTraceparent
	}
	// Version 00 has exactly four fields; later versions may append more.
	if ver == "00" && len(parts) != 4 {
		return sc, errMalformedTraceparent
	}
	if len(traceID) != 32 || len(spanID) != 16 || len(flags) != 2 {
		return sc, errMalformedTraceparent
	}
	// The spec mandates lowercase hex; hex.Decode alone would also
	// accept uppercase.
	if !isHex(traceID) || !isHex(spanID) || !isHex(flags) {
		return sc, errMalformedTraceparent
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(traceID)); err != nil {
		return sc, errMalformedTraceparent
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(spanID)); err != nil {
		return sc, errMalformedTraceparent
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(flags)); err != nil {
		return sc, errMalformedTraceparent
	}
	sc.Flags = fb[0]
	if !sc.TraceID.IsValid() || !sc.SpanID.IsValid() {
		return sc, errMalformedTraceparent
	}
	return sc, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// Traceparent renders the span's identity as an outbound traceparent
// value, flagged as sampled (the trace is being recorded). Empty on a
// nil span.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("00-%s-%s-%02x", s.data.TraceID, s.data.SpanID, FlagSampled)
}

// Transport is a client-side http.RoundTripper that propagates the
// trace context of the request's context span as an outbound W3C
// traceparent header — the injection mirror of the middleware's
// extraction. Requests without a span in their context pass through
// untouched, so a single client serves both traced and untraced
// callers (probase-loadgen samples a fraction of its requests into
// traces this way and joins them with the server's /debug/traces by
// trace ID).
type Transport struct {
	// Base performs the actual round trip; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
}

// RoundTrip implements http.RoundTripper. The request is cloned before
// the header is added, per the RoundTripper contract that the original
// request must not be mutated.
func (t Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if sp := SpanFromContext(req.Context()); sp != nil {
		if tp := sp.Traceparent(); tp != "" {
			req = req.Clone(req.Context())
			req.Header.Set(TraceparentHeader, tp)
		}
	}
	return base.RoundTrip(req)
}

// Handler serves the tracer's ring buffer on /debug/traces, in the
// spirit of golang.org/x/net/trace: JSON by default (machine-joinable
// with log records and histogram exemplars on trace_id), or a minimal
// HTML waterfall with ?format=html. ?trace=<hex id> narrows to one
// trace.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces := t.Traces()
		if want := r.FormValue("trace"); want != "" {
			kept := traces[:0]
			for _, td := range traces {
				if td.TraceID == want {
					kept = append(kept, td)
				}
			}
			traces = kept
		}
		if r.FormValue("format") == "html" ||
			(r.FormValue("format") == "" && strings.Contains(r.Header.Get("Accept"), "text/html")) {
			writeTraceHTML(w, traces)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Traces []TraceData `json:"traces"`
		}{Traces: traces})
	})
}

// writeTraceHTML renders each trace as a waterfall table: one row per
// span, the bar positioned by offset and sized by duration relative to
// the root.
func writeTraceHTML(w http.ResponseWriter, traces []TraceData) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>/debug/traces</title><style>
body{font-family:monospace;margin:1em}
table{border-collapse:collapse;width:100%;margin-bottom:2em}
td,th{padding:2px 8px;text-align:left;border-bottom:1px solid #ddd;white-space:nowrap}
.lane{width:50%}.bar{background:#4a90d9;height:10px;min-width:1px}
.err .bar{background:#d9534f}.meta{color:#666}
</style></head><body><h1>traces</h1>
`)
	if len(traces) == 0 {
		fmt.Fprint(w, "<p>no traces kept yet</p>")
	}
	for _, td := range traces {
		total := td.DurationUS
		if total <= 0 {
			total = 1
		}
		tags := ""
		if td.Slow {
			tags += " slow"
		}
		if td.Errored {
			tags += " errored"
		}
		if !td.HeadSampled {
			tags += " tail-kept"
		}
		fmt.Fprintf(w, "<h2>%s</h2><p class=meta>root %s · %s · %dµs%s</p>\n",
			html.EscapeString(td.TraceID), html.EscapeString(td.Root),
			td.Start.Format("2006-01-02T15:04:05.000Z07:00"), td.DurationUS,
			html.EscapeString(tags))
		fmt.Fprint(w, "<table><tr><th>span</th><th>offset</th><th>duration</th><th class=lane></th></tr>\n")
		for _, sp := range td.Spans {
			cls := ""
			if sp.Status == "error" {
				cls = " class=err"
			}
			left := float64(sp.OffsetUS) / float64(total) * 100
			width := float64(sp.DurationUS) / float64(total) * 100
			name := sp.Name
			if len(sp.Attrs) > 0 {
				name += fmt.Sprintf(" %v", sp.Attrs)
			}
			fmt.Fprintf(w,
				"<tr%s><td>%s</td><td>%dµs</td><td>%dµs</td><td class=lane><div class=bar style=\"margin-left:%.1f%%;width:%.1f%%\"></div></td></tr>\n",
				cls, html.EscapeString(name), sp.OffsetUS, sp.DurationUS, left, width)
		}
		fmt.Fprint(w, "</table>\n")
	}
	fmt.Fprint(w, "</body></html>\n")
}
