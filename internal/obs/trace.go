package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	mrand "math/rand"
	"sync"
	"time"
)

// TraceID identifies one trace: a request's whole journey through the
// server, or one build-pipeline run. The all-zero value is invalid,
// matching the W3C trace-context contract.
type TraceID [16]byte

// SpanID identifies one span inside a trace. All-zero is invalid.
type SpanID [8]byte

// IsValid reports whether the ID is non-zero.
func (t TraceID) IsValid() bool { return t != TraceID{} }

// IsValid reports whether the ID is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// TracerConfig tunes a Tracer. The zero value records every trace into
// a default-sized ring buffer with real time and real randomness.
type TracerConfig struct {
	// SampleRate is the head-sampling probability in [0, 1]: the fraction
	// of traces kept regardless of outcome. Values >= 1 keep everything;
	// <= 0 keeps only what the tail rule catches.
	SampleRate float64
	// SlowThreshold is the tail rule: a trace whose root span lasts at
	// least this long is always kept, head-sampled or not. Zero disables
	// the rule. Errored traces (a span with error status, or an HTTP 5xx)
	// are always kept independently of this threshold.
	SlowThreshold time.Duration
	// BufferSize bounds the ring buffer of kept traces; the oldest trace
	// is evicted when full. Default 256.
	BufferSize int
	// Seed, when non-zero, makes the tracer fully deterministic: IDs and
	// sampling decisions come from a seeded math/rand source instead of
	// crypto/rand. For tests; leave zero in production.
	Seed int64
	// Clock overrides the time source (tests). Nil means time.Now.
	Clock func() time.Time
}

// Tracer creates spans and retains sampled traces in a bounded ring
// buffer. Safe for concurrent use. A nil *Tracer is a valid disabled
// tracer: StartRoot returns a no-op span.
type Tracer struct {
	cfg  TracerConfig
	ring *traceRing

	// rng is non-nil only when cfg.Seed != 0; guarded by rngMu.
	rngMu sync.Mutex
	rng   *mrand.Rand
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 256
	}
	t := &Tracer{cfg: cfg, ring: newTraceRing(cfg.BufferSize)}
	if cfg.Seed != 0 {
		t.rng = mrand.New(mrand.NewSource(cfg.Seed))
	}
	return t
}

func (t *Tracer) now() time.Time {
	if t.cfg.Clock != nil {
		return t.cfg.Clock()
	}
	return time.Now()
}

// randBytes fills b from the tracer's ID source: the seeded source when
// configured, crypto/rand otherwise, degrading to a process counter if
// the system source fails (IDs must never fail a request).
func (t *Tracer) randBytes(b []byte) {
	if t.rng != nil {
		t.rngMu.Lock()
		for i := range b {
			b[i] = byte(t.rng.Intn(256))
		}
		t.rngMu.Unlock()
		return
	}
	if _, err := rand.Read(b); err != nil {
		n := reqSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * (i % 8)))
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for !id.IsValid() {
		t.randBytes(id[:])
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for !id.IsValid() {
		t.randBytes(id[:])
	}
	return id
}

// headSample makes the head-sampling decision for a new trace. With a
// seeded source the decision sequence is deterministic.
func (t *Tracer) headSample() bool {
	if t.cfg.SampleRate >= 1 {
		return true
	}
	if t.cfg.SampleRate <= 0 {
		return false
	}
	if t.rng != nil {
		t.rngMu.Lock()
		v := t.rng.Float64()
		t.rngMu.Unlock()
		return v < t.cfg.SampleRate
	}
	var b [8]byte
	t.randBytes(b[:])
	// 53 bits of randomness -> uniform float in [0, 1).
	v := float64(binary.BigEndian.Uint64(b[:])>>11) / (1 << 53)
	return v < t.cfg.SampleRate
}

// Enabled reports whether the tracer records spans (a nil tracer does
// not).
func (t *Tracer) Enabled() bool { return t != nil }

// Traces returns the kept traces, newest first.
func (t *Tracer) Traces() []TraceData {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Trace returns the kept trace with the given hex ID.
func (t *Tracer) Trace(id string) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	for _, td := range t.ring.snapshot() {
		if td.TraceID == id {
			return td, true
		}
	}
	return TraceData{}, false
}

// keep offers a finalised trace to the ring buffer. Called
// synchronously from the root span's End, so once End returns the
// trace is visible to /debug/traces — there is no background flush to
// lose on shutdown.
func (t *Tracer) keep(td TraceData) { t.ring.add(td) }

// traceRing is a bounded FIFO of kept traces: when full, the oldest
// trace is evicted first.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceData
	next int // index of the next write
	n    int // traces currently held
}

func newTraceRing(size int) *traceRing {
	return &traceRing{buf: make([]TraceData, size)}
}

func (r *traceRing) add(td TraceData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = td
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// snapshot returns the held traces, newest first.
func (r *traceRing) snapshot() []TraceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceData, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
