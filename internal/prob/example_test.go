package prob_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prob"
)

// ExampleTypicality_InstancesOf shows Eq. 4 at work: indirect evidence
// through a sub-concept promotes Microsoft over IBM despite fewer direct
// sightings.
func ExampleTypicality_InstancesOf() {
	g := graph.NewStore()
	company := g.Intern("company")
	it := g.Intern("it company")
	ibm := g.Intern("IBM")
	ms := g.Intern("Microsoft")
	g.AddEdge(company, ibm, 50, 0.99)
	g.AddEdge(company, ms, 40, 0.99)
	g.AddEdge(company, it, 20, 0.95)
	g.AddEdge(it, ms, 30, 0.99)

	ty, err := prob.NewTypicality(g)
	if err != nil {
		panic(err)
	}
	for _, r := range ty.InstancesOf(company) {
		fmt.Printf("%s %.3f\n", r.Label, r.Score)
	}
	// Output:
	// Microsoft 0.578
	// IBM 0.422
}

// ExampleTypicality_ConceptsOfSet reproduces the paper's Example 1: a
// set of instances picks out the tightest concept describing all of them.
func ExampleTypicality_ConceptsOfSet() {
	g := graph.NewStore()
	country := g.Intern("country")
	bric := g.Intern("BRIC country")
	for _, c := range []string{"China", "India", "Brazil", "Russia"} {
		id := g.Intern(c)
		g.AddEdge(country, id, 20, 0.99)
		g.AddEdge(bric, id, 15, 0.99)
	}
	g.AddEdge(country, g.Intern("USA"), 80, 0.99)
	g.AddEdge(country, bric, 10, 0.9)

	ty, err := prob.NewTypicality(g)
	if err != nil {
		panic(err)
	}
	set := []graph.NodeID{g.Lookup("China"), g.Lookup("India"), g.Lookup("Brazil")}
	ranked, _ := ty.ConceptsOfSet(set)
	fmt.Println(ranked[0].Label)
	// Output:
	// BRIC country
}
