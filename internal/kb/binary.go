package kb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Binary snapshot format for Γ (little-endian):
//
//	magic    "PBKB"
//	version  uvarint (2)
//	strings  uvarint count, then per string: uvarint len + bytes
//	pairs    uvarint count, then per pair:
//	           uvarint xRef, uvarint yRef, uvarint n,
//	           uvarint evidence count, then per evidence:
//	             uvarint pattern, float64 pageScore, uvarint listLen,
//	             uvarint pos, byte negative, uvarint seq (version >= 2)
//	co       uvarint count, then per entry:
//	           uvarint xRef, uvarint aRef, uvarint bRef, uvarint n
//	crc32    uint32 (IEEE, over everything before it)
//
// Strings are interned once and referenced by index. Version 1 lacked
// the per-evidence seq field; v1 snapshots load with zero seqs (legacy
// arrival order), which is exactly the order they were written in.
const (
	kbMagic   = "PBKB"
	kbVersion = 2
)

var (
	// ErrBadKBSnapshot reports a structurally invalid Γ snapshot.
	ErrBadKBSnapshot = errors.New("kb: bad snapshot")
	// ErrKBChecksum reports Γ snapshot corruption.
	ErrKBChecksum = errors.New("kb: snapshot checksum mismatch")
)

type kbCRCWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *kbCRCWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

func putUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// Save writes a checksummed binary snapshot of Γ, including evidence and
// co-occurrence statistics.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()

	// Intern all strings deterministically.
	refs := make(map[string]uint64)
	var strs []string
	intern := func(v string) uint64 {
		if id, ok := refs[v]; ok {
			return id
		}
		id := uint64(len(strs))
		refs[v] = id
		strs = append(strs, v)
		return id
	}
	type pairRow struct {
		x, y string
	}
	var pairs []pairRow
	xs := make([]string, 0, len(s.bySuper))
	for x := range s.bySuper {
		xs = append(xs, x)
	}
	sort.Strings(xs)
	for _, x := range xs {
		ys := make([]string, 0, len(s.bySuper[x]))
		for y := range s.bySuper[x] {
			ys = append(ys, y)
		}
		sort.Strings(ys)
		for _, y := range ys {
			intern(x)
			intern(y)
			pairs = append(pairs, pairRow{x, y})
		}
	}
	// Evidence can reference pairs without counts; include those too.
	evOnly := make([]Pair, 0)
	for p := range s.evidence {
		if s.bySuper[p.X][p.Y] == 0 {
			evOnly = append(evOnly, p)
		}
	}
	sort.Slice(evOnly, func(i, j int) bool {
		if evOnly[i].X != evOnly[j].X {
			return evOnly[i].X < evOnly[j].X
		}
		return evOnly[i].Y < evOnly[j].Y
	})
	for _, p := range evOnly {
		intern(p.X)
		intern(p.Y)
		pairs = append(pairs, pairRow{p.X, p.Y})
	}
	coKeys := make([]string, 0, len(s.co))
	for k := range s.co {
		coKeys = append(coKeys, k)
	}
	sort.Strings(coKeys)
	coParts := make([][3]string, len(coKeys))
	for i, k := range coKeys {
		var fields [3]string
		start, fi := 0, 0
		for j := 0; j < len(k) && fi < 2; j++ {
			if k[j] == '\x1f' {
				fields[fi] = k[start:j]
				start = j + 1
				fi++
			}
		}
		fields[2] = k[start:]
		for _, f := range fields {
			intern(f)
		}
		coParts[i] = fields
	}

	bw := bufio.NewWriter(w)
	cw := &kbCRCWriter{w: bw}
	if _, err := cw.Write([]byte(kbMagic)); err != nil {
		return err
	}
	if err := putUvarint(cw, kbVersion); err != nil {
		return err
	}
	if err := putUvarint(cw, uint64(len(strs))); err != nil {
		return err
	}
	for _, v := range strs {
		if err := putUvarint(cw, uint64(len(v))); err != nil {
			return err
		}
		if _, err := cw.Write([]byte(v)); err != nil {
			return err
		}
	}
	if err := putUvarint(cw, uint64(len(pairs))); err != nil {
		return err
	}
	var f64 [8]byte
	for _, pr := range pairs {
		if err := putUvarint(cw, refs[pr.x]); err != nil {
			return err
		}
		if err := putUvarint(cw, refs[pr.y]); err != nil {
			return err
		}
		if err := putUvarint(cw, uint64(s.bySuper[pr.x][pr.y])); err != nil {
			return err
		}
		evs := s.evidence[Pair{X: pr.x, Y: pr.y}]
		if err := putUvarint(cw, uint64(len(evs))); err != nil {
			return err
		}
		for _, ev := range evs {
			if err := putUvarint(cw, uint64(ev.Pattern)); err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(ev.PageScore))
			if _, err := cw.Write(f64[:]); err != nil {
				return err
			}
			if err := putUvarint(cw, uint64(ev.ListLen)); err != nil {
				return err
			}
			if err := putUvarint(cw, uint64(ev.Pos)); err != nil {
				return err
			}
			neg := byte(0)
			if ev.Negative {
				neg = 1
			}
			if _, err := cw.Write([]byte{neg}); err != nil {
				return err
			}
			if err := putUvarint(cw, uint64(ev.Seq)); err != nil {
				return err
			}
		}
	}
	if err := putUvarint(cw, uint64(len(coKeys))); err != nil {
		return err
	}
	for i, k := range coKeys {
		for _, f := range coParts[i] {
			if err := putUvarint(cw, refs[f]); err != nil {
				return err
			}
		}
		if err := putUvarint(cw, uint64(s.co[k])); err != nil {
			return err
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save. The evidence cap of the
// returned store is unlimited.
//
// The whole section is slurped and checksummed in one pass, then parsed
// from the byte slice — a snapshot-restore hot path (a delta build loads
// Γ twice: the final store and the checkpoint's boundary store), so the
// decoder avoids per-byte reader and CRC overhead.
func Load(r io.Reader) (*Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadKBSnapshot, err)
	}
	if len(data) < len(kbMagic)+4 {
		return nil, fmt.Errorf("%w: truncated", ErrBadKBSnapshot)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if string(body[:len(kbMagic)]) != kbMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadKBSnapshot, body[:len(kbMagic)])
	}
	if binary.LittleEndian.Uint32(tail) != crc32.ChecksumIEEE(body) {
		return nil, ErrKBChecksum
	}
	pos := len(kbMagic)
	getUv := func(what string) (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: %s", ErrBadKBSnapshot, what)
		}
		pos += n
		return v, nil
	}
	version, err := getUv("version")
	if err != nil || version < 1 || version > kbVersion {
		return nil, fmt.Errorf("%w: version", ErrBadKBSnapshot)
	}
	nstrs, err := getUv("string count")
	if err != nil || nstrs > 1<<28 {
		return nil, fmt.Errorf("%w: string count", ErrBadKBSnapshot)
	}
	// Grow incrementally rather than pre-allocating nstrs entries: a
	// corrupt header must not be able to demand gigabytes up front.
	strs := make([]string, 0, minUint64(nstrs, 1<<16))
	for i := uint64(0); i < nstrs; i++ {
		ln, err := getUv("string length")
		if err != nil || ln > 1<<20 || uint64(len(body)-pos) < ln {
			return nil, fmt.Errorf("%w: string length", ErrBadKBSnapshot)
		}
		strs = append(strs, string(body[pos:pos+int(ln)]))
		pos += int(ln)
	}
	ref := func() (string, error) {
		id, err := getUv("string ref")
		if err != nil || id >= nstrs {
			return "", fmt.Errorf("%w: string ref", ErrBadKBSnapshot)
		}
		return strs[id], nil
	}
	s := NewStore(0)
	npairs, err := getUv("pair count")
	if err != nil || npairs > 1<<30 {
		return nil, fmt.Errorf("%w: pair count", ErrBadKBSnapshot)
	}
	// The loader holds the only reference, so the store is built by direct
	// field writes — no per-record locking. Save emits pairs grouped by
	// super and evidence lists already in canonical Seq order (v1 files
	// hold zero seqs in arrival order, which sorts identically), so rows
	// land with one inner-map lookup and a plain append.
	curX := ""
	var curYs map[string]int64
	for i := uint64(0); i < npairs; i++ {
		x, err := ref()
		if err != nil {
			return nil, err
		}
		y, err := ref()
		if err != nil {
			return nil, err
		}
		n, err := getUv("pair count field")
		if err != nil {
			return nil, err
		}
		if n > 0 {
			if x != curX || curYs == nil {
				curX = x
				curYs = s.bySuper[x]
				if curYs == nil {
					curYs = make(map[string]int64)
					s.bySuper[x] = curYs
				}
			}
			if curYs[y] == 0 {
				s.npairs++
			}
			curYs[y] += int64(n)
			xs := s.bySub[y]
			if xs == nil {
				xs = make(map[string]int64)
				s.bySub[y] = xs
			}
			xs[x] += int64(n)
			s.superTotal[x] += int64(n)
			s.subTotal[y] += int64(n)
			s.total += int64(n)
		}
		nev, err := getUv("evidence count")
		if err != nil || nev > 1<<20 {
			return nil, fmt.Errorf("%w: evidence count", ErrBadKBSnapshot)
		}
		var evs []Evidence
		if nev > 0 {
			evs = make([]Evidence, 0, minUint64(nev, 1<<12))
		}
		for j := uint64(0); j < nev; j++ {
			var ev Evidence
			pat, err := getUv("evidence pattern")
			if err != nil {
				return nil, err
			}
			ev.Pattern = int(pat)
			if len(body)-pos < 8 {
				return nil, fmt.Errorf("%w: evidence score", ErrBadKBSnapshot)
			}
			ev.PageScore = math.Float64frombits(binary.LittleEndian.Uint64(body[pos:]))
			pos += 8
			ll, err := getUv("evidence listlen")
			if err != nil {
				return nil, err
			}
			ev.ListLen = int(ll)
			p, err := getUv("evidence pos")
			if err != nil {
				return nil, err
			}
			ev.Pos = int(p)
			if pos >= len(body) {
				return nil, fmt.Errorf("%w: evidence flag", ErrBadKBSnapshot)
			}
			ev.Negative = body[pos] == 1
			pos++
			if version >= 2 {
				seq, err := getUv("evidence seq")
				if err != nil {
					return nil, err
				}
				ev.Seq = int64(seq)
			}
			// A corrupt seq order would silently break the delta-build
			// equivalence contract; fall back to sorted insertion.
			if len(evs) > 0 && ev.Seq < evs[len(evs)-1].Seq {
				k := sort.Search(len(evs), func(i int) bool { return evs[i].Seq > ev.Seq })
				evs = append(evs, Evidence{})
				copy(evs[k+1:], evs[k:])
				evs[k] = ev
				continue
			}
			evs = append(evs, ev)
		}
		if len(evs) > 0 {
			s.evidence[Pair{X: x, Y: y}] = evs
		}
	}
	nco, err := getUv("co count")
	if err != nil || nco > 1<<30 {
		return nil, fmt.Errorf("%w: co count", ErrBadKBSnapshot)
	}
	for i := uint64(0); i < nco; i++ {
		x, err := ref()
		if err != nil {
			return nil, err
		}
		a, err := ref()
		if err != nil {
			return nil, err
		}
		b, err := ref()
		if err != nil {
			return nil, err
		}
		n, err := getUv("co count field")
		if err != nil {
			return nil, err
		}
		if n > 0 && a != b {
			s.co[coKey(x, a, b)] += int64(n)
		}
	}
	return s, nil
}

func minUint64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
