package server

import (
	"container/list"
	"sync"
)

// Cache is a sharded LRU for hot query results. Keys are hashed to one
// of N shards (N rounded up to a power of two), each with its own lock
// and its own LRU list, so concurrent readers of different keys almost
// never contend on the same mutex. Values are opaque; the server stores
// fully marshalled response bodies so a hit skips both the query engine
// and JSON encoding.
type Cache struct {
	shards []*cacheShard
	mask   uint64
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element; element value is *cacheEntry
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache with shardCount shards (rounded up to a power
// of two, minimum 1) holding at most perShard entries each.
func NewCache(shardCount, perShard int) *Cache {
	n := 1
	for n < shardCount {
		n <<= 1
	}
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]*cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:   perShard,
			ll:    list.New(),
			items: make(map[string]*list.Element, perShard),
		}
	}
	return c
}

// fnv1a hashes the key for shard selection (FNV-1a, 64-bit).
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached value for key and bumps its recency.
func (c *Cache) Get(key string) ([]byte, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return nil, false
	}
	sh.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a value, evicting the shard's least recently used entry
// when the shard is full.
func (c *Cache) Put(key string, val []byte) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		sh.ll.MoveToFront(el)
		return
	}
	if sh.ll.Len() >= sh.cap {
		oldest := sh.ll.Back()
		if oldest != nil {
			sh.ll.Remove(oldest)
			delete(sh.items, oldest.Value.(*cacheEntry).key)
		}
	}
	sh.items[key] = sh.ll.PushFront(&cacheEntry{key: key, val: val})
}

// Purge empties every shard — called on snapshot swap, since cached
// response bodies answer for the snapshot that produced them. Shards
// are cleared one at a time; concurrent readers of other shards are
// unaffected. Returns the number of entries evicted (feeding the
// probase_cache_purged_entries gauge).
func (c *Cache) Purge() int {
	purged := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		purged += sh.ll.Len()
		sh.ll.Init()
		clear(sh.items)
		sh.mu.Unlock()
	}
	return purged
}

// Len returns the total number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Shards returns the shard count (for observability).
func (c *Cache) Shards() int { return len(c.shards) }

// ShardLen returns the number of entries in shard i (for the per-shard
// occupancy gauges).
func (c *Cache) ShardLen(i int) int {
	sh := c.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.ll.Len()
}
