package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchSelectedExperiments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-exp", "table1,fig10,extras", "-sentences", "4000", "-queries", "2000"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"Table 1", "Figure 10", "Overall extraction quality"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "Figure 9") {
		t.Error("unselected experiment ran")
	}
}

func TestBenchFigAliases(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-exp", "fig5", "-sentences", "4000", "-queries", "2000"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Figure 5") {
		t.Error("fig5 alias did not run the coverage sweep")
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-exp", "nonsense"}, &stdout, &stderr); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBenchBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "probase-bench version") {
		t.Errorf("stdout = %q", stdout.String())
	}
}
