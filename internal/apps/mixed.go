package apps

import (
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/prob"
)

// MixedAbstractor implements footnote 1 of the paper: abstraction from a
// *mixture* of instances and attributes — "headquarters, apple" should
// conceptualise to company, resolving "apple" to the company sense along
// the way. Instance evidence comes from the taxonomy's T(x|i); attribute
// evidence from the corpus's attribute mentions, projected onto concepts
// through the instances they attach to.
type MixedAbstractor struct {
	pb *core.Probase
	// attrConcepts maps an attribute word to concept-base-label weights.
	attrConcepts map[string]map[string]float64
}

// NewMixedAbstractor indexes the corpus's attribute mentions against the
// built taxonomy.
func NewMixedAbstractor(pb *core.Probase, sentences []corpus.Sentence) *MixedAbstractor {
	m := &MixedAbstractor{pb: pb, attrConcepts: make(map[string]map[string]float64)}
	for _, mention := range ParseAttributeMentions(sentences) {
		for _, r := range pb.ConceptsOf(mention.Instance, 3) {
			c := core.BaseLabel(r.Label)
			w := m.attrConcepts[strings.ToLower(mention.Attribute)]
			if w == nil {
				w = make(map[string]float64)
				m.attrConcepts[strings.ToLower(mention.Attribute)] = w
			}
			w[c] += r.Score
		}
	}
	// Normalise each attribute's concept distribution.
	for _, w := range m.attrConcepts {
		var sum float64
		for _, v := range w {
			sum += v
		}
		for c := range w {
			w[c] /= sum
		}
	}
	return m
}

// KnownAttribute reports whether the term was seen as an attribute.
func (m *MixedAbstractor) KnownAttribute(term string) bool {
	_, ok := m.attrConcepts[strings.ToLower(term)]
	return ok
}

// termVector builds a concept distribution for one term: attribute terms
// project through the attribute index; other terms through T(x|i), taking
// the best over the term's case interpretations ("apple" the fruit and
// "Apple" the company both contribute their concepts).
func (m *MixedAbstractor) termVector(term string) map[string]float64 {
	if w, ok := m.attrConcepts[strings.ToLower(term)]; ok {
		return w
	}
	out := make(map[string]float64)
	for _, variant := range caseVariants(term) {
		for _, r := range m.pb.ConceptsOf(variant, 8) {
			c := core.BaseLabel(r.Label)
			if r.Score > out[c] {
				out[c] = r.Score
			}
		}
	}
	return out
}

// caseVariants returns the surface interpretations of a term: as typed,
// lower-cased, and Title-Cased — so "apple" reaches both the fruit node
// ("apple") and the company node ("Apple").
func caseVariants(term string) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	add(term)
	add(strings.ToLower(term))
	add(titleCase(term))
	add(strings.ToUpper(term))
	return out
}

func titleCase(s string) string {
	fields := strings.Fields(strings.ToLower(s))
	for i, f := range fields {
		fields[i] = strings.ToUpper(f[:1]) + f[1:]
	}
	return strings.Join(fields, " ")
}

// Abstract conceptualises a mixed term set: score(c) = Σ_t log(v_t(c)+ε)
// over the per-term concept distributions, i.e. the concept that best
// explains *every* term wins — "headquarters" vetoes the fruit reading of
// "apple".
func (m *MixedAbstractor) Abstract(terms []string, k int) []prob.Ranked {
	const eps = 1e-6
	scores := make(map[string]float64)
	candidates := make(map[string]bool)
	vectors := make([]map[string]float64, 0, len(terms))
	for _, t := range terms {
		v := m.termVector(t)
		if len(v) == 0 {
			continue // unknown term: ignored, as in ConceptsOfSet
		}
		vectors = append(vectors, v)
		for c := range v {
			candidates[c] = true
		}
	}
	if len(vectors) == 0 {
		return nil
	}
	cands := make([]string, 0, len(candidates))
	for c := range candidates {
		cands = append(cands, c)
	}
	sort.Strings(cands)
	var norm float64
	for _, c := range cands {
		sc := 0.0
		for _, v := range vectors {
			sc += math.Log(v[c] + eps)
		}
		scores[c] = math.Exp(sc)
		norm += scores[c]
	}
	out := make([]prob.Ranked, 0, len(cands))
	for _, c := range cands {
		s := scores[c]
		if norm > 0 {
			s /= norm
		}
		out = append(out, prob.Ranked{Label: c, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Label < out[j].Label
	})
	return prob.TopK(out, k)
}
