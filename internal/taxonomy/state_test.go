package taxonomy

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/extraction"
)

// TestMergeMatchesMonolithicEngine checks the per-label replay against
// the original whole-corpus engine: running every local through one
// global engine (horizontal fixpoint, adoption, vertical links) must
// produce the same cluster multiset and link set as Merge + the
// Assemble-side link rule. This is the equivalence the staged refactor
// rests on.
func TestMergeMatchesMonolithicEngine(t *testing.T) {
	groups := benchGroups(4000)
	sim := AbsoluteOverlap{Delta: 2}

	var locals []*Local
	for _, g := range groups {
		if g.Super == "" || len(g.Subs) == 0 {
			continue
		}
		locals = append(locals, NewLocal(g.Super, g.Subs))
	}
	eng := newEngine(locals, sim)
	eng.runHorizontalParallel(1)
	eng.adoptFragments()
	eng.runVerticalParallel(1)

	state := Merge(groups, Config{})
	if got, want := stateFingerprint(state, sim), eng.fingerprint(); got != want {
		t.Fatalf("per-label merge state diverges from monolithic engine (%d vs %d bytes)",
			len(got), len(want))
	}
}

// TestMergeDeltaMatchesFullMerge: rebuilding only dirty labels over the
// full group list must reproduce the from-scratch merge state exactly.
func TestMergeDeltaMatchesFullMerge(t *testing.T) {
	groups := benchGroups(3000)
	split := len(groups) * 9 / 10
	base, delta := groups[:split], groups[split:]

	dirtySet := make(map[string]bool)
	for _, g := range delta {
		dirtySet[g.Super] = true
	}
	var dirty []string
	for r := range dirtySet {
		dirty = append(dirty, r)
	}

	prev := Merge(base, Config{})
	got := MergeDelta(prev, groups, dirty, Config{})
	want := Merge(groups, Config{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta merge state differs: %d vs %d labels", len(got.Labels), len(want.Labels))
	}
	if res := Assemble(got, Config{}); res.Graph.NumNodes() == 0 {
		t.Fatal("assembled delta state produced empty graph")
	}
}

// TestMergeDeltaRebuildsOnLocalCountMismatch: a label wrongly reported
// clean whose group list grew anyway must be rebuilt, not trusted.
func TestMergeDeltaRebuildsOnLocalCountMismatch(t *testing.T) {
	base := []extraction.Group{
		{Super: "animal", Subs: []string{"cat", "dog"}, Order: 1},
		{Super: "animal", Subs: []string{"cat", "dog", "fox"}, Order: 2},
	}
	all := append(append([]extraction.Group(nil), base...),
		extraction.Group{Super: "animal", Subs: []string{"cat", "dog", "owl"}, Order: 3})
	prev := Merge(base, Config{})
	got := MergeDelta(prev, all, nil, Config{}) // lie: no dirty roots
	want := Merge(all, Config{})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("defensive rebuild did not trigger on local-count mismatch")
	}
}

// TestMergeDeltaDropsVanishedLabels: labels present in prev but absent
// from the group list (a provisional group dissolved on replay) must not
// leak into the delta state.
func TestMergeDeltaDropsVanishedLabels(t *testing.T) {
	prev := Merge([]extraction.Group{
		{Super: "ghost", Subs: []string{"a", "b"}, Order: 1},
		{Super: "animal", Subs: []string{"cat", "dog"}, Order: 2},
	}, Config{})
	all := []extraction.Group{{Super: "animal", Subs: []string{"cat", "dog"}, Order: 2}}
	got := MergeDelta(prev, all, []string{"ghost"}, Config{})
	for _, ls := range got.Labels {
		if ls.Label == "ghost" {
			t.Fatal("vanished label survived the delta merge")
		}
	}
}

// TestBuildEqualsMergeAssemble: the staged entry points compose to the
// same result as Build, including stats and sense naming.
func TestBuildEqualsMergeAssemble(t *testing.T) {
	groups := benchGroups(2000)
	cfg := Config{MinSenseEvidence: 2}
	whole := Build(groups, cfg)
	staged := Assemble(Merge(groups, cfg), cfg)
	if whole.Stats != staged.Stats {
		t.Fatalf("stats diverge:\n whole  %+v\n staged %+v", whole.Stats, staged.Stats)
	}
	if !reflect.DeepEqual(whole.Senses, staged.Senses) {
		t.Fatal("sense maps diverge")
	}
	var a, b bytes.Buffer
	if err := whole.Graph.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := staged.Graph.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("frozen graphs diverge")
	}
}

func TestStateRoundTrip(t *testing.T) {
	state := Merge(benchGroups(1500), Config{})
	var buf bytes.Buffer
	if err := EncodeState(&buf, state); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	got, err := DecodeState(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, state) {
		t.Fatal("state round trip mismatch")
	}
	if _, err := DecodeState(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Fatal("truncated state decoded without error")
	}
}
