// Package repro is a from-scratch Go reproduction of "Probase: A
// Probabilistic Taxonomy for Text Understanding" (Wu, Li, Wang, Zhu —
// SIGMOD 2012), built entirely on the standard library.
//
// # Pipeline packages
//
// The corpus-to-snapshot pipeline runs through four layers, one per
// paper algorithm (ARCHITECTURE.md draws the full data flow):
//
//   - internal/extraction — Algorithm 1, the iterative semantic
//     extractor: Hearst-pattern sentences are resolved against the
//     knowledge Γ accumulated in earlier rounds, to fixpoint.
//   - internal/taxonomy — Algorithm 2, the sense-aware taxonomy
//     builder: per-sentence local taxonomies merge horizontally (sense
//     clustering) and vertically (parent/child linking), then assemble
//     into a DAG with cycle refusal.
//   - internal/prob — the Section 4 probabilistic layer: plausibility
//     P(x,y) (Naive Bayes evidence model + noisy-or) and typicality
//     T(i|x)/T(x|i) over reachability probabilities from Algorithm 3's
//     level-order DP.
//   - internal/core — the public facade wiring the three together:
//     Build / InstancesOf / ConceptsOf / Conceptualize / Plausibility /
//     Save / Load.
//
// # Substrates
//
//   - internal/nlp, internal/hearst — tokeniser, morphology, and the
//     six Hearst patterns with all ambiguous readings kept.
//   - internal/kb — Γ, the pair/evidence store.
//   - internal/graph — embedded graph engine (the Trinity stand-in)
//     with checksummed binary snapshots (FORMATS.md). Frozen, the CSR
//     serve-side view, is backed either by owned heap slices or by
//     zero-copy views into a memory-mapped revision-3 snapshot
//     (LoadMapped + the off-heap label arena), byte-identical either
//     way.
//   - internal/mmap — minimal read-only memory-mapping wrapper
//     (syscall.Mmap on unix, a read-into-heap fallback elsewhere or
//     under the probase_nommap build tag) whose Mapping is the closer
//     that travels with a mapped Frozen.
//   - internal/corpus, internal/querylog — the seeded synthetic world,
//     corpus generator, and Zipf query log that replace the paper's
//     web-scale inputs with ground truth retained.
//   - internal/parallel — the dependency-free worker pool every
//     parallel build stage shares; its package docs state the
//     concurrency and determinism contract.
//   - internal/obs — stage telemetry (StageReporter), build/request
//     tracing, Prometheus metrics, structured logging.
//
// # Evaluation and serving
//
//   - internal/baseline — the syntactic-iteration extractor and the
//     reference-taxonomy comparators (WordNet/YAGO/Freebase shapes).
//   - internal/apps — the Section 5.3 applications: semantic search,
//     short-text conceptualisation, web tables, attributes, NER.
//   - internal/eval, internal/experiments — metrics and one function
//     per paper table/figure; cmd/probase-bench regenerates them all.
//   - internal/server, internal/snapshot — the concurrent HTTP query
//     service (cmd/probase-serve) with a sharded hot-query cache,
//     refcounted snapshot epochs behind zero-downtime reload (SIGHUP /
//     POST /v1/admin/reload), and mmap-or-heap snapshot opening
//     (snapshot.Open / snapshot.OpenMapped); see the server package
//     docs for the endpoint contract and OPERATIONS.md for the
//     runbook.
//   - internal/loadgen — closed-loop load generator over the six serve
//     endpoints: deterministic seeded request plans,
//     coordinated-omission correction, and the SLO gate behind CI's
//     capacity-smoke job.
//   - internal/hdr — the dependency-free HDR-style log-linear latency
//     histogram (documented quantile-error bound) shared by loadgen's
//     client-side measurements and the server's rolling windows.
//   - internal/window — sliding time-bucket rings aggregating
//     per-endpoint RED stats over rolling 1m/5m/30m windows, plus the
//     multi-window SLO burn-rate engine behind the probase_slo_*
//     gauges and the healthz ok|degraded status.
//   - internal/sketch — Space-Saving top-k heavy-hitter summaries
//     (bounded error, deterministic merge/eviction) tracking hot query
//     keys per endpoint.
//   - internal/benchfmt — the report envelope schema and validator
//     shared by probase-bench, probase-loadgen, probase-inspect, and
//     /v1/admin/traffic (each under its own schema marker).
//   - internal/taxstats — the snapshot health profile: deterministic
//     structural counts, degree/depth histograms, score distributions
//     (plausibility, typicality, instance-conceptualisation entropy),
//     a backend-independent graph fingerprint, and profile diffing
//     with a threshold-gated drift budget. Feeds the
//     probase_snapshot_* gauges, /v1/admin/stats, and probase-inspect.
//
// The binaries under cmd/ wire these into a toolchain: corpusgen
// (corpus), probase-build (corpus → snapshot, with -workers sizing the
// shared pool), probase-query (CLI queries), probase-serve (HTTP),
// probase-bench (the evaluation), probase-loadgen (capacity
// measurement against a live server), probase-inspect (snapshot
// health profiles and the drift gate between them), and probase-top
// (live per-endpoint traffic, hot keys, and SLO burn rate from a
// running server).
//
// See README.md for the overview, ARCHITECTURE.md for the pipeline and
// determinism contract, DESIGN.md for the system inventory and
// experiment index, EXPERIMENTS.md for paper-vs-measured results,
// FORMATS.md for the snapshot wire formats, and OPERATIONS.md for the
// serving runbook.
package repro
