package graph

import "unsafe"

// labelArena is the node-label store of a Frozen view: one contiguous
// byte region holding every label back-to-back, plus an offset table of
// length n+1 so label i is data[off[i]:off[i+1]]. It replaces the
// earlier []string representation for two reasons:
//
//   - one allocation instead of one per label, so a copy-loaded
//     taxonomy contributes two GC objects rather than millions, and
//   - both slices can be *views into a memory-mapped snapshot*
//     (graph.LoadMapped): the labels then never touch the Go heap at
//     all, and label lookups read the page cache directly.
//
// label() materialises a string header over the arena bytes without
// copying (unsafe.String). The returned strings alias the arena: they
// are valid exactly as long as the arena's backing store — for a
// mapped Frozen, until Frozen.Close unmaps it. Everything that must
// outlive the snapshot (metrics labels, cached profiles) has to copy;
// within the graph package the strings are only compared and hashed.
type labelArena struct {
	off  []uint32
	data []byte
}

// arenaFromLabels packs owned label strings into a fresh heap arena —
// the Freeze / copying-load path.
func arenaFromLabels(labels []string) labelArena {
	off := make([]uint32, len(labels)+1)
	total := 0
	for i, l := range labels {
		off[i] = uint32(total)
		total += len(l)
	}
	off[len(labels)] = uint32(total)
	data := make([]byte, 0, total)
	for _, l := range labels {
		data = append(data, l...)
	}
	return labelArena{off: off, data: data}
}

// count returns the number of labels.
func (a *labelArena) count() int {
	if len(a.off) == 0 {
		return 0
	}
	return len(a.off) - 1
}

// label returns label id as a zero-copy string view into the arena.
func (a *labelArena) label(id NodeID) string {
	lo, hi := a.off[id], a.off[id+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&a.data[lo], int(hi-lo))
}

// validate checks the arena invariants before anything slices into it:
// offsets start at 0, never decrease, end exactly at the data length,
// and no single label exceeds the format's label-length cap.
func (a *labelArena) validate() error {
	if len(a.off) == 0 || a.off[0] != 0 {
		return errBadSnapshotf("label arena offsets must start at 0")
	}
	if a.off[len(a.off)-1] != uint32(len(a.data)) {
		return errBadSnapshotf("label arena offsets do not span the data section")
	}
	for i := 1; i < len(a.off); i++ {
		if a.off[i] < a.off[i-1] {
			return errBadSnapshotf("label arena offsets decrease at label %d", i-1)
		}
		if a.off[i]-a.off[i-1] > maxLabelLen {
			return errBadSnapshotf("label %d exceeds maximum length", i-1)
		}
	}
	return nil
}
