package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// DefBuckets are the default latency buckets in seconds: 100µs to 10s,
// with the implicit +Inf bucket on top. The 10s bucket matters for a
// service whose request deadline defaults to 5s — without it every
// degraded request collapsed into +Inf.
var DefBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// child is one labelled instance inside a metric family.
type child interface {
	labelSig() string
}

// Registry is a set of metric families, safe for concurrent use.
// Metrics are created (or fetched, when the same name and label set is
// requested twice) through the Counter/Gauge/GaugeFunc/Histogram
// methods; the whole registry renders via WritePrometheus or Handler.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type family struct {
	name, help string
	kind       metricKind
	bounds     []float64 // histograms only; shared by all children

	mu       sync.Mutex
	children map[string]child
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// famFor returns the family with the given name, creating it on first
// use. Re-registering a name with a different kind is a programming
// error and panics.
func (r *Registry) famFor(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name:     name,
			help:     help,
			kind:     kind,
			bounds:   bounds,
			children: make(map[string]child),
		}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// Counter returns the counter with the given name and label set,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.famFor(name, help, kindCounter, nil)
	sig := labelSig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[sig]; ok {
		return c.(*Counter)
	}
	c := &Counter{sig: sig}
	f.children[sig] = c
	return c
}

// Gauge returns the gauge with the given name and label set, creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.famFor(name, help, kindGauge, nil)
	sig := labelSig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.children[sig]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{sig: sig}
	f.children[sig] = g
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (process stats, cache occupancy, ...).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.famFor(name, help, kindGaugeFunc, nil)
	sig := labelSig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.children[sig] = &gaugeFunc{sig: sig, fn: fn}
}

// Histogram returns the histogram with the given name, bucket upper
// bounds (ascending, in the metric's natural unit — seconds for
// latencies; +Inf is implicit) and label set, creating it on first use.
// A nil buckets slice selects DefBuckets. All children of one family
// share the bucket layout of the first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.famFor(name, help, kindHistogram, buckets)
	sig := labelSig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.children[sig]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{
		sig:       sig,
		bounds:    f.bounds,
		counts:    make([]atomic.Int64, len(f.bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(f.bounds)+1),
	}
	f.children[sig] = h
	return h
}

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct {
	sig string
	v   atomic.Int64
}

func (c *Counter) labelSig() string { return c.sig }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct {
	sig  string
	bits atomic.Uint64
}

func (g *Gauge) labelSig() string { return g.sig }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type gaugeFunc struct {
	sig string
	fn  func() float64
}

func (g *gaugeFunc) labelSig() string { return g.sig }

// Histogram counts observations into fixed buckets, tracking sum and
// count, safe for concurrent use. Buckets are rendered cumulatively
// (Prometheus "le" semantics) with an explicit +Inf bucket, and sum is
// kept in the observation unit (seconds for ObserveDuration), so the
// exposition is directly usable with histogram_quantile and
// rate(x_sum)/rate(x_count) in PromQL.
type Histogram struct {
	sig     string
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
	// exemplars holds the most recent exemplar per bucket (last write
	// wins); slow buckets thus carry the trace ID of a recent slow
	// request, joining the metrics pillar to /debug/traces.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it, in
// the OpenMetrics sense.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

func (h *Histogram) labelSig() string { return h.sig }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.observe(v, "") }

// ObserveExemplar records one sample and, when traceID is non-empty,
// attaches it as the bucket's exemplar.
func (h *Histogram) ObserveExemplar(v float64, traceID string) { h.observe(v, traceID) }

func (h *Histogram) observe(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a latency sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveDurationExemplar is ObserveDuration with an exemplar trace ID.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID string) {
	h.observe(d.Seconds(), traceID)
}

// HistogramSnapshot is a consistent-enough copy of a histogram's state
// (each field is read atomically; the set is not a single atomic cut,
// which is the usual Prometheus client contract).
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending, excluding +Inf
	Counts []int64   // per-bucket (NOT cumulative); len(Bounds)+1, last is +Inf
	Sum    float64
	Count  int64
	// Exemplars holds the latest exemplar per bucket; entries are nil
	// for buckets that never saw an exemplar.
	Exemplars []*Exemplar
}

// Snapshot copies the histogram state for rendering.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:    h.bounds,
		Counts:    make([]int64, len(h.counts)),
		Sum:       math.Float64frombits(h.sumBits.Load()),
		Count:     h.count.Load(),
		Exemplars: make([]*Exemplar, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	return s
}

// labelSig renders a label set into its canonical exposition form:
// `name="value",...`, sorted by label name. The empty set renders "".
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, with +Inf spelled "+Inf".
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// metricLine writes one sample line: name{labels} value.
func metricLine(sb *strings.Builder, name, sig, extra, value string) {
	sb.WriteString(name)
	if sig != "" || extra != "" {
		sb.WriteByte('{')
		sb.WriteString(sig)
		if sig != "" && extra != "" {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(value)
	sb.WriteByte('\n')
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4). Families are sorted by name and children by label
// signature, so the output is deterministic for a given set of values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders the same exposition with OpenMetrics
// extensions: histogram bucket lines carry their exemplar trace IDs
// ("# {trace_id=...} value") and the output ends with "# EOF". Plain
// 0.0.4 scrapers keep using WritePrometheus, where exemplars are
// omitted because the older grammar has no syntax for them.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		sigs := make([]string, 0, len(f.children))
		for s := range f.children {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		children := make([]child, 0, len(sigs))
		for _, s := range sigs {
			children = append(children, f.children[s])
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range children {
			switch m := c.(type) {
			case *Counter:
				metricLine(&sb, f.name, m.sig, "", strconv.FormatInt(m.Value(), 10))
			case *Gauge:
				metricLine(&sb, f.name, m.sig, "", formatFloat(m.Value()))
			case *gaugeFunc:
				metricLine(&sb, f.name, m.sig, "", formatFloat(m.fn()))
			case *Histogram:
				s := m.Snapshot()
				cum := int64(0)
				for i, b := range s.Bounds {
					cum += s.Counts[i]
					bucketLine(&sb, f.name, m.sig, formatFloat(b),
						cum, exemplarFor(s, i, openMetrics))
				}
				cum += s.Counts[len(s.Bounds)]
				bucketLine(&sb, f.name, m.sig, "+Inf",
					cum, exemplarFor(s, len(s.Bounds), openMetrics))
				metricLine(&sb, f.name+"_sum", m.sig, "", formatFloat(s.Sum))
				metricLine(&sb, f.name+"_count", m.sig, "", strconv.FormatInt(s.Count, 10))
			}
		}
	}
	if openMetrics {
		sb.WriteString("# EOF\n")
	}
	_, err := w.Write([]byte(sb.String()))
	return err
}

func exemplarFor(s HistogramSnapshot, i int, openMetrics bool) *Exemplar {
	if !openMetrics {
		return nil
	}
	return s.Exemplars[i]
}

// bucketLine writes one histogram bucket sample, with its OpenMetrics
// exemplar when present.
func bucketLine(sb *strings.Builder, name, sig, le string, cum int64, ex *Exemplar) {
	sb.WriteString(name)
	sb.WriteString("_bucket{")
	sb.WriteString(sig)
	if sig != "" {
		sb.WriteByte(',')
	}
	sb.WriteString(`le="`)
	sb.WriteString(le)
	sb.WriteString(`"} `)
	sb.WriteString(strconv.FormatInt(cum, 10))
	if ex != nil {
		sb.WriteString(` # {trace_id="`)
		sb.WriteString(escapeLabelValue(ex.TraceID))
		sb.WriteString(`"} `)
		sb.WriteString(formatFloat(ex.Value))
	}
	sb.WriteByte('\n')
}

// openMetricsContentType is served when the scraper negotiates the
// OpenMetrics exposition (the format that can carry exemplars).
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler serves the registry in the Prometheus text exposition
// format; scrapers that send "Accept: application/openmetrics-text"
// get the OpenMetrics rendering with histogram exemplars.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", openMetricsContentType)
			r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
