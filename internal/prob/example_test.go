package prob_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prob"
)

// ExampleNew runs the Algorithm 3 reachability DP with an explicit
// worker count. The reach table is byte-identical at every worker
// count, so the parallel run answers exactly what the serial one would.
func ExampleNew() {
	g := graph.NewStore()
	company := g.Intern("company")
	it := g.Intern("it company")
	ms := g.Intern("Microsoft")
	g.AddEdge(company, it, 20, 0.9)
	g.AddEdge(it, ms, 30, 0.8)

	serial, _ := prob.New(g, prob.Options{Workers: 1})
	pooled, _ := prob.New(g, prob.Options{Workers: 4})
	fmt.Printf("P(company, Microsoft) = %.2f\n", pooled.Reach(company, ms))
	fmt.Println("identical to serial:", pooled.Reach(company, ms) == serial.Reach(company, ms))
	// Output:
	// P(company, Microsoft) = 0.72
	// identical to serial: true
}

// ExampleTypicality_InstancesOf shows Eq. 4 at work: indirect evidence
// through a sub-concept promotes Microsoft over IBM despite fewer direct
// sightings.
func ExampleTypicality_InstancesOf() {
	g := graph.NewStore()
	company := g.Intern("company")
	it := g.Intern("it company")
	ibm := g.Intern("IBM")
	ms := g.Intern("Microsoft")
	g.AddEdge(company, ibm, 50, 0.99)
	g.AddEdge(company, ms, 40, 0.99)
	g.AddEdge(company, it, 20, 0.95)
	g.AddEdge(it, ms, 30, 0.99)

	ty, err := prob.NewTypicality(g)
	if err != nil {
		panic(err)
	}
	for _, r := range ty.InstancesOf(company) {
		fmt.Printf("%s %.3f\n", r.Label, r.Score)
	}
	// Output:
	// Microsoft 0.578
	// IBM 0.422
}

// ExampleTypicality_ConceptsOfSet reproduces the paper's Example 1: a
// set of instances picks out the tightest concept describing all of them.
func ExampleTypicality_ConceptsOfSet() {
	g := graph.NewStore()
	country := g.Intern("country")
	bric := g.Intern("BRIC country")
	for _, c := range []string{"China", "India", "Brazil", "Russia"} {
		id := g.Intern(c)
		g.AddEdge(country, id, 20, 0.99)
		g.AddEdge(bric, id, 15, 0.99)
	}
	g.AddEdge(country, g.Intern("USA"), 80, 0.99)
	g.AddEdge(country, bric, 10, 0.9)

	ty, err := prob.NewTypicality(g)
	if err != nil {
		panic(err)
	}
	set := []graph.NodeID{g.Lookup("China"), g.Lookup("India"), g.Lookup("Brazil")}
	ranked, _ := ty.ConceptsOfSet(set)
	fmt.Println(ranked[0].Label)
	// Output:
	// BRIC country
}
