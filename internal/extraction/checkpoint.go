package extraction

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/kb"
)

// Checkpoint is the resumable state of the extraction fold, captured at
// the last chunk boundary the corpus crossed: everything Resume needs to
// continue over a corpus delta and produce bit-identical output to a
// from-scratch run over the concatenated corpus.
//
// The fold settles the Algorithm 1 fixpoint at absolute multiples of
// ChunkSize. Decisions made by settles at those boundaries are canonical
// — any longer corpus would have settled at the same points with the same
// consumed prefix, so the boundary state is exact regardless of where the
// corpus was later cut. The sentences past the last boundary (Tail) also
// got a settle at end-of-corpus, but that settle is *provisional*: it
// exists only so the base build can ship a complete taxonomy. The
// checkpoint therefore stores the boundary state plus the raw Tail, and
// Resume replays the Tail together with the delta, re-deciding it exactly
// as the longer corpus would have.
//
//   - NumInputs anchors the global sentence numbering (Tail occupies
//     indices NumInputs-len(Tail)..NumInputs-1), so delta sentences get
//     the same canonical evidence seq keys a from-scratch run over the
//     concatenated corpus would assign them.
//   - Store is Γ as of the boundary — Tail contributions excluded.
//   - Pending carries the boundary's undecided sentences (raw text
//     re-parses deterministically; only the per-position decisions and
//     accepted readings are state).
//   - Groups holds the groups of sentences fully decided at the boundary;
//     pending and tail groups are regenerated on resume.
type Checkpoint struct {
	NumInputs int // corpus sentences consumed so far (global numbering)
	ChunkSize int // settle granularity; resume must use the same value
	Parsed    int // sentences matching a Hearst pattern, as of the boundary
	PartOf    int // negative part-whole evidence records, as of the boundary
	Store     *kb.Store
	Pending   []PendingSentence
	Groups    []Group
	Tail      []Input // consumed after the boundary; replayed on resume
	// RootHashes fingerprints, per super-concept, the run's final emitted
	// group list (the groups taxonomy construction consumed). A resumed
	// run compares its own final group lists against these: a root whose
	// hash is unchanged produced bit-identical group records, so its
	// taxonomy state can be reused; everything else — changed, new, or
	// vanished — is the exact dirty set.
	RootHashes map[string]uint64
}

// PendingSentence is one undecided sentence's fixpoint state. The
// Hearst match is reconstructed by re-parsing Text (parsing is pure);
// Status and Accepted restore the per-position decisions.
type PendingSentence struct {
	Index     int // global input index of the sentence
	Text      string
	PageScore float64
	Super     string // canonical super key, empty if not yet detected
	SuperDone bool
	Status    []uint8 // posState per segment position
	Accepted  []string
}

// ErrBadCheckpoint reports a structurally invalid extraction checkpoint.
var ErrBadCheckpoint = errors.New("extraction: bad checkpoint")

// EncodeCheckpoint writes cp in the binary layout embedded in full
// snapshots (core wraps it in the checksummed "PBCK" section).
func EncodeCheckpoint(w io.Writer, cp *Checkpoint) error {
	bw := bufio.NewWriter(w)
	putUv := func(v uint64) { writeUvarint(bw, v) }
	putStr := func(s string) {
		writeUvarint(bw, uint64(len(s)))
		bw.WriteString(s)
	}
	putF64 := func(v float64) {
		var f64 [8]byte
		binary.LittleEndian.PutUint64(f64[:], math.Float64bits(v))
		bw.Write(f64[:])
	}
	putUv(uint64(cp.NumInputs))
	putUv(uint64(cp.ChunkSize))
	putUv(uint64(cp.Parsed))
	putUv(uint64(cp.PartOf))
	var kbBuf bytes.Buffer
	if cp.Store != nil {
		if err := cp.Store.Save(&kbBuf); err != nil {
			return err
		}
	}
	putUv(uint64(kbBuf.Len()))
	bw.Write(kbBuf.Bytes())
	putUv(uint64(len(cp.Tail)))
	for _, in := range cp.Tail {
		putStr(in.Text)
		putF64(in.PageScore)
	}
	putUv(uint64(len(cp.Groups)))
	for _, g := range cp.Groups {
		putStr(g.Super)
		putUv(uint64(g.Order))
		putUv(uint64(len(g.Subs)))
		for _, s := range g.Subs {
			putStr(s)
		}
	}
	putUv(uint64(len(cp.Pending)))
	for _, ps := range cp.Pending {
		putUv(uint64(ps.Index))
		putStr(ps.Text)
		var f64 [8]byte
		binary.LittleEndian.PutUint64(f64[:], math.Float64bits(ps.PageScore))
		bw.Write(f64[:])
		putStr(ps.Super)
		done := byte(0)
		if ps.SuperDone {
			done = 1
		}
		bw.WriteByte(done)
		putUv(uint64(len(ps.Status)))
		bw.Write(ps.Status)
		putUv(uint64(len(ps.Accepted)))
		for _, s := range ps.Accepted {
			putStr(s)
		}
	}
	roots := make([]string, 0, len(cp.RootHashes))
	for r := range cp.RootHashes {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	putUv(uint64(len(roots)))
	for _, r := range roots {
		putStr(r)
		putUv(cp.RootHashes[r])
	}
	return bw.Flush()
}

// DecodeCheckpoint reads a checkpoint written by EncodeCheckpoint.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	getUv := func() (uint64, error) { return binary.ReadUvarint(br) }
	getStr := func() (string, error) {
		n, err := getUv()
		if err != nil || n > 1<<20 {
			return "", fmt.Errorf("%w: string length", ErrBadCheckpoint)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("%w: string bytes: %v", ErrBadCheckpoint, err)
		}
		return string(buf), nil
	}
	getF64 := func() (float64, error) {
		var f64 [8]byte
		if _, err := io.ReadFull(br, f64[:]); err != nil {
			return 0, fmt.Errorf("%w: float: %v", ErrBadCheckpoint, err)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(f64[:])), nil
	}
	cp := &Checkpoint{}
	hdr := [4]*int{&cp.NumInputs, &cp.ChunkSize, &cp.Parsed, &cp.PartOf}
	for _, dst := range hdr {
		v, err := getUv()
		if err != nil || v > 1<<40 {
			return nil, fmt.Errorf("%w: header", ErrBadCheckpoint)
		}
		*dst = int(v)
	}
	kbLen, err := getUv()
	if err != nil || kbLen > 1<<32 {
		return nil, fmt.Errorf("%w: store length", ErrBadCheckpoint)
	}
	if kbLen > 0 {
		lr := io.LimitReader(br, int64(kbLen))
		store, err := kb.Load(lr)
		if err != nil {
			return nil, fmt.Errorf("%w: store: %v", ErrBadCheckpoint, err)
		}
		// The loader may leave buffered slack; stay section-aligned.
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("%w: store trailer: %v", ErrBadCheckpoint, err)
		}
		cp.Store = store
	}
	ntail, err := getUv()
	if err != nil || ntail > 1<<28 {
		return nil, fmt.Errorf("%w: tail count", ErrBadCheckpoint)
	}
	if ntail > 0 {
		cp.Tail = make([]Input, 0, minU64(ntail, 1<<16))
	}
	for i := uint64(0); i < ntail; i++ {
		var in Input
		if in.Text, err = getStr(); err != nil {
			return nil, err
		}
		if in.PageScore, err = getF64(); err != nil {
			return nil, err
		}
		cp.Tail = append(cp.Tail, in)
	}
	ngroups, err := getUv()
	if err != nil || ngroups > 1<<28 {
		return nil, fmt.Errorf("%w: group count", ErrBadCheckpoint)
	}
	if ngroups > 0 {
		cp.Groups = make([]Group, 0, minU64(ngroups, 1<<16))
	}
	for i := uint64(0); i < ngroups; i++ {
		var g Group
		if g.Super, err = getStr(); err != nil {
			return nil, err
		}
		ord, err := getUv()
		if err != nil || ord > 1<<40 {
			return nil, fmt.Errorf("%w: group order", ErrBadCheckpoint)
		}
		g.Order = int(ord)
		nsubs, err := getUv()
		if err != nil || nsubs > 1<<20 {
			return nil, fmt.Errorf("%w: sub count", ErrBadCheckpoint)
		}
		g.Subs = make([]string, 0, minU64(nsubs, 1<<10))
		for j := uint64(0); j < nsubs; j++ {
			s, err := getStr()
			if err != nil {
				return nil, err
			}
			g.Subs = append(g.Subs, s)
		}
		cp.Groups = append(cp.Groups, g)
	}
	npending, err := getUv()
	if err != nil || npending > 1<<28 {
		return nil, fmt.Errorf("%w: pending count", ErrBadCheckpoint)
	}
	if npending > 0 {
		cp.Pending = make([]PendingSentence, 0, minU64(npending, 1<<16))
	}
	for i := uint64(0); i < npending; i++ {
		var ps PendingSentence
		idx, err := getUv()
		if err != nil || idx > 1<<40 {
			return nil, fmt.Errorf("%w: pending index", ErrBadCheckpoint)
		}
		ps.Index = int(idx)
		if ps.Text, err = getStr(); err != nil {
			return nil, err
		}
		var f64 [8]byte
		if _, err := io.ReadFull(br, f64[:]); err != nil {
			return nil, fmt.Errorf("%w: page score: %v", ErrBadCheckpoint, err)
		}
		ps.PageScore = math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))
		if ps.Super, err = getStr(); err != nil {
			return nil, err
		}
		done, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: super flag: %v", ErrBadCheckpoint, err)
		}
		ps.SuperDone = done == 1
		nstatus, err := getUv()
		if err != nil || nstatus > 1<<16 {
			return nil, fmt.Errorf("%w: status count", ErrBadCheckpoint)
		}
		ps.Status = make([]uint8, nstatus)
		if _, err := io.ReadFull(br, ps.Status); err != nil {
			return nil, fmt.Errorf("%w: status bytes: %v", ErrBadCheckpoint, err)
		}
		nacc, err := getUv()
		if err != nil || nacc > 1<<20 {
			return nil, fmt.Errorf("%w: accepted count", ErrBadCheckpoint)
		}
		ps.Accepted = make([]string, 0, minU64(nacc, 1<<10))
		for j := uint64(0); j < nacc; j++ {
			s, err := getStr()
			if err != nil {
				return nil, err
			}
			ps.Accepted = append(ps.Accepted, s)
		}
		cp.Pending = append(cp.Pending, ps)
	}
	nroots, err := getUv()
	if err != nil || nroots > 1<<28 {
		return nil, fmt.Errorf("%w: root hash count", ErrBadCheckpoint)
	}
	if nroots > 0 {
		cp.RootHashes = make(map[string]uint64, minU64(nroots, 1<<16))
	}
	for i := uint64(0); i < nroots; i++ {
		r, err := getStr()
		if err != nil {
			return nil, err
		}
		h, err := getUv()
		if err != nil {
			return nil, fmt.Errorf("%w: root hash", ErrBadCheckpoint)
		}
		cp.RootHashes[r] = h
	}
	return cp, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
