// Package snapshot loads taxonomy snapshots produced by probase-build.
// Every snapshot flavour is accepted and auto-detected by magic:
// graph-only ("PBGR" v1 adjacency lists or "PBC2" v2 CSR, written by
// Probase.Save/SaveVersion) and full ("PBFL", written by
// Probase.SaveFull, carrying Γ alongside the graph). The loader is
// shared by every binary that consumes snapshots (probase-query,
// probase-serve) so the flavour-sniffing logic lives in exactly one
// place.
//
// Two file entry points exist: Open decodes the snapshot onto the heap,
// OpenMapped memory-maps it and serves revision-3 "PBC2" graphs
// zero-copy out of the mapping (falling back to decoding for every
// other flavour). The byte-level format specifications live in
// FORMATS.md at the repository root.
package snapshot

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mmap"
)

// fullMagic marks a full (graph + Γ) snapshot; anything else is handed
// to the graph-only loader, which validates its own magic.
const fullMagic = "PBFL"

// Open reads the snapshot file at path, auto-detecting its flavour.
func Open(path string) (*core.Probase, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pb, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	return pb, nil
}

// OpenMapped memory-maps the snapshot file at path and serves the graph
// directly out of the mapping when the format allows it (a "PBC2"
// revision-3 snapshot on a little-endian host): loading costs page
// faults instead of a full decode, the arrays stay off the Go heap, and
// replicas on one machine share the page cache. Every other flavour —
// legacy graph formats and full "PBFL" snapshots — transparently falls
// back to the copying loader, so -mmap is always safe to request.
//
// The returned Probase owns the mapping; call Probase.Close after the
// last query has drained. Probase.Mapped reports whether the zero-copy
// path was actually taken.
func OpenMapped(path string) (*core.Probase, error) {
	m, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	data := m.Bytes()
	if len(data) >= 4 && string(data[:4]) == fullMagic {
		// Full snapshots interleave Γ with the graph and are decoded
		// record by record — nothing to map. Release the mapping and take
		// the streaming path.
		m.Close()
		return Open(path)
	}
	magic := ""
	if len(data) >= 4 {
		magic = string(data[:4])
	}
	g, err := graph.LoadMapped(data, m) // takes ownership of m
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	pb, err := core.FromFrozen(g)
	if err != nil {
		g.Close()
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	pb.Format = magic
	return pb, nil
}

// Load reads a snapshot from r, auto-detecting its flavour. The magic
// bytes are sniffed through a buffered reader that then hands the whole
// stream (sniffed bytes included) to the flavour's loader, so r can be
// any stream — a pipe or a network body, not just a seekable file.
func Load(r io.Reader) (*core.Probase, error) {
	br := bufio.NewReader(r)
	peeked, err := br.Peek(4)
	if err != nil {
		// A short read here means the input cannot be a snapshot at all
		// (every format starts with a 4-byte magic) — say so instead of
		// surfacing a bare EOF from the middle of the sniffing machinery.
		return nil, fmt.Errorf("%w: input is %d bytes, too short to be a snapshot (want at least a 4-byte magic)",
			graph.ErrBadSnapshot, len(peeked))
	}
	// Peek returns a view into the bufio buffer, which the load below
	// overwrites — copy the magic out before reading on.
	magic := string(peeked)
	var pb *core.Probase
	if magic == fullMagic {
		pb, err = core.LoadFull(br)
	} else {
		pb, err = core.Load(br)
	}
	if err != nil {
		return nil, err
	}
	// Record which on-disk format the snapshot used; the serving layer
	// surfaces it on /v1/healthz as part of the snapshot identity.
	pb.Format = magic
	return pb, nil
}
