package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/querylog"
)

// CoverageSeries is one taxonomy's Figures 5-7 curves.
type CoverageSeries struct {
	Name   string
	Points []querylog.Point
}

// CoverageResult bundles the three query-coverage figures, which share
// one query log and one sweep.
type CoverageResult struct {
	Ks     []int
	Series []CoverageSeries
}

// probaseVocabulary derives the coverage vocabulary from the built
// taxonomy: concept base labels and instance labels.
func probaseVocabulary(pb *core.Probase) *querylog.Vocabulary {
	var concepts, instances []string
	for _, id := range pb.Graph.Concepts() {
		concepts = append(concepts, core.BaseLabel(pb.Graph.Label(id)))
	}
	for _, id := range pb.Graph.Instances() {
		instances = append(instances, pb.Graph.Label(id))
	}
	return querylog.NewVocabulary(concepts, instances)
}

func refVocabulary(concepts, instances []string) *querylog.Vocabulary {
	return querylog.NewVocabulary(concepts, instances)
}

// Coverage runs the Figures 5-7 sweep: a frequency-sorted query log
// (down-scaled from the paper's 50M to nQueries) analysed against every
// taxonomy's vocabulary.
func (s *Setup) Coverage(nQueries int) (*CoverageResult, string) {
	if nQueries == 0 {
		nQueries = 50000
	}
	queries := querylog.Generate(s.World, querylog.Config{Queries: nQueries, Seed: 3})
	// Geometric k sweep (the paper's 1M..50M down-scaled): the early
	// points separate the head, the late ones the tail.
	ks := []int{nQueries / 50, nQueries / 10, nQueries / 5, nQueries / 2, nQueries}
	vocabs := []struct {
		name string
		v    *querylog.Vocabulary
	}{
		{"WordNet", refVocabulary(s.WordNet.Concepts, s.WordNet.Instances)},
		{"WikiTaxonomy", refVocabulary(s.WikiTax.Concepts, s.WikiTax.Instances)},
		{"YAGO", refVocabulary(s.YAGO.Concepts, s.YAGO.Instances)},
		{"Freebase", refVocabulary(s.Freebase.Concepts, s.Freebase.Instances)},
		{"Probase", probaseVocabulary(s.PB)},
	}
	res := &CoverageResult{Ks: ks}
	for _, v := range vocabs {
		res.Series = append(res.Series, CoverageSeries{
			Name:   v.name,
			Points: querylog.Analyze(queries, v.v, ks),
		})
	}

	out := ""
	render := func(title string, get func(querylog.Point) string) string {
		header := []string{"Taxonomy"}
		for _, k := range ks {
			header = append(header, fmt.Sprintf("top %d", k))
		}
		var cells [][]string
		for _, series := range res.Series {
			row := []string{series.Name}
			for _, p := range series.Points {
				row = append(row, get(p))
			}
			cells = append(cells, row)
		}
		return table(title, header, cells)
	}
	out += render("Figure 5: relevant concepts in top-k queries",
		func(p querylog.Point) string { return itoa(p.RelevantConcepts) })
	out += "\n" + render("Figure 6: taxonomy coverage of top-k queries",
		func(p querylog.Point) string { return i64(p.Covered) })
	out += "\n" + render("Figure 7: concept coverage of top-k queries",
		func(p querylog.Point) string { return i64(p.ConceptCovered) })
	return res, out
}

// Fig8 compares the concept-size distributions of Probase and the
// Freebase reference.
func (s *Setup) Fig8() ([]eval.SizeDistribution, string) {
	ds := []eval.SizeDistribution{
		eval.Distribution("Probase", s.PB.Graph),
		eval.Distribution("Freebase", s.Freebase.Graph),
	}
	header := []string{"Bucket"}
	for _, d := range ds {
		header = append(header, d.Name)
	}
	var cells [][]string
	for i := range ds[0].Buckets {
		row := []string{ds[0].Buckets[i].Label}
		for _, d := range ds {
			row = append(row, itoa(d.Buckets[i].Count))
		}
		cells = append(cells, row)
	}
	cells = append(cells, []string{"top-10 share",
		pct(ds[0].Top10Share), pct(ds[1].Top10Share)})
	return ds, table("Figure 8: concept-size distribution", header, cells)
}

// Fig9 samples per-benchmark-concept precision.
func (s *Setup) Fig9() ([]eval.ConceptPrecision, string) {
	cps := eval.SampleConceptPrecision(s.PB.Store, s.World, eval.BenchmarkConcepts, 50, 17)
	var cells [][]string
	for _, cp := range cps {
		cells = append(cells, []string{cp.Concept, itoa(cp.Sampled), pct(cp.Precision())})
	}
	cells = append(cells, []string{"AVERAGE", "", pct(eval.Average(cps))})
	return cps, table("Figure 9: precision of extracted pairs per benchmark concept",
		[]string{"Concept", "Sampled", "Precision"}, cells)
}

// Fig10Row is one iteration's accumulated counts.
type Fig10Row struct {
	Round    int
	Pairs    int64
	Concepts int
	NewPairs int64
}

// Fig10 reports the accumulated isA pairs and concepts per iteration.
func (s *Setup) Fig10() ([]Fig10Row, string) {
	var rows []Fig10Row
	var cells [][]string
	for _, r := range s.PB.Info.Rounds {
		rows = append(rows, Fig10Row{Round: r.Round, Pairs: r.TotalPairs, Concepts: r.TotalConcepts, NewPairs: r.NewPairs})
		cells = append(cells, []string{itoa(r.Round), i64(r.TotalPairs), itoa(r.TotalConcepts), i64(r.NewPairs)})
	}
	return rows, table("Figure 10: accumulated isA pairs and concepts per iteration",
		[]string{"Iteration", "isA pairs", "Concepts", "New pairs"}, cells)
}

// Fig11Row is one iteration's benchmark precision.
type Fig11Row struct {
	Round     int
	Pairs     int
	Precision float64
}

// Fig11 reports the precision of the pairs accumulated through each
// iteration, restricted to the benchmark concepts as in the paper.
func (s *Setup) Fig11() ([]Fig11Row, string) {
	bench := make(map[string]bool, len(eval.BenchmarkConcepts))
	for _, c := range eval.BenchmarkConcepts {
		bench[c] = true
	}
	var rows []Fig11Row
	var cells [][]string
	for _, r := range s.PB.Info.Rounds {
		pairs := s.PB.Extraction.PairsThroughRound(r.Round)
		filtered := pairs[:0]
		for _, p := range pairs {
			if bench[p.X] {
				filtered = append(filtered, p)
			}
		}
		prec := eval.PairSetPrecision(filtered, s.World)
		rows = append(rows, Fig11Row{Round: r.Round, Pairs: len(filtered), Precision: prec})
		cells = append(cells, []string{itoa(r.Round), itoa(len(filtered)), pct(prec)})
	}
	return rows, table("Figure 11: benchmark precision per iteration",
		[]string{"Iteration", "Benchmark pairs", "Precision"}, cells)
}
