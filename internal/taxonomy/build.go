package taxonomy

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/extraction"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Config controls taxonomy construction.
type Config struct {
	// Sim is the child-set similarity; defaults to AbsoluteOverlap{Delta: 2}.
	Sim Similarity
	// MinSenseEvidence drops sense clusters backed by fewer than this many
	// sentences *when the label has a dominant cluster*; tiny fragment
	// clusters are usually extraction noise. 0 keeps everything.
	MinSenseEvidence int
	// DisableAdoption skips the fragment-adoption pass between the
	// horizontal and vertical stages (see engine.adoptFragments); mainly
	// for the merge-order experiments, which study the pure Algorithm 2.
	DisableAdoption bool
	// Workers parallelises the horizontal stage over root labels and
	// the vertical stage over sense clusters (both via internal/parallel).
	// The built taxonomy is byte-identical at every worker count;
	// 0 means GOMAXPROCS.
	Workers int
	// Reporter receives merge-stage telemetry (stages "taxonomy",
	// "taxonomy.horizontal", "taxonomy.vertical", "taxonomy.assemble");
	// nil discards it.
	Reporter obs.StageReporter
}

func (c Config) withDefaults() Config {
	if c.Sim == nil {
		c.Sim = AbsoluteOverlap{Delta: 2}
	}
	c.Workers = parallel.Workers(c.Workers)
	return c
}

// BuildStats reports construction work, for the Theorem 2 benchmarks and
// the cycle-refusal audit.
type BuildStats struct {
	Locals          int // input local taxonomies (sentences)
	HorizontalOps   int
	VerticalOps     int
	Adoptions       int // fragment adoptions (reproduction-scale pass)
	Senses          int // sense clusters after merging
	MultiSense      int // labels with more than one sense
	SkippedCycles   int // candidate edges refused to keep the DAG acyclic
	DroppedClusters int // clusters dropped by MinSenseEvidence
}

// Result is a constructed taxonomy.
type Result struct {
	Graph  *graph.Store
	Senses map[string][]string // root label -> node labels of its senses
	Stats  BuildStats
}

// SenseLabel names the i-th sense (0-based) of a label: the bare label
// when the label has a single sense, otherwise "label#i+1".
func SenseLabel(label string, i, total int) string {
	if total <= 1 {
		return label
	}
	return fmt.Sprintf("%s#%d", label, i+1)
}

// Build assembles the taxonomy DAG from per-sentence extraction groups.
func Build(groups []extraction.Group, cfg Config) *Result {
	cfg = cfg.withDefaults()
	rep := obs.ReporterOrNop(cfg.Reporter)
	rep.StageStart(obs.StageTaxonomy)
	buildStart := time.Now()
	locals := make([]*Local, 0, len(groups))
	for _, g := range groups {
		if g.Super == "" || len(g.Subs) == 0 {
			continue
		}
		locals = append(locals, NewLocal(g.Super, g.Subs))
	}
	eng := newEngine(locals, cfg.Sim)

	// Algorithm 2's two merge passes, timed separately: horizontal
	// (sense clustering within a label) then vertical (linking child
	// slots to the merged clusters).
	rep.StageStart(obs.StageTaxonomyHorizontal)
	stageStart := time.Now()
	eng.runHorizontalParallel(cfg.Workers)
	rep.Count(obs.StageTaxonomyHorizontal, "workers", int64(cfg.Workers))
	rep.StageEnd(obs.StageTaxonomyHorizontal, time.Since(stageStart))
	hops := eng.hops
	adoptions := 0
	if !cfg.DisableAdoption {
		adoptions = eng.adoptFragments()
	}
	rep.StageStart(obs.StageTaxonomyVertical)
	stageStart = time.Now()
	eng.runVerticalParallel(cfg.Workers)
	rep.Count(obs.StageTaxonomyVertical, "workers", int64(cfg.Workers))
	rep.StageEnd(obs.StageTaxonomyVertical, time.Since(stageStart))

	rep.StageStart(obs.StageTaxonomyAssemble)
	stageStart = time.Now()
	res := &Result{
		Graph:  graph.NewStore(),
		Senses: make(map[string][]string),
		Stats: BuildStats{
			Locals:        len(locals),
			HorizontalOps: hops,
			VerticalOps:   eng.vops,
			Adoptions:     adoptions,
		},
	}

	// Collect sense clusters per label, largest (by child mass) first.
	live := eng.alive()
	byRoot := make(map[string][]int)
	for _, i := range live {
		byRoot[eng.nodes[i].Root] = append(byRoot[eng.nodes[i].Root], i)
	}
	mass := func(i int) int64 {
		var m int64
		for _, v := range eng.nodes[i].Children {
			m += v
		}
		return m
	}
	roots := make([]string, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Strings(roots)

	senseName := make(map[int]string, len(live)) // engine id -> node label
	for _, r := range roots {
		ids := byRoot[r]
		sort.Slice(ids, func(a, b int) bool {
			ma, mb := mass(ids[a]), mass(ids[b])
			if ma != mb {
				return ma > mb
			}
			return ids[a] < ids[b]
		})
		// Optionally drop tiny fragment clusters behind a dominant one.
		if cfg.MinSenseEvidence > 0 && len(ids) > 1 {
			kept := ids[:1]
			for _, id := range ids[1:] {
				if int(mass(id)) >= cfg.MinSenseEvidence {
					kept = append(kept, id)
				} else {
					res.Stats.DroppedClusters++
				}
			}
			ids = kept
		}
		for i, id := range ids {
			senseName[id] = SenseLabel(r, i, len(ids))
		}
		byRoot[r] = ids
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = senseName[id]
		}
		res.Senses[r] = names
		res.Stats.Senses += len(ids)
		if len(ids) > 1 {
			res.Stats.MultiSense++
		}
	}

	// Materialise nodes, then edges. A child slot y resolves to the sense
	// clusters it is vertically linked to; an unlinked slot becomes the
	// plain node "y" — which coincides with y's concept node when y has a
	// single sense, and stays a dangling leaf when y is multi-sense (the
	// sentence did not disambiguate it).
	for _, r := range roots {
		for _, id := range byRoot[r] {
			res.Graph.Intern(senseName[id])
		}
	}
	type pendingEdge struct {
		from, to string
		count    int64
	}
	var edges []pendingEdge
	linkTargets := make(map[int]map[string][]int) // from id -> child label -> linked ids
	for k := range eng.links {
		from, to := eng.find(k[0]), eng.find(k[1])
		if senseName[from] == "" || senseName[to] == "" {
			continue // dropped cluster
		}
		m := linkTargets[from]
		if m == nil {
			m = make(map[string][]int)
			linkTargets[from] = m
		}
		lbl := eng.nodes[to].Root
		m[lbl] = append(m[lbl], to)
	}
	for _, r := range roots {
		for _, id := range byRoot[r] {
			from := senseName[id]
			l := eng.nodes[id]
			for _, y := range l.childLabels() {
				n := l.Children[y]
				if targets := linkTargets[id][y]; len(targets) > 0 {
					sort.Ints(targets)
					for _, tid := range targets {
						edges = append(edges, pendingEdge{from, senseName[tid], n})
					}
					continue
				}
				edges = append(edges, pendingEdge{from, y, n})
			}
		}
	}
	// Deterministic, heaviest-first edge insertion with cycle refusal.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].count != edges[j].count {
			return edges[i].count > edges[j].count
		}
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		from := res.Graph.Intern(e.from)
		to := res.Graph.Intern(e.to)
		if from == to {
			res.Stats.SkippedCycles++
			continue
		}
		if res.Graph.HasPath(to, from) {
			res.Stats.SkippedCycles++
			continue
		}
		res.Graph.AddEdge(from, to, e.count, 0)
	}
	rep.StageEnd(obs.StageTaxonomyAssemble, time.Since(stageStart))
	for counter, v := range map[string]int64{
		"locals":           int64(res.Stats.Locals),
		"horizontal_ops":   int64(res.Stats.HorizontalOps),
		"vertical_ops":     int64(res.Stats.VerticalOps),
		"adoptions":        int64(res.Stats.Adoptions),
		"senses":           int64(res.Stats.Senses),
		"multi_sense":      int64(res.Stats.MultiSense),
		"skipped_cycles":   int64(res.Stats.SkippedCycles),
		"dropped_clusters": int64(res.Stats.DroppedClusters),
	} {
		rep.Count(obs.StageTaxonomy, counter, v)
	}
	rep.StageEnd(obs.StageTaxonomy, time.Since(buildStart))
	return res
}
