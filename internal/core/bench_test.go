package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// BenchmarkScore measures plausibility annotation (stage "prob.annotate")
// at several worker counts over a corpus-derived taxonomy. The clone per
// iteration restores the unannotated graph; scores are byte-identical at
// every worker count.
func BenchmarkScore(b *testing.B) {
	pb, _ := buildFixture(b, 10000)
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graph.NewBuilderFrom(pb.Graph)
				if AnnotatePlausibility(g, pb.model, w, nil) == 0 {
					b.Fatal("nothing annotated")
				}
			}
		})
	}
}
