package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFullSnapshotRoundTrip(t *testing.T) {
	pb, _ := buildFixture(t, 8000)
	var buf bytes.Buffer
	if err := pb.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFull(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Store == nil {
		t.Fatal("full load lost Γ")
	}
	if loaded.Store.NumPairs() != pb.Store.NumPairs() {
		t.Errorf("Γ pairs %d vs %d", loaded.Store.NumPairs(), pb.Store.NumPairs())
	}
	if loaded.Graph.NumNodes() != pb.Graph.NumNodes() {
		t.Errorf("graph nodes differ")
	}
	// Typicality queries agree.
	a, b := pb.InstancesOf("companies", 5), loaded.InstancesOf("companies", 5)
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Errorf("rank %d: %q vs %q", i, a[i].Label, b[i].Label)
		}
	}
	// Evidence-based plausibility works after reload (untrained model:
	// count-driven noisy-or).
	if got := loaded.Plausibility("companies", a[0].Label); got <= 0 {
		t.Errorf("reloaded plausibility = %v", got)
	}
	if got := loaded.Plausibility("companies", "zzz unseen"); got != 0 {
		t.Errorf("unknown pair plausibility = %v", got)
	}
}

func TestLoadFullRejectsGarbage(t *testing.T) {
	if _, err := LoadFull(strings.NewReader("nope")); !errors.Is(err, ErrBadFullSnapshot) {
		t.Errorf("err = %v", err)
	}
	if _, err := LoadFull(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
	// Graph-only snapshot is not a full snapshot.
	pb, _ := buildFixture(t, 8000)
	var buf bytes.Buffer
	if err := pb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFull(&buf); err == nil {
		t.Error("graph-only snapshot accepted by LoadFull")
	}
	// Truncated full snapshot.
	var full bytes.Buffer
	if err := pb.SaveFull(&full); err != nil {
		t.Fatal(err)
	}
	data := full.Bytes()
	if _, err := LoadFull(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated full snapshot accepted")
	}
}

func TestSaveFullRequiresStore(t *testing.T) {
	pb, _ := buildFixture(t, 8000)
	var buf bytes.Buffer
	if err := pb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf) // graph-only
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.SaveFull(&bytes.Buffer{}); err == nil {
		t.Error("SaveFull without Γ succeeded")
	}
}
