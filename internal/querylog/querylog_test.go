package querylog

import (
	"strings"
	"testing"

	"repro/internal/corpus"
)

func testQueries(t *testing.T, n int) ([]Query, *corpus.World) {
	t.Helper()
	w := corpus.DefaultWorld(1)
	return Generate(w, Config{Queries: n, Seed: 3}), w
}

func TestGenerateShape(t *testing.T) {
	qs, _ := testQueries(t, 5000)
	if len(qs) != 5000 {
		t.Fatalf("got %d queries", len(qs))
	}
	seen := map[string]bool{}
	for i, q := range qs {
		if q.Text == "" || q.Freq < 1 {
			t.Fatalf("bad query %+v", q)
		}
		if seen[q.Text] {
			t.Fatalf("duplicate query %q", q.Text)
		}
		seen[q.Text] = true
		if i > 0 && q.Freq > qs[i-1].Freq {
			t.Fatal("queries not sorted by frequency")
		}
	}
	// Long tail: head query much more frequent than median.
	if qs[0].Freq < 100*qs[len(qs)/2].Freq {
		t.Errorf("no long tail: head %d vs median %d", qs[0].Freq, qs[len(qs)/2].Freq)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := corpus.DefaultWorld(1)
	a := Generate(w, Config{Queries: 1000, Seed: 3})
	b := Generate(w, Config{Queries: 1000, Seed: 3})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestVocabularyMatch(t *testing.T) {
	v := NewVocabulary([]string{"tropical country", "company"}, []string{"IBM", "New York"})
	cs, inst := v.match("best tropical countries to visit")
	if len(cs) != 1 || cs[0] != "tropical country" {
		t.Errorf("concepts = %v", cs)
	}
	if inst {
		t.Error("false instance hit")
	}
	cs, inst = v.match("ibm quarterly report")
	if len(cs) != 0 || !inst {
		t.Errorf("instance match failed: %v %v", cs, inst)
	}
	cs, inst = v.match("flights to new york")
	if !inst {
		t.Error("multi-word instance missed")
	}
	if cs, inst = v.match("weather tomorrow"); len(cs) != 0 || inst {
		t.Error("junk matched")
	}
}

func TestAnalyzeCurvesMonotone(t *testing.T) {
	qs, w := testQueries(t, 8000)
	var concepts, instances []string
	for _, key := range w.Keys() {
		c := w.Concept(key)
		concepts = append(concepts, c.Label)
		instances = append(instances, c.Instances...)
	}
	v := NewVocabulary(concepts, instances)
	ks := []int{1000, 2000, 4000, 8000}
	pts := Analyze(qs, v, ks)
	if len(pts) != len(ks) {
		t.Fatalf("points = %d", len(pts))
	}
	for i := range pts {
		if pts[i].K != ks[i] {
			t.Errorf("point %d k = %d", i, pts[i].K)
		}
		if i > 0 {
			if pts[i].RelevantConcepts < pts[i-1].RelevantConcepts ||
				pts[i].Covered < pts[i-1].Covered ||
				pts[i].ConceptCovered < pts[i-1].ConceptCovered {
				t.Error("curves not monotone")
			}
		}
		if pts[i].Covered < pts[i].ConceptCovered {
			t.Error("concept coverage exceeds total coverage")
		}
	}
	last := pts[len(pts)-1]
	frac := float64(last.Covered) / float64(last.K)
	if frac < 0.4 || frac > 0.95 {
		t.Errorf("full-vocabulary coverage = %.2f, want mid-range", frac)
	}
}

// A richer vocabulary must never cover fewer queries — the Figure 6
// ordering between Probase and the smaller taxonomies.
func TestAnalyzeVocabularyDominance(t *testing.T) {
	qs, w := testQueries(t, 6000)
	var concepts, instances []string
	for _, key := range w.Keys() {
		c := w.Concept(key)
		concepts = append(concepts, c.Label)
		instances = append(instances, c.Instances...)
	}
	full := NewVocabulary(concepts, instances)
	// "WordNet-like": single-word concepts, few instances.
	var smallC, smallI []string
	for _, c := range concepts {
		if !strings.Contains(c, " ") {
			smallC = append(smallC, c)
		}
	}
	smallI = instances[:len(instances)/10]
	small := NewVocabulary(smallC, smallI)
	ks := []int{3000, 6000}
	fullPts := Analyze(qs, full, ks)
	smallPts := Analyze(qs, small, ks)
	for i := range ks {
		if fullPts[i].Covered < smallPts[i].Covered {
			t.Errorf("k=%d: full vocabulary covers less (%d < %d)", ks[i], fullPts[i].Covered, smallPts[i].Covered)
		}
		if fullPts[i].RelevantConcepts < smallPts[i].RelevantConcepts {
			t.Errorf("k=%d: fewer relevant concepts in richer vocabulary", ks[i])
		}
	}
}

func TestAnalyzeKSBeyondQueries(t *testing.T) {
	qs, w := testQueries(t, 100)
	v := NewVocabulary([]string{w.Concept(w.Keys()[0]).Label}, nil)
	pts := Analyze(qs, v, []int{50, 1000})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].K != 100 {
		t.Errorf("clamped k = %d, want 100", pts[1].K)
	}
}

func TestNewVocabularyEmpty(t *testing.T) {
	v := NewVocabulary(nil, nil)
	if cs, inst := v.match("anything at all"); len(cs) != 0 || inst {
		t.Error("empty vocabulary matched")
	}
}

// TestIterateMatchesGenerate pins the streaming path to the slice path:
// same Config, same queries, same order, same frequencies.
func TestIterateMatchesGenerate(t *testing.T) {
	w := corpus.DefaultWorld(1)
	cfg := Config{Queries: 3000, Seed: 3}
	want := Generate(w, cfg)
	var got []Query
	Iterate(w, cfg, func(q Query) bool {
		got = append(got, q)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("iterator yielded %d queries, slice has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: iterator %+v, slice %+v", i, got[i], want[i])
		}
	}
}

// TestIterateEarlyStop checks yield=false halts the stream.
func TestIterateEarlyStop(t *testing.T) {
	w := corpus.DefaultWorld(1)
	var n int
	Iterate(w, Config{Queries: 2000, Seed: 3}, func(Query) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("yield called %d times after stopping at 7", n)
	}
}
