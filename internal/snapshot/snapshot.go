// Package snapshot loads taxonomy snapshots produced by probase-build.
// Both snapshot flavours are accepted and auto-detected by magic:
// graph-only ("PBGR", written by Probase.Save) and full ("PBFL", written
// by Probase.SaveFull, carrying Γ alongside the graph). The loader is
// shared by every binary that consumes snapshots (probase-query,
// probase-serve) so the flavour-sniffing logic lives in exactly one
// place.
package snapshot

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

// fullMagic marks a full (graph + Γ) snapshot; anything else is handed
// to the graph-only loader, which validates its own magic.
const fullMagic = "PBFL"

// Open reads the snapshot file at path, auto-detecting its flavour.
func Open(path string) (*core.Probase, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pb, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	return pb, nil
}

// Load reads a snapshot from r, auto-detecting its flavour. The reader
// must support seeking back to the start (os.File, bytes.Reader); the
// four magic bytes are sniffed and then the full stream is re-read by
// the flavour's loader.
func Load(r io.ReadSeeker) (*core.Probase, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if string(magic) == fullMagic {
		return core.LoadFull(r)
	}
	return core.Load(r)
}
