package apps

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/corpus"
)

// Table is one synthetic web table column: cells of instances whose
// hidden header is a concept (Section 5.3.2, "Understanding Web Tables").
type Table struct {
	Cells  []string
	Header string // ground-truth concept key
}

// GenerateTables emits columns drawn from concepts with enough instances.
func GenerateTables(w *corpus.World, n int, seed int64) []Table {
	rng := rand.New(rand.NewSource(seed))
	var candidates []string
	for _, key := range w.Keys() {
		if len(w.Concept(key).Instances) >= 6 {
			candidates = append(candidates, key)
		}
	}
	var out []Table
	for i := 0; i < n && len(candidates) > 0; i++ {
		key := candidates[rng.Intn(len(candidates))]
		insts := w.Concept(key).Instances
		rows := 4 + rng.Intn(5)
		seen := map[int]bool{}
		var cells []string
		for len(cells) < rows && len(seen) < len(insts) {
			j := rng.Intn(len(insts))
			if seen[j] {
				continue
			}
			seen[j] = true
			cells = append(cells, insts[j])
		}
		out = append(out, Table{Cells: cells, Header: key})
	}
	return out
}

// InferHeader infers the column's concept by jointly abstracting its
// cells with T(x|i); the most typical shared concept becomes the header.
func InferHeader(pb *core.Probase, cells []string) (string, bool) {
	ranked, ok := pb.Conceptualize(cells, 3)
	if !ok || len(ranked) == 0 {
		return "", false
	}
	return core.BaseLabel(ranked[0].Label), true
}

// TableReport summarises header-inference quality (the paper reports
// 96% precision on this task).
type TableReport struct {
	Tables   int
	Inferred int
	Correct  int
}

// Precision returns Correct/Inferred.
func (r TableReport) Precision() float64 {
	if r.Inferred == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Inferred)
}

// EvaluateTables infers headers for generated tables and judges them: an
// inferred header is correct when every cell is a ground-truth instance
// of it (the inferred concept may legitimately be an ancestor or a
// sub-concept covering the sampled cells).
func EvaluateTables(pb *core.Probase, w *corpus.World, n int, seed int64) TableReport {
	var rep TableReport
	for _, tbl := range GenerateTables(w, n, seed) {
		rep.Tables++
		header, ok := InferHeader(pb, tbl.Cells)
		if !ok {
			continue
		}
		rep.Inferred++
		good := true
		for _, cell := range tbl.Cells {
			if !w.IsTrueIsA(header, cell) {
				good = false
				break
			}
		}
		if good {
			rep.Correct++
		}
	}
	return rep
}
