package extraction

import (
	"strings"
	"testing"

	"repro/internal/corpus"
)

func TestRunRecordsPartOfNegatives(t *testing.T) {
	inputs := []Input{
		{Text: "trees are comprised of branches, leaves and roots.", PageScore: 0.5},
		{Text: "trees such as oak and pine", PageScore: 0.5},
		{Text: "trees such as oak and pine", PageScore: 0.5},
	}
	res := Run(inputs, DefaultConfig())
	if res.PartOf != 3 {
		t.Errorf("PartOf = %d, want 3 recorded negatives", res.PartOf)
	}
	evs := res.Store.Evidence("tree", "branch")
	if len(evs) != 1 || !evs[0].Negative {
		t.Errorf("negative evidence for (tree, branch) = %+v", evs)
	}
	// Negative evidence alone does not create an isA pair.
	if res.Store.Count("tree", "branch") != 0 {
		t.Error("part-of created an isA count")
	}
}

func TestCorpusEmitsPartOfSentences(t *testing.T) {
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 8000, Seed: 11}).Generate()
	found := 0
	for _, s := range c.Sentences {
		if strings.Contains(s.Text, "comprised of") || strings.Contains(s.Text, "consist of") {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no part-of sentences generated")
	}
	inputs := make([]Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = Input{Text: s.Text, PageScore: s.PageScore}
	}
	res := Run(inputs, DefaultConfig())
	if res.PartOf == 0 {
		t.Error("extraction recorded no part-of negatives")
	}
}
