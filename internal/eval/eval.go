// Package eval computes the evaluation metrics of Section 5 against the
// ground-truth world: sampled pair precision (Figures 9 and 11),
// concept-subconcept hierarchy statistics (Table 4), and concept-size
// distributions (Figure 8).
package eval

import (
	"math/rand"
	"sort"

	"repro/internal/corpus"
	"repro/internal/extraction"
	"repro/internal/graph"
	"repro/internal/kb"
)

// BenchmarkConcepts are the 40 benchmark concepts of Table 5.
var BenchmarkConcepts = []string{
	"actor", "aircraft model", "airline", "airport", "album", "architect",
	"artist", "book", "cancer center", "celebrity", "chemical compound",
	"city", "company", "digital camera", "disease", "drug", "festival",
	"file format", "film", "food", "football team", "game publisher",
	"internet protocol", "mountain", "museum", "olympic sport",
	"operating system", "political party", "politician",
	"programming language", "public library", "religion", "restaurant",
	"river", "skyscraper", "tennis player", "theater", "university",
	"web browser", "website",
}

// ConceptPrecision is the judged precision of one concept's sampled pairs.
type ConceptPrecision struct {
	Concept string
	Sampled int
	Correct int
}

// Precision returns Correct/Sampled, or 0 for an unsampled concept.
func (c ConceptPrecision) Precision() float64 {
	if c.Sampled == 0 {
		return 0
	}
	return float64(c.Correct) / float64(c.Sampled)
}

// SampleConceptPrecision reproduces the Figure 9 protocol: for each
// benchmark concept, sample up to maxPerConcept extracted
// instances/sub-concepts uniformly and judge them against the world (the
// stand-in for the paper's human judges).
func SampleConceptPrecision(store *kb.Store, w *corpus.World, concepts []string, maxPerConcept int, seed int64) []ConceptPrecision {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ConceptPrecision, 0, len(concepts))
	for _, c := range concepts {
		subs := store.SubsOf(c)
		cp := ConceptPrecision{Concept: c}
		if len(subs) == 0 {
			out = append(out, cp)
			continue
		}
		idx := rng.Perm(len(subs))
		if len(idx) > maxPerConcept {
			idx = idx[:maxPerConcept]
		}
		for _, i := range idx {
			cp.Sampled++
			if w.IsTrueIsA(c, subs[i]) {
				cp.Correct++
			}
		}
		out = append(out, cp)
	}
	return out
}

// Average returns the mean precision over the sampled concepts.
func Average(cps []ConceptPrecision) float64 {
	var sum float64
	n := 0
	for _, cp := range cps {
		if cp.Sampled > 0 {
			sum += cp.Precision()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PairSetPrecision judges an explicit pair list (used for the
// per-iteration curve of Figure 11).
func PairSetPrecision(pairs []kb.Pair, w *corpus.World) float64 {
	if len(pairs) == 0 {
		return 0
	}
	correct := 0
	for _, p := range pairs {
		if w.IsTrueIsA(p.X, p.Y) {
			correct++
		}
	}
	return float64(correct) / float64(len(pairs))
}

// HierarchyMetrics is one row of Table 4.
type HierarchyMetrics struct {
	Name        string
	IsAPairs    int     // concept-subconcept edges
	AvgChildren float64 // average concept-children per concept
	AvgParents  float64 // average concept-parents per concept
	AvgLevel    float64 // average concept level (longest path to a leaf)
	MaxLevel    int
}

// Hierarchy computes the Table 4 metrics of a taxonomy graph.
func Hierarchy(name string, g graph.Reader) (HierarchyMetrics, error) {
	m := HierarchyMetrics{Name: name}
	depth, err := g.Level()
	if err != nil {
		return m, err
	}
	concepts := g.Concepts()
	if len(concepts) == 0 {
		return m, nil
	}
	var children, parents, levelSum int
	for _, c := range concepts {
		for _, e := range g.Children(c) {
			if g.Kind(e.To) == graph.KindConcept {
				m.IsAPairs++
				children++
				parents++
			}
		}
		if depth[c] > m.MaxLevel {
			m.MaxLevel = depth[c]
		}
		levelSum += depth[c]
	}
	n := float64(len(concepts))
	m.AvgChildren = float64(children) / n
	m.AvgParents = float64(parents) / n
	m.AvgLevel = float64(levelSum) / n
	return m, nil
}

// SizeBucket is one bar of Figure 8's concept-size histogram.
type SizeBucket struct {
	Label    string
	Min, Max int // [Min, Max); Max = 0 means unbounded
	Count    int
}

// sizeBuckets mirrors the intervals of Figure 8.
func sizeBuckets() []SizeBucket {
	return []SizeBucket{
		{Label: ">=1M", Min: 1000000},
		{Label: "[100K,1M)", Min: 100000, Max: 1000000},
		{Label: "[10K,100K)", Min: 10000, Max: 100000},
		{Label: "[1K,10K)", Min: 1000, Max: 10000},
		{Label: "[100,1K)", Min: 100, Max: 1000},
		{Label: "[10,100)", Min: 10, Max: 100},
		{Label: "[5,10)", Min: 5, Max: 10},
		{Label: "<5", Min: 0, Max: 5},
	}
}

// SizeDistribution computes Figure 8: the number of concepts per
// concept-size bucket, where concept size is the number of instances
// directly under the concept, plus the share of all concept-instance
// pairs held by the 10 largest concepts (the paper's 70% vs 4.5%
// contrast between Freebase and Probase).
type SizeDistribution struct {
	Name       string
	Buckets    []SizeBucket
	TotalPairs int
	Top10Pairs int
	Top10Share float64
}

// Distribution computes the Figure 8 statistics for a taxonomy graph.
func Distribution(name string, g graph.Reader) SizeDistribution {
	d := SizeDistribution{Name: name, Buckets: sizeBuckets()}
	var sizes []int
	for _, c := range g.Concepts() {
		size := 0
		for _, e := range g.Children(c) {
			if g.Kind(e.To) == graph.KindInstance {
				size++
			}
		}
		sizes = append(sizes, size)
		d.TotalPairs += size
		for i := range d.Buckets {
			b := &d.Buckets[i]
			if size >= b.Min && (b.Max == 0 || size < b.Max) {
				b.Count++
				break
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	for i := 0; i < 10 && i < len(sizes); i++ {
		d.Top10Pairs += sizes[i]
	}
	if d.TotalPairs > 0 {
		d.Top10Share = float64(d.Top10Pairs) / float64(d.TotalPairs)
	}
	return d
}

// StorePrecision judges every pair in Γ (used by tests; the paper's
// protocol samples instead).
func StorePrecision(store *kb.Store, w *corpus.World) (precision float64, total int) {
	correct := 0
	store.ForEachPair(func(x, y string, n int64) {
		total++
		if w.IsTrueIsA(x, y) {
			correct++
		}
	})
	if total == 0 {
		return 0, 0
	}
	return float64(correct) / float64(total), total
}

// Recall measures how many ground-truth pairs the store recovered, over
// the pairs the corpus could possibly support (the world's direct
// concept-instance and concept-subconcept links).
func Recall(store *kb.Store, w *corpus.World) (recall float64, found, total int) {
	for _, key := range w.Keys() {
		c := w.Concept(key)
		for _, inst := range c.Instances {
			total++
			if store.Count(c.Label, extraction.CanonicalSub(inst)) > 0 {
				found++
			}
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return float64(found) / float64(total), found, total
}
