package apps

import (
	"testing"

	"repro/internal/core"
)

func TestMixedAbstractionDisambiguates(t *testing.T) {
	pb, _, c := fixture(t)
	m := NewMixedAbstractor(pb, c.Sentences)

	// Footnote 1 of the paper: {headquarters, apple} -> company. The
	// attribute term pulls "apple" to its company sense.
	if !m.KnownAttribute("headquarters") {
		t.Skip("corpus did not mention headquarters; enlarge the fixture")
	}
	ranked := m.Abstract([]string{"headquarters", "apple"}, 5)
	if len(ranked) == 0 {
		t.Fatal("no concepts")
	}
	top := core.BaseLabel(ranked[0].Label)
	if top != "company" && top != "it company" && top != "large company" {
		t.Errorf("top concept = %v, want a company concept; full: %v", top, ranked)
	}

	// Without the attribute, "apple" alone leans to its food senses.
	alone := m.Abstract([]string{"apple"}, 8)
	foodish := false
	for _, r := range alone {
		b := core.BaseLabel(r.Label)
		if b == "fruit" || b == "food" {
			foodish = true
		}
	}
	if !foodish {
		t.Errorf("apple alone has no food reading: %v", alone)
	}
}

func TestMixedAbstractionPureInstances(t *testing.T) {
	pb, _, c := fixture(t)
	m := NewMixedAbstractor(pb, c.Sentences)
	ranked := m.Abstract([]string{"oak", "basil"}, 3)
	if len(ranked) == 0 {
		t.Fatal("no concepts for plant instances")
	}
	if top := core.BaseLabel(ranked[0].Label); top != "plant" && top != "organism" && top != "tree" && top != "herb" {
		t.Errorf("top concept for {oak, basil} = %q: %v", top, ranked)
	}
}

func TestMixedAbstractionUnknownTerms(t *testing.T) {
	pb, _, c := fixture(t)
	m := NewMixedAbstractor(pb, c.Sentences)
	if got := m.Abstract([]string{"zzzz unknown", "qqqq missing"}, 3); got != nil {
		t.Errorf("unknown terms produced %v", got)
	}
	// One known term still works.
	if got := m.Abstract([]string{"zzzz unknown", "IBM"}, 3); len(got) == 0 {
		t.Error("known term drowned by unknown one")
	}
}

func TestCaseVariants(t *testing.T) {
	vs := caseVariants("new york")
	want := map[string]bool{"new york": true, "New York": true, "NEW YORK": true}
	for _, v := range vs {
		delete(want, v)
	}
	if len(want) != 0 {
		t.Errorf("missing variants %v in %v", want, vs)
	}
}

func TestRecognizer(t *testing.T) {
	pb, w, _ := fixture(t)
	r := NewRecognizer(pb)
	ms := r.Recognize("Yesterday IBM opened an office in New York near the river.")
	byText := map[string]Mention{}
	for _, m := range ms {
		byText[m.Text] = m
	}
	ibm, ok := byText["IBM"]
	if !ok {
		t.Fatalf("IBM not recognised: %v", ms)
	}
	if !w.IsTrueIsA(ibm.Concept, "IBM") {
		t.Errorf("IBM tagged %q, not a true concept", ibm.Concept)
	}
	ny, ok := byText["New York"]
	if !ok {
		t.Fatalf("New York not recognised: %v", ms)
	}
	if ny.End-ny.Start != 2 {
		t.Errorf("New York span = %+v, want 2 words", ny)
	}
	if !w.IsTrueIsA(ny.Concept, "New York") {
		t.Errorf("New York tagged %q", ny.Concept)
	}
}

func TestRecognizerNoFalseStopwordMatches(t *testing.T) {
	pb, _, _ := fixture(t)
	r := NewRecognizer(pb)
	for _, m := range r.Recognize("the and of with such as other") {
		t.Errorf("stop-word span recognised: %+v", m)
	}
}

func TestRecognizerPluralCommonNouns(t *testing.T) {
	pb, _, _ := fixture(t)
	r := NewRecognizer(pb)
	ms := r.Recognize("I love cats and dogs")
	found := 0
	for _, m := range ms {
		if m.Text == "cats" || m.Text == "dogs" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("plural mentions found = %d: %v", found, ms)
	}
}

func TestRecognizerEmpty(t *testing.T) {
	pb, _, _ := fixture(t)
	r := NewRecognizer(pb)
	if ms := r.Recognize(""); len(ms) != 0 {
		t.Errorf("empty text produced %v", ms)
	}
}
