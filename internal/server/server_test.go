package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

var (
	pbOnce sync.Once
	pbVal  *core.Probase
	pbErr  error
)

// testProbase builds one taxonomy for all server tests.
func testProbase(t testing.TB) *core.Probase {
	t.Helper()
	pbOnce.Do(func() {
		w := corpus.DefaultWorld(1)
		c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 8000, Seed: 11}).Generate()
		inputs := make([]extraction.Input, len(c.Sentences))
		for i, s := range c.Sentences {
			inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
		}
		pbVal, pbErr = core.Build(inputs, core.Config{})
	})
	if pbErr != nil {
		t.Fatal(pbErr)
	}
	return pbVal
}

func newTestServer(t testing.TB) *Server {
	t.Helper()
	return New(testProbase(t), Config{})
}

// get performs one request against the handler without a network hop.
func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if ct := rec.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: invalid JSON %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec, body
}

func results(t *testing.T, body map[string]any) []any {
	t.Helper()
	rs, ok := body["results"].([]any)
	if !ok {
		t.Fatalf("no results array in %v", body)
	}
	return rs
}

func hasLabel(rs []any, label string) bool {
	for _, r := range rs {
		m, ok := r.(map[string]any)
		if !ok {
			return false
		}
		if m["label"] == label {
			return true
		}
		if l, ok := m["label"].(string); ok && core.BaseLabel(l) == label {
			return true
		}
	}
	return false
}

func TestInstancesEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec, body := get(t, s, "/v1/instances?concept=companies&k=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if body["concept"] != "companies" || body["k"] != float64(10) {
		t.Errorf("params not echoed: %v", body)
	}
	if rs := results(t, body); !hasLabel(rs, "IBM") {
		t.Errorf("IBM missing from instances of companies: %v", rs)
	}
	// Unknown concepts are a valid query with an empty answer, not a 4xx.
	rec, body = get(t, s, "/v1/instances?concept=zzz-not-a-concept")
	if rec.Code != http.StatusOK || len(results(t, body)) != 0 {
		t.Errorf("unknown concept: status %d, body %v", rec.Code, body)
	}
}

func TestConceptsEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec, body := get(t, s, "/v1/concepts?term=IBM&k=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if rs := results(t, body); !hasLabel(rs, "company") {
		t.Errorf("company missing from concepts of IBM: %v", rs)
	}
}

func TestTypicalityEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec, body := get(t, s, "/v1/typicality?concept=companies&instance=IBM")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	tix, _ := body["t_instance_given_concept"].(float64)
	txi, _ := body["t_concept_given_instance"].(float64)
	if tix <= 0 || txi <= 0 {
		t.Errorf("typicality scores = %v / %v, want both > 0 (body %v)", tix, txi, body)
	}
}

func TestPlausibilityEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec, body := get(t, s, "/v1/plausibility?x=companies&y=IBM")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if p, _ := body["plausibility"].(float64); p <= 0 {
		t.Errorf("plausibility(companies, IBM) = %v, want > 0", p)
	}
}

func TestConceptualizeEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec, body := get(t, s, "/v1/conceptualize?terms=China,India,Brazil&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	if len(results(t, body)) == 0 {
		t.Error("joint conceptualisation returned nothing")
	}
	// Free-text input goes through the entity recogniser.
	rec, body = get(t, s, "/v1/conceptualize?text=IBM+opened+an+office")
	if rec.Code != http.StatusOK {
		t.Fatalf("text conceptualize status = %d, body %s", rec.Code, rec.Body.String())
	}
	if len(results(t, body)) == 0 {
		t.Error("text conceptualisation returned nothing")
	}
	terms, _ := body["terms"].([]any)
	found := false
	for _, term := range terms {
		if term == "IBM" {
			found = true
		}
	}
	if !found {
		t.Errorf("recogniser did not surface IBM: %v", body)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec, body := get(t, s, "/v1/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if body["status"] != "ok" {
		t.Errorf("status field = %v", body["status"])
	}
	if n, _ := body["nodes"].(float64); n <= 0 {
		t.Errorf("nodes = %v, want > 0", body["nodes"])
	}
}

func TestBadParameters(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/v1/instances", http.StatusBadRequest},                                             // missing concept
		{"/v1/instances?concept=companies&k=0", http.StatusBadRequest},                       // non-positive k
		{"/v1/instances?concept=companies&k=abc", http.StatusBadRequest},                     // non-numeric k
		{"/v1/concepts", http.StatusBadRequest},                                              // missing term
		{"/v1/typicality?concept=companies", http.StatusBadRequest},                          // missing instance
		{"/v1/typicality?instance=IBM", http.StatusBadRequest},                               // missing concept
		{"/v1/plausibility?x=companies", http.StatusBadRequest},                              // missing y
		{"/v1/conceptualize", http.StatusBadRequest},                                         // no terms, no text
		{"/v1/conceptualize?terms=a&text=b", http.StatusBadRequest},                          // both
		{"/v1/conceptualize?terms=zz1,zz2", http.StatusNotFound},                             // nothing known
		{"/v1/conceptualize?terms=" + strings.Repeat("x,", 40) + "x", http.StatusBadRequest}, // too many
	}
	for _, tc := range cases {
		rec, body := get(t, s, tc.path)
		if rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.path, rec.Code, tc.want)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: error body missing: %s", tc.path, rec.Body.String())
		}
	}
	// Wrong method.
	req := httptest.NewRequest(http.MethodDelete, "/v1/instances?concept=companies", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status = %d, want 405", rec.Code)
	}
}

func TestCacheHitOnRepeatedQuery(t *testing.T) {
	s := newTestServer(t)
	first, firstBody := get(t, s, "/v1/instances?concept=companies&k=7")
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first query X-Cache = %q, want miss", got)
	}
	second, secondBody := get(t, s, "/v1/instances?concept=companies&k=7")
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second query X-Cache = %q, want hit", got)
	}
	if fmt.Sprint(firstBody) != fmt.Sprint(secondBody) {
		t.Errorf("cache changed the response:\nmiss: %v\nhit:  %v", firstBody, secondBody)
	}
	// A different k is a different query.
	third, _ := get(t, s, "/v1/instances?concept=companies&k=8")
	if got := third.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("different-k query X-Cache = %q, want miss", got)
	}
}

// debugVars fetches and decodes /debug/vars from a live server.
func debugVars(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatalf("invalid /debug/vars JSON: %v\n%s", err, raw)
	}
	return vars
}

// TestConcurrentClients hammers a live server with overlapping queries
// from many goroutines. Under -race this fails if the cache shards, the
// metrics, or the typicality memoisation are unsynchronised; it also
// asserts that the hot-query cache actually absorbed repeated queries
// (nonzero cache_hits on /debug/vars).
func TestConcurrentClients(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	paths := []string{
		"/v1/instances?concept=companies&k=5",
		"/v1/instances?concept=animals&k=5",
		"/v1/instances?concept=countries&k=5",
		"/v1/concepts?term=IBM&k=5",
		"/v1/concepts?term=China&k=5",
		"/v1/typicality?concept=companies&instance=IBM",
		"/v1/plausibility?x=companies&y=IBM",
		"/v1/conceptualize?terms=China,India,Brazil&k=5",
		"/v1/healthz",
	}
	const (
		clients  = 100 // concurrent goroutines, per the acceptance bar
		requests = 4   // per client -> 400 requests total
	)
	client := ts.Client()
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				path := paths[(c+i)%len(paths)]
				resp, err := client.Get(ts.URL + path)
				if err != nil {
					errc <- err
					return
				}
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	vars := debugVars(t, ts.URL)
	var totalRequests, totalHits float64
	for _, name := range allEndpoints {
		ep, ok := vars[name].(map[string]any)
		if !ok {
			t.Fatalf("endpoint %q missing from /debug/vars: %v", name, vars)
		}
		req, _ := ep["requests"].(float64)
		hits, _ := ep["cache_hits"].(float64)
		totalRequests += req
		totalHits += hits
	}
	if want := float64(clients * requests); totalRequests != want {
		t.Errorf("requests counted = %v, want %v", totalRequests, want)
	}
	if totalHits == 0 {
		t.Error("no cache hits after 200 overlapping requests; sharded cache is not serving")
	}
	t.Logf("%v requests, %v cache hits", totalRequests, totalHits)
}

// The request deadline must abort work, not hang: a server configured
// with a tiny timeout still answers (with 200 for these fast queries or
// 503, never a hang).
func TestRequestTimeoutConfigured(t *testing.T) {
	s := New(testProbase(t), Config{RequestTimeout: time.Nanosecond})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec, _ := get(t, s, "/v1/healthz")
		if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable {
			t.Errorf("status = %d under tiny deadline", rec.Code)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request hung under tiny deadline")
	}
}

func TestMetricsErrorsCounted(t *testing.T) {
	s := newTestServer(t)
	get(t, s, "/v1/instances") // missing param -> 400
	ts := httptest.NewServer(s)
	defer ts.Close()
	vars := debugVars(t, ts.URL)
	ep := vars["instances"].(map[string]any)
	if errs, _ := ep["errors"].(float64); errs == 0 {
		t.Error("error counter not incremented by a 400")
	}
	if _, ok := ep["latency"].(map[string]any); !ok {
		t.Errorf("latency histogram missing: %v", ep)
	}
}
