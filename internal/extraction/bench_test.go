package extraction

import (
	"testing"

	"repro/internal/corpus"
)

func benchInputs(n int) []Input {
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: n, Seed: 11}).Generate()
	inputs := make([]Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = Input{Text: s.Text, PageScore: s.PageScore}
	}
	return inputs
}

// BenchmarkRun measures the full iterative extraction (all rounds to
// fixpoint) over a 10k-sentence corpus.
func BenchmarkRun(b *testing.B) {
	inputs := benchInputs(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(inputs, DefaultConfig())
		if res.Store.NumPairs() == 0 {
			b.Fatal("no pairs")
		}
	}
}

// BenchmarkRunSerial isolates the worker-pool benefit.
func BenchmarkRunSerial(b *testing.B) {
	inputs := benchInputs(10000)
	cfg := DefaultConfig()
	cfg.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(inputs, cfg)
		if res.Store.NumPairs() == 0 {
			b.Fatal("no pairs")
		}
	}
}
