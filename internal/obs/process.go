package obs

import "runtime"

// RegisterProcessGauges adds the standard process-health gauges to the
// registry: goroutine count, heap usage, GC activity. Values are read
// at scrape time (runtime.ReadMemStats briefly stops the world, which
// is acceptable at scrape frequency).
func RegisterProcessGauges(r *Registry) {
	r.GaugeFunc("probase_process_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("probase_process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(readMemStats().HeapAlloc) })
	r.GaugeFunc("probase_process_heap_objects",
		"Number of allocated heap objects.",
		func() float64 { return float64(readMemStats().HeapObjects) })
	r.GaugeFunc("probase_process_sys_bytes",
		"Total bytes of memory obtained from the OS.",
		func() float64 { return float64(readMemStats().Sys) })
	r.GaugeFunc("probase_process_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() float64 { return float64(readMemStats().NumGC) })
}

func readMemStats() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}
