package taxstats

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/graph"
)

// Fingerprint hashes the logical content of a taxonomy graph — labels
// in node order, then every node's out-edges (target, count,
// plausibility bits) in the Reader's sorted order — into a 16-hex-digit
// FNV-1a digest. It depends only on the Reader contract, never on the
// storage backend, so a Builder and the Frozen view frozen from it (or
// a snapshot round-trip through either format) fingerprint identically,
// while any change to a label, an edge, a count or a score changes the
// digest. The serving layer reports it on /v1/healthz so two replicas
// can be checked for serving the same taxonomy with one string compare.
func Fingerprint(g graph.Reader) string {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	n := g.NumNodes()
	u64(uint64(n))
	for id := 0; id < n; id++ {
		label := g.Label(graph.NodeID(id))
		u64(uint64(len(label)))
		h.Write([]byte(label))
	}
	for id := 0; id < n; id++ {
		edges := g.Children(graph.NodeID(id))
		u64(uint64(len(edges)))
		for _, e := range edges {
			u64(uint64(e.To))
			u64(uint64(e.Count))
			u64(math.Float64bits(e.Plausibility))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
