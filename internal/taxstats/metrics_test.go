package taxstats

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestRegisterExposesAndRefreshes(t *testing.T) {
	g := companyGraph()
	p1, err := Compute(g, mustTypicality(t, g), Options{})
	if err != nil {
		t.Fatal(err)
	}

	var cur atomic.Pointer[Profile]
	reg := obs.NewRegistry()
	Register(reg, cur.Load)

	// Nil profile: everything scrapes as 0 rather than panicking.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "probase_snapshot_concepts 0") {
		t.Errorf("nil-profile scrape missing zero gauge:\n%s", sb.String())
	}

	cur.Store(p1)
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"probase_snapshot_concepts 3",
		"probase_snapshot_instances 4",
		"probase_snapshot_roots 2",
		"probase_snapshot_orphans 1",
		"probase_snapshot_max_depth 2",
		"probase_snapshot_topo_levels 3",
		`probase_snapshot_score{dist="plausibility",stat="count"} 8`,
		`probase_snapshot_score{dist="entropy",stat="count"} 3`,
		`probase_snapshot_score{dist="typicality",stat="p50"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}

	// Swap the profile behind the provider: the same registry scrapes
	// the new values with no re-registration.
	g2 := companyGraph()
	g2.AddEdge(g2.Lookup("company"), g2.Intern("Acme"), 3, 0.6)
	p2, err := Compute(g2, mustTypicality(t, g2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cur.Store(p2)
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "probase_snapshot_instances 5") {
		t.Errorf("scrape did not refresh after profile swap:\n%s", sb.String())
	}
}
