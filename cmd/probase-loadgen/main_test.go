package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
	"repro/internal/server"
)

var (
	pbOnce sync.Once
	pbVal  *core.Probase
	pbErr  error
)

func testServer(t testing.TB) *httptest.Server {
	t.Helper()
	pbOnce.Do(func() {
		w := corpus.DefaultWorld(1)
		c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: 3000, Seed: 11}).Generate()
		inputs := make([]extraction.Input, len(c.Sentences))
		for i, s := range c.Sentences {
			inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
		}
		pbVal, pbErr = core.Build(inputs, core.Config{})
	})
	if pbErr != nil {
		t.Fatal(pbErr)
	}
	ts := httptest.NewServer(server.New(pbVal, server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRunEndToEnd drives the binary's run() against an in-process
// server, then exercises the offline -check gate in both directions
// on the report it wrote.
func TestRunEndToEnd(t *testing.T) {
	ts := testServer(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "capacity.json")

	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL,
		"-workers", "4",
		"-max-requests", "400",
		"-duration", "30s",
		"-report-interval", "0",
		"-queries", "400",
		"-json", path,
		"-slo-p99", "1m",
		"-slo-error-rate", "0",
		"-slo-min-requests", "100",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"endpoint", "healthz", "SLO satisfied", "wrote "} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := benchfmt.ValidateBytes(path, raw); err != nil {
		t.Errorf("written report invalid: %v", err)
	}

	// Offline gate, passing thresholds.
	stdout.Reset()
	if err := run(context.Background(), []string{
		"-check", path, "-slo-p99", "1m", "-slo-error-rate", "0",
	}, &stdout, &stderr); err != nil {
		t.Errorf("generous -check failed: %v", err)
	}
	if !strings.Contains(stdout.String(), "SLO satisfied") {
		t.Errorf("-check output: %q", stdout.String())
	}

	// Offline gate, threshold below the measured p99: must fail.
	err = run(context.Background(), []string{
		"-check", path, "-slo-p99", "1ns",
	}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "p99") {
		t.Errorf("1ns -check err = %v, want p99 violation", err)
	}

	// SLO file wiring: thresholds read from JSON, flag overrides win.
	sloPath := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(sloPath, []byte(`{"p99_ms": 60000, "max_error_rate": 0, "min_requests": 10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-check", path, "-slo-file", sloPath}, &stdout, &stderr); err != nil {
		t.Errorf("slo-file check failed: %v", err)
	}
	err = run(context.Background(), []string{
		"-check", path, "-slo-file", sloPath, "-slo-p99", "1ns",
	}, &stdout, &stderr)
	if err == nil {
		t.Error("explicit -slo-p99 did not override the slo file")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cases := map[string][]string{
		"bad-flag":        {"-bogus"},
		"bad-mix":         {"-mix", "nonsense"},
		"empty-target":    {"-target", "", "-duration", "1ms"},
		"check-no-slo":    {"-check", "whatever.json"},
		"check-missing":   {"-check", "/does/not/exist.json", "-slo-p99", "1s"},
		"slo-file-absent": {"-slo-file", "/does/not/exist.json"},
	}
	for name, args := range cases {
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "probase-loadgen version") {
		t.Errorf("stdout = %q", stdout.String())
	}
}

// TestCheckRejectsNonLoadgenReport ensures -check refuses a report
// without a loadgen experiment entry.
func TestCheckRejectsNonLoadgenReport(t *testing.T) {
	r := benchfmt.Report{
		Schema:       benchfmt.Schema,
		Options:      benchfmt.Options{Scale: 1, Sentences: 10, Seed: 1, Queries: 10},
		Experiments:  []benchfmt.Experiment{{Name: "table1", Seconds: 1, Result: map[string]any{}}},
		TotalSeconds: 1,
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	err = run(context.Background(), []string{"-check", path, "-slo-p99", "1s"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "loadgen") {
		t.Errorf("err = %v, want missing-loadgen-experiment error", err)
	}
}
