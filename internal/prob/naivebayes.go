// Package prob implements the probabilistic layer of Section 4: the
// plausibility P(x,y) of each isA claim (a noisy-or over per-sentence
// evidence probabilities produced by a Naive Bayes model, Eqs. 1-2) and
// the typicality T(i|x) / T(x|i) (Eqs. 3-4), with the reachability
// probabilities computed by the level-order dynamic program of
// Algorithm 3.
//
// The DP parallelises within each topological level on the shared
// worker pool (internal/parallel) — the axis Algorithm 3's own
// correctness argument frees up, since a level's rows read only values
// from strictly earlier levels. New takes Options{Workers, Reporter};
// the reach table is bit-for-bit identical at every worker count. A
// built Typicality is safe for concurrent queries, and Model's scoring
// methods are read-only after Train, so both sides of the layer can be
// fanned out over.
package prob

import "math"

// Feature is one discrete extraction feature of an evidence sentence
// (the set F_i of Eq. 2).
type Feature struct {
	Name  string
	Value int
}

// NaiveBayes is a two-class Naive Bayes model over discrete features with
// Laplace smoothing. The positive class means "this evidence supports a
// true isA claim".
type NaiveBayes struct {
	classCounts [2]float64
	// counts[name][value][class]
	counts map[string]map[int][2]float64
	// distinct values seen per feature, for smoothing
	values map[string]map[int]bool
}

// NewNaiveBayes returns an empty model.
func NewNaiveBayes() *NaiveBayes {
	return &NaiveBayes{
		counts: make(map[string]map[int][2]float64),
		values: make(map[string]map[int]bool),
	}
}

// Train adds one example with the given label.
func (nb *NaiveBayes) Train(features []Feature, positive bool) {
	cls := 0
	if positive {
		cls = 1
	}
	nb.classCounts[cls]++
	for _, f := range features {
		m := nb.counts[f.Name]
		if m == nil {
			m = make(map[int][2]float64)
			nb.counts[f.Name] = m
		}
		c := m[f.Value]
		c[cls]++
		m[f.Value] = c
		v := nb.values[f.Name]
		if v == nil {
			v = make(map[int]bool)
			nb.values[f.Name] = v
		}
		v[f.Value] = true
	}
}

// Trained reports whether both classes have examples.
func (nb *NaiveBayes) Trained() bool {
	return nb.classCounts[0] > 0 && nb.classCounts[1] > 0
}

// Prob returns the posterior probability of the positive class given the
// features (Eq. 2 with Laplace smoothing).
func (nb *NaiveBayes) Prob(features []Feature) float64 {
	if !nb.Trained() {
		// An untrained model is uninformative.
		return 0.5
	}
	total := nb.classCounts[0] + nb.classCounts[1]
	logP := [2]float64{
		math.Log(nb.classCounts[0] / total),
		math.Log(nb.classCounts[1] / total),
	}
	for _, f := range features {
		vals := float64(len(nb.values[f.Name]))
		if vals == 0 {
			continue // unseen feature name: uninformative
		}
		c := nb.counts[f.Name][f.Value]
		for cls := 0; cls < 2; cls++ {
			logP[cls] += math.Log((c[cls] + 1) / (nb.classCounts[cls] + vals))
		}
	}
	// Normalise in log space.
	m := math.Max(logP[0], logP[1])
	p0 := math.Exp(logP[0] - m)
	p1 := math.Exp(logP[1] - m)
	return p1 / (p0 + p1)
}
