package prob

import (
	"math"
	"testing"
)

// TestAlg3ReachDeterministicAcrossWorkers asserts the concurrency
// contract of the level-parallel DP: the reach table a workers=8 run
// produces is exactly (bit-for-bit, not within epsilon) the table the
// serial run produces. CI runs this under -race, which also checks the
// fan-out for data races.
func TestAlg3ReachDeterministicAcrossWorkers(t *testing.T) {
	g := layeredBenchGraph(5, 60)
	serial, err := New(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par, err := New(g, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if len(par.reach) != len(serial.reach) {
			t.Fatalf("workers=%d: %d reach entries, serial has %d", w, len(par.reach), len(serial.reach))
		}
		for k, p := range serial.reach {
			q, ok := par.reach[k]
			if !ok {
				t.Fatalf("workers=%d: entry %x missing", w, k)
			}
			if math.Float64bits(p) != math.Float64bits(q) {
				t.Fatalf("workers=%d: entry %x = %v, serial %v (bits differ)", w, k, q, p)
			}
		}
		if math.Float64bits(par.totalMass) != math.Float64bits(serial.totalMass) {
			t.Fatalf("workers=%d: totalMass %v, serial %v", w, par.totalMass, serial.totalMass)
		}
	}
}
