#!/usr/bin/env python3
"""Docs link checker: every relative markdown link must resolve.

Usage: check_links.py FILE.md [FILE.md ...]

Checks inline links and images ([text](target), ![alt](target)) whose
target is a relative path: the referenced file or directory must exist
relative to the linking document. External links (scheme://, mailto:)
and pure in-page anchors (#...) are skipped; a fragment on a relative
link is stripped before the existence check. Code spans and fenced code
blocks are ignored so `[0]` indexing examples and sample output do not
trip the checker.

Exits non-zero listing every broken link.
"""
import os
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE = re.compile(r"^(```|~~~)")
CODESPAN = re.compile(r"`[^`]*`")

broken = []
checked = 0
for path in sys.argv[1:]:
    base = os.path.dirname(path)
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK.findall(CODESPAN.sub("``", line)):
                if "://" in target or target.startswith(("mailto:", "#")):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                checked += 1
                if not os.path.exists(os.path.join(base, rel)):
                    broken.append(f"{path}:{lineno}: broken link -> {target}")

for b in broken:
    print(b)
if broken:
    sys.exit(f"{len(broken)} broken relative link(s)")
if checked == 0:
    sys.exit("no relative links checked — wrong file list?")
print(f"{checked} relative links OK across {len(sys.argv) - 1} files")
