// Package repro is a from-scratch Go reproduction of "Probase: A
// Probabilistic Taxonomy for Text Understanding" (Wu, Li, Wang, Zhu —
// SIGMOD 2012).
//
// The library lives under internal/: the iterative semantic extractor
// (internal/extraction), the sense-aware taxonomy builder
// (internal/taxonomy), the probabilistic layer (internal/prob), the
// public facade (internal/core), the substrates (internal/corpus,
// internal/graph, internal/querylog, internal/nlp, internal/hearst,
// internal/kb), the comparators (internal/baseline), the applications
// (internal/apps), the serving layer (internal/server — a concurrent
// HTTP query service with a sharded hot-query cache, fronted by
// cmd/probase-serve; see its package docs for the endpoint contract;
// internal/snapshot is the shared snapshot loader) and the evaluation
// harness (internal/eval, internal/experiments).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation.
package repro
