package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/graph"
)

// TestBackendsByteIdentical is the storage-refactor acceptance bar: a
// server backed by the frozen CSR view and one rebound onto a mutable
// Builder holding the same taxonomy must answer every endpoint with
// byte-identical JSON. Any divergence means the two Reader
// implementations disagree on iteration order, scores, or tie-breaks.
func TestBackendsByteIdentical(t *testing.T) {
	pb := testProbase(t)
	if _, ok := pb.Graph.(*graph.Frozen); !ok {
		t.Fatalf("Build produced %T, want the frozen CSR backend", pb.Graph)
	}
	bpb, err := pb.Rebind(graph.NewBuilderFrom(pb.Graph))
	if err != nil {
		t.Fatal(err)
	}
	frozenSrv := New(pb, Config{})
	builderSrv := New(bpb, Config{})

	paths := []string{
		"/v1/instances?concept=companies&k=10",
		"/v1/instances?concept=animals&k=25",
		"/v1/instances?concept=zzz-not-a-concept",
		"/v1/concepts?term=IBM&k=10",
		"/v1/concepts?term=China&k=3",
		"/v1/typicality?concept=companies&instance=IBM",
		"/v1/plausibility?x=companies&y=IBM",
		"/v1/plausibility?x=animals&y=IBM",
		"/v1/conceptualize?terms=China,India,Brazil&k=5",
		"/v1/conceptualize?text=IBM+opened+an+office&k=5",
	}
	for _, path := range paths {
		fb := fetchBody(t, frozenSrv, path)
		bb := fetchBody(t, builderSrv, path)
		if fb != bb {
			t.Errorf("%s diverges across backends:\nfrozen:  %s\nbuilder: %s", path, fb, bb)
		}
	}

	// healthz carries uptime and cache occupancy, so compare just the
	// snapshot identity. The fingerprint hashes logical graph content,
	// so the two storage backends must agree on it too.
	var fh, bh struct {
		Status      string `json:"status"`
		Nodes       int    `json:"nodes"`
		Edges       int    `json:"edges"`
		Format      string `json:"snapshot_format"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal([]byte(fetchBody(t, frozenSrv, "/v1/healthz")), &fh); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(fetchBody(t, builderSrv, "/v1/healthz")), &bh); err != nil {
		t.Fatal(err)
	}
	if fh != bh {
		t.Errorf("healthz shape diverges: frozen %+v, builder %+v", fh, bh)
	}
	if fh.Fingerprint == "" {
		t.Error("healthz fingerprint is empty")
	}

	// And the full health profiles (admin stats) must agree as well;
	// uptime naturally differs, so compare only the profile payload.
	var fs, bs struct {
		Profile json.RawMessage `json:"profile"`
	}
	if err := json.Unmarshal([]byte(fetchBody(t, frozenSrv, "/v1/admin/stats")), &fs); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(fetchBody(t, builderSrv, "/v1/admin/stats")), &bs); err != nil {
		t.Fatal(err)
	}
	if string(fs.Profile) != string(bs.Profile) {
		t.Errorf("health profiles diverge across backends:\nfrozen:  %s\nbuilder: %s",
			fs.Profile, bs.Profile)
	}
}

// fetchBody performs one in-process request and returns the raw body.
func fetchBody(t *testing.T, s *Server, path string) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: status = %d, body %s", path, rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}
