package window

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

// fakeClock is a hand-steered clock for deterministic ring tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testOpts(c *fakeClock) Options {
	return Options{BucketWidth: 10 * time.Second, Retention: 30 * time.Minute, Now: c.now}
}

func ok(lat time.Duration) Outcome  { return Outcome{Latency: lat} }
func errOut() Outcome               { return Outcome{Latency: time.Millisecond, Error: true} }
func hit(lat time.Duration) Outcome { return Outcome{Latency: lat, CacheHit: true} }

func TestSeriesBasicWindowStats(t *testing.T) {
	clk := newFakeClock()
	s := NewSeries(testOpts(clk))

	// 60 requests spread over one minute: one per second, every 10th a
	// cache hit, every 20th an error.
	for i := 0; i < 60; i++ {
		o := ok(2 * time.Millisecond)
		if i%10 == 0 {
			o = hit(2 * time.Millisecond)
		}
		if i%20 == 0 {
			o = errOut()
		}
		s.Record(o)
		clk.advance(time.Second)
	}

	// The window slides at bucket granularity: at exactly 12:01:00 the
	// 1m view is the (empty) current bucket plus five trailing full
	// buckets, i.e. events i = 10..59 — the first 10s bucket just slid
	// out.
	st := s.Stats(time.Minute, 5*time.Minute)[0]
	if st.Window != "1m" {
		t.Fatalf("window name = %q, want 1m", st.Window)
	}
	if st.Requests != 50 {
		t.Fatalf("requests = %d, want 50", st.Requests)
	}
	if st.Errors != 2 { // i=20,40 (i=0 slid out)
		t.Fatalf("errors = %d, want 2", st.Errors)
	}
	if st.CacheHits != 3 { // i=10,30,50 (i=0,20,40 became errors)
		t.Fatalf("cache hits = %d, want 3", st.CacheHits)
	}
	if want := 50.0 / 60.0; st.RPS != want {
		t.Fatalf("rps = %v, want %v", st.RPS, want)
	}
	if want := 2.0 / 50.0; st.ErrorRate != want {
		t.Fatalf("error rate = %v, want %v", st.ErrorRate, want)
	}
	if st.P50MS < 1.8 || st.P50MS > 2.2 {
		t.Fatalf("p50 = %vms, want ~2ms", st.P50MS)
	}

	// The 5m window saw the same 60 events but over a 5m nominal span.
	st5 := s.Stats(5 * time.Minute)[0]
	if st5.Requests != 60 {
		t.Fatalf("5m requests = %d, want 60", st5.Requests)
	}
	if want := 60.0 / 300.0; st5.RPS != want {
		t.Fatalf("5m rps = %v, want %v", st5.RPS, want)
	}
}

func TestSeriesWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	s := NewSeries(testOpts(clk))

	s.Record(ok(time.Millisecond))
	clk.advance(2 * time.Minute)
	s.Record(ok(time.Millisecond))

	// The first event fell out of the 1m window but not the 5m one.
	sts := s.Stats(time.Minute, 5*time.Minute)
	if sts[0].Requests != 1 {
		t.Fatalf("1m requests = %d, want 1", sts[0].Requests)
	}
	if sts[1].Requests != 2 {
		t.Fatalf("5m requests = %d, want 2", sts[1].Requests)
	}
}

func TestSeriesIdleGapLongerThanRetention(t *testing.T) {
	clk := newFakeClock()
	s := NewSeries(testOpts(clk))

	for i := 0; i < 100; i++ {
		s.Record(errOut())
	}
	// Sleep past the entire retention: every bucket must clear wholesale,
	// not wrap around and resurface stale counts.
	clk.advance(31 * time.Minute)
	s.Record(ok(time.Millisecond))

	st := s.Stats(30 * time.Minute)[0]
	if st.Requests != 1 || st.Errors != 0 {
		t.Fatalf("after long idle gap: requests=%d errors=%d, want 1/0", st.Requests, st.Errors)
	}
}

func TestSeriesIdleGapWithinRetention(t *testing.T) {
	clk := newFakeClock()
	s := NewSeries(testOpts(clk))

	s.Record(errOut())
	// A gap longer than the short windows but within retention: the old
	// bucket survives in the 30m view only.
	clk.advance(10 * time.Minute)
	s.Record(ok(time.Millisecond))

	sts := s.Stats(time.Minute, 5*time.Minute, 30*time.Minute)
	if sts[0].Requests != 1 || sts[1].Requests != 1 {
		t.Fatalf("1m/5m requests = %d/%d, want 1/1", sts[0].Requests, sts[1].Requests)
	}
	if sts[2].Requests != 2 || sts[2].Errors != 1 {
		t.Fatalf("30m requests/errors = %d/%d, want 2/1", sts[2].Requests, sts[2].Errors)
	}
}

func TestSeriesBackwardsClock(t *testing.T) {
	clk := newFakeClock()
	s := NewSeries(testOpts(clk))

	s.Record(ok(time.Millisecond))
	clk.advance(time.Minute)
	s.Record(ok(time.Millisecond))

	// NTP yanks the clock back two minutes. The ring must not rotate
	// backwards, clear anything, or panic; events land in the bucket the
	// clock last confirmed.
	clk.advance(-2 * time.Minute)
	s.Record(ok(time.Millisecond))
	st := s.Stats(5 * time.Minute)[0]
	if st.Requests != 3 {
		t.Fatalf("requests after backwards step = %d, want 3", st.Requests)
	}

	// Time resumes: once the clock passes the current bucket again the
	// ring rotates normally and nothing was corrupted.
	clk.advance(3 * time.Minute)
	s.Record(ok(time.Millisecond))
	st = s.Stats(30 * time.Minute)[0]
	if st.Requests != 4 {
		t.Fatalf("requests after clock resume = %d, want 4", st.Requests)
	}
}

// TestSeriesMergeOrderIndependence proves the determinism contract: any
// interleaving of the same event multiset within the same buckets
// yields byte-identical Stats JSON.
func TestSeriesMergeOrderIndependence(t *testing.T) {
	events := make([]Outcome, 0, 500)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		events = append(events, Outcome{
			Latency:  time.Duration(rng.Intn(20_000_000)),
			Error:    rng.Intn(10) == 0,
			CacheHit: rng.Intn(3) == 0,
		})
	}

	run := func(perm []int) []byte {
		clk := newFakeClock()
		s := NewSeries(testOpts(clk))
		for _, i := range perm {
			s.Record(events[i])
		}
		clk.advance(5 * time.Second)
		b, err := json.Marshal(s.Stats(DefaultWindows...))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	base := make([]int, len(events))
	for i := range base {
		base[i] = i
	}
	want := run(base)
	for trial := 0; trial < 3; trial++ {
		perm := rng.Perm(len(events))
		if got := run(perm); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: permuted event order changed Stats JSON:\n%s\nvs\n%s", trial, got, want)
		}
	}
}

// TestSeriesDeterministicJSON pins the exact serialized form under an
// injected clock — the acceptance criterion that rolling-window stats
// are byte-deterministic.
func TestSeriesDeterministicJSON(t *testing.T) {
	build := func() []byte {
		clk := newFakeClock()
		s := NewSeries(testOpts(clk))
		for i := 0; i < 30; i++ {
			s.Record(Outcome{Latency: time.Duration(i) * time.Millisecond, Error: i%7 == 0, CacheHit: i%2 == 0})
			clk.advance(3 * time.Second)
		}
		b, err := json.Marshal(s.Stats(DefaultWindows...))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different JSON:\n%s\nvs\n%s", a, b)
	}
}

func TestSeriesReset(t *testing.T) {
	clk := newFakeClock()
	s := NewSeries(testOpts(clk))
	for i := 0; i < 10; i++ {
		s.Record(errOut())
	}
	s.Reset()
	st := s.Stats(30 * time.Minute)[0]
	if st.Requests != 0 || st.Errors != 0 || st.P99MS != 0 {
		t.Fatalf("after Reset: %+v, want zeroes", st)
	}
}

func TestSetFanOut(t *testing.T) {
	clk := newFakeClock()
	set := NewSet([]string{"instances", "concepts"}, testOpts(clk))

	set.Record("instances", ok(time.Millisecond))
	set.Record("instances", errOut())
	set.Record("concepts", ok(time.Millisecond))
	set.Record("unknown-endpoint", ok(time.Millisecond)) // aggregate only

	if got := set.Series("instances").Stats(time.Minute)[0].Requests; got != 2 {
		t.Fatalf("instances requests = %d, want 2", got)
	}
	if got := set.Series("concepts").Stats(time.Minute)[0].Errors; got != 0 {
		t.Fatalf("concepts errors = %d, want 0", got)
	}
	if set.Series("unknown-endpoint") != nil {
		t.Fatal("unknown endpoint should have no series")
	}
	tot := set.Total().Stats(time.Minute)[0]
	if tot.Requests != 4 || tot.Errors != 1 {
		t.Fatalf("total requests/errors = %d/%d, want 4/1", tot.Requests, tot.Errors)
	}

	set.Reset()
	if got := set.Total().Stats(time.Minute)[0].Requests; got != 0 {
		t.Fatalf("total after Reset = %d, want 0", got)
	}
	if got := len(set.Endpoints()); got != 2 {
		t.Fatalf("endpoints = %d, want 2", got)
	}
}

func TestName(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{time.Minute, "1m"},
		{5 * time.Minute, "5m"},
		{30 * time.Minute, "30m"},
		{time.Hour, "1h"},
		{90 * time.Second, "90s"},
		{1500 * time.Millisecond, "1.5s"},
	}
	for _, c := range cases {
		if got := Name(c.d); got != c.want {
			t.Errorf("Name(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestSeriesConcurrentRecord(t *testing.T) {
	s := NewSeries(Options{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				s.Record(ok(time.Duration(i)))
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := s.Stats(30 * time.Minute)[0].Requests; got != 4000 {
		t.Fatalf("concurrent requests = %d, want 4000", got)
	}
}
