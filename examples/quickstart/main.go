// Quickstart: build a probabilistic taxonomy from a synthetic web corpus
// and run the two conceptualisation primitives the paper motivates —
// instantiation (concept -> typical instances) and abstraction
// (instances -> typical concepts).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extraction"
)

func main() {
	// 1. A ground-truth world drives the corpus substrate and doubles as
	//    the plausibility model's training oracle (the WordNet role).
	world := corpus.DefaultWorld(1)
	web := corpus.NewGenerator(world, corpus.GenConfig{Sentences: 15000, Seed: 11}).Generate()

	inputs := make([]extraction.Input, len(web.Sentences))
	for i, s := range web.Sentences {
		inputs[i] = extraction.Input{Text: s.Text, PageScore: s.PageScore}
	}

	// 2. Build: iterative semantic extraction (Section 2), taxonomy
	//    construction with sense separation (Section 3), plausibility and
	//    typicality (Section 4).
	pb, err := core.Build(inputs, core.Config{
		Oracle: func(x, y string) (bool, bool) {
			if !world.KnownTerm(x) || !world.KnownTerm(y) {
				return false, false
			}
			return world.IsTrueIsA(x, y), true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built taxonomy: %d nodes, %d edges, %d extraction rounds\n\n",
		pb.Graph.NumNodes(), pb.Graph.NumEdges(), len(pb.Info.Rounds))

	// 3. Instantiation: what are typical companies?
	fmt.Println("typical companies (T(i|x)):")
	for _, r := range pb.InstancesOf("companies", 5) {
		fmt.Printf("  %-30s %.4f\n", r.Label, r.Score)
	}

	// 4. Abstraction: what is IBM?
	fmt.Println("\nconcepts of IBM (T(x|i)):")
	for _, r := range pb.ConceptsOf("IBM", 5) {
		fmt.Printf("  %-30s %.4f\n", r.Label, r.Score)
	}

	// 5. Joint abstraction — the paper's Example 1: China, India and
	//    Brazil together are best described by a tight concept.
	fmt.Println("\nconceptualising {China, India, Brazil}:")
	if ranked, ok := pb.Conceptualize([]string{"China", "India", "Brazil"}, 5); ok {
		for _, r := range ranked {
			fmt.Printf("  %-30s %.4f\n", r.Label, r.Score)
		}
	}

	// 6. Word senses: "plants" is botanical and industrial.
	fmt.Println("\nsenses of 'plants':")
	for _, sense := range pb.SensesOf("plants") {
		top := pb.InstancesOfSense(sense, 3)
		fmt.Printf("  %-10s ->", sense)
		for _, r := range top {
			fmt.Printf(" %s", r.Label)
		}
		fmt.Println()
	}

	// 7. Plausibility: knowledge is not black and white.
	fmt.Println("\nplausibility:")
	fmt.Printf("  P(company, IBM)  = %.3f\n", pb.Plausibility("companies", "IBM"))
	fmt.Printf("  P(dog, cat)      = %.3f\n", pb.Plausibility("dogs", "cat"))
}
