package experiments

import (
	"strings"
	"sync"
	"testing"
)

var (
	setupOnce sync.Once
	setupVal  *Setup
	setupErr  error
)

func testSetup(t testing.TB) *Setup {
	t.Helper()
	setupOnce.Do(func() {
		setupVal, setupErr = NewSetup(Options{Sentences: 14000})
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return setupVal
}

func TestTable1Shape(t *testing.T) {
	s := testSetup(t)
	rows, text := s.Table1()
	if !strings.Contains(text, "Probase") {
		t.Error("table text missing Probase")
	}
	by := map[string]int{}
	for _, r := range rows {
		by[r.Name] = r.Concepts
	}
	// The paper's ordering: Probase has by far the largest concept space.
	if by["Probase"] <= by["YAGO"] {
		t.Errorf("Probase %d <= YAGO %d", by["Probase"], by["YAGO"])
	}
	if by["Freebase"] >= by["WordNet"] {
		t.Errorf("Freebase %d >= WordNet %d", by["Freebase"], by["WordNet"])
	}
}

func TestTable4Shape(t *testing.T) {
	s := testSetup(t)
	rows, _, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]int{}
	for _, r := range rows {
		by[r.Name] = r.IsAPairs
	}
	if by["Freebase"] != 0 {
		t.Errorf("Freebase isA pairs = %d, want 0", by["Freebase"])
	}
	if by["Probase"] <= by["WordNet"] {
		t.Errorf("Probase concept-subconcept pairs %d <= WordNet %d", by["Probase"], by["WordNet"])
	}
}

func TestTable5Shape(t *testing.T) {
	s := testSetup(t)
	rows, _ := s.Table5()
	if len(rows) != 40 {
		t.Fatalf("rows = %d", len(rows))
	}
	withTypical := 0
	for _, r := range rows {
		if len(r.Typical) > 0 {
			withTypical++
		}
	}
	if withTypical < 30 {
		t.Errorf("only %d/40 benchmark concepts have typical instances", withTypical)
	}
	// Spot-check the paper's signature examples.
	for _, r := range rows {
		if r.Concept == "company" {
			joined := strings.Join(r.Typical, " ")
			if !strings.Contains(joined, "IBM") && !strings.Contains(joined, "Microsoft") {
				t.Errorf("company typical instances = %v", r.Typical)
			}
		}
	}
}

func TestCoverageShape(t *testing.T) {
	s := testSetup(t)
	res, _ := s.Coverage(20000)
	byName := map[string][]int64{}
	for _, series := range res.Series {
		var cov []int64
		for _, p := range series.Points {
			cov = append(cov, p.Covered)
		}
		byName[series.Name] = cov
	}
	last := len(res.Ks) - 1
	// Figure 6: Probase covers the most queries at full k.
	for _, other := range []string{"WordNet", "WikiTaxonomy", "YAGO", "Freebase"} {
		if byName["Probase"][last] < byName[other][last] {
			t.Errorf("Probase coverage %d < %s %d", byName["Probase"][last], other, byName[other][last])
		}
	}
	// Figure 7 shape: Freebase concept coverage is much smaller than its
	// taxonomy coverage.
	for _, series := range res.Series {
		if series.Name != "Freebase" {
			continue
		}
		p := series.Points[last]
		if p.ConceptCovered*3 > p.Covered {
			t.Errorf("Freebase concept coverage %d not far below total %d", p.ConceptCovered, p.Covered)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	s := testSetup(t)
	ds, _ := s.Fig8()
	probase, freebase := ds[0], ds[1]
	if freebase.Top10Share <= probase.Top10Share {
		t.Errorf("Freebase top-10 share %.2f <= Probase %.2f (paper: 70%% vs 4.5%%)",
			freebase.Top10Share, probase.Top10Share)
	}
}

func TestFig9Shape(t *testing.T) {
	s := testSetup(t)
	cps, text := s.Fig9()
	if len(cps) != 40 {
		t.Fatalf("concepts = %d", len(cps))
	}
	avg := 0.0
	n := 0
	for _, cp := range cps {
		if cp.Sampled > 0 {
			avg += cp.Precision()
			n++
		}
	}
	avg /= float64(n)
	if avg < 0.85 {
		t.Errorf("average benchmark precision %.3f, want >= 0.85 (paper: 92.8%%)", avg)
	}
	if !strings.Contains(text, "AVERAGE") {
		t.Error("table missing average row")
	}
}

func TestFig10And11Shape(t *testing.T) {
	s := testSetup(t)
	rows10, _ := s.Fig10()
	if len(rows10) < 3 {
		t.Fatalf("rounds = %d", len(rows10))
	}
	// Monotone accumulation, and the biggest gain after round 1 lands in
	// round 2 (the paper's signature).
	var maxLater int64
	for i := 2; i < len(rows10); i++ {
		if rows10[i].NewPairs > maxLater {
			maxLater = rows10[i].NewPairs
		}
	}
	if rows10[1].NewPairs < maxLater {
		t.Errorf("round 2 gain %d below a later round's %d", rows10[1].NewPairs, maxLater)
	}

	rows11, _ := s.Fig11()
	first, lastRow := rows11[0], rows11[len(rows11)-1]
	if first.Precision < 0.9 {
		t.Errorf("round 1 benchmark precision %.3f, want >= 0.9 (paper: 97.3%%)", first.Precision)
	}
	// The paper sees a slight decay from 97.3%; our round 1 already
	// carries the Observation-1 fallback noise, so the curve drifts
	// mildly in either direction. Assert the magnitude: high throughout,
	// small total drift (see EXPERIMENTS.md).
	if d := lastRow.Precision - first.Precision; d > 0.07 || d < -0.07 {
		t.Errorf("precision drifted too much: %.3f -> %.3f", first.Precision, lastRow.Precision)
	}
	if lastRow.Precision < 0.9 {
		t.Errorf("final benchmark precision %.3f, want >= 0.9", lastRow.Precision)
	}
}

func TestApplicationShapes(t *testing.T) {
	s := testSetup(t)
	search, _ := s.Search()
	if search.SemanticRelevance <= search.KeywordRelevance {
		t.Errorf("semantic %.2f <= keyword %.2f", search.SemanticRelevance, search.KeywordRelevance)
	}
	attrs, _ := s.Fig12()
	if attrs.ProbasePrecision < attrs.PascaPrecision-0.15 {
		t.Errorf("probase seeds %.2f far below pasca %.2f", attrs.ProbasePrecision, attrs.PascaPrecision)
	}
	st, _ := s.ShortText()
	if st.ConceptPurity <= st.BoWPurity {
		t.Errorf("concept purity %.2f <= bow %.2f", st.ConceptPurity, st.BoWPurity)
	}
	wt, _ := s.WebTables()
	if wt.Precision() < 0.7 {
		t.Errorf("web table precision %.2f", wt.Precision())
	}
}

func TestBaselineAndAblationShapes(t *testing.T) {
	s := testSetup(t)
	base, _ := s.Baseline()
	if base.SemanticRecall <= base.SyntacticRecall {
		t.Errorf("semantic recall %.3f <= syntactic %.3f", base.SemanticRecall, base.SyntacticRecall)
	}
	jac, text := s.Jaccard()
	if jac.AbsSenses == 0 || jac.JacSenses == 0 {
		t.Error("ablation produced empty taxonomies")
	}
	if !strings.Contains(text, "Jaccard") {
		t.Error("ablation table malformed")
	}
	mo, _ := s.MergeOrder()
	if !mo.Confluent {
		t.Error("absolute-overlap merging not confluent")
	}
	if mo.StagedOps > mo.RandomOpsMin {
		t.Errorf("staged ops %d > random min %d (Theorem 2)", mo.StagedOps, mo.RandomOpsMin)
	}
	extras, _ := s.Extras()
	if extras.Precision < 0.85 {
		t.Errorf("overall precision %.3f", extras.Precision)
	}
}

func TestPlausibilityFilterShape(t *testing.T) {
	s := testSetup(t)
	rep, text := s.Plausibility()
	if rep.Pairs == 0 {
		t.Fatal("no pairs")
	}
	// The Section 4 claim: thresholding on plausibility raises precision
	// above the unfiltered base while keeping most pairs.
	last := rep.NoisyOr[len(rep.NoisyOr)-1]
	if last.Precision <= rep.BasePrecision {
		t.Errorf("noisy-or filter did not raise precision: %.3f vs base %.3f",
			last.Precision, rep.BasePrecision)
	}
	if last.Kept < rep.Pairs/2 {
		t.Errorf("noisy-or filter kept only %d of %d pairs", last.Kept, rep.Pairs)
	}
	// Raw-count filtering pays for its precision with far lower retention.
	rawLast := rep.RawCount[len(rep.RawCount)-1]
	if rawLast.Kept >= last.Kept {
		t.Errorf("raw-count filter kept %d >= noisy-or %d at the top threshold",
			rawLast.Kept, last.Kept)
	}
	if len(text) == 0 {
		t.Error("empty table")
	}
}

func TestGrowthShape(t *testing.T) {
	s := testSetup(t)
	points, _ := s.Growth()
	if len(points) < 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Pairs <= points[i-1].Pairs {
			t.Errorf("pairs did not grow: %d -> %d", points[i-1].Pairs, points[i].Pairs)
		}
	}
	for _, p := range points {
		if p.Precision < 0.85 {
			t.Errorf("precision at %d sentences = %.3f", p.Sentences, p.Precision)
		}
	}
}

func TestMergeFreebaseShape(t *testing.T) {
	s := testSetup(t)
	rep, _ := s.MergeFreebase()
	if rep.InstancesAfter <= rep.InstancesBefore {
		t.Errorf("merge added no instances: %d -> %d", rep.InstancesBefore, rep.InstancesAfter)
	}
	if rep.CoveredAfter < rep.CoveredBefore {
		t.Errorf("merge reduced coverage: %d -> %d", rep.CoveredBefore, rep.CoveredAfter)
	}
}

func TestInterpretShape(t *testing.T) {
	s := testSetup(t)
	rep, text := s.InterpretExp()
	if rep.Pairs == 0 {
		t.Fatal("no interpretation pairs")
	}
	if rep.Precision() < 0.4 {
		t.Errorf("interpretation precision = %.2f", rep.Precision())
	}
	if !strings.Contains(text, "interpretation") {
		t.Error("table malformed")
	}
}
