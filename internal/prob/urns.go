package prob

import (
	"math"

	"repro/internal/kb"
)

// Urns is the redundancy model of Downey, Etzioni and Soderland (IJCAI
// 2005), which the paper cites as the more sophisticated alternative to
// the noisy-or (Section 4.1). The extractor is modelled as drawing
// labelled balls from an urn containing C distinct correct labels and E
// distinct error labels; correct labels are repeated more often. The
// probability that a label extracted k times is correct is
//
//	P(correct | k) = C·pc^k / (C·pc^k + E·pe^k)
//
// with pc and pe the per-draw repetition rates of correct and error
// labels (the single-urn, uniform-prior form).
type Urns struct {
	C, E   float64 // distinct correct / error labels
	PC, PE float64 // per-draw hit rates
}

// FitUrns estimates the urn parameters from Γ and a labelling oracle:
// the label populations are the counts of distinct true/false pairs, and
// the hit rates follow from the average sightings of each population.
func FitUrns(store *kb.Store, oracle Oracle) Urns {
	var nTrue, nFalse float64
	var massTrue, massFalse float64
	store.ForEachPair(func(x, y string, n int64) {
		isTrue, known := oracle(x, y)
		if !known {
			return
		}
		if isTrue {
			nTrue++
			massTrue += float64(n)
		} else {
			nFalse++
			massFalse += float64(n)
		}
	})
	u := Urns{C: nTrue, E: nFalse, PC: 0.5, PE: 0.5}
	total := massTrue + massFalse
	if total > 0 && nTrue > 0 && nFalse > 0 {
		u.PC = massTrue / nTrue / total
		u.PE = massFalse / nFalse / total
	}
	if u.C == 0 {
		u.C = 1
	}
	if u.E == 0 {
		u.E = 1
	}
	return u
}

// Plausibility returns P(correct | k sightings). k <= 0 yields 0.
func (u Urns) Plausibility(k int64) float64 {
	if k <= 0 {
		return 0
	}
	// Work in logs: the ratio r = (E/C)·(pe/pc)^k decides.
	logR := math.Log(u.E/u.C) + float64(k)*math.Log(u.PE/u.PC)
	return 1 / (1 + math.Exp(logR))
}
