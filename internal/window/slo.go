package window

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// SLOSchema names the checked-in traffic-SLO config layout
// (.github/traffic-slo.json); bump on breaking changes, the same
// versioning idiom as the benchfmt report schemas.
const SLOSchema = "probase-traffic-slo/v1"

// BurnRule is one multi-window error-budget alert, after the Google
// SRE workbook pattern: the rule fires only when the budget burns
// faster than Threshold× in BOTH the long window (sustained, not a
// blip) and the short window (still happening now, not a stale echo).
type BurnRule struct {
	// ShortWindow and LongWindow name rolling spans ("5m", "30m");
	// both must divide into bucket-aligned windows the rings retain.
	ShortWindow string `json:"short_window"`
	LongWindow  string `json:"long_window"`
	// BurnRate is the firing threshold: a burn rate of N means the
	// error budget is being consumed N times faster than the SLO
	// allows (burn 1.0 for a full compliance period exactly exhausts
	// the budget).
	BurnRate float64 `json:"burn_rate"`
}

// SLOConfig is the checked-in service-level objective document the
// in-server engine evaluates live — the serving-side sibling of the
// .github/capacity-slo.json gate the load generator applies offline.
type SLOConfig struct {
	Schema string `json:"schema"`
	// AvailabilityTarget is the fraction of requests that must not be
	// server faults (5xx), e.g. 0.999. The error budget rate is
	// 1 - AvailabilityTarget.
	AvailabilityTarget float64 `json:"availability_target"`
	// LatencyP99MS, when > 0, additionally degrades the server if the
	// rolling p99 exceeds it in both windows of any rule — the same
	// multi-window hysteresis applied to latency.
	LatencyP99MS float64 `json:"latency_p99_ms,omitempty"`
	// MinRequests guards against vacuous evaluation: a rule cannot
	// fire unless its short window saw at least this many requests.
	MinRequests int64 `json:"min_requests"`
	// BurnRules are the multi-window alerts; any firing rule degrades
	// the server.
	BurnRules []BurnRule `json:"burn_rules"`
}

// DefaultSLOConfig is the built-in objective used when no config file
// is given: 99.9% availability with the SRE workbook's classic
// (14.4× over 1m+5m, 6× over 5m+30m) page-worthy burn pairs.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		Schema:             SLOSchema,
		AvailabilityTarget: 0.999,
		MinRequests:        20,
		BurnRules: []BurnRule{
			{ShortWindow: "1m", LongWindow: "5m", BurnRate: 14.4},
			{ShortWindow: "5m", LongWindow: "30m", BurnRate: 6},
		},
	}
}

// Validate checks the config is internally consistent and its window
// names parse.
func (c SLOConfig) Validate() error {
	if c.Schema != SLOSchema {
		return fmt.Errorf("slo config: schema %q, want %q", c.Schema, SLOSchema)
	}
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		return fmt.Errorf("slo config: availability_target %v outside (0, 1)", c.AvailabilityTarget)
	}
	if c.LatencyP99MS < 0 {
		return fmt.Errorf("slo config: negative latency_p99_ms %v", c.LatencyP99MS)
	}
	if c.MinRequests < 0 {
		return fmt.Errorf("slo config: negative min_requests %d", c.MinRequests)
	}
	if len(c.BurnRules) == 0 {
		return fmt.Errorf("slo config: no burn_rules")
	}
	for i, r := range c.BurnRules {
		short, err := time.ParseDuration(r.ShortWindow)
		if err != nil {
			return fmt.Errorf("slo config: rule %d short_window %q: %w", i, r.ShortWindow, err)
		}
		long, err := time.ParseDuration(r.LongWindow)
		if err != nil {
			return fmt.Errorf("slo config: rule %d long_window %q: %w", i, r.LongWindow, err)
		}
		if short <= 0 || long <= short {
			return fmt.Errorf("slo config: rule %d windows %s/%s must satisfy 0 < short < long",
				i, r.ShortWindow, r.LongWindow)
		}
		if r.BurnRate <= 0 {
			return fmt.Errorf("slo config: rule %d non-positive burn_rate %v", i, r.BurnRate)
		}
	}
	return nil
}

// LoadSLOConfig reads and strictly validates a traffic-SLO file
// (unknown fields are rejected, the usual config hygiene).
func LoadSLOConfig(path string) (SLOConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return SLOConfig{}, err
	}
	var c SLOConfig
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return SLOConfig{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return SLOConfig{}, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// WindowBurn is one window's live budget accounting.
type WindowBurn struct {
	Window    string  `json:"window"`
	Requests  int64   `json:"requests"`
	ErrorRate float64 `json:"error_rate"`
	P99MS     float64 `json:"p99_ms"`
	// BurnRate = ErrorRate / (1 - AvailabilityTarget); +Inf is
	// rendered as a very large finite number so the value survives
	// JSON.
	BurnRate float64 `json:"burn_rate"`
}

// RuleEval is one burn rule's verdict.
type RuleEval struct {
	ShortWindow string  `json:"short_window"`
	LongWindow  string  `json:"long_window"`
	Threshold   float64 `json:"threshold"`
	ShortBurn   float64 `json:"short_burn"`
	LongBurn    float64 `json:"long_burn"`
	Firing      bool    `json:"firing"`
}

// Health status values. HealthDegraded means at least one burn rule
// (or the latency objective) is firing.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
)

// SLOEval is one engine evaluation: the health verdict plus everything
// needed to explain it.
type SLOEval struct {
	Status             string       `json:"status"`
	AvailabilityTarget float64      `json:"availability_target"`
	BudgetErrorRate    float64      `json:"budget_error_rate"`
	LatencyP99MS       float64      `json:"latency_p99_ms,omitempty"`
	MaxBurnRate        float64      `json:"max_burn_rate"`
	Windows            []WindowBurn `json:"windows"`
	Rules              []RuleEval   `json:"rules"`
	Reasons            []string     `json:"reasons,omitempty"`
}

// Engine evaluates an SLOConfig against a live aggregate Series. One
// evaluation merges each distinct window's trailing buckets, so the
// result is cached for a short TTL (scrapes, healthz probes, and
// /v1/admin/traffic share one evaluation per second).
type Engine struct {
	cfg     SLOConfig
	total   *Series
	windows []time.Duration // distinct, ascending
	now     func() time.Time
	ttl     time.Duration

	mu     sync.Mutex
	at     time.Time
	cached SLOEval
}

// NewEngine validates cfg and binds it to the aggregate series. The
// engine reads the series' clock so injected time steers both.
func NewEngine(cfg SLOConfig, total *Series) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seen := map[time.Duration]bool{}
	var windows []time.Duration
	for _, r := range cfg.BurnRules {
		for _, name := range []string{r.ShortWindow, r.LongWindow} {
			d, _ := time.ParseDuration(name) // validated above
			if !seen[d] {
				seen[d] = true
				windows = append(windows, d)
			}
		}
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	return &Engine{
		cfg:     cfg,
		total:   total,
		windows: windows,
		now:     total.opts.Now,
		ttl:     time.Second,
	}, nil
}

// Config returns the bound objective.
func (e *Engine) Config() SLOConfig { return e.cfg }

// WindowNames returns the distinct windows the engine evaluates, in
// ascending span order — the label set of the probase_slo_burn_rate
// gauge family.
func (e *Engine) WindowNames() []string {
	out := make([]string, len(e.windows))
	for i, d := range e.windows {
		out[i] = Name(d)
	}
	return out
}

// Eval returns the current verdict, re-evaluating at most once per TTL
// (backwards clock steps force a re-evaluation rather than serving a
// future-stamped cache forever — the procSampler guard).
func (e *Engine) Eval() SLOEval {
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.at.IsZero() && now.Sub(e.at) < e.ttl && !now.Before(e.at) {
		return e.cached
	}
	e.cached = e.eval()
	e.at = now
	return e.cached
}

// BurnRate returns the named window's current burn rate (0 when the
// window is not part of any rule) — the gauge read path.
func (e *Engine) BurnRate(window string) float64 {
	ev := e.Eval()
	for _, wb := range ev.Windows {
		if wb.Window == window {
			return wb.BurnRate
		}
	}
	return 0
}

// maxFiniteBurn caps the burn rate when the error budget is zero or
// the observed rate saturates it: large enough to trip any sane
// threshold, finite so the value survives JSON encoding.
const maxFiniteBurn = 1e6

func (e *Engine) eval() SLOEval {
	stats := e.total.Stats(e.windows...)
	budget := 1 - e.cfg.AvailabilityTarget
	ev := SLOEval{
		Status:             HealthOK,
		AvailabilityTarget: e.cfg.AvailabilityTarget,
		BudgetErrorRate:    budget,
		LatencyP99MS:       e.cfg.LatencyP99MS,
	}
	byName := make(map[string]Stats, len(stats))
	for _, st := range stats {
		burn := 0.0
		if st.ErrorRate > 0 {
			burn = st.ErrorRate / budget
			if math.IsInf(burn, 1) || burn > maxFiniteBurn {
				burn = maxFiniteBurn
			}
		}
		ev.Windows = append(ev.Windows, WindowBurn{
			Window:    st.Window,
			Requests:  st.Requests,
			ErrorRate: st.ErrorRate,
			P99MS:     st.P99MS,
			BurnRate:  burn,
		})
		if burn > ev.MaxBurnRate {
			ev.MaxBurnRate = burn
		}
		byName[st.Window] = st
	}
	burnOf := func(name string) float64 {
		for _, wb := range ev.Windows {
			if wb.Window == name {
				return wb.BurnRate
			}
		}
		return 0
	}
	for _, r := range e.cfg.BurnRules {
		re := RuleEval{
			ShortWindow: r.ShortWindow,
			LongWindow:  r.LongWindow,
			Threshold:   r.BurnRate,
			ShortBurn:   burnOf(r.ShortWindow),
			LongBurn:    burnOf(r.LongWindow),
		}
		enough := byName[r.ShortWindow].Requests >= e.cfg.MinRequests
		if enough && re.ShortBurn >= r.BurnRate && re.LongBurn >= r.BurnRate {
			re.Firing = true
			ev.Status = HealthDegraded
			ev.Reasons = append(ev.Reasons, fmt.Sprintf(
				"error budget burning %.1fx/%.1fx over %s/%s (threshold %.1fx)",
				re.ShortBurn, re.LongBurn, r.ShortWindow, r.LongWindow, r.BurnRate))
		}
		if e.cfg.LatencyP99MS > 0 && enough &&
			byName[r.ShortWindow].P99MS > e.cfg.LatencyP99MS &&
			byName[r.LongWindow].P99MS > e.cfg.LatencyP99MS {
			ev.Status = HealthDegraded
			ev.Reasons = append(ev.Reasons, fmt.Sprintf(
				"p99 %.1fms/%.1fms over %s/%s exceeds %.1fms",
				byName[r.ShortWindow].P99MS, byName[r.LongWindow].P99MS,
				r.ShortWindow, r.LongWindow, e.cfg.LatencyP99MS))
		}
		ev.Rules = append(ev.Rules, re)
	}
	return ev
}
