// Package querylog generates the synthetic search-query workload behind
// Figures 5-7 and measures taxonomy coverage over it. The paper sorts two
// years of Bing queries by frequency and asks, for growing top-k
// prefixes: how many taxonomy concepts are *relevant* (appear in some
// query), how many queries are *covered* (mention a concept or
// instance), and how many mention a concept. The generator reproduces the
// long-tailed query mix: head queries name popular instances and basic
// concepts, tail queries reach for fine-grained modified concepts, and a
// large slice of queries mentions nothing a taxonomy could know.
package querylog

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/nlp"
)

// Query is one distinct query with its frequency.
type Query struct {
	Text string
	Freq int64
}

// Config controls generation.
type Config struct {
	Queries int   // number of distinct queries (default 50000)
	Seed    int64 // PRNG seed
}

// Generate produces distinct queries sorted by decreasing frequency.
func Generate(w *corpus.World, cfg Config) []Query {
	if cfg.Queries == 0 {
		cfg.Queries = 50000
	}
	out := make([]Query, 0, cfg.Queries)
	Iterate(w, cfg, func(q Query) bool {
		out = append(out, q)
		return true
	})
	return out
}

// Iterate streams the same frequency-sorted query sequence Generate
// returns, one Query at a time, stopping early when yield returns
// false. The global popularity sort still requires the scored texts in
// memory, but the final []Query slice is never materialised — callers
// that keep only what they need (a text pool, a sample, a count) avoid
// holding a second copy of a 50k+ query workload. The order delivered
// to yield is exactly Generate's slice order for the same Config.
func Iterate(w *corpus.World, cfg Config, yield func(Query) bool) {
	if cfg.Queries == 0 {
		cfg.Queries = 50000
	}
	for i, s := range generateScored(w, cfg) {
		q := Query{
			Text: s.text,
			Freq: int64(math.Max(1, 1e7/math.Pow(float64(i+1), 1.05))),
		}
		if !yield(q) {
			return
		}
	}
}

// scored is one distinct query text with its popularity draw; rank in
// the popularity-sorted slice determines the Zipf frequency.
type scored struct {
	text string
	pop  float64
}

// generateScored produces the distinct query texts sorted by
// decreasing popularity — the shared core of Generate and Iterate.
func generateScored(w *corpus.World, cfg Config) []scored {
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Weighted term pools.
	type weighted struct {
		text string
		w    float64
	}
	// Concept popularity follows concept size, so basic concepts
	// ("companies") dominate the query head while fine-grained modified
	// concepts ("BRIC countries") only surface in the long tail — the
	// distribution behind Figure 5's growth with k.
	var instances, concepts []weighted
	maxSize := 1.0
	for _, key := range w.Keys() {
		c := w.Concept(key)
		if s := float64(len(c.Instances) + 2*len(c.Children)); s > maxSize {
			maxSize = s
		}
	}
	for _, key := range w.Keys() {
		c := w.Concept(key)
		size := float64(len(c.Instances)+2*len(c.Children)) / maxSize
		cw := 0.04 + size
		if cw > 1 {
			cw = 1
		}
		concepts = append(concepts, weighted{nlp.PluralizePhrase(c.Label), cw})
		for i, inst := range c.Instances {
			instances = append(instances, weighted{inst, 1.0 / math.Pow(float64(i+1), 0.8)})
		}
	}
	pick := func(pool []weighted) weighted {
		// Weighted reservoir-free pick: rejection sampling over ranks.
		for {
			cand := pool[rng.Intn(len(pool))]
			if rng.Float64() < cand.w {
				return cand
			}
		}
	}
	fillers := []string{"best", "cheap", "top", "new", "near me", "reviews",
		"history of", "facts about", "list of", "pictures of", "how to find"}
	junkWords := []string{"weather", "news", "login", "email", "games",
		"free", "download", "online", "youtube video", "recipes", "horoscope",
		"lyrics", "translate", "maps", "calculator", "timer", "wallpaper"}

	seen := make(map[string]bool, cfg.Queries)
	var out []scored
	for len(out) < cfg.Queries {
		var text string
		pop := rng.Float64()
		switch r := rng.Float64(); {
		case r < 0.28: // instance queries, often with attributes
			iw := pick(instances)
			text = strings.ToLower(iw.text)
			if rng.Intn(3) == 0 {
				text += " " + junkWords[rng.Intn(len(junkWords))]
			}
			pop += iw.w
		case r < 0.40: // instance + attribute
			iw := pick(instances)
			text = strings.ToLower(iw.text) + " " + fillers[rng.Intn(len(fillers))]
			pop += iw.w * 0.8
		case r < 0.55: // concept queries
			cw := pick(concepts)
			text = strings.ToLower(cw.text)
			if rng.Intn(2) == 0 {
				text = fillers[rng.Intn(len(fillers))] + " " + text
			}
			pop += cw.w * 2
		case r < 0.62: // concept + instance
			cw := pick(concepts)
			iw := pick(instances)
			text = strings.ToLower(cw.text) + " like " + strings.ToLower(iw.text)
			pop += (cw.w + iw.w) * 0.3
		default: // junk: nothing a taxonomy knows
			a := junkWords[rng.Intn(len(junkWords))]
			b := junkWords[rng.Intn(len(junkWords))]
			text = a
			if rng.Intn(2) == 0 && a != b {
				text = a + " " + b
			}
			if rng.Intn(4) == 0 {
				text = fillers[rng.Intn(len(fillers))] + " " + text
			}
			pop += rng.Float64() * 1.2
		}
		if seen[text] {
			continue
		}
		seen[text] = true
		out = append(out, scored{text, pop})
	}
	// Popularity rank -> Zipf frequency, applied by the caller.
	sort.Slice(out, func(i, j int) bool {
		if out[i].pop != out[j].pop {
			return out[i].pop > out[j].pop
		}
		return out[i].text < out[j].text
	})
	return out
}

// Vocabulary is a taxonomy's term inventory for coverage matching:
// concept surface forms (singular and plural) and instance surface forms,
// all lower-cased.
type Vocabulary struct {
	Concepts  map[string]bool
	Instances map[string]bool
	maxWords  int
}

// NewVocabulary builds a vocabulary from concept labels (singular) and
// instance names.
func NewVocabulary(conceptLabels, instanceNames []string) *Vocabulary {
	v := &Vocabulary{
		Concepts:  make(map[string]bool, 2*len(conceptLabels)),
		Instances: make(map[string]bool, len(instanceNames)),
	}
	note := func(s string) {
		if n := len(strings.Fields(s)); n > v.maxWords {
			v.maxWords = n
		}
	}
	for _, c := range conceptLabels {
		c = nlp.Normalize(c)
		if c == "" {
			continue
		}
		v.Concepts[c] = true
		v.Concepts[nlp.PluralizePhrase(c)] = true
		note(c)
	}
	for _, i := range instanceNames {
		i = nlp.Normalize(i)
		if i == "" {
			continue
		}
		v.Instances[i] = true
		note(i)
	}
	if v.maxWords > 5 {
		v.maxWords = 5
	}
	if v.maxWords == 0 {
		v.maxWords = 1
	}
	return v
}

// match scans the query's word n-grams; it returns the concept terms
// found and whether any instance term was found.
func (v *Vocabulary) match(query string) (concepts []string, instanceHit bool) {
	words := strings.Fields(query)
	for n := v.maxWords; n >= 1; n-- {
		for i := 0; i+n <= len(words); i++ {
			g := strings.Join(words[i:i+n], " ")
			if v.Concepts[g] {
				concepts = append(concepts, nlp.SingularizePhrase(g))
			}
			if v.Instances[g] {
				instanceHit = true
			}
		}
	}
	return concepts, instanceHit
}

// Point is one top-k measurement for Figures 5-7.
type Point struct {
	K                int
	RelevantConcepts int   // Fig. 5: concepts appearing in >= 1 of the top-k queries
	Covered          int64 // Fig. 6: queries mentioning any concept or instance
	ConceptCovered   int64 // Fig. 7: queries mentioning a concept
}

// Analyze sweeps the frequency-sorted queries and reports the three
// curves at each requested k (ks must be ascending).
func Analyze(queries []Query, v *Vocabulary, ks []int) []Point {
	points := make([]Point, 0, len(ks))
	relevant := make(map[string]bool)
	var covered, conceptCovered int64
	next := 0
	for i, q := range queries {
		cs, instHit := v.match(q.Text)
		for _, c := range cs {
			relevant[c] = true
		}
		if len(cs) > 0 {
			conceptCovered++
		}
		if len(cs) > 0 || instHit {
			covered++
		}
		for next < len(ks) && i+1 == ks[next] {
			points = append(points, Point{
				K:                ks[next],
				RelevantConcepts: len(relevant),
				Covered:          covered,
				ConceptCovered:   conceptCovered,
			})
			next++
		}
	}
	for next < len(ks) {
		points = append(points, Point{
			K:                len(queries),
			RelevantConcepts: len(relevant),
			Covered:          covered,
			ConceptCovered:   conceptCovered,
		})
		next++
	}
	return points
}
