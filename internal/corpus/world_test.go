package corpus

import (
	"reflect"
	"strings"
	"testing"
)

func TestSeedWorldValid(t *testing.T) {
	w := SeedWorld()
	if w.NumConcepts() < 80 {
		t.Errorf("seed world has %d concepts, want >= 80", w.NumConcepts())
	}
	st := w.Stats()
	if st.Instances < 300 {
		t.Errorf("seed world has %d instances, want >= 300", st.Instances)
	}
}

func TestNewWorldRejectsBadInput(t *testing.T) {
	if _, err := NewWorld([]*Concept{{Key: "", Label: "x"}}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := NewWorld([]*Concept{{Key: "a", Label: "a"}, {Key: "a", Label: "a"}}); err == nil {
		t.Error("duplicate key accepted")
	}
	if _, err := NewWorld([]*Concept{{Key: "a", Label: "a", Parents: []string{"missing"}}}); err == nil {
		t.Error("unknown parent accepted")
	}
	cyc := []*Concept{
		{Key: "a", Label: "a", Parents: []string{"b"}},
		{Key: "b", Label: "b", Parents: []string{"a"}},
	}
	if _, err := NewWorld(cyc); err == nil {
		t.Error("cycle accepted")
	}
}

func TestMultiSenseLabels(t *testing.T) {
	w := SeedWorld()
	keys := w.KeysForLabel("plant")
	if len(keys) != 2 {
		t.Fatalf("plant senses = %v, want 2", keys)
	}
	if !w.IsTrueIsA("plants", "tree") {
		t.Error("plants/tree should be true (organism sense)")
	}
	if !w.IsTrueIsA("plants", "steam turbine") {
		t.Error("plants/steam turbine should be true (industrial sense)")
	}
	if w.IsTrueIsA("trees", "steam turbine") {
		t.Error("trees/steam turbine should be false")
	}
}

func TestIsTrueIsA(t *testing.T) {
	w := SeedWorld()
	tests := []struct {
		x, y string
		want bool
	}{
		{"animals", "cat", true},
		{"animals", "cats", true}, // plural y resolves via concept surface or instance form
		{"domestic animals", "cat", true},
		{"animals", "domestic animal", true}, // concept-subconcept
		{"animals", "domestic animals", true},
		{"dogs", "cat", false},
		{"companies", "IBM", true},
		{"companies", "ibm", true}, // case-insensitive instances
		{"countries", "Singapore", true},
		{"BRIC countries", "Brazil", true},
		{"bric countries", "Russia", true},
		{"countries", "Europe", false}, // continent, not country
		{"organisms", "cat", true},     // transitive through animal
		{"things", "IBM", true},        // transitive to root
		{"animals", "IBM", false},
		{"nonexistent concepts", "cat", false},
		{"animals", "unheard-of beast", false},
	}
	for _, tt := range tests {
		if got := w.IsTrueIsA(tt.x, tt.y); got != tt.want {
			t.Errorf("IsTrueIsA(%q, %q) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestInstancesOfClosure(t *testing.T) {
	w := SeedWorld()
	keys := w.KeysForLabel("plant")
	var organism string
	for _, k := range keys {
		if strings.Contains(k, "organism") {
			organism = k
		}
	}
	insts := w.InstancesOf(organism)
	has := func(s string) bool {
		for _, i := range insts {
			if i == s {
				return true
			}
		}
		return false
	}
	if !has("oak") || !has("basil") || !has("moss") {
		t.Errorf("closure instances missing: %v", insts)
	}
	if has("steam turbine") {
		t.Error("closure crossed senses")
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, i := range insts {
		if seen[i] {
			t.Errorf("duplicate instance %q", i)
		}
		seen[i] = true
	}
}

func TestKnownTermAndConceptSurface(t *testing.T) {
	w := SeedWorld()
	if !w.KnownTerm("IBM") || !w.KnownTerm("companies") || !w.KnownTerm("tropical countries") {
		t.Error("KnownTerm misses seed terms")
	}
	if w.KnownTerm("flibbertigibbet") {
		t.Error("KnownTerm accepts junk")
	}
	if !w.ConceptSurface("BRIC countries") || w.ConceptSurface("IBM") {
		t.Error("ConceptSurface misclassifies")
	}
}

func TestTypicalityRank(t *testing.T) {
	w := SeedWorld()
	key := w.KeysForLabel("company")[0]
	if got := w.TypicalityRank(key, "IBM"); got != 0 {
		t.Errorf("rank of IBM = %d, want 0", got)
	}
	if got := w.TypicalityRank(key, "unknown corp"); got != -1 {
		t.Errorf("rank of unknown = %d, want -1", got)
	}
	if got := w.TypicalityRank("no such key", "IBM"); got != -1 {
		t.Errorf("rank under bad key = %d, want -1", got)
	}
}

func TestExpandDeterministicAndGrowing(t *testing.T) {
	w1 := DefaultWorld(1)
	w2 := DefaultWorld(1)
	if !reflect.DeepEqual(w1.Keys(), w2.Keys()) {
		t.Error("expansion is not deterministic across runs")
	}
	seed := SeedWorld()
	if w1.NumConcepts() <= seed.NumConcepts() {
		t.Errorf("expansion added no concepts: %d vs %d", w1.NumConcepts(), seed.NumConcepts())
	}
	if w1.Stats().Instances <= seed.Stats().Instances {
		t.Error("expansion added no instances")
	}
	w4 := DefaultWorld(4)
	if w4.Stats().Instances <= w1.Stats().Instances {
		t.Error("scale=4 should add more instances than scale=1")
	}
	// Seed typical instances keep their leading ranks after expansion.
	key := w1.KeysForLabel("company")[0]
	if got := w1.TypicalityRank(key, "IBM"); got != 0 {
		t.Errorf("expansion disturbed typicality rank of IBM: %d", got)
	}
}

func TestExpandedWorldIsAStillHolds(t *testing.T) {
	w := DefaultWorld(1)
	if !w.IsTrueIsA("companies", "IBM") || !w.IsTrueIsA("animals", "cat") {
		t.Error("expanded world lost seed truths")
	}
	// Synthetic modified concepts are wired under their parents.
	for _, key := range w.Keys() {
		c := w.Concept(key)
		if len(c.Parents) == 0 && key != "thing" {
			t.Errorf("concept %q has no parent", key)
		}
	}
}

func TestIsPart(t *testing.T) {
	w := SeedWorld()
	if !w.IsPart("trees", "branch") || !w.IsPart("tree", "branches") {
		t.Error("IsPart misses tree parts")
	}
	if w.IsPart("trees", "oak") {
		t.Error("instance misjudged as part")
	}
	if w.IsPart("no such concept", "branch") {
		t.Error("unknown concept has parts")
	}
}

func TestHomes(t *testing.T) {
	w := DefaultWorld(1)
	if got := w.Home("IBM"); got != "USA" {
		t.Errorf("Home(IBM) = %q", got)
	}
	if got := w.Home("ibm"); got != "USA" {
		t.Errorf("Home is case-sensitive: %q", got)
	}
	if w.Home("not a company") != "" {
		t.Error("unknown instance has a home")
	}
	homed := w.HomedInstances()
	if len(homed) < 100 {
		t.Errorf("only %d homed instances", len(homed))
	}
	// Every home is a real country instance.
	for _, inst := range homed[:50] {
		if !w.IsTrueIsA("countries", w.Home(inst)) {
			t.Errorf("home of %q is %q, not a country", inst, w.Home(inst))
		}
	}
	// Deterministic across expansions.
	w2 := DefaultWorld(1)
	if w2.Home(homed[len(homed)-1]) != w.Home(homed[len(homed)-1]) {
		t.Error("homes differ across identical expansions")
	}
}
