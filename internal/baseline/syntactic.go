package baseline

import (
	"repro/internal/extraction"
	"repro/internal/hearst"
	"repro/internal/kb"
	"repro/internal/nlp"
)

// SyntacticExtractor is the Section 2.1 baseline: Hearst patterns with
// purely syntactic interpretation, as in KnowItAll/TextRunner. Its three
// deliberate limitations, quoted from the paper:
//
//   - the noun phrase closest to the pattern keywords is taken as the
//     super-concept, so "animals other than dogs such as cats" yields
//     (cat isA dog);
//   - instances must be proper nouns, so (cat isA animal) is never
//     learned from "animals such as cats" — recall is sacrificed for
//     precision;
//   - the concept is the head noun, so "industrialized countries such as
//     US" yields (US isA country), not (US isA industrialized country).
type SyntacticExtractor struct{}

// Run extracts pairs from the corpus in a single syntactic pass.
func (SyntacticExtractor) Run(inputs []extraction.Input) *kb.Store {
	store := kb.NewStore(0)
	for _, in := range inputs {
		m, ok := hearst.Parse(in.Text)
		if !ok {
			continue
		}
		// Closest NP to the keywords: for forward patterns with an
		// "other than" clause the decoy NP sits right before "such as",
		// which hearst.Parse lists last.
		superSurface := m.Supers[len(m.Supers)-1]
		// Head noun only.
		super := nlp.SingularizeWord(nlp.HeadNoun(superSurface))
		for _, seg := range m.Segments {
			// Always split on delimiters (no compound-name reasoning).
			cands := seg.Parts
			if len(cands) == 0 {
				cands = []string{seg.Whole}
			}
			for _, c := range cands {
				if !nlp.IsProperNounPhrase(c) {
					continue // proper nouns only
				}
				store.Add(super, nlp.CollapseSpaces(c), 1)
			}
		}
	}
	return store
}
