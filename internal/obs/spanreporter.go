package obs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Canonical stage names reported by the build pipeline. Every stage
// maps onto one of the paper's algorithms via AlgorithmForStage; the
// same names appear in -stats-out reports, progress lines, and the
// build trace's span names, so all three views join on them.
const (
	StageExtraction         = "extraction"          // Algorithm 1 fixpoint driver
	StageTaxonomy           = "taxonomy"            // Algorithm 2 umbrella
	StageTaxonomyHorizontal = "taxonomy.horizontal" // Algorithm 2 horizontal merge
	StageTaxonomyVertical   = "taxonomy.vertical"   // Algorithm 2 vertical merge
	StageTaxonomyAssemble   = "taxonomy.assemble"   // Algorithm 2 DAG assembly
	StageProbTrain          = "prob.train"          // Section 4.1 NB training
	StageProbAnnotate       = "prob.annotate"       // Section 4.1 edge annotation
	StageProbAlgorithm3     = "prob.algorithm3"     // Algorithm 3 reachability DP
	StageSnapshotSave       = "snapshot.save"       // snapshot serialisation
)

// AlgorithmForStage maps a stage (or a derived name such as
// "extraction.round.3") to the paper algorithm it implements:
// "algorithm1", "algorithm2", "algorithm3", "section4.1", or "" for
// infrastructure stages.
func AlgorithmForStage(stage string) string {
	base, _, _ := strings.Cut(stage, ".round.")
	switch {
	case base == StageExtraction || strings.HasPrefix(base, StageExtraction+"."):
		return "algorithm1"
	case base == StageTaxonomy || strings.HasPrefix(base, StageTaxonomy+"."):
		return "algorithm2"
	case base == StageProbAlgorithm3:
		return "algorithm3"
	case base == StageProbTrain, base == StageProbAnnotate:
		return "section4.1"
	}
	return ""
}

// SpanReporter is a StageReporter that renders pipeline telemetry as a
// trace: one root span for the whole run, a child span per stage
// (nested by dotted stage names, so "taxonomy.horizontal" sits under
// "taxonomy"), and a grandchild span per round with the round's
// counters as attributes. Safe for concurrent use, like every
// StageReporter.
type SpanReporter struct {
	mu       sync.Mutex
	tracer   *Tracer
	root     *Span
	open     map[string]openStage
	order    []string // open stages, most recent last
	counters map[string]map[string]int64
}

type openStage struct {
	ctx  context.Context
	span *Span
}

// NewSpanReporter opens a trace on tracer (which must be non-nil)
// whose root span carries rootName. Call Finish once the pipeline is
// done to close the root span and obtain the trace.
func NewSpanReporter(tracer *Tracer, rootName string) *SpanReporter {
	ctx, root := tracer.StartRoot(context.Background(), rootName)
	return &SpanReporter{
		tracer:   tracer,
		root:     root,
		open:     map[string]openStage{rootName: {ctx, root}},
		order:    []string{rootName},
		counters: make(map[string]map[string]int64),
	}
}

// parentOf picks the deepest open stage whose dotted name prefixes
// stage; falls back to the root span.
func (r *SpanReporter) parentOf(stage string) openStage {
	best := r.open[r.order[0]]
	bestLen := -1
	for name, os := range r.open {
		if name != stage && strings.HasPrefix(stage, name+".") && len(name) > bestLen {
			best, bestLen = os, len(name)
		}
	}
	return best
}

func (r *SpanReporter) StageStart(stage string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	parent := r.parentOf(stage)
	ctx, span := StartSpan(parent.ctx, stage)
	r.open[stage] = openStage{ctx, span}
	r.order = append(r.order, stage)
}

func (r *SpanReporter) StageEnd(stage string, elapsed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	os, ok := r.open[stage]
	if !ok {
		return
	}
	for counter, v := range r.counters[stage] {
		os.span.SetAttr(counter, strconv.FormatInt(v, 10))
	}
	os.span.End()
	delete(r.open, stage)
	delete(r.counters, stage)
	for i, name := range r.order {
		if name == stage {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

func (r *SpanReporter) Count(stage, counter string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[stage]
	if c == nil {
		c = make(map[string]int64)
		r.counters[stage] = c
	}
	c[counter] += delta
}

// Round records one iteration as a completed child span of its stage,
// backdated so the span covers the round's wall time.
func (r *SpanReporter) Round(stage string, round int, counters map[string]int64, elapsed time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	parent, ok := r.open[stage]
	if !ok {
		parent = r.parentOf(stage)
	}
	end := r.tracer.now()
	start := end.Add(-elapsed)
	// Backdating must not escape the parent span: a coarse elapsed
	// reading could otherwise start the round before its stage.
	if ps := parent.span.data.start; start.Before(ps) {
		start = ps
	}
	_, span := parent.span.startChild(parent.ctx, fmt.Sprintf("%s.round.%d", stage, round), start)
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		span.SetAttr(k, strconv.FormatInt(counters[k], 10))
	}
	span.endAt(end)
}

// Finish ends any stages left open plus the root span, finalising the
// trace, and returns it. The SpanReporter must not be used afterwards.
func (r *SpanReporter) Finish() (TraceData, bool) {
	r.mu.Lock()
	// Close in reverse open order so children end before parents.
	for i := len(r.order) - 1; i >= 1; i-- {
		if os, ok := r.open[r.order[i]]; ok {
			os.span.End()
		}
	}
	root := r.root
	id := root.TraceID()
	r.mu.Unlock()
	root.End()
	return r.tracer.Trace(id)
}
