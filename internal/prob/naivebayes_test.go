package prob

import (
	"math"
	"testing"
)

func TestNaiveBayesSeparates(t *testing.T) {
	nb := NewNaiveBayes()
	for i := 0; i < 50; i++ {
		nb.Train([]Feature{{Name: "pattern", Value: 1}, {Name: "pos", Value: 1}}, true)
		nb.Train([]Feature{{Name: "pattern", Value: 4}, {Name: "pos", Value: 3}}, false)
	}
	pGood := nb.Prob([]Feature{{Name: "pattern", Value: 1}, {Name: "pos", Value: 1}})
	pBad := nb.Prob([]Feature{{Name: "pattern", Value: 4}, {Name: "pos", Value: 3}})
	if pGood < 0.9 {
		t.Errorf("pGood = %v, want > 0.9", pGood)
	}
	if pBad > 0.1 {
		t.Errorf("pBad = %v, want < 0.1", pBad)
	}
}

func TestNaiveBayesUntrained(t *testing.T) {
	nb := NewNaiveBayes()
	if got := nb.Prob([]Feature{{Name: "x", Value: 1}}); got != 0.5 {
		t.Errorf("untrained prob = %v, want 0.5", got)
	}
	nb.Train([]Feature{{Name: "x", Value: 1}}, true)
	if nb.Trained() {
		t.Error("one-class model reported trained")
	}
	if got := nb.Prob([]Feature{{Name: "x", Value: 1}}); got != 0.5 {
		t.Errorf("one-class prob = %v, want 0.5", got)
	}
}

func TestNaiveBayesUnseenValueSmoothing(t *testing.T) {
	nb := NewNaiveBayes()
	for i := 0; i < 10; i++ {
		nb.Train([]Feature{{Name: "pattern", Value: 1}}, true)
		nb.Train([]Feature{{Name: "pattern", Value: 2}}, false)
	}
	// Value 3 was never seen: the posterior must stay finite and near the
	// class prior (0.5 here).
	p := nb.Prob([]Feature{{Name: "pattern", Value: 3}})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("smoothing failed: %v", p)
	}
	if p < 0.3 || p > 0.7 {
		t.Errorf("unseen value prob = %v, want near 0.5", p)
	}
	// An entirely unseen feature name is ignored.
	p = nb.Prob([]Feature{{Name: "unknown", Value: 7}})
	if p < 0.45 || p > 0.55 {
		t.Errorf("unseen feature prob = %v, want 0.5", p)
	}
}

func TestNaiveBayesImbalancedPrior(t *testing.T) {
	nb := NewNaiveBayes()
	for i := 0; i < 90; i++ {
		nb.Train([]Feature{{Name: "f", Value: 1}}, true)
	}
	for i := 0; i < 10; i++ {
		nb.Train([]Feature{{Name: "f", Value: 1}}, false)
	}
	p := nb.Prob([]Feature{{Name: "f", Value: 1}})
	if p < 0.8 {
		t.Errorf("prior-dominated prob = %v, want ~0.9", p)
	}
}

func TestFeatureBuckets(t *testing.T) {
	if bucketScore(-1) != 0 || bucketScore(2) != 10 || bucketScore(0.55) != 5 {
		t.Error("bucketScore wrong")
	}
	if logBucket(0) != 0 || logBucket(1) != 1 || logBucket(1024) != 11 || logBucket(1<<40) != 16 {
		t.Errorf("logBucket wrong: %d %d %d %d", logBucket(0), logBucket(1), logBucket(1024), logBucket(1<<40))
	}
	if clampInt(9, 1, 6) != 6 || clampInt(0, 1, 6) != 1 || clampInt(3, 1, 6) != 3 {
		t.Error("clampInt wrong")
	}
}
