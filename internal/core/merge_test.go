package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/graph"
)

func TestMergeFreebaseInstances(t *testing.T) {
	pb, w := buildFixture(t, 10000)
	fb := baseline.NewFreebaseRef(corpus.DefaultWorld(1))

	before := len(pb.Graph.Instances())
	merged, err := pb.Merge(fb.Graph)
	if err != nil {
		t.Fatal(err)
	}
	after := len(merged.Graph.Instances())
	if after <= before {
		t.Errorf("merge added no instances: %d -> %d", before, after)
	}
	// The original is untouched.
	if len(pb.Graph.Instances()) != before {
		t.Error("merge mutated the original graph")
	}
	// Every Freebase instance is now reachable under its concept.
	missing := 0
	for _, inst := range fb.Instances {
		if merged.Graph.Lookup(inst) == graph.NoNode {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d Freebase instances missing after merge", missing)
	}
	// Typicality queries keep working and see the merged mass.
	top := merged.InstancesOf("companies", 20)
	if len(top) == 0 {
		t.Fatal("merged taxonomy lost company instances")
	}
	// Plausibility on a merged-only pair falls back to reachability.
	var mergedOnly string
	for _, inst := range fb.Instances {
		if w.IsTrueIsA("companies", inst) && pb.Store.Count("company", inst) == 0 {
			mergedOnly = inst
			break
		}
	}
	if mergedOnly != "" {
		if got := merged.Plausibility("companies", mergedOnly); got <= 0 {
			t.Errorf("plausibility of merged-only pair (company, %s) = %v", mergedOnly, got)
		}
	}
}

func TestMergeIsDAGSafe(t *testing.T) {
	pb, _ := buildFixture(t, 8000)
	// An adversarial source that tries to invert an existing edge.
	adv := graph.NewStore()
	cat := adv.Intern("cat")
	animal := adv.Intern("animal")
	adv.AddEdge(cat, animal, 5, 0.9) // cat -> animal would close a cycle
	merged, err := pb.Merge(adv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merged.Graph.TopoLevels(); err != nil {
		t.Fatalf("merge produced a cycle: %v", err)
	}
}

func TestMergeEmptySource(t *testing.T) {
	pb, _ := buildFixture(t, 8000)
	merged, err := pb.Merge(graph.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Graph.NumNodes() != pb.Graph.NumNodes() || merged.Graph.NumEdges() != pb.Graph.NumEdges() {
		t.Error("empty merge changed the graph")
	}
}
