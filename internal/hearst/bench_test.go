package hearst

import "testing"

var benchSentences = []string{
	"domestic animals such as cats, dogs and rabbits live with humans.",
	"representatives in North America, Europe, Australia, Japan, China, and other countries were present.",
	"companies such as IBM, Nokia, Proctor and Gamble",
	"the quick brown fox jumps over the lazy dog",
	"such tropical countries as Singapore, Malaysia",
	"large cities, including New York, Chicago and Los Angeles.",
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Parse(benchSentences[i%len(benchSentences)])
	}
}

func BenchmarkParseNoMatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Parse("the quick brown fox jumps over the lazy dog near the river bank")
	}
}
