package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	if got := Bound(8, 3); got != 3 {
		t.Fatalf("Bound(8, 3) = %d, want 3", got)
	}
	if got := Bound(2, 100); got != 2 {
		t.Fatalf("Bound(2, 100) = %d, want 2", got)
	}
}

// Every item must run exactly once, at every worker count, and results
// collected by index must be identical to the serial run.
func TestForEachRunsAllItemsOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 4, 8, 33} {
		counts := make([]int32, n)
		out := make([]int, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if counts[i] != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, counts[i])
			}
			if out[i] != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, out[i])
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), 4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called with n=0")
	}
}

// The lowest-indexed error must win regardless of scheduling, so a
// parallel run reports the same failure a serial run would.
func TestForEachLowestIndexedErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(context.Background(), workers, 100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3" {
			t.Fatalf("workers=%d: err = %v, want item 3", workers, err)
		}
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(context.Background(), 2, 10000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got > 100 {
		t.Fatalf("pool kept going after error: %d items ran", got)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 4, 100000, func(i int) error {
		if ran.Add(1) == 50 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 10000 {
		t.Fatalf("pool kept going after cancellation: %d items ran", got)
	}

	// Pre-cancelled context: nothing runs, serial path included.
	for _, workers := range []int{1, 4} {
		pre, cancel2 := context.WithCancel(context.Background())
		cancel2()
		called := false
		err := ForEach(pre, workers, 5, func(int) error { called = true; return nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if called && workers == 1 {
			t.Fatal("serial path ran an item under a cancelled context")
		}
	}
}

// A worker panic must resurface on the calling goroutine, with the
// original value and worker stack in the message, after the pool drains.
func TestForEachPanicPropagation(t *testing.T) {
	for _, workers := range []int{2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "kaboom 5") {
					t.Fatalf("workers=%d: panic message %q lost the value", workers, msg)
				}
				if !strings.Contains(msg, "parallel_test.go") {
					t.Fatalf("workers=%d: panic message lost the worker stack", workers)
				}
			}()
			_ = ForEach(context.Background(), workers, 100, func(i int) error {
				if i == 5 {
					panic("kaboom 5")
				}
				return nil
			})
		}()
	}
}

// A panic is never masked by a lower-indexed plain error.
func TestForEachPanicBeatsError(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic was swallowed by the error")
		}
	}()
	started := make(chan struct{})
	_ = ForEach(context.Background(), 2, 2, func(i int) error {
		if i == 0 {
			<-started // hold the error until the panicking item is in flight
			return errors.New("plain error first")
		}
		close(started)
		panic("must still propagate")
	})
}

func TestForEachWorkerIDsAreBounded(t *testing.T) {
	const workers = 4
	scratch := make([]int, workers) // one slot per worker, lock-free
	err := ForEachWorker(context.Background(), workers, 10000, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker id %d out of range", w)
		}
		scratch[w]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range scratch {
		total += c
	}
	if total != 10000 {
		t.Fatalf("items across workers = %d, want 10000", total)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		out, err := Map(context.Background(), workers, 500, func(i int) (string, error) {
			return fmt.Sprintf("r%d", i), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != fmt.Sprintf("r%d", i) {
				t.Fatalf("workers=%d: out[%d] = %q", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(context.Background(), 4, 100, func(i int) (int, error) {
		if i == 42 {
			return 0, errors.New("item 42")
		}
		return i, nil
	})
	if err == nil || err.Error() != "item 42" {
		t.Fatalf("err = %v", err)
	}
	if out != nil {
		t.Fatal("partial results returned on error")
	}
}

// The race detector (CI runs -race) is the real assertion here: many
// writers into disjoint index slots, no locks.
func TestForEachDisjointSlotWritesRaceFree(t *testing.T) {
	out := make([][]int, 200)
	err := ForEach(context.Background(), 8, len(out), func(i int) error {
		row := make([]int, 10)
		for j := range row {
			row[j] = i + j
		}
		out[i] = row
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range out {
		if row[0] != i {
			t.Fatalf("row %d corrupted", i)
		}
	}
}
