package nlp

import "strings"

// irregularPlurals maps irregular singular forms to their plurals. The
// reverse map is derived in init.
var irregularPlurals = map[string]string{
	"bus":          "buses",
	"gas":          "gases",
	"virus":        "viruses",
	"campus":       "campuses",
	"person":       "people",
	"child":        "children",
	"man":          "men",
	"woman":        "women",
	"foot":         "feet",
	"tooth":        "teeth",
	"goose":        "geese",
	"mouse":        "mice",
	"ox":           "oxen",
	"phenomenon":   "phenomena",
	"criterion":    "criteria",
	"datum":        "data",
	"medium":       "media",
	"analysis":     "analyses",
	"crisis":       "crises",
	"thesis":       "theses",
	"fungus":       "fungi",
	"cactus":       "cacti",
	"nucleus":      "nuclei",
	"syllabus":     "syllabi",
	"alumnus":      "alumni",
	"appendix":     "appendices",
	"index":        "indices",
	"matrix":       "matrices",
	"vertex":       "vertices",
	"axis":         "axes",
	"wolf":         "wolves",
	"leaf":         "leaves",
	"loaf":         "loaves",
	"knife":        "knives",
	"life":         "lives",
	"wife":         "wives",
	"shelf":        "shelves",
	"thief":        "thieves",
	"half":         "halves",
	"calf":         "calves",
	"sheep":        "sheep",
	"fish":         "fish",
	"movie":        "movies",
	"cookie":       "cookies",
	"calorie":      "calories",
	"zombie":       "zombies",
	"rookie":       "rookies",
	"selfie":       "selfies",
	"smoothie":     "smoothies",
	"gymnastics":   "gymnastics",
	"athletics":    "athletics",
	"economics":    "economics",
	"physics":      "physics",
	"mathematics":  "mathematics",
	"politics":     "politics",
	"news":         "news",
	"diabetes":     "diabetes",
	"measles":      "measles",
	"aerobics":     "aerobics",
	"deer":         "deer",
	"species":      "species",
	"series":       "series",
	"aircraft":     "aircraft",
	"spacecraft":   "spacecraft",
	"hero":         "heroes",
	"potato":       "potatoes",
	"tomato":       "tomatoes",
	"echo":         "echoes",
	"volcano":      "volcanoes",
	"university":   "universities",
	"city":         "cities",
	"country":      "countries",
	"company":      "companies",
	"technology":   "technologies",
	"celebrity":    "celebrities",
	"library":      "libraries",
	"party":        "parties",
	"industry":     "industries",
	"currency":     "currencies",
	"economy":      "economies",
	"disability":   "disabilities",
	"body":         "bodies",
	"berry":        "berries",
	"battery":      "batteries",
	"facility":     "facilities",
	"activity":     "activities",
	"deity":        "deities",
	"galaxy":       "galaxies",
	"observatory":  "observatories",
	"laboratory":   "laboratories",
	"territory":    "territories",
	"category":     "categories",
	"commodity":    "commodities",
	"utility":      "utilities",
	"ministry":     "ministries",
	"treaty":       "treaties",
	"county":       "counties",
	"agency":       "agencies",
	"charity":      "charities",
	"academy":      "academies",
	"gallery":      "galleries",
	"refinery":     "refineries",
	"brewery":      "breweries",
	"winery":       "wineries",
	"factory":      "factories",
	"dictionary":   "dictionaries",
	"documentary":  "documentaries",
	"dynasty":      "dynasties",
	"therapy":      "therapies",
	"allergy":      "allergies",
	"surgery":      "surgeries",
	"injury":       "injuries",
	"delicacy":     "delicacies",
	"pharmacy":     "pharmacies",
	"vacancy":      "vacancies",
	"variety":      "varieties",
	"society":      "societies",
	"authority":    "authorities",
	"personality":  "personalities",
	"municipality": "municipalities",
}

var irregularSingulars map[string]string

func init() {
	irregularSingulars = make(map[string]string, len(irregularPlurals))
	for s, p := range irregularPlurals {
		irregularSingulars[p] = s
	}
}

func isVowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// PluralizeWord returns the plural form of a single lower-case noun.
func PluralizeWord(w string) string {
	if p, ok := irregularPlurals[w]; ok {
		return p
	}
	n := len(w)
	switch {
	case n == 0:
		return w
	case strings.HasSuffix(w, "s") || strings.HasSuffix(w, "x") ||
		strings.HasSuffix(w, "z") || strings.HasSuffix(w, "ch") ||
		strings.HasSuffix(w, "sh"):
		return w + "es"
	case strings.HasSuffix(w, "y") && n > 1 && !isVowel(w[n-2]):
		return w[:n-1] + "ies"
	default:
		return w + "s"
	}
}

// SingularizeWord returns the singular form of a single lower-case noun.
// It is the (approximate) inverse of PluralizeWord.
func SingularizeWord(w string) string {
	if s, ok := irregularSingulars[w]; ok {
		return s
	}
	if _, ok := irregularPlurals[w]; ok {
		return w // already singular and invariant forms like "sheep"
	}
	n := len(w)
	switch {
	case strings.HasSuffix(w, "ies") && n > 4:
		return w[:n-3] + "y"
	case strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "zes") ||
		strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "shes") ||
		strings.HasSuffix(w, "sses"):
		return w[:n-2]
	case strings.HasSuffix(w, "ss"):
		return w
	case strings.HasSuffix(w, "s") && n > 1:
		return w[:n-1]
	default:
		return w
	}
}

// IsPluralWord reports whether a lower-case word looks plural: either it is
// a known irregular plural or singularising then re-pluralising round-trips.
func IsPluralWord(w string) bool {
	if _, ok := irregularSingulars[w]; ok {
		return true
	}
	if _, ok := irregularPlurals[w]; ok {
		// Invariant plurals (sheep, fish, series) count as plural; a word
		// that has a *different* plural form is singular.
		return irregularPlurals[w] == w
	}
	if !strings.HasSuffix(w, "s") || strings.HasSuffix(w, "ss") {
		return false
	}
	return PluralizeWord(SingularizeWord(w)) == w
}

// PluralizePhrase pluralises the head (final) word of a noun phrase:
// "tropical country" -> "tropical countries".
func PluralizePhrase(p string) string {
	fields := strings.Fields(p)
	if len(fields) == 0 {
		return p
	}
	fields[len(fields)-1] = PluralizeWord(fields[len(fields)-1])
	return strings.Join(fields, " ")
}

// SingularizePhrase singularises the head (final) word of a noun phrase:
// "tropical countries" -> "tropical country".
func SingularizePhrase(p string) string {
	fields := strings.Fields(p)
	if len(fields) == 0 {
		return p
	}
	fields[len(fields)-1] = SingularizeWord(fields[len(fields)-1])
	return strings.Join(fields, " ")
}

// IsPluralPhrase reports whether the head word of the phrase is plural —
// the Section 2.3.1 requirement for candidate super-concepts.
func IsPluralPhrase(p string) bool {
	fields := strings.Fields(strings.ToLower(p))
	if len(fields) == 0 {
		return false
	}
	return IsPluralWord(fields[len(fields)-1])
}
