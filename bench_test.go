package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
)

// benchSetup is shared by all experiment benchmarks; building it is
// itself measured by BenchmarkBuildPipeline.
var (
	benchOnce sync.Once
	benchVal  *experiments.Setup
	benchErr  error
)

func setup(b *testing.B) *experiments.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchVal, benchErr = experiments.NewSetup(experiments.Options{Sentences: 20000})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchVal
}

// BenchmarkBuildPipeline measures the full build: corpus generation,
// iterative extraction, taxonomy construction, probabilistic annotation.
// (The paper: 7h/10 machines for extraction + 4h/30 machines for
// construction at web scale.)
func BenchmarkBuildPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewSetup(experiments.Options{Sentences: 20000, Seed: int64(11 + i)})
		if err != nil {
			b.Fatal(err)
		}
		if s.PB.Graph.NumNodes() == 0 {
			b.Fatal("empty taxonomy")
		}
	}
}

// --- One benchmark per table and figure of the evaluation ---

func BenchmarkTable1ConceptSpace(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := s.Table1()
		if len(rows) != 5 {
			b.Fatal("bad table 1")
		}
	}
}

func BenchmarkTable4Hierarchy(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Typicality(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := s.Table5()
		if len(rows) != 40 {
			b.Fatal("bad table 5")
		}
	}
}

// BenchmarkFig5RelevantConcepts, Fig6 and Fig7 share one sweep; each
// bench regenerates the full coverage analysis and validates its own
// series.
func coverageBench(b *testing.B, check func(*experiments.CoverageResult) error) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := s.Coverage(20000)
		if err := check(res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5RelevantConcepts(b *testing.B) {
	coverageBench(b, func(r *experiments.CoverageResult) error {
		for _, series := range r.Series {
			if len(series.Points) == 0 || series.Points[len(series.Points)-1].RelevantConcepts == 0 {
				return fmt.Errorf("series %s empty", series.Name)
			}
		}
		return nil
	})
}

func BenchmarkFig6TaxonomyCoverage(b *testing.B) {
	coverageBench(b, func(r *experiments.CoverageResult) error {
		for _, series := range r.Series {
			if series.Points[len(series.Points)-1].Covered == 0 {
				return fmt.Errorf("series %s empty", series.Name)
			}
		}
		return nil
	})
}

func BenchmarkFig7ConceptCoverage(b *testing.B) {
	coverageBench(b, func(r *experiments.CoverageResult) error {
		for _, series := range r.Series {
			if series.Points[len(series.Points)-1].ConceptCovered == 0 {
				return fmt.Errorf("series %s empty", series.Name)
			}
		}
		return nil
	})
}

func BenchmarkFig8SizeDistribution(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, _ := s.Fig8()
		if len(ds) != 2 {
			b.Fatal("bad fig 8")
		}
	}
}

func BenchmarkFig9Precision(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cps, _ := s.Fig9()
		if len(cps) != 40 {
			b.Fatal("bad fig 9")
		}
	}
}

func BenchmarkFig10Iterations(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := s.Fig10()
		if len(rows) == 0 {
			b.Fatal("bad fig 10")
		}
	}
}

func BenchmarkFig11IterPrecision(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := s.Fig11()
		if len(rows) == 0 {
			b.Fatal("bad fig 11")
		}
	}
}

func BenchmarkFig12Attributes(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ := s.Fig12()
		if rep.Concepts == 0 {
			b.Fatal("bad fig 12")
		}
	}
}

// --- Section 5.3 applications and Section 2/3 ablations ---

func BenchmarkSemanticSearch(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ := s.Search()
		if rep.Queries == 0 {
			b.Fatal("bad search report")
		}
	}
}

func BenchmarkShortText(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ := s.ShortText()
		if rep.Tweets == 0 {
			b.Fatal("bad short-text report")
		}
	}
}

func BenchmarkWebTables(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ := s.WebTables()
		if rep.Tables == 0 {
			b.Fatal("bad web-table report")
		}
	}
}

func BenchmarkSyntacticBaseline(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ := s.Baseline()
		if rep.SyntacticPairs == 0 {
			b.Fatal("bad baseline report")
		}
	}
}

func BenchmarkJaccardAblation(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ := s.Jaccard()
		if rep.AbsSenses == 0 {
			b.Fatal("bad ablation report")
		}
	}
}

func BenchmarkMergeOrder(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ := s.MergeOrder()
		if !rep.Confluent {
			b.Fatal("not confluent")
		}
	}
}

func BenchmarkPlausibilityFilter(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ := s.Plausibility()
		if rep.Pairs == 0 {
			b.Fatal("bad plausibility report")
		}
	}
}

func BenchmarkGrowthSweep(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, _ := s.Growth()
		if len(points) == 0 {
			b.Fatal("bad growth sweep")
		}
	}
}

func BenchmarkMergeFreebase(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ := s.MergeFreebase()
		if rep.InstancesAfter == 0 {
			b.Fatal("bad merge report")
		}
	}
}

func BenchmarkQueryInterpretation(b *testing.B) {
	s := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _ := s.InterpretExp()
		if rep.Pairs == 0 {
			b.Fatal("bad interpretation report")
		}
	}
}
