// Package loadgen is a closed-loop HTTP load generator for
// probase-serve: the macro-benchmark behind the CI capacity-smoke SLO
// gate. It replays the internal/querylog Zipf query mix — the same
// long-tailed workload the paper validates against two years of Bing
// queries (Figures 5-7) — across the six serving endpoints and records
// latency in coordinated-omission-aware HDR-style histograms (internal/hdr).
//
// Design, after streamfold/otel-loadgen's bounded-worker shape:
//
//   - One deterministic request generator (requestGen) plans the URI
//     stream from the seed alone and fingerprints it, so a run is
//     replayable and worker count never changes *what* is sent, only
//     how fast — the same determinism convention the build pipeline
//     pins with its workers=1-vs-8 tests.
//   - N closed-loop workers consume the stream over one shared
//     http.Client: each worker issues, waits, records, repeats. With
//     Interval > 0 workers instead pace requests on a fixed schedule
//     and measure from the *intended* start, so a server stall is
//     charged to every request it delayed (the coordinated-omission
//     fix); the backfill path is hdr.Hist.RecordCorrected.
//   - A reporter goroutine prints interval progress lines; the final
//     Result renders as a probase-bench/v1 report (report.go) the
//     existing bench tooling consumes unchanged.
//
// A fraction of requests (TraceSample) carries a W3C traceparent via
// obs.Transport, and the slowest traced requests surface in the Result
// with their trace IDs — joinable with the server's /debug/traces.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/hdr"
	"repro/internal/obs"
	"repro/internal/querylog"
)

// Config tunes one load-generation run. Zero values take the listed
// defaults.
type Config struct {
	// Target is the base URL of the server under test, e.g.
	// "http://127.0.0.1:8080". Required.
	Target string
	// Workers is the number of closed-loop clients. Default 4.
	Workers int
	// Duration bounds the run in wall time. Default 10s.
	Duration time.Duration
	// MaxRequests, when > 0, additionally bounds the run by request
	// count — the mode deterministic-replay tests use, since a pure
	// time bound makes the sent-stream length timing-dependent.
	MaxRequests int64
	// ReportInterval is the cadence of progress lines on Progress.
	// Zero disables them.
	ReportInterval time.Duration
	// Seed drives the whole request plan (query pool and URI stream).
	Seed int64
	// Queries is the distinct-query pool size generated from
	// internal/querylog. Default 5000.
	Queries int
	// Mix weights traffic across endpoints. Zero value = DefaultMix.
	Mix Mix
	// Timeout is the per-request deadline. Default 2s.
	Timeout time.Duration
	// Interval, when > 0, paces each worker on a fixed schedule
	// (open-loop arrivals) and measures latency from the intended
	// start; missed starts are additionally backfilled into the
	// histogram (coordinated-omission correction).
	Interval time.Duration
	// TraceSample is the fraction of requests carrying an outbound
	// traceparent header. Zero disables client tracing.
	TraceSample float64
	// SubBits is the histogram resolution; see hdr.New. Default 7.
	SubBits int
	// Client overrides the HTTP client (tests). The default client
	// pools Workers keep-alive connections behind obs.Transport.
	Client *http.Client
	// Progress receives interval lines and is ignored when nil.
	Progress io.Writer
	// World is the synthetic taxonomy world whose query log is
	// replayed. Default corpus.DefaultWorld(1) — the same world the
	// bench and server tests use.
	World *corpus.World
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Queries <= 0 {
		c.Queries = 5000
	}
	if c.Mix.total <= 0 {
		c.Mix = DefaultMix()
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.SubBits == 0 {
		c.SubBits = hdr.DefaultSubBits
	}
	if c.Progress == nil {
		c.Progress = io.Discard
	}
	return c
}

// Stats aggregates one endpoint's (or the whole run's) outcomes.
// Latency covers every completed attempt, including errored and
// timed-out ones — a timeout contributes its full deadline, so slow
// failures cannot flatter the percentiles.
type Stats struct {
	Requests int64 // attempts issued
	Errors   int64 // transport failures and HTTP 5xx
	Timeouts int64 // per-request deadline exceeded
	HTTP4xx  int64 // client-level misses (e.g. conceptualize 404); not errors
	Latency  *hdr.Hist
}

// ErrorRate returns (Errors+Timeouts)/Requests — the fraction the SLO
// gate charges against the run. 4xx responses are valid negative
// answers on this API surface and are excluded.
func (s *Stats) ErrorRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Errors+s.Timeouts) / float64(s.Requests)
}

func (s *Stats) add(o *Stats) error {
	s.Requests += o.Requests
	s.Errors += o.Errors
	s.Timeouts += o.Timeouts
	s.HTTP4xx += o.HTTP4xx
	return s.Latency.Merge(o.Latency)
}

// SlowRequest is one of the slowest traced requests of a run, kept so
// a bad percentile points at concrete server-side trace waterfalls.
type SlowRequest struct {
	Endpoint   string  `json:"endpoint"`
	URI        string  `json:"uri"`
	MS         float64 `json:"ms"`
	TraceID    string  `json:"trace_id,omitempty"`
	StatusCode int     `json:"status,omitempty"`
}

// Result is one finished run.
type Result struct {
	Target      string
	Workers     int
	Elapsed     time.Duration
	Seed        int64
	Queries     int
	Mix         Mix
	Fingerprint string // sha256 of the generated URI stream
	Generated   int64  // requests planned (== Total.Requests when all were sent)
	Total       *Stats
	Endpoints   map[string]*Stats
	Slowest     []SlowRequest
}

// workerStats is one worker's private recording surface. The mutex is
// only contended when the interval reporter snapshots.
type workerStats struct {
	mu        sync.Mutex
	total     *Stats
	endpoints map[string]*Stats
	slowest   []SlowRequest
}

func newWorkerStats(subBits int) *workerStats {
	ws := &workerStats{
		total:     &Stats{Latency: hdr.New(subBits)},
		endpoints: make(map[string]*Stats, len(Endpoints)),
	}
	for _, ep := range Endpoints {
		ws.endpoints[ep] = &Stats{Latency: hdr.New(subBits)}
	}
	return ws
}

const slowestKeep = 5

// record books one completed attempt.
func (ws *workerStats) record(ep string, lat time.Duration, interval time.Duration,
	status int, timedOut, failed bool, slow SlowRequest) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for _, s := range []*Stats{ws.total, ws.endpoints[ep]} {
		s.Requests++
		switch {
		case timedOut:
			s.Timeouts++
		case failed || status >= 500:
			s.Errors++
		case status >= 400:
			s.HTTP4xx++
		}
		s.Latency.RecordCorrected(lat.Nanoseconds(), interval.Nanoseconds())
	}
	if slow.TraceID != "" {
		ws.slowest = append(ws.slowest, slow)
		sort.Slice(ws.slowest, func(i, j int) bool { return ws.slowest[i].MS > ws.slowest[j].MS })
		if len(ws.slowest) > slowestKeep {
			ws.slowest = ws.slowest[:slowestKeep]
		}
	}
}

// merge folds every worker's stats into one Result-shaped view.
func merge(workers []*workerStats, subBits int) (*Stats, map[string]*Stats, []SlowRequest, error) {
	total := &Stats{Latency: hdr.New(subBits)}
	endpoints := make(map[string]*Stats, len(Endpoints))
	for _, ep := range Endpoints {
		endpoints[ep] = &Stats{Latency: hdr.New(subBits)}
	}
	var slowest []SlowRequest
	for _, ws := range workers {
		ws.mu.Lock()
		if err := total.add(ws.total); err != nil {
			ws.mu.Unlock()
			return nil, nil, nil, err
		}
		for ep, s := range ws.endpoints {
			if err := endpoints[ep].add(s); err != nil {
				ws.mu.Unlock()
				return nil, nil, nil, err
			}
		}
		slowest = append(slowest, ws.slowest...)
		ws.mu.Unlock()
	}
	sort.Slice(slowest, func(i, j int) bool { return slowest[i].MS > slowest[j].MS })
	if len(slowest) > slowestKeep {
		slowest = slowest[:slowestKeep]
	}
	return total, endpoints, slowest, nil
}

// Run executes one load-generation run and blocks until Duration (or
// MaxRequests, or ctx cancellation) ends it and every in-flight
// request has drained.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, errors.New("loadgen: Config.Target is required")
	}

	// The workload pool: query texts streamed off the Zipf log. Only
	// the texts are retained — the iterator path exists so 50k+ query
	// workloads never materialise a second []querylog.Query copy.
	world := cfg.World
	if world == nil {
		world = corpus.DefaultWorld(1)
	}
	pool := make([]string, 0, cfg.Queries)
	querylog.Iterate(world, querylog.Config{Queries: cfg.Queries, Seed: cfg.Seed}, func(q querylog.Query) bool {
		pool = append(pool, q.Text)
		return true
	})
	if len(pool) == 0 {
		return nil, errors.New("loadgen: empty query pool")
	}

	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: obs.Transport{Base: &http.Transport{
				MaxIdleConns:        cfg.Workers * 2,
				MaxIdleConnsPerHost: cfg.Workers * 2,
			}},
		}
	}
	// Client-side tracer: roots are created per sampled request; the
	// per-worker rng (not the plan rng) decides sampling so tracing
	// never perturbs the request stream.
	var tracer *obs.Tracer
	if cfg.TraceSample > 0 {
		tracer = obs.NewTracer(obs.TracerConfig{SampleRate: 1, BufferSize: 16, Seed: cfg.Seed + 1})
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// The generator goroutine owns the plan: it is the only writer of
	// the rng and the fingerprint hash, so the stream is identical for
	// any worker count.
	gen := newRequestGen(cfg.Seed, cfg.Mix, pool)
	reqs := make(chan request)
	var generated int64
	genDone := make(chan struct{})
	go func() {
		defer close(reqs)
		defer close(genDone)
		for cfg.MaxRequests <= 0 || generated < cfg.MaxRequests {
			r := gen.next()
			select {
			case reqs <- r:
				generated++
			case <-runCtx.Done():
				// The last planned request was hashed but never sent;
				// MaxRequests-bound runs that finish in time never hit
				// this path, keeping their fingerprints exact.
				return
			}
		}
	}()

	stats := make([]*workerStats, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		stats[w] = newWorkerStats(cfg.SubBits)
		wg.Add(1)
		go func(ws *workerStats, id int) {
			defer wg.Done()
			runWorker(runCtx, cfg, client, tracer, reqs, ws, id, start)
		}(stats[w], w)
	}

	// Interval progress lines: merged snapshot across workers.
	var reportWG sync.WaitGroup
	if cfg.ReportInterval > 0 {
		reportWG.Add(1)
		go func() {
			defer reportWG.Done()
			tick := time.NewTicker(cfg.ReportInterval)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					total, _, _, err := merge(stats, cfg.SubBits)
					if err != nil {
						return
					}
					h := total.Latency
					fmt.Fprintf(cfg.Progress,
						"[%s] requests=%d rps=%.1f errors=%d timeouts=%d 4xx=%d p50=%s p99=%s p99.9=%s\n",
						time.Since(start).Round(time.Second), total.Requests,
						float64(total.Requests)/time.Since(start).Seconds(),
						total.Errors, total.Timeouts, total.HTTP4xx,
						time.Duration(h.Quantile(0.5)).Round(10*time.Microsecond),
						time.Duration(h.Quantile(0.99)).Round(10*time.Microsecond),
						time.Duration(h.Quantile(0.999)).Round(10*time.Microsecond))
				}
			}
		}()
	}

	wg.Wait()
	cancel()
	<-genDone
	reportWG.Wait()
	elapsed := time.Since(start)

	total, endpoints, slowest, err := merge(stats, cfg.SubBits)
	if err != nil {
		return nil, err
	}
	return &Result{
		Target:      cfg.Target,
		Workers:     cfg.Workers,
		Elapsed:     elapsed,
		Seed:        cfg.Seed,
		Queries:     cfg.Queries,
		Mix:         cfg.Mix,
		Fingerprint: gen.fingerprint(),
		Generated:   generated,
		Total:       total,
		Endpoints:   endpoints,
		Slowest:     slowest,
	}, nil
}

// runWorker is one closed-loop client: receive a planned request,
// issue it, record, repeat. With pacing, latency is measured from the
// intended start so queueing delay behind a stalled server is charged
// to every request it held up.
func runWorker(ctx context.Context, cfg Config, client *http.Client, tracer *obs.Tracer,
	reqs <-chan request, ws *workerStats, id int, start time.Time) {
	// Worker-local sampling rng, decoupled from the plan.
	sampleEvery := int64(0)
	if cfg.TraceSample > 0 {
		sampleEvery = int64(1 / cfg.TraceSample)
		if sampleEvery < 1 {
			sampleEvery = 1
		}
	}
	var n int64
	next := start.Add(time.Duration(id) * cfg.Interval / time.Duration(cfg.Workers))
	for {
		var req request
		select {
		case <-ctx.Done():
			return
		case r, ok := <-reqs:
			if !ok {
				return
			}
			req = r
		}

		var began time.Time
		if cfg.Interval > 0 {
			if wait := time.Until(next); wait > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(wait):
				}
			}
			began = next // intended start: the coordinated-omission fix
			next = next.Add(cfg.Interval)
		} else {
			began = time.Now()
		}

		reqCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
		var span *obs.Span
		n++
		if sampleEvery > 0 && n%sampleEvery == 0 {
			reqCtx, span = tracer.StartRoot(reqCtx, "loadgen."+req.endpoint)
		}
		status, failed, timedOut := doRequest(reqCtx, client, cfg.Target+req.uri)
		if ctx.Err() != nil && (!timedOut || time.Since(began) < cfg.Timeout) {
			// The run ended while this request was in flight: the
			// cancellation (or the run deadline masquerading as the
			// request deadline) is shutdown noise, not a server
			// outcome — drop the sample, as a run-length change must
			// not manufacture errors.
			if span != nil {
				span.End()
			}
			cancel()
			return
		}
		lat := time.Since(began)
		var slow SlowRequest
		if span != nil {
			if failed || status >= 500 {
				span.SetError(fmt.Sprintf("status %d", status))
			}
			slow = SlowRequest{
				Endpoint: req.endpoint, URI: req.uri,
				MS: float64(lat.Nanoseconds()) / 1e6, TraceID: span.TraceID(), StatusCode: status,
			}
			span.End()
		}
		cancel()
		ws.record(req.endpoint, lat, cfg.Interval, status, timedOut, failed, slow)
	}
}

// doRequest performs one call and fully drains the body so keep-alive
// connections are reused.
func doRequest(ctx context.Context, client *http.Client, url string) (status int, failed, timedOut bool) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, true, false
	}
	resp, err := client.Do(httpReq)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return 0, false, true
		}
		return 0, true, false
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if copyErr != nil {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return resp.StatusCode, false, true
		}
		return resp.StatusCode, true, false
	}
	return resp.StatusCode, false, false
}
