package querylog

import (
	"testing"

	"repro/internal/corpus"
)

func BenchmarkGenerate(b *testing.B) {
	w := corpus.DefaultWorld(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs := Generate(w, Config{Queries: 10000, Seed: int64(i)})
		if len(qs) != 10000 {
			b.Fatal("bad log")
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	w := corpus.DefaultWorld(1)
	qs := Generate(w, Config{Queries: 10000, Seed: 3})
	var concepts, instances []string
	for _, key := range w.Keys() {
		c := w.Concept(key)
		concepts = append(concepts, c.Label)
		instances = append(instances, c.Instances...)
	}
	v := NewVocabulary(concepts, instances)
	ks := []int{2500, 5000, 10000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := Analyze(qs, v, ks)
		if len(pts) != 3 {
			b.Fatal("bad points")
		}
	}
}
