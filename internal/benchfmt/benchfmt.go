// Package benchfmt defines the machine-readable benchmark report
// format shared by the benchmark producers — probase-bench's -json
// reports and probase-loadgen's capacity reports — and the validation
// the CI smoke jobs gate on.
//
// The layout is named by Schema ("probase-bench/v1"); bump the version
// on breaking changes so downstream tooling can dispatch on it. Every
// report is a flat document: a build stamp, the generation options, and
// a list of named experiments each carrying a structured result (or an
// error) plus its wall time. Consumers that only chart timings never
// need to understand any experiment's Result payload.
package benchfmt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
)

// Schema names the report layout; bump on breaking changes so
// downstream tooling can dispatch on it.
const Schema = "probase-bench/v1"

// Report is the top-level -json document.
type Report struct {
	Schema       string        `json:"schema"`
	Build        obs.BuildInfo `json:"build"`
	Options      Options       `json:"options"`
	SetupSeconds float64       `json:"setup_seconds"`
	Experiments  []Experiment  `json:"experiments"`
	TotalSeconds float64       `json:"total_seconds"`
}

// Options records how the workload behind the report was generated.
// For probase-bench these are the corpus knobs; probase-loadgen maps
// its workload onto the same fields (Sentences and Queries both carry
// the distinct-query count, Scale is 1).
type Options struct {
	Scale     float64 `json:"scale"`
	Sentences int     `json:"sentences"`
	Seed      int64   `json:"seed"`
	Queries   int     `json:"queries"`
}

// Experiment holds one experiment's structured result — the same value
// the producer's text output renders — plus its wall time.
type Experiment struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Result  any     `json:"result,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// Experiment returns the named experiment entry, if present.
func (r *Report) Experiment(name string) (Experiment, bool) {
	for _, e := range r.Experiments {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// ValidateBytes checks that raw holds a well-formed Report: the schema
// marker, a build stamp, and at least one experiment with a name and a
// non-negative duration. name labels errors (usually a file path).
func ValidateBytes(name string, raw []byte) error {
	return ValidateBytesAs(name, raw, Schema)
}

// ValidateBytesAs is ValidateBytes for a tool that reuses the Report
// layout under its own schema marker (e.g. probase-inspect/v1): the
// structural rules are identical, only the expected schema differs.
func ValidateBytesAs(name string, raw []byte, schema string) error {
	var r Report
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	switch {
	case r.Schema != schema:
		return fmt.Errorf("%s: schema %q, want %q", name, r.Schema, schema)
	case len(r.Experiments) == 0:
		return fmt.Errorf("%s: no experiments recorded", name)
	case r.TotalSeconds <= 0:
		return fmt.Errorf("%s: non-positive total_seconds %v", name, r.TotalSeconds)
	case r.Options.Sentences <= 0:
		return fmt.Errorf("%s: non-positive options.sentences %d", name, r.Options.Sentences)
	}
	for i, e := range r.Experiments {
		if e.Name == "" {
			return fmt.Errorf("%s: experiment %d has no name", name, i)
		}
		if e.Seconds < 0 {
			return fmt.Errorf("%s: experiment %q has negative seconds", name, e.Name)
		}
		if e.Result == nil && e.Error == "" {
			return fmt.Errorf("%s: experiment %q has neither result nor error", name, e.Name)
		}
	}
	return nil
}

// ValidateFile reads path and validates it as a Report.
func ValidateFile(path string) error {
	return ValidateFileAs(path, Schema)
}

// ValidateFileAs reads path and validates it as a Report carrying the
// given schema marker.
func ValidateFileAs(path, schema string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return ValidateBytesAs(path, raw, schema)
}
