package loadgen

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/obs"
)

// ExperimentName labels the loadgen entry inside a probase-bench/v1
// report.
const ExperimentName = "loadgen"

// EndpointReport is the per-endpoint (and aggregate) slice of the JSON
// result: counts, rates, and the latency quantiles in milliseconds.
type EndpointReport struct {
	Endpoint  string  `json:"endpoint"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Timeouts  int64   `json:"timeouts"`
	HTTP4xx   int64   `json:"http_4xx"`
	Share     float64 `json:"share"`
	ErrorRate float64 `json:"error_rate"`
	P50MS     float64 `json:"p50_ms"`
	P90MS     float64 `json:"p90_ms"`
	P99MS     float64 `json:"p99_ms"`
	P999MS    float64 `json:"p999_ms"`
	MinMS     float64 `json:"min_ms"`
	MaxMS     float64 `json:"max_ms"`
	MeanMS    float64 `json:"mean_ms"`
}

// ReportResult is the Result payload of the loadgen experiment entry.
type ReportResult struct {
	Target          string             `json:"target"`
	Workers         int                `json:"workers"`
	DurationSeconds float64            `json:"duration_seconds"`
	ThroughputRPS   float64            `json:"throughput_rps"`
	Fingerprint     string             `json:"fingerprint"`
	GeneratedReqs   int64              `json:"generated_requests"`
	Mix             map[string]float64 `json:"mix"`
	QuantileRelErr  float64            `json:"quantile_rel_error"`
	Total           EndpointReport     `json:"total"`
	Endpoints       []EndpointReport   `json:"endpoints"`
	Slowest         []SlowRequest      `json:"slowest,omitempty"`
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func endpointReport(name string, s *Stats, totalRequests int64) EndpointReport {
	h := s.Latency
	var share float64
	if totalRequests > 0 {
		share = float64(s.Requests) / float64(totalRequests)
	}
	return EndpointReport{
		Endpoint:  name,
		Requests:  s.Requests,
		Errors:    s.Errors,
		Timeouts:  s.Timeouts,
		HTTP4xx:   s.HTTP4xx,
		Share:     share,
		ErrorRate: s.ErrorRate(),
		P50MS:     ms(h.Quantile(0.5)),
		P90MS:     ms(h.Quantile(0.9)),
		P99MS:     ms(h.Quantile(0.99)),
		P999MS:    ms(h.Quantile(0.999)),
		MinMS:     ms(h.Min()),
		MaxMS:     ms(h.Max()),
		MeanMS:    h.Mean() / 1e6,
	}
}

// ReportResult renders the run's structured result payload.
func (r *Result) ReportResult() ReportResult {
	rr := ReportResult{
		Target:          r.Target,
		Workers:         r.Workers,
		DurationSeconds: r.Elapsed.Seconds(),
		Fingerprint:     r.Fingerprint,
		GeneratedReqs:   r.Generated,
		Mix:             r.Mix.Shares(),
		QuantileRelErr:  r.Total.Latency.RelativeError(),
		Total:           endpointReport("total", r.Total, r.Total.Requests),
	}
	if r.Elapsed > 0 {
		rr.ThroughputRPS = float64(r.Total.Requests) / r.Elapsed.Seconds()
	}
	for _, ep := range sortedEndpoints(r.Endpoints) {
		rr.Endpoints = append(rr.Endpoints, endpointReport(ep, r.Endpoints[ep], r.Total.Requests))
	}
	rr.Slowest = r.Slowest
	return rr
}

// Report renders the run as a probase-bench/v1 document, so
// bench-compare tooling (validation, artifact diffing) consumes
// capacity reports unchanged. The workload maps onto the shared
// Options: Sentences and Queries both carry the distinct-query pool
// size, Scale is 1.
func (r *Result) Report() benchfmt.Report {
	return benchfmt.Report{
		Schema: benchfmt.Schema,
		Build:  obs.Version(),
		Options: benchfmt.Options{
			Scale:     1,
			Sentences: r.Queries,
			Seed:      r.Seed,
			Queries:   r.Queries,
		},
		SetupSeconds: 0,
		Experiments: []benchfmt.Experiment{{
			Name:    ExperimentName,
			Seconds: r.Elapsed.Seconds(),
			Result:  r.ReportResult(),
		}},
		TotalSeconds: r.Elapsed.Seconds(),
	}
}

// SLO is the capacity gate: the thresholds the CI capacity-smoke job
// checks a run against.
type SLO struct {
	// P99 bounds the aggregate 99th-percentile latency. Zero disables
	// the latency gate.
	P99 time.Duration
	// MaxErrorRate bounds (errors+timeouts)/requests. Negative
	// disables the gate; zero means "no errors tolerated".
	MaxErrorRate float64
	// MinRequests guards against a vacuous pass on a run that barely
	// sent traffic. Zero disables.
	MinRequests int64
}

// Enabled reports whether any gate is active.
func (s SLO) Enabled() bool { return s.P99 > 0 || s.MaxErrorRate >= 0 || s.MinRequests > 0 }

// Check applies the SLO to an aggregate report slice and returns a
// descriptive error on the first violated gate.
func (s SLO) Check(total EndpointReport) error {
	if s.MinRequests > 0 && total.Requests < s.MinRequests {
		return fmt.Errorf("slo: only %d requests completed, need >= %d for a meaningful run",
			total.Requests, s.MinRequests)
	}
	if s.P99 > 0 {
		p99 := time.Duration(total.P99MS * float64(time.Millisecond))
		if p99 > s.P99 {
			return fmt.Errorf("slo: p99 %.3fms exceeds threshold %.3fms",
				total.P99MS, float64(s.P99)/float64(time.Millisecond))
		}
	}
	if s.MaxErrorRate >= 0 && total.ErrorRate > s.MaxErrorRate {
		return fmt.Errorf("slo: error rate %.4f (errors=%d timeouts=%d of %d) exceeds %.4f",
			total.ErrorRate, total.Errors, total.Timeouts, total.Requests, s.MaxErrorRate)
	}
	return nil
}

// CheckResult applies the SLO to a live run.
func (s SLO) CheckResult(r *Result) error {
	return s.Check(endpointReport("total", r.Total, r.Total.Requests))
}

// CheckReport applies the SLO to a marshalled probase-bench/v1 report
// containing a loadgen experiment — the offline -check mode the CI
// gate-liveness step uses. The report is schema-validated first.
func (s SLO) CheckReport(name string, raw []byte) error {
	if err := benchfmt.ValidateBytes(name, raw); err != nil {
		return err
	}
	var report benchfmt.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	exp, ok := report.Experiment(ExperimentName)
	if !ok {
		return fmt.Errorf("%s: no %q experiment in report", name, ExperimentName)
	}
	// Result round-trips through JSON as map[string]any; re-decode it
	// into the typed payload.
	rawResult, err := json.Marshal(exp.Result)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	var rr ReportResult
	if err := json.Unmarshal(rawResult, &rr); err != nil {
		return fmt.Errorf("%s: loadgen result does not parse: %w", name, err)
	}
	return s.Check(rr.Total)
}
