package extraction

import (
	"math"
	"strings"
	"unicode"

	"repro/internal/hearst"
	"repro/internal/kb"
	"repro/internal/nlp"
)

// Input is one corpus sentence with its page authority score.
type Input struct {
	Text      string
	PageScore float64
}

// posState is the lifecycle of one candidate sub-concept position.
type posState int8

const (
	posUndecided posState = iota
	posAccepted
	posRejected
)

// sentenceState tracks a parsed sentence across rounds.
type sentenceState struct {
	index     int    // global corpus index of the sentence (resume-stable)
	text      string // raw sentence, kept for checkpointing pending states
	match     hearst.Match
	pageScore float64
	super     string // canonical super-concept key, once detected
	superDone bool
	status    []posState
	readings  [][]string // accepted canonical readings per position
	accepted  []string   // all accepted canonical subs, in acceptance order
	done      bool
}

// evidenceSeq packs a sentence's global corpus index, the 1-based segment
// position, and the sub-index within the position's reading into the
// canonical evidence ordering key. The key is a pure function of *where*
// the evidence sits in the corpus, never of when the fixpoint discovered
// it, so evidence lists (and the kept set under the per-pair cap) come out
// identical whether the corpus was processed in one run or as base+delta.
func evidenceSeq(index, pos, sub int) int64 {
	if pos > 4095 {
		pos = 4095
	}
	if sub > 511 {
		sub = 511
	}
	return int64(index+1)<<21 | int64(pos)<<9 | int64(sub)
}

// CanonicalSuper maps a super-concept surface form to its Γ key:
// lower-case, singular head ("Tropical Countries" -> "tropical country").
func CanonicalSuper(s string) string {
	return nlp.SingularizePhrase(nlp.Normalize(s))
}

// CanonicalSub maps a sub-concept surface form to its Γ key. The head
// (final) word decides: a lower-case plural head marks a concept-like
// phrase, which is lower-cased and singularised so it meets the matching
// super-concept key ("IT companies" -> "it company", "steam turbines" ->
// "steam turbine", "cats" -> "cat"). Everything else — named entities
// with a capitalised head ("New York", "Gone with the Wind") and singular
// common nouns — keeps its surface form (named entities) or lower-cases
// (common nouns).
func CanonicalSub(s string) string {
	s = nlp.CollapseSpaces(s)
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return s
	}
	head := fields[len(fields)-1]
	headCap := unicode.IsUpper([]rune(head)[0])
	if !headCap {
		lh := strings.ToLower(head)
		if nlp.IsPluralWord(lh) {
			return nlp.SingularizePhrase(nlp.Normalize(s))
		}
	}
	if hasCapitalizedWord(s) {
		return s
	}
	return nlp.Normalize(s)
}

func hasCapitalizedWord(s string) bool {
	for _, f := range strings.Fields(s) {
		r := []rune(f)[0]
		if unicode.IsUpper(r) {
			return true
		}
	}
	return false
}

// segChunks returns the canonical delimiter-separated chunks of a segment
// ("IBM, Nokia, Proctor and Gamble"'s last element has chunks
// {Proctor, Gamble}); unambiguous segments have a single chunk.
func segChunks(seg hearst.Segment) []string {
	if !seg.Ambiguous() {
		return []string{CanonicalSub(seg.Whole)}
	}
	out := make([]string, len(seg.Parts))
	for i, p := range seg.Parts {
		out[i] = CanonicalSub(p)
	}
	return out
}

// prefixJoins lists the candidate occupants of the segment's position:
// every prefix of its chunks rejoined with "and". For {Proctor, Gamble}
// these are "Proctor" and "Proctor and Gamble" — exactly the two readings
// Section 2.3.3 compares.
func prefixJoins(chunks []string) []string {
	out := make([]string, len(chunks))
	for m := range chunks {
		out[m] = CanonicalSub(strings.Join(chunks[:m+1], " and "))
	}
	return out
}

// decision is the outcome of resolving one sentence in the map phase; it
// is applied to Γ in the single-threaded reduce phase.
type decision struct {
	idx      int
	super    string   // canonical super (set when super detection succeeded)
	accepts  []accept // newly accepted positions
	rejects  []int    // newly rejected positions
	done     bool     // sentence fully decided
	progress bool     // anything changed this round
}

type accept struct {
	pos     int
	reading []string // canonical sub-concepts occupying this position
}

// resolver bundles Γ and the thresholds during one round's map phase.
type resolver struct {
	cfg   Config
	store *kb.Store
}

// pSub is the smoothed p(y|x) with the modifier-stripping fallback of
// Section 2.3.2: when x is unknown, the more general concept obtained by
// stripping x's leading modifier vouches for it at a discount.
func (r *resolver) pSub(y, x string) float64 {
	p := r.store.PYgivenX(y, x)
	if stripped := nlp.StripModifier(x); stripped != x {
		if q := r.cfg.ModifierDiscount * r.store.PYgivenX(y, stripped); q > p {
			p = q
		}
	}
	if p < r.cfg.Epsilon {
		p = r.cfg.Epsilon
	}
	return p
}

// pSuper is the smoothed prior p(x), with the same fallback.
func (r *resolver) pSuper(x string) float64 {
	p := r.store.PX(x)
	if stripped := nlp.StripModifier(x); stripped != x {
		if q := r.cfg.ModifierDiscount * r.store.PX(stripped); q > p {
			p = q
		}
	}
	if p < r.cfg.Epsilon {
		p = r.cfg.Epsilon
	}
	return p
}

// bestSegCount returns the highest n(x, c) over the candidate occupants
// of the segment's position — the prefix joins plus the individual
// chunks ("..., Proctor and Gamble and IBM" is anchored by IBM, which is
// a chunk but not a prefix join). Used by the scope search.
func (r *resolver) bestSegCount(seg hearst.Segment, x string) int64 {
	var best int64
	chunks := segChunks(seg)
	for _, c := range prefixJoins(chunks) {
		if n := r.store.Count(x, c); n > best {
			best = n
		}
	}
	for _, c := range chunks {
		if n := r.store.Count(x, c); n > best {
			best = n
		}
	}
	return best
}

// detectSuper implements Section 2.3.2. It returns the canonical super
// key, or ok=false when the likelihood ratio between the two best
// candidates stays under the threshold.
func (r *resolver) detectSuper(st *sentenceState) (string, bool) {
	supers := st.match.Supers
	if len(supers) == 1 {
		return CanonicalSuper(supers[0]), true
	}
	type scored struct {
		key   string
		score float64 // log p(x) + sum log p(seg|x)
	}
	cands := make([]scored, 0, len(supers))
	for _, s := range supers {
		key := CanonicalSuper(s)
		sc := math.Log(r.pSuper(key))
		for _, seg := range st.match.Segments {
			best := r.cfg.Epsilon
			for _, c := range prefixJoins(segChunks(seg)) {
				if p := r.pSub(c, key); p > best {
					best = p
				}
			}
			sc += math.Log(best)
		}
		cands = append(cands, scored{key, sc})
	}
	best, second := 0, -1
	for i := 1; i < len(cands); i++ {
		if cands[i].score > cands[best].score {
			second = best
			best = i
		} else if second < 0 || cands[i].score > cands[second].score {
			second = i
		}
	}
	if second >= 0 && cands[best].score-cands[second].score < math.Log(r.cfg.SuperRatio) {
		return "", false
	}
	return cands[best].key, true
}

// segmentChunks resolves an ambiguous segment into its list of
// sub-concepts by repeatedly choosing how many leading chunks form the
// next item (Section 2.3.3): candidates are the prefix joins, scored by
// p(c|x) and the co-occurrence likelihoods with the already-accepted
// sub-concepts; the winner must beat the runner-up by SubRatio. When no
// candidate has any evidence at all, proper-noun chunks default to the
// full join (a compound name such as "Proctor and Gamble" — the
// Downey-style association heuristic of Section 2.1: name fragments do
// not recur independently, while real list members do), and common-noun
// chunks stay undecided until Γ learns more.
func (r *resolver) segmentChunks(chunks []string, x string, acceptedSoFar []string) ([]string, bool) {
	var out []string
	accepted := acceptedSoFar
	for len(chunks) > 0 {
		if len(chunks) == 1 {
			out = append(out, chunks[0])
			break
		}
		cands := prefixJoins(chunks)
		scores := make([]float64, len(cands))
		raw := make([]bool, len(cands)) // any unsmoothed evidence?
		for i, c := range cands {
			p := r.store.PYgivenX(c, x)
			if g := 0.1 * r.store.PSubGlobal(c); g > p {
				p = g
			}
			raw[i] = p > 0
			if p < r.cfg.Epsilon {
				p = r.cfg.Epsilon
			}
			sc := math.Log(p)
			for _, y := range accepted {
				q := r.store.PYgivenCX(y, c, x)
				if q < r.cfg.Epsilon {
					q = r.cfg.Epsilon
				}
				sc += math.Log(q)
			}
			scores[i] = sc
		}
		best, second := 0, -1
		anyRaw := raw[0]
		for i := 1; i < len(cands); i++ {
			anyRaw = anyRaw || raw[i]
			if scores[i] > scores[best] {
				second = best
				best = i
			} else if second < 0 || scores[i] > scores[second] {
				second = i
			}
		}
		if !anyRaw {
			// No prefix join has evidence. A known *last* chunk splits
			// off as its own item ("Proctor and Gamble and IBM": IBM is
			// known, leaving {Proctor, Gamble} to resolve), and its
			// acceptance conditions the rest.
			last := chunks[len(chunks)-1]
			if r.store.PYgivenX(last, x) > 0 || r.store.PSubGlobal(last) > 0 {
				left, ok := r.segmentChunks(chunks[:len(chunks)-1], x, append(accepted, last))
				if !ok {
					return nil, false
				}
				out = append(out, left...)
				out = append(out, last)
				return out, true
			}
			// A known *middle* chunk keeps a split plausible — wait for
			// more knowledge. Otherwise unrecurring capitalised fragments
			// are one compound name.
			laterEvidence := false
			for _, c := range chunks[1 : len(chunks)-1] {
				if r.store.PSubGlobal(c) > 0 {
					laterEvidence = true
					break
				}
			}
			if !laterEvidence && allProperChunks(chunks) {
				out = append(out, cands[len(cands)-1])
				break
			}
			return nil, false
		}
		if second >= 0 && scores[best]-scores[second] < math.Log(r.cfg.SubRatio) {
			return nil, false
		}
		item := cands[best]
		out = append(out, item)
		accepted = append(accepted, item)
		chunks = chunks[best+1:]
	}
	return out, true
}

func allProperChunks(chunks []string) bool {
	for _, c := range chunks {
		if !nlp.IsProperNounPhrase(c) {
			return false
		}
	}
	return len(chunks) > 0
}

// resolve advances one sentence as far as Γ currently allows and returns
// the decision to apply in the reduce phase.
func (r *resolver) resolve(idx int, st *sentenceState) decision {
	d := decision{idx: idx}
	if st.done {
		d.done = true
		return d
	}

	// Step 1: super-concept detection (only until it succeeds once).
	super := st.super
	if !st.superDone {
		s, ok := r.detectSuper(st)
		if !ok {
			return d // retry next round
		}
		super = s
		d.super = s
		d.progress = true
	}

	segs := st.match.Segments

	// Step 2: find the valid scope — the largest position k whose
	// candidate is known well enough (Observation 2). Positions beyond an
	// established scope are junk. Previously accepted positions extend the
	// scope but never establish it on their own (a fallback acceptance of
	// position 1 must not condemn the rest of the list).
	scope := -1
	for j := len(segs) - 1; j >= 0; j-- {
		if r.bestSegCount(segs[j], super) >= r.cfg.SubMinCount {
			scope = j
			break
		}
	}
	if scope >= 0 {
		for j := len(segs) - 1; j > scope; j-- {
			if st.status[j] == posAccepted {
				scope = j
				break
			}
		}
	}
	if scope < 0 {
		// Fallback (Observation 1): position 1 alone, provided it is well
		// formed; the rest of the sentence stays undecided for later
		// rounds.
		if st.status[0] == posUndecided && !segs[0].Ambiguous() &&
			!nlp.ContainsDelimiterWord(segs[0].Whole) {
			d.accepts = append(d.accepts, accept{pos: 0, reading: segChunks(segs[0])})
			d.progress = true
		}
		d.done = r.allDecidedAfter(st, d)
		return d
	}

	// Step 3: decide positions 1..scope; reject positions past the scope.
	acceptedSoFar := append([]string(nil), st.accepted...)
	for j := 0; j <= scope; j++ {
		if st.status[j] != posUndecided {
			continue
		}
		var reading []string
		if segs[j].Ambiguous() {
			var ok bool
			reading, ok = r.segmentChunks(segChunks(segs[j]), super, acceptedSoFar)
			if !ok {
				continue // too close to call; retry next round
			}
		} else {
			reading = segChunks(segs[j])
		}
		d.accepts = append(d.accepts, accept{pos: j, reading: reading})
		acceptedSoFar = append(acceptedSoFar, reading...)
		d.progress = true
	}
	for j := scope + 1; j < len(segs); j++ {
		if st.status[j] == posUndecided {
			d.rejects = append(d.rejects, j)
			d.progress = true
		}
	}
	d.done = r.allDecidedAfter(st, d)
	return d
}

// allDecidedAfter reports whether applying d leaves no undecided position.
func (r *resolver) allDecidedAfter(st *sentenceState, d decision) bool {
	decided := make(map[int]bool, len(d.accepts)+len(d.rejects))
	for _, a := range d.accepts {
		decided[a.pos] = true
	}
	for _, j := range d.rejects {
		decided[j] = true
	}
	for j, s := range st.status {
		if s == posUndecided && !decided[j] {
			return false
		}
	}
	return true
}
