package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"repro/internal/mmap"
)

// validV3 returns a revision-3 snapshot of a non-trivial graph.
func validV3(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := randomDAG(60, 180, 29).Freeze().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refreshCRC rewrites the trailer after a deliberate mutation so the
// test exercises the structural check, not the checksum.
func refreshCRC(data []byte) {
	binary.LittleEndian.PutUint32(data[len(data)-4:],
		crc32.ChecksumIEEE(data[:len(data)-4]))
}

func TestLoadMappedFromFile(t *testing.T) {
	b := randomDAG(80, 240, 31)
	want := b.Freeze()
	path := filepath.Join(t.TempDir(), "graph.pbc2")
	var buf bytes.Buffer
	if err := want.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := mmap.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := LoadMapped(m.Bytes(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Mapped() != m.Mapped() {
		t.Errorf("Frozen.Mapped() = %v, mapping.Mapped() = %v", f.Mapped(), m.Mapped())
	}
	assertReadersEqual(t, want, f)
}

// TestLoadMappedZeroCopyAliasing: on a zero-copy view the label arena
// must alias the input bytes, not a heap copy.
func TestLoadMappedZeroCopyAliasing(t *testing.T) {
	data := validV3(t)
	f, err := LoadMapped(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Mapped() {
		t.Skip("host cannot zero-copy (big-endian or unexpected Edge layout)")
	}
	lo := uintptr(unsafe.Pointer(&data[0]))
	hi := lo + uintptr(len(data))
	if p := uintptr(unsafe.Pointer(&f.arena.data[0])); p < lo || p >= hi {
		t.Error("label arena does not alias the input buffer")
	}
}

// TestLoadMappedUnalignedFallsBack: an input buffer that is not 8-byte
// aligned must still load correctly — via the copying decoder.
func TestLoadMappedUnalignedFallsBack(t *testing.T) {
	data := validV3(t)
	want, err := LoadFrozen(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]byte, len(data)+1)
	copy(shifted[1:], data)
	f, err := LoadMapped(shifted[1:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mapped() {
		t.Fatal("unaligned buffer claims zero-copy")
	}
	assertReadersEqual(t, want, f)
}

// TestLoadMappedLegacyFormats: the mapped entry point accepts every
// snapshot format, falling back to the copying loaders for the
// non-mappable ones.
func TestLoadMappedLegacyFormats(t *testing.T) {
	b := randomDAG(50, 140, 37)
	want := b.Freeze()
	var v1, rev2 bytes.Buffer
	if err := b.Save(&v1); err != nil {
		t.Fatal(err)
	}
	if err := saveV2Legacy(&rev2, want); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"v1 PBGR": v1.Bytes(), "PBC2 rev2": rev2.Bytes()} {
		t.Run(name, func(t *testing.T) {
			f, err := LoadMapped(data, nil)
			if err != nil {
				t.Fatal(err)
			}
			if f.Mapped() {
				t.Errorf("%s claims zero-copy", name)
			}
			assertReadersEqual(t, want, f)
		})
	}
}

// TestSaveV2LegacyStillLoads pins backward compatibility: revision-2
// artifacts written before the layout change must keep loading.
func TestSaveV2LegacyStillLoads(t *testing.T) {
	want := randomDAG(40, 120, 41).Freeze()
	var buf bytes.Buffer
	if err := saveV2Legacy(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFrozen(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertReadersEqual(t, want, got)
}

// TestSaveV3Deterministic: the canonical layout means one graph has
// exactly one encoding.
func TestSaveV3Deterministic(t *testing.T) {
	f := randomDAG(30, 90, 43).Freeze()
	var a, b bytes.Buffer
	if err := f.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same graph differ")
	}
}

func TestLoadMappedRejectsCorruption(t *testing.T) {
	snap := validV3(t)

	// Cut inside the label-data section (section 1 of the table).
	arenaOff := binary.LittleEndian.Uint64(snap[32+16:])
	arenaLen := binary.LittleEndian.Uint64(snap[40+16:])
	midArena := snap[:arenaOff+arenaLen/2]

	badTable := append([]byte(nil), snap...)
	badTable[32+32] ^= 0x08 // shift section 2's offset
	refreshCRC(badTable)

	badCount := append([]byte(nil), snap...)
	badCount[12] = 0xFF // node count beyond maxSnapshotNodes
	refreshCRC(badCount)

	badPad := append([]byte(nil), snap...)
	badPad[5] = 0x01
	refreshCRC(badPad)

	cases := map[string][]byte{
		"empty":             {},
		"header only":       snap[:v3HeaderSize],
		"truncated arena":   midArena,
		"trailing garbage":  append(append([]byte(nil), snap...), 0xAA),
		"bad section table": badTable,
		"huge node count":   badCount,
		"nonzero pad":       badPad,
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadMapped(append([]byte(nil), data...), nil); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("err = %v, want ErrBadSnapshot", err)
			}
		})
	}

	t.Run("flipped byte fails checksum", func(t *testing.T) {
		flipped := append([]byte(nil), snap...)
		flipped[len(flipped)/2] ^= 0x40
		if _, err := LoadMapped(flipped, nil); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("err = %v, want ErrChecksum or ErrBadSnapshot", err)
		}
	})
}

// countingCloser records Close calls so tests can pin the ownership
// contract of LoadMapped.
type countingCloser struct{ n int }

func (c *countingCloser) Close() error { c.n++; return nil }

func TestLoadMappedCloserOwnership(t *testing.T) {
	snap := validV3(t)

	t.Run("retained until Frozen.Close on zero-copy", func(t *testing.T) {
		c := &countingCloser{}
		f, err := LoadMapped(append([]byte(nil), snap...), c)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Mapped() {
			t.Skip("host cannot zero-copy")
		}
		if c.n != 0 {
			t.Fatalf("closer closed %d times before Frozen.Close", c.n)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if c.n != 1 {
			t.Fatalf("closer closed %d times, want exactly 1", c.n)
		}
	})

	t.Run("closed immediately on parse error", func(t *testing.T) {
		c := &countingCloser{}
		if _, err := LoadMapped([]byte("PBC2\x03 garbage"), c); err == nil {
			t.Fatal("corrupt input accepted")
		}
		if c.n != 1 {
			t.Fatalf("closer closed %d times, want 1", c.n)
		}
	})

	t.Run("closed immediately on copy fallback", func(t *testing.T) {
		var v1 bytes.Buffer
		if err := randomDAG(10, 20, 47).Save(&v1); err != nil {
			t.Fatal(err)
		}
		c := &countingCloser{}
		f, err := LoadMapped(v1.Bytes(), c)
		if err != nil {
			t.Fatal(err)
		}
		if c.n != 1 {
			t.Fatalf("closer closed %d times, want 1", c.n)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if c.n != 1 {
			t.Fatalf("Frozen.Close re-closed the already-closed closer (%d)", c.n)
		}
	})
}

// TestMappedMatchesStreamedExactly: the mapped and streamed loaders of
// one snapshot answer every Reader query identically.
func TestMappedMatchesStreamedExactly(t *testing.T) {
	snap := validV3(t)
	streamed, err := LoadFrozen(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadMapped(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertReadersEqual(t, streamed, mapped)
}
