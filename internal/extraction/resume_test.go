package extraction

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/corpus"
)

func corpusInputs(t testing.TB, sentences int, seed int64) []Input {
	t.Helper()
	w := corpus.DefaultWorld(1)
	c := corpus.NewGenerator(w, corpus.GenConfig{Sentences: sentences, Seed: seed}).Generate()
	inputs := make([]Input, len(c.Sentences))
	for i, s := range c.Sentences {
		inputs[i] = Input{Text: s.Text, PageScore: s.PageScore}
	}
	return inputs
}

func storeBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkpointBytes(t *testing.T, cp *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeEquivalentToFullRun is the load-bearing property behind
// incremental builds: running extraction over a base corpus, then
// resuming over the remainder, must reproduce the from-scratch run over
// the concatenated corpus exactly — Γ byte-for-byte (counts,
// co-occurrence and seq-ordered evidence), the group records, and the
// follow-up checkpoint. The chunked fold makes this hold by
// construction: both runs settle the fixpoint at the same absolute
// sentence-index boundaries, and the checkpoint replays the un-settled
// tail. Split points cover an early cut, cuts straddling chunk
// boundaries, an exact boundary, and a tiny 1%-style delta.
func TestResumeEquivalentToFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-scale equivalence probe")
	}
	inputs := corpusInputs(t, 4000, 42)
	cfg := DefaultConfig()
	cfg.Workers = 4

	full := Run(inputs, cfg)
	fullStore := storeBytes(t, full)
	fullCp := checkpointBytes(t, full.Checkpoint)

	for _, split := range []int{400, 1024, 2000, 3600, 3960} {
		base := Run(inputs[:split], cfg)

		// Round-trip the checkpoint through its binary form so the test
		// also proves serialisation loses nothing.
		cp, err := DecodeCheckpoint(bytes.NewReader(checkpointBytes(t, base.Checkpoint)))
		if err != nil {
			t.Fatalf("split %d: decode: %v", split, err)
		}

		delta, err := Resume(cp, inputs[split:], cfg)
		if err != nil {
			t.Fatalf("split %d: resume: %v", split, err)
		}

		if got := storeBytes(t, delta); !bytes.Equal(got, fullStore) {
			t.Errorf("split %d: resumed Γ differs from full-run Γ (%d vs %d bytes)",
				split, len(got), len(fullStore))
		}
		if !reflect.DeepEqual(delta.Groups, full.Groups) {
			t.Errorf("split %d: group records diverged: resumed %d groups, full %d",
				split, len(delta.Groups), len(full.Groups))
		}
		if got := checkpointBytes(t, delta.Checkpoint); !bytes.Equal(got, fullCp) {
			t.Errorf("split %d: follow-up checkpoints diverged (pending %d vs %d, groups %d vs %d, tail %d vs %d)",
				split, len(delta.Checkpoint.Pending), len(full.Checkpoint.Pending),
				len(delta.Checkpoint.Groups), len(full.Checkpoint.Groups),
				len(delta.Checkpoint.Tail), len(full.Checkpoint.Tail))
		}
		if delta.Parsed != full.Parsed || delta.PartOf != full.PartOf {
			t.Errorf("split %d: counters diverged: parsed %d/%d, partof %d/%d",
				split, delta.Parsed, full.Parsed, delta.PartOf, full.PartOf)
		}
	}
}

// TestResumeLeavesBaseStoreIntact: a base build keeps serving while its
// checkpoint seeds delta builds, so Resume must not mutate it.
func TestResumeLeavesBaseStoreIntact(t *testing.T) {
	inputs := corpusInputs(t, 1500, 3)
	cfg := DefaultConfig()
	base := Run(inputs[:1200], cfg)
	before := checkpointBytes(t, base.Checkpoint)
	if _, err := Resume(base.Checkpoint, inputs[1200:], cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, checkpointBytes(t, base.Checkpoint)) {
		t.Fatal("Resume mutated the base checkpoint")
	}
}

// TestResumeDirtyRootsCoverDelta checks that DirtyRoots is a sound
// over-approximation: every group that differs from the base build's
// record set must have its root listed.
func TestResumeDirtyRootsCoverDelta(t *testing.T) {
	inputs := corpusInputs(t, 2000, 7)
	cfg := DefaultConfig()
	cfg.Workers = 2
	split := 1800

	base := Run(inputs[:split], cfg)
	baseGroups := make(map[string]int) // fingerprint of base group records per root
	for _, g := range base.Groups {
		baseGroups[g.Super] += len(g.Subs) + g.Order
	}

	delta, err := Resume(base.Checkpoint, inputs[split:], cfg)
	if err != nil {
		t.Fatal(err)
	}
	dirty := make(map[string]bool, len(delta.DirtyRoots))
	for _, r := range delta.DirtyRoots {
		dirty[r] = true
	}
	nextGroups := make(map[string]int)
	for _, g := range delta.Groups {
		nextGroups[g.Super] += len(g.Subs) + g.Order
	}
	for root, fp := range nextGroups {
		if fp != baseGroups[root] && !dirty[root] {
			t.Errorf("root %q changed (fp %d -> %d) but is not in DirtyRoots", root, baseGroups[root], fp)
		}
	}
	if len(delta.DirtyRoots) == 0 {
		t.Fatal("delta produced no dirty roots; probe corpus too small")
	}
}

func TestResumeRejectsMismatchedChunkSize(t *testing.T) {
	inputs := corpusInputs(t, 300, 5)
	cfg := DefaultConfig()
	cfg.ChunkSize = 128
	base := Run(inputs, cfg)
	cfg.ChunkSize = 256
	if _, err := Resume(base.Checkpoint, nil, cfg); err == nil {
		t.Fatal("chunk-size mismatch accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := &Checkpoint{
		NumInputs: 17,
		ChunkSize: 8,
		Parsed:    9,
		PartOf:    2,
		Groups: []Group{
			{Super: "animal", Subs: []string{"cat", "dog"}, Order: 3},
			{Super: "company", Subs: []string{"IBM"}, Order: 9},
		},
		Pending: []PendingSentence{{
			Index:     12,
			Text:      "animals such as cats and dogs are cute",
			PageScore: 0.25,
			Super:     "animal",
			SuperDone: true,
			Status:    []uint8{1, 0},
			Accepted:  []string{"cat"},
		}},
		Tail:       []Input{{Text: "pets such as hamsters", PageScore: 0.5}},
		RootHashes: map[string]uint64{"animal": 0xdeadbeef, "company": 7},
	}
	data := checkpointBytes(t, cp)
	got, err := DecodeCheckpoint(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cp)
	}
	if _, err := DecodeCheckpoint(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated checkpoint decoded without error")
	}
}

func TestCheckpointRoundTripWithStore(t *testing.T) {
	inputs := corpusInputs(t, 1200, 9)
	res := Run(inputs, DefaultConfig())
	if res.Checkpoint.Store == nil {
		t.Fatal("run produced checkpoint without boundary store")
	}
	data := checkpointBytes(t, res.Checkpoint)
	got, err := DecodeCheckpoint(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(checkpointBytes(t, got), data) {
		t.Fatal("checkpoint re-encode differs after round trip")
	}
}
