package taxstats

import (
	"strings"
	"testing"
)

func f(v float64) *float64 { return &v }

func testProfiles(t *testing.T) (*Profile, *Profile) {
	t.Helper()
	g := companyGraph()
	old, err := Compute(g, mustTypicality(t, g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb: add a concept with instances and re-profile.
	g2 := companyGraph()
	sc := g2.Intern("startup")
	g2.AddEdge(g2.Lookup("company"), sc, 5, 0.7)
	g2.AddEdge(sc, g2.Intern("Acme"), 3, 0.6)
	new, err := Compute(g2, mustTypicality(t, g2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return old, new
}

func TestDiffIdenticalIsZero(t *testing.T) {
	g := companyGraph()
	p1, err := Compute(g, mustTypicality(t, g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compute(g, mustTypicality(t, g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := DiffProfiles(p1, p2)
	if r.Drifted() {
		t.Fatalf("identical profiles drifted: %+v", r)
	}
	if r.FingerprintChanged {
		t.Error("fingerprint changed between identical profiles")
	}
	for _, d := range r.Deltas {
		if d.Abs != 0 {
			t.Errorf("metric %s drifted: %+v", d.Metric, d)
		}
	}
	// And an all-zero report passes any gate.
	th := &Thresholds{Schema: ThresholdsSchema, Metrics: map[string]Limit{
		"nodes": {MaxRel: f(0.0)}, "entropy_mean": {MaxAbs: f(0.0)},
	}}
	if breaches := th.Gate(r); len(breaches) != 0 {
		t.Errorf("zero drift breached: %v", breaches)
	}
}

func TestDiffPerturbed(t *testing.T) {
	old, new := testProfiles(t)
	r := DiffProfiles(old, new)
	if !r.Drifted() || !r.FingerprintChanged {
		t.Fatalf("perturbed snapshot did not drift: %+v", r)
	}
	byName := map[string]Delta{}
	for _, d := range r.Deltas {
		byName[d.Metric] = d
	}
	nd := byName["nodes"]
	if nd.Abs != 2 { // startup + Acme
		t.Errorf("nodes delta = %+v, want abs 2", nd)
	}
	if nd.Rel == nil || *nd.Rel <= 0 {
		t.Errorf("nodes rel = %v, want positive", nd.Rel)
	}
	th := &Thresholds{Schema: ThresholdsSchema, Metrics: map[string]Limit{
		"nodes": {MaxRel: f(0.1)},
	}}
	breaches := th.Gate(r)
	if len(breaches) != 1 || breaches[0].Metric != "nodes" || breaches[0].Kind != "rel" {
		t.Fatalf("breaches = %v, want one rel breach on nodes", breaches)
	}
	if r.Breaches == nil {
		t.Error("Gate did not record breaches on the report")
	}
	// A generous budget lets the same drift through.
	loose := &Thresholds{Schema: ThresholdsSchema, Metrics: map[string]Limit{
		"nodes": {MaxRel: f(5.0)},
	}}
	if breaches := loose.Gate(r); len(breaches) != 0 {
		t.Errorf("loose gate breached: %v", breaches)
	}
}

func TestGateZeroToNonzeroBreachesRel(t *testing.T) {
	old := &Profile{}
	new := &Profile{Orphans: 3}
	r := DiffProfiles(old, new)
	th := &Thresholds{Schema: ThresholdsSchema, Metrics: map[string]Limit{
		"orphans": {MaxRel: f(100.0)}, // any finite budget
	}}
	breaches := th.Gate(r)
	if len(breaches) != 1 || breaches[0].Kind != "rel" {
		t.Fatalf("breaches = %v, want the undefined-ratio rel breach", breaches)
	}
	if breaches[0].Value != infRel {
		t.Errorf("breach value = %v, want the infinite-drift sentinel", breaches[0].Value)
	}
}

func TestGateAbsoluteLimit(t *testing.T) {
	old := &Profile{MaxDepth: 4}
	new := &Profile{MaxDepth: 9}
	r := DiffProfiles(old, new)
	th := &Thresholds{Schema: ThresholdsSchema, Metrics: map[string]Limit{
		"max_depth": {MaxAbs: f(3.0)},
	}}
	breaches := th.Gate(r)
	if len(breaches) != 1 || breaches[0].Kind != "abs" || breaches[0].Value != 5 {
		t.Fatalf("breaches = %v, want one abs breach of 5", breaches)
	}
	// Shrinkage counts too: drift is |new-old|.
	r2 := DiffProfiles(new, old)
	if breaches := th.Gate(r2); len(breaches) != 1 {
		t.Errorf("negative drift not gated: %v", breaches)
	}
}

func TestTopConceptChurn(t *testing.T) {
	old, new := testProfiles(t)
	// Force full top lists so churn is meaningful.
	r := DiffProfiles(old, new)
	var churn *Delta
	for i := range r.Deltas {
		if r.Deltas[i].Metric == topConceptChurnMetric {
			churn = &r.Deltas[i]
		}
	}
	if churn == nil {
		t.Fatal("no churn delta emitted")
	}
	if churn.New < 0 || churn.New > 1 {
		t.Errorf("churn = %v, want a fraction", churn.New)
	}
	// Hand-built: 2 of 3 old top concepts gone.
	got := topChurn(
		[]ConceptStat{{Label: "a"}, {Label: "b"}, {Label: "c"}},
		[]ConceptStat{{Label: "a"}, {Label: "x"}, {Label: "y"}},
	)
	if want := 2.0 / 3.0; got != want {
		t.Errorf("topChurn = %v, want %v", got, want)
	}
	if topChurn(nil, nil) != 0 {
		t.Error("empty old list should churn 0")
	}
}

func TestParseThresholdsRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"bad schema", `{"schema":"nope/v9","metrics":{"nodes":{"max_rel":0.1}}}`, "schema"},
		{"unknown field", `{"schema":"` + ThresholdsSchema + `","metrics":{},"extra":1}`, "unknown field"},
		{"no metrics", `{"schema":"` + ThresholdsSchema + `","metrics":{}}`, "no metrics"},
		{"unknown metric", `{"schema":"` + ThresholdsSchema + `","metrics":{"nodez":{"max_rel":0.1}}}`, "unknown metric"},
		{"no bound", `{"schema":"` + ThresholdsSchema + `","metrics":{"nodes":{}}}`, "no bound"},
		{"unknown limit field", `{"schema":"` + ThresholdsSchema + `","metrics":{"nodes":{"max":1}}}`, "unknown field"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseThresholds([]byte(c.doc))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseThresholds = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

func TestParseThresholdsAccepts(t *testing.T) {
	th, err := ParseThresholds([]byte(`{
		"schema": "` + ThresholdsSchema + `",
		"metrics": {
			"nodes": {"max_rel": 0.25},
			"max_depth": {"max_abs": 3},
			"top_concept_churn": {"max_abs": 0.5}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Metrics) != 3 {
		t.Errorf("metrics = %v", th.Metrics)
	}
}

// TestKnownMetricsCoverDeltas pins that every delta DiffProfiles emits
// is gateable (and vice versa: the vocabulary has no dead names).
func TestKnownMetricsCoverDeltas(t *testing.T) {
	known := map[string]bool{}
	for _, n := range KnownMetrics() {
		known[n] = true
	}
	r := DiffProfiles(&Profile{}, &Profile{})
	if len(r.Deltas) != len(known) {
		t.Errorf("deltas = %d, known metrics = %d", len(r.Deltas), len(known))
	}
	for _, d := range r.Deltas {
		if !known[d.Metric] {
			t.Errorf("delta %q not in KnownMetrics", d.Metric)
		}
	}
}
