// Command probase-serve exposes a taxonomy snapshot as a long-lived
// HTTP query service. The snapshot (either flavour written by
// probase-build) is loaded once at startup; every request is answered
// from memory through a sharded hot-query cache. See the package docs
// of internal/server for the endpoint contract.
//
// Usage:
//
//	probase-serve -snapshot probase.bin -addr :8080
//
// Then:
//
//	curl 'localhost:8080/v1/instances?concept=companies&k=5'
//	curl 'localhost:8080/v1/conceptualize?terms=China,India,Brazil'
//	curl 'localhost:8080/metrics'
//	curl 'localhost:8080/debug/vars'
//
// Observability: logs are structured (-log-format json|text, -log-level),
// every response carries an X-Request-ID header, /metrics serves
// Prometheus text exposition (including probase_snapshot_* health
// gauges for the served taxonomy), /v1/admin/stats serves the full
// taxstats health profile as JSON, -slowlog enables a sampled
// slow-query log, and -pprof-addr starts a separate net/http/pprof
// listener.
//
// Tracing: -trace-sample and/or -trace-slow turn on per-request spans
// with W3C traceparent propagation; kept traces (head-sampled, slow, or
// errored) land in a ring buffer served as JSON or an HTML waterfall on
// the pprof listener's /debug/traces. Log records for traced requests
// carry trace_id/span_id, and latency histogram buckets carry trace-ID
// exemplars in the OpenMetrics exposition.
//
// Storage: -mmap serves PBC2 graph-only snapshots zero-copy out of a
// memory mapping instead of decoding them onto the heap (see FORMATS.md
// for the layout that makes this possible); formats that cannot be
// mapped fall back to the heap load with a warning. SIGHUP — or POST
// /v1/admin/reload — hot-swaps the snapshot from the same path without
// dropping in-flight requests; the old mapping is released only after
// its last reader finishes. See OPERATIONS.md for the full runbook.
//
// On SIGINT/SIGTERM the listener closes and in-flight requests drain
// (bounded by -drain) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/window"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "probase-serve:", err)
		os.Exit(1)
	}
}

// run loads the snapshot and serves until ctx is cancelled (or the
// listener fails). When ready is non-nil, the bound address is sent on
// it once the server accepts connections — tests bind to port 0 and
// need to learn the port.
func run(ctx context.Context, args []string, stderr io.Writer, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("probase-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		snapPath    = fs.String("snapshot", "probase.bin", "taxonomy snapshot from probase-build")
		useMmap     = fs.Bool("mmap", false, "serve the snapshot zero-copy out of a memory mapping (PBC2 graph-only snapshots; others fall back to a heap load)")
		addr        = fs.String("addr", ":8080", "listen address")
		shards      = fs.Int("cache-shards", 16, "hot-query cache shards (rounded up to a power of two)")
		perShard    = fs.Int("cache-per-shard", 512, "max cached responses per shard")
		reqTO       = fs.Duration("request-timeout", 5*time.Second, "per-request deadline")
		drain       = fs.Duration("drain", 10*time.Second, "shutdown drain window for in-flight requests")
		maxK        = fs.Int("max-k", 1000, "cap on the k query parameter")
		logFormat   = fs.String("log-format", "text", "log output format: text or json")
		logLevel    = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
		slowlog     = fs.Duration("slowlog", 0, "log requests slower than this threshold (0 disables)")
		slowEvery   = fs.Int("slowlog-every", 1, "sample 1 in N slow requests")
		pprofAddr   = fs.String("pprof-addr", "", "serve net/http/pprof and /debug/traces on this address (empty disables)")
		traceSample = fs.Float64("trace-sample", 0, "head-sample this fraction of requests into /debug/traces (0 disables head sampling)")
		traceSlow   = fs.Duration("trace-slow", 0, "always keep traces of requests slower than this (0 disables the tail rule)")
		traceBuf    = fs.Int("trace-buf", 256, "kept traces ring-buffer capacity")
		sloFile     = fs.String("slo-file", "", "traffic-SLO config (probase-traffic-slo/v1 JSON) for the in-server burn-rate engine; empty uses the built-in default")
		failInject  = fs.Int("fail-inject", 0, "TESTING ONLY: fail every Nth query request with a synthetic 500 (0 disables)")
		version     = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(stderr, "probase-serve")
		return nil
	}
	logger := obs.NewLogger(stderr, *logFormat, obs.ParseLevel(*logLevel))
	logger.Info("starting", "binary", "probase-serve", "version", obs.Version().String())

	openSnap := snapshot.Open
	if *useMmap {
		openSnap = snapshot.OpenMapped
	}
	start := time.Now()
	pb, err := openSnap(*snapPath)
	if err != nil {
		return err
	}
	logger.Info("snapshot loaded",
		"path", *snapPath,
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"nodes", pb.Graph.NumNodes(),
		"edges", pb.Graph.NumEdges(),
		"mapped", pb.Mapped())
	if *useMmap && !pb.Mapped() {
		logger.Warn("mmap requested but snapshot cannot be served zero-copy; loaded onto the heap instead",
			"path", *snapPath, "format", pb.Format)
	}

	sloCfg := window.DefaultSLOConfig()
	if *sloFile != "" {
		sloCfg, err = window.LoadSLOConfig(*sloFile)
		if err != nil {
			return err
		}
		logger.Info("traffic SLO loaded", "path", *sloFile,
			"target", sloCfg.AvailabilityTarget, "rules", len(sloCfg.BurnRules))
	}
	if *failInject > 0 {
		logger.Warn("fault injection enabled — every Nth query request will 500",
			"every", *failInject)
	}
	srv := server.New(pb, server.Config{
		CacheShards:          *shards,
		CacheEntriesPerShard: *perShard,
		RequestTimeout:       *reqTO,
		MaxK:                 *maxK,
		SLO:                  sloCfg,
		FailInject:           *failInject,
		// Hot reload (POST /v1/admin/reload or SIGHUP) re-opens the same
		// path in the same storage mode; the old mapping is released only
		// after its last in-flight request finishes.
		Reloader: func() (*core.Probase, error) { return openSnap(*snapPath) },
	})
	if fi, err := os.Stat(*snapPath); err == nil {
		size := float64(fi.Size())
		srv.Metrics().Registry().GaugeFunc("probase_snapshot_bytes",
			"Size of the loaded taxonomy snapshot file in bytes.",
			func() float64 { return size })
	}
	// Tracing is on when either retention rule is: head sampling by
	// rate, or the tail "always keep slow traces" rule. Kept traces are
	// browsable on the pprof listener's /debug/traces.
	var tracer *obs.Tracer
	if *traceSample > 0 || *traceSlow > 0 {
		tracer = obs.NewTracer(obs.TracerConfig{
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
			BufferSize:    *traceBuf,
		})
		logger.Info("tracing enabled",
			"sample", *traceSample, "slow", traceSlow.String(), "buffer", *traceBuf)
	}
	httpSrv := &http.Server{
		Handler: obs.Middleware(srv.Handler(), obs.MiddlewareConfig{
			Logger:        logger,
			SlowThreshold: *slowlog,
			SlowEvery:     *slowEvery,
			Tracer:        tracer,
		}),
		ReadHeaderTimeout: 5 * time.Second,
		// The handler enforces its own per-request deadline; these bound
		// pathological clients.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		logger.Info("pprof listening", "addr", pln.Addr().String())
		debugMux := http.NewServeMux()
		debugMux.Handle("/", obs.PprofHandler())
		if tracer != nil {
			debugMux.Handle("/debug/traces", tracer.Handler())
		}
		go func() {
			pprofSrv := &http.Server{Handler: debugMux, ReadHeaderTimeout: 5 * time.Second}
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Warn("pprof server exited", "err", err.Error())
			}
		}()
	}

	// SIGHUP hot-reloads the snapshot through the same path as POST
	// /v1/admin/reload: load the new file, swap it in, and release the
	// old mapping only after its last in-flight request drains. A failed
	// reload logs and keeps the previous snapshot serving. Registered
	// before the listener is announced so a reload signal can never hit
	// the default terminate-on-SIGHUP disposition.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

serveLoop:
	for {
		select {
		case err := <-errc:
			return err
		case <-hup:
			reloadStart := time.Now()
			npb, err := srv.Reload()
			if err != nil {
				logger.Error("SIGHUP reload failed; previous snapshot still serving",
					"path", *snapPath, "err", err.Error())
				continue
			}
			logger.Info("snapshot reloaded",
				"trigger", "SIGHUP",
				"path", *snapPath,
				"elapsed", time.Since(reloadStart).Round(time.Millisecond).String(),
				"nodes", npb.Graph.NumNodes(),
				"edges", npb.Graph.NumEdges(),
				"mapped", npb.Mapped())
		case <-ctx.Done():
			break serveLoop
		}
	}
	logger.Info("shutdown requested, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	// Serve returns ErrServerClosed after a clean Shutdown.
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("stopped")
	return nil
}
